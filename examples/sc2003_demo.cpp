// SC2003 demo: run the production grid through the SuperComputing 2003
// demonstration window (Nov 15-21, 2003) and watch the iGOC's view of
// the grid -- the period when Grid3 first hit 1000+ concurrent jobs.
//
//   $ ./sc2003_demo [job_scale]     (default 0.2 for a quick run)
#include <iostream>

#include "apps/scenario.h"
#include "core/metrics.h"
#include "util/calendar.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace grid3;
  const double job_scale = argc > 1 ? std::atof(argv[1]) : 0.2;

  sim::Simulation sim;
  apps::ScenarioOptions opts;
  opts.months = 2;  // October + November 2003
  opts.job_scale = job_scale;
  apps::Scenario scenario{sim, opts};
  scenario.start();

  std::cout << "Grid3 coming online (job_scale=" << job_scale << ")...\n\n";

  // Operations-room ticker: one status line per simulated day of the
  // SC2003 week, straight from the iGOC services.
  const Time sc_start = util::time_of({2003, 11, 15});
  const Time sc_end = util::time_of({2003, 11, 22});
  scenario.run_until(sc_start);

  auto& grid = scenario.grid();
  std::cout << "=== SC2003 week (Nov 15-21, 2003) iGOC ticker ===\n";
  for (Time day = sc_start; day < sc_end; day += Time::days(1)) {
    scenario.run_until(day + Time::days(1));
    const auto summary = grid.igoc().gmetad().summarize(sim.now());
    int grid_running = 0;
    std::size_t queued = 0;
    for (const auto& site : grid.sites()) {
      grid_running += site->grid_jobs_running();
      queued += site->scheduler().queued_count();
    }
    std::cout << util::month_label_at(day) << "-"
              << util::date_at(day).day << ": " << summary.sites_reporting
              << "/27 sites reporting, " << summary.cpus_busy << "/"
              << summary.cpus_total << " CPUs busy (" << grid_running
              << " grid jobs, " << queued << " queued), "
              << grid.igoc().tickets().open_count()
              << " open trouble tickets\n";
  }

  // End-of-window scorecard.
  scenario.run_until(util::month_start(2));
  const auto w = apps::sc2003_window();
  const auto m = core::compute_milestones(grid, w.from, w.to);
  std::cout << "\n=== SC2003 30-day milestones ===\n";
  util::AsciiTable table{{"milestone", "target", "measured", "met"}};
  for (const auto& row : m.scorecard()) {
    table.add_row({row.name, row.target, row.measured,
                   row.met ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "\n(scaled run: job counts are ~" << job_scale
            << "x the paper's; run with argument 1.0 for full scale)\n";
  return 0;
}
