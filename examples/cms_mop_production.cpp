// CMS MOP production walkthrough (section 6.2): long OSCAR/CMSIM jobs
// that only some queues can accommodate, pile-up staged from the FNAL
// Tier1 via RLS, archival through the Tier1 storage element, and the
// clustered failure pattern ("all jobs submitted to a site would die")
// when a site's disk fills.
//
//   $ ./cms_mop_production
#include <iostream>
#include <map>

#include "apps/cms.h"
#include "core/roster.h"
#include "util/table.h"

int main() {
  using namespace grid3;
  sim::Simulation sim;
  core::Grid3 grid{sim, 8102};
  core::AssembleOptions opts;
  opts.cpu_scale = 0.3;
  auto assembled = core::assemble_grid3(grid, opts);

  apps::CmsMop cms{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "uscms") cms.set_users(vu.app_admins, vu.users);
  }
  cms.register_pileup_dataset();

  std::cout << "Launching 50 MOP assignments (sim + digitization)...\n";
  for (int i = 0; i < 50; ++i) cms.launch_workflow();

  // Mid-run injection: UCSD's disk fills for a day (the classic failure).
  sim.schedule_at(Time::days(5), [&] {
    std::cout << "[day 5] disk-fill incident at UCSD_PG\n";
    grid.site("UCSD_PG")->disk().consume_unmanaged(
        grid.site("UCSD_PG")->disk().free());
  });
  sim.schedule_at(Time::days(6), [&] {
    grid.site("UCSD_PG")->disk().cleanup(
        grid.site("UCSD_PG")->disk().capacity());
  });

  sim.run_until(Time::days(40));

  const auto& db = grid.igoc().job_db();
  const auto stats = db.stats_for("uscms", Time::zero(), sim.now());
  const auto failures = db.failures("uscms", Time::zero(), sim.now());
  std::cout << "\ncompleted jobs: " << stats.jobs << ", mean runtime "
            << util::AsciiTable::num(stats.avg_runtime_hours, 1)
            << " h (OSCAR jobs run far beyond 30 h)\n"
            << "success rate: "
            << util::AsciiTable::percent(1.0 - failures.failure_rate())
            << " (paper: ~70%)\n";

  // Where did the long jobs actually run?  Only the 1300-hour queues can
  // host the OSCAR tail.
  std::map<std::string, int> by_site;
  for (const auto& r : db.records()) {
    if (r.vo == "uscms" && r.success && r.runtime() > Time::hours(40)) {
      ++by_site[r.site];
    }
  }
  std::cout << "\njobs longer than 40 h by site (only long-walltime queues "
               "qualify):\n";
  for (const auto& [site, n] : by_site) {
    std::cout << "  " << site << ": " << n << "\n";
  }

  std::cout << "\nfailure classes (note the clustering from the UCSD disk "
               "incident):\n";
  for (const auto& [cls, n] : failures.by_class) {
    std::cout << "  " << cls << ": " << n << "\n";
  }

  // Archived samples are in the FNAL SE catalog, ready for the data
  // challenge.
  int archived = 0;
  for (int i = 1; i <= 50; ++i) {
    if (!grid.rls("uscms")
             ->locate("uscms/dc04/" + std::to_string(i) + ".digi",
                      sim.now())
             .empty()) {
      ++archived;
    }
  }
  std::cout << "\ndigitized samples archived at FNAL: " << archived
            << "/50\n";
  return 0;
}
