// Quickstart: build a tiny two-site grid, bring a VO online, submit a
// two-step workflow through Chimera -> Pegasus -> DAGMan -> Condor-G ->
// GRAM, and read the accounting back out of the monitoring stack.
//
//   $ ./quickstart
#include <iostream>

#include "core/grid3.h"
#include "core/site.h"
#include "monitoring/mdviewer.h"
#include "pacman/vdt.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

int main() {
  using namespace grid3;

  // 1. A simulation clock and the grid fabric.
  sim::Simulation sim;
  core::Grid3 grid{sim, /*seed=*/2003};

  // 2. One VO with one user (an application administrator).
  grid.add_vo("demo");
  const vo::Certificate admin =
      grid.add_user("demo", "quickstart admin", vo::Role::kAppAdmin);

  // 3. Two sites: a big PBS cluster and a small Condor pool.  add_site
  //    runs the full Pacman install + certification pipeline and wires
  //    monitoring, grid-maps, and the information index.
  core::SiteConfig big;
  big.name = "BIG_PBS";
  big.owner_vo = "demo";
  big.cpus = 64;
  big.lrms = core::LrmsType::kPbs;
  big.policy.max_walltime = Time::hours(48);
  grid.add_site(big);

  core::SiteConfig small;
  small.name = "SMALL_CONDOR";
  small.owner_vo = "demo";
  small.cpus = 8;
  small.lrms = core::LrmsType::kCondor;
  grid.add_site(small);

  // 4. Install an application package on both sites; the install
  //    publishes a Grid3App attribute the planner will discover.
  pacman::add_application_package(grid.igoc().pacman_cache(), "demo-app",
                                  Time::minutes(10));
  grid.site("BIG_PBS")->install_application(grid.igoc().pacman_cache(),
                                            "demo-app");
  grid.site("SMALL_CONDOR")->install_application(grid.igoc().pacman_cache(),
                                                 "demo-app");
  grid.start_operations();
  sim.run_until(Time::minutes(10));  // let monitoring warm up

  // 5. Describe the work as virtual data: simulate -> reconstruct.
  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"simulate", "1.0", "demo-app"});
  vdc.add_transformation({"reconstruct", "1.0", "demo-app"});
  vdc.add_derivation({.id = "sim",
                      .transformation = "simulate",
                      .inputs = {},
                      .outputs = {"demo/run1.hits"},
                      .runtime = Time::hours(4),
                      .output_size = Bytes::gb(2),
                      .scratch = Bytes::gb(4)});
  vdc.add_derivation({.id = "reco",
                      .transformation = "reconstruct",
                      .inputs = {"demo/run1.hits"},
                      .outputs = {"demo/run1.esd"},
                      .runtime = Time::hours(2),
                      .output_size = Bytes::gb(1),
                      .scratch = Bytes::gb(2)});
  const auto abstract_dag = vdc.request({"demo/run1.esd"});

  // 6. Plan it onto the grid and execute under the admin's proxy.
  workflow::PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("demo")};
  workflow::PlannerConfig cfg;
  cfg.vo = "demo";
  cfg.archive_site = "BIG_PBS";
  util::Rng rng{7};
  auto plan = planner.plan(*abstract_dag, cfg, rng, sim.now());
  if (!plan) {
    std::cerr << "planning failed: no eligible site\n";
    return 1;
  }
  std::cout << "planned " << plan->nodes.size() << " nodes ("
            << plan->count(workflow::NodeType::kCompute) << " compute, "
            << plan->count(workflow::NodeType::kStageOut) << " stage-out, "
            << plan->count(workflow::NodeType::kRegister) << " register)\n";

  const auto proxy = grid.make_proxy(admin, "demo", Time::hours(48));
  bool done_ok = false;
  grid.dagman("demo").run(
      std::move(*plan), *proxy,
      [&](const workflow::DagRunStats& s) { done_ok = s.success; },
      [&](const workflow::NodeResult& r) {
        std::cout << "  node " << r.index << " ["
                  << workflow::to_string(r.type) << "] at " << r.site
                  << (r.ok ? " ok" : " FAILED") << " t+"
                  << r.finished.to_hours() << "h\n";
      });
  sim.run_until(Time::days(3));

  // 7. Read the results back from RLS and the monitoring bus.
  std::cout << "workflow " << (done_ok ? "succeeded" : "failed") << "\n";
  for (const auto& [site, replica] :
       grid.rls("demo")->locate("demo/run1.esd", sim.now())) {
    std::cout << "output replica at " << site << ": " << replica.pfn << " ("
              << replica.size.to_gb() << " GB)\n";
  }
  const auto beat = grid.igoc().bus().latest(
      "BIG_PBS", monitoring::gmetric::kHeartbeat);
  std::cout << "BIG_PBS last ganglia heartbeat at t+"
            << (beat ? beat->t.to_hours() : -1.0) << "h\n";
  return done_ok ? 0 : 1;
}
