// Data transfer challenge (section 6.3): drive the Entrada site-matrix
// generator toward the 2 TB/day milestone and read reliability out of
// the NetLogger instrumentation -- including what happens when a site's
// network is cut mid-transfer.
//
//   $ ./data_transfer_challenge
#include <iostream>

#include "apps/entrada.h"
#include "core/roster.h"
#include "util/table.h"

int main() {
  using namespace grid3;
  sim::Simulation sim;
  core::Grid3 grid{sim, 63};
  core::AssembleOptions opts;
  opts.cpu_scale = 0.2;  // transfer study: CPUs barely matter
  auto assembled = core::assemble_grid3(grid, opts);

  apps::EntradaDemo::Options en;
  en.months = 1;
  en.sc2003_per_day = 220.0;
  apps::EntradaDemo entrada{grid, en};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "ivdgl") entrada.set_users(vu.app_admins, {});
  }
  entrada.start();

  // Cut one busy site's WAN for two hours on day 3 (a section 6.1-style
  // network interruption) and watch the retry machinery absorb it.
  sim.schedule_at(Time::days(3), [&] {
    std::cout << "[day 3] network cut at UWMAD_CS\n";
    grid.network().set_node_up(grid.site("UWMAD_CS")->node(), false);
  });
  sim.schedule_at(Time::days(3) + Time::hours(2), [&] {
    std::cout << "[day 3] UWMAD_CS link restored\n";
    grid.network().set_node_up(grid.site("UWMAD_CS")->node(), true);
  });

  for (int day = 1; day <= 7; ++day) {
    sim.run_until(Time::days(day));
    std::cout << "day " << day << ": "
              << util::AsciiTable::num(entrada.moved().to_tb(), 2)
              << " TB moved so far, " << entrada.transfers_ok() << " ok / "
              << entrada.transfers_failed() << " failed\n";
  }
  entrada.stop();
  sim.run_until(Time::days(8));

  const double tb_per_day = entrada.moved().to_tb() / 7.0;
  std::cout << "\nachieved " << util::AsciiTable::num(tb_per_day, 2)
            << " TB/day (milestone: 2-3 TB/day target, 4 achieved)\n";

  const auto counts = grid.netlogger().counts_by_event();
  std::cout << "\nNetLogger event summary:\n";
  for (const auto& [event, n] : counts) {
    std::cout << "  " << event << ": " << n << "\n";
  }
  const auto retries = counts.contains("transfer.retry")
                           ? counts.at("transfer.retry")
                           : 0;
  std::cout << "\nthe " << retries
            << " retries absorbed the outage: long-running transfers ran "
               "reliably (section 6.3)\n";
  return tb_per_day >= 2.0 ? 0 : 1;
}
