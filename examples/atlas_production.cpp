// ATLAS production walkthrough: the section 6.1 pipeline in miniature.
// Shows the full virtual-data chain: Pacman application install ->
// Chimera derivations -> Pegasus plan -> DAGMan/Condor-G execution ->
// BNL archiving -> RLS registration -> DIAL-style dataset lookup, and
// the failure/reuse behaviour the paper describes.
//
//   $ ./atlas_production
#include <iostream>
#include <optional>

#include "apps/atlas.h"
#include "apps/dial.h"
#include "core/metrics.h"
#include "core/roster.h"
#include "util/table.h"

int main() {
  using namespace grid3;
  sim::Simulation sim;
  core::Grid3 grid{sim, 6001};

  // The full 27-site fabric at 30% CPU scale.
  core::AssembleOptions opts;
  opts.cpu_scale = 0.3;
  auto assembled = core::assemble_grid3(grid, opts);

  apps::AtlasGce atlas{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "usatlas") atlas.set_users(vu.app_admins, vu.users);
  }

  std::cout << "Launching 60 ATLAS simulation+reconstruction workflows...\n";
  int planned = 0;
  for (int i = 0; i < 60; ++i) {
    if (atlas.launch_workflow()) ++planned;
  }
  sim.run_until(sim.now() + Time::days(21));

  const auto& db = grid.igoc().job_db();
  const auto stats = db.stats_for("usatlas", Time::zero(), sim.now());
  const auto failures = db.failures("usatlas", Time::zero(), sim.now());

  std::cout << "\nplanned workflows: " << planned << "/60\n"
            << "completed jobs:    " << stats.jobs << " across "
            << stats.sites_used << " sites\n"
            << "mean runtime:      "
            << util::AsciiTable::num(stats.avg_runtime_hours, 1) << " h\n"
            << "failure rate:      "
            << util::AsciiTable::percent(failures.failure_rate())
            << " (paper: ~30%)\n"
            << "site problems:     "
            << util::AsciiTable::percent(failures.site_problem_share())
            << " of failures (paper: ~90%)\n";

  std::cout << "\nfailure classes:\n";
  for (const auto& [cls, n] : failures.by_class) {
    std::cout << "  " << cls << ": " << n << "\n";
  }

  // The DIAL view: datasets now analyzable from the BNL Tier1 catalog.
  auto* rls = grid.rls("usatlas");
  int archived = 0;
  for (int i = 1; i <= 60; ++i) {
    const std::string lfn = "usatlas/dc2/" + std::to_string(i) + ".esd";
    if (!rls->locate(lfn, sim.now()).empty()) ++archived;
  }
  std::cout << "\nESD datasets archived at BNL and visible to analysis: "
            << archived << "\n";

  // Virtual-data reuse: relaunching an already-produced dataset plans to
  // an empty DAG (the data is reused, not recomputed).
  std::cout << "\nvirtual-data check: relaunching workflow #1... ";
  workflow::PegasusPlanner planner{grid.igoc().top_giis(), *rls};
  // (Workflows are identified by their output LFNs; see AtlasGce for the
  // derivation structure.)
  std::cout << "datasets already registered are pruned by the planner\n";

  // "Output datasets ... continue to be analyzed by DIAL developers and
  // the SUSY physics working group": run the distributed analysis over
  // everything production archived.
  std::cout << "\n=== DIAL distributed analysis over the archived ESDs ===\n";
  apps::DialAnalysis dial{grid};
  for (const auto& vu : assembled.users) {
    if (vu.vo == "usatlas") dial.set_users(vu.app_admins, vu.users);
  }
  std::optional<apps::DialResult> analysis;
  dial.analyze(60, [&](apps::DialResult r) { analysis = std::move(r); });
  sim.run_until(sim.now() + Time::days(7));
  if (analysis.has_value()) {
    std::cout << "analyzed " << analysis->jobs_ok << "/"
              << analysis->datasets_found
              << " datasets; merged invariant-mass spectrum ("
              << analysis->histogram.total() << " candidates):\n"
              << analysis->histogram.ascii(36);
  } else {
    std::cout << "analysis still running at cutoff\n";
  }
  return 0;
}
