// Site administrator tour: what bringing a new site onto Grid3 looked
// like (section 5.1) -- Pacman install from the iGOC cache, validation
// and certification, grid-map generation from the VOMS servers, GIIS
// registration, first probes from the Site Status Catalog, and the
// first user job arriving.
//
//   $ ./site_admin_tour
#include <iostream>

#include "core/grid3.h"
#include "core/site.h"
#include "mds/schema.h"
#include "pacman/vdt.h"

int main() {
  using namespace grid3;
  sim::Simulation sim;
  core::Grid3 grid{sim, 404};

  // The grid already has its VO layer.
  for (const auto& vo_name : core::canonical_vos()) grid.add_vo(vo_name);
  const auto alice = grid.add_user("usatlas", "alice");

  std::cout << "== 1. Pacman installation from the iGOC cache ==\n";
  const auto* vdt = grid.igoc().pacman_cache().find("grid3-vdt");
  std::cout << "installing " << vdt->name << " " << vdt->version
            << " (dependency closure of "
            << grid.igoc().pacman_cache().resolve("grid3-vdt")->size()
            << " packages)\n";

  core::SiteConfig cfg;
  cfg.name = "NEWSITE";
  cfg.location = "Example U.";
  cfg.owner_vo = "usatlas";
  cfg.cpus = 32;
  cfg.lrms = core::LrmsType::kPbs;
  core::Site& site = grid.add_site(cfg, /*reliability=*/5.0);

  const auto& report = site.install_report();
  std::cout << "installed " << report.installed.size() << " packages in "
            << report.elapsed.to_minutes() << " minutes, "
            << report.reinstalls << " reinstalls after validation hits, "
            << report.caught_defects.size() << " defects caught, "
            << report.latent_defects.size() << " latent\n";

  std::cout << "\n== 2. Information publication (GLUE + Grid3 schema) ==\n";
  const auto snap = grid.igoc().top_giis().lookup("NEWSITE", sim.now());
  for (const auto* key :
       {&mds::glue::kTotalCpus, &mds::glue::kLrmsType,
        &mds::glue::kMaxWallClockMinutes}) {
    std::cout << "  " << *key << " = "
              << snap->get_string(*key).value_or("?") << "\n";
  }
  std::cout << "  " << mds::grid3ext::kAppDir << " = "
            << snap->get_string(mds::grid3ext::kAppDir).value_or("?")
            << "\n";

  std::cout << "\n== 3. Grid-map generation from the VOMS servers ==\n";
  std::cout << "grid-map entries: " << site.gridmap().map(alice.subject_dn)
                                           .has_value()
            << " (alice -> "
            << site.gridmap().map(alice.subject_dn)->unix_name << ")\n";

  std::cout << "\n== 4. Site Status Catalog verification ==\n";
  grid.start_operations();
  sim.run_until(Time::hours(1));
  const auto* entry = grid.igoc().site_catalog().entry("NEWSITE");
  std::cout << "catalog status: " << monitoring::to_string(entry->status)
            << " (probes:";
  for (const auto& probe : entry->last_results) {
    std::cout << " " << probe.probe << "=" << (probe.pass ? "ok" : "FAIL");
  }
  std::cout << ")\n";

  std::cout << "\n== 5. First grid job arrives ==\n";
  const auto proxy = grid.make_proxy(alice, "usatlas");
  gram::GramJob job;
  job.proxy = *proxy;
  job.request.vo = "usatlas";
  job.request.user_dn = alice.subject_dn;
  job.request.actual_runtime = Time::hours(2);
  job.request.requested_walltime = Time::hours(3);
  job.scratch = Bytes::gb(1);
  bool ok = false;
  // A patient Condor-G: retry transient jobmanager flakes, as production
  // submit hosts were configured to.
  gram::CondorG condor_g{
      sim, {.retry = {.base = Time::minutes(5), .max_retries = 5}}};
  condor_g.submit_to(site.gatekeeper(), std::move(job),
                     [&](const gram::GramResult& r) { ok = r.ok(); });
  sim.run_until(sim.now() + Time::days(1));
  std::cout << "job " << (ok ? "completed" : "failed") << "; site usage: "
            << site.scheduler().vo_usage("usatlas").to_hours()
            << " CPU-hours charged to usatlas\n";

  std::cout << "\nNEWSITE is in production. (Sites that failed "
               "certification would repeat step 1 -- see DESIGN.md.)\n";
  return ok ? 0 : 1;
}
