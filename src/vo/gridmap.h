// Site-local authorization: grid-map files and VO group accounts.
//
// Grid3 generated local grid-map files by calling the EDG script against
// each VO's VOMS server (paper section 5.3).  The map is a *snapshot*:
// users added to a VO after the last regeneration are rejected by the
// gatekeeper until the site refreshes -- a real operational failure mode
// this module reproduces.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.h"
#include "vo/voms.h"

namespace grid3::vo {

/// Unix group account convention: one shared account per VO per site
/// (e.g. "usatlas1", "uscms1").
struct GroupAccount {
  std::string unix_name;
  std::string vo;
};

/// A site's grid-map file plus the VO -> group-account policy used to
/// regenerate it.
class GridMapFile {
 public:
  /// Declare which VOs the site supports and the account each maps to.
  void support_vo(const std::string& vo, GroupAccount account);
  [[nodiscard]] bool supports_vo(const std::string& vo) const;
  [[nodiscard]] std::vector<std::string> supported_vos() const;

  /// Regenerate from the given VOMS servers (edg-mkgridmap).  Servers for
  /// unsupported VOs are ignored; unavailable servers leave that VO's
  /// previous entries intact (stale but functional -- matching the real
  /// script's behaviour of keeping the old file on failure).
  /// Returns the number of DN entries in the new map.
  std::size_t regenerate(const std::vector<const VomsServer*>& servers,
                         Time now);

  /// Gatekeeper lookup: DN -> local account.
  [[nodiscard]] std::optional<GroupAccount> map(const std::string& dn) const;

  [[nodiscard]] std::size_t entries() const { return map_.size(); }
  [[nodiscard]] Time last_regenerated() const { return last_regen_; }

 private:
  std::unordered_map<std::string, GroupAccount> policy_;  // vo -> account
  std::unordered_map<std::string, GroupAccount> map_;     // dn -> account
  Time last_regen_;
};

}  // namespace grid3::vo
