#include "vo/gridmap.h"

#include <algorithm>

namespace grid3::vo {

void GridMapFile::support_vo(const std::string& vo, GroupAccount account) {
  policy_[vo] = std::move(account);
}

bool GridMapFile::supports_vo(const std::string& vo) const {
  return policy_.contains(vo);
}

std::vector<std::string> GridMapFile::supported_vos() const {
  std::vector<std::string> out;
  out.reserve(policy_.size());
  for (const auto& [vo, account] : policy_) out.push_back(vo);
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t GridMapFile::regenerate(
    const std::vector<const VomsServer*>& servers, Time now) {
  std::unordered_map<std::string, GroupAccount> fresh;
  std::vector<std::string> refreshed_vos;
  for (const VomsServer* server : servers) {
    if (server == nullptr) continue;
    auto pol = policy_.find(server->vo());
    if (pol == policy_.end()) continue;  // site does not support this VO
    if (!server->available()) continue;  // keep previous entries
    refreshed_vos.push_back(server->vo());
    for (const Member& m : server->members()) {
      fresh[m.dn] = pol->second;
    }
  }
  // Carry forward entries for VOs whose server did not answer.
  for (const auto& [dn, account] : map_) {
    const bool vo_refreshed =
        std::find(refreshed_vos.begin(), refreshed_vos.end(), account.vo) !=
        refreshed_vos.end();
    if (!vo_refreshed) fresh.emplace(dn, account);
  }
  map_ = std::move(fresh);
  last_regen_ = now;
  return map_.size();
}

std::optional<GroupAccount> GridMapFile::map(const std::string& dn) const {
  auto it = map_.find(dn);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

}  // namespace grid3::vo
