#include "vo/voms.h"

#include <algorithm>

namespace grid3::vo {

const char* to_string(Role r) {
  switch (r) {
    case Role::kUser: return "user";
    case Role::kAppAdmin: return "app-admin";
    case Role::kVoAdmin: return "vo-admin";
    case Role::kSoftware: return "software";
  }
  return "?";
}

Certificate CertificateAuthority::issue(const std::string& subject_dn,
                                        Time now, Time lifetime) {
  Certificate cert;
  cert.subject_dn = subject_dn;
  cert.issuer = name_;
  cert.not_before = now;
  cert.not_after = now + lifetime;
  cert.serial = next_serial_++;
  return cert;
}

void CertificateAuthority::revoke(const Certificate& cert) {
  revoked_.insert(cert.serial);
}

bool CertificateAuthority::revoked(const Certificate& cert) const {
  return revoked_.contains(cert.serial);
}

bool CertificateAuthority::verify(const Certificate& cert, Time now) const {
  return cert.issuer == name_ && cert.within_validity(now) && !revoked(cert);
}

void VomsServer::add_member(const std::string& dn, Role role) {
  if (!members_.contains(dn)) order_.push_back(dn);
  members_[dn] = role;
}

bool VomsServer::remove_member(const std::string& dn) {
  if (members_.erase(dn) == 0) return false;
  order_.erase(std::remove(order_.begin(), order_.end(), dn), order_.end());
  return true;
}

bool VomsServer::is_member(const std::string& dn) const {
  return members_.contains(dn);
}

std::optional<Role> VomsServer::role_of(const std::string& dn) const {
  auto it = members_.find(dn);
  if (it == members_.end()) return std::nullopt;
  return it->second;
}

std::vector<Member> VomsServer::members() const {
  std::vector<Member> out;
  out.reserve(order_.size());
  for (const auto& dn : order_) {
    out.push_back({dn, members_.at(dn)});
  }
  return out;
}

std::size_t VomsServer::count_role(Role r) const {
  std::size_t n = 0;
  for (const auto& [dn, role] : members_) {
    if (role == r) ++n;
  }
  return n;
}

std::optional<VomsProxy> issue_proxy(const VomsServer& server,
                                     const Certificate& identity, Time now,
                                     Time lifetime) {
  if (!server.available()) return std::nullopt;
  const auto role = server.role_of(identity.subject_dn);
  if (!role.has_value()) return std::nullopt;
  if (!identity.within_validity(now)) return std::nullopt;
  VomsProxy proxy;
  proxy.identity = identity;
  proxy.vo = server.vo();
  proxy.role = *role;
  proxy.expires = now + lifetime;
  return proxy;
}

}  // namespace grid3::vo
