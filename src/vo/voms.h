// Virtual-organization management: X.509-style identities, a certificate
// authority, and per-VO VOMS attribute servers (paper section 5.3).
//
// Grid3 used the EDG VOMS: each VO runs a membership server; sites
// periodically pull the membership lists to generate local grid-map
// files that map certificate DNs onto VO group accounts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace grid3::vo {

/// An X.509-style identity certificate.  No real crypto: validity is a
/// lifetime window plus a revocation flag, which is all the failure modes
/// the simulation needs (expired proxies were a classic Grid3 headache).
struct Certificate {
  std::string subject_dn;
  std::string issuer;
  Time not_before;
  Time not_after;
  std::uint64_t serial = 0;

  [[nodiscard]] bool within_validity(Time now) const {
    return now >= not_before && now < not_after;
  }
};

/// Certificate authority issuing user and host certificates.
class CertificateAuthority {
 public:
  explicit CertificateAuthority(std::string name) : name_{std::move(name)} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  Certificate issue(const std::string& subject_dn, Time now, Time lifetime);

  void revoke(const Certificate& cert);
  [[nodiscard]] bool revoked(const Certificate& cert) const;

  /// Full chain check: issuer match, validity window, revocation list.
  [[nodiscard]] bool verify(const Certificate& cert, Time now) const;

  [[nodiscard]] std::size_t issued_count() const { return next_serial_ - 1; }

 private:
  std::string name_;
  std::uint64_t next_serial_ = 1;
  std::unordered_set<std::uint64_t> revoked_;
};

/// Roles a VO assigns its members.  The paper notes ~10% of users are
/// application administrators who perform most submissions.
enum class Role { kUser, kAppAdmin, kVoAdmin, kSoftware };

[[nodiscard]] const char* to_string(Role r);

struct Member {
  std::string dn;
  Role role = Role::kUser;
};

/// Per-VO membership server (VOMS).  Sites query it when regenerating
/// grid-map files; it can be taken down to model service failures.
class VomsServer {
 public:
  explicit VomsServer(std::string vo_name) : vo_{std::move(vo_name)} {}

  [[nodiscard]] const std::string& vo() const { return vo_; }

  void add_member(const std::string& dn, Role role);
  bool remove_member(const std::string& dn);
  [[nodiscard]] bool is_member(const std::string& dn) const;
  [[nodiscard]] std::optional<Role> role_of(const std::string& dn) const;
  [[nodiscard]] std::vector<Member> members() const;
  [[nodiscard]] std::size_t member_count() const { return members_.size(); }

  /// Count of members with a given role.
  [[nodiscard]] std::size_t count_role(Role r) const;

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

 private:
  std::string vo_;
  bool up_ = true;
  std::unordered_map<std::string, Role> members_;
  std::vector<std::string> order_;  // deterministic iteration order
};

/// Short-lived proxy credential carrying VOMS attributes, as presented to
/// gatekeepers by Condor-G.
struct VomsProxy {
  Certificate identity;
  std::string vo;
  Role role = Role::kUser;
  Time expires;

  [[nodiscard]] bool valid(Time now) const {
    return now < expires && identity.within_validity(now);
  }
};

/// Issue a proxy for a VO member.  Fails (nullopt) when the VOMS server is
/// down or the DN is not a member.
[[nodiscard]] std::optional<VomsProxy> issue_proxy(
    const VomsServer& server, const Certificate& identity, Time now,
    Time lifetime = Time::hours(12));

}  // namespace grid3::vo
