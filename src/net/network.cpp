#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace grid3::net {

const char* to_string(FlowStatus s) {
  switch (s) {
    case FlowStatus::kCompleted: return "completed";
    case FlowStatus::kFailedNetworkInterruption: return "network-interruption";
    case FlowStatus::kFailedNoRoute: return "no-route";
    case FlowStatus::kCancelled: return "cancelled";
  }
  return "?";
}

NodeId Network::add_node(NodeConfig cfg) {
  nodes_.push_back({std::move(cfg), true, Bytes::zero(), Bytes::zero()});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId n) const {
  return nodes_.at(n).cfg.name;
}

bool Network::node_up(NodeId n) const { return nodes_.at(n).up; }

double Network::link_capacity(std::uint64_t key) const {
  const Node& node = nodes_[static_cast<std::size_t>(key / 2)];
  return (key & 1U) != 0 ? node.cfg.downlink.bps() : node.cfg.uplink.bps();
}

double Network::done_at(const Flow& f, Time now) const {
  if (f.rate_bps <= 0.0) return f.anchor_done;
  const double secs = (now - f.anchor_time).to_seconds();
  if (secs <= 0.0) return f.anchor_done;
  return std::min(f.anchor_done + f.rate_bps * secs,
                  static_cast<double>(f.size.count()));
}

void Network::credit_to(Flow& f, double done) {
  // Credit node counters in whole bytes without accumulation drift: the
  // delta is against the last credited whole-byte mark, and `done` is a
  // pure function of time, so crediting at any intermediate schedule
  // yields the same cumulative counters.
  const auto whole = static_cast<std::int64_t>(done);
  if (whole <= f.credited) return;
  const Bytes delta = Bytes::of(whole - f.credited);
  f.credited = whole;
  nodes_[f.src].sent += delta;
  nodes_[f.dst].received += delta;
}

void Network::attach_links(FlowId id, const Flow& f) {
  link_flows_[link_out(f.src)].push_back(id);
  link_flows_[link_in(f.dst)].push_back(id);
}

void Network::detach_links(FlowId id, const Flow& f) {
  for (const std::uint64_t key : {link_out(f.src), link_in(f.dst)}) {
    auto it = link_flows_.find(key);
    if (it == link_flows_.end()) continue;
    auto& members = it->second;
    // Order-preserving erase: member order is FlowId order, which the
    // solver relies on for mode-identical arithmetic.
    members.erase(std::remove(members.begin(), members.end(), id),
                  members.end());
    if (members.empty()) link_flows_.erase(it);
  }
}

std::vector<std::uint64_t> Network::component(
    std::vector<std::uint64_t> seed) const {
  std::vector<std::uint64_t> out;
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> stack = std::move(seed);
  while (!stack.empty()) {
    const std::uint64_t key = stack.back();
    stack.pop_back();
    if (!seen.insert(key).second) continue;
    auto it = link_flows_.find(key);
    if (it == link_flows_.end()) continue;  // no active flows here
    out.push_back(key);
    for (const FlowId id : it->second) {
      const Flow& f = flows_.at(id);
      stack.push_back(link_out(f.src));
      stack.push_back(link_in(f.dst));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Network::reallocate(std::vector<std::uint64_t> seed) {
  ++reallocs_;
  // Scope: the affected component (partial) or every active link (full).
  // Either way the keys are ascending, so ties in the freeze order
  // resolve identically in both modes.
  std::vector<std::uint64_t> keys;
  if (cfg_.partial_reallocate) {
    keys = component(std::move(seed));
  } else {
    keys.reserve(link_flows_.size());
    for (const auto& [key, members] : link_flows_) keys.push_back(key);
  }
  links_solved_ += keys.size();
  if (keys.empty()) return;

  // Progressive filling: repeatedly freeze the most-constrained
  // unsaturated link at the equal share, deduct the frozen flows from
  // their other endpoints, and continue.  A flow's two links are always
  // both in scope (the component is closed under shared flows).
  struct SolveLink {
    double capacity;
    std::size_t unassigned;
    bool saturated;
    const std::vector<FlowId>* members;
  };
  std::vector<SolveLink> links;
  links.reserve(keys.size());
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(keys.size() * 2);
  for (const std::uint64_t key : keys) {
    const auto& members = link_flows_.find(key)->second;
    links.push_back({link_capacity(key), members.size(), false, &members});
    index.emplace(key, links.size() - 1);
  }
  std::unordered_map<FlowId, double> new_rate;  // -1 = unassigned
  for (const SolveLink& l : links) {
    for (const FlowId id : *l.members) new_rate.emplace(id, -1.0);
  }

  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  for (;;) {
    double best_share = 0.0;
    std::size_t best = kNone;
    for (std::size_t i = 0; i < links.size(); ++i) {
      SolveLink& l = links[i];
      if (l.saturated) continue;
      if (l.unassigned == 0) {
        l.saturated = true;
        continue;
      }
      const double share =
          l.capacity / static_cast<double>(l.unassigned);
      if (best == kNone || share < best_share) {
        best_share = share;
        best = i;
      }
    }
    if (best == kNone) break;
    links[best].saturated = true;
    const std::uint64_t best_key = keys[best];
    for (const FlowId id : *links[best].members) {
      double& rate = new_rate.find(id)->second;
      if (rate >= 0.0) continue;
      rate = best_share;
      // Deduct the frozen flow's rate from its other link.
      const Flow& f = flows_.find(id)->second;
      const std::uint64_t out_key = link_out(f.src);
      const std::uint64_t other =
          best_key == out_key ? link_in(f.dst) : out_key;
      SolveLink& ol = links[index.find(other)->second];
      if (!ol.saturated) {
        ol.capacity = std::max(0.0, ol.capacity - best_share);
        --ol.unassigned;
      }
    }
  }

  // Apply in FlowId order: only flows whose rate actually moved get
  // settled (anchor advance) and their completion rescheduled, so both
  // solver modes issue identical schedule/cancel streams and the kernel
  // assigns identical event ids (equivalence contract, network.h).
  const Time now = sim_.now();
  std::vector<FlowId> scoped;
  scoped.reserve(new_rate.size());
  for (const auto& [id, rate] : new_rate) scoped.push_back(id);
  std::sort(scoped.begin(), scoped.end());
  for (const FlowId id : scoped) {
    Flow& f = flows_.find(id)->second;
    double rate = new_rate.find(id)->second;
    if (rate < 0.0) rate = 0.0;
    if (rate == f.rate_bps) continue;  // untouched: event + anchor stand
    const double done = done_at(f, now);
    credit_to(f, done);
    f.anchor_done = done;
    f.anchor_time = now;
    f.rate_bps = rate;
    if (f.completion != 0) {
      sim_.cancel(f.completion);
      f.completion = 0;
    }
    ++completions_rescheduled_;
    const double remaining = static_cast<double>(f.size.count()) - done;
    if (remaining <= 0.0) {
      f.completion = sim_.schedule_at(now, [this, id] { on_completion(id); });
    } else if (rate > 0.0) {
      const Time eta = Time::seconds(remaining / rate);
      f.completion = sim_.schedule_at(now + eta + Time::micros(1),
                                      [this, id] { on_completion(id); });
    }
  }
}

void Network::on_completion(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& f = it->second;
  // Stale-rate guard: a live completion event always fired at the rate
  // it was scheduled under (rate changes cancel it), so this only trips
  // on floating-point edge rounding.
  if (done_at(f, sim_.now()) <
      static_cast<double>(f.size.count()) - 0.5) {
    return;
  }
  const std::vector<std::uint64_t> seed{link_out(f.src), link_in(f.dst)};
  finish_flow(id, FlowStatus::kCompleted);
  reallocate(seed);
}

FlowId Network::start_flow(NodeId src, NodeId dst, Bytes size,
                           FlowCallback done) {
  assert(src < nodes_.size() && dst < nodes_.size());
  const Time now = sim_.now();
  if (!route_open(src, dst) || !nodes_[src].up || !nodes_[dst].up) {
    FlowResult r;
    r.status = !route_open(src, dst) ? FlowStatus::kFailedNoRoute
                                     : FlowStatus::kFailedNetworkInterruption;
    r.requested = size;
    r.started = r.finished = now;
    if (done) done(r);
    return 0;
  }
  const FlowId id = next_flow_++;
  Flow f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  f.started = now;
  f.anchor_time = now;
  f.callback = std::move(done);
  attach_links(id, f);
  flows_.emplace(id, std::move(f));
  reallocate({link_out(src), link_in(dst)});
  return id;
}

void Network::cancel_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  const std::vector<std::uint64_t> seed{link_out(it->second.src),
                                        link_in(it->second.dst)};
  finish_flow(id, FlowStatus::kCancelled);
  reallocate(seed);
}

void Network::set_node_up(NodeId n, bool up) {
  Node& node = nodes_.at(n);
  if (node.up == up) return;
  node.up = up;
  if (!up) {
    // Fail every flow touching the node.  Collect ids and the affected
    // links first: finishing a flow mutates the map and runs user
    // callbacks (which may start new flows reentrantly).
    std::vector<FlowId> victims;
    std::vector<std::uint64_t> seed;
    for (const auto& [id, f] : flows_) {
      if (f.src == n || f.dst == n) {
        victims.push_back(id);
        seed.push_back(link_out(f.src));
        seed.push_back(link_in(f.dst));
      }
    }
    for (const FlowId id : victims) {
      finish_flow(id, FlowStatus::kFailedNetworkInterruption);
    }
    reallocate(std::move(seed));
  } else {
    // No flow can touch a down node, so coming back up frees capacity
    // nothing was waiting on; the solve is a no-op in both modes.
    reallocate({link_out(n), link_in(n)});
  }
}

void Network::block_route(NodeId src, NodeId dst) {
  blocked_[{src, dst}] = true;
}

void Network::unblock_route(NodeId src, NodeId dst) {
  blocked_.erase({src, dst});
}

bool Network::route_open(NodeId src, NodeId dst) const {
  if (blocked_.contains({src, dst})) return false;
  return nodes_.at(src).cfg.outbound_allowed || src == dst;
}

Bandwidth Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() || it->second.rate_bps <= 0.0
             ? Bandwidth{}
             : Bandwidth::bytes_per_sec(it->second.rate_bps);
}

Bytes Network::bytes_received(NodeId n) const {
  Bytes total = nodes_.at(n).received;
  auto it = link_flows_.find(link_in(n));
  if (it != link_flows_.end()) {
    const Time now = sim_.now();
    for (const FlowId id : it->second) {
      const Flow& f = flows_.find(id)->second;
      total += Bytes::of(static_cast<std::int64_t>(done_at(f, now)) -
                         f.credited);
    }
  }
  return total;
}

Bytes Network::bytes_sent(NodeId n) const {
  Bytes total = nodes_.at(n).sent;
  auto it = link_flows_.find(link_out(n));
  if (it != link_flows_.end()) {
    const Time now = sim_.now();
    for (const FlowId id : it->second) {
      const Flow& f = flows_.find(id)->second;
      total += Bytes::of(static_cast<std::int64_t>(done_at(f, now)) -
                         f.credited);
    }
  }
  return total;
}

Bandwidth Network::rate_in(NodeId n) const {
  double bps = 0.0;
  auto it = link_flows_.find(link_in(n));
  if (it != link_flows_.end()) {
    for (const FlowId id : it->second) {
      const double r = flows_.find(id)->second.rate_bps;
      if (r > 0.0) bps += r;
    }
  }
  return Bandwidth::bytes_per_sec(bps);
}

Bandwidth Network::rate_out(NodeId n) const {
  double bps = 0.0;
  auto it = link_flows_.find(link_out(n));
  if (it != link_flows_.end()) {
    for (const FlowId id : it->second) {
      const double r = flows_.find(id)->second.rate_bps;
      if (r > 0.0) bps += r;
    }
  }
  return Bandwidth::bytes_per_sec(bps);
}

void Network::finish_flow(FlowId id, FlowStatus status) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow f = std::move(it->second);
  detach_links(id, f);
  flows_.erase(it);
  if (f.completion != 0) sim_.cancel(f.completion);

  const Time now = sim_.now();
  if (status == FlowStatus::kCompleted) {
    // Settle rounding: a completed flow delivered exactly `size` bytes.
    const Bytes tail = Bytes::of(f.size.count() - f.credited);
    nodes_[f.src].sent += tail;
    nodes_[f.dst].received += tail;
  } else {
    credit_to(f, done_at(f, now));
  }

  FlowResult r;
  r.id = id;
  r.status = status;
  r.requested = f.size;
  r.transferred =
      status == FlowStatus::kCompleted
          ? f.size
          : Bytes::of(static_cast<std::int64_t>(done_at(f, now)));
  r.started = f.started;
  r.finished = now;
  if (f.callback) f.callback(r);
}

}  // namespace grid3::net
