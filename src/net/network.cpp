#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace grid3::net {

const char* to_string(FlowStatus s) {
  switch (s) {
    case FlowStatus::kCompleted: return "completed";
    case FlowStatus::kFailedNetworkInterruption: return "network-interruption";
    case FlowStatus::kFailedNoRoute: return "no-route";
    case FlowStatus::kCancelled: return "cancelled";
  }
  return "?";
}

NodeId Network::add_node(NodeConfig cfg) {
  nodes_.push_back({std::move(cfg), true, Bytes::zero(), Bytes::zero()});
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId n) const {
  return nodes_.at(n).cfg.name;
}

bool Network::node_up(NodeId n) const { return nodes_.at(n).up; }

void Network::set_node_up(NodeId n, bool up) {
  Node& node = nodes_.at(n);
  if (node.up == up) return;
  settle();
  node.up = up;
  if (!up) {
    // Fail every flow touching the node.  Collect ids first: finishing a
    // flow mutates the map and runs user callbacks.
    std::vector<FlowId> victims;
    for (const auto& [id, f] : flows_) {
      if (f.src == n || f.dst == n) victims.push_back(id);
    }
    for (FlowId id : victims) {
      finish_flow(id, FlowStatus::kFailedNetworkInterruption);
    }
  }
  reallocate();
}

void Network::block_route(NodeId src, NodeId dst) {
  blocked_[{src, dst}] = true;
}

void Network::unblock_route(NodeId src, NodeId dst) {
  blocked_.erase({src, dst});
}

bool Network::route_open(NodeId src, NodeId dst) const {
  if (blocked_.contains({src, dst})) return false;
  return nodes_.at(src).cfg.outbound_allowed || src == dst;
}

FlowId Network::start_flow(NodeId src, NodeId dst, Bytes size,
                           FlowCallback done) {
  assert(src < nodes_.size() && dst < nodes_.size());
  const Time now = sim_.now();
  if (!route_open(src, dst) || !nodes_[src].up || !nodes_[dst].up) {
    FlowResult r;
    r.status = !route_open(src, dst) ? FlowStatus::kFailedNoRoute
                                     : FlowStatus::kFailedNetworkInterruption;
    r.requested = size;
    r.started = r.finished = now;
    if (done) done(r);
    return 0;
  }
  settle();
  const FlowId id = next_flow_++;
  Flow f;
  f.src = src;
  f.dst = dst;
  f.size = size;
  f.started = now;
  f.last_update = now;
  f.callback = std::move(done);
  flows_.emplace(id, std::move(f));
  reallocate();
  return id;
}

void Network::cancel_flow(FlowId id) {
  if (!flows_.contains(id)) return;
  settle();
  finish_flow(id, FlowStatus::kCancelled);
  reallocate();
}

Bandwidth Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? Bandwidth{}
                            : Bandwidth::bytes_per_sec(it->second.rate_bps);
}

Bytes Network::bytes_received(NodeId n) const { return nodes_.at(n).received; }
Bytes Network::bytes_sent(NodeId n) const { return nodes_.at(n).sent; }

Bandwidth Network::rate_in(NodeId n) const {
  double bps = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.dst == n && f.rate_bps > 0.0) bps += f.rate_bps;
  }
  return Bandwidth::bytes_per_sec(bps);
}

Bandwidth Network::rate_out(NodeId n) const {
  double bps = 0.0;
  for (const auto& [id, f] : flows_) {
    if (f.src == n && f.rate_bps > 0.0) bps += f.rate_bps;
  }
  return Bandwidth::bytes_per_sec(bps);
}

void Network::settle() {
  const Time now = sim_.now();
  for (auto& [id, f] : flows_) {
    const double secs = (now - f.last_update).to_seconds();
    if (secs > 0.0 && f.rate_bps > 0.0) {
      const double moved =
          std::min(f.rate_bps * secs,
                   static_cast<double>(f.size.count()) - f.done_bytes);
      f.done_bytes += moved;
      // Credit node counters in whole bytes without accumulation drift.
      const auto whole = static_cast<std::int64_t>(f.done_bytes);
      const auto delta = Bytes::of(whole - f.credited);
      f.credited = whole;
      nodes_[f.src].sent += delta;
      nodes_[f.dst].received += delta;
    }
    f.last_update = now;
  }
}

void Network::reallocate() {
  // Progressive filling over access links.  Each flow uses link (src, out)
  // and (dst, in).  Repeatedly find the most-constrained unsaturated link,
  // freeze its flows at the equal share, and continue.
  struct LinkState {
    double capacity = 0.0;
    std::vector<FlowId> flows;
    bool saturated = false;
  };
  // Link key: node * 2 + direction (0 = out, 1 = in).
  std::map<std::uint64_t, LinkState> links;
  for (auto& [id, f] : flows_) {
    f.rate_bps = -1.0;  // unassigned
    auto& out = links[static_cast<std::uint64_t>(f.src) * 2];
    out.capacity = nodes_[f.src].cfg.uplink.bps();
    out.flows.push_back(id);
    auto& in = links[static_cast<std::uint64_t>(f.dst) * 2 + 1];
    in.capacity = nodes_[f.dst].cfg.downlink.bps();
    in.flows.push_back(id);
  }

  auto unassigned_on = [&](const LinkState& l) {
    std::size_t n = 0;
    for (FlowId id : l.flows) {
      if (flows_.at(id).rate_bps < 0.0) ++n;
    }
    return n;
  };

  while (true) {
    double best_share = 0.0;
    LinkState* best = nullptr;
    for (auto& [key, l] : links) {
      if (l.saturated) continue;
      const std::size_t n = unassigned_on(l);
      if (n == 0) {
        l.saturated = true;
        continue;
      }
      const double share = l.capacity / static_cast<double>(n);
      if (best == nullptr || share < best_share) {
        best_share = share;
        best = &l;
      }
    }
    if (best == nullptr) break;
    best->saturated = true;
    for (FlowId id : best->flows) {
      Flow& f = flows_.at(id);
      if (f.rate_bps < 0.0) {
        f.rate_bps = best_share;
        // Deduct the frozen flow's rate from its other link.
        for (auto& [key, l] : links) {
          if (&l == best || l.saturated) continue;
          if (std::find(l.flows.begin(), l.flows.end(), id) != l.flows.end()) {
            l.capacity = std::max(0.0, l.capacity - best_share);
          }
        }
      }
    }
  }

  // Reschedule completion events at the new rates.
  const Time now = sim_.now();
  for (auto& [id, f] : flows_) {
    if (f.rate_bps < 0.0) f.rate_bps = 0.0;
    if (f.completion != 0) {
      sim_.cancel(f.completion);
      f.completion = 0;
    }
    const double remaining =
        static_cast<double>(f.size.count()) - f.done_bytes;
    if (remaining <= 0.0) {
      const FlowId fid = id;
      f.completion = sim_.schedule_at(now, [this, fid] {
        settle();
        finish_flow(fid, FlowStatus::kCompleted);
        reallocate();
      });
    } else if (f.rate_bps > 0.0) {
      const Time eta = Time::seconds(remaining / f.rate_bps);
      const FlowId fid = id;
      f.completion =
          sim_.schedule_at(now + eta + Time::micros(1), [this, fid] {
            settle();
            auto it = flows_.find(fid);
            if (it == flows_.end()) return;
            if (it->second.done_bytes >=
                static_cast<double>(it->second.size.count()) - 0.5) {
              finish_flow(fid, FlowStatus::kCompleted);
              reallocate();
            }
            // Otherwise the rate changed since scheduling; reallocate()
            // already armed a fresh completion event.
          });
    }
  }
}

void Network::finish_flow(FlowId id, FlowStatus status) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow f = std::move(it->second);
  flows_.erase(it);
  if (f.completion != 0) sim_.cancel(f.completion);

  if (status == FlowStatus::kCompleted) {
    // Settle rounding: a completed flow delivered exactly `size` bytes.
    const Bytes tail = Bytes::of(f.size.count() - f.credited);
    nodes_[f.src].sent += tail;
    nodes_[f.dst].received += tail;
  }

  FlowResult r;
  r.id = id;
  r.status = status;
  r.requested = f.size;
  r.transferred = status == FlowStatus::kCompleted
                      ? f.size
                      : Bytes::of(static_cast<std::int64_t>(f.done_bytes));
  r.started = f.started;
  r.finished = sim_.now();
  if (f.callback) f.callback(r);
}

}  // namespace grid3::net
