// Wide-area network model connecting Grid3 sites.
//
// Topology: every node (site NIC, external archive) has an access link
// into an over-provisioned backbone -- the realistic regime for 2003
// ESnet/Abilene paths, where the site uplink (often the gatekeeper NIC,
// paper section 6.4 requirement 4) was the bottleneck.  Concurrent flows
// share links max-min fairly via progressive filling.
//
// Reallocation is *partial* by default: the solver maintains per-link
// flow sets and, on every flow start/finish/cancel and node outage,
// re-runs progressive filling only over the connected component of
// links reachable from the affected links through shared flows.  Flows
// outside that component cannot change rate under max-min fairness
// (their links' capacities and flow sets are untouched), so the partial
// re-solve costs O(component), not O(total flows).  The full-graph
// solve stays available behind NetworkConfig::partial_reallocate =
// false for differential testing; docs/KERNEL.md works a re-solve
// example step by step.
//
// Equivalence contract: partial and full modes produce *byte-identical*
// FlowResults, node byte counters, and simulation event streams.  Three
// properties make that hold exactly, not just approximately:
//
//   1. Per-flow progress is a pure function of (anchor, rate, now) --
//      the anchor advances only when the flow's rate changes, so
//      intermediate settles cannot perturb floating-point accumulation;
//   2. the component solver freezes links in the same ascending-key,
//      ascending-share order the full solve uses, and a component's
//      arithmetic never reads state outside the component, so rates
//      come out bit-identical;
//   3. completion events are cancelled and rescheduled only for flows
//      whose rate actually moved, in FlowId order, so both modes issue
//      the same schedule/cancel calls in the same order and the kernel
//      assigns identical event ids.
//
// Operation costs (C = affected component's links + flows):
//
//   start_flow / cancel_flow / completion   O(C^2) solve, O(C) settle
//   set_node_up(false)                      O(total flows) victim scan + O(C^2)
//   flow_rate / rate_in / rate_out          O(flows on the link)
//   bytes_sent / bytes_received             O(flows on the link)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "util/units.h"

namespace grid3::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

enum class FlowStatus {
  kCompleted,
  kFailedNetworkInterruption,  ///< an endpoint went down mid-transfer
  kFailedNoRoute,              ///< firewall / connectivity policy refused
  kCancelled,
};

[[nodiscard]] const char* to_string(FlowStatus s);

struct FlowResult {
  FlowId id = 0;
  FlowStatus status = FlowStatus::kCompleted;
  Bytes requested;
  Bytes transferred;
  Time started;
  Time finished;
  [[nodiscard]] bool ok() const { return status == FlowStatus::kCompleted; }
  [[nodiscard]] Bandwidth achieved() const {
    const double secs = (finished - started).to_seconds();
    return secs > 0 ? Bandwidth::bytes_per_sec(
                          static_cast<double>(transferred.count()) / secs)
                    : Bandwidth{};
  }
};

using FlowCallback = std::function<void(const FlowResult&)>;

struct NodeConfig {
  std::string name;
  Bandwidth uplink = Bandwidth::mbps(100);
  Bandwidth downlink = Bandwidth::mbps(100);
  /// Worker nodes on a private network cannot open outbound connections
  /// (application site-selection requirement 1, section 6.4).
  bool outbound_allowed = true;
};

/// Solver tuning.  `partial_reallocate = false` forces the full-graph
/// re-solve on every change -- the differential-testing baseline the
/// perf_kernel flow-churn series and the equivalence tests run against.
struct NetworkConfig {
  bool partial_reallocate = true;
};

class Network {
 public:
  explicit Network(sim::Simulation& sim, NetworkConfig cfg = {})
      : sim_{sim}, cfg_{cfg} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Flip the solver scope (normally set once before traffic starts;
  /// both modes are correct at any point, the flag only changes cost).
  void set_partial_reallocate(bool on) { cfg_.partial_reallocate = on; }
  [[nodiscard]] bool partial_reallocate() const {
    return cfg_.partial_reallocate;
  }

  NodeId add_node(NodeConfig cfg);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  /// Mark an endpoint down/up (network interruption injection).  Going
  /// down fails all flows touching the node.
  void set_node_up(NodeId n, bool up);
  [[nodiscard]] bool node_up(NodeId n) const;

  /// Firewall rule: block src -> dst (simulates closed ports, section 6.3
  /// "issues of account privileges, ports, and firewalls").
  void block_route(NodeId src, NodeId dst);
  void unblock_route(NodeId src, NodeId dst);
  [[nodiscard]] bool route_open(NodeId src, NodeId dst) const;

  /// Start a bulk transfer of `size` from src to dst.  The callback fires
  /// exactly once.  Returns 0 and fires the callback synchronously with
  /// kFailedNoRoute if connectivity policy refuses the pair.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size, FlowCallback done);

  void cancel_flow(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Current max-min fair rate of a flow (0 if unknown/stalled).
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;

  /// Cumulative bytes received by a node since construction ("data
  /// consumed by Grid3 sites", Figure 5).  Includes in-flight progress:
  /// the stored counter is topped up from each active flow's pure
  /// progress function, so lazy settling never under-reports.
  [[nodiscard]] Bytes bytes_received(NodeId n) const;
  [[nodiscard]] Bytes bytes_sent(NodeId n) const;

  /// Instantaneous aggregate flow rate into / out of a node (monitoring).
  [[nodiscard]] Bandwidth rate_in(NodeId n) const;
  [[nodiscard]] Bandwidth rate_out(NodeId n) const;

  // --- solver-cost introspection (bench + scoping tests) ---------------

  /// Progressive-filling invocations since construction.
  [[nodiscard]] std::uint64_t reallocs() const { return reallocs_; }
  /// Links visited across all solves: O(affected) in partial mode,
  /// O(all active links) per solve in full mode.
  [[nodiscard]] std::uint64_t links_solved() const { return links_solved_; }
  /// Completion events actually cancelled+rescheduled (only flows whose
  /// rate moved pay this).
  [[nodiscard]] std::uint64_t completions_rescheduled() const {
    return completions_rescheduled_;
  }

 private:
  struct Node {
    NodeConfig cfg;
    bool up = true;
    Bytes received;
    Bytes sent;
  };
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    Bytes size;
    /// Progress anchor: bytes done at anchor_time.  Advanced ONLY when
    /// the rate changes, so done_at() is a pure function of `now` and
    /// both solver modes account identically (equivalence contract).
    double anchor_done = 0.0;
    Time anchor_time;
    std::int64_t credited = 0;  ///< whole bytes pushed into node counters
    Time started;
    double rate_bps = -1.0;  ///< -1 until the first solve assigns a rate
    sim::EventId completion = 0;
    FlowCallback callback;
  };

  /// Link key: node * 2 + direction (0 = out/uplink, 1 = in/downlink).
  [[nodiscard]] static std::uint64_t link_out(NodeId n) {
    return static_cast<std::uint64_t>(n) * 2;
  }
  [[nodiscard]] static std::uint64_t link_in(NodeId n) {
    return static_cast<std::uint64_t>(n) * 2 + 1;
  }
  [[nodiscard]] double link_capacity(std::uint64_t key) const;

  /// Bytes transferred by `now` at the anchored rate (pure; clamped at
  /// the flow size).
  [[nodiscard]] double done_at(const Flow& f, Time now) const;
  /// Push the whole-byte progress delta into the endpoint counters.
  void credit_to(Flow& f, double done);

  void attach_links(FlowId id, const Flow& f);
  void detach_links(FlowId id, const Flow& f);
  /// Connected component of links reachable from `seed` through shared
  /// flows, sorted ascending (the solve order).
  [[nodiscard]] std::vector<std::uint64_t> component(
      std::vector<std::uint64_t> seed) const;

  /// Progressive-filling max-min fair allocation over the affected
  /// component (partial mode) or every active link (full mode);
  /// settles and reschedules completions only for flows whose rate
  /// actually moved.
  void reallocate(std::vector<std::uint64_t> seed);
  void on_completion(FlowId id);
  void finish_flow(FlowId id, FlowStatus status);

  sim::Simulation& sim_;
  NetworkConfig cfg_;
  std::vector<Node> nodes_;
  std::map<FlowId, Flow> flows_;
  /// Active flows per link, in FlowId order (flows attach in id order
  /// and detach preserving order).  Erased when empty, so iteration
  /// covers exactly the links with traffic.
  std::map<std::uint64_t, std::vector<FlowId>> link_flows_;
  std::map<std::pair<NodeId, NodeId>, bool> blocked_;
  FlowId next_flow_ = 1;
  std::uint64_t reallocs_ = 0;
  std::uint64_t links_solved_ = 0;
  std::uint64_t completions_rescheduled_ = 0;
};

}  // namespace grid3::net
