// Wide-area network model connecting Grid3 sites.
//
// Topology: every node (site NIC, external archive) has an access link
// into an over-provisioned backbone -- the realistic regime for 2003
// ESnet/Abilene paths, where the site uplink (often the gatekeeper NIC,
// paper section 6.4 requirement 4) was the bottleneck.  Concurrent flows
// share links max-min fairly via progressive filling; rates are
// recomputed on every flow arrival/departure and node outage.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "util/units.h"

namespace grid3::net {

using NodeId = std::uint32_t;
using FlowId = std::uint64_t;

enum class FlowStatus {
  kCompleted,
  kFailedNetworkInterruption,  ///< an endpoint went down mid-transfer
  kFailedNoRoute,              ///< firewall / connectivity policy refused
  kCancelled,
};

[[nodiscard]] const char* to_string(FlowStatus s);

struct FlowResult {
  FlowId id = 0;
  FlowStatus status = FlowStatus::kCompleted;
  Bytes requested;
  Bytes transferred;
  Time started;
  Time finished;
  [[nodiscard]] bool ok() const { return status == FlowStatus::kCompleted; }
  [[nodiscard]] Bandwidth achieved() const {
    const double secs = (finished - started).to_seconds();
    return secs > 0 ? Bandwidth::bytes_per_sec(
                          static_cast<double>(transferred.count()) / secs)
                    : Bandwidth{};
  }
};

using FlowCallback = std::function<void(const FlowResult&)>;

struct NodeConfig {
  std::string name;
  Bandwidth uplink = Bandwidth::mbps(100);
  Bandwidth downlink = Bandwidth::mbps(100);
  /// Worker nodes on a private network cannot open outbound connections
  /// (application site-selection requirement 1, section 6.4).
  bool outbound_allowed = true;
};

class Network {
 public:
  explicit Network(sim::Simulation& sim) : sim_{sim} {}
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  NodeId add_node(NodeConfig cfg);
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  /// Mark an endpoint down/up (network interruption injection).  Going
  /// down fails all flows touching the node.
  void set_node_up(NodeId n, bool up);
  [[nodiscard]] bool node_up(NodeId n) const;

  /// Firewall rule: block src -> dst (simulates closed ports, section 6.3
  /// "issues of account privileges, ports, and firewalls").
  void block_route(NodeId src, NodeId dst);
  void unblock_route(NodeId src, NodeId dst);
  [[nodiscard]] bool route_open(NodeId src, NodeId dst) const;

  /// Start a bulk transfer of `size` from src to dst.  The callback fires
  /// exactly once.  Returns 0 and fires the callback synchronously with
  /// kFailedNoRoute if connectivity policy refuses the pair.
  FlowId start_flow(NodeId src, NodeId dst, Bytes size, FlowCallback done);

  void cancel_flow(FlowId id);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Current max-min fair rate of a flow (0 if unknown/stalled).
  [[nodiscard]] Bandwidth flow_rate(FlowId id) const;

  /// Cumulative bytes received by a node since construction ("data
  /// consumed by Grid3 sites", Figure 5).
  [[nodiscard]] Bytes bytes_received(NodeId n) const;
  [[nodiscard]] Bytes bytes_sent(NodeId n) const;

  /// Instantaneous aggregate flow rate into / out of a node (monitoring).
  [[nodiscard]] Bandwidth rate_in(NodeId n) const;
  [[nodiscard]] Bandwidth rate_out(NodeId n) const;

 private:
  struct Node {
    NodeConfig cfg;
    bool up = true;
    Bytes received;
    Bytes sent;
  };
  struct Flow {
    NodeId src;
    NodeId dst;
    Bytes size;
    double done_bytes = 0.0;  // fractional accumulation between updates
    std::int64_t credited = 0;  // whole bytes already added to node counters
    Time started;
    Time last_update;
    double rate_bps = 0.0;
    sim::EventId completion = 0;
    FlowCallback callback;
  };

  /// Advance every flow's transferred-byte count to now at current rates.
  void settle();
  /// Progressive-filling max-min fair allocation; reschedules completions.
  void reallocate();
  void finish_flow(FlowId id, FlowStatus status);

  sim::Simulation& sim_;
  std::vector<Node> nodes_;
  std::map<FlowId, Flow> flows_;
  std::map<std::pair<NodeId, NodeId>, bool> blocked_;
  FlowId next_flow_ = 1;
};

}  // namespace grid3::net
