#include "workflow/dagman.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <map>

#include "broker/broker.h"
#include "core/ids.h"
#include "health/health.h"

namespace grid3::workflow {

namespace {

/// Health feedback for direct-submit (non-brokered) compute nodes; the
/// broker classifies its own submissions, so this covers only jobs the
/// broker never saw.  Mirrors ResourceBroker::report_health.
void report_gram_health(health::SiteHealthMonitor* health,
                        const std::string& site, const gram::GramResult& r,
                        Time requested_walltime, Time now) {
  if (health == nullptr) return;
  switch (r.status) {
    case gram::GramStatus::kCompleted:
      health->report(site, health::Service::kSubmit, true, now);
      health->report_batch(site, true, r.submitted, r.finished,
                           requested_walltime, now);
      break;
    case gram::GramStatus::kGatekeeperDown:
    case gram::GramStatus::kGatekeeperOverloaded:
      health->report(site, health::Service::kSubmit, false, now);
      break;
    case gram::GramStatus::kStageInFailed:
    case gram::GramStatus::kStageOutFailed:
      health->report(site, health::Service::kTransfer, false, now);
      break;
    case gram::GramStatus::kDiskFull:
      health->report(site, health::Service::kStorage, false, now);
      break;
    case gram::GramStatus::kEnvironmentError:
      health->report(site, health::Service::kBatch, false, now);
      break;
    case gram::GramStatus::kJobKilled:
      health->report_batch(site, false, r.submitted, r.finished,
                           requested_walltime, now);
      break;
    default:
      break;
  }
}

}  // namespace

DagMan::DagMan(sim::Simulation& sim, gram::CondorG& condor_g,
               gridftp::GridFtpClient& ftp, rls::ReplicaLocationService* rls,
               SiteServices& services, DagManConfig cfg)
    : sim_{sim},
      condor_g_{condor_g},
      ftp_{ftp},
      rls_{rls},
      services_{services},
      cfg_{cfg} {}

void DagMan::run(ConcreteDag dag, vo::VomsProxy proxy, DoneFn done,
                 NodeObserver on_node) {
  ++dags_run_;
  auto run = std::make_shared<Run>();
  run->dag = std::move(dag);
  run->proxy = std::move(proxy);
  run->done = std::move(done);
  run->on_node = std::move(on_node);
  run->states.assign(run->dag.nodes.size(), NodeState::kPending);
  run->attempts.assign(run->dag.nodes.size(), 0);
  run->parents.resize(run->dag.nodes.size());
  run->children.resize(run->dag.nodes.size());
  for (const auto& [p, c] : run->dag.edges) {
    run->parents[c].push_back(p);
    run->children[p].push_back(c);
  }
  run->stats.nodes_total = run->dag.nodes.size();
  run->stats.started = sim_.now();
  run->stats.node_results.resize(run->dag.nodes.size());
  launch_ready(run);
  maybe_finish(run);
}

ConcreteDag DagMan::rescue_dag(const ConcreteDag& dag,
                               const DagRunStats& stats) {
  ConcreteDag rescue;
  // Map old index -> new index for unfinished nodes.
  std::vector<std::size_t> remap(dag.nodes.size(),
                                 static_cast<std::size_t>(-1));
  for (std::size_t idx : stats.rescue) {
    if (idx >= dag.nodes.size()) continue;
    remap[idx] = rescue.nodes.size();
    rescue.nodes.push_back(dag.nodes[idx]);
  }
  for (const auto& [parent, child] : dag.edges) {
    // Edges from completed parents vanish (the dependency is satisfied);
    // edges between two unfinished nodes carry over.
    if (remap[parent] == static_cast<std::size_t>(-1)) continue;
    if (remap[child] == static_cast<std::size_t>(-1)) continue;
    rescue.edges.emplace_back(remap[parent], remap[child]);
  }
  return rescue;
}

ConcreteDag DagMan::rescue_dag_refreshed(const ConcreteDag& dag,
                                         const DagRunStats& stats,
                                         Time now) const {
  ConcreteDag rescue = rescue_dag(dag, stats);
  if (broker_ == nullptr) return rescue;
  // Sites the live GIIS view still advertises, for pruning dead SEs out
  // of the archive chains alongside the candidate refresh.  Membership
  // over interned ids: an SE the registry never saw cannot be in the
  // view, so find() (not intern) suffices on the probe side.
  core::IdBitset live;
  for (const broker::SiteView& v : broker_->view(now)) live.set(v.id);
  const core::Interner<core::SiteId>& site_ids = broker_->id_registry()->sites;
  const health::SiteHealthMonitor* health = broker_->health();
  const auto se_alive = [&](const std::string& se) {
    const core::SiteId id = site_ids.find(se);
    return id.valid() && live.test(id) &&
           (health == nullptr || !health->quarantined(se));
  };
  for (ConcreteNode& node : rescue.nodes) {
    if (!node.broker_spec.has_value()) continue;
    broker::JobSpec& spec = *node.broker_spec;
    // Re-derive the eligible set from the broker's live view instead of
    // resubmitting against the plan-time snapshot -- quarantined sites
    // park in deferred_candidates exactly as at plan time.
    broker::JobSpec probe = spec;
    probe.candidates.clear();
    std::vector<std::string> eligible = broker_->eligible(probe, now);
    spec.candidates.clear();
    spec.deferred_candidates.clear();
    for (std::string& site : eligible) {
      if (health == nullptr || !health->quarantined(site)) {
        spec.candidates.push_back(std::move(site));
      } else {
        spec.deferred_candidates.push_back(std::move(site));
      }
    }
    if (spec.candidates.empty()) {
      // Everything quarantined: keep the full set and let the broker's
      // defer-not-disqualify hold wait out the outage (see planner).
      spec.candidates = std::move(spec.deferred_candidates);
      spec.deferred_candidates.clear();
    }
    // Refresh the SE preference chain too: a rescue that keeps a dead
    // or quarantined SE at the head would spend its first acquire hop
    // rediscovering what the view already knows.  Live SEs keep their
    // relative order at the head; dead ones sink to the tail (kept, in
    // case they return before this lease is ever acquired).
    if (!spec.stage_out_site.empty()) {
      std::vector<std::string> chain;
      chain.reserve(1 + spec.stage_out_fallbacks.size());
      chain.push_back(std::move(spec.stage_out_site));
      for (std::string& se : spec.stage_out_fallbacks) {
        chain.push_back(std::move(se));
      }
      std::stable_partition(chain.begin(), chain.end(), se_alive);
      spec.stage_out_site = std::move(chain.front());
      spec.stage_out_fallbacks.assign(
          std::make_move_iterator(chain.begin() + 1),
          std::make_move_iterator(chain.end()));
    }
  }
  return rescue;
}

void DagMan::launch_ready(const std::shared_ptr<Run>& run) {
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < run->dag.nodes.size(); ++i) {
    if (run->states[i] != NodeState::kPending) continue;
    bool ok = true;
    for (std::size_t p : run->parents[i]) {
      if (run->states[p] != NodeState::kDone) {
        ok = false;
        break;
      }
    }
    if (ok) ready.push_back(i);
  }

  // Gang grouping: ready brokered compute nodes sharing a gang_id go to
  // the broker as one unit so the whole level can be co-located.  A
  // gang with a single ready member (staggered readiness, rescue of a
  // partly finished level) takes the ordinary per-job path.
  if (broker_ != nullptr) {
    std::map<std::string, std::vector<std::size_t>> gangs;
    for (std::size_t i : ready) {
      const ConcreteNode& n = run->dag.nodes[i];
      if (n.type == NodeType::kCompute && n.broker_spec.has_value() &&
          !n.broker_spec->gang_id.empty()) {
        gangs[n.broker_spec->gang_id].push_back(i);
      }
    }
    for (auto& [id, members] : gangs) {
      if (members.size() < 2) continue;
      // start_gang marks members running; the loop below skips them.
      start_gang(run, members);
    }
  }

  for (std::size_t i : ready) {
    // Re-check: a gang launch (or a synchronous completion re-entering
    // launch_ready) may have started this node already.
    if (run->states[i] == NodeState::kPending) start_node(run, i);
  }
}

gram::GramJob DagMan::build_brokered_job(const Run& run,
                                         const ConcreteNode& node) {
  gram::GramJob job;
  job.proxy = run.proxy;
  job.request.vo = run.proxy.vo;
  job.request.user_dn = run.proxy.identity.subject_dn;
  job.request.requested_walltime = node.requested_walltime;
  job.request.actual_runtime = node.runtime;
  job.request.priority = node.priority;
  job.scratch = node.scratch;
  if (node.bytes > Bytes::zero() && !node.source_site.empty()) {
    job.stage_in = node.bytes;
    job.stage_in_source = services_.ftp(node.source_site);
  }
  // Placement intent: the gatekeeper archives the output itself (no
  // planned stage-out node), accounted against the archive SE's volume
  // -- or inside the lease's SRM reservation once the broker acquires
  // one and threads it into this job.
  const broker::JobSpec& spec = *node.broker_spec;
  if (spec.stage_out > Bytes::zero() && !spec.stage_out_site.empty()) {
    job.stage_out = spec.stage_out;
    job.stage_out_dest = services_.ftp(spec.stage_out_site);
    job.stage_out_volume = services_.volume(spec.stage_out_site);
  }
  return job;
}

void DagMan::start_gang(const std::shared_ptr<Run>& run,
                        std::vector<std::size_t> members) {
  broker::GangSpec gang;
  const broker::JobSpec& first = *run->dag.nodes[members.front()].broker_spec;
  gang.gang_id = first.gang_id;
  gang.intermediates = first.gang_intermediates;
  std::vector<gram::GramJob> jobs;
  gang.members.reserve(members.size());
  jobs.reserve(members.size());
  for (std::size_t idx : members) {
    run->states[idx] = NodeState::kRunning;
    ++run->outstanding;
    ++run->attempts[idx];
    const ConcreteNode& node = run->dag.nodes[idx];
    gang.members.push_back(*node.broker_spec);
    jobs.push_back(build_brokered_job(*run, node));
  }
  broker_->submit_gang(
      std::move(gang), std::move(jobs),
      [this, run, indices = std::move(members)](
          std::size_t m, const broker::BrokeredResult& br) {
        brokered_done(run, indices[m], br);
      });
}

void DagMan::brokered_done(const std::shared_ptr<Run>& run, std::size_t idx,
                           const broker::BrokeredResult& br) {
  const ConcreteNode& n = run->dag.nodes[idx];
  NodeResult r;
  r.index = idx;
  r.type = n.type;
  r.site = br.site.empty() ? n.site : br.site;
  r.source_site = n.source_site;
  r.bytes = n.bytes;
  r.ok = br.ok();
  r.attempts = run->attempts[idx];
  r.submitted = br.gram.submitted;
  r.started = br.gram.ok() ? br.gram.outcome.started : br.gram.submitted;
  r.finished = br.gram.finished;
  r.gram_status = br.gram.status;
  r.gram_contact = br.gram.gram_contact;
  if (!br.ok()) {
    if (!br.matched) {
      // Never bound: the broker's kNoEligibleSite analogue.
      r.site_problem = false;
      r.failure_class = "no-eligible-site";
    } else {
      r.site_problem = gram::is_site_problem(br.gram.status);
      r.failure_class = gram::to_string(br.gram.status);
    }
  }
  if (br.ok()) {
    // Completion-site feedback: late binding may have moved the job off
    // its provisional site.  Record where it *really* ran -- for a gang
    // member on a split placement that is the member's own site, which
    // can differ from the gang's primary -- and repoint children that
    // stage this node's output, so their stage-in source, transfer
    // pricing, and broker data affinity all follow the data.
    ConcreteNode& executed = run->dag.nodes[idx];
    if (!br.site.empty()) {
      executed.site = br.site;
      for (std::size_t c : run->children[idx]) {
        ConcreteNode& child = run->dag.nodes[c];
        if (child.source_parent == idx) {
          child.source_site = br.site;
          if (child.broker_spec.has_value()) {
            child.broker_spec->source_site = br.site;
          }
        } else if (child.type == NodeType::kCompute &&
                   child.broker_spec.has_value()) {
          // Provisionally co-located edge: no staging was folded, but
          // late binding decides the child's site anyway.  Hand the
          // broker a pure affinity hint (no stage-in bytes) so the
          // consumer of a gang's intermediates chases the site they
          // actually landed on instead of rediscovering it as a WAN
          // pull.
          child.broker_spec->source_site = br.site;
        }
      }
    }
    // Execute the registration intent: the gatekeeper just archived the
    // outputs at whichever SE the placement chain resolved to (the
    // broker reports it as archive_site when a lease was held), so the
    // replica entries must name that SE, not the plan's primary.
    const broker::JobSpec& spec = *executed.broker_spec;
    const std::string& archive_se =
        br.archive_site.empty() ? spec.stage_out_site : br.archive_site;
    if (rls_ != nullptr && !archive_se.empty() &&
        spec.stage_out > Bytes::zero() && !spec.output_lfns.empty() &&
        services_.ftp(archive_se) != nullptr) {
      const Bytes per_file =
          Bytes::of(spec.stage_out.count() /
                    static_cast<std::int64_t>(spec.output_lfns.size()));
      for (const std::string& lfn : spec.output_lfns) {
        rls_->register_replica(
            archive_se, lfn,
            {"gsiftp://" + archive_se + "/" + lfn, per_file, sim_.now()},
            sim_.now());
      }
    }
  }
  node_done(run, idx, std::move(r));
}

void DagMan::start_node(const std::shared_ptr<Run>& run, std::size_t idx) {
  run->states[idx] = NodeState::kRunning;
  ++run->outstanding;
  ++run->attempts[idx];
  const ConcreteNode& node = run->dag.nodes[idx];
  const Time now = sim_.now();

  switch (node.type) {
    case NodeType::kCompute: {
      if (broker_ != nullptr && node.broker_spec.has_value()) {
        broker_->submit(*node.broker_spec, build_brokered_job(*run, node),
                        [this, run, idx](const broker::BrokeredResult& br) {
                          brokered_done(run, idx, br);
                        });
        return;
      }
      gram::Gatekeeper* gk = services_.gatekeeper(node.site);
      if (gk == nullptr) {
        NodeResult r;
        r.index = idx;
        r.type = node.type;
        r.site = node.site;
        r.ok = false;
        r.attempts = run->attempts[idx];
        r.submitted = r.started = r.finished = now;
        r.gram_status = gram::GramStatus::kGatekeeperDown;
        r.site_problem = true;
        r.failure_class = "site-unknown";
        node_done(run, idx, std::move(r));
        return;
      }
      gram::GramJob job;
      job.proxy = run->proxy;
      job.request.vo = run->proxy.vo;
      job.request.user_dn = run->proxy.identity.subject_dn;
      job.request.requested_walltime = node.requested_walltime;
      job.request.actual_runtime = node.runtime;
      job.request.priority = node.priority;
      job.scratch = node.scratch;
      if (node.bytes > Bytes::zero() && !node.source_site.empty()) {
        job.stage_in = node.bytes;
        job.stage_in_source = services_.ftp(node.source_site);
      }
      condor_g_.submit_to(*gk, std::move(job),
                          [this, run, idx](const gram::GramResult& res) {
                            const ConcreteNode& n = run->dag.nodes[idx];
                            report_gram_health(health_, n.site, res,
                                               n.requested_walltime,
                                               sim_.now());
                            NodeResult r;
                            r.index = idx;
                            r.type = n.type;
                            r.site = n.site;
                            r.source_site = n.source_site;
                            r.bytes = n.bytes;  // jobmanager staging volume
                            r.ok = res.ok();
                            r.attempts = run->attempts[idx];
                            r.submitted = res.submitted;
                            r.started = res.ok() ? res.outcome.started
                                                 : res.submitted;
                            r.finished = res.finished;
                            r.gram_status = res.status;
                            r.gram_contact = res.gram_contact;
                            if (!res.ok()) {
                              r.site_problem =
                                  gram::is_site_problem(res.status);
                              r.failure_class = gram::to_string(res.status);
                            }
                            node_done(run, idx, std::move(r));
                          });
      return;
    }
    case NodeType::kStageIn:
    case NodeType::kStageOut: {
      gridftp::GridFtpServer* src = services_.ftp(node.source_site);
      gridftp::GridFtpServer* dst = services_.ftp(node.site);
      if (src == nullptr || dst == nullptr) {
        NodeResult r;
        r.index = idx;
        r.type = node.type;
        r.site = node.site;
        r.ok = false;
        r.attempts = run->attempts[idx];
        r.submitted = r.started = r.finished = now;
        r.transfer_status = gridftp::TransferStatus::kFailedServerDown;
        r.site_problem = true;
        r.failure_class = "ftp-endpoint-missing";
        node_done(run, idx, std::move(r));
        return;
      }
      gridftp::TransferRequest req;
      req.src = src;
      req.dst = dst;
      req.size = node.bytes;
      req.lfn = node.name;
      req.dest_volume = services_.volume(node.site);
      ftp_.transfer(std::move(req),
                    [this, run, idx](const gridftp::TransferRecord& rec) {
                      const ConcreteNode& n = run->dag.nodes[idx];
                      // Transfer nodes land at the destination SE; their
                      // outcomes score that site's transfer service.
                      if (health_ != nullptr) {
                        health_->report(n.site, health::Service::kTransfer,
                                        rec.ok(), sim_.now());
                      }
                      NodeResult r;
                      r.index = idx;
                      r.type = n.type;
                      r.site = n.site;
                      r.source_site = n.source_site;
                      r.bytes = rec.transferred;
                      r.ok = rec.ok();
                      r.attempts = run->attempts[idx];
                      r.submitted = rec.started;
                      r.started = rec.started;
                      r.finished = rec.finished;
                      r.transfer_status = rec.status;
                      if (!rec.ok()) {
                        r.site_problem = true;  // transfers fail at sites
                        r.failure_class = gridftp::to_string(rec.status);
                      }
                      node_done(run, idx, std::move(r));
                    });
      return;
    }
    case NodeType::kRegister: {
      // Catalog writes are cheap; model a short service round-trip.
      sim_.schedule_in(Time::seconds(2), [this, run, idx] {
        const ConcreteNode& n = run->dag.nodes[idx];
        if (rls_ != nullptr) {
          const Bytes per_file =
              n.lfns.empty() ? Bytes::zero()
                             : Bytes::of(n.bytes.count() /
                                         static_cast<std::int64_t>(
                                             n.lfns.size()));
          for (const std::string& lfn : n.lfns) {
            rls_->register_replica(
                n.site, lfn,
                {"gsiftp://" + n.site + "/" + lfn, per_file, sim_.now()},
                sim_.now());
          }
        }
        NodeResult r;
        r.index = idx;
        r.type = n.type;
        r.site = n.site;
        r.ok = true;
        r.attempts = run->attempts[idx];
        r.submitted = r.started = sim_.now();
        r.finished = sim_.now();
        node_done(run, idx, std::move(r));
      });
      return;
    }
  }
}

void DagMan::node_done(const std::shared_ptr<Run>& run, std::size_t idx,
                       NodeResult result) {
  assert(run->outstanding > 0);
  --run->outstanding;
  if (run->on_node) run->on_node(result);

  if (result.ok) {
    run->states[idx] = NodeState::kDone;
    ++run->stats.succeeded;
    run->stats.node_results[idx] = std::move(result);
    launch_ready(run);
    maybe_finish(run);
    return;
  }

  // A failure at a site the health monitor has since quarantined is the
  // grid's fault, not the node's: refund the attempt so the black hole
  // does not drain the retry budget.  Brokered nodes only -- the next
  // attempt re-matches elsewhere, whereas a fixed-site node would just
  // pound the quarantined site forever.
  if (health_ != nullptr && !result.site.empty() &&
      run->dag.nodes[idx].broker_spec.has_value() && broker_ != nullptr &&
      health_->quarantined(result.site) && run->attempts[idx] > 0) {
    --run->attempts[idx];
  }

  if (run->attempts[idx] <= cfg_.node_retries) {
    ++run->stats.retries;
    run->states[idx] = NodeState::kPending;
    // Hold the slot: mark running again after the delay via start_node.
    ++run->outstanding;  // reserve so the DAG does not finish early
    sim_.schedule_in(cfg_.retry_delay, [this, run, idx] {
      --run->outstanding;
      if (run->states[idx] == NodeState::kPending) start_node(run, idx);
      maybe_finish(run);
    });
    return;
  }

  run->states[idx] = NodeState::kFailed;
  ++run->stats.failed;
  run->stats.node_results[idx] = std::move(result);
  skip_descendants(run, idx);
  maybe_finish(run);
}

void DagMan::skip_descendants(const std::shared_ptr<Run>& run,
                              std::size_t idx) {
  for (std::size_t c : run->children[idx]) {
    if (run->states[c] == NodeState::kPending) {
      run->states[c] = NodeState::kSkipped;
      ++run->stats.skipped;
      skip_descendants(run, c);
    }
  }
}

void DagMan::maybe_finish(const std::shared_ptr<Run>& run) {
  if (run->finished || run->outstanding > 0) return;
  // Any pending node still launchable?  (launch_ready would have started
  // it; remaining pendings are blocked behind failures -> skipped.)
  for (std::size_t i = 0; i < run->states.size(); ++i) {
    if (run->states[i] == NodeState::kRunning) return;
    if (run->states[i] == NodeState::kPending) {
      // Blocked behind a failed/skipped parent?
      bool blocked = false;
      for (std::size_t p : run->parents[i]) {
        if (run->states[p] == NodeState::kFailed ||
            run->states[p] == NodeState::kSkipped) {
          blocked = true;
          break;
        }
      }
      if (!blocked) return;  // retry in flight or awaiting parents
      run->states[i] = NodeState::kSkipped;
      ++run->stats.skipped;
    }
  }
  run->finished = true;
  run->stats.finished = sim_.now();
  run->stats.success = run->stats.failed == 0 && run->stats.skipped == 0;
  for (std::size_t i = 0; i < run->states.size(); ++i) {
    if (run->states[i] != NodeState::kDone) run->stats.rescue.push_back(i);
  }
  if (run->done) run->done(run->stats);
}

}  // namespace grid3::workflow
