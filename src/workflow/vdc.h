// Chimera-style virtual data catalog (paper refs [32-34]).
//
// Transformations describe executables; derivations record how each
// logical file is produced from inputs by a transformation.  Requesting
// a set of LFNs yields the abstract derivation DAG needed to materialize
// them -- the "virtual data" idea: data is described by its recipe and
// produced (or reused) on demand.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/units.h"
#include "workflow/dag.h"

namespace grid3::workflow {

struct Transformation {
  std::string name;     ///< e.g. "pythia-gen", "atlsim-geant"
  std::string version;
  /// Application package whose Grid3App-<name> attribute a site must
  /// publish before this transformation can run there.
  std::string required_app;
};

struct Derivation {
  std::string id;
  std::string transformation;
  std::vector<std::string> inputs;   ///< LFNs consumed
  std::vector<std::string> outputs;  ///< LFNs produced
  Time runtime;                      ///< expected compute time
  Bytes output_size;                 ///< total size of produced data
  Bytes scratch;                     ///< working-space footprint
};

class VirtualDataCatalog {
 public:
  void add_transformation(Transformation t);
  void add_derivation(Derivation d);

  [[nodiscard]] const Transformation* find_transformation(
      const std::string& name) const;
  [[nodiscard]] const Derivation* producer_of(const std::string& lfn) const;
  [[nodiscard]] std::size_t derivation_count() const {
    return derivations_.size();
  }

  /// Provenance (Chimera's "querying" role): the derivation lineage of
  /// an LFN, root-first -- every derivation that contributed, directly
  /// or transitively, to producing it.  External inputs appear in
  /// `external_inputs`.  Empty lineage when the LFN has no producer.
  struct Provenance {
    std::vector<const Derivation*> lineage;   ///< root-first order
    std::vector<std::string> external_inputs; ///< staged, not derived
  };
  [[nodiscard]] Provenance provenance_of(const std::string& lfn) const;

  /// Derivations that (transitively) consume an LFN -- the invalidation
  /// set when an input dataset is found to be bad.
  [[nodiscard]] std::vector<const Derivation*> consumers_of(
      const std::string& lfn) const;

  /// Build the abstract DAG materializing `targets`: the transitive
  /// closure of producing derivations, with dependency edges where one
  /// derivation consumes another's output.  LFNs with no producer are
  /// treated as pre-existing inputs (to be located via RLS at planning
  /// time).  Returns nullopt if a target has no producer.
  [[nodiscard]] std::optional<AbstractDag> request(
      const std::vector<std::string>& targets) const;

 private:
  std::map<std::string, Transformation> transformations_;
  std::vector<Derivation> derivations_;
  std::map<std::string, std::size_t> producer_index_;  // lfn -> derivation
};

}  // namespace grid3::workflow
