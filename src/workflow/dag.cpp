#include "workflow/dag.h"

#include <algorithm>
#include <queue>

namespace grid3::workflow {
namespace {

template <typename Edges>
std::vector<std::size_t> roots_of(std::size_t n, const Edges& edges) {
  std::vector<bool> has_parent(n, false);
  for (const auto& [p, c] : edges) has_parent[c] = true;
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    if (!has_parent[i]) out.push_back(i);
  }
  return out;
}

template <typename Edges>
std::vector<std::size_t> parents_of(std::size_t j, const Edges& edges) {
  std::vector<std::size_t> out;
  for (const auto& [p, c] : edges) {
    if (c == j) out.push_back(p);
  }
  return out;
}

template <typename Edges>
bool acyclic_check(std::size_t n, const Edges& edges) {
  // Kahn's algorithm over an adjacency list built once: O(V + E), not the
  // O(V*E) a per-node edge rescan would cost on wide DAGs.
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> children(n);
  for (const auto& [p, c] : edges) {
    if (p >= n || c >= n) return false;
    ++indegree[c];
    children[p].push_back(c);
  }
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const std::size_t j = ready.front();
    ready.pop();
    ++seen;
    for (std::size_t c : children[j]) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  return seen == n;
}

}  // namespace

const char* to_string(NodeType t) {
  switch (t) {
    case NodeType::kCompute: return "compute";
    case NodeType::kStageIn: return "stage-in";
    case NodeType::kStageOut: return "stage-out";
    case NodeType::kRegister: return "register";
  }
  return "?";
}

std::vector<std::size_t> AbstractDag::roots() const {
  return roots_of(jobs.size(), edges);
}
std::vector<std::size_t> AbstractDag::parents(std::size_t j) const {
  return parents_of(j, edges);
}
bool AbstractDag::acyclic() const { return acyclic_check(jobs.size(), edges); }

std::vector<std::size_t> ConcreteDag::roots() const {
  return roots_of(nodes.size(), edges);
}
std::vector<std::size_t> ConcreteDag::parents(std::size_t j) const {
  return parents_of(j, edges);
}
std::vector<std::size_t> ConcreteDag::children(std::size_t j) const {
  std::vector<std::size_t> out;
  for (const auto& [p, c] : edges) {
    if (p == j) out.push_back(c);
  }
  return out;
}
bool ConcreteDag::acyclic() const {
  return acyclic_check(nodes.size(), edges);
}
std::size_t ConcreteDag::count(NodeType t) const {
  return static_cast<std::size_t>(
      std::count_if(nodes.begin(), nodes.end(),
                    [&](const ConcreteNode& n) { return n.type == t; }));
}

}  // namespace grid3::workflow
