// Abstract and concrete DAG representations (Pegasus vocabulary: the
// abstract DAG is site-independent "what"; the concrete DAG binds each
// job to a site and adds data-movement nodes).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "broker/job_spec.h"
#include "util/units.h"

namespace grid3::workflow {

struct AbstractJob {
  std::string derivation_id;
  std::string transformation;
  std::string required_app;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  Time runtime;
  Bytes output_size;
  Bytes scratch;
};

/// DAG with parent -> child edges stored as index pairs.
struct AbstractDag {
  std::vector<AbstractJob> jobs;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  /// Indices of jobs with no parents.
  [[nodiscard]] std::vector<std::size_t> roots() const;
  /// Parents of a job.
  [[nodiscard]] std::vector<std::size_t> parents(std::size_t j) const;
  /// True when the edge set is acyclic (validated by tests/planner).
  [[nodiscard]] bool acyclic() const;
};

enum class NodeType {
  kCompute,   ///< runs the transformation at the bound site
  kStageIn,   ///< moves an input replica to the execution site
  kStageOut,  ///< archives an output to the collection SE
  kRegister,  ///< records the archived replica in RLS
};

[[nodiscard]] const char* to_string(NodeType t);

struct ConcreteNode {
  NodeType type = NodeType::kCompute;
  std::string name;            ///< display/debug label
  std::string site;            ///< execution or transfer-destination site
  std::string derivation_id;   ///< for compute nodes
  std::vector<std::string> lfns;  ///< files touched (staged / registered)
  Time runtime;                ///< compute nodes
  Time requested_walltime;     ///< queue request (runtime * planner slack)
  Bytes bytes;                 ///< staged bytes for data nodes
  Bytes scratch;               ///< compute working space
  std::string source_site;     ///< stage-in source / stage-out origin
  /// Index of the parent compute node `source_site` refers to, when the
  /// input comes from a sibling job rather than a catalogued replica.
  /// Late binding can move that parent: DAGMan rewrites `source_site`
  /// from the parent's actual completion site before dispatching this
  /// node, so transfer pricing follows where the data really landed.
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::size_t source_parent = kNoParent;
  int priority = 0;            ///< batch priority (< 0 = backfill)
  /// Late binding: present when the plan was made against a resource
  /// broker.  `site` is then only the planner's provisional placement;
  /// DAGMan hands the spec to the broker at dispatch time.
  ///
  /// Gang matching rides on the spec: when the planner tagged this node
  /// as part of a DAG level (spec.gang_id non-empty), DAGMan collects
  /// the level's ready members and submits them through
  /// ResourceBroker::submit_gang as one unit, so the whole level can be
  /// co-located and its intermediates stay on one site's shared disk.
  /// A member completing on a split placement feeds its *own* site back
  /// through `source_parent`, never the gang's primary.
  std::optional<broker::JobSpec> broker_spec;
};

struct ConcreteDag {
  std::vector<ConcreteNode> nodes;
  std::vector<std::pair<std::size_t, std::size_t>> edges;

  [[nodiscard]] std::vector<std::size_t> roots() const;
  [[nodiscard]] std::vector<std::size_t> parents(std::size_t j) const;
  [[nodiscard]] std::vector<std::size_t> children(std::size_t j) const;
  [[nodiscard]] bool acyclic() const;
  [[nodiscard]] std::size_t count(NodeType t) const;
};

}  // namespace grid3::workflow
