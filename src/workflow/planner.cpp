#include "workflow/planner.h"

#include <algorithm>
#include <set>

#include "broker/broker.h"
#include "health/health.h"
#include "mds/schema.h"

namespace grid3::workflow {

bool PegasusPlanner::site_admissible(const std::string& site) const {
  return health_ == nullptr || !health_->quarantined(site);
}

std::vector<std::string> PegasusPlanner::archive_chain(
    const PlannerConfig& cfg) const {
  std::vector<std::string> chain;
  chain.reserve(1 + cfg.archive_fallbacks.size());
  chain.push_back(cfg.archive_site);
  for (const std::string& se : cfg.archive_fallbacks) chain.push_back(se);
  // Demote quarantined SEs to the tail instead of dropping them: the
  // ledger still reaches them if every healthy SE is full, and a
  // quarantine that lifts before launch needs no re-plan.  The stable
  // partition keeps the derivation deterministic.
  std::stable_partition(chain.begin(), chain.end(),
                        [this](const std::string& se) {
                          return site_admissible(se);
                        });
  return chain;
}

std::vector<std::string> PegasusPlanner::eligible_sites(
    const std::string& required_app, Time max_runtime,
    const PlannerConfig& cfg, Time now) const {
  const Time needed_walltime =
      Time::seconds(max_runtime.to_seconds() * cfg.walltime_slack);
  auto snaps = giis_.find(
      [&](const mds::SiteSnapshot& s) {
        if (!required_app.empty() &&
            !s.get(mds::app_attribute(required_app)).has_value()) {
          return false;
        }
        if (auto free = s.get_int(mds::glue::kFreeCpus);
            free.has_value() && *free < cfg.min_free_cpus) {
          return false;
        }
        if (auto limit = s.get_int(mds::glue::kMaxWallClockMinutes);
            limit.has_value() &&
            Time::minutes(static_cast<double>(*limit)) < needed_walltime) {
          return false;
        }
        if (cfg.need_outbound) {
          auto outbound = s.get_bool(mds::grid3ext::kOutboundConnectivity);
          if (!outbound.has_value() || !*outbound) return false;
        }
        return true;
      },
      now);
  std::vector<std::string> out;
  out.reserve(snaps.size());
  for (const auto& s : snaps) out.push_back(s.site);
  std::sort(out.begin(), out.end());
  return out;
}

std::string PegasusPlanner::choose_site(
    const std::vector<std::string>& candidates, const PlannerConfig& cfg,
    util::Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (const std::string& site : candidates) {
    auto it = cfg.site_preference.find(site);
    weights.push_back(it == cfg.site_preference.end() ? 1.0 : it->second);
  }
  return candidates[rng.weighted_index(weights)];
}

namespace {

/// Forward topological order of an abstract DAG (Kahn's algorithm over a
/// child adjacency list built once: O(V + E)).
std::vector<std::size_t> topo_order(const AbstractDag& dag) {
  std::vector<std::size_t> indegree(dag.jobs.size(), 0);
  std::vector<std::vector<std::size_t>> children(dag.jobs.size());
  for (const auto& [p, c] : dag.edges) {
    ++indegree[c];
    children[p].push_back(c);
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  while (!ready.empty()) {
    const std::size_t j = ready.back();
    ready.pop_back();
    order.push_back(j);
    for (std::size_t c : children[j]) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  return order;
}

}  // namespace

std::optional<ConcreteDag> PegasusPlanner::plan(const AbstractDag& dag,
                                                const PlannerConfig& cfg,
                                                util::Rng& rng,
                                                Time now) const {
  ConcreteDag out;
  // Map: abstract index -> concrete compute-node index (SIZE_MAX = pruned).
  constexpr std::size_t kPruned = static_cast<std::size_t>(-1);
  std::vector<std::size_t> compute_index(dag.jobs.size(), kPruned);

  // Which outputs have consumers inside the DAG (non-final)?
  std::map<std::string, bool> consumed;
  for (const AbstractJob& j : dag.jobs) {
    for (const std::string& in : j.inputs) consumed[in] = true;
  }

  // Workflow reduction (Pegasus "virtual data reuse"): processing jobs in
  // reverse topological order, a derivation runs only if it must produce
  // at least one LFN that (a) has no registered replica and (b) is either
  // a final output or consumed by a job that runs.
  std::vector<char> runs(dag.jobs.size(), 1);
  if (cfg.reuse_existing) {
    auto exists = [&](const std::string& lfn) {
      return !rls_.locate(lfn, now).empty();
    };
    // Consumers of each LFN, by job index.
    std::map<std::string, std::vector<std::size_t>> lfn_consumers;
    for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
      for (const std::string& in : dag.jobs[i].inputs) {
        lfn_consumers[in].push_back(i);
      }
    }
    const auto order = topo_order(dag);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t i = *it;
      bool needed = false;
      for (const std::string& o : dag.jobs[i].outputs) {
        if (exists(o)) continue;
        auto cit = lfn_consumers.find(o);
        const bool is_final = cit == lfn_consumers.end();
        if (is_final) {
          needed = true;
          break;
        }
        for (std::size_t c : cit->second) {
          if (runs[c]) {
            needed = true;
            break;
          }
        }
        if (needed) break;
      }
      runs[i] = needed ? 1 : 0;
    }
  }

  // LFN -> some surviving job produces it (built once; scanning every
  // job's outputs per input was quadratic on wide DAGs).
  std::set<std::string> produced_by_runner;
  for (std::size_t p = 0; p < dag.jobs.size(); ++p) {
    if (!runs[p]) continue;
    for (const std::string& o : dag.jobs[p].outputs) {
      produced_by_runner.insert(o);
    }
  }

  for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
    const AbstractJob& job = dag.jobs[i];
    if (!runs[i]) continue;

    std::vector<std::string> candidates =
        eligible_sites(job.required_app, job.runtime, cfg, now);
    if (candidates.empty()) {
      last_error_ = PlanError::kNoEligibleSite;
      return std::nullopt;
    }

    // Health-aware planning: quarantined sites leave the candidate set
    // at plan time, so fixed-site nodes stop burning DAGMan retries on
    // condemned sites.  Brokered nodes keep them as deferred
    // candidates (re-admitted at match time when the breaker closes).
    // When *every* eligible site is quarantined, keep the full set:
    // the broker's defer-not-disqualify hold is strictly better than
    // failing the plan outright.
    std::vector<std::string> quarantined_now;
    if (health_ != nullptr) {
      std::vector<std::string> healthy;
      for (const std::string& s : candidates) {
        (site_admissible(s) ? healthy : quarantined_now).push_back(s);
      }
      if (!healthy.empty()) {
        candidates = std::move(healthy);
      } else {
        quarantined_now.clear();
      }
    }

    std::string site;
    std::optional<broker::JobSpec> spec;
    if (broker_ != nullptr) {
      // Late binding: placement here is provisional (it seeds the staging
      // topology); the broker re-matches against its live view when
      // DAGMan dispatches the node.
      broker::JobSpec s;
      s.vo = cfg.vo;
      s.app = job.transformation;
      s.required_app = job.required_app;
      s.runtime = job.runtime;
      s.walltime_slack = cfg.walltime_slack;
      s.min_free_cpus = cfg.min_free_cpus;
      s.need_outbound = cfg.need_outbound;
      s.site_preference = cfg.site_preference;
      s.data_inputs = job.inputs;
      s.rls = &rls_;
      s.scratch = job.scratch;
      s.candidates = candidates;
      s.deferred_candidates = quarantined_now;
      site = broker_->choose(s, now).value_or(candidates.front());
      spec = std::move(s);
    } else {
      // Locality: prefer the first already-planned parent's site.
      std::string parent_site;
      for (std::size_t p : dag.parents(i)) {
        if (compute_index[p] != kPruned) {
          parent_site = out.nodes[compute_index[p]].site;
          break;
        }
      }
      if (!parent_site.empty() &&
          std::find(candidates.begin(), candidates.end(), parent_site) !=
              candidates.end() &&
          rng.chance(cfg.locality)) {
        site = parent_site;
      } else {
        site = choose_site(candidates, cfg, rng);
      }
    }

    ConcreteNode node;
    node.type = NodeType::kCompute;
    node.name = job.derivation_id;
    node.site = site;
    node.derivation_id = job.derivation_id;
    node.runtime = job.runtime;
    // Users pad their walltime request, but ~5% of requests underestimate
    // the actual runtime -- those die at the queue limit on enforcing
    // schedulers (a classic production failure).
    const double padding = rng.chance(0.10)
                               ? rng.uniform(0.65, 0.95)
                               : cfg.walltime_slack;
    node.requested_walltime =
        Time::seconds(job.runtime.to_seconds() * padding);
    node.scratch = job.scratch;
    node.lfns = job.outputs;

    // External inputs -- no producer in the DAG, or the producer was
    // pruned because a replica already exists: resolve via RLS and fold
    // the bytes into jobmanager staging.
    Bytes external_in;
    for (const std::string& in : job.inputs) {
      if (produced_by_runner.count(in) != 0) continue;
      for (const auto& [rsite, replica] : rls_.locate(in, now)) {
        if (rsite == site) {
          break;  // local replica, no staging
        }
        external_in += replica.size;
        node.source_site = rsite;
        break;  // first remote replica wins
      }
    }
    node.bytes = external_in;
    if (spec.has_value()) {
      spec->stage_in = external_in;
      spec->source_site = node.source_site;  // replica chosen above
      node.broker_spec = std::move(spec);
    }

    compute_index[i] = out.nodes.size();
    out.nodes.push_back(std::move(node));
  }

  if (out.nodes.empty()) {
    // Everything pruned: an empty (trivially successful) plan.
    return out;
  }

  // Dependency edges between surviving compute nodes, with stage-in nodes
  // where parent and child landed on different sites.
  for (const auto& [p, c] : dag.edges) {
    if (compute_index[p] == kPruned || compute_index[c] == kPruned) continue;
    const std::size_t cp = compute_index[p];
    const std::size_t cc = compute_index[c];
    if (out.nodes[cp].site == out.nodes[cc].site) {
      out.edges.emplace_back(cp, cc);
    } else if (broker_ != nullptr) {
      // Brokered plans cannot pre-place a mover (the child's real site is
      // matched at dispatch); fold the parent's output into the child's
      // jobmanager staging from the parent's provisional site instead.
      out.nodes[cc].bytes += dag.jobs[p].output_size;
      if (out.nodes[cc].source_site.empty()) {
        // Provisional: DAGMan rewrites this from the parent's actual
        // completion site once late binding resolves it.
        out.nodes[cc].source_site = out.nodes[cp].site;
        out.nodes[cc].source_parent = cp;
      }
      if (out.nodes[cc].broker_spec.has_value()) {
        out.nodes[cc].broker_spec->stage_in += dag.jobs[p].output_size;
        // Data-affinity hint for the broker's ranking; DAGMan rewrites
        // it alongside node.source_site when the parent completes.
        out.nodes[cc].broker_spec->source_site = out.nodes[cc].source_site;
      }
      out.edges.emplace_back(cp, cc);
    } else {
      ConcreteNode mover;
      mover.type = NodeType::kStageIn;
      mover.name = "stage:" + out.nodes[cp].name + "->" + out.nodes[cc].name;
      mover.site = out.nodes[cc].site;
      mover.source_site = out.nodes[cp].site;
      mover.bytes = dag.jobs[p].output_size;
      mover.lfns = dag.jobs[p].outputs;
      const std::size_t mi = out.nodes.size();
      out.nodes.push_back(std::move(mover));
      out.edges.emplace_back(cp, mi);
      out.edges.emplace_back(mi, cc);
    }
  }

  // Stage-out + register for final (or all) outputs.  The archive
  // target is a failover chain ([archive_site] + archive_fallbacks),
  // reordered healthy-first when a health monitor is attached.
  const std::vector<std::string> chain =
      cfg.archive_site.empty() ? std::vector<std::string>{}
                               : archive_chain(cfg);
  for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
    if (compute_index[i] == kPruned) continue;
    const AbstractJob& job = dag.jobs[i];
    bool is_final = cfg.archive_all;
    if (!is_final) {
      is_final = std::any_of(job.outputs.begin(), job.outputs.end(),
                             [&](const std::string& o) {
                               auto it = consumed.find(o);
                               return it == consumed.end() || !it->second;
                             });
    }
    if (!is_final || job.outputs.empty() || cfg.archive_site.empty()) {
      continue;
    }
    const std::size_t ci = compute_index[i];
    if (out.nodes[ci].broker_spec.has_value()) {
      // Brokered plans carry the archive step as a placement intent
      // instead of hard-coded stage-out/register nodes: the broker
      // leases SRM space at the archive SE before binding, the
      // gatekeeper's stage-out lands inside the lease, and DAGMan
      // registers the outputs in RLS on success.
      broker::JobSpec& bs = *out.nodes[ci].broker_spec;
      bs.stage_out_site = chain.front();
      bs.stage_out_fallbacks.assign(chain.begin() + 1, chain.end());
      bs.stage_out = job.output_size;
      bs.output_lfns = job.outputs;
      continue;
    }
    // Fixed-site plans cannot fall through at stage-out time, so the
    // chain's healthy head is the whole decision.
    ConcreteNode so;
    so.type = NodeType::kStageOut;
    so.name = "archive:" + job.derivation_id;
    so.site = chain.front();
    so.source_site = out.nodes[ci].site;
    so.bytes = job.output_size;
    so.lfns = job.outputs;
    const std::size_t si = out.nodes.size();
    out.nodes.push_back(std::move(so));
    out.edges.emplace_back(ci, si);

    ConcreteNode reg;
    reg.type = NodeType::kRegister;
    reg.name = "register:" + job.derivation_id;
    reg.site = chain.front();
    reg.bytes = job.output_size;
    reg.lfns = job.outputs;
    const std::size_t ri = out.nodes.size();
    out.nodes.push_back(std::move(reg));
    out.edges.emplace_back(si, ri);
  }

  // Gang tagging (brokered plans): the sibling jobs of one abstract-DAG
  // level -- equal depth, feeding a common child (the N-simulations ->
  // merge shape of CMS/ATLAS production) -- share a gang_id, so DAGMan
  // submits the level as a unit and the broker can co-locate it.  The
  // union-find joins same-depth surviving parents of each child; gang
  // ids are assigned in first-member index order, keeping plans
  // deterministic.
  if (broker_ != nullptr && cfg.gang_matching && !dag.jobs.empty()) {
    std::vector<int> depth(dag.jobs.size(), 0);
    std::vector<std::vector<std::size_t>> children(dag.jobs.size());
    for (const auto& [p, c] : dag.edges) children[p].push_back(c);
    for (std::size_t j : topo_order(dag)) {
      for (std::size_t c : children[j]) {
        depth[c] = std::max(depth[c], depth[j] + 1);
      }
    }
    std::vector<std::size_t> uf(dag.jobs.size());
    for (std::size_t i = 0; i < uf.size(); ++i) uf[i] = i;
    auto find = [&uf](std::size_t x) {
      while (uf[x] != x) {
        uf[x] = uf[uf[x]];
        x = uf[x];
      }
      return x;
    };
    for (std::size_t c = 0; c < dag.jobs.size(); ++c) {
      // Union the surviving same-depth parents of c, smallest index as
      // the anchor per depth.
      std::map<int, std::size_t> anchor;
      for (std::size_t p : dag.parents(c)) {
        if (compute_index[p] == kPruned) continue;
        auto [it, fresh] = anchor.try_emplace(depth[p], p);
        if (!fresh) uf[find(p)] = find(it->second);
      }
    }
    std::map<std::size_t, std::vector<std::size_t>> gangs;  // root -> members
    for (std::size_t i = 0; i < dag.jobs.size(); ++i) {
      if (compute_index[i] == kPruned) continue;
      gangs[find(i)].push_back(i);  // ascending i: members in index order
    }
    std::size_t gang_seq = 0;
    std::vector<std::size_t> roots;  // first-member order == root order here
    for (const auto& [root, members] : gangs) roots.push_back(root);
    std::sort(roots.begin(), roots.end(),
              [&gangs](std::size_t a, std::size_t b) {
                return gangs.at(a).front() < gangs.at(b).front();
              });
    for (std::size_t root : roots) {
      const auto& members = gangs[root];
      if (members.size() < 2) continue;
      const std::string gang_id =
          cfg.vo + ":gang" + std::to_string(++gang_seq);
      // Level-aggregate intermediates: member outputs consumed inside
      // the DAG (the merge's inputs), which the gang lease reserves.
      Bytes intermediates;
      for (std::size_t m : members) {
        const AbstractJob& mj = dag.jobs[m];
        const bool feeds_dag =
            std::any_of(mj.outputs.begin(), mj.outputs.end(),
                        [&](const std::string& o) {
                          auto it = consumed.find(o);
                          return it != consumed.end() && it->second;
                        });
        if (feeds_dag) intermediates += mj.output_size;
      }
      for (std::size_t m : members) {
        broker::JobSpec& bs = *out.nodes[compute_index[m]].broker_spec;
        bs.gang_id = gang_id;
        bs.gang_width = static_cast<int>(members.size());
        bs.gang_intermediates = intermediates;
      }
    }
  }
  return out;
}

}  // namespace grid3::workflow
