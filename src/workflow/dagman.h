// DAGMan: dependency-driven execution of a concrete DAG (paper ref [41]).
//
// Ready nodes launch as soon as their parents succeed: compute nodes go
// through Condor-G to the bound site's gatekeeper, data nodes run as
// GridFTP third-party transfers, register nodes write RLS entries.
// Failed nodes retry with a delay; a permanently failed node skips its
// descendants, and the run report carries the rescue list (unfinished
// node indices) so a caller can resubmit -- DAGMan's rescue-DAG
// behaviour.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gram/condor_g.h"
#include "gram/gatekeeper.h"
#include "gridftp/gridftp.h"
#include "rls/rls.h"
#include "sim/simulation.h"
#include "srm/disk.h"
#include "workflow/dag.h"

namespace grid3::broker {
class ResourceBroker;
struct BrokeredResult;
}  // namespace grid3::broker

namespace grid3::health {
class SiteHealthMonitor;
}  // namespace grid3::health

namespace grid3::workflow {

/// Resolves site names to their service endpoints; implemented by the
/// Grid3 fabric in core.
class SiteServices {
 public:
  virtual ~SiteServices() = default;
  [[nodiscard]] virtual gram::Gatekeeper* gatekeeper(
      const std::string& site) = 0;
  [[nodiscard]] virtual gridftp::GridFtpServer* ftp(
      const std::string& site) = 0;
  [[nodiscard]] virtual srm::DiskVolume* volume(const std::string& site) = 0;
};

struct NodeResult {
  std::size_t index = 0;
  NodeType type = NodeType::kCompute;
  std::string site;
  std::string source_site;  ///< data nodes: where the bytes came from
  Bytes bytes;              ///< data nodes: volume moved
  bool ok = false;
  int attempts = 0;
  Time submitted;
  Time started;   ///< batch start for compute nodes (== submitted otherwise)
  Time finished;
  gram::GramStatus gram_status = gram::GramStatus::kCompleted;
  std::string gram_contact;  ///< execution-side jobmanager id
  gridftp::TransferStatus transfer_status = gridftp::TransferStatus::kCompleted;
  /// Failure attribution per the section 6.1 taxonomy.
  bool site_problem = false;
  std::string failure_class;
};

struct DagRunStats {
  bool success = false;
  std::size_t nodes_total = 0;
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;  ///< descendants of failed nodes
  int retries = 0;
  Time started;
  Time finished;
  std::vector<NodeResult> node_results;
  std::vector<std::size_t> rescue;  ///< indices needing a rescue run
};

struct DagManConfig {
  int node_retries = 2;
  Time retry_delay = Time::minutes(10);
};

class DagMan {
 public:
  using DoneFn = std::function<void(const DagRunStats&)>;
  using NodeObserver = std::function<void(const NodeResult&)>;

  DagMan(sim::Simulation& sim, gram::CondorG& condor_g,
         gridftp::GridFtpClient& ftp, rls::ReplicaLocationService* rls,
         SiteServices& services, DagManConfig cfg = {});

  /// Execute `dag` under `proxy`.  `done` fires exactly once; `on_node`
  /// (optional) fires per terminal node attempt for accounting.
  void run(ConcreteDag dag, vo::VomsProxy proxy, DoneFn done,
           NodeObserver on_node = {});

  [[nodiscard]] std::uint64_t dags_run() const { return dags_run_; }

  /// Optional resource broker: compute nodes carrying a JobSpec are
  /// late-bound through it instead of submitted to their planned site.
  void set_broker(broker::ResourceBroker* broker) { broker_ = broker; }
  [[nodiscard]] broker::ResourceBroker* broker() const { return broker_; }

  /// Optional site-health monitor: DAGMan feeds it the outcomes the
  /// broker never sees (direct-submit compute nodes, GridFTP transfer
  /// nodes) and refunds retry budget for failures at sites the monitor
  /// has since quarantined.
  void set_health(health::SiteHealthMonitor* monitor) { health_ = monitor; }
  [[nodiscard]] health::SiteHealthMonitor* health() const { return health_; }

  /// Build the rescue DAG for a failed run: the sub-DAG of nodes that
  /// did not complete, with edges restricted to survivors -- resubmit it
  /// to continue where the run stopped (completed work is not redone).
  [[nodiscard]] static ConcreteDag rescue_dag(const ConcreteDag& dag,
                                              const DagRunStats& stats);

  /// Rescue DAG with each node's late-binding candidate set refreshed
  /// against the broker's live GIIS view: sites that left the view since
  /// planning drop out, newly arrived sites join (name-sorted, so the
  /// refresh is deterministic).  Identical to the static rescue_dag when
  /// no broker is attached.
  [[nodiscard]] ConcreteDag rescue_dag_refreshed(const ConcreteDag& dag,
                                                 const DagRunStats& stats,
                                                 Time now) const;

 private:
  enum class NodeState { kPending, kRunning, kDone, kFailed, kSkipped };

  struct Run {
    ConcreteDag dag;
    vo::VomsProxy proxy;
    DoneFn done;
    NodeObserver on_node;
    std::vector<NodeState> states;
    std::vector<int> attempts;
    /// Adjacency built once per run (ConcreteDag::parents/children scan
    /// the whole edge list per call -- O(V*E) across a run).
    std::vector<std::vector<std::size_t>> parents;
    std::vector<std::vector<std::size_t>> children;
    DagRunStats stats;
    std::size_t outstanding = 0;
    bool finished = false;
  };

  void launch_ready(const std::shared_ptr<Run>& run);
  void start_node(const std::shared_ptr<Run>& run, std::size_t idx);
  /// Submit the ready members of one gang as a unit through
  /// ResourceBroker::submit_gang (a partially ready gang -- e.g. a
  /// rescue of a half-finished level -- submits whatever is ready; the
  /// broker sizes the placement from the members actually given).
  void start_gang(const std::shared_ptr<Run>& run,
                  std::vector<std::size_t> members);
  /// GRAM job for a brokered compute node (stage-in from the node's
  /// source, stage-out per the spec's placement intent).
  [[nodiscard]] gram::GramJob build_brokered_job(const Run& run,
                                                 const ConcreteNode& node);
  /// Shared terminal handler for brokered compute nodes (per-job and
  /// gang paths): records the result, feeds the *actual* completion
  /// site back into children whose staging follows this node's output
  /// -- for gang members placed on a split site this is the member's
  /// own site, never the gang's primary -- and executes the
  /// registration intent.
  void brokered_done(const std::shared_ptr<Run>& run, std::size_t idx,
                     const broker::BrokeredResult& br);
  void node_done(const std::shared_ptr<Run>& run, std::size_t idx,
                 NodeResult result);
  void skip_descendants(const std::shared_ptr<Run>& run, std::size_t idx);
  void maybe_finish(const std::shared_ptr<Run>& run);

  sim::Simulation& sim_;
  gram::CondorG& condor_g_;
  gridftp::GridFtpClient& ftp_;
  rls::ReplicaLocationService* rls_;
  SiteServices& services_;
  DagManConfig cfg_;
  broker::ResourceBroker* broker_ = nullptr;
  health::SiteHealthMonitor* health_ = nullptr;
  std::uint64_t dags_run_ = 0;
};

}  // namespace grid3::workflow
