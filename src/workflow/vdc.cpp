#include "workflow/vdc.h"

#include <algorithm>
#include <deque>
#include <set>

namespace grid3::workflow {

void VirtualDataCatalog::add_transformation(Transformation t) {
  transformations_.insert_or_assign(t.name, std::move(t));
}

void VirtualDataCatalog::add_derivation(Derivation d) {
  const std::size_t idx = derivations_.size();
  for (const std::string& out : d.outputs) {
    producer_index_[out] = idx;
  }
  derivations_.push_back(std::move(d));
}

const Transformation* VirtualDataCatalog::find_transformation(
    const std::string& name) const {
  auto it = transformations_.find(name);
  return it == transformations_.end() ? nullptr : &it->second;
}

const Derivation* VirtualDataCatalog::producer_of(
    const std::string& lfn) const {
  auto it = producer_index_.find(lfn);
  return it == producer_index_.end() ? nullptr : &derivations_[it->second];
}

VirtualDataCatalog::Provenance VirtualDataCatalog::provenance_of(
    const std::string& lfn) const {
  Provenance out;
  std::set<std::size_t> seen;
  std::set<std::string> external;
  std::deque<std::string> frontier{lfn};
  std::vector<std::size_t> order;  // discovery order (target-first)
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    auto it = producer_index_.find(current);
    if (it == producer_index_.end()) {
      if (current != lfn) external.insert(current);
      continue;
    }
    if (!seen.insert(it->second).second) continue;
    order.push_back(it->second);
    for (const std::string& in : derivations_[it->second].inputs) {
      frontier.push_back(in);
    }
  }
  // Root-first: reverse the discovery order (ancestors were found last).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    out.lineage.push_back(&derivations_[*it]);
  }
  out.external_inputs.assign(external.begin(), external.end());
  return out;
}

std::vector<const Derivation*> VirtualDataCatalog::consumers_of(
    const std::string& lfn) const {
  std::vector<const Derivation*> out;
  std::set<std::size_t> seen;
  std::deque<std::string> frontier{lfn};
  while (!frontier.empty()) {
    const std::string current = frontier.front();
    frontier.pop_front();
    for (std::size_t i = 0; i < derivations_.size(); ++i) {
      const Derivation& d = derivations_[i];
      if (std::find(d.inputs.begin(), d.inputs.end(), current) ==
          d.inputs.end()) {
        continue;
      }
      if (!seen.insert(i).second) continue;
      out.push_back(&d);
      for (const std::string& o : d.outputs) frontier.push_back(o);
    }
  }
  return out;
}

std::optional<AbstractDag> VirtualDataCatalog::request(
    const std::vector<std::string>& targets) const {
  // BFS over producing derivations; every target must have a producer,
  // intermediate inputs without producers are external (RLS-resolved).
  std::set<std::size_t> needed;
  std::deque<std::size_t> frontier;
  for (const std::string& lfn : targets) {
    auto it = producer_index_.find(lfn);
    if (it == producer_index_.end()) return std::nullopt;
    if (needed.insert(it->second).second) frontier.push_back(it->second);
  }
  while (!frontier.empty()) {
    const std::size_t idx = frontier.front();
    frontier.pop_front();
    for (const std::string& in : derivations_[idx].inputs) {
      auto it = producer_index_.find(in);
      if (it == producer_index_.end()) continue;  // external input
      if (needed.insert(it->second).second) frontier.push_back(it->second);
    }
  }

  AbstractDag dag;
  std::map<std::size_t, std::size_t> index_map;  // derivation -> dag index
  for (std::size_t idx : needed) {
    const Derivation& d = derivations_[idx];
    AbstractJob job;
    job.derivation_id = d.id;
    job.transformation = d.transformation;
    if (const Transformation* t = find_transformation(d.transformation)) {
      job.required_app = t->required_app;
    }
    job.inputs = d.inputs;
    job.outputs = d.outputs;
    job.runtime = d.runtime;
    job.output_size = d.output_size;
    job.scratch = d.scratch;
    index_map[idx] = dag.jobs.size();
    dag.jobs.push_back(std::move(job));
  }
  // Edges: producer -> consumer when a needed derivation consumes another
  // needed derivation's output.
  for (std::size_t idx : needed) {
    for (const std::string& in : derivations_[idx].inputs) {
      auto it = producer_index_.find(in);
      if (it == producer_index_.end()) continue;
      if (!needed.contains(it->second)) continue;
      dag.edges.emplace_back(index_map.at(it->second), index_map.at(idx));
    }
  }
  return dag;
}

}  // namespace grid3::workflow
