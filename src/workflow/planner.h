// Pegasus-style planner: abstract DAG -> concrete DAG (paper refs
// [33-34]).
//
// Responsibilities reproduced from the real planner:
//  * virtual-data reuse: derivations whose outputs already exist in RLS
//    are pruned from the plan;
//  * site selection: only sites advertising the required application in
//    MDS, enough free CPUs, a compatible walltime limit, and (when the
//    application demands it) outbound connectivity are eligible --
//    exactly the four site-selection drivers of section 6.4;
//  * data movement: external inputs are folded into the compute node's
//    jobmanager staging; cross-site parent->child data gets stage-in
//    nodes; final outputs get stage-out + RLS-register nodes to the VO
//    archive.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mds/giis.h"
#include "rls/rls.h"
#include "util/rng.h"
#include "workflow/dag.h"

namespace grid3::broker {
class ResourceBroker;
}  // namespace grid3::broker

namespace grid3::health {
class SiteHealthMonitor;
}  // namespace grid3::health

namespace grid3::workflow {

struct PlannerConfig {
  std::string vo;
  std::string archive_site;  ///< Tier1 SE for final outputs (BNL, FNAL)
  /// Ordered archive failover chain behind `archive_site`: when the
  /// primary refuses the stage-out lease, placement falls through these
  /// in order (brokered plans thread them into
  /// JobSpec::stage_out_fallbacks; non-brokered plans archive to the
  /// first health-admissible chain SE).
  std::vector<std::string> archive_fallbacks;
  /// Requested walltime = runtime * slack (queue padding).
  double walltime_slack = 1.5;
  int min_free_cpus = 1;
  bool need_outbound = false;
  /// Multiplicative per-site preference weights ("favorite" resources,
  /// section 6.4); unlisted sites weigh 1.
  std::map<std::string, double> site_preference;
  /// Probability a child job is co-located with its first parent.
  double locality = 0.7;
  /// Skip derivations whose outputs are already registered (virtual data).
  bool reuse_existing = true;
  /// Archive every output, or only DAG-final ones.
  bool archive_all = false;
  /// Gang matching (brokered plans only): tag sibling compute nodes of
  /// one abstract-DAG level -- same depth, feeding a common child -- with
  /// a shared gang_id so DAGMan submits the level as one unit and the
  /// broker co-locates it (ResourceBroker::match_gang).  Off = every
  /// node late-binds individually, scattering levels across sites.
  bool gang_matching = true;
};

/// Why a plan failed.
enum class PlanError { kNoEligibleSite, kEmptyDag };

class PegasusPlanner {
 public:
  PegasusPlanner(const mds::Giis& giis, const rls::ReplicaLocationService& rls)
      : giis_{giis}, rls_{rls} {}

  /// Optional resource broker (null = the static favorite-sites path).
  /// With a broker attached, compute nodes carry a JobSpec for late
  /// binding, the provisional placement comes from the broker's ranked
  /// view, and cross-site parent->child data folds into jobmanager
  /// staging instead of pre-planned stage-in nodes (mover destinations
  /// cannot be known before dispatch-time matching).
  void set_broker(broker::ResourceBroker* broker) { broker_ = broker; }
  [[nodiscard]] broker::ResourceBroker* broker() const { return broker_; }

  /// Optional site-health monitor (core::Grid3::attach_health wires it).
  /// With a monitor attached the plan is health-aware: quarantined sites
  /// drop out of every node's candidate set at plan time (fixed-site
  /// nodes stop burning DAGMan retries on condemned sites) and the
  /// archive chain is reordered healthy-first.  Brokered plans keep the
  /// quarantined sites as JobSpec::deferred_candidates, so a quarantine
  /// that lifts before launch re-admits them deterministically at match
  /// time; quarantined archive SEs are demoted to the chain's tail, not
  /// dropped, for the same reason.  The derivation stays deterministic:
  /// it depends only on the breaker states at `now`, never on an RNG
  /// draw.
  void set_health(const health::SiteHealthMonitor* health) {
    health_ = health;
  }
  [[nodiscard]] const health::SiteHealthMonitor* health() const {
    return health_;
  }

  /// Sites currently eligible to run a job needing `app`.
  [[nodiscard]] std::vector<std::string> eligible_sites(
      const std::string& required_app, Time max_runtime,
      const PlannerConfig& cfg, Time now) const;

  [[nodiscard]] std::optional<ConcreteDag> plan(const AbstractDag& dag,
                                                const PlannerConfig& cfg,
                                                util::Rng& rng,
                                                Time now) const;

  [[nodiscard]] PlanError last_error() const { return last_error_; }

 private:
  [[nodiscard]] std::string choose_site(
      const std::vector<std::string>& candidates, const PlannerConfig& cfg,
      util::Rng& rng) const;

  /// True when `site` is not quarantined (or no monitor is attached).
  [[nodiscard]] bool site_admissible(const std::string& site) const;
  /// The archive chain ([archive_site] + archive_fallbacks) reordered
  /// healthy-first with relative order preserved in both groups.
  [[nodiscard]] std::vector<std::string> archive_chain(
      const PlannerConfig& cfg) const;

  const mds::Giis& giis_;
  const rls::ReplicaLocationService& rls_;
  broker::ResourceBroker* broker_ = nullptr;
  const health::SiteHealthMonitor* health_ = nullptr;
  mutable PlanError last_error_ = PlanError::kEmptyDag;
};

}  // namespace grid3::workflow
