// Discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same instant fire
// in scheduling order, which makes every run with a fixed RNG seed fully
// deterministic.  All Grid3Sim services (gatekeepers, schedulers, GridFTP
// servers, monitoring agents) are callbacks driven by this kernel.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace grid3::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).  Returns a handle usable
  /// with cancel().
  EventId schedule_at(Time t, EventFn fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(Time delay, EventFn fn);

  /// Cancel a pending event.  Safe to call on already-fired or unknown ids
  /// (no-op, returns false).
  bool cancel(EventId id);

  /// Execute a single event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or the clock would pass `t`; the clock is
  /// left at exactly `t` (events at `t` included).
  void run_until(Time t);

  /// Run until the queue drains.
  void run();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Time t;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  Time now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

/// A self-rescheduling periodic callback (monitoring sweeps, exerciser
/// probes, nightly rollovers).  Stops when stop() is called or when the
/// callback returns false.
class PeriodicProcess {
 public:
  using TickFn = std::function<bool()>;

  PeriodicProcess(Simulation& sim, Time interval, TickFn tick);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Begin ticking; first tick after `initial_delay`.
  void start(Time initial_delay = Time::zero());
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void arm(Time delay);

  Simulation& sim_;
  Time interval_;
  TickFn tick_;
  EventId pending_ = 0;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace grid3::sim
