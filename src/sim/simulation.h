// Discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same instant fire
// in scheduling order, which makes every run with a fixed RNG seed fully
// deterministic.  All Grid3Sim services (gatekeepers, schedulers, GridFTP
// servers, monitoring agents) are callbacks driven by this kernel.
//
// Model-checking hooks (grid3::mc): every event carries a *tag* naming
// the actor that scheduled it plus the resources it touches
// ("actor|res1|res2..."); tags are inherited from the executing event, so
// a service only labels the roots of its causal chains.  The explorer
// uses enumerate_ready()/step_event() to permute commutative
// same-timestamp events instead of firing them in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/units.h"

namespace grid3::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// One pending event at the queue's front timestamp, as exposed to the
/// model checker.  `tag` is "actor|res1|..." ("" = untagged background
/// machinery, which the checker treats as a single totally-ordered
/// pseudo-actor that conflicts with everything).
struct ReadyEvent {
  EventId id = 0;
  Time t;
  std::string tag;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).  Returns a handle usable
  /// with cancel().  The event inherits the current tag (the executing
  /// event's tag, or whatever a ScopedTag installed).
  EventId schedule_at(Time t, EventFn fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(Time delay, EventFn fn);

  /// Cancel a pending event.  Safe to call on already-fired or unknown ids
  /// (no-op, returns false).
  bool cancel(EventId id);

  /// Execute a single event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or the clock would pass `t`; the clock is
  /// left at exactly `t` (events at `t` included).
  void run_until(Time t);

  /// Run until the queue drains.
  void run();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Cancelled-but-not-yet-popped entries.  Bounded by pending(): cancel()
  /// refuses ids that already fired, so the set cannot grow monotonically
  /// over a long campaign (tests assert the bound).
  [[nodiscard]] std::size_t cancel_backlog() const {
    return cancelled_.size();
  }

  // --- event tags (model-checker independence relation) ---------------

  /// Tag of the currently-executing event (events scheduled now inherit
  /// it unless a ScopedTag overrides).
  [[nodiscard]] const std::string& current_tag() const { return tag_; }

  /// RAII tag override: events scheduled inside the scope carry `tag`
  /// (kReplace) or the current tag with "|tag" appended (kAppend --
  /// marking a shared resource without changing the actor, which is the
  /// tag's first '|'-separated component).
  class ScopedTag {
   public:
    enum Mode { kReplace, kAppend };
    ScopedTag(Simulation& sim, const std::string& tag, Mode mode = kReplace)
        : sim_{sim}, saved_{sim.tag_} {
      if (mode == kAppend && !sim.tag_.empty()) {
        sim.tag_ += '|';
        sim.tag_ += tag;
      } else {
        sim.tag_ = tag;
      }
    }
    ~ScopedTag() { sim_.tag_ = std::move(saved_); }
    ScopedTag(const ScopedTag&) = delete;
    ScopedTag& operator=(const ScopedTag&) = delete;

   private:
    Simulation& sim_;
    std::string saved_;
  };

  // --- model-checker steering ------------------------------------------

  /// Timestamp of the earliest live (non-cancelled) event, or nullopt
  /// when the queue is drained.
  [[nodiscard]] std::optional<Time> next_time() const;

  /// Every live event at next_time(), sorted by id (the order step()
  /// would fire them in).  O(pending); meant for the model checker, not
  /// hot paths.
  [[nodiscard]] std::vector<ReadyEvent> enumerate_ready() const;

  /// Execute one specific event.  The event must be live and scheduled at
  /// next_time() -- the checker may permute same-timestamp events but
  /// never time-travel.  Returns false (and does nothing) otherwise.
  bool step_event(EventId id);

 private:
  struct Entry {
    Time t;
    EventId id;
    std::string tag;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };

  /// Pop cancelled entries off the heap front; true when a live entry
  /// remains on top.
  bool settle_front();
  void execute(Entry e);

  Time now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::string tag_;
  // Binary heap over `queue_` (std::push_heap/pop_heap with Later), kept
  // iterable so enumerate_ready()/step_event() can inspect and extract
  // arbitrary front-timestamp events.
  std::vector<Entry> queue_;
  std::unordered_set<EventId> live_;       ///< scheduled, not yet popped
  std::unordered_set<EventId> cancelled_;  ///< subset of live_
};

/// A self-rescheduling periodic callback (monitoring sweeps, exerciser
/// probes, nightly rollovers).  Stops when stop() is called or when the
/// callback returns false.
class PeriodicProcess {
 public:
  using TickFn = std::function<bool()>;

  PeriodicProcess(Simulation& sim, Time interval, TickFn tick);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Begin ticking; first tick after `initial_delay`.
  void start(Time initial_delay = Time::zero());
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void arm(Time delay);

  Simulation& sim_;
  Time interval_;
  TickFn tick_;
  EventId pending_ = 0;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace grid3::sim
