// Discrete-event simulation kernel.
//
// Events are (time, sequence) ordered: two events at the same instant fire
// in scheduling order, which makes every run with a fixed RNG seed fully
// deterministic.  All Grid3Sim services (gatekeepers, schedulers, GridFTP
// servers, monitoring agents) are callbacks driven by this kernel.
//
// Storage is a hybrid of two disciplines (docs/KERNEL.md has the full
// internals guide):
//
//   * a *calendar* ring of fixed-width time buckets covering the window
//     [now, now + buckets * bucket_width).  Events scheduled inside the
//     window -- which is where every periodic timer lands: monitoring
//     sweeps, PeriodicProcess ticks, completion ETAs -- are appended to
//     their bucket in O(1) and popped by a cursor scan that is O(1)
//     amortized on near-uniform timer workloads;
//   * a binary heap for events beyond the window (nightly rollovers,
//     month-scale horizons), paying the classic O(log n) push/pop.
//
// The two stores never migrate entries; the dispatcher compares the
// calendar candidate against the heap front and fires the global
// (time, id) minimum, so the execution order is *identical* to a pure
// heap -- QueueConfig::calendar only changes cost, never behavior
// (tests assert the orderings are equal event-for-event, and the
// grid30 bench diffs whole campaign logs across the two modes).
//
// Model-checking hooks (grid3::mc): every event carries a *tag* naming
// the actor that scheduled it plus the resources it touches
// ("actor|res1|res2..."); tags are inherited from the executing event, so
// a service only labels the roots of its causal chains.  The explorer
// uses enumerate_ready()/step_event() to permute commutative
// same-timestamp events instead of firing them in scheduling order; both
// hooks scan heap and buckets alike, so steering is discipline-blind.
//
// Operation costs (n = pending events, b = events in the front bucket):
//
//   schedule_at       O(1) calendar window / O(log n) heap
//   step (pop)        O(log b) amortized calendar (each bucket is sorted
//                     once and drained from the back) / O(log n) heap;
//                     O(1) amortized cursor advance over empty buckets
//   cancel            O(1) (lazy tombstone, purged when encountered)
//   pending/backlog   O(1)
//   next_time         O(n) -- model checker only
//   enumerate_ready   O(n) -- model checker only
//   step_event        O(n) -- model checker only
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/id_set.h"
#include "util/units.h"

namespace grid3::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

/// One pending event at the queue's front timestamp, as exposed to the
/// model checker.  `tag` is "actor|res1|..." ("" = untagged background
/// machinery, which the checker treats as a single totally-ordered
/// pseudo-actor that conflicts with everything).
struct ReadyEvent {
  EventId id = 0;
  Time t;
  std::string tag;
};

/// Event-queue tuning.  The defaults route every delay below ~17
/// simulated minutes (the band where periodic monitoring traffic lives)
/// into the calendar; `calendar = false` forces the pure-heap baseline
/// the perf_kernel timer-storm series and the grid30 campaign diff
/// compare against.
struct QueueConfig {
  bool calendar = true;
  /// Width of one calendar bucket.  Smaller buckets cost more cursor
  /// advances but keep each bucket's sort-and-drain short.
  Time bucket_width = Time::millis(500);
  /// Ring size; the calendar window is buckets * bucket_width.
  std::size_t buckets = 2048;
};

class Simulation {
 public:
  explicit Simulation(QueueConfig cfg = {});
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const QueueConfig& queue_config() const { return cfg_; }

  /// Schedule `fn` at absolute time `t` (>= now).  Returns a handle usable
  /// with cancel().  The event inherits the current tag (the executing
  /// event's tag, or whatever a ScopedTag installed).  O(1) when `t`
  /// falls inside the calendar window, O(log pending) otherwise.
  EventId schedule_at(Time t, EventFn fn);

  /// Schedule `fn` after `delay` from now.
  EventId schedule_in(Time delay, EventFn fn);

  /// Cancel a pending event.  Safe to call on already-fired or unknown ids
  /// (no-op, returns false).  O(1): the entry is tombstoned and reclaimed
  /// when the dispatcher or a scan next encounters it.
  bool cancel(EventId id);

  /// Execute a single event.  Returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or the clock would pass `t`; the clock is
  /// left at exactly `t` (events at `t` included).
  void run_until(Time t);

  /// Run until the queue drains.
  void run();

  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  /// Cancelled-but-not-yet-purged entries.  Bounded by the number of
  /// stored entries: cancel() refuses ids that already fired, so the set
  /// cannot grow monotonically over a long campaign, and draining the
  /// queue always purges it to zero (tests assert the bound).
  [[nodiscard]] std::size_t cancel_backlog() const {
    return cancelled_.size();
  }

  /// Events routed into calendar buckets / onto the heap since
  /// construction (bench + routing tests).
  [[nodiscard]] std::uint64_t calendar_scheduled() const {
    return calendar_scheduled_;
  }
  [[nodiscard]] std::uint64_t heap_scheduled() const {
    return heap_scheduled_;
  }

  // --- event tags (model-checker independence relation) ---------------

  /// Tag of the currently-executing event (events scheduled now inherit
  /// it unless a ScopedTag overrides).
  ///
  /// Tags are *interned*: the kernel stores a small integer id per
  /// distinct tag string and events carry only the id, so inheriting a
  /// tag (the per-event common case) is an integer copy, not a string
  /// copy.  The string itself is only hashed when a ScopedTag installs
  /// a tag the kernel has not seen before.
  [[nodiscard]] const std::string& current_tag() const {
    return tag_table_[tag_id_];
  }

  /// RAII tag override: events scheduled inside the scope carry `tag`
  /// (kReplace) or the current tag with "|tag" appended (kAppend --
  /// marking a shared resource without changing the actor, which is the
  /// tag's first '|'-separated component).
  class ScopedTag {
   public:
    enum Mode { kReplace, kAppend };
    ScopedTag(Simulation& sim, const std::string& tag, Mode mode = kReplace)
        : sim_{sim}, saved_{sim.tag_id_} {
      if (mode == kAppend && sim.tag_id_ != 0) {
        std::string combined = sim.current_tag();
        combined += '|';
        combined += tag;
        sim.tag_id_ = sim.intern(combined);
      } else {
        sim.tag_id_ = sim.intern(tag);
      }
    }
    ~ScopedTag() { sim_.tag_id_ = saved_; }
    ScopedTag(const ScopedTag&) = delete;
    ScopedTag& operator=(const ScopedTag&) = delete;

   private:
    Simulation& sim_;
    std::uint32_t saved_;
  };

  // --- model-checker steering ------------------------------------------

  /// Timestamp of the earliest live (non-cancelled) event, or nullopt
  /// when the queue is drained.
  [[nodiscard]] std::optional<Time> next_time() const;

  /// Every live event at next_time(), sorted by id (the order step()
  /// would fire them in).  O(pending); meant for the model checker, not
  /// hot paths.
  [[nodiscard]] std::vector<ReadyEvent> enumerate_ready() const;

  /// Execute one specific event.  The event must be live and scheduled at
  /// next_time() -- the checker may permute same-timestamp events but
  /// never time-travel.  Returns false (and does nothing) otherwise.
  /// Works identically whether the event lives on the heap or in a
  /// calendar bucket.
  bool step_event(EventId id);

 private:
  struct Entry {
    Time t;
    EventId id;
    std::uint32_t tag;  ///< interned index into tag_table_
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.id > b.id;
    }
  };
  /// Lightweight proxy sorted in place of fat Entries when a bucket is
  /// put into drain order.
  struct SortKey {
    std::int64_t t;
    EventId id;
    std::uint32_t idx;  ///< entry's position in the bucket pre-sort
  };
  /// Location of the global (time, id)-minimum live entry.
  struct Front {
    enum class Where { kNone, kHeap, kBucket };
    Where where = Where::kNone;
    Time t;
    EventId id = 0;
    std::size_t slot = 0;   ///< ring slot (kBucket)
    std::size_t index = 0;  ///< index within the slot (kBucket)
  };

  /// Absolute bucket ordinal of `t` (monotone in time; ordinal % buckets
  /// is the ring slot).
  [[nodiscard]] std::uint64_t ordinal(Time t) const {
    return static_cast<std::uint64_t>(t.ticks()) / width_ticks_;
  }

  /// Intern `tag`, returning its stable table index (0 = "").
  std::uint32_t intern(const std::string& tag);

  /// Pop cancelled entries off the heap front; true when a live entry
  /// remains on top.
  bool settle_heap_front();
  /// Locate the next live entry across both stores, purging cancelled
  /// entries encountered along the way.
  Front find_front();
  /// Remove the located entry from its store (no execution).
  Entry extract(const Front& f);
  /// Pop-and-execute the front event; refuses events past `horizon`.
  bool step_front(const Time* horizon);
  void execute(Entry e);

  QueueConfig cfg_;
  std::int64_t width_ticks_ = 1;
  Time now_;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t calendar_scheduled_ = 0;
  std::uint64_t heap_scheduled_ = 0;
  // Interned tags: tag_table_[0] is the untagged "" every sim starts
  // with; tag_ids_ maps each distinct string to its index.  The table
  // only grows (ids stay valid for the sim's lifetime) and is tiny in
  // practice -- one entry per distinct actor/resource combination.
  std::uint32_t tag_id_ = 0;
  std::vector<std::string> tag_table_{std::string{}};
  std::unordered_map<std::string, std::uint32_t> tag_ids_;
  // Far-horizon store: binary heap (std::push_heap/pop_heap with Later),
  // kept iterable so enumerate_ready()/step_event() can inspect and
  // extract arbitrary front-timestamp events.
  std::vector<Entry> heap_;
  // Near-horizon store: ring of unordered buckets, allocated lazily on
  // the first calendar insert.  All live entries in slot s share one
  // bucket ordinal; stale tombstones from earlier laps are purged when
  // the cursor scan visits the slot.  Once the dispatcher settles on a
  // bucket it sorts it descending once (sorted_ord_) and drains it from
  // the back in O(1) per pop; inserts into and cancels touching the
  // sorted bucket invalidate the mark.
  std::vector<std::vector<Entry>> buckets_;
  std::size_t cal_count_ = 0;    ///< entries stored in buckets_ (incl. tombstones)
  std::uint64_t scan_hint_ = 0;  ///< lowest possibly-occupied bucket ordinal
  std::uint64_t sorted_ord_ = kUnsorted;  ///< ordinal drained in sorted order
  static constexpr std::uint64_t kUnsorted = ~0ULL;
  std::vector<SortKey> sort_keys_;  ///< reused scratch for bucket sorts
  std::vector<Entry> sort_scratch_;
  IdWindow live_;    ///< scheduled, not yet popped (bitmap over the id window)
  IdSet cancelled_;  ///< subset of live_ (hash set; usually empty)
};

/// A self-rescheduling periodic callback (monitoring sweeps, exerciser
/// probes, nightly rollovers).  Stops when stop() is called or when the
/// callback returns false.  Ticks with interval below the calendar
/// window are exactly the workload the calendar discipline makes O(1).
class PeriodicProcess {
 public:
  using TickFn = std::function<bool()>;

  PeriodicProcess(Simulation& sim, Time interval, TickFn tick);
  ~PeriodicProcess();
  PeriodicProcess(const PeriodicProcess&) = delete;
  PeriodicProcess& operator=(const PeriodicProcess&) = delete;

  /// Begin ticking; first tick after `initial_delay`.
  void start(Time initial_delay = Time::zero());
  void stop();
  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void arm(Time delay);

  Simulation& sim_;
  Time interval_;
  TickFn tick_;
  EventId pending_ = 0;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
};

}  // namespace grid3::sim
