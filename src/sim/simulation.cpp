#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

namespace grid3::sim {

namespace {

/// Global dispatch order: (time, id) ascending.
bool earlier(Time at, EventId aid, Time bt, EventId bid) {
  if (at != bt) return at < bt;
  return aid < bid;
}

}  // namespace

Simulation::Simulation(QueueConfig cfg) : cfg_{cfg} {
  assert(cfg_.buckets >= 2);
  width_ticks_ = std::max<std::int64_t>(1, cfg_.bucket_width.ticks());
  // buckets_ stays empty until the first calendar insert so that
  // heap-only sims (and short-lived bench fixtures) pay nothing.
}

EventId Simulation::schedule_at(Time t, EventFn fn) {
  assert(t >= now_);
  const EventId id = next_id_++;
  // Route by horizon: the calendar covers ordinals
  // [ordinal(now), ordinal(now) + buckets); anything beyond is heap
  // territory.  Entries never migrate -- a far event stays on the heap
  // even once its time comes inside the window, which only costs the
  // heap pop it would have paid anyway.
  const std::uint64_t ord = ordinal(t);
  if (cfg_.calendar && ord < ordinal(now_) + cfg_.buckets) {
    if (buckets_.empty()) buckets_.resize(cfg_.buckets);
    buckets_[ord % cfg_.buckets].push_back({t, id, tag_id_, std::move(fn)});
    ++cal_count_;
    ++calendar_scheduled_;
    if (ord < scan_hint_) scan_hint_ = ord;
    if (ord == sorted_ord_) sorted_ord_ = kUnsorted;  // order broken
  } else {
    heap_.push_back({t, id, tag_id_, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++heap_scheduled_;
  }
  live_.insert(id);
  return id;
}

EventId Simulation::schedule_in(Time delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  // Only ids still stored may enter cancelled_: marking an already-fired
  // id would leak it forever (nothing purges it), growing the set
  // monotonically over a multi-month campaign.
  if (!live_.contains(id)) return false;
  // The entry may sit in the bucket currently being drained in sorted
  // order; conservatively fall back to the scan path until it is purged.
  sorted_ord_ = kUnsorted;
  return cancelled_.insert(id);
}

bool Simulation::settle_heap_front() {
  while (!heap_.empty()) {
    if (cancelled_.empty()) return true;  // nothing to settle out
    if (!cancelled_.erase(heap_.front().id)) return true;
    live_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
  return false;
}

Simulation::Front Simulation::find_front() {
  Front f;
  if (settle_heap_front()) {
    f.where = Front::Where::kHeap;
    f.t = heap_.front().t;
    f.id = heap_.front().id;
  }
  if (cal_count_ > 0) {
    // Cursor scan: the first non-empty bucket at or after now holds the
    // calendar minimum (bucket ordinals partition time monotonically,
    // and live entries never sit behind the clock).  scan_hint_ caches
    // the scan start across pops; inserts lower it, so the advance over
    // empty buckets is O(1) amortized.
    const std::uint64_t base = ordinal(now_);
    std::uint64_t ord = std::max(scan_hint_, base);
    for (; ord < base + cfg_.buckets; ++ord) {
      auto& slot = buckets_[ord % cfg_.buckets];
      if (ord != sorted_ord_) {
        // Purge tombstones (cancelled entries from any lap) on the way.
        // Guarded so the cancel-free hot path pays zero hash lookups:
        // the per-entry probe only runs while tombstones exist at all.
        if (!cancelled_.empty()) {
          for (std::size_t i = 0; i < slot.size();) {
            if (!cancelled_.erase(slot[i].id)) {
              ++i;
              continue;
            }
            live_.erase(slot[i].id);
            if (i + 1 != slot.size()) slot[i] = std::move(slot.back());
            slot.pop_back();
            --cal_count_;
          }
        }
        if (slot.empty()) {
          scan_hint_ = ord + 1;
          continue;
        }
        // Sort once, descending, and drain from the back: every pop off
        // this bucket is then O(1) instead of an O(b) min-scan.
        // Inserts into and cancels touching the bucket reset
        // sorted_ord_, falling back to a fresh purge + sort.  The sort
        // runs on 16-byte (time, id) keys and applies the permutation
        // to the fat entries once, instead of shuffling 56-byte entries
        // through every comparison pass.
        if (slot.size() > 1) {
          sort_keys_.clear();
          sort_keys_.reserve(slot.size());
          for (std::uint32_t i = 0; i < slot.size(); ++i) {
            sort_keys_.push_back({slot[i].t.ticks(), slot[i].id, i});
          }
          std::sort(sort_keys_.begin(), sort_keys_.end(),
                    [](const SortKey& a, const SortKey& b) {
                      if (a.t != b.t) return a.t > b.t;
                      return a.id > b.id;
                    });
          sort_scratch_.clear();
          sort_scratch_.reserve(slot.size());
          for (const SortKey& k : sort_keys_) {
            sort_scratch_.push_back(std::move(slot[k.idx]));
          }
          slot.swap(sort_scratch_);
          sort_scratch_.clear();  // destroy moved-from shells
        }
        sorted_ord_ = ord;
      } else if (slot.empty()) {
        scan_hint_ = ord + 1;
        continue;
      }
      scan_hint_ = ord;
      const Entry& cand = slot.back();
      if (f.where == Front::Where::kNone ||
          earlier(cand.t, cand.id, f.t, f.id)) {
        f.where = Front::Where::kBucket;
        f.t = cand.t;
        f.id = cand.id;
        f.slot = ord % cfg_.buckets;
        f.index = slot.size() - 1;
      }
      break;
    }
  }
  return f;
}

Simulation::Entry Simulation::extract(const Front& f) {
  Entry e;
  if (f.where == Front::Where::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    e = std::move(heap_.back());
    heap_.pop_back();
  } else {
    auto& slot = buckets_[f.slot];
    e = std::move(slot[f.index]);
    if (f.index + 1 != slot.size()) slot[f.index] = std::move(slot.back());
    slot.pop_back();
    --cal_count_;
  }
  live_.erase(e.id);
  return e;
}

std::uint32_t Simulation::intern(const std::string& tag) {
  if (tag.empty()) return 0;
  const auto [it, inserted] =
      tag_ids_.try_emplace(tag, static_cast<std::uint32_t>(tag_table_.size()));
  if (inserted) tag_table_.push_back(tag);
  return it->second;
}

void Simulation::execute(Entry e) {
  now_ = e.t;
  ++executed_;
  // The event's tag becomes the ambient tag while it runs, so events it
  // schedules inherit its actor/resource key by default.  Tags are
  // interned, so inheritance is a pair of integer assignments.
  const std::uint32_t saved = tag_id_;
  tag_id_ = e.tag;
  e.fn();
  tag_id_ = saved;
}

bool Simulation::step_front(const Time* horizon) {
  const Front f = find_front();
  if (f.where == Front::Where::kNone) return false;
  if (horizon != nullptr && f.t > *horizon) return false;
  execute(extract(f));
  return true;
}

bool Simulation::step() { return step_front(nullptr); }

void Simulation::run_until(Time t) {
  while (step_front(&t)) {
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step_front(nullptr)) {
  }
}

std::size_t Simulation::pending() const {
  return heap_.size() + cal_count_ - cancelled_.size();
}

std::optional<Time> Simulation::next_time() const {
  // const scan over both stores: skip cancelled entries without mutating
  // anything.  O(pending); model-checker territory.
  std::optional<Time> best;
  const auto consider = [&](const Entry& e) {
    if (cancelled_.contains(e.id)) return;
    if (!best.has_value() || e.t < *best) best = e.t;
  };
  for (const Entry& e : heap_) consider(e);
  for (const auto& slot : buckets_) {
    for (const Entry& e : slot) consider(e);
  }
  return best;
}

std::vector<ReadyEvent> Simulation::enumerate_ready() const {
  std::vector<ReadyEvent> ready;
  const auto front = next_time();
  if (!front.has_value()) return ready;
  const auto consider = [&](const Entry& e) {
    if (e.t != *front) return;
    if (cancelled_.contains(e.id)) return;
    ready.push_back({e.id, e.t, tag_table_[e.tag]});
  };
  for (const Entry& e : heap_) consider(e);
  for (const auto& slot : buckets_) {
    for (const Entry& e : slot) consider(e);
  }
  std::sort(ready.begin(), ready.end(),
            [](const ReadyEvent& a, const ReadyEvent& b) {
              return a.id < b.id;
            });
  return ready;
}

bool Simulation::step_event(EventId id) {
  if (!live_.contains(id)) return false;
  if (cancelled_.contains(id)) return false;
  const auto front = next_time();
  if (!front.has_value()) return false;

  auto hit = std::find_if(heap_.begin(), heap_.end(),
                          [id](const Entry& e) { return e.id == id; });
  if (hit != heap_.end()) {
    if (hit->t != *front) return false;  // no time travel
    Entry e = std::move(*hit);
    // O(n) extraction: swap the hole to the back and re-heapify.  Only
    // the model checker pays this; step() keeps the heap path.
    *hit = std::move(heap_.back());
    heap_.pop_back();
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    live_.erase(e.id);
    execute(std::move(e));
    return true;
  }
  for (auto& slot : buckets_) {
    for (std::size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].id != id) continue;
      if (slot[i].t != *front) return false;  // no time travel
      Entry e = std::move(slot[i]);
      if (i + 1 != slot.size()) slot[i] = std::move(slot.back());
      slot.pop_back();
      --cal_count_;
      sorted_ord_ = kUnsorted;  // swap-remove broke the drained order
      live_.erase(e.id);
      execute(std::move(e));
      return true;
    }
  }
  assert(false && "live id missing from both stores");
  return false;
}

PeriodicProcess::PeriodicProcess(Simulation& sim, Time interval, TickFn tick)
    : sim_{sim}, interval_{interval}, tick_{std::move(tick)} {
  assert(interval_ > Time::zero());
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(Time initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicProcess::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, [this] {
    pending_ = 0;
    if (!running_) return;
    ++ticks_;
    if (tick_()) {
      arm(interval_);
    } else {
      running_ = false;
    }
  });
}

}  // namespace grid3::sim
