#include "sim/simulation.h"

#include <cassert>

namespace grid3::sim {

EventId Simulation::schedule_at(Time t, EventFn fn) {
  assert(t >= now_);
  const EventId id = next_id_++;
  queue_.push({t, id, std::move(fn)});
  return id;
}

EventId Simulation::schedule_in(Time delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  // Lazy cancellation: drop on pop.
  return cancelled_.insert(id).second;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = e.t;
    ++executed_;
    e.fn();
    return true;
  }
  return false;
}

void Simulation::run_until(Time t) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (top.t > t) break;
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

std::size_t Simulation::pending() const {
  // cancelled_ may contain ids already popped is impossible (erased on
  // pop), so pending is exact.
  return queue_.size() - cancelled_.size();
}

PeriodicProcess::PeriodicProcess(Simulation& sim, Time interval, TickFn tick)
    : sim_{sim}, interval_{interval}, tick_{std::move(tick)} {
  assert(interval_ > Time::zero());
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(Time initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicProcess::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, [this] {
    pending_ = 0;
    if (!running_) return;
    ++ticks_;
    if (tick_()) {
      arm(interval_);
    } else {
      running_ = false;
    }
  });
}

}  // namespace grid3::sim
