#include "sim/simulation.h"

#include <algorithm>
#include <cassert>

namespace grid3::sim {

EventId Simulation::schedule_at(Time t, EventFn fn) {
  assert(t >= now_);
  const EventId id = next_id_++;
  queue_.push_back({t, id, tag_, std::move(fn)});
  std::push_heap(queue_.begin(), queue_.end(), Later{});
  live_.insert(id);
  return id;
}

EventId Simulation::schedule_in(Time delay, EventFn fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::cancel(EventId id) {
  // Only ids still in the queue may enter cancelled_: marking an
  // already-fired id would leak it forever (nothing pops it), growing
  // the set monotonically over a multi-month campaign.
  if (live_.find(id) == live_.end()) return false;
  return cancelled_.insert(id).second;
}

bool Simulation::settle_front() {
  while (!queue_.empty()) {
    const Entry& top = queue_.front();
    auto it = cancelled_.find(top.id);
    if (it == cancelled_.end()) return true;
    cancelled_.erase(it);
    live_.erase(top.id);
    std::pop_heap(queue_.begin(), queue_.end(), Later{});
    queue_.pop_back();
  }
  return false;
}

void Simulation::execute(Entry e) {
  now_ = e.t;
  ++executed_;
  // The event's tag becomes the ambient tag while it runs, so events it
  // schedules inherit its actor/resource key by default.
  ScopedTag scope{*this, e.tag};
  e.fn();
}

bool Simulation::step() {
  if (!settle_front()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), Later{});
  Entry e = std::move(queue_.back());
  queue_.pop_back();
  live_.erase(e.id);
  execute(std::move(e));
  return true;
}

void Simulation::run_until(Time t) {
  // settle_front() first: a cancelled entry at the heap top must not be
  // allowed to stand in for the next live event's timestamp, or a horizon
  // check against it would let step() overshoot `t`.
  while (settle_front()) {
    if (queue_.front().t > t) break;
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Simulation::run() {
  while (step()) {
  }
}

std::size_t Simulation::pending() const {
  return queue_.size() - cancelled_.size();
}

std::optional<Time> Simulation::next_time() const {
  // const scan instead of settle_front(): skip cancelled entries without
  // mutating the heap.
  std::optional<Time> best;
  for (const Entry& e : queue_) {
    if (cancelled_.find(e.id) != cancelled_.end()) continue;
    if (!best.has_value() || e.t < *best) best = e.t;
  }
  return best;
}

std::vector<ReadyEvent> Simulation::enumerate_ready() const {
  std::vector<ReadyEvent> ready;
  const auto front = next_time();
  if (!front.has_value()) return ready;
  for (const Entry& e : queue_) {
    if (e.t != *front) continue;
    if (cancelled_.find(e.id) != cancelled_.end()) continue;
    ready.push_back({e.id, e.t, e.tag});
  }
  std::sort(ready.begin(), ready.end(),
            [](const ReadyEvent& a, const ReadyEvent& b) {
              return a.id < b.id;
            });
  return ready;
}

bool Simulation::step_event(EventId id) {
  if (live_.find(id) == live_.end()) return false;
  if (cancelled_.find(id) != cancelled_.end()) return false;
  const auto front = next_time();
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [id](const Entry& e) { return e.id == id; });
  assert(it != queue_.end());
  if (!front.has_value() || it->t != *front) return false;  // no time travel
  Entry e = std::move(*it);
  // O(n) extraction: swap the hole to the back and re-heapify.  Only the
  // model checker pays this; step() keeps the O(log n) heap path.
  *it = std::move(queue_.back());
  queue_.pop_back();
  std::make_heap(queue_.begin(), queue_.end(), Later{});
  live_.erase(e.id);
  execute(std::move(e));
  return true;
}

PeriodicProcess::PeriodicProcess(Simulation& sim, Time interval, TickFn tick)
    : sim_{sim}, interval_{interval}, tick_{std::move(tick)} {
  assert(interval_ > Time::zero());
}

PeriodicProcess::~PeriodicProcess() { stop(); }

void PeriodicProcess::start(Time initial_delay) {
  if (running_) return;
  running_ = true;
  arm(initial_delay);
}

void PeriodicProcess::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicProcess::arm(Time delay) {
  pending_ = sim_.schedule_in(delay, [this] {
    pending_ = 0;
    if (!running_) return;
    ++ticks_;
    if (tick_()) {
      arm(interval_);
    } else {
      running_ = false;
    }
  });
}

}  // namespace grid3::sim
