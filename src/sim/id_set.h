// Open-addressing hash set for event ids.
//
// The kernel consults the live/cancelled sets on every schedule, cancel,
// and pop, so the per-event cost of std::unordered_set -- one node
// allocation per insert, one deallocation per erase, pointer-chasing on
// find -- dominates the hot path long before the queue discipline does.
// This set stores keys inline in a power-of-two slot array (linear
// probing, Fibonacci hashing, backward-shift deletion, so no tombstones
// accumulate) and never allocates except to grow.
//
// Key 0 is the empty-slot sentinel; the kernel never stores it
// (EventIds start at 1, enforced by an assert in insert()).
//
//   insert / erase / contains   O(1) expected, allocation-free
//   size / empty                O(1)
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace grid3::sim {

class IdSet {
 public:
  IdSet() : slots_(kMinCapacity, 0) {}

  /// Add `key`; false if it was already present.
  bool insert(std::uint64_t key) {
    assert(key != 0);
    if ((size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = slot_of(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask();
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  /// Remove `key`; false if it was absent.  Backward-shift deletion
  /// keeps probe chains intact without tombstones.
  bool erase(std::uint64_t key) {
    std::size_t hole = slot_of(key);
    while (slots_[hole] != key) {
      if (slots_[hole] == 0) return false;
      hole = (hole + 1) & mask();
    }
    std::size_t j = (hole + 1) & mask();
    while (slots_[j] != 0) {
      const std::size_t ideal = slot_of(slots_[j]);
      // Shift j back into the hole only if doing so keeps it reachable
      // from its ideal slot (cyclic distance check).
      if (((j - ideal) & mask()) >= ((j - hole) & mask())) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask();
    }
    slots_[hole] = 0;
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    std::size_t i = slot_of(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask();
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  static constexpr std::size_t kMinCapacity = 64;

  [[nodiscard]] std::size_t mask() const { return slots_.size() - 1; }
  [[nodiscard]] std::size_t slot_of(std::uint64_t key) const {
    // Fibonacci hashing: sequential ids (the common case) spread evenly.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) &
           mask();
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    for (const std::uint64_t key : old) {
      if (key == 0) continue;
      std::size_t i = slot_of(key);
      while (slots_[i] != 0) i = (i + 1) & mask();
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
};

/// Windowed bitmap over monotonically-allocated ids.
///
/// EventIds are handed out sequentially, so the *live* ids always sit in
/// a window [base, next_id).  One bit per id in that window beats a hash
/// set on every axis the kernel cares about: insert lands in the same
/// cache line as the previous insert (ids are consecutive), erase and
/// contains touch a bitmap that is ~8 KB per 64k-event window (L1-sized
/// where the equivalent hash table is megabytes), and nothing is ever
/// rehashed.  The window's leading all-zero words are trimmed whenever
/// the bitmap grows, so memory tracks the id-span of the *live* events,
/// not the total ever scheduled.
///
///   insert / erase / contains   O(1), amortized over window compaction
///   size / empty                O(1)
class IdWindow {
 public:
  /// Add `id`; false if already present.  Ids must be >= the window base
  /// (always true for ids that only grow).
  bool insert(std::uint64_t id) {
    assert(id >= base_);
    std::uint64_t idx = id - base_;
    std::size_t word = static_cast<std::size_t>(idx >> 6);
    if (word >= words_.size()) {
      grow(word);
      idx = id - base_;  // grow() may have slid the window forward
      word = static_cast<std::size_t>(idx >> 6);
    }
    const std::uint64_t bit = 1ULL << (idx & 63);
    if (words_[word] & bit) return false;
    words_[word] |= bit;
    ++size_;
    return true;
  }

  /// Remove `id`; false if absent.
  bool erase(std::uint64_t id) {
    if (id < base_) return false;
    const std::uint64_t idx = id - base_;
    const std::size_t word = static_cast<std::size_t>(idx >> 6);
    if (word >= words_.size()) return false;
    const std::uint64_t bit = 1ULL << (idx & 63);
    if (!(words_[word] & bit)) return false;
    words_[word] &= ~bit;
    --size_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t id) const {
    if (id < base_) return false;
    const std::uint64_t idx = id - base_;
    const std::size_t word = static_cast<std::size_t>(idx >> 6);
    if (word >= words_.size()) return false;
    return (words_[word] >> (idx & 63)) & 1;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

 private:
  /// Extend the bitmap to cover `word`, first sliding the window past
  /// leading all-zero words when at least half the bitmap is dead --
  /// discarding >= as many words as get moved keeps this O(1) amortized.
  void grow(std::size_t word) {
    std::size_t lead = 0;
    while (lead < words_.size() && words_[lead] == 0) ++lead;
    if (lead > 0 && lead * 2 >= words_.size()) {
      words_.erase(words_.begin(),
                   words_.begin() + static_cast<std::ptrdiff_t>(lead));
      base_ += static_cast<std::uint64_t>(lead) * 64;
      word -= lead;
    }
    words_.resize(std::max(word + 1, words_.size() + words_.size() / 2));
  }

  std::vector<std::uint64_t> words_;
  std::uint64_t base_ = 0;  ///< id of bit 0 of words_[0]
  std::size_t size_ = 0;
};

}  // namespace grid3::sim
