#include "util/calendar.h"

#include <cassert>

namespace grid3::util {

CalendarDate epoch() { return {2003, 10, 1}; }

int days_in_month(int year, int month) {
  static constexpr int kDays[12] = {31, 28, 31, 30, 31, 30,
                                    31, 31, 30, 31, 30, 31};
  assert(month >= 1 && month <= 12);
  if (month == 2) {
    const bool leap =
        (year % 4 == 0 && year % 100 != 0) || (year % 400 == 0);
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

CalendarDate date_at(Time t) {
  auto days = static_cast<std::int64_t>(t.to_days());
  CalendarDate d = epoch();
  while (days >= days_in_month(d.year, d.month) - (d.day - 1)) {
    days -= days_in_month(d.year, d.month) - (d.day - 1);
    d.day = 1;
    if (++d.month > 12) {
      d.month = 1;
      ++d.year;
    }
  }
  d.day += static_cast<int>(days);
  return d;
}

Time time_of(const CalendarDate& target) {
  CalendarDate d = epoch();
  std::int64_t days = 0;
  while (d.year < target.year || d.month < target.month) {
    days += days_in_month(d.year, d.month);
    if (++d.month > 12) {
      d.month = 1;
      ++d.year;
    }
  }
  days += target.day - 1;
  return Time::days(static_cast<double>(days));
}

std::string month_label(const CalendarDate& d) {
  const std::string mm = (d.month < 10 ? "0" : "") + std::to_string(d.month);
  return mm + "-" + std::to_string(d.year);
}

std::string month_label_at(Time t) { return month_label(date_at(t)); }

int month_index_at(Time t) {
  const CalendarDate d = date_at(t);
  const CalendarDate e = epoch();
  return (d.year - e.year) * 12 + (d.month - e.month);
}

Time month_start(int month_index) {
  CalendarDate d = epoch();
  d.month += month_index;
  while (d.month > 12) {
    d.month -= 12;
    ++d.year;
  }
  d.day = 1;
  return time_of(d);
}

std::vector<std::string> month_labels(int n) {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(month_label_at(month_start(i)));
  return out;
}

}  // namespace grid3::util
