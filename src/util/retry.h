// One retry/backoff policy for every transient-failure path.
//
// Grid3 operations retried everything -- GRAM submits, gridftp
// transfers, broker rebinds, hold-retries -- but each path grew its own
// ad-hoc knobs (max_retries here, backoff_factor there, a jitter
// fraction somewhere else).  RetryPolicy folds them into one value
// type: a base delay, an exponential growth factor, an optional
// deterministic jitter fraction, a retry budget, and a wall-clock
// deadline after which the caller should give up entirely.
//
// Determinism contract: at the historical defaults every method
// reproduces the legacy call sites' arithmetic bit-for-bit.  In
// particular `delay(attempt)` returns the stored `base` Time
// *unconverted* when `factor == 1.0` -- a round trip through
// to_seconds()/Time::seconds() can truncate the int64 microsecond
// tick, and the fixed-backoff paths (gridftp, condor-g) always passed
// the stored Time straight to the scheduler.  Jitter uses the same
// splitmix64 finalizer the broker always used, keyed by the caller's
// sequence counter -- no RNG stream is consumed.
#pragma once

#include <cstdint>

#include "util/units.h"

namespace grid3::util {

/// Deterministic hash-to-[0,1) used for retry jitter: the splitmix64
/// finalizer over a caller-supplied key (typically a sequence counter
/// XOR a seed).  Consumes no RNG stream, so adding or removing a
/// jittered retry never perturbs unrelated draws.
[[nodiscard]] inline double jitter01(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Retry schedule: exponential backoff from `base` by `factor`, an
/// optional deterministic jitter fraction, a retry-count budget, and a
/// total elapsed-time deadline (Time::max() = no deadline).
struct RetryPolicy {
  Time base = Time::zero();   ///< first retry delay
  double factor = 1.0;        ///< multiplier per further attempt
  double jitter = 0.0;        ///< max fractional jitter (0 = none)
  int max_retries = 0;        ///< retry budget (not counting try #1)
  Time deadline = Time::max();  ///< give up once elapsed exceeds this

  /// Backoff before retry `attempt` (1-based), in seconds.  Reproduces
  /// the legacy loop exactly: base * factor^(attempt-1) computed by
  /// repeated multiplication.
  [[nodiscard]] double delay_seconds(int attempt) const {
    double d = base.to_seconds();
    for (int i = 1; i < attempt; ++i) d *= factor;
    return d;
  }

  /// Jittered backoff: delay_seconds(attempt) stretched by up to
  /// `jitter` fraction, keyed deterministically by `jitter_key`.
  [[nodiscard]] double delay_seconds(int attempt,
                                     std::uint64_t jitter_key) const {
    double d = delay_seconds(attempt);
    if (jitter > 0.0) d *= 1.0 + jitter * jitter01(jitter_key);
    return d;
  }

  /// Backoff before retry `attempt` as a Time.  When the schedule is
  /// flat (factor == 1.0) this returns the stored base unconverted --
  /// no double round trip, no microsecond truncation.
  [[nodiscard]] Time delay(int attempt) const {
    if (factor == 1.0) return base;
    return Time::seconds(delay_seconds(attempt));
  }

  /// True while the retry budget allows another attempt.
  [[nodiscard]] bool allows(int retries_done) const {
    return retries_done < max_retries;
  }

  /// True once the total elapsed time has exceeded the deadline.
  [[nodiscard]] bool budget_exhausted(Time elapsed) const {
    return elapsed > deadline;
  }
};

}  // namespace grid3::util
