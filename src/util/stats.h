// Streaming statistics and histograms for accounting analysis
// (job runtimes, gatekeeper load samples, transfer throughputs).
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

namespace grid3::util {

/// Welford streaming mean/variance plus min/max.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  /// Merge another accumulator (parallel reduction friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range samples land
/// in saturating under/overflow bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] double count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] double underflow() const { return underflow_; }
  [[nodiscard]] double overflow() const { return overflow_; }
  [[nodiscard]] double total() const;

  /// Approximate quantile (linear interpolation inside the bin).
  [[nodiscard]] double quantile(double q) const;

  /// Render as a compact ASCII bar chart (for bench harness output).
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

/// Exact quantile over a retained sample (used for small record sets).
[[nodiscard]] double exact_quantile(std::vector<double> samples, double q);

}  // namespace grid3::util
