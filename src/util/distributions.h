// Composable runtime distributions used to describe workload parameters
// (job runtimes, dataset sizes, inter-arrival gaps) in configuration.
//
// A Distribution is a small value type: cheap to copy, samples through an
// Rng passed at call time so the distribution itself carries no state.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace grid3::util {

/// A sampleable non-negative real-valued distribution.
class Distribution {
 public:
  /// Constant value.
  [[nodiscard]] static Distribution constant(double v);
  /// Uniform on [lo, hi).
  [[nodiscard]] static Distribution uniform(double lo, double hi);
  /// Exponential with the given mean.
  [[nodiscard]] static Distribution exponential(double mean);
  /// Lognormal specified by its *mean* and coefficient of variation
  /// (cv = sigma/mean of the resulting lognormal, not of the log).
  [[nodiscard]] static Distribution lognormal_mean_cv(double mean, double cv);
  /// Weibull with shape k and scale lambda.
  [[nodiscard]] static Distribution weibull(double shape, double scale);
  /// Pareto with minimum xm and tail index alpha.
  [[nodiscard]] static Distribution pareto(double xm, double alpha);
  /// Normal truncated below at `floor` (resampled, so use moderate tails).
  [[nodiscard]] static Distribution truncated_normal(double mean, double sigma,
                                                     double floor);
  /// Mixture of components with the given non-negative weights.
  [[nodiscard]] static Distribution mixture(std::vector<Distribution> comps,
                                            std::vector<double> weights);
  /// `base` clamped into [lo, hi].
  [[nodiscard]] static Distribution clamped(Distribution base, double lo,
                                            double hi);

  [[nodiscard]] double sample(Rng& rng) const;

  /// Analytic mean where known; mixture/clamp compute from components
  /// (clamp returns the un-clamped mean as an approximation).
  [[nodiscard]] double mean() const;

  struct Impl;  // public so the implementation file can define it

 private:
  explicit Distribution(std::shared_ptr<const Impl> impl)
      : impl_{std::move(impl)} {}
  std::shared_ptr<const Impl> impl_;
};

}  // namespace grid3::util
