// ASCII table and CSV rendering for bench harness output: the benches
// print the same rows the paper's tables/figures report.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace grid3::util {

/// Column-aligned text table.  All cells are strings; numeric helpers
/// format with fixed precision.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  AsciiTable& add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` decimals (trailing zeros kept so
  /// columns line up).
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string integer(std::int64_t v);
  [[nodiscard]] static std::string percent(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a labeled series as "label: value" lines with an ASCII bar,
/// used for the figure-style outputs (Figures 2-6).
[[nodiscard]] std::string bar_chart(
    const std::vector<std::pair<std::string, double>>& series,
    std::size_t width = 48, const std::string& unit = "");

}  // namespace grid3::util
