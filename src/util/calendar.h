// Calendar mapping for the Grid2003 operations timeline.
//
// The scenario epoch is 2003-10-01 00:00 (the month Grid3 construction
// started; SC2003 ran Nov 15-21 and Table 1 covers Oct 23 2003 - Apr 23
// 2004).  These helpers convert simulated Time offsets into the month
// labels the paper's Table 1 and Figure 6 use ("11-2003" etc.).
#pragma once

#include <string>
#include <vector>

#include "util/units.h"

namespace grid3::util {

struct CalendarDate {
  int year = 2003;
  int month = 10;  // 1-12
  int day = 1;     // 1-31
};

/// Scenario epoch: 2003-10-01 00:00:00.
[[nodiscard]] CalendarDate epoch();

/// Convert a simulated time offset into a calendar date.
[[nodiscard]] CalendarDate date_at(Time t);

/// Offset of a calendar date from the epoch.
[[nodiscard]] Time time_of(const CalendarDate& d);

/// "MM-YYYY", the format Table 1 uses for peak production months.
[[nodiscard]] std::string month_label(const CalendarDate& d);
[[nodiscard]] std::string month_label_at(Time t);

/// Zero-based month index since the epoch (Oct 2003 = 0, Nov 2003 = 1 ...).
[[nodiscard]] int month_index_at(Time t);

/// First instant of the month with the given zero-based index.
[[nodiscard]] Time month_start(int month_index);

/// Labels for the first `n` months of the scenario.
[[nodiscard]] std::vector<std::string> month_labels(int n);

/// Days in a given month (handles the 2004 leap year).
[[nodiscard]] int days_in_month(int year, int month);

}  // namespace grid3::util
