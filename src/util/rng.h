// Deterministic pseudo-random number generation for the simulator.
//
// We implement xoshiro256++ seeded through splitmix64 rather than using
// std::mt19937 so that (a) streams are cheap to fork per-subsystem and
// (b) results are identical across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace grid3::util {

/// xoshiro256++ generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Fork an independent stream (jump-free: reseeds from this stream).
  /// Children seeded from distinct draws do not overlap in practice for
  /// simulation-scale consumption.
  [[nodiscard]] Rng fork();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  bool chance(double p);
  /// Exponential with the given mean (rate = 1/mean).
  double exponential(double mean);
  /// Normal via Box-Muller (no cached spare: keeps fork() semantics simple).
  double normal(double mean, double sigma);
  /// Lognormal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);
  /// Pareto (Lomax-style, xm minimum, alpha tail index).
  double pareto(double xm, double alpha);

  /// Uniformly chosen index into a container of the given size (size > 0).
  std::size_t index(std::size_t size);

  /// Sample an index according to non-negative weights (at least one > 0).
  std::size_t weighted_index(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace grid3::util
