#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace grid3::util {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_{std::move(headers)} {}

AsciiTable& AsciiTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string AsciiTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string AsciiTable::integer(std::int64_t v) { return std::to_string(v); }

std::string AsciiTable::percent(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

void AsciiTable::print(std::ostream& os) const { os << to_string(); }

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto line = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " ";
    }
    os << "|\n";
  };
  line();
  emit(headers_);
  line();
  for (const auto& row : rows_) emit(row);
  line();
  return os.str();
}

std::string AsciiTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      const bool quote = cells[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << cells[c];
      if (quote) os << '"';
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string bar_chart(
    const std::vector<std::pair<std::string, double>>& series,
    std::size_t width, const std::string& unit) {
  double peak = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, v] : series) {
    peak = std::max(peak, v);
    label_w = std::max(label_w, label.size());
  }
  std::ostringstream os;
  for (const auto& [label, v] : series) {
    const auto bar = peak > 0
                         ? static_cast<std::size_t>(v / peak *
                                                    static_cast<double>(width))
                         : 0;
    os << std::left << std::setw(static_cast<int>(label_w)) << label << " | "
       << std::string(bar, '#') << " " << AsciiTable::num(v, 2);
    if (!unit.empty()) os << " " << unit;
    os << "\n";
  }
  return os.str();
}

}  // namespace grid3::util
