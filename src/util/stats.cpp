#include "util/stats.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace grid3::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0.0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x, double weight) {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  counts_[idx] += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::total() const {
  double t = underflow_ + overflow_;
  for (double c : counts_) t += c;
  return t;
}

double Histogram::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  const double target = q * total();
  double acc = underflow_;
  if (acc >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (acc + counts_[i] >= target) {
      const double inside = counts_[i] > 0 ? (target - acc) / counts_[i] : 0.0;
      return bin_lo(i) + inside * (bin_hi(i) - bin_lo(i));
    }
    acc += counts_[i];
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  double peak = 0.0;
  for (double c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = peak > 0 ? static_cast<std::size_t>(counts_[i] / peak *
                                                         static_cast<double>(width))
                              : 0;
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

double exact_quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace grid3::util
