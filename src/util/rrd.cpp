#include "util/rrd.h"

#include <algorithm>
#include <cassert>

namespace grid3::util {

RoundRobinArchive::RoundRobinArchive(std::vector<RraLevel> levels,
                                     Consolidation how)
    : how_{how} {
  assert(!levels.empty());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    assert(levels[i].step > Time::zero() && levels[i].slots > 0);
    if (i > 0) {
      assert(levels[i].step.ticks() % levels[i - 1].step.ticks() == 0 &&
             levels[i].step > levels[i - 1].step);
    }
    levels_.push_back({levels[i], std::vector<Slot>(levels[i].slots)});
  }
}

double RoundRobinArchive::consolidate(double acc, double next,
                                      double acc_count) const {
  switch (how_) {
    case Consolidation::kAverage:
      return (acc * acc_count + next) / (acc_count + 1.0);
    case Consolidation::kMax:
      return std::max(acc, next);
    case Consolidation::kLast:
      return next;
    case Consolidation::kSum:
      return acc + next;
  }
  return next;
}

void RoundRobinArchive::push_to_level(std::size_t li, std::int64_t slot_index,
                                      double value, double count) {
  Level& lvl = levels_[li];
  const std::size_t ring_pos =
      static_cast<std::size_t>(slot_index) % lvl.ring.size();
  Slot& slot = lvl.ring[ring_pos];

  if (slot.index == slot_index) {
    slot.value = consolidate(slot.value, value, slot.count);
    slot.count += count;
    return;
  }

  // We are about to overwrite an older slot: first propagate it upward so
  // the coarser level retains a consolidated view.
  if (slot.index >= 0 && li + 1 < levels_.size()) {
    const std::int64_t ratio =
        levels_[li + 1].cfg.step.ticks() / lvl.cfg.step.ticks();
    push_to_level(li + 1, slot.index / ratio, slot.value, slot.count);
  }
  slot.index = slot_index;
  slot.value = value;
  slot.count = count;
}

void RoundRobinArchive::update(Time t, double value) {
  ++samples_;
  const std::int64_t slot = t.ticks() / levels_.front().cfg.step.ticks();
  if (slot == pending_slot_) {
    pending_value_ = consolidate(pending_value_, value, pending_count_);
    pending_count_ += 1.0;
    return;
  }
  if (pending_slot_ >= 0) {
    push_to_level(0, pending_slot_, pending_value_, pending_count_);
  }
  pending_slot_ = slot;
  pending_value_ = value;
  pending_count_ = 1.0;
}

std::optional<double> RoundRobinArchive::read(Time t) const {
  const std::int64_t fine_slot = t.ticks() / levels_.front().cfg.step.ticks();
  if (fine_slot == pending_slot_) return pending_value_;
  for (const Level& lvl : levels_) {
    const std::int64_t slot_index = t.ticks() / lvl.cfg.step.ticks();
    const Slot& slot =
        lvl.ring[static_cast<std::size_t>(slot_index) % lvl.ring.size()];
    if (slot.index == slot_index) return slot.value;
  }
  return std::nullopt;
}

std::vector<TimePoint> RoundRobinArchive::level_contents(
    std::size_t level) const {
  assert(level < levels_.size());
  const Level& lvl = levels_[level];
  std::vector<TimePoint> out;
  std::vector<const Slot*> filled;
  for (const Slot& s : lvl.ring) {
    if (s.index >= 0) filled.push_back(&s);
  }
  std::sort(filled.begin(), filled.end(),
            [](const Slot* a, const Slot* b) { return a->index < b->index; });
  out.reserve(filled.size());
  for (const Slot* s : filled) {
    out.push_back({Time::micros(s->index * lvl.cfg.step.ticks()), s->value});
  }
  return out;
}

}  // namespace grid3::util
