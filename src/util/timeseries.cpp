#include "util/timeseries.h"

#include <algorithm>
#include <cassert>

namespace grid3::util {

void TimeSeries::append(Time t, double value) {
  assert(points_.empty() || t >= points_.back().t);
  if (!points_.empty() && points_.back().t == t) {
    points_.back().value = value;  // same-instant update wins
    return;
  }
  points_.push_back({t, value});
}

double TimeSeries::at(Time t) const {
  // Last sample with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Time lhs, const TimePoint& p) { return lhs < p.t; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->value;
}

double TimeSeries::integrate(Time from, Time to) const {
  if (to <= from || points_.empty()) return 0.0;
  double acc = 0.0;
  Time cursor = from;
  double current = at(from);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), from,
      [](Time lhs, const TimePoint& p) { return lhs < p.t; });
  for (; it != points_.end() && it->t < to; ++it) {
    acc += current * (it->t - cursor).to_seconds();
    cursor = it->t;
    current = it->value;
  }
  acc += current * (to - cursor).to_seconds();
  return acc;
}

double TimeSeries::time_average(Time from, Time to) const {
  if (to <= from) return 0.0;
  return integrate(from, to) / (to - from).to_seconds();
}

double TimeSeries::max_over(Time from, Time to) const {
  double peak = at(from);
  for (const auto& p : points_) {
    if (p.t < from || p.t > to) continue;
    peak = std::max(peak, p.value);
  }
  return peak;
}

std::vector<double> TimeSeries::binned_average(Time from, Time to,
                                               std::size_t bins) const {
  assert(bins > 0 && to > from);
  std::vector<double> out(bins, 0.0);
  const Time width = Time::micros((to - from).ticks() / static_cast<std::int64_t>(bins));
  for (std::size_t i = 0; i < bins; ++i) {
    const Time lo = from + Time::micros(width.ticks() * static_cast<std::int64_t>(i));
    const Time hi = (i + 1 == bins) ? to : lo + width;
    out[i] = time_average(lo, hi);
  }
  return out;
}

void EventSeries::record(Time t, double weight) {
  assert(events_.empty() || t >= events_.back().t);
  events_.push_back({t, weight});
}

double EventSeries::total(Time from, Time to) const {
  double acc = 0.0;
  for (const auto& e : events_) {
    if (e.t >= from && e.t < to) acc += e.value;
  }
  return acc;
}

double EventSeries::total() const {
  double acc = 0.0;
  for (const auto& e : events_) acc += e.value;
  return acc;
}

std::vector<double> EventSeries::binned(Time from, Time to,
                                        std::size_t bins) const {
  assert(bins > 0 && to > from);
  std::vector<double> out(bins, 0.0);
  const double span = (to - from).to_seconds();
  for (const auto& e : events_) {
    if (e.t < from || e.t >= to) continue;
    auto idx = static_cast<std::size_t>((e.t - from).to_seconds() / span *
                                        static_cast<double>(bins));
    idx = std::min(idx, bins - 1);
    out[idx] += e.value;
  }
  return out;
}

std::vector<double> EventSeries::cumulative(Time from, Time to,
                                            std::size_t bins) const {
  auto per_bin = binned(from, to, bins);
  double acc = total(Time::zero(), from);
  for (auto& v : per_bin) {
    acc += v;
    v = acc;
  }
  return per_bin;
}

}  // namespace grid3::util
