// Round-robin archive, modeled on the "round robin-like database" the
// MonALISA central repository used at the iGOC (paper section 5.2).
//
// A fixed number of slots per resolution level; as primary slots fill they
// are consolidated (averaged or maxed) into the next coarser level, so
// storage stays bounded no matter how long the grid runs.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/timeseries.h"
#include "util/units.h"

namespace grid3::util {

enum class Consolidation { kAverage, kMax, kLast, kSum };

/// One resolution level of the archive.
struct RraLevel {
  Time step;          ///< width of one slot
  std::size_t slots;  ///< how many slots this level retains
};

class RoundRobinArchive {
 public:
  /// Levels must be ordered fine -> coarse; each coarser step should be an
  /// integer multiple of the previous one (enforced).
  RoundRobinArchive(std::vector<RraLevel> levels, Consolidation how);

  /// Record a sample; samples must arrive in non-decreasing time order.
  /// Samples within one primary slot are consolidated with the configured
  /// function.
  void update(Time t, double value);

  /// Read the consolidated value covering time t from the finest level
  /// still retaining it.  nullopt when t predates all retained data or no
  /// sample ever covered it.
  [[nodiscard]] std::optional<double> read(Time t) const;

  /// All retained (slot_start, value) pairs of a level, oldest first.
  [[nodiscard]] std::vector<TimePoint> level_contents(std::size_t level) const;

  [[nodiscard]] std::size_t levels() const { return levels_.size(); }
  [[nodiscard]] const RraLevel& level(std::size_t i) const { return levels_[i].cfg; }

  /// Total number of samples ever pushed.
  [[nodiscard]] std::size_t samples() const { return samples_; }

 private:
  struct Slot {
    std::int64_t index = -1;  // slot number since epoch; -1 = empty
    double value = 0.0;
    double count = 0.0;  // for averaging
  };
  struct Level {
    RraLevel cfg;
    std::vector<Slot> ring;
  };

  void push_to_level(std::size_t li, std::int64_t slot_index, double value,
                     double count);
  [[nodiscard]] double consolidate(double acc, double next, double acc_count) const;

  std::vector<Level> levels_;
  Consolidation how_;
  std::size_t samples_ = 0;
  // Pending accumulation for the finest level's current slot.
  std::int64_t pending_slot_ = -1;
  double pending_value_ = 0.0;
  double pending_count_ = 0.0;
};

}  // namespace grid3::util
