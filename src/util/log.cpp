#include "util/log.h"

#include <iostream>

namespace grid3::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  if (level < level_ || level_ == LogLevel::kOff) return;
  std::scoped_lock lock{mu_};
  if (level >= LogLevel::kWarn) ++warnings_;
  const char* tag = "?";
  switch (level) {
    case LogLevel::kTrace: tag = "TRACE"; break;
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO"; break;
    case LogLevel::kWarn: tag = "WARN"; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  std::clog << "[" << tag << "] " << component << ": " << message << "\n";
}

}  // namespace grid3::util
