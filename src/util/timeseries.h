// Append-only (time, value) series plus the analyses the paper's figures
// need: integration (CPU-days), time-averages (differential CPU usage),
// binning by interval, and cumulative views.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.h"

namespace grid3::util {

struct TimePoint {
  Time t;
  double value = 0.0;
};

/// A step-function time series: value(t) holds from each sample until the
/// next.  Samples must be appended in non-decreasing time order.
class TimeSeries {
 public:
  void append(Time t, double value);

  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<TimePoint>& points() const { return points_; }

  /// Step-function value at time t (0 before the first sample).
  [[nodiscard]] double at(Time t) const;

  /// Integral of the step function over [from, to], in value * seconds.
  [[nodiscard]] double integrate(Time from, Time to) const;

  /// Time-weighted average over [from, to].
  [[nodiscard]] double time_average(Time from, Time to) const;

  /// Maximum sampled value within [from, to] (considering the step value
  /// entering the window too).
  [[nodiscard]] double max_over(Time from, Time to) const;

  /// Resample into `bins` equal windows of [from, to], each bin holding the
  /// time-weighted average (the paper notes binned averages under-report
  /// peaks -- we reproduce that artifact deliberately).
  [[nodiscard]] std::vector<double> binned_average(Time from, Time to,
                                                   std::size_t bins) const;

 private:
  std::vector<TimePoint> points_;
};

/// A counter series for discrete events (jobs completed, bytes moved):
/// each event adds a weight at a timestamp; queries aggregate by window.
class EventSeries {
 public:
  void record(Time t, double weight = 1.0);

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<TimePoint>& events() const { return events_; }

  /// Total weight in [from, to).
  [[nodiscard]] double total(Time from, Time to) const;
  [[nodiscard]] double total() const;

  /// Weight per equal-width bin over [from, to).
  [[nodiscard]] std::vector<double> binned(Time from, Time to,
                                           std::size_t bins) const;

  /// Cumulative weight sampled at each bin edge (for "integrated" plots).
  [[nodiscard]] std::vector<double> cumulative(Time from, Time to,
                                               std::size_t bins) const;

 private:
  std::vector<TimePoint> events_;  // kept sorted by construction
};

}  // namespace grid3::util
