#include "util/distributions.h"

#include <algorithm>
#include <cmath>

namespace grid3::util {

struct Distribution::Impl {
  enum class Kind {
    kConstant,
    kUniform,
    kExponential,
    kLognormal,
    kWeibull,
    kPareto,
    kTruncNormal,
    kMixture,
    kClamped,
  };
  Kind kind{};
  double a = 0.0;  // meaning depends on kind
  double b = 0.0;
  double c = 0.0;
  std::vector<Distribution> components;
  std::vector<double> weights;
};

namespace {
using Impl = Distribution::Impl;
}  // namespace

Distribution Distribution::constant(double v) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kConstant;
  impl->a = v;
  return Distribution{std::move(impl)};
}

Distribution Distribution::uniform(double lo, double hi) {
  assert(lo <= hi);
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kUniform;
  impl->a = lo;
  impl->b = hi;
  return Distribution{std::move(impl)};
}

Distribution Distribution::exponential(double mean) {
  assert(mean > 0.0);
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kExponential;
  impl->a = mean;
  return Distribution{std::move(impl)};
}

Distribution Distribution::lognormal_mean_cv(double mean, double cv) {
  assert(mean > 0.0 && cv > 0.0);
  // For lognormal with parameters (mu, s): mean = exp(mu + s^2/2),
  // cv^2 = exp(s^2) - 1  =>  s^2 = ln(1 + cv^2), mu = ln(mean) - s^2/2.
  const double s2 = std::log(1.0 + cv * cv);
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kLognormal;
  impl->a = std::log(mean) - 0.5 * s2;  // mu
  impl->b = std::sqrt(s2);              // sigma
  impl->c = mean;                       // cached analytic mean
  return Distribution{std::move(impl)};
}

Distribution Distribution::weibull(double shape, double scale) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kWeibull;
  impl->a = shape;
  impl->b = scale;
  return Distribution{std::move(impl)};
}

Distribution Distribution::pareto(double xm, double alpha) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kPareto;
  impl->a = xm;
  impl->b = alpha;
  return Distribution{std::move(impl)};
}

Distribution Distribution::truncated_normal(double mean, double sigma,
                                            double floor) {
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kTruncNormal;
  impl->a = mean;
  impl->b = sigma;
  impl->c = floor;
  return Distribution{std::move(impl)};
}

Distribution Distribution::mixture(std::vector<Distribution> comps,
                                   std::vector<double> weights) {
  assert(!comps.empty() && comps.size() == weights.size());
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kMixture;
  impl->components = std::move(comps);
  impl->weights = std::move(weights);
  return Distribution{std::move(impl)};
}

Distribution Distribution::clamped(Distribution base, double lo, double hi) {
  assert(lo <= hi);
  auto impl = std::make_shared<Impl>();
  impl->kind = Impl::Kind::kClamped;
  impl->components.push_back(std::move(base));
  impl->a = lo;
  impl->b = hi;
  return Distribution{std::move(impl)};
}

double Distribution::sample(Rng& rng) const {
  const Impl& d = *impl_;
  switch (d.kind) {
    case Impl::Kind::kConstant:
      return d.a;
    case Impl::Kind::kUniform:
      return rng.uniform(d.a, d.b);
    case Impl::Kind::kExponential:
      return rng.exponential(d.a);
    case Impl::Kind::kLognormal:
      return rng.lognormal(d.a, d.b);
    case Impl::Kind::kWeibull:
      return rng.weibull(d.a, d.b);
    case Impl::Kind::kPareto:
      return rng.pareto(d.a, d.b);
    case Impl::Kind::kTruncNormal: {
      for (int i = 0; i < 64; ++i) {
        const double v = rng.normal(d.a, d.b);
        if (v >= d.c) return v;
      }
      return d.c;
    }
    case Impl::Kind::kMixture:
      return d.components[rng.weighted_index(d.weights)].sample(rng);
    case Impl::Kind::kClamped:
      return std::clamp(d.components.front().sample(rng), d.a, d.b);
  }
  return 0.0;
}

double Distribution::mean() const {
  const Impl& d = *impl_;
  switch (d.kind) {
    case Impl::Kind::kConstant:
      return d.a;
    case Impl::Kind::kUniform:
      return 0.5 * (d.a + d.b);
    case Impl::Kind::kExponential:
      return d.a;
    case Impl::Kind::kLognormal:
      return d.c;
    case Impl::Kind::kWeibull:
      return d.b * std::tgamma(1.0 + 1.0 / d.a);
    case Impl::Kind::kPareto:
      return d.b > 1.0 ? d.a * d.b / (d.b - 1.0) : d.a;
    case Impl::Kind::kTruncNormal:
      return std::max(d.a, d.c);
    case Impl::Kind::kMixture: {
      double total_w = 0.0;
      double acc = 0.0;
      for (std::size_t i = 0; i < d.components.size(); ++i) {
        acc += d.weights[i] * d.components[i].mean();
        total_w += d.weights[i];
      }
      return acc / total_w;
    }
    case Impl::Kind::kClamped:
      return std::clamp(d.components.front().mean(), d.a, d.b);
  }
  return 0.0;
}

}  // namespace grid3::util
