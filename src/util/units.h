// Strong time and size units shared by every Grid3Sim subsystem.
//
// Simulated time is an integer count of microseconds since the scenario
// epoch.  Integer ticks keep the event queue deterministic: two runs with
// the same seed produce bit-identical schedules, which the reproduction
// harness relies on.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace grid3 {

/// A point in simulated time (microseconds since scenario epoch) or a
/// duration.  Arithmetic is closed; use the named constructors for clarity.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time micros(std::int64_t us) { return Time{us}; }
  [[nodiscard]] static constexpr Time millis(double ms) { return Time{static_cast<std::int64_t>(ms * 1e3)}; }
  [[nodiscard]] static constexpr Time seconds(double s) { return Time{static_cast<std::int64_t>(s * 1e6)}; }
  [[nodiscard]] static constexpr Time minutes(double m) { return seconds(m * 60.0); }
  [[nodiscard]] static constexpr Time hours(double h) { return seconds(h * 3600.0); }
  [[nodiscard]] static constexpr Time days(double d) { return seconds(d * 86400.0); }
  [[nodiscard]] static constexpr Time max() { return Time{std::numeric_limits<std::int64_t>::max()}; }
  [[nodiscard]] static constexpr Time zero() { return Time{0}; }

  [[nodiscard]] constexpr std::int64_t ticks() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double to_minutes() const { return to_seconds() / 60.0; }
  [[nodiscard]] constexpr double to_hours() const { return to_seconds() / 3600.0; }
  [[nodiscard]] constexpr double to_days() const { return to_seconds() / 86400.0; }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) { us_ += rhs.us_; return *this; }
  constexpr Time& operator-=(Time rhs) { us_ -= rhs.us_; return *this; }
  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.us_ + b.us_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.us_ - b.us_}; }
  [[nodiscard]] friend constexpr Time operator*(Time a, double k) {
    return Time{static_cast<std::int64_t>(static_cast<double>(a.us_) * k)};
  }
  [[nodiscard]] friend constexpr Time operator*(double k, Time a) { return a * k; }
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }

 private:
  constexpr explicit Time(std::int64_t us) : us_{us} {}
  std::int64_t us_ = 0;
};

/// Data sizes in bytes with named constructors for the scales the paper
/// uses (datasets of GB, daily transfer volumes of TB).
class Bytes {
 public:
  constexpr Bytes() = default;

  [[nodiscard]] static constexpr Bytes of(std::int64_t b) { return Bytes{b}; }
  [[nodiscard]] static constexpr Bytes kb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e3)}; }
  [[nodiscard]] static constexpr Bytes mb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e6)}; }
  [[nodiscard]] static constexpr Bytes gb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e9)}; }
  [[nodiscard]] static constexpr Bytes tb(double v) { return Bytes{static_cast<std::int64_t>(v * 1e12)}; }
  [[nodiscard]] static constexpr Bytes zero() { return Bytes{0}; }

  [[nodiscard]] constexpr std::int64_t count() const { return b_; }
  [[nodiscard]] constexpr double to_mb() const { return static_cast<double>(b_) / 1e6; }
  [[nodiscard]] constexpr double to_gb() const { return static_cast<double>(b_) / 1e9; }
  [[nodiscard]] constexpr double to_tb() const { return static_cast<double>(b_) / 1e12; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes rhs) { b_ += rhs.b_; return *this; }
  constexpr Bytes& operator-=(Bytes rhs) { b_ -= rhs.b_; return *this; }
  [[nodiscard]] friend constexpr Bytes operator+(Bytes a, Bytes b) { return Bytes{a.b_ + b.b_}; }
  [[nodiscard]] friend constexpr Bytes operator-(Bytes a, Bytes b) { return Bytes{a.b_ - b.b_}; }
  [[nodiscard]] friend constexpr Bytes operator*(Bytes a, double k) {
    return Bytes{static_cast<std::int64_t>(static_cast<double>(a.b_) * k)};
  }
  [[nodiscard]] friend constexpr double operator/(Bytes a, Bytes b) {
    return static_cast<double>(a.b_) / static_cast<double>(b.b_);
  }

 private:
  constexpr explicit Bytes(std::int64_t b) : b_{b} {}
  std::int64_t b_ = 0;
};

/// Bandwidth in bytes per second of simulated time.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;

  [[nodiscard]] static constexpr Bandwidth bytes_per_sec(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth mbps(double megabits) { return Bandwidth{megabits * 1e6 / 8.0}; }
  [[nodiscard]] static constexpr Bandwidth gbps(double gigabits) { return Bandwidth{gigabits * 1e9 / 8.0}; }

  [[nodiscard]] constexpr double bps() const { return bytes_per_sec_; }
  [[nodiscard]] constexpr double to_mbps() const { return bytes_per_sec_ * 8.0 / 1e6; }

  /// Time to move `size` at this rate (unbounded if rate is zero).
  [[nodiscard]] constexpr Time transfer_time(Bytes size) const {
    if (bytes_per_sec_ <= 0.0) return Time::max();
    return Time::seconds(static_cast<double>(size.count()) / bytes_per_sec_);
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;

  [[nodiscard]] friend constexpr Bandwidth operator*(Bandwidth a, double k) {
    return Bandwidth{a.bytes_per_sec_ * k};
  }
  [[nodiscard]] friend constexpr Bandwidth operator/(Bandwidth a, double k) {
    return Bandwidth{a.bytes_per_sec_ / k};
  }

 private:
  constexpr explicit Bandwidth(double v) : bytes_per_sec_{v} {}
  double bytes_per_sec_ = 0.0;
};

/// CPU consumption expressed in CPU-days, the unit used throughout the
/// paper's figures and Table 1.
[[nodiscard]] constexpr double cpu_days(Time busy) { return busy.to_days(); }

}  // namespace grid3
