#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace grid3::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() { return Rng{next_u64()}; }

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Debiased modulo (Lemire-style rejection).
  std::uint64_t x = next_u64();
  const std::uint64_t threshold = (0 - range) % range;
  while (x % range < threshold && x < range) x = next_u64();
  return lo + static_cast<std::int64_t>(x % range);
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

double Rng::normal(double mean, double sigma) {
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + sigma * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::weibull(double shape, double scale) {
  assert(shape > 0.0 && scale > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return scale * std::pow(-std::log(1.0 - u), 1.0 / shape);
}

double Rng::pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return xm / std::pow(1.0 - u, 1.0 / alpha);
}

std::size_t Rng::index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace grid3::util
