// Minimal leveled logger.  The simulator is deterministic and single-
// threaded per run, so the logger favors simplicity; a mutex still guards
// emission because benches may run scenario replicas on worker threads.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace grid3::util {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& component,
             const std::string& message);

  /// Number of messages emitted at >= warn (used by tests asserting quiet
  /// operation).
  [[nodiscard]] std::size_t warnings() const { return warnings_; }
  void reset_counters() { warnings_ = 0; }

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::size_t warnings_ = 0;
  std::mutex mu_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_{level}, component_{std::move(component)} {}
  ~LogLine() { Logger::instance().write(level_, component_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

[[nodiscard]] inline detail::LogLine log_info(std::string component) {
  return {LogLevel::kInfo, std::move(component)};
}
[[nodiscard]] inline detail::LogLine log_warn(std::string component) {
  return {LogLevel::kWarn, std::move(component)};
}
[[nodiscard]] inline detail::LogLine log_debug(std::string component) {
  return {LogLevel::kDebug, std::move(component)};
}

}  // namespace grid3::util
