// INFN-GRID-style operations calendar (physics/0701067): scheduled
// site maintenance, collective-service maintenance, and WAN-weather
// traces, compiled into the fabric's FailureInjector as deterministic
// downtime windows.
//
// A calendar is plain data: building one consumes no simulation state,
// and compile() translates every event into
// FailureInjector::schedule_downtime -- which itself draws no RNG -- so
// a calendared scenario perturbs the workload's random streams not at
// all.  Seeded trace generators (WAN weather) draw from their own
// throwaway RNG at build time, keeping the trace a pure function of
// (arguments, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/grid3.h"
#include "util/distributions.h"
#include "util/units.h"

namespace grid3::workload {

struct CalendarEvent {
  enum class Kind {
    kSiteMaintenance,        ///< gatekeeper + GRIS down for the window
    kCollectiveMaintenance,  ///< an attached collective bundle down
    kWanWeather,             ///< the site's network node down
  };
  Kind kind = Kind::kSiteMaintenance;
  std::string target;  ///< site name or collective bundle name
  Time start;
  Time duration;
};

[[nodiscard]] const char* to_string(CalendarEvent::Kind k);

class OpsCalendar {
 public:
  void add(CalendarEvent e);

  /// Rotating site maintenance: starting at `first`, every `every`, the
  /// next site in `sites` (round-robin) takes a `duration` window.
  void add_site_rotation(const std::vector<std::string>& sites, Time first,
                         Time every, Time duration, std::size_t windows);

  /// Repeating maintenance on a collective bundle ("igoc-collective",
  /// "<vo>-collective"): `windows` windows of `duration`, `every` apart.
  void add_collective_storm(const std::string& bundle, Time first, Time every,
                            Time duration, std::size_t windows);

  /// Seeded WAN-weather trace: `events` windows placed uniformly over
  /// [from, to) across `sites`, each lasting a draw from
  /// `duration_hours`.  Deterministic in (arguments, seed); consumes no
  /// simulation RNG.
  void add_wan_weather(const std::vector<std::string>& sites, Time from,
                       Time to, const util::Distribution& duration_hours,
                       std::size_t events, std::uint64_t seed);

  /// Push every event into the grid's FailureInjector, in (start,
  /// target, kind) order so compilation is independent of insertion
  /// order.  Collective targets must be attached (armed) by the caller;
  /// unattached targets are skipped at fire time, exactly like the
  /// injector's own contract.
  void compile(core::Grid3& grid) const;

  [[nodiscard]] const std::vector<CalendarEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Canonical text rendering, one line per event in compile order
  /// (determinism probe for tests and the catalog digest).
  [[nodiscard]] std::string serialize() const;

 private:
  [[nodiscard]] std::vector<CalendarEvent> sorted() const;

  std::vector<CalendarEvent> events_;
};

}  // namespace grid3::workload
