#include "workload/campaign.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/calendar.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::workload {

std::uint64_t fnv1a64(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string digest_hex(std::uint64_t h) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[h & 0xf];
    h >>= 4;
  }
  return out;
}

const char* to_string(DagShape s) {
  switch (s) {
    case DagShape::kAssignmentChain: return "assignment-chain";
    case DagShape::kFlatProduction: return "flat-production";
    case DagShape::kBackfill: return "backfill";
  }
  return "?";
}

double ArrivalSpec::base_rate_per_day(Time t) const {
  const int mi = util::month_index_at(t);
  if (mi < 0 || mi >= months()) return 0.0;
  const util::CalendarDate d = util::date_at(t);
  const double days =
      static_cast<double>(util::days_in_month(d.year, d.month));
  return monthly[static_cast<std::size_t>(mi)] * scale / days;
}

namespace {

/// Diurnal factor at t: 1 + A * cos(2pi * (hour - peak) / 24).
double diurnal_factor(const ArrivalSpec& spec, Time t) {
  if (spec.diurnal_amplitude <= 0.0) return 1.0;
  const double hour =
      std::fmod(t.to_hours(), 24.0);  // epoch is midnight, so this is
                                      // local time-of-day directly
  constexpr double kTwoPi = 6.283185307179586;
  return 1.0 + spec.diurnal_amplitude *
                   std::cos(kTwoPi * (hour - spec.diurnal_peak_hour) / 24.0);
}

}  // namespace

ThinningSampler::ThinningSampler(ArrivalSpec spec, util::Rng rng)
    : spec_{std::move(spec)},
      end_{util::month_start(spec_.months())},
      rng_{rng} {
  double peak_monthly = 0.0;
  for (const double m : spec_.monthly) peak_monthly = std::max(peak_monthly, m);
  // Shortest month is 28 days; using it for the envelope keeps the
  // acceptance ratio <= 1 in every month.
  envelope_ = peak_monthly * spec_.scale / 28.0;
  envelope_ *= 1.0 + std::max(0.0, spec_.diurnal_amplitude);
  if (spec_.bursts_per_month > 0.0 && spec_.burst_multiplier > 1.0) {
    envelope_ *= spec_.burst_multiplier;
  }
  // Burst windows, drawn up front so rate_per_day() is a pure function
  // of t afterwards (the thinning loop needs that).
  if (spec_.bursts_per_month > 0.0) {
    for (int m = 0; m < spec_.months(); ++m) {
      const Time from = util::month_start(m);
      const Time to = util::month_start(m + 1);
      // Poisson count via exponential gaps in "burst index" space.
      double acc = rng_.exponential(1.0);
      while (acc < spec_.bursts_per_month) {
        const Time start =
            from + (to - from) * rng_.uniform(0.0, 1.0);
        bursts_.emplace_back(start, start + spec_.burst_duration);
        acc += rng_.exponential(1.0);
      }
    }
    std::sort(bursts_.begin(), bursts_.end());
  }
}

double ThinningSampler::rate_per_day(Time t) const {
  double rate = spec_.base_rate_per_day(t) * diurnal_factor(spec_, t);
  for (const auto& [from, to] : bursts_) {
    if (t >= from && t < to) {
      rate *= spec_.burst_multiplier;
      break;
    }
    if (from > t) break;  // sorted; no later window can contain t
  }
  return rate;
}

std::optional<Time> ThinningSampler::next(Time t) {
  if (envelope_ <= 0.0) return std::nullopt;
  Time cursor = t;
  while (cursor < end_) {
    const Time gap = Time::days(rng_.exponential(1.0 / envelope_));
    cursor += std::max(gap, Time::micros(1));
    if (cursor >= end_) break;
    const double accept = rate_per_day(cursor) / envelope_;
    if (rng_.uniform() < accept) return cursor;
  }
  return std::nullopt;
}

std::string CampaignSpec::serialize() const {
  std::ostringstream os;
  os << "campaign vo=" << vo << " app=" << app
     << " required_app=" << required_app << " lfn=" << lfn_prefix
     << " shape=" << to_string(shape.shape) << " width=[" << shape.width_min
     << "," << shape.width_max << "]"
     << " months=" << arrivals.months() << " scale=" << arrivals.scale
     << " diurnal=" << arrivals.diurnal_amplitude << "@"
     << arrivals.diurnal_peak_hour << " bursts=" << arrivals.bursts_per_month
     << "x" << arrivals.burst_multiplier << " archive=" << archive_site;
  for (const std::string& fb : archive_fallbacks) os << "+" << fb;
  os << " monthly=";
  for (std::size_t i = 0; i < arrivals.monthly.size(); ++i) {
    os << (i > 0 ? "," : "") << arrivals.monthly[i];
  }
  return os.str();
}

CampaignGenerator::CampaignGenerator(CampaignSpec spec, std::uint64_t seed)
    : spec_{std::move(spec)},
      // Independent streams for arrivals and shapes: inserting a draw
      // into one never shifts the other.
      sampler_{spec_.arrivals, util::Rng{seed ^ 0xa77e5ca1edULL}},
      shape_rng_{seed ^ 0x5ca1ab1e5ULL} {}

std::optional<WorkflowBlueprint> CampaignGenerator::next() {
  const std::optional<Time> at = sampler_.next(cursor_);
  if (!at.has_value()) return std::nullopt;
  cursor_ = *at;

  WorkflowBlueprint wf;
  wf.at = *at;
  wf.seq = ++seq_;
  const std::string tag =
      spec_.lfn_prefix + "/" + std::to_string(wf.seq);
  const ShapeSpec& sh = spec_.shape;
  const int width =
      sh.shape == DagShape::kBackfill
          ? 1
          : static_cast<int>(shape_rng_.uniform_int(sh.width_min,
                                                    sh.width_max));

  double runtime_sum = 0.0;
  double output_sum = 0.0;
  std::vector<std::string> prod_outputs;
  for (int i = 0; i < width; ++i) {
    JobBlueprint job;
    job.id = "prod-" + std::to_string(wf.seq) + "-" + std::to_string(i);
    job.transformation = spec_.app + "-prod";
    job.outputs = {tag + "/part-" + std::to_string(i)};
    job.runtime_hours = sh.runtime_hours.sample(shape_rng_);
    job.output_gb = sh.output_gb.sample(shape_rng_);
    job.scratch_gb = sh.scratch_gb;
    runtime_sum += job.runtime_hours;
    output_sum += job.output_gb;
    prod_outputs.push_back(job.outputs.front());
    wf.jobs.push_back(std::move(job));
  }

  switch (sh.shape) {
    case DagShape::kFlatProduction:
    case DagShape::kBackfill:
      wf.targets = prod_outputs;
      break;
    case DagShape::kAssignmentChain: {
      const double mean_runtime = runtime_sum / width;
      JobBlueprint validate;
      validate.id = "validate-" + std::to_string(wf.seq);
      validate.transformation = spec_.app + "-validate";
      validate.inputs = prod_outputs;
      validate.outputs = {tag + "/validated"};
      validate.runtime_hours = mean_runtime * sh.validate_fraction;
      validate.output_gb = 0.01;
      validate.scratch_gb = sh.scratch_gb;
      wf.jobs.push_back(validate);

      JobBlueprint merge;
      merge.id = "merge-" + std::to_string(wf.seq);
      merge.transformation = spec_.app + "-merge";
      merge.inputs = prod_outputs;
      merge.inputs.push_back(validate.outputs.front());
      merge.outputs = {tag + "/merged"};
      merge.runtime_hours = mean_runtime * sh.merge_fraction;
      merge.output_gb = output_sum * 0.8;
      merge.scratch_gb = sh.scratch_gb + output_sum;
      wf.targets = merge.outputs;
      wf.jobs.push_back(std::move(merge));
      break;
    }
  }
  return wf;
}

std::string CampaignGenerator::serialize(const WorkflowBlueprint& wf) {
  std::ostringstream os;
  os << "wf seq=" << wf.seq << " at_us=" << wf.at.ticks() << "\n";
  for (const JobBlueprint& j : wf.jobs) {
    os << "  job id=" << j.id << " xf=" << j.transformation
       << " runtime_us=" << Time::hours(j.runtime_hours).ticks()
       << " out_b=" << Bytes::gb(j.output_gb).count() << " in=";
    for (std::size_t i = 0; i < j.inputs.size(); ++i) {
      os << (i > 0 ? "," : "") << j.inputs[i];
    }
    os << " out=";
    for (std::size_t i = 0; i < j.outputs.size(); ++i) {
      os << (i > 0 ? "," : "") << j.outputs[i];
    }
    os << "\n";
  }
  return os.str();
}

CampaignDriver::CampaignDriver(core::Grid3& grid, CampaignSpec spec,
                               std::uint64_t seed)
    : apps::AppBase{grid, spec.vo, spec.app},
      spec_{std::move(spec)},
      gen_{spec_, seed} {}

CampaignDriver::~CampaignDriver() { stop(); }

void CampaignDriver::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void CampaignDriver::stop() {
  running_ = false;
  if (pending_ != 0) {
    sim().cancel(pending_);
    pending_ = 0;
  }
}

void CampaignDriver::arm() {
  if (!running_) return;
  std::optional<WorkflowBlueprint> wf = gen_.next();
  // Arrivals before the driver started are skipped, not replayed late:
  // the campaign joined in progress.
  while (wf.has_value() && wf->at < sim().now()) wf = gen_.next();
  if (!wf.has_value()) {
    running_ = false;
    return;
  }
  pending_ = sim().schedule_at(wf->at, [this, wf = std::move(*wf)] {
    pending_ = 0;
    if (!running_) return;
    launch_blueprint(wf);
    arm();
  });
}

void CampaignDriver::launch_blueprint(const WorkflowBlueprint& wf) {
  workflow::VirtualDataCatalog vdc;
  // One transformation per distinct name (re-adding is harmless but
  // keeps the catalog minimal).
  std::vector<std::string> seen;
  for (const JobBlueprint& j : wf.jobs) {
    if (std::find(seen.begin(), seen.end(), j.transformation) == seen.end()) {
      vdc.add_transformation({j.transformation, "1", spec_.required_app});
      seen.push_back(j.transformation);
    }
  }
  for (const JobBlueprint& j : wf.jobs) {
    vdc.add_derivation({.id = j.id,
                        .transformation = j.transformation,
                        .inputs = j.inputs,
                        .outputs = j.outputs,
                        .runtime = Time::hours(j.runtime_hours),
                        .output_size = Bytes::gb(j.output_gb),
                        .scratch = Bytes::gb(j.scratch_gb)});
  }
  const std::optional<workflow::AbstractDag> dag = vdc.request(wf.targets);
  if (!dag.has_value()) return;

  workflow::PlannerConfig cfg;
  cfg.vo = spec_.vo;
  cfg.archive_site = spec_.archive_site;
  cfg.archive_fallbacks = spec_.archive_fallbacks;
  cfg.archive_all = spec_.archive_all;
  cfg.walltime_slack = spec_.walltime_slack;
  cfg.site_preference = spec_.site_preference;
  if (launch(*dag, cfg)) ++launched_;
}

}  // namespace grid3::workload
