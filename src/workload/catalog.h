// The scenario catalog: named, versioned production scenarios, each
// fully determined by (name, seed).
//
// Every catalog entry bundles a fabric configuration
// (apps::ScenarioOptions), a set of per-VO campaigns (CampaignSpec;
// empty for scenarios that replay the historical application
// demonstrators), and an operations calendar.  run_scenario() executes
// one entry under a named policy stack and returns the outcome plus a
// deterministic digest, so every future feature lands as a
// multi-workload result instead of a single-scenario anecdote --
// docs/SCENARIOS.md is the human-readable reference,
// bench/ablation_catalog the policy-stack comparison,
// bench/CATALOG_MANIFEST.json the determinism manifest CI gates on.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/scenario.h"
#include "broker/rank_policy.h"
#include "workload/campaign.h"
#include "workload/ops_calendar.h"

namespace grid3::workload {

struct ScenarioSpec {
  std::string name;
  int version = 1;
  std::string summary;
  /// What the scenario is built to stress (docs/SCENARIOS.md column).
  std::string stressor;
  /// Full-mode fabric + horizon options (seed already applied).  The
  /// broker/kernel fields are defaults only; a policy stack overrides
  /// them (see StackConfig).
  apps::ScenarioOptions base;
  /// Quick-mode (GRID3_BENCH_QUICK) overrides: reduced horizon and a
  /// job-scale multiplier, same acceptance semantics.
  int quick_months = 1;
  double quick_job_scale = 1.0;
  /// Workload-generator campaigns (empty = the historical app mix).
  std::vector<CampaignSpec> campaigns;
  OpsCalendar calendar;
  /// Collective bundles the runner arms (zero rates -- inert without
  /// calendar windows): "igoc-collective" or "<vo>-collective".
  std::vector<std::string> collective_bundles;

  /// Effective options for a full or quick run.
  [[nodiscard]] apps::ScenarioOptions options(bool quick) const;
  /// Canonical multi-line rendering (determinism probe for tests).
  [[nodiscard]] std::string serialize() const;
};

class ScenarioCatalog {
 public:
  /// Catalog entries in canonical order.
  [[nodiscard]] static const std::vector<std::string>& names();
  /// Build the named spec for a seed.  Throws std::out_of_range for an
  /// unknown name.
  [[nodiscard]] static ScenarioSpec get(const std::string& name,
                                        std::uint64_t seed);
};

/// A policy stack: the placement/resilience feature set a scenario runs
/// under.  The catalog comparison pits `modern_stack()` (incremental
/// broker + leases + breakers + fast kernel) against `legacy_stack()`
/// (the paper's favorite-sites status quo on the legacy kernel).
struct StackConfig {
  std::string name = "modern";
  broker::PolicyKind policy = broker::PolicyKind::kQueueDepth;
  bool incremental_rank = true;
  bool placement_leases = true;
  bool health_breakers = true;
  bool calendar_kernel = true;
  bool partial_reallocate = true;
};

[[nodiscard]] StackConfig modern_stack();
[[nodiscard]] StackConfig legacy_stack();

/// Outcome of one (scenario, stack) run.
struct RunResult {
  std::string scenario;
  std::string stack;
  std::size_t jobs = 0;       ///< accounted ACDC job records
  std::size_t completed = 0;
  std::size_t failed = 0;
  std::uint64_t workflows = 0;  ///< campaign workflows launched
  std::size_t downtimes = 0;    ///< scheduled-maintenance windows fired
  std::size_t wan_events = 0;   ///< WAN-weather windows fired
  std::uint64_t events = 0;     ///< simulator events executed
  double wall_seconds = 0.0;
  std::string match_log;  ///< per-VO broker match logs, concatenated
  /// FNV-1a over the match logs + job outcome counters: equal digests
  /// certify byte-identical scheduling behavior for (name, seed,
  /// stack); recorded in bench/CATALOG_MANIFEST.json.
  std::string digest;
};

/// One catalog entry materialized against a live fabric: simulation,
/// scenario (fabric + historical apps when the spec keeps them),
/// campaign drivers, armed collective bundles, and the compiled
/// calendar.  Drivers needing mid-run control (ablations that break
/// things at a chosen time) use this directly; run_scenario() is the
/// one-shot wrapper.
class CatalogRun {
 public:
  CatalogRun(const ScenarioSpec& spec, bool quick, const StackConfig& stack);
  ~CatalogRun();
  CatalogRun(const CatalogRun&) = delete;
  CatalogRun& operator=(const CatalogRun&) = delete;

  /// Start the scenario and every campaign driver (idempotent).
  void start();
  void run_until(Time t);
  /// Run to the spec's effective horizon.
  void run();
  /// Collect counters, match logs, and the digest.
  [[nodiscard]] RunResult finish() const;

  [[nodiscard]] sim::Simulation& sim() { return *sim_; }
  [[nodiscard]] apps::Scenario& scenario() { return *scenario_; }
  [[nodiscard]] const apps::ScenarioOptions& options() const { return opts_; }

 private:
  ScenarioSpec spec_;
  StackConfig stack_;
  apps::ScenarioOptions opts_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<apps::Scenario> scenario_;
  std::vector<std::unique_ptr<CampaignDriver>> drivers_;
  std::chrono::steady_clock::time_point wall_start_;
  bool started_ = false;
};

/// Execute one catalog entry under a policy stack.
[[nodiscard]] RunResult run_scenario(const ScenarioSpec& spec, bool quick,
                                     const StackConfig& stack);

}  // namespace grid3::workload
