// Multi-VO production-campaign generator (sections 4/6 workloads,
// generalized).
//
// Grid3's real load was not hand-built DAG snippets but months-long
// production campaigns: CMS assignment-based production with
// validation/merge phases, ATLAS flat Monte-Carlo batches, and
// opportunistic VOs backfilling with short jobs (hep-ex/0305099,
// cs/0305066).  A CampaignSpec describes one such campaign per VO --
// an arrival process with diurnal/burst structure, dataset-size
// distributions, and a DAG shape family -- and a CampaignGenerator
// expands it into a deterministic stream of workflow blueprints fully
// determined by (spec, seed).  The CampaignDriver replays that stream
// against a live fabric through the ordinary planner/DAGMan path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/appbase.h"
#include "sim/simulation.h"
#include "util/distributions.h"
#include "util/rng.h"
#include "util/units.h"

namespace grid3::workload {

/// 64-bit FNV-1a, the digest primitive the scenario catalog uses for
/// determinism manifests (stable across platforms, no libc dependence).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s,
                                    std::uint64_t h = 0xcbf29ce484222325ULL);
/// Fixed-width lowercase-hex rendering of a digest.
[[nodiscard]] std::string digest_hex(std::uint64_t h);

/// Arrival process for one campaign: per-month launch targets (the
/// Figure 6 ramp idiom) modulated by a diurnal cycle and by burst
/// windows, realized through a seeded Lewis-Shedler thinning sampler.
struct ArrivalSpec {
  /// Target workflow launches in campaign month 0, 1, ...
  std::vector<double> monthly;
  double scale = 1.0;
  /// Diurnal modulation in [0, 1): rate(t) *= 1 + A * cos(2pi * (h -
  /// peak)/24).  0 = flat (automated submission); production operators
  /// submitted by day, so campaigns typically use 0.2 - 0.5.
  double diurnal_amplitude = 0.0;
  double diurnal_peak_hour = 14.0;
  /// Burst structure: per month, Poisson(bursts_per_month) windows of
  /// `burst_duration` during which the rate is multiplied by
  /// `burst_multiplier` (assignment pushes, pre-deadline crunches).
  double bursts_per_month = 0.0;
  double burst_multiplier = 1.0;
  Time burst_duration = Time::hours(6);

  /// Base (un-modulated) rate in launches/day at time t; 0 outside the
  /// schedule.
  [[nodiscard]] double base_rate_per_day(Time t) const;
  [[nodiscard]] int months() const {
    return static_cast<int>(monthly.size());
  }
};

/// Non-homogeneous Poisson arrivals via thinning: candidate gaps are
/// drawn at the envelope rate (max monthly rate x diurnal peak x burst
/// multiplier) and accepted with probability rate(t)/envelope.  The
/// stream is a pure function of (spec, rng seed): no simulation state
/// is consulted, so two samplers with equal inputs emit byte-identical
/// arrival sequences.
class ThinningSampler {
 public:
  ThinningSampler(ArrivalSpec spec, util::Rng rng);

  /// Next arrival strictly after `t`, or nullopt past the schedule end.
  [[nodiscard]] std::optional<Time> next(Time t);

  /// Instantaneous modulated rate (launches/day) at t -- exposed so
  /// tests can verify the sampler tracks its target.
  [[nodiscard]] double rate_per_day(Time t) const;
  /// The thinning envelope (launches/day).
  [[nodiscard]] double envelope_per_day() const { return envelope_; }
  /// Burst windows drawn at construction (sorted by start).
  [[nodiscard]] const std::vector<std::pair<Time, Time>>& bursts() const {
    return bursts_;
  }

 private:
  ArrivalSpec spec_;
  Time end_;
  double envelope_ = 0.0;
  std::vector<std::pair<Time, Time>> bursts_;
  util::Rng rng_;
};

/// DAG shape families the campaign papers describe.
enum class DagShape {
  /// CMS-style assignment: N parallel production jobs feeding a
  /// validation step, whose blessing feeds a merge step that archives.
  kAssignmentChain,
  /// Flat Monte-Carlo production: N independent jobs, no shared child.
  kFlatProduction,
  /// Opportunistic backfill: single short job per arrival.
  kBackfill,
};

[[nodiscard]] const char* to_string(DagShape s);

/// Shape + size distributions for the workflows one campaign emits.
struct ShapeSpec {
  DagShape shape = DagShape::kFlatProduction;
  /// Production-job fan-out per workflow (uniform in [min, max]).
  int width_min = 1;
  int width_max = 1;
  util::Distribution runtime_hours = util::Distribution::constant(1.0);
  util::Distribution output_gb = util::Distribution::constant(1.0);
  double scratch_gb = 2.0;
  /// Assignment chains: validate/merge runtimes as fractions of the
  /// workflow's mean production-job runtime.
  double validate_fraction = 0.08;
  double merge_fraction = 0.25;
};

/// One per-VO production campaign.
struct CampaignSpec {
  std::string vo;
  /// Accounting label (ACDC app column) and ticket prefix.
  std::string app;
  /// Application package a site must publish to run this campaign's
  /// jobs (core::app constants; installed per Table 1 proportions).
  std::string required_app;
  std::string lfn_prefix;
  ArrivalSpec arrivals;
  ShapeSpec shape;
  // Planner knobs (workflow::PlannerConfig subset).
  std::string archive_site;
  std::vector<std::string> archive_fallbacks;
  std::map<std::string, double> site_preference;
  double walltime_slack = 1.5;
  bool archive_all = false;

  /// Canonical one-line rendering (determinism probe + catalog docs).
  [[nodiscard]] std::string serialize() const;
};

/// One job of a generated workflow; edges are implied by LFN
/// consumption, exactly as the Chimera VDC derives them.
struct JobBlueprint {
  std::string id;
  std::string transformation;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  double runtime_hours = 0.0;
  double output_gb = 0.0;
  double scratch_gb = 0.0;
};

/// One workflow arrival: a launch time plus the jobs to materialize.
struct WorkflowBlueprint {
  Time at;
  std::uint64_t seq = 0;
  std::vector<JobBlueprint> jobs;
  std::vector<std::string> targets;  ///< final LFNs requested of the VDC
};

/// Expands a CampaignSpec into its deterministic blueprint stream.
/// Consumes nothing but its own forked RNG: equal (spec, seed) pairs
/// yield byte-identical streams (tests/workload_test.cpp holds this).
class CampaignGenerator {
 public:
  CampaignGenerator(CampaignSpec spec, std::uint64_t seed);

  /// The next workflow, or nullopt once arrivals pass the schedule end.
  [[nodiscard]] std::optional<WorkflowBlueprint> next();

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] ThinningSampler& sampler() { return sampler_; }

  /// Canonical text rendering of one blueprint (one line per job).
  [[nodiscard]] static std::string serialize(const WorkflowBlueprint& wf);

 private:
  CampaignSpec spec_;
  ThinningSampler sampler_;
  util::Rng shape_rng_;
  Time cursor_ = Time::zero();
  std::uint64_t seq_ = 0;
};

/// Replays a campaign's blueprint stream against a live fabric: each
/// arrival builds a Chimera VDC for the blueprint, plans it with the
/// campaign's planner knobs, and launches through DAGMan with the
/// ordinary AppBase accounting (ACDC records, transfer entries).
class CampaignDriver : public apps::AppBase {
 public:
  CampaignDriver(core::Grid3& grid, CampaignSpec spec, std::uint64_t seed);
  ~CampaignDriver() override;

  void start();
  void stop();

  [[nodiscard]] std::uint64_t launched() const { return launched_; }
  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }

 private:
  void arm();
  void launch_blueprint(const WorkflowBlueprint& wf);

  CampaignSpec spec_;
  CampaignGenerator gen_;
  sim::EventId pending_ = 0;
  bool running_ = false;
  std::uint64_t launched_ = 0;
};

}  // namespace grid3::workload
