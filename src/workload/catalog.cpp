#include "workload/catalog.h"

#include <chrono>
#include <sstream>
#include <stdexcept>

#include "core/roster.h"
#include "util/calendar.h"

namespace grid3::workload {

apps::ScenarioOptions ScenarioSpec::options(bool quick) const {
  apps::ScenarioOptions o = base;
  if (quick) {
    o.months = quick_months;
    o.job_scale *= quick_job_scale;
  }
  return o;
}

std::string ScenarioSpec::serialize() const {
  std::ostringstream os;
  os << "scenario " << name << " v" << version << " seed=" << base.seed
     << " months=" << base.months << " job_scale=" << base.job_scale
     << " cpu_scale=" << base.cpu_scale << " replicas=" << base.roster_replicas
     << " standard_apps=" << (base.standard_apps ? 1 : 0)
     << " quick=" << quick_months << "x" << quick_job_scale << "\n";
  for (const CampaignSpec& c : campaigns) os << c.serialize() << "\n";
  for (const std::string& b : collective_bundles) os << "bundle " << b << "\n";
  os << calendar.serialize();
  return os.str();
}

namespace {

using util::Distribution;

/// The mid-fabric site pool calendars rotate maintenance across (a mix
/// of every VO's medium sites; the Tier-1s stay out so archives keep
/// accepting data).
const std::vector<std::string>& rotation_sites() {
  static const std::vector<std::string> kSites{
      "UC_ATLAS",  "BU_ATLAS", "IU_ATLAS", "UFL_PG",   "UCSD_PG",
      "CIT_PG",    "JHU_SDSS", "UWM_LIGO", "VU_BTEV",  "UWMAD_CS",
      "LBNL_PDSF", "USC_ISI",
  };
  return kSites;
}

CampaignSpec cms_dc04_campaign(std::vector<double> monthly) {
  CampaignSpec c;
  c.vo = "uscms";
  c.app = "dc04";
  c.required_app = core::app::kCmsMop;
  c.lfn_prefix = "/grid3/uscms/dc04";
  c.arrivals.monthly = std::move(monthly);
  c.arrivals.diurnal_amplitude = 0.35;
  c.arrivals.diurnal_peak_hour = 14.0;
  c.arrivals.bursts_per_month = 2.0;
  c.arrivals.burst_multiplier = 3.0;
  c.arrivals.burst_duration = Time::hours(8);
  c.shape.shape = DagShape::kAssignmentChain;
  c.shape.width_min = 10;
  c.shape.width_max = 25;
  c.shape.runtime_hours = Distribution::lognormal_mean_cv(6.0, 0.5);
  c.shape.output_gb = Distribution::lognormal_mean_cv(1.5, 0.6);
  c.archive_site = "FNAL_CMS";
  c.archive_fallbacks = {"CERN"};
  return c;
}

CampaignSpec atlas_dc2_campaign(std::vector<double> monthly) {
  CampaignSpec c;
  c.vo = "usatlas";
  c.app = "dc2-mc";
  c.required_app = core::app::kAtlasGce;
  c.lfn_prefix = "/grid3/usatlas/dc2";
  c.arrivals.monthly = std::move(monthly);
  c.arrivals.diurnal_amplitude = 0.25;
  c.arrivals.diurnal_peak_hour = 15.0;
  c.shape.shape = DagShape::kFlatProduction;
  c.shape.width_min = 15;
  c.shape.width_max = 40;
  c.shape.runtime_hours = Distribution::lognormal_mean_cv(4.0, 0.4);
  c.shape.output_gb = Distribution::lognormal_mean_cv(0.8, 0.5);
  c.archive_site = "BNL_ATLAS";
  return c;
}

CampaignSpec ivdgl_backfill_campaign(std::vector<double> monthly) {
  CampaignSpec c;
  c.vo = "ivdgl";
  c.app = "gadu-scan";
  c.required_app = core::app::kGadu;
  c.lfn_prefix = "/grid3/ivdgl/gadu";
  c.arrivals.monthly = std::move(monthly);
  c.arrivals.diurnal_amplitude = 0.5;
  c.arrivals.diurnal_peak_hour = 13.0;
  c.shape.shape = DagShape::kBackfill;
  c.shape.runtime_hours =
      Distribution::clamped(Distribution::exponential(0.7), 0.1, 4.0);
  c.shape.output_gb = Distribution::constant(0.05);
  c.shape.scratch_gb = 0.5;
  return c;
}

CampaignSpec sdss_coadd_campaign(std::vector<double> monthly) {
  CampaignSpec c;
  c.vo = "sdss";
  c.app = "coadd-batch";
  c.required_app = core::app::kSdssCoadd;
  c.lfn_prefix = "/grid3/sdss/coadd";
  c.arrivals.monthly = std::move(monthly);
  c.arrivals.diurnal_amplitude = 0.3;
  c.shape.shape = DagShape::kFlatProduction;
  c.shape.width_min = 5;
  c.shape.width_max = 10;
  c.shape.runtime_hours = Distribution::lognormal_mean_cv(2.0, 0.4);
  c.shape.output_gb = Distribution::constant(0.5);
  c.archive_site = "FNAL_SDSS";
  return c;
}

CampaignSpec ligo_scan_campaign(std::vector<double> monthly) {
  CampaignSpec c;
  c.vo = "ligo";
  c.app = "pulsar-scan";
  c.required_app = core::app::kLigoPulsar;
  c.lfn_prefix = "/grid3/ligo/scan";
  c.arrivals.monthly = std::move(monthly);
  c.arrivals.diurnal_amplitude = 0.2;
  c.shape.shape = DagShape::kFlatProduction;
  c.shape.width_min = 3;
  c.shape.width_max = 6;
  c.shape.runtime_hours = Distribution::lognormal_mean_cv(1.5, 0.3);
  c.shape.output_gb = Distribution::constant(0.2);
  c.archive_site = "LIGO_Hanford";
  return c;
}

ScenarioSpec base_spec(const std::string& name, std::uint64_t seed) {
  ScenarioSpec s;
  s.name = name;
  s.base.seed = seed;
  s.base.broker_policy = broker::PolicyKind::kQueueDepth;
  s.base.standard_apps = false;
  return s;
}

ScenarioSpec make_grid30_2month(std::uint64_t seed) {
  ScenarioSpec s = base_spec("grid30-2month", seed);
  s.summary = "the bench/grid30 campaign: historical app mix at 10x scale";
  s.stressor = "fabric scale (270 sites, ~29k CPUs)";
  s.base.standard_apps = true;
  s.base.months = 2;
  s.base.roster_replicas = 10;
  s.quick_months = 1;
  s.quick_job_scale = 0.05;
  return s;
}

ScenarioSpec make_table1_7month(std::uint64_t seed) {
  ScenarioSpec s = base_spec("table1-7month", seed);
  s.summary = "the full Table 1 reproduction: 7 months, historical app mix";
  s.stressor = "long-horizon accounting fidelity";
  s.base.standard_apps = true;
  s.base.months = 7;
  s.quick_months = 1;
  s.quick_job_scale = 0.05;
  return s;
}

ScenarioSpec make_sc2003_demo(std::uint64_t seed) {
  ScenarioSpec s = base_spec("sc2003-demo", seed);
  s.summary =
      "the two-month historical window covering the SC2003 demo burst";
  s.stressor = "gatekeeper overload under the conference push";
  s.base.standard_apps = true;
  s.base.months = 2;
  // Quick mode keeps both months (the demo burst the placement layer
  // must absorb is in the second) and thins the workload instead.
  s.quick_months = 2;
  s.quick_job_scale = 0.4;
  return s;
}

ScenarioSpec make_cms_dc04(std::uint64_t seed) {
  ScenarioSpec s = base_spec("cms-dc04", seed);
  s.summary = "CMS DC04-style assignment production with validate/merge";
  s.stressor = "wide fan-in chains + archive stage-out pressure";
  s.base.months = 3;
  s.quick_months = 1;
  s.quick_job_scale = 0.5;
  s.campaigns = {cms_dc04_campaign({40, 90, 140})};
  return s;
}

ScenarioSpec make_atlas_dc2(std::uint64_t seed) {
  ScenarioSpec s = base_spec("atlas-dc2", seed);
  s.summary = "ATLAS DC2-style flat Monte-Carlo batches";
  s.stressor = "bulk independent-job throughput";
  s.base.months = 3;
  s.quick_months = 1;
  s.quick_job_scale = 0.5;
  s.campaigns = {atlas_dc2_campaign({60, 120, 160})};
  return s;
}

ScenarioSpec make_mixed_opportunistic(std::uint64_t seed) {
  ScenarioSpec s = base_spec("mixed-opportunistic", seed);
  s.summary =
      "CMS chains + ATLAS batches + opportunistic iVDGL short-job backfill";
  s.stressor = "multi-VO contention and fair sharing";
  s.base.months = 2;
  s.quick_months = 1;
  s.quick_job_scale = 0.4;
  s.campaigns = {cms_dc04_campaign({50, 80}), atlas_dc2_campaign({70, 110}),
                 ivdgl_backfill_campaign({600, 900})};
  return s;
}

ScenarioSpec make_sc2003_burst(std::uint64_t seed) {
  ScenarioSpec s = base_spec("sc2003-burst", seed);
  s.summary = "conference-demo demand: heavy correlated burst windows";
  s.stressor = "correlated arrival bursts (SC2003-style pushes)";
  s.base.months = 2;
  s.quick_months = 2;  // the bursts are the point; keep both months
  s.quick_job_scale = 0.4;
  CampaignSpec atlas = atlas_dc2_campaign({50, 90});
  atlas.arrivals.bursts_per_month = 6.0;
  atlas.arrivals.burst_multiplier = 5.0;
  atlas.arrivals.burst_duration = Time::hours(12);
  atlas.arrivals.diurnal_amplitude = 0.4;
  CampaignSpec backfill = ivdgl_backfill_campaign({400, 600});
  backfill.arrivals.bursts_per_month = 6.0;
  backfill.arrivals.burst_multiplier = 5.0;
  backfill.arrivals.burst_duration = Time::hours(12);
  s.campaigns = {std::move(atlas), std::move(backfill)};
  return s;
}

ScenarioSpec make_outage_storm(std::uint64_t seed) {
  ScenarioSpec s = base_spec("outage-storm", seed);
  s.summary = "production under collective-service storms and WAN weather";
  s.stressor = "collective outages + WAN degradation";
  s.base.months = 2;
  s.quick_months = 1;
  s.quick_job_scale = 0.5;
  s.campaigns = {cms_dc04_campaign({60, 90}), atlas_dc2_campaign({80, 120})};
  s.collective_bundles = {"igoc-collective", "uscms-collective"};
  s.calendar.add_collective_storm("igoc-collective", Time::days(10),
                                  Time::days(7), Time::hours(4), 6);
  s.calendar.add_collective_storm("uscms-collective", Time::days(12),
                                  Time::days(10), Time::hours(6), 4);
  s.calendar.add_wan_weather(rotation_sites(), Time::days(2), Time::days(56),
                             Distribution::lognormal_mean_cv(5.0, 0.8), 24,
                             seed);
  return s;
}

ScenarioSpec make_maintenance_season(std::uint64_t seed) {
  ScenarioSpec s = base_spec("maintenance-season", seed);
  s.summary = "rolling scheduled site maintenance under steady production";
  s.stressor = "scheduled-downtime churn (INFN-GRID calendar idiom)";
  s.base.months = 3;
  s.quick_months = 1;
  s.quick_job_scale = 0.5;
  s.campaigns = {atlas_dc2_campaign({70, 100, 120}),
                 sdss_coadd_campaign({40, 60, 60})};
  s.calendar.add_site_rotation(rotation_sites(), Time::days(3),
                               Time::days(3) + Time::hours(12),
                               Time::hours(8), 24);
  s.calendar.add_wan_weather(rotation_sites(), Time::days(5), Time::days(84),
                             Distribution::lognormal_mean_cv(3.0, 0.6), 8,
                             seed);
  return s;
}

ScenarioSpec make_calib_month(std::uint64_t seed) {
  ScenarioSpec s = base_spec("calib-month", seed);
  s.summary = "small single-month LIGO + SDSS calibration batches";
  s.stressor = "light-load baseline (fast smoke anchor)";
  s.base.months = 1;
  s.quick_months = 1;
  s.quick_job_scale = 0.3;
  s.campaigns = {ligo_scan_campaign({80}), sdss_coadd_campaign({50})};
  return s;
}

}  // namespace

const std::vector<std::string>& ScenarioCatalog::names() {
  static const std::vector<std::string> kNames{
      "grid30-2month",  "table1-7month",       "sc2003-demo",
      "cms-dc04",       "atlas-dc2",           "mixed-opportunistic",
      "sc2003-burst",   "outage-storm",        "maintenance-season",
      "calib-month",
  };
  return kNames;
}

ScenarioSpec ScenarioCatalog::get(const std::string& name,
                                  std::uint64_t seed) {
  if (name == "grid30-2month") return make_grid30_2month(seed);
  if (name == "table1-7month") return make_table1_7month(seed);
  if (name == "sc2003-demo") return make_sc2003_demo(seed);
  if (name == "cms-dc04") return make_cms_dc04(seed);
  if (name == "atlas-dc2") return make_atlas_dc2(seed);
  if (name == "mixed-opportunistic") return make_mixed_opportunistic(seed);
  if (name == "sc2003-burst") return make_sc2003_burst(seed);
  if (name == "outage-storm") return make_outage_storm(seed);
  if (name == "maintenance-season") return make_maintenance_season(seed);
  if (name == "calib-month") return make_calib_month(seed);
  throw std::out_of_range("unknown catalog scenario: " + name);
}

StackConfig modern_stack() { return {}; }

StackConfig legacy_stack() {
  StackConfig s;
  s.name = "legacy";
  s.policy = broker::PolicyKind::kNone;
  s.incremental_rank = false;
  s.placement_leases = false;
  s.health_breakers = false;
  s.calendar_kernel = false;
  s.partial_reallocate = false;
  return s;
}

CatalogRun::CatalogRun(const ScenarioSpec& spec, bool quick,
                       const StackConfig& stack)
    : spec_{spec}, stack_{stack}, opts_{spec.options(quick)} {
  opts_.broker_policy = stack.policy;
  opts_.broker_incremental_rank = stack.incremental_rank;
  opts_.placement_leases = stack.placement_leases;
  opts_.network_partial_reallocate = stack.partial_reallocate;

  sim::QueueConfig qc;
  qc.calendar = stack.calendar_kernel;
  sim_ = std::make_unique<sim::Simulation>(qc);
  wall_start_ = std::chrono::steady_clock::now();
  scenario_ = std::make_unique<apps::Scenario>(*sim_, opts_);
  core::Grid3& grid = scenario_->grid();
  if (stack.health_breakers) grid.attach_health();

  // Arm collective bundles the calendar targets.  All-zero rates, so
  // arming adds no random outages -- only the scheduled windows fire.
  for (const std::string& bundle : spec_.collective_bundles) {
    if (bundle == "igoc-collective") {
      grid.arm_igoc_collective_failures({});
    } else if (const auto pos = bundle.rfind("-collective");
               pos != std::string::npos && pos > 0) {
      grid.arm_vo_collective_failures(bundle.substr(0, pos), {});
    }
  }

  // Campaign drivers, in spec order (each forks the grid RNG at
  // construction, so the order is part of the determinism contract).
  // Quick mode scales each campaign's arrival volume with the fabric's
  // job_scale and clips its schedule to the run horizon.
  for (const CampaignSpec& c : spec_.campaigns) {
    CampaignSpec scaled = c;
    scaled.arrivals.scale *= opts_.job_scale;
    if (scaled.arrivals.months() > opts_.months) {
      scaled.arrivals.monthly.resize(
          static_cast<std::size_t>(opts_.months));
    }
    auto driver = std::make_unique<CampaignDriver>(
        grid, std::move(scaled), opts_.seed ^ fnv1a64(c.vo + "/" + c.app));
    for (const core::VoUsers& vu : scenario_->assembled().users) {
      if (vu.vo == c.vo) {
        driver->set_users(vu.app_admins, vu.users);
        break;
      }
    }
    drivers_.push_back(std::move(driver));
  }

  spec_.calendar.compile(grid);
}

CatalogRun::~CatalogRun() = default;

void CatalogRun::start() {
  if (started_) return;
  started_ = true;
  scenario_->start();
  for (auto& d : drivers_) d->start();
}

void CatalogRun::run_until(Time t) {
  start();
  sim_->run_until(t);
}

void CatalogRun::run() { run_until(util::month_start(opts_.months)); }

RunResult CatalogRun::finish() const {
  RunResult out;
  out.scenario = spec_.name;
  out.stack = stack_.name;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start_)
          .count();
  out.events = sim_->executed();
  core::Grid3& grid = scenario_->grid();
  const auto& db = grid.igoc().job_db();
  out.jobs = db.size();
  for (const monitoring::JobRecord& r : db.records()) {
    if (r.success) {
      ++out.completed;
    } else {
      ++out.failed;
    }
  }
  for (const auto& d : drivers_) out.workflows += d->launched();
  out.downtimes =
      grid.failures().incidents(core::Incident::kScheduledDowntime);
  out.wan_events = grid.failures().incidents(core::Incident::kWanWeather);
  for (const std::string& vo : core::canonical_vos()) {
    if (const broker::ResourceBroker* b = grid.broker(vo)) {
      out.match_log += "== " + vo + " ==\n" + b->serialize_match_log();
    }
  }

  const std::uint64_t h = fnv1a64(out.match_log);
  std::ostringstream tail;
  tail << "jobs=" << out.jobs << "|ok=" << out.completed
       << "|failed=" << out.failed << "|wf=" << out.workflows
       << "|downtime=" << out.downtimes << "|wan=" << out.wan_events;
  out.digest = digest_hex(fnv1a64(tail.str(), h));
  return out;
}

RunResult run_scenario(const ScenarioSpec& spec, bool quick,
                       const StackConfig& stack) {
  CatalogRun run{spec, quick, stack};
  run.run();
  return run.finish();
}

}  // namespace grid3::workload
