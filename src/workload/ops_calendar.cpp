#include "workload/ops_calendar.h"

#include <algorithm>
#include <sstream>

#include "util/rng.h"

namespace grid3::workload {

const char* to_string(CalendarEvent::Kind k) {
  switch (k) {
    case CalendarEvent::Kind::kSiteMaintenance: return "site-maintenance";
    case CalendarEvent::Kind::kCollectiveMaintenance:
      return "collective-maintenance";
    case CalendarEvent::Kind::kWanWeather: return "wan-weather";
  }
  return "?";
}

void OpsCalendar::add(CalendarEvent e) { events_.push_back(std::move(e)); }

void OpsCalendar::add_site_rotation(const std::vector<std::string>& sites,
                                    Time first, Time every, Time duration,
                                    std::size_t windows) {
  if (sites.empty()) return;
  for (std::size_t i = 0; i < windows; ++i) {
    add({CalendarEvent::Kind::kSiteMaintenance, sites[i % sites.size()],
         first + every * static_cast<double>(i), duration});
  }
}

void OpsCalendar::add_collective_storm(const std::string& bundle, Time first,
                                       Time every, Time duration,
                                       std::size_t windows) {
  for (std::size_t i = 0; i < windows; ++i) {
    add({CalendarEvent::Kind::kCollectiveMaintenance, bundle,
         first + every * static_cast<double>(i), duration});
  }
}

void OpsCalendar::add_wan_weather(const std::vector<std::string>& sites,
                                  Time from, Time to,
                                  const util::Distribution& duration_hours,
                                  std::size_t events, std::uint64_t seed) {
  if (sites.empty() || to <= from) return;
  util::Rng rng{seed ^ 0x3a17c0ffeeULL};
  for (std::size_t i = 0; i < events; ++i) {
    const Time start = from + (to - from) * rng.uniform(0.0, 1.0);
    const std::string& site = sites[rng.index(sites.size())];
    add({CalendarEvent::Kind::kWanWeather, site, start,
         Time::hours(duration_hours.sample(rng))});
  }
}

std::vector<CalendarEvent> OpsCalendar::sorted() const {
  std::vector<CalendarEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const CalendarEvent& a, const CalendarEvent& b) {
                     if (a.start != b.start) return a.start < b.start;
                     if (a.target != b.target) return a.target < b.target;
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return out;
}

void OpsCalendar::compile(core::Grid3& grid) const {
  for (const CalendarEvent& e : sorted()) {
    grid.failures().schedule_downtime(
        {e.target, e.start, e.duration,
         /*wan=*/e.kind == CalendarEvent::Kind::kWanWeather});
  }
}

std::string OpsCalendar::serialize() const {
  std::ostringstream os;
  for (const CalendarEvent& e : sorted()) {
    os << to_string(e.kind) << " target=" << e.target
       << " start_us=" << e.start.ticks()
       << " duration_us=" << e.duration.ticks() << "\n";
  }
  return os.str();
}

}  // namespace grid3::workload
