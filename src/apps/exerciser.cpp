#include "apps/exerciser.h"

#include "util/calendar.h"

namespace grid3::apps {

CondorExerciser::CondorExerciser(core::Grid3& grid, Options opts)
    : AppBase{grid, "ivdgl", core::app::kExerciser, "exerciser"},
      opts_{std::move(opts)},
      // Probes average 0.13 h overall; December 2003's rapid-fire
      // campaign ran ~1-minute probes (Table 1: 72224 jobs yet only
      // 51.78 CPU-days that month).  A rare tail reaches the 36.45 h
      // maximum (wedged batch systems held probes for hours).
      runtime_{util::Distribution::clamped(
          util::Distribution::mixture(
              {util::Distribution::lognormal_mean_cv(0.155, 1.0),
               util::Distribution::lognormal_mean_cv(6.0, 1.0)},
              {0.995, 0.005}),
          0.02, 36.4)},
      december_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(0.016, 0.6), 0.005, 0.2)} {
  if (opts_.sites.empty()) {
    opts_.sites = core::application_sites(core::app::kExerciser,
                                          core::grid3_roster());
  }
}

void CondorExerciser::start() {
  if (launcher_) return;
  LaunchSchedule schedule;
  schedule.monthly = {6000, 20000, 72224, 30000, 26000, 26000, 18000};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months), 18000.0);
  schedule.scale = opts_.job_scale * 1.17;  // completed-count compensation
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { probe_next_site(); }, rng().fork());
  launcher_->start();
}

void CondorExerciser::stop() {
  if (launcher_) launcher_->stop();
}

void CondorExerciser::probe_next_site() {
  if (opts_.sites.empty()) return;
  // The probe frequency was far from uniform in practice (Table 1: one
  // site took 53.4% of exerciser jobs in the peak month and only 7 of
  // the 14 configured sites produced during it): each month's campaign
  // rotates over a 7-site window with a steep geometric weight decay.
  const int month = util::month_index_at(sim().now());
  const std::size_t window = std::min<std::size_t>(7, opts_.sites.size());
  std::vector<double> weights(window);
  double w = 1.0;
  for (std::size_t i = window; i-- > 0;) {
    weights[i] = w;
    w *= 2.1;  // top site carries ~53% of probe volume
  }
  const std::size_t base =
      (static_cast<std::size_t>(std::max(month, 0)) * 3) %
      opts_.sites.size();
  const std::size_t pick =
      (base + rng().weighted_index(weights)) % opts_.sites.size();
  const std::string site = opts_.sites[pick];
  ++next_site_;
  gram::Gatekeeper* gk = grid().gatekeeper(site);
  if (gk == nullptr) return;

  const vo::Certificate& submitter = pick_submitter();
  auto proxy = grid().make_proxy(submitter, vo(), Time::hours(12));
  if (!proxy.has_value()) return;
  ++probes_;

  gram::GramJob job;
  job.proxy = *proxy;
  job.request.vo = vo();
  job.request.user_dn = submitter.subject_dn;
  const bool december = month == 2;  // the 12-2003 rapid-fire campaign
  const Time runtime = Time::hours(
      (december ? december_runtime_ : runtime_).sample(rng()));
  job.request.actual_runtime = runtime;
  job.request.requested_walltime = runtime + Time::hours(1);
  job.request.priority = -1;  // backfill: never competes with production
  job.scratch = Bytes::mb(10);

  const std::string user_dn = submitter.subject_dn;
  grid().condor_g().submit_to(
      *gk, std::move(job),
      [this, user_dn, site](const gram::GramResult& res) {
        monitoring::JobRecord rec;
        rec.vo = "exerciser";
        rec.user_dn = user_dn;
        rec.site = site;
        rec.app = core::app::kExerciser;
        rec.submitted = res.submitted;
        rec.started = res.ok() ? res.outcome.started : res.submitted;
        rec.finished = res.finished;
        rec.success = res.ok();
        rec.site_problem = gram::is_site_problem(res.status);
        if (!res.ok()) rec.failure = gram::to_string(res.status);
        rec.submit_id = "exerciser/probe/" + std::to_string(probes_);
        rec.gram_contact = res.gram_contact;
        grid().igoc().job_db().insert(std::move(rec));
      });
}

}  // namespace grid3::apps
