#include "apps/btev.h"

#include "workflow/vdc.h"

namespace grid3::apps {

BtevSim::BtevSim(core::Grid3& grid, Options opts)
    : AppBase{grid, "btev", core::app::kBtevSim},
      opts_{opts},
      runtime_{util::Distribution::clamped(
          util::Distribution::mixture(
              {util::Distribution::lognormal_mean_cv(1.45, 1.5),
               util::Distribution::lognormal_mean_cv(30.0, 1.0)},
              {0.99, 0.01}),
          0.05, 118.3)} {}

void BtevSim::start() {
  if (launcher_) return;
  LaunchSchedule schedule;
  schedule.monthly = {50, 2377, 80, 40, 25, 15, 10};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months), 10.0);
  schedule.scale = opts_.job_scale * 1.08;  // completed-count compensation
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { launch_job(); }, rng().fork());
  launcher_->start();
}

void BtevSim::stop() {
  if (launcher_) launcher_->stop();
}

bool BtevSim::launch_job() {
  return submit_generation(Time::hours(runtime_.sample(rng())));
}

bool BtevSim::run_challenge(int jobs, double hours) {
  bool ok = true;
  for (int i = 0; i < jobs; ++i) {
    ok = submit_generation(Time::hours(hours)) && ok;
  }
  return ok;
}

bool BtevSim::submit_generation(Time runtime) {
  const std::uint64_t id = ++seq_;
  const std::string out = "btev/mcgen/" + std::to_string(id);

  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"btevgen", "mcfast", core::app::kBtevSim});
  vdc.add_derivation({.id = "btev-" + std::to_string(id),
                      .transformation = "btevgen",
                      .inputs = {},
                      .outputs = {out},
                      .runtime = runtime,
                      .output_size = Bytes::mb(300),
                      .scratch = Bytes::gb(1.0)});
  auto dag = vdc.request({out});
  if (!dag.has_value()) return false;

  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.walltime_slack = 1.4;
  cfg.site_preference = {{"VU_BTEV", 12.0}};
  const bool ok = launch(*dag, cfg, [this, runtime](
                                        const workflow::DagRunStats& s) {
    if (s.success) {
      events_ += runtime.to_seconds() * opts_.events_per_second;
    }
  });
  return ok;
}

}  // namespace grid3::apps
