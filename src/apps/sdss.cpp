#include "apps/sdss.h"

#include "util/calendar.h"
#include "workflow/vdc.h"

namespace grid3::apps {

SdssCoadd::SdssCoadd(core::Grid3& grid, Options opts)
    : AppBase{grid, "sdss", core::app::kSdssCoadd},
      opts_{opts},
      // ~1.46 h mean with a 1% long tail toward the 152.9 h maximum.
      step_runtime_{util::Distribution::clamped(
          util::Distribution::mixture(
              {util::Distribution::lognormal_mean_cv(1.1, 1.2),
               util::Distribution::lognormal_mean_cv(35.0, 1.0)},
              {0.99, 0.01}),
          0.05, 152.0)} {}

void SdssCoadd::register_survey_segments(int count) {
  auto* catalog = grid().rls(vo());
  for (int i = 0; i < count; ++i) {
    const std::string lfn = "sdss/dr2/segment-" + std::to_string(segments_++);
    catalog->register_replica(
        opts_.archive_site, lfn,
        {"gsiftp://" + opts_.archive_site + "/" + lfn, Bytes::mb(500),
         sim().now()},
        sim().now());
  }
}

void SdssCoadd::start() {
  if (launcher_) return;
  const double per_wf =
      static_cast<double>(opts_.chains * opts_.steps_per_chain);
  // Jobs per month / jobs per workflow; SDSS peaked in February 2004.
  LaunchSchedule schedule;
  schedule.monthly = {200 / per_wf, 800 / per_wf,  600 / per_wf,
                      700 / per_wf, 1564 / per_wf, 900 / per_wf,
                      650 / per_wf};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months),
                          650 / per_wf);
  schedule.scale = opts_.job_scale * 1.07;  // completed-count compensation
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { launch_workflow(); }, rng().fork());
  launcher_->start();
}

void SdssCoadd::stop() {
  if (launcher_) launcher_->stop();
}

bool SdssCoadd::launch_workflow() {
  const std::uint64_t id = ++seq_;
  if (segments_ == 0) register_survey_segments(4);
  const std::string seg =
      "sdss/dr2/segment-" +
      std::to_string(rng().uniform_int(0, segments_ - 1));

  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"brg-search", "1.2", core::app::kSdssCoadd});
  std::vector<std::string> targets;
  for (int c = 0; c < opts_.chains; ++c) {
    std::string prev = seg;  // chain head stages the survey segment
    for (int s = 0; s < opts_.steps_per_chain; ++s) {
      const std::string out = "sdss/run-" + std::to_string(id) + "/c" +
                              std::to_string(c) + "-s" + std::to_string(s);
      vdc.add_derivation(
          {.id = "sdss-" + std::to_string(id) + "-" + std::to_string(c) +
                 "-" + std::to_string(s),
           .transformation = "brg-search",
           .inputs = {prev},
           .outputs = {out},
           .runtime = Time::hours(step_runtime_.sample(rng())),
           .output_size = Bytes::mb(100),
           .scratch = Bytes::gb(1.0)});
      prev = out;
    }
    targets.push_back(prev);
  }
  auto dag = vdc.request(targets);
  if (!dag.has_value()) return false;

  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.archive_site = opts_.archive_site;
  cfg.walltime_slack = 1.5;
  cfg.locality = 0.9;  // chains stay put; cutout data is heavy to move
  // Monthly production campaign: each month targets a rotating set of
  // ~4 resources (Table 1: only 4 sites produced in SDSS's peak month),
  // with the Fermilab archive cluster always dominant.
  cfg.site_preference = {{"FNAL_SDSS", 60.0}, {"JHU_SDSS", 12.0}};
  const auto campaign_sites =
      core::application_sites(core::app::kSdssCoadd, core::grid3_roster());
  const int month = std::max(0, util::month_index_at(sim().now()));
  for (int k = 0; k < 2; ++k) {
    const auto idx = static_cast<std::size_t>(month * 2 + k) %
                     campaign_sites.size();
    cfg.site_preference.emplace(campaign_sites[idx], 8.0);
  }
  return launch(*dag, cfg);
}

}  // namespace grid3::apps
