// LIGO blind pulsar search (paper section 4.4): an all-sky search for
// continuous-wave signals in the S2 data set.  Each search job stages a
// short-Fourier-transform band file (~4 GB) plus ephemeris data from the
// LIGO facility via GridFTP, runs several hours, stages results back and
// updates catalog entries.
//
// Accounting note: the ACDC Table 1 row for LIGO shows only 3 tiny jobs
// (the bulk of S2 analysis ran outside Grid3 accounting), so the
// production schedule reproduces exactly that; the full search workflow
// remains available through run_search() and is exercised by the
// examples and benches.
#pragma once

#include <memory>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct LigoOptions {
  double job_scale = 1.0;
  std::string data_host = "LIGO_Hanford";  ///< SFT archive endpoint
  std::string run_site = "UWM_LIGO";
  int months = 7;
};


class LigoPulsar : public AppBase {
 public:
  using Options = LigoOptions;

  LigoPulsar(core::Grid3& grid, Options opts = {});

  /// The ACDC-visible production: three sub-minute registration-test
  /// jobs in December 2003 (Table 1's LIGO column).
  void start();
  void stop();

  /// Launch `bands` real search workflows: stage SFT band + ephemeris,
  /// search, stage results back to the LIGO facility.
  bool run_search(int bands);

  /// Publish SFT band replicas at the LIGO facility.
  void register_sft_bands(int count);

 private:
  bool launch_band(int band);
  bool launch_registration_test();

  Options opts_;
  bool started_ = false;
  std::uint64_t seq_ = 0;
  int bands_available_ = 0;
  util::Distribution search_runtime_;
};

}  // namespace grid3::apps
