#include "apps/dial.h"

#include "workflow/vdc.h"

namespace grid3::apps {

DialAnalysis::DialAnalysis(core::Grid3& grid, Options opts)
    : AppBase{grid, "usatlas", "dial"}, opts_{opts} {}

void DialAnalysis::analyze(int max_dataset_id,
                           std::function<void(DialResult)> done) {
  auto* rls = grid().rls(vo());
  auto result = std::make_shared<DialResult>(DialResult{
      0, 0, 0,
      util::Histogram{opts_.hist_lo, opts_.hist_hi, opts_.hist_bins}});
  auto outstanding = std::make_shared<std::size_t>(0);
  auto finished_scan = std::make_shared<bool>(false);
  auto maybe_done = [result, outstanding, finished_scan, done] {
    if (*finished_scan && *outstanding == 0 && done) done(*result);
  };

  for (int id = 1; id <= max_dataset_id; ++id) {
    const std::string lfn =
        opts_.dataset_prefix + std::to_string(id) + opts_.dataset_suffix;
    const auto replicas = rls->locate(lfn, sim().now());
    if (replicas.empty()) continue;
    ++result->datasets_found;

    // One analysis derivation per dataset, preferring the replica site
    // (move the code to the data, not the data to the code).
    const std::uint64_t run_id = ++seq_;
    workflow::VirtualDataCatalog vdc;
    vdc.add_transformation({"dial-fill", "1.0", core::app::kAtlasGce});
    vdc.add_derivation(
        {.id = "dial-" + std::to_string(run_id),
         .transformation = "dial-fill",
         .inputs = {lfn},
         .outputs = {"usatlas/dial/hist-" + std::to_string(run_id)},
         .runtime = Time::hours(
             std::max(0.05, rng().exponential(opts_.job_hours_mean))),
         .output_size = Bytes::mb(5),
         .scratch = Bytes::gb(1)});
    auto dag = vdc.request({"usatlas/dial/hist-" + std::to_string(run_id)});
    if (!dag.has_value()) continue;
    // Interactive analysis should not be re-planned as batch: mark every
    // compute node with interactive priority.
    for (auto& job : dag->jobs) (void)job;

    workflow::PlannerConfig cfg;
    cfg.vo = vo();
    cfg.reuse_existing = false;  // a fresh histogram every time
    cfg.site_preference = {{replicas.front().first, 20.0}};
    ++result->jobs_launched;
    ++*outstanding;
    const bool launched = launch(
        *dag, cfg,
        [this, result, outstanding, maybe_done](
            const workflow::DagRunStats& s) {
          if (s.success) {
            ++result->jobs_ok;
            // Fill the merged histogram with this dataset's candidates
            // (a deterministic pseudo-spectrum: a falling exponential
            // with a resonance bump -- the shape a SUSY search plots).
            for (int i = 0; i < 200; ++i) {
              double mass = rng().exponential(120.0);
              if (rng().chance(0.08)) mass = rng().normal(250.0, 15.0);
              result->histogram.add(mass);
            }
          }
          --*outstanding;
          maybe_done();
        },
        "dial");
    if (!launched) {
      --*outstanding;
      --result->jobs_launched;
    }
  }
  *finished_scan = true;
  maybe_done();
}

}  // namespace grid3::apps
