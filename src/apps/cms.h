// U.S. CMS MOP production (paper sections 4.2, 6.2): MCRunJob reads
// production parameters from a control database and MOP writes DAGs for
// Condor-G.  Jobs are long -- CMSIM (Geant3, statically linked FORTRAN)
// and especially OSCAR (Geant4, dynamically linked C++), some beyond 30
// hours -- so not every site's queue limits can accommodate them.
// Output is archived through the FNAL Tier1 storage element.
#pragma once

#include <memory>
#include <string>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct CmsOptions {
  double job_scale = 1.0;
  std::string archive_site = "FNAL_CMS";
  int months = 7;
  /// Fraction of post-SC2003 simulation jobs that run OSCAR (long);
  /// before December 2003 production is nearly all CMSIM.
  double oscar_fraction = 0.85;
};


class CmsMop : public AppBase {
 public:
  using Options = CmsOptions;

  CmsMop(core::Grid3& grid, Options opts = {});

  /// Production launcher calibrated to the Table 1 USCMS column
  /// (19354 jobs, peak 8834 in 11-2003, mean runtime ~42 h).
  void start();
  void stop();

  /// One MOP assignment: simulation (CMSIM or OSCAR) + digitization with
  /// pile-up staged from the Tier1.
  bool launch_workflow();

  /// Register the minimum-bias pile-up dataset replica the digitization
  /// step stages in; called once at setup.
  void register_pileup_dataset();

 private:
  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  std::uint64_t seq_ = 0;
  util::Distribution cmsim_runtime_;
  util::Distribution oscar_runtime_;
  util::Distribution digi_runtime_;
};

}  // namespace grid3::apps
