#include "apps/cms.h"

#include "util/calendar.h"
#include "workflow/vdc.h"

namespace grid3::apps {

namespace {
constexpr const char* kPileupLfn = "uscms/minbias/pileup-2e33";
}

CmsMop::CmsMop(core::Grid3& grid, Options opts)
    : AppBase{grid, "uscms", core::app::kCmsMop},
      opts_{opts},
      // Table 1 seasonality: the SC2003-era sample was CMSIM (Geant3,
      // short -- Nov avg ~5 h/job); official OSCAR production (Geant4,
      // mean ~85 h with a 1238 h tail) ramped after SC2003.
      cmsim_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(6.0, 0.8), 0.5, 100.0)},
      oscar_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(108.0, 0.9), 5.0, 1235.0)},
      digi_runtime_{util::Distribution::constant(0.0)} {}

void CmsMop::register_pileup_dataset() {
  grid().rls(vo())->register_replica(
      opts_.archive_site, kPileupLfn,
      {"gsiftp://" + opts_.archive_site + "/" + kPileupLfn, Bytes::gb(1.5),
       sim().now()},
      sim().now());
}

void CmsMop::start() {
  if (launcher_) return;
  // Workflows = jobs / 2 (simulation + digitization nodes).
  LaunchSchedule schedule;
  schedule.monthly = {600, 3900, 1800, 950, 800, 750, 580};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months), 550.0);
  // Table 1 counts *completed* jobs; compensate for the ~23% loss to
  // failures and walltime kills so completed counts land on the paper's.
  schedule.scale = opts_.job_scale * 1.30;
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { launch_workflow(); }, rng().fork());
  launcher_->start();
}

void CmsMop::stop() {
  if (launcher_) launcher_->stop();
}

bool CmsMop::launch_workflow() {
  const std::uint64_t id = ++seq_;
  const std::string tag = "uscms/dc04/" + std::to_string(id);
  // OSCAR ramps in December 2003 (post-SC2003), per section 6.2.
  const bool post_sc2003 = util::month_index_at(sim().now()) >= 2;
  const bool oscar =
      rng().chance(post_sc2003 ? opts_.oscar_fraction : 0.02);

  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({oscar ? "oscar" : "cmsim",
                          oscar ? "2.4.5" : "133", core::app::kCmsMop});
  vdc.add_transformation({"orca-digi", "7.6.1", core::app::kCmsMop});
  const double sim_hours = oscar ? oscar_runtime_.sample(rng())
                                 : cmsim_runtime_.sample(rng());
  vdc.add_derivation({.id = "sim-" + std::to_string(id),
                      .transformation = oscar ? "oscar" : "cmsim",
                      .inputs = {},
                      .outputs = {tag + ".fz"},
                      .runtime = Time::hours(sim_hours),
                      .output_size = Bytes::gb(1.5),
                      .scratch = Bytes::gb(3.0)});
  // Digitization folds in the minimum-bias pile-up sample staged from
  // the Tier1 SE (an external RLS-resolved input).
  // Digitization cost tracks the simulated sample's size (~50-90% of
  // the simulation step).
  vdc.add_derivation({.id = "digi-" + std::to_string(id),
                      .transformation = "orca-digi",
                      .inputs = {tag + ".fz", kPileupLfn},
                      .outputs = {tag + ".digi"},
                      .runtime = Time::hours(sim_hours *
                                             rng().uniform(0.6, 1.0)),
                      .output_size = Bytes::gb(1.0),
                      .scratch = Bytes::gb(3.0)});
  auto dag = vdc.request({tag + ".digi"});
  if (!dag.has_value()) return false;

  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.archive_site = opts_.archive_site;
  cfg.archive_all = false;  // only the digitized sample goes to tape
  cfg.walltime_slack = 1.3;
  cfg.site_preference = {{"FNAL_CMS", 14.0}, {"UFL_PG", 2.2},
                         {"CIT_PG", 1.6}};
  return launch(*dag, cfg);
}

}  // namespace grid3::apps
