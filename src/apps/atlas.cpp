#include "apps/atlas.h"

#include "util/calendar.h"
#include "workflow/vdc.h"

namespace grid3::apps {

AtlasGce::AtlasGce(core::Grid3& grid, Options opts)
    : AppBase{grid, "usatlas", core::app::kAtlasGce},
      opts_{opts},
      // Two-step mix averaging ~8.8 h/job (Table 1), max clamped near the
      // observed 292 h tail.
      // Nov-2003 jobs averaged ~5.2 h (Table 1 peak-month CPU); later
      // DC2-preparation samples ran longer, lifting the overall average
      // to 8.81 h with a 292 h tail.
      sim_runtime_{util::Distribution::clamped(
          util::Distribution::mixture(
              {util::Distribution::lognormal_mean_cv(7.0, 0.9),
               util::Distribution::lognormal_mean_cv(100.0, 0.8)},
              {0.99, 0.01}),
          1.0, 292.0)},
      reco_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(3.5, 0.8), 0.5, 120.0)},
      late_sim_runtime_{util::Distribution::clamped(
          util::Distribution::mixture(
              {util::Distribution::lognormal_mean_cv(14.0, 0.9),
               util::Distribution::lognormal_mean_cv(130.0, 0.7)},
              {0.98, 0.02}),
          1.0, 292.0)},
      late_reco_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(7.0, 0.8), 0.5, 120.0)} {}

void AtlasGce::start() {
  if (launcher_) return;
  // Workflows = jobs / 2 (two compute nodes each).
  LaunchSchedule schedule;
  schedule.monthly = {175, 1599, 550, 400, 350, 350, 300};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months), 300.0);
  // Compensation so *completed* jobs land on Table 1 (ACDC counts
  // completions; ~12% of attempts fail).
  schedule.scale = opts_.job_scale * 1.13;
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { launch_workflow(); }, rng().fork());
  launcher_->start();
}

void AtlasGce::stop() {
  if (launcher_) launcher_->stop();
}

bool AtlasGce::launch_workflow() {
  const std::uint64_t id = ++seq_;
  const std::string tag = "usatlas/dc2/" + std::to_string(id);

  // Chimera virtual data catalog for this request: simulation produces
  // the hits dataset, reconstruction derives ESD from it.
  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation(
      {"atlsim", "7.0.3", core::app::kAtlasGce});
  vdc.add_transformation(
      {"atlrec", "7.0.3", core::app::kAtlasGce});
  const bool late = util::month_index_at(sim().now()) >= 2;
  auto& sim_rt = late ? late_sim_runtime_ : sim_runtime_;
  auto& rec_rt = late ? late_reco_runtime_ : reco_runtime_;
  vdc.add_derivation({.id = "sim-" + std::to_string(id),
                      .transformation = "atlsim",
                      .inputs = {},
                      .outputs = {tag + ".hits"},
                      .runtime = Time::hours(sim_rt.sample(rng())),
                      .output_size = Bytes::gb(2.0),
                      .scratch = Bytes::gb(4.0)});
  vdc.add_derivation({.id = "rec-" + std::to_string(id),
                      .transformation = "atlrec",
                      .inputs = {tag + ".hits"},
                      .outputs = {tag + ".esd"},
                      .runtime = Time::hours(rec_rt.sample(rng())),
                      .output_size = Bytes::gb(0.5),
                      .scratch = Bytes::gb(2.0)});
  auto dag = vdc.request({tag + ".esd"});
  if (!dag.has_value()) return false;

  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.archive_site = opts_.archive_site;
  cfg.archive_all = true;  // every ATLAS dataset archived at the Tier1
  cfg.walltime_slack = 1.4;
  cfg.site_preference = {{"BNL_ATLAS", 4.5}, {"UC_ATLAS", 1.8}};
  return launch(*dag, cfg);
}

}  // namespace grid3::apps
