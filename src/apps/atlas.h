// U.S. ATLAS GCE: Geant-based simulation followed by reconstruction
// (paper sections 4.1, 6.1).  Workflows are two-step Chimera derivation
// chains planned by Pegasus; every dataset is archived at the BNL Tier1
// and registered in RLS, then available to DIAL-style analysis.
#pragma once

#include <memory>
#include <string>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct AtlasOptions {
  double job_scale = 1.0;
  std::string archive_site = "BNL_ATLAS";
  int months = 7;
};


class AtlasGce : public AppBase {
 public:
  using Options = AtlasOptions;

  AtlasGce(core::Grid3& grid, Options opts = {});

  /// Start the production launcher (monthly profile calibrated to the
  /// Table 1 USATLAS column: 7455 jobs, peak 3198 in 11-2003).
  void start();
  void stop();

  /// Launch a single simulation+reconstruction workflow now.  Returns
  /// false when planning failed (no eligible site).
  bool launch_workflow();

  [[nodiscard]] std::uint64_t launched() const {
    return launcher_ ? launcher_->launches() : 0;
  }

 private:
  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  std::uint64_t seq_ = 0;
  util::Distribution sim_runtime_;
  util::Distribution reco_runtime_;
  util::Distribution late_sim_runtime_;
  util::Distribution late_reco_runtime_;
};

}  // namespace grid3::apps
