#include "apps/scenario.h"

#include "util/calendar.h"

namespace grid3::apps {

Window sc2003_window() {
  const Time from = util::time_of({2003, 10, 25});
  return {from, from + Time::days(30)};
}

Window table1_window() {
  return {util::time_of({2003, 10, 23}), util::time_of({2004, 4, 23})};
}

Window cms150_window() {
  const Time from = util::time_of({2003, 11, 1});
  return {from, from + Time::days(150)};
}

namespace {

/// Users registered for a VO during assembly.
const core::VoUsers* users_for(const core::Assembled& assembled,
                               const std::string& vo) {
  for (const auto& vu : assembled.users) {
    if (vu.vo == vo) return &vu;
  }
  return nullptr;
}

template <typename App>
void wire_users(App& app, const core::Assembled& assembled,
                const std::string& vo) {
  if (const core::VoUsers* vu = users_for(assembled, vo)) {
    app.set_users(vu->app_admins, vu->users);
  }
}

}  // namespace

Scenario::Scenario(sim::Simulation& sim, ScenarioOptions opts)
    : sim_{sim}, opts_{opts} {
  grid_ = std::make_unique<core::Grid3>(sim, opts.seed);
  grid_->network().set_partial_reallocate(opts.network_partial_reallocate);
  core::AssembleOptions ao;
  ao.cpu_scale = opts.cpu_scale;
  ao.roster_replicas = opts.roster_replicas;
  assembled_ = core::assemble_grid3(*grid_, ao);

  // Brokers must exist before the apps: each AppBase binds its planner
  // to its VO's broker at construction.
  if (opts.broker_policy != broker::PolicyKind::kNone) {
    broker::BrokerConfig bcfg;
    bcfg.placement_leases = opts.placement_leases;
    bcfg.incremental_rank = opts.broker_incremental_rank;
    for (const std::string& vo : core::canonical_vos()) {
      grid_->attach_broker(vo, opts.broker_policy, bcfg);
    }
  }

  // Bare-fabric mode: a workload-generator scenario drives its own
  // campaigns; skip the historical demonstrators entirely (their RNG
  // forks included, so campaign streams do not depend on them).
  if (!opts.standard_apps) return;

  AtlasGce::Options atlas_opts;
  atlas_opts.job_scale = opts.job_scale;
  atlas_opts.months = opts.months;
  atlas_ = std::make_unique<AtlasGce>(*grid_, atlas_opts);
  wire_users(*atlas_, assembled_, "usatlas");

  CmsMop::Options cms_opts;
  cms_opts.job_scale = opts.job_scale;
  cms_opts.months = opts.months;
  cms_ = std::make_unique<CmsMop>(*grid_, cms_opts);
  wire_users(*cms_, assembled_, "uscms");
  cms_->register_pileup_dataset();

  SdssCoadd::Options sdss_opts;
  sdss_opts.job_scale = opts.job_scale;
  sdss_opts.months = opts.months;
  sdss_ = std::make_unique<SdssCoadd>(*grid_, sdss_opts);
  wire_users(*sdss_, assembled_, "sdss");
  sdss_->register_survey_segments(8);

  LigoPulsar::Options ligo_opts;
  ligo_opts.job_scale = opts.job_scale;
  ligo_opts.months = opts.months;
  ligo_ = std::make_unique<LigoPulsar>(*grid_, ligo_opts);
  wire_users(*ligo_, assembled_, "ligo");

  BtevSim::Options btev_opts;
  btev_opts.job_scale = opts.job_scale;
  btev_opts.months = opts.months;
  btev_ = std::make_unique<BtevSim>(*grid_, btev_opts);
  wire_users(*btev_, assembled_, "btev");

  IvdglApps::Options ivdgl_opts;
  ivdgl_opts.job_scale = opts.job_scale;
  ivdgl_opts.months = opts.months;
  ivdgl_ = std::make_unique<IvdglApps>(*grid_, ivdgl_opts);

  CondorExerciser::Options ex_opts;
  ex_opts.job_scale = opts.job_scale;
  ex_opts.months = opts.months;
  exerciser_ = std::make_unique<CondorExerciser>(*grid_, ex_opts);

  // Table 1 user split inside the iVDGL VO: 24 members ran SnB/GADU, a
  // separate 3-identity Condor-group pool ran the exerciser; the rest
  // are authorized but idle.
  if (const core::VoUsers* iv = users_for(assembled_, "ivdgl")) {
    std::vector<vo::Certificate> snb_users{
        iv->users.begin(),
        iv->users.begin() +
            std::min<std::size_t>(22, iv->users.size())};
    ivdgl_->set_users(iv->app_admins, snb_users);
    std::vector<vo::Certificate> probe_users{
        iv->users.end() - std::min<std::size_t>(3, iv->users.size()),
        iv->users.end()};
    exerciser_->set_users(probe_users, {});
  }

  EntradaDemo::Options en_opts;
  en_opts.job_scale = opts.job_scale;
  en_opts.months = opts.months;
  entrada_ = std::make_unique<EntradaDemo>(*grid_, en_opts);
  if (const core::VoUsers* iv = users_for(assembled_, "ivdgl")) {
    entrada_->set_users(iv->app_admins, {});
  }
}

Scenario::~Scenario() = default;

void Scenario::start() {
  if (started_) return;
  started_ = true;
  if (opts_.resource_fluctuation) {
    fluct_rng_ = util::Rng{opts_.seed ^ 0xf1c7u};
    for (const auto& site : grid_->sites()) {
      base_cpus_.push_back(site->cpus());
    }
    // Every two weeks, shared sites resize within 80-105% of their base
    // capacity (withdrawing nodes kills the jobs on them, as the paper's
    // disk/node replacements did at unlucky sites).
    fluctuation_ = std::make_unique<sim::PeriodicProcess>(
        sim_, Time::days(14), [this] {
          const auto& sites = grid_->sites();
          for (std::size_t i = 0; i < sites.size(); ++i) {
            if (sites[i]->config().policy.dedicated) continue;
            const int target = std::max(
                2, static_cast<int>(base_cpus_[i] *
                                    fluct_rng_.uniform(0.80, 1.05)));
            sites[i]->scheduler().resize(target, fluct_rng_);
          }
          return true;
        });
    fluctuation_->start(Time::days(10));
  }
  // The SC2003 conference demonstration (paper section 7: "On Nov. 20,
  // 2003 there were sustained periods when over 1300 jobs ran
  // simultaneously"): a coordinated push that floods the grid with
  // medium-length jobs for a day.  Sized to capacity, not to workload.
  if (!opts_.standard_apps) return;
  if (opts_.months >= 2) {
    const int burst_jobs = static_cast<int>(1400 * opts_.cpu_scale);
    if (burst_jobs > 0) {
      ivdgl_->demo_burst(util::time_of({2003, 11, 20}), burst_jobs);
    }
  }
  atlas_->start();
  cms_->start();
  sdss_->start();
  ligo_->start();
  btev_->start();
  ivdgl_->start();
  exerciser_->start();
  entrada_->start();
}

void Scenario::run() {
  start();
  run_until(util::month_start(opts_.months));
}

void Scenario::run_until(Time t) {
  start();
  sim_.run_until(t);
}

}  // namespace grid3::apps
