// Condor exerciser (paper section 4.7): "An exerciser backfill
// application provided by the Condor group tested the status of the
// batch systems and operation characteristics of each Grid3 site.  This
// application ran repeatedly with a low priority at 15 minute
// intervals."  Probes submit straight through Condor-G (no DAGMan) at
// negative batch priority so they only consume otherwise-idle slots.
//
// ACDC accounts these separately from iVDGL (Table 1 "Exerciser"
// column) even though they run under iVDGL credentials.
#pragma once

#include <memory>
#include <vector>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct ExerciserOptions {
  double job_scale = 1.0;
  int months = 7;
  /// Sites probed (defaults to the exerciser's Table 1 site set).
  std::vector<std::string> sites;
};


class CondorExerciser : public AppBase {
 public:
  using Options = ExerciserOptions;

  CondorExerciser(core::Grid3& grid, Options opts = {});

  /// Production launcher (Table 1: 198272 jobs, peak 72224 in 12-2003,
  /// mean runtime 0.13 h).
  void start();
  void stop();

  /// Probe one site (round-robin across the configured set).
  void probe_next_site();

  [[nodiscard]] std::uint64_t probes() const { return probes_; }

 private:
  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  std::size_t next_site_ = 0;
  std::uint64_t probes_ = 0;
  util::Distribution runtime_;
  util::Distribution december_runtime_;
};

}  // namespace grid3::apps
