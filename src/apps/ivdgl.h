// iVDGL applications (paper section 4.6): SnB (Shake-and-Bake crystal
// structure determination from X-ray diffraction data) and GADU (genome
// analysis pipeline from Argonne MCS).  Both run as high-volume
// single-step derivations under the iVDGL VO, dominated by one big
// shared Condor pool (Table 1: 88.1% of peak production from a single
// resource).
#pragma once

#include <memory>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct IvdglOptions {
  double job_scale = 1.0;
  int months = 7;
  double snb_fraction = 0.6;  ///< SnB vs GADU job mix
  std::string favorite_site = "UWMAD_CS";
};


class IvdglApps : public AppBase {
 public:
  using Options = IvdglOptions;

  IvdglApps(core::Grid3& grid, Options opts = {});

  /// Production launcher (Table 1 iVDGL column: 58145 jobs, peak 25722
  /// in 11-2003, mean runtime 1.22 h).
  void start();
  void stop();

  /// Launch one SnB trial-structure job or one GADU analysis job.
  bool launch_job();

  /// The SC2003 demonstration push: schedule `jobs` medium-length jobs
  /// over `window` starting at `at`, spread evenly across the grid (the
  /// paper's 1300-concurrent-jobs moment on Nov 20, 2003).
  void demo_burst(Time at, int jobs, Time window = Time::hours(5));

  [[nodiscard]] std::uint64_t snb_jobs() const { return snb_; }
  [[nodiscard]] std::uint64_t gadu_jobs() const { return gadu_; }

 private:
  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  std::uint64_t seq_ = 0;
  std::uint64_t snb_ = 0;
  std::uint64_t gadu_ = 0;
  util::Distribution runtime_;
  util::Distribution demo_runtime_;
};

}  // namespace grid3::apps
