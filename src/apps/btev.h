// BTeV Monte Carlo (paper section 4.5): CP-violation simulation in heavy
// quark decays, ~15 s/event, generated in batches as single-job Chimera
// derivations at scale ("2.5 million events generated with 1000 10-hour
// jobs across Grid3" in the challenge configuration).
#pragma once

#include <memory>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct BtevOptions {
  double job_scale = 1.0;
  int months = 7;
  /// Events per second of runtime: 1 event / 15 s on a 2 GHz node.
  double events_per_second = 1.0 / 15.0;
};


class BtevSim : public AppBase {
 public:
  using Options = BtevOptions;

  BtevSim(core::Grid3& grid, Options opts = {});

  /// Production launcher (Table 1 BTEV column: 2598 jobs, nearly all in
  /// the 11-2003 challenge month, 59.8% from a single resource).
  void start();
  void stop();

  /// Launch one generation job; returns the planned event yield.
  bool launch_job();

  /// Run the section 4.5 challenge shape: `jobs` jobs of `hours` each.
  bool run_challenge(int jobs, double hours);

  [[nodiscard]] double events_generated() const { return events_; }

 private:
  bool submit_generation(Time runtime);

  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  std::uint64_t seq_ = 0;
  double events_ = 0.0;
  util::Distribution runtime_;
};

}  // namespace grid3::apps
