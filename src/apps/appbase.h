// Shared machinery for the application demonstrators.
//
// Each app (section 4) owns a planner configuration, a user population
// (mostly application administrators, who the paper says perform most
// submissions), and the accounting glue that turns DAGMan node results
// into ACDC job records and Figure 5 transfer entries.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/grid3.h"
#include "core/roster.h"
#include "util/distributions.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::apps {

struct AppStats {
  std::uint64_t workflows = 0;
  std::uint64_t workflows_ok = 0;
  std::uint64_t jobs = 0;
  std::uint64_t jobs_ok = 0;
  std::uint64_t jobs_failed_site = 0;
  std::uint64_t transfers = 0;
};

class AppBase {
 public:
  /// `record_vo` is the ACDC user-classification label (usually the VO
  /// name; "exerciser" for the Condor exerciser, which runs under iVDGL
  /// credentials but is accounted separately in Table 1).
  AppBase(core::Grid3& grid, std::string vo, std::string app_name,
          std::string record_vo = {});
  virtual ~AppBase() = default;
  AppBase(const AppBase&) = delete;
  AppBase& operator=(const AppBase&) = delete;

  /// Register the user population used for submissions.
  void set_users(std::vector<vo::Certificate> admins,
                 std::vector<vo::Certificate> users);

  [[nodiscard]] const AppStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& vo() const { return vo_; }
  [[nodiscard]] const std::string& app_name() const { return app_name_; }

 protected:
  [[nodiscard]] core::Grid3& grid() { return grid_; }
  [[nodiscard]] sim::Simulation& sim() { return grid_.sim(); }
  [[nodiscard]] util::Rng& rng() { return rng_; }
  [[nodiscard]] workflow::PegasusPlanner& planner() { return planner_; }

  /// ~90% of submissions come from application administrators.
  [[nodiscard]] const vo::Certificate& pick_submitter();

  /// Plan and execute an abstract DAG; node results are recorded into
  /// the iGOC job database automatically.  Returns false when planning
  /// found no eligible site (the workflow is dropped, as a real planner
  /// failure would surface to the operator).  `app_label` overrides the
  /// application name recorded in ACDC (for drivers running several
  /// distinct applications, e.g. SnB + GADU).
  bool launch(const workflow::AbstractDag& dag,
              const workflow::PlannerConfig& cfg,
              workflow::DagMan::DoneFn done = {},
              std::string app_label = {});

  /// Record one node result under this app's accounting labels.
  void record_node(const workflow::NodeResult& result,
                   const std::string& user_dn, const std::string& app_label);

 private:
  core::Grid3& grid_;
  std::string vo_;
  std::string app_name_;
  std::string record_vo_;
  util::Rng rng_;
  workflow::PegasusPlanner planner_;
  std::vector<vo::Certificate> admins_;
  std::vector<vo::Certificate> users_;
  AppStats stats_;
};

}  // namespace grid3::apps
