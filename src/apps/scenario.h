// The Grid2003 operations scenario: October 2003 through April 2004.
//
// Composes the full fabric (27 sites, 6 VOs, users, failure injection)
// with all seven application demonstrator classes calibrated to Table 1,
// and exposes the analysis windows the paper's figures use.
#pragma once

#include <memory>

#include "apps/atlas.h"
#include "apps/btev.h"
#include "apps/cms.h"
#include "apps/entrada.h"
#include "apps/exerciser.h"
#include "apps/ivdgl.h"
#include "apps/ligo.h"
#include "apps/sdss.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/roster.h"
#include "monitoring/mdviewer.h"

namespace grid3::apps {

struct ScenarioOptions {
  /// Scale site CPU counts (1.0 = the ~2800-CPU roster).
  double cpu_scale = 1.0;
  /// Scale workload volumes (1.0 = the 291k-job accounting sample).
  double job_scale = 1.0;
  int months = 7;  ///< Oct 2003 .. Apr 2004
  std::uint64_t seed = 20031025;
  /// Shared sites introduce and withdraw worker nodes over time (the
  /// section 7 CPU-count fluctuation); dedicated sites stay fixed.
  bool resource_fluctuation = true;
  /// kNone = the paper's status quo (planner-side favorite sites, no
  /// broker).  Anything else attaches a per-VO resource broker with that
  /// ranking policy before the application drivers are built.
  broker::PolicyKind broker_policy = broker::PolicyKind::kNone;
  /// With a broker attached: acquire stage-out leases (SRM space at the
  /// destination SE) before binding.  False = the no-lease baseline.
  bool placement_leases = true;
  /// With a broker attached: serve rank scores from the incremental
  /// cache (delta-event invalidation).  False forces the full per-match
  /// rescore -- the grid30 bench's equivalence baseline.
  bool broker_incremental_rank = true;
  /// Fabric replication factor (see core::AssembleOptions): 1 = the
  /// historical 27-site roster, 10 = the "Grid30" 270-site fabric.
  int roster_replicas = 1;
  /// Scope fair-share re-solves to the affected link component (see
  /// net::NetworkConfig).  False forces the full-graph re-solve -- the
  /// grid30 bench's legacy-kernel equivalence baseline.
  bool network_partial_reallocate = true;
  /// Build and start the seven historical application demonstrators.
  /// False assembles the bare fabric (sites, VOs, users, failure
  /// injection) so a workload-generator scenario (src/workload) can
  /// drive its own campaigns instead; the per-app accessors below must
  /// not be used then.
  bool standard_apps = true;
};

struct Window {
  Time from;
  Time to;
};

/// SC2003 analysis window: 30 days from October 25, 2003 (Figures 2/3/5).
[[nodiscard]] Window sc2003_window();
/// Table 1 accounting window: Oct 23, 2003 - Apr 23, 2004.
[[nodiscard]] Window table1_window();
/// CMS 150-day window from November 2003 (Figure 4).
[[nodiscard]] Window cms150_window();

class Scenario {
 public:
  Scenario(sim::Simulation& sim, ScenarioOptions opts = {});
  ~Scenario();
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Start all application drivers (idempotent).
  void start();
  /// Run the simulation to the end of the configured months.
  void run();
  void run_until(Time t);

  [[nodiscard]] core::Grid3& grid() { return *grid_; }
  [[nodiscard]] const ScenarioOptions& options() const { return opts_; }
  /// Assembly outputs (per-VO user credentials): campaign drivers wire
  /// their submitter populations from here.
  [[nodiscard]] const core::Assembled& assembled() const { return assembled_; }
  [[nodiscard]] monitoring::MdViewer viewer() const {
    return {grid_->igoc().job_db(), grid_->igoc().bus()};
  }

  [[nodiscard]] AtlasGce& atlas() { return *atlas_; }
  [[nodiscard]] CmsMop& cms() { return *cms_; }
  [[nodiscard]] SdssCoadd& sdss() { return *sdss_; }
  [[nodiscard]] LigoPulsar& ligo() { return *ligo_; }
  [[nodiscard]] BtevSim& btev() { return *btev_; }
  [[nodiscard]] IvdglApps& ivdgl() { return *ivdgl_; }
  [[nodiscard]] CondorExerciser& exerciser() { return *exerciser_; }
  [[nodiscard]] EntradaDemo& entrada() { return *entrada_; }

 private:
  sim::Simulation& sim_;
  ScenarioOptions opts_;
  std::unique_ptr<core::Grid3> grid_;
  core::Assembled assembled_;
  std::unique_ptr<AtlasGce> atlas_;
  std::unique_ptr<CmsMop> cms_;
  std::unique_ptr<SdssCoadd> sdss_;
  std::unique_ptr<LigoPulsar> ligo_;
  std::unique_ptr<BtevSim> btev_;
  std::unique_ptr<IvdglApps> ivdgl_;
  std::unique_ptr<CondorExerciser> exerciser_;
  std::unique_ptr<EntradaDemo> entrada_;
  std::unique_ptr<sim::PeriodicProcess> fluctuation_;
  std::vector<int> base_cpus_;
  util::Rng fluct_rng_{1};
  bool started_ = false;
};

}  // namespace grid3::apps
