#include "apps/ivdgl.h"

#include "workflow/vdc.h"

namespace grid3::apps {

IvdglApps::IvdglApps(core::Grid3& grid, Options opts)
    : AppBase{grid, "ivdgl", core::app::kSnb},
      opts_{opts},
      // Bulk of jobs near the 1.22 h mean, with a 1% long tail out to
      // the 291.74 h Table 1 maximum.
      runtime_{util::Distribution::clamped(
          util::Distribution::mixture(
              {util::Distribution::lognormal_mean_cv(0.85, 1.3),
               util::Distribution::lognormal_mean_cv(40.0, 1.0)},
              {0.99, 0.01}),
          0.05, 291.0)},
      demo_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(4.5, 0.3), 2.0, 9.0)} {}

void IvdglApps::start() {
  if (launcher_) return;
  LaunchSchedule schedule;
  // November's steady-state rate leaves headroom for the SC2003 demo
  // burst (Scenario schedules it), which lands ~1250 more jobs that
  // month -- together hitting the Table 1 peak of 25722.
  schedule.monthly = {3000, 24450, 9000, 6000, 5500, 5000, 3900};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months), 3900.0);
  schedule.scale = opts_.job_scale * 1.07;  // completed-count compensation
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { launch_job(); }, rng().fork());
  launcher_->start();
}

void IvdglApps::stop() {
  if (launcher_) launcher_->stop();
}

bool IvdglApps::launch_job() {
  const std::uint64_t id = ++seq_;
  const bool snb = rng().chance(opts_.snb_fraction);
  if (snb) {
    ++snb_;
  } else {
    ++gadu_;
  }
  const std::string out = (snb ? "ivdgl/snb/trial-" : "ivdgl/gadu/blast-") +
                          std::to_string(id);

  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation(
      {snb ? "snb-dual-space" : "gadu-pipeline", "1.0",
       snb ? core::app::kSnb : core::app::kGadu});
  vdc.add_derivation(
      {.id = "ivdgl-" + std::to_string(id),
       .transformation = snb ? "snb-dual-space" : "gadu-pipeline",
       .inputs = {},
       .outputs = {out},
       .runtime = Time::hours(runtime_.sample(rng())),
       .output_size = Bytes::mb(snb ? 20 : 80),
       .scratch = Bytes::mb(500)});
  auto dag = vdc.request({out});
  if (!dag.has_value()) return false;

  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.walltime_slack = 1.5;
  // One dominant shared pool (Table 1: 88% of peak from one resource).
  cfg.site_preference = {{opts_.favorite_site, 150.0}};
  return launch(*dag, cfg, {},
                snb ? core::app::kSnb : core::app::kGadu);
}

void IvdglApps::demo_burst(Time at, int jobs, Time window) {
  for (int i = 0; i < jobs; ++i) {
    const Time when =
        at + Time::seconds(window.to_seconds() * i / std::max(jobs, 1));
    sim().schedule_at(when, [this] {
      const std::uint64_t id = ++seq_;
      ++snb_;
      const std::string out = "ivdgl/sc2003-demo/" + std::to_string(id);
      workflow::VirtualDataCatalog vdc;
      vdc.add_transformation({"snb-dual-space", "1.0", core::app::kSnb});
      vdc.add_derivation({.id = "demo-" + std::to_string(id),
                          .transformation = "snb-dual-space",
                          .inputs = {},
                          .outputs = {out},
                          .runtime =
                              Time::hours(demo_runtime_.sample(rng())),
                          .output_size = Bytes::mb(20),
                          .scratch = Bytes::mb(500)});
      auto dag = vdc.request({out});
      if (!dag.has_value()) return;
      workflow::PlannerConfig cfg;
      cfg.vo = vo();
      cfg.walltime_slack = 1.5;
      // The demo deliberately exercised the whole grid: no favorites.
      launch(*dag, cfg, {}, core::app::kSnb);
    });
  }
}

}  // namespace grid3::apps
