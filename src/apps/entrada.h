// Entrada GridFTP data-transfer demonstrator (paper sections 4.7, 6.3):
// "A Java-based plug-in environment (Entrada) was used to generate
// simulated traffic between a matrix of sites in a periodic fashion";
// NetLogger-instrumented GridFTP monitored the transfers.  The
// demonstrator carried most of the bytes in Figure 5 and pushed the
// grid past its 2 TB/day milestone.
#pragma once

#include <memory>
#include <vector>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct EntradaOptions {
  double job_scale = 1.0;
  int months = 7;
  /// Mean chunk size per matrix transfer.
  Bytes chunk = Bytes::gb(14);
  /// Transfers per day during the SC2003 push (Oct/Nov 2003).
  double sc2003_per_day = 200.0;
  /// Transfers per day in steady state afterwards.
  double steady_per_day = 80.0;
};


class EntradaDemo : public AppBase {
 public:
  using Options = EntradaOptions;

  EntradaDemo(core::Grid3& grid, Options opts = {});

  void start();
  void stop();

  /// Fire one matrix transfer between a random pair of sites.
  void transfer_once();

  [[nodiscard]] Bytes moved() const { return moved_; }
  [[nodiscard]] std::uint64_t transfers_ok() const { return ok_; }
  [[nodiscard]] std::uint64_t transfers_failed() const { return failed_; }

 private:
  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  Bytes moved_;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
  util::Distribution chunk_gb_;
};

}  // namespace grid3::apps
