// Workload launch scheduling.
//
// Every application demonstrator ramped up and down over the project's
// months (Figure 6: ramp through late 2003, sustained production in
// 2004).  A LaunchSchedule holds per-month launch targets; the
// PoissonLauncher turns them into exponential inter-arrival launches so
// submission is bursty-but-calibrated, as production was.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulation.h"
#include "util/calendar.h"
#include "util/rng.h"
#include "util/units.h"

namespace grid3::apps {

struct LaunchSchedule {
  /// Target launches in month 0 (Oct 2003), month 1 (Nov 2003), ...
  std::vector<double> monthly;
  double scale = 1.0;

  /// Instantaneous launch rate (per day) at time t.
  [[nodiscard]] double rate_per_day(Time t) const;
  /// Total launches over the whole schedule.
  [[nodiscard]] double total() const;
  [[nodiscard]] Time end() const {
    return util::month_start(static_cast<int>(monthly.size()));
  }
};

class PoissonLauncher {
 public:
  using LaunchFn = std::function<void()>;

  PoissonLauncher(sim::Simulation& sim, LaunchSchedule schedule,
                  LaunchFn launch, util::Rng rng);
  ~PoissonLauncher();
  PoissonLauncher(const PoissonLauncher&) = delete;
  PoissonLauncher& operator=(const PoissonLauncher&) = delete;

  void start();
  void stop();
  [[nodiscard]] std::uint64_t launches() const { return launches_; }

 private:
  void arm();

  sim::Simulation& sim_;
  LaunchSchedule schedule_;
  LaunchFn launch_;
  util::Rng rng_;
  sim::EventId pending_ = 0;
  bool running_ = false;
  std::uint64_t launches_ = 0;
};

}  // namespace grid3::apps
