#include "apps/ligo.h"

#include <cmath>

#include "util/calendar.h"
#include "workflow/vdc.h"

namespace grid3::apps {

LigoPulsar::LigoPulsar(core::Grid3& grid, Options opts)
    : AppBase{grid, "ligo", core::app::kLigoPulsar},
      opts_{opts},
      // "Each workflow instance runs for several hours on an average
      // processor."
      search_runtime_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(5.0, 0.5), 1.0, 24.0)} {}

void LigoPulsar::register_sft_bands(int count) {
  auto* catalog = grid().rls(vo());
  for (int i = 0; i < count; ++i) {
    const std::string lfn =
        "ligo/s2/sft-band-" + std::to_string(bands_available_++);
    catalog->register_replica(
        opts_.data_host, lfn,
        {"gsiftp://" + opts_.data_host + "/" + lfn, Bytes::gb(4.0),
         sim().now()},
        sim().now());
  }
}

void LigoPulsar::start() {
  if (started_) return;
  started_ = true;
  // The ACDC sample records exactly three LIGO jobs, all in December
  // 2003 -- a historical fact, not a rate, so schedule them verbatim
  // (scaled down only when the whole workload is).
  if (opts_.months <= 2) return;
  const int n = static_cast<int>(std::lround(3.0 * opts_.job_scale));
  for (int i = 0; i < n; ++i) {
    sim().schedule_at(
        util::month_start(2) + Time::days(4 + 8 * i) +
            Time::hours(rng().uniform(0.0, 12.0)),
        [this] { launch_registration_test(); });
  }
}

void LigoPulsar::stop() { started_ = false; }

bool LigoPulsar::launch_registration_test() {
  const std::uint64_t id = ++seq_;
  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"lalapps-version", "1.0", core::app::kLigoPulsar});
  vdc.add_derivation({.id = "ligo-test-" + std::to_string(id),
                      .transformation = "lalapps-version",
                      .inputs = {},
                      .outputs = {"ligo/test/" + std::to_string(id)},
                      .runtime = Time::seconds(36),
                      .output_size = Bytes::kb(4),
                      .scratch = Bytes::mb(10)});
  auto dag = vdc.request({"ligo/test/" + std::to_string(id)});
  if (!dag.has_value()) return false;
  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.site_preference = {{opts_.run_site, 100.0}};
  return launch(*dag, cfg);
}

bool LigoPulsar::run_search(int bands) {
  if (bands_available_ < bands) {
    register_sft_bands(bands - bands_available_);
  }
  bool all_ok = true;
  for (int b = 0; b < bands; ++b) {
    all_ok = launch_band(b) && all_ok;
  }
  return all_ok;
}

bool LigoPulsar::launch_band(int band) {
  const std::uint64_t id = ++seq_;
  const std::string sft = "ligo/s2/sft-band-" + std::to_string(band);
  const std::string out = "ligo/s2/candidates-" + std::to_string(id);

  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation(
      {"computefstatistic", "S2", core::app::kLigoPulsar});
  // The search consumes the staged SFT band (4 GB, resolved via RLS at
  // the LIGO facility) and produces a small candidate list which is
  // staged back and registered.
  vdc.add_derivation({.id = "fstat-" + std::to_string(id),
                      .transformation = "computefstatistic",
                      .inputs = {sft},
                      .outputs = {out},
                      .runtime = Time::hours(search_runtime_.sample(rng())),
                      .output_size = Bytes::mb(50),
                      .scratch = Bytes::gb(5.0)});
  auto dag = vdc.request({out});
  if (!dag.has_value()) return false;

  workflow::PlannerConfig cfg;
  cfg.vo = vo();
  cfg.archive_site = opts_.data_host;  // results return to the facility
  cfg.archive_all = true;
  cfg.walltime_slack = 1.6;
  cfg.site_preference = {{opts_.run_site, 50.0}};
  return launch(*dag, cfg);
}

}  // namespace grid3::apps
