// DIAL: Distributed Interactive Analysis of Large datasets (paper
// sections 4.1, 6.1): "A dataset catalog was created for produced
// samples, making them available to the DIAL distributed analysis
// package.  Output datasets were stored at BNL by the grid jobs, and
// continue to be analyzed by DIAL developers and the SUSY physics
// working group."
//
// DIAL consumes what production makes: it discovers archived datasets
// through RLS, fans short analysis jobs out to sites holding (or near)
// the replicas, and merges the per-dataset partial results into a
// histogram -- the interactive counterpart to the batch pipelines.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/appbase.h"
#include "util/stats.h"

namespace grid3::apps {

struct DialOptions {
  std::string dataset_prefix = "usatlas/dc2/";
  std::string dataset_suffix = ".esd";
  /// Analysis jobs are short and interactive-priority.
  double job_hours_mean = 0.4;
  int priority = 2;
  /// Histogram binning for the merged physics result.
  double hist_lo = 0.0;
  double hist_hi = 500.0;  ///< "GeV"
  std::size_t hist_bins = 50;
};

/// Result of one analysis round.
struct DialResult {
  std::size_t datasets_found = 0;
  std::size_t jobs_launched = 0;
  std::size_t jobs_ok = 0;
  util::Histogram histogram;
  [[nodiscard]] bool complete() const {
    return jobs_launched > 0 && jobs_ok == jobs_launched;
  }
};

class DialAnalysis : public AppBase {
 public:
  using Options = DialOptions;

  DialAnalysis(core::Grid3& grid, Options opts = {});

  /// Scan RLS for datasets `prefix<1..max_id>suffix`, launch one analysis
  /// job per replica-holding dataset, and invoke `done` with the merged
  /// histogram when every job has terminated.
  void analyze(int max_dataset_id, std::function<void(DialResult)> done);

 private:
  Options opts_;
  std::uint64_t seq_ = 0;
};

}  // namespace grid3::apps
