#include "apps/entrada.h"

namespace grid3::apps {

EntradaDemo::EntradaDemo(core::Grid3& grid, Options opts)
    : AppBase{grid, "ivdgl", core::app::kEntrada},
      opts_{opts},
      chunk_gb_{util::Distribution::clamped(
          util::Distribution::lognormal_mean_cv(opts.chunk.to_gb(), 0.5),
          1.0, 60.0)} {}

void EntradaDemo::start() {
  if (launcher_) return;
  LaunchSchedule schedule;
  // Daily rates -> monthly totals (30.5-day months are close enough for
  // shaping; the Poisson launcher re-reads exact month lengths).
  schedule.monthly = {opts_.sc2003_per_day * 31, opts_.sc2003_per_day * 30,
                      opts_.steady_per_day * 31, opts_.steady_per_day * 31,
                      opts_.steady_per_day * 29, opts_.steady_per_day * 31,
                      opts_.steady_per_day * 30};
  schedule.monthly.resize(static_cast<std::size_t>(opts_.months),
                          opts_.steady_per_day * 30);
  schedule.scale = opts_.job_scale;
  launcher_ = std::make_unique<PoissonLauncher>(
      sim(), schedule, [this] { transfer_once(); }, rng().fork());
  launcher_->start();
}

void EntradaDemo::stop() {
  if (launcher_) launcher_->stop();
}

void EntradaDemo::transfer_once() {
  const auto& sites = grid().sites();
  if (sites.size() < 2) return;
  const std::size_t a = rng().index(sites.size());
  std::size_t b = rng().index(sites.size() - 1);
  if (b >= a) ++b;
  core::Site& src = *sites[a];
  core::Site& dst = *sites[b];

  gridftp::TransferRequest req;
  req.src = &src.ftp();
  req.dst = &dst.ftp();
  req.size = Bytes::gb(chunk_gb_.sample(rng()));
  req.lfn = "entrada/chunk-" + std::to_string(ok_ + failed_);
  // Entrada traffic cycles through scratch: claim-then-release so the
  // matrix does not permanently fill destination disks.
  req.dest_volume = &dst.disk();
  const std::string src_name = src.name();
  const std::string dst_name = dst.name();
  srm::DiskVolume* volume = &dst.disk();
  grid().ftp_client().transfer(
      std::move(req), [this, src_name, dst_name,
                       volume](const gridftp::TransferRecord& rec) {
        if (rec.ok()) {
          ++ok_;
          moved_ += rec.transferred;
          grid().igoc().job_db().insert_transfer(
              {src_name, dst_name, "ivdgl", rec.transferred, rec.finished,
               /*demo=*/true});
          // Demonstrator data is ephemeral: release the scratch the
          // transfer landed in once accounted.
          volume->release(rec.transferred);
        } else {
          ++failed_;
        }
      });
}

}  // namespace grid3::apps
