#include "apps/appbase.h"

#include <cassert>

namespace grid3::apps {

AppBase::AppBase(core::Grid3& grid, std::string vo, std::string app_name,
                 std::string record_vo)
    : grid_{grid},
      vo_{std::move(vo)},
      app_name_{std::move(app_name)},
      record_vo_{record_vo.empty() ? vo_ : std::move(record_vo)},
      rng_{grid.rng().fork()},
      planner_{grid.igoc().top_giis(), *grid.rls(vo_)} {
  // Late binding when the fabric has a broker for this VO (attach it
  // before constructing the apps).
  planner_.set_broker(grid_.broker(vo_));
}

void AppBase::set_users(std::vector<vo::Certificate> admins,
                        std::vector<vo::Certificate> users) {
  admins_ = std::move(admins);
  users_ = std::move(users);
}

const vo::Certificate& AppBase::pick_submitter() {
  assert(!admins_.empty() || !users_.empty());
  const bool admin = users_.empty() || (!admins_.empty() && rng_.chance(0.9));
  auto& pool = admin ? admins_ : users_;
  return pool[rng_.index(pool.size())];
}

bool AppBase::launch(const workflow::AbstractDag& dag,
                     const workflow::PlannerConfig& cfg,
                     workflow::DagMan::DoneFn done, std::string app_label) {
  auto plan = planner_.plan(dag, cfg, rng_, sim().now());
  if (!plan.has_value()) return false;
  ++stats_.workflows;

  const vo::Certificate& submitter = pick_submitter();
  auto proxy = grid_.make_proxy(submitter, vo_, Time::hours(96));
  if (!proxy.has_value()) return false;
  const std::string user_dn = submitter.subject_dn;
  if (app_label.empty()) app_label = app_name_;

  grid_.dagman(vo_).run(
      std::move(*plan), *proxy,
      [this, done](const workflow::DagRunStats& s) {
        if (s.success) ++stats_.workflows_ok;
        if (done) done(s);
      },
      [this, user_dn, app_label](const workflow::NodeResult& r) {
        record_node(r, user_dn, app_label);
      });
  return true;
}

void AppBase::record_node(const workflow::NodeResult& result,
                          const std::string& user_dn,
                          const std::string& app_label) {
  auto& db = grid_.igoc().job_db();
  switch (result.type) {
    case workflow::NodeType::kCompute: {
      monitoring::JobRecord rec;
      rec.vo = record_vo_;
      rec.user_dn = user_dn;
      rec.site = result.site;
      rec.app = app_label;
      rec.submitted = result.submitted;
      rec.started = result.started;
      rec.finished = result.finished;
      rec.success = result.ok;
      rec.site_problem = result.site_problem;
      rec.failure = result.failure_class;
      rec.submit_id = record_vo_ + "/" + app_label + "/" +
                      std::to_string(stats_.jobs + 1);
      rec.gram_contact = result.gram_contact;
      ++stats_.jobs;
      if (result.ok) {
        ++stats_.jobs_ok;
      } else if (result.site_problem) {
        ++stats_.jobs_failed_site;
      }
      db.insert(std::move(rec));
      // Jobmanager stage-in is data consumed by the execution site.
      if (result.ok && result.bytes > Bytes::zero() &&
          !result.source_site.empty()) {
        db.insert_transfer({result.source_site, result.site, record_vo_,
                            result.bytes, result.finished, false});
        ++stats_.transfers;
      }
      return;
    }
    case workflow::NodeType::kStageIn:
    case workflow::NodeType::kStageOut: {
      if (!result.ok || result.bytes == Bytes::zero()) return;
      db.insert_transfer({result.source_site, result.site, record_vo_,
                          result.bytes, result.finished, false});
      ++stats_.transfers;
      return;
    }
    case workflow::NodeType::kRegister:
      return;
  }
}

}  // namespace grid3::apps
