// SDSS cluster finding (paper section 4.3): galaxy-cluster searches over
// survey segments produce Chimera workflows with many short processing
// steps; pixel-level coadd analyses stage survey cutouts from the SDSS
// archive sites.
#pragma once

#include <memory>

#include "apps/appbase.h"
#include "apps/launcher.h"

namespace grid3::apps {

struct SdssOptions {
  double job_scale = 1.0;
  std::string archive_site = "FNAL_SDSS";
  int months = 7;
  /// Parallel chains per workflow x steps per chain (25 jobs/workflow).
  int chains = 5;
  int steps_per_chain = 5;
};


class SdssCoadd : public AppBase {
 public:
  using Options = SdssOptions;

  SdssCoadd(core::Grid3& grid, Options opts = {});

  /// Production launcher calibrated to the Table 1 SDSS column
  /// (5410 jobs, peak 1564 in 02-2004 -- SDSS peaks late).
  void start();
  void stop();

  /// One cluster-finding workflow: `chains` independent chains of
  /// `steps_per_chain` derivations each, over one survey segment.
  bool launch_workflow();

  /// Register survey-segment input replicas at the archive sites.
  void register_survey_segments(int count);

 private:
  Options opts_;
  std::unique_ptr<PoissonLauncher> launcher_;
  std::uint64_t seq_ = 0;
  int segments_ = 0;
  util::Distribution step_runtime_;
};

}  // namespace grid3::apps
