#include "apps/launcher.h"

#include <cmath>

namespace grid3::apps {

double LaunchSchedule::rate_per_day(Time t) const {
  const int mi = util::month_index_at(t);
  if (mi < 0 || mi >= static_cast<int>(monthly.size())) return 0.0;
  const util::CalendarDate d = util::date_at(t);
  const double days =
      static_cast<double>(util::days_in_month(d.year, d.month));
  return monthly[static_cast<std::size_t>(mi)] * scale / days;
}

double LaunchSchedule::total() const {
  double acc = 0.0;
  for (double m : monthly) acc += m * scale;
  return acc;
}

PoissonLauncher::PoissonLauncher(sim::Simulation& sim,
                                 LaunchSchedule schedule, LaunchFn launch,
                                 util::Rng rng)
    : sim_{sim},
      schedule_{std::move(schedule)},
      launch_{std::move(launch)},
      rng_{rng} {}

PoissonLauncher::~PoissonLauncher() { stop(); }

void PoissonLauncher::start() {
  if (running_) return;
  running_ = true;
  arm();
}

void PoissonLauncher::stop() {
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PoissonLauncher::arm() {
  if (!running_) return;
  const Time now = sim_.now();
  if (now >= schedule_.end()) {
    running_ = false;
    return;
  }
  const double rate = schedule_.rate_per_day(now);
  Time gap;
  bool is_arrival = false;
  if (rate <= 0.0) {
    // Idle month: hop to the next month boundary.
    const int mi = util::month_index_at(now);
    gap = util::month_start(mi + 1) - now + Time::seconds(1);
  } else {
    gap = Time::days(rng_.exponential(1.0 / rate));
    is_arrival = true;
    // Re-evaluate at month boundaries so rate changes take effect; a
    // clamped gap is a hop, not an arrival (no rate inflation).
    if (gap > Time::days(3.0)) {
      gap = Time::days(3.0);
      is_arrival = false;
    }
  }
  pending_ = sim_.schedule_in(gap, [this, is_arrival] {
    pending_ = 0;
    if (!running_) return;
    if (is_arrival && schedule_.rate_per_day(sim_.now()) > 0.0) {
      ++launches_;
      launch_();
    }
    arm();
  });
}

}  // namespace grid3::apps
