#include "broker/rank_policy.h"

#include <algorithm>

#include "mds/schema.h"
#include "rls/rls.h"

namespace grid3::broker {

bool SiteView::has_app(const std::string& app_name) const {
  return snapshot.get(mds::app_attribute(app_name)).has_value();
}

double FavoriteSitesPolicy::score(const JobSpec& job, const SiteView& site,
                                  Time /*now*/) const {
  auto it = job.site_preference.find(site.site);
  return it == job.site_preference.end() ? 1.0 : it->second;
}

namespace {

/// Shared load term: free slots attract, LRMS queue depth repels.
double queue_pressure_score(const SiteView& site) {
  return (static_cast<double>(site.free_cpus) + 1.0) /
         (1.0 + static_cast<double>(site.waiting_jobs));
}

}  // namespace

double QueueDepthPolicy::score(const JobSpec& /*job*/, const SiteView& site,
                               Time /*now*/) const {
  return queue_pressure_score(site);
}

double DataLocalityPolicy::score(const JobSpec& job, const SiteView& site,
                                 Time now) const {
  double local_inputs = 0.0;
  if (job.rls != nullptr) {
    for (const std::string& lfn : job.data_inputs) {
      // Membership probe, not locate(): scoring V sites x K inputs per
      // match must not materialise V*K replica lists.
      if (job.rls->has_replica_at(lfn, site.site, now)) {
        local_inputs += 1.0;
      }
    }
  }
  return queue_pressure_score(site) * (1.0 + locality_weight_ * local_inputs);
}

double LoadSheddingPolicy::score(const JobSpec& /*job*/, const SiteView& site,
                                 Time /*now*/) const {
  const double headroom =
      std::max(0.0, 1.0 - site.gatekeeper_load / shed_threshold_);
  return headroom * queue_pressure_score(site);
}

const char* to_string(PolicyKind k) {
  switch (k) {
    case PolicyKind::kNone: return "none";
    case PolicyKind::kFavoriteSites: return "favorite-sites";
    case PolicyKind::kQueueDepth: return "queue-depth";
    case PolicyKind::kDataLocality: return "data-locality";
    case PolicyKind::kLoadShedding: return "load-shedding";
  }
  return "?";
}

std::unique_ptr<RankPolicy> make_policy(PolicyKind k) {
  switch (k) {
    case PolicyKind::kNone: return nullptr;
    case PolicyKind::kFavoriteSites:
      return std::make_unique<FavoriteSitesPolicy>();
    case PolicyKind::kQueueDepth: return std::make_unique<QueueDepthPolicy>();
    case PolicyKind::kDataLocality:
      return std::make_unique<DataLocalityPolicy>();
    case PolicyKind::kLoadShedding:
      return std::make_unique<LoadSheddingPolicy>();
  }
  return nullptr;
}

}  // namespace grid3::broker
