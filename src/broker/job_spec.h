// Broker-visible description of one grid job (the ClassAd-equivalent).
//
// Grid2003 ran with no grid-level scheduler: VOs pinned "favorite sites"
// in their planner configurations (section 8 lists the resulting load
// imbalance among the lessons learned).  The broker subsystem models the
// EU-DataGrid-style Resource Broker the VOs were migrating toward; a
// JobSpec carries exactly the information a submitter's JDL exposed:
// eligibility requirements, data dependencies, and ranking hints.  It is
// deliberately free of MDS/monitoring types so the workflow layer can
// embed it in concrete-DAG nodes without widening its include surface.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace grid3::rls {
class ReplicaLocationService;
}  // namespace grid3::rls

namespace grid3::broker {

struct JobSpec {
  std::string vo;
  std::string app;           ///< accounting label (application name)
  std::string required_app;  ///< MDS installed-application requirement
  Time runtime;
  double walltime_slack = 1.5;
  int min_free_cpus = 1;
  bool need_outbound = false;
  /// Static per-site weights: the paper's status-quo "favorite sites".
  std::map<std::string, double> site_preference;
  /// Input LFNs, for replica-locality ranking.
  std::vector<std::string> data_inputs;
  /// VO replica catalog used to resolve `data_inputs` (may be null).
  const rls::ReplicaLocationService* rls = nullptr;
  /// Estimated stage-in volume (drives the gatekeeper staging factor).
  Bytes stage_in;
  /// Working-directory footprint at the execution site (lets the broker
  /// rank away from sites whose disks are nearly full).
  Bytes scratch;
  /// Stage-out placement intent: archive `stage_out` bytes to this SE
  /// after success, then register `output_lfns` there.  Empty site = no
  /// archived outputs.  With a placement ledger attached, the broker
  /// acquires a stage-out lease for the intent before binding the job.
  std::string stage_out_site;
  Bytes stage_out;
  std::vector<std::string> output_lfns;
  /// Ordered archive failover chain behind `stage_out_site`: when the
  /// primary SE refuses the stage-out lease (full, quarantined, or
  /// unreachable), the placement ledger falls through these in order
  /// and the job archives to whichever SE actually granted space.
  std::vector<std::string> stage_out_fallbacks;
  /// Plan-time eligible sites.  Non-empty = the broker late-binds within
  /// this set; empty = the broker computes eligibility from its own view.
  std::vector<std::string> candidates;
  /// Sites that were eligible at plan time but quarantined by the site
  /// health monitor when the plan was derived.  The broker re-admits
  /// one into `candidates` the moment its quarantine lifts (checked
  /// deterministically on every match attempt), so a plan made during
  /// an incident heals itself without a rescue DAG.
  std::vector<std::string> deferred_candidates;
  /// Where this job's staged input currently sits (the site holding the
  /// producing sibling's output, or the replica chosen at plan time).
  /// The broker boosts this site when ranking so consumers chase their
  /// data instead of pricing a WAN transfer; DAGMan rewrites it to the
  /// producer's *actual* completion site once late binding resolves --
  /// including for gang members placed on a split site, whose real site
  /// may differ from the gang's primary.  Empty = no affinity.
  std::string source_site;
  /// Gang matching (see ResourceBroker::match_gang): non-empty when this
  /// job is one member of a DAG level that should be co-located so its
  /// intermediate products stay on the execution site's shared disk.
  /// All members of one level carry the same id; DAGMan submits a ready
  /// gang as one unit instead of job-by-job.
  std::string gang_id;
  /// Number of sibling members in the gang (the level's width).
  int gang_width = 1;
  /// Aggregate intermediate-product bytes the whole level parks on the
  /// execution site's disk for its consumers (each member carries the
  /// level total).  Sized into the gang-scoped placement lease.
  Bytes gang_intermediates;
};

}  // namespace grid3::broker
