#include "broker/broker.h"

#include <algorithm>
#include <cstdio>

#include "mds/schema.h"

namespace grid3::broker {

ResourceBroker::ResourceBroker(sim::Simulation& sim, BrokerConfig cfg,
                               std::unique_ptr<RankPolicy> policy,
                               const mds::Giis& giis,
                               const monitoring::MonalisaRepository* monitor,
                               GatekeeperDirectory& gatekeepers,
                               gram::CondorG& condor_g,
                               monitoring::JobDatabase* accounting)
    : sim_{sim},
      cfg_{cfg},
      policy_{std::move(policy)},
      giis_{giis},
      monitor_{monitor},
      gatekeepers_{gatekeepers},
      condor_g_{condor_g},
      accounting_{accounting},
      rng_{cfg.rng_seed} {}

const std::vector<SiteView>& ResourceBroker::view(Time now) {
  if (!view_valid_ || now - view_refreshed_ >= cfg_.view_ttl) {
    refresh_view(now);
  }
  return view_;
}

void ResourceBroker::refresh_view(Time now) {
  view_.clear();
  auto snaps = giis_.find(
      [](const mds::SiteSnapshot&) { return true; }, now);
  view_.reserve(snaps.size());
  for (auto& snap : snaps) {
    SiteView v;
    v.site = snap.site;
    v.fresh = snap.fresh;
    v.total_cpus = static_cast<int>(
        snap.get_int(mds::glue::kTotalCpus).value_or(0));
    v.free_cpus = static_cast<int>(
        snap.get_int(mds::glue::kFreeCpus).value_or(0));
    v.running_jobs = static_cast<int>(
        snap.get_int(mds::glue::kRunningJobs).value_or(0));
    v.waiting_jobs = static_cast<int>(
        snap.get_int(mds::glue::kWaitingJobs).value_or(0));
    if (auto limit = snap.get_int(mds::glue::kMaxWallClockMinutes);
        limit.has_value()) {
      v.max_walltime = Time::minutes(static_cast<double>(*limit));
    }
    v.outbound =
        snap.get_bool(mds::grid3ext::kOutboundConnectivity).value_or(false);
    if (auto se = snap.get(mds::glue::kSeAvailableGb); se.has_value()) {
      if (const double* gb = std::get_if<double>(&*se)) v.se_free_gb = *gb;
    }
    if (monitor_ != nullptr) {
      v.gatekeeper_load =
          monitor_->read(v.site, monitoring::mlmetric::kGatekeeperLoad, now)
              .value_or(0.0);
    }
    v.snapshot = std::move(snap);
    view_.push_back(std::move(v));
  }
  std::sort(view_.begin(), view_.end(),
            [](const SiteView& a, const SiteView& b) { return a.site < b.site; });
  view_refreshed_ = now;
  view_valid_ = true;
}

bool ResourceBroker::meets_requirements(const JobSpec& spec,
                                        const SiteView& site) const {
  if (!spec.required_app.empty() && !site.has_app(spec.required_app)) {
    return false;
  }
  if (site.snapshot.get(mds::glue::kFreeCpus).has_value() &&
      site.free_cpus < spec.min_free_cpus) {
    return false;
  }
  const Time needed =
      Time::seconds(spec.runtime.to_seconds() * spec.walltime_slack);
  if (site.max_walltime < needed) return false;
  if (spec.need_outbound && !site.outbound) return false;
  return true;
}

std::vector<std::string> ResourceBroker::eligible(const JobSpec& spec,
                                                  Time now) {
  std::vector<std::string> out;
  for (const SiteView& v : view(now)) {
    if (meets_requirements(spec, v)) out.push_back(v.site);
  }
  return out;  // view_ is name-sorted
}

namespace {

/// Storage-headroom rank factor: sites whose disks barely cover the
/// job's local footprint (scratch + staged input) are downweighted, and
/// sites that would fail the scratch allocation outright become a last
/// resort.  Disk-full thereby shifts from a submit-time failure to a
/// rank penalty.
double storage_headroom(const JobSpec& spec, const SiteView& site) {
  const double need_gb = (spec.stage_in + spec.scratch).to_gb();
  if (need_gb <= 0.0 || site.se_free_gb <= 0.0) return 1.0;
  if (site.se_free_gb <= need_gb) return 0.01;
  return std::min(1.0, site.se_free_gb / (8.0 * need_gb));
}

}  // namespace

const SiteView* ResourceBroker::rank_and_pick(
    const JobSpec& spec, const std::vector<const SiteView*>& sites, Time now,
    double* chosen_score) {
  if (sites.empty()) return nullptr;
  std::vector<double> scores;
  scores.reserve(sites.size());
  for (const SiteView* s : sites) {
    double score = policy_->score(spec, *s, now);
    // Placement-aware ranking only with a ledger attached, so the
    // ledger-free broker keeps its established match log byte-for-byte.
    if (ledger_ != nullptr) score *= storage_headroom(spec, *s);
    scores.push_back(score);
  }
  std::size_t pick = 0;
  if (policy_->stochastic()) {
    std::vector<double> weights = scores;
    for (double& w : weights) w = std::max(w, 1e-9);
    pick = rng_.weighted_index(weights);
  } else {
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[pick]) pick = i;  // ties: first (name order)
    }
  }
  if (chosen_score != nullptr) *chosen_score = scores[pick];
  return sites[pick];
}

std::optional<std::string> ResourceBroker::choose(const JobSpec& spec,
                                                  Time now) {
  view(now);
  std::vector<const SiteView*> pool;
  if (spec.candidates.empty()) {
    for (const SiteView& v : view_) {
      if (meets_requirements(spec, v)) pool.push_back(&v);
    }
  } else {
    for (const SiteView& v : view_) {
      if (std::find(spec.candidates.begin(), spec.candidates.end(), v.site) !=
          spec.candidates.end()) {
        pool.push_back(&v);
      }
    }
  }
  const SiteView* picked = rank_and_pick(spec, pool, now, nullptr);
  if (picked == nullptr) return std::nullopt;
  return picked->site;
}

void ResourceBroker::submit(JobSpec spec, gram::GramJob job,
                            BrokeredCallback done) {
  ++submissions_;
  auto p = std::make_shared<Pending>();
  p->spec = std::move(spec);
  p->job = std::move(job);
  p->done = std::move(done);
  p->created = sim_.now();
  try_match(p);
}

double ResourceBroker::predicted_load(const SiteView& site) const {
  // Weight in-flight submissions by their jobmanager staging factor, the
  // same 2-4x the gatekeeper's own load model applies: a job archiving
  // gigabytes through its jobmanager loads the gatekeeper harder than a
  // no-staging probe, and the view's MonALISA sample hasn't seen either.
  auto it = inflight_staging_.find(site.site);
  const double staged = it == inflight_staging_.end() ? 0.0 : it->second;
  return site.gatekeeper_load + cfg_.inflight_load_weight * staged;
}

int ResourceBroker::inflight(const std::string& site) const {
  auto it = inflight_.find(site);
  return it == inflight_.end() ? 0 : it->second;
}

std::vector<const SiteView*> ResourceBroker::admissible(const Pending& p,
                                                        Time now,
                                                        bool* any_deferred) {
  view(now);
  std::vector<const SiteView*> out;
  auto consider = [&](const SiteView& v) {
    if (auto it = p.excluded_until.find(v.site);
        it != p.excluded_until.end() && now < it->second) {
      *any_deferred = true;
      return;
    }
    if (inflight(v.site) >= cfg_.max_inflight_per_site ||
        predicted_load(v) >= cfg_.load_ceiling) {
      *any_deferred = true;
      return;
    }
    if (gatekeepers_.gatekeeper(v.site) == nullptr) return;
    out.push_back(&v);
  };
  if (p.spec.candidates.empty()) {
    for (const SiteView& v : view_) {
      if (meets_requirements(p.spec, v)) consider(v);
    }
  } else {
    std::size_t found = 0;
    for (const SiteView& v : view_) {
      if (std::find(p.spec.candidates.begin(), p.spec.candidates.end(),
                    v.site) != p.spec.candidates.end()) {
        ++found;
        consider(v);
      }
    }
    // Candidates missing from the view (GRIS outage past TTL) may return;
    // treat them as deferred rather than gone.
    if (found < p.spec.candidates.size()) *any_deferred = true;
  }
  return out;
}

void ResourceBroker::record_match(const Pending& p, const SiteView& site,
                                  double score, std::size_t pool_size) {
  MatchDecision d;
  d.seq = static_cast<std::uint64_t>(log_.size()) + 1;
  d.at = sim_.now();
  d.vo = p.spec.vo;
  d.app = p.spec.app;
  d.policy = policy_->name();
  d.site = site.site;
  d.candidates = pool_size;
  d.rebind = p.rebinds;
  d.score = score;
  log_.push_back(d);
  publish_counter(metric::kMatches, log_.size());
  if (accounting_ != nullptr) {
    accounting_->insert_match({d.seq, d.at, d.vo, d.app, d.policy, d.site,
                               d.candidates, d.rebind, d.score});
  }
}

void ResourceBroker::try_match(const std::shared_ptr<Pending>& p) {
  const Time now = sim_.now();
  bool any_deferred = false;
  const auto pool = admissible(*p, now, &any_deferred);

  if (pool.empty()) {
    if (any_deferred) {
      if (now - p->created > cfg_.max_hold) {
        // Saturated too long: surface as an overload, the failure class
        // the broker exists to prevent (or as disk-full when the last
        // defer was a full destination SE).
        BrokeredResult r;
        // Storage-blocked jobs were matchable; the placement layer is
        // what refused them, so the failure attributes as a site
        // (storage) problem, not as "no eligible site".
        r.matched = p->storage_blocked || p->rebinds > 0;
        r.rebinds = p->rebinds;
        r.holds = p->holds;
        r.gram = p->last;
        r.gram.status = p->storage_blocked
                            ? gram::GramStatus::kDiskFull
                            : gram::GramStatus::kGatekeeperOverloaded;
        r.gram.submitted = p->created;
        r.gram.finished = now;
        finish(p, std::move(r));
        return;
      }
      hold(p);
      return;
    }
    // No eligible site at all: permanent, the kNoEligibleSite analogue.
    BrokeredResult r;
    r.matched = false;
    r.rebinds = p->rebinds;
    r.holds = p->holds;
    r.gram.status = gram::GramStatus::kSubmitRejected;
    r.gram.submitted = p->created;
    r.gram.finished = now;
    finish(p, std::move(r));
    return;
  }

  // Secure the stage-out destination before binding: a full destination
  // SE becomes a match-time wait here instead of a disk-full stage-out
  // failure after the compute cycles are spent.
  if (!ensure_lease(*p, now)) {
    ++storage_holds_;
    p->storage_blocked = true;
    if (now - p->created > cfg_.max_hold) {
      BrokeredResult r;
      r.matched = true;  // matchable; storage refused it (see above)
      r.rebinds = p->rebinds;
      r.holds = p->holds;
      r.gram = p->last;
      r.gram.status = gram::GramStatus::kDiskFull;
      r.gram.submitted = p->created;
      r.gram.finished = now;
      finish(p, std::move(r));
      return;
    }
    hold(p);
    return;
  }
  p->storage_blocked = false;

  double score = 0.0;
  const SiteView* picked = rank_and_pick(p->spec, pool, now, &score);
  record_match(*p, *picked, score, pool.size());

  p->bound_site = picked->site;
  ++inflight_[picked->site];
  inflight_staging_[picked->site] +=
      gram::staging_load_factor(p->spec.stage_in, p->spec.stage_out);
  gram::Gatekeeper* gk = gatekeepers_.gatekeeper(picked->site);
  auto self = p;
  condor_g_.submit_to(*gk, p->job, [this, self](const gram::GramResult& r) {
    on_result(self, r);
  });
}

void ResourceBroker::on_result(const std::shared_ptr<Pending>& p,
                               const gram::GramResult& r) {
  if (auto it = inflight_.find(p->bound_site); it != inflight_.end()) {
    if (--it->second <= 0) inflight_.erase(it);
  }
  if (auto it = inflight_staging_.find(p->bound_site);
      it != inflight_staging_.end()) {
    it->second -=
        gram::staging_load_factor(p->spec.stage_in, p->spec.stage_out);
    if (it->second <= 1e-9) inflight_staging_.erase(it);
  }
  // A slot freed: give held jobs a prompt re-match.
  if (!waiting_.empty() && !kick_scheduled_) {
    kick_scheduled_ = true;
    sim_.schedule_in(Time::seconds(1), [this] { kick_waiting(); });
  }

  // The submission resolved, so the lease's job is done: consume it
  // (output archived where the job really ran) or give the space back.
  // Re-matches acquire a fresh lease, so reserved space never leaks
  // across rebinds.
  drop_lease(*p, r.ok());

  if (r.ok() || !gram::is_transient(r.status)) {
    BrokeredResult out;
    out.gram = r;
    out.site = p->bound_site;
    out.rebinds = p->rebinds;
    out.holds = p->holds;
    out.matched = true;
    finish(p, std::move(out));
    return;
  }

  // Transient: cool the site off for this job and re-match elsewhere.
  p->last = r;
  p->excluded_until[p->bound_site] = sim_.now() + cfg_.failed_site_cooloff;
  if (p->rebinds >= cfg_.max_rebinds) {
    BrokeredResult out;
    out.gram = r;
    out.site = p->bound_site;
    out.rebinds = p->rebinds;
    out.holds = p->holds;
    out.matched = true;
    finish(p, std::move(out));
    return;
  }
  ++p->rebinds;
  ++rebinds_;
  publish_counter(metric::kRebinds, rebinds_);
  double backoff = cfg_.rebind_backoff.to_seconds();
  for (int i = 1; i < p->rebinds; ++i) backoff *= cfg_.backoff_factor;
  auto self = p;
  sim_.schedule_in(Time::seconds(backoff), [this, self] { try_match(self); });
}

void ResourceBroker::hold(const std::shared_ptr<Pending>& p) {
  ++p->holds;
  ++holds_;
  publish_counter(metric::kHolds, holds_);
  waiting_.push_back(p);
  if (!kick_scheduled_) {
    kick_scheduled_ = true;
    sim_.schedule_in(cfg_.hold_retry, [this] { kick_waiting(); });
  }
}

void ResourceBroker::kick_waiting() {
  kick_scheduled_ = false;
  std::deque<std::shared_ptr<Pending>> batch;
  batch.swap(waiting_);
  for (auto& p : batch) try_match(p);
}

void ResourceBroker::finish(const std::shared_ptr<Pending>& p,
                            BrokeredResult result) {
  drop_lease(*p, false);  // no-op unless a path left one behind
  if (p->done) {
    auto done = std::move(p->done);
    p->done = nullptr;
    done(result);
  }
}

bool ResourceBroker::ensure_lease(Pending& p, Time now) {
  p.job.stage_out_srm = nullptr;
  p.job.stage_out_reservation = 0;
  if (ledger_ == nullptr || !cfg_.placement_leases) return true;
  if (p.spec.stage_out_site.empty() || p.spec.stage_out == Bytes::zero()) {
    return true;  // no placement intent
  }
  const auto res = ledger_->acquire(p.spec.stage_out_site, p.spec.stage_out,
                                    p.spec.app, p.spec.output_lfns, now);
  switch (res.status) {
    case placement::AcquireStatus::kNoStorage:
      return true;  // unmanaged archive: proceed unleased (status quo)
    case placement::AcquireStatus::kDiskFull:
      return false;
    case placement::AcquireStatus::kLeased:
      break;
  }
  p.lease = res.lease;
  p.job.stage_out_srm = ledger_->srm_for(res.lease);
  if (const placement::StageOutLease* l = ledger_->find(res.lease)) {
    p.job.stage_out_reservation = l->reservation;
  }
  return true;
}

void ResourceBroker::drop_lease(Pending& p, bool consumed) {
  if (p.lease == 0) return;
  if (ledger_ != nullptr) {
    if (consumed) {
      ledger_->consume(p.lease, p.bound_site, sim_.now());
    } else {
      ledger_->release(p.lease, sim_.now());
    }
  }
  p.lease = 0;
  p.job.stage_out_srm = nullptr;
  p.job.stage_out_reservation = 0;
}

void ResourceBroker::publish_counter(const char* name, std::uint64_t value) {
  if (bus_ == nullptr) return;
  bus_->publish(bus_label_, name, sim_.now(), static_cast<double>(value));
}

std::string ResourceBroker::serialize_match_log() const {
  std::string out;
  out.reserve(log_.size() * 96);
  char buf[64];
  for (const MatchDecision& d : log_) {
    out += std::to_string(d.seq);
    std::snprintf(buf, sizeof(buf), "|t=%.3f", d.at.to_seconds());
    out += buf;
    out += '|';
    out += d.vo;
    out += '|';
    out += d.app;
    out += '|';
    out += d.policy;
    out += '|';
    out += d.site;
    std::snprintf(buf, sizeof(buf), "|pool=%zu|rebind=%d|score=%.6f\n",
                  d.candidates, d.rebind, d.score);
    out += buf;
  }
  return out;
}

}  // namespace grid3::broker
