#include "broker/broker.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <functional>

#include "mds/schema.h"

namespace grid3::broker {

ResourceBroker::ResourceBroker(sim::Simulation& sim, BrokerConfig cfg,
                               std::unique_ptr<RankPolicy> policy,
                               const mds::Giis& giis,
                               const monitoring::MonalisaRepository* monitor,
                               GatekeeperDirectory& gatekeepers,
                               gram::CondorG& condor_g,
                               monitoring::JobDatabase* accounting)
    : sim_{sim},
      cfg_{cfg},
      policy_{std::move(policy)},
      giis_{giis},
      monitor_{monitor},
      gatekeepers_{gatekeepers},
      condor_g_{condor_g},
      accounting_{accounting},
      rng_{cfg.rng_seed},
      ids_{std::make_shared<core::IdRegistry>()} {}

void ResourceBroker::set_id_registry(std::shared_ptr<core::IdRegistry> ids) {
  assert(ids != nullptr);
  assert(inflight_.size() == 0 &&
         "share the registry before the broker carries traffic");
  ids_ = std::move(ids);
  // Site numbering changed: drop every id-keyed cache.
  view_valid_ = false;
  view_index_.clear();
  rank_columns_.clear();
  rank_dirt_.clear();
  inflight_.clear();
  inflight_staging_.clear();
}

const std::vector<SiteView>& ResourceBroker::view(Time now) {
  if (!view_valid_ || now - view_refreshed_ >= cfg_.view_ttl) {
    refresh_view(now);
  }
  return view_;
}

void ResourceBroker::refresh_view(Time now) {
  // Collective-outage degradation: while the GIIS is down, matching
  // continues against the frozen last-known-good view (flagged stale,
  // rank-penalised) until the view is stale_view_max past its refresh;
  // beyond that the view empties and view_outage_ turns "no site" into
  // defer-not-fail.  stale_view_max zero = legacy behaviour: the
  // rebuild below empties the view and jobs fail with kSubmitRejected.
  if (!giis_.available() && cfg_.stale_view_max > Time::zero()) {
    if (view_valid_ && now - view_refreshed_ <= cfg_.stale_view_max) {
      view_stale_ = true;  // freeze: keep view_, epoch and caches intact
      return;
    }
    view_stale_ = false;
    if (!view_outage_) {
      view_outage_ = true;
      view_.clear();
      view_index_.assign(ids_->sites.size(), -1);
      ++view_epoch_;  // cached rank columns refer to the dropped view
    }
    return;  // re-checked on every view() call until the GIIS recovers
  }
  view_stale_ = false;
  view_outage_ = false;
  view_.clear();
  auto snaps = giis_.find(
      [](const mds::SiteSnapshot&) { return true; }, now);
  view_.reserve(snaps.size());
  for (auto& snap : snaps) {
    SiteView v;
    v.site = snap.site;
    v.id = ids_->sites.intern(snap.site);
    v.gk = gatekeepers_.gatekeeper(snap.site);
    v.fresh = snap.fresh;
    v.total_cpus = static_cast<int>(
        snap.get_int(mds::glue::kTotalCpus).value_or(0));
    v.free_cpus = static_cast<int>(
        snap.get_int(mds::glue::kFreeCpus).value_or(0));
    v.running_jobs = static_cast<int>(
        snap.get_int(mds::glue::kRunningJobs).value_or(0));
    v.waiting_jobs = static_cast<int>(
        snap.get_int(mds::glue::kWaitingJobs).value_or(0));
    if (auto limit = snap.get_int(mds::glue::kMaxWallClockMinutes);
        limit.has_value()) {
      v.max_walltime = Time::minutes(static_cast<double>(*limit));
    }
    v.outbound =
        snap.get_bool(mds::grid3ext::kOutboundConnectivity).value_or(false);
    if (auto se = snap.get(mds::glue::kSeAvailableGb); se.has_value()) {
      if (const double* gb = std::get_if<double>(&*se)) v.se_free_gb = *gb;
    }
    if (auto drain = snap.get(mds::grid3ext::kSeDrainGbPerHour);
        drain.has_value()) {
      if (const double* gbh = std::get_if<double>(&*drain)) {
        v.se_drain_gb_per_hour = *gbh;
      }
    }
    if (monitor_ != nullptr) {
      v.gatekeeper_load =
          monitor_->read(v.site, monitoring::mlmetric::kGatekeeperLoad, now)
              .value_or(0.0);
    }
    v.snapshot = std::move(snap);
    view_.push_back(std::move(v));
  }
  std::sort(view_.begin(), view_.end(),
            [](const SiteView& a, const SiteView& b) { return a.site < b.site; });
  view_index_.assign(ids_->sites.size(), -1);
  for (std::size_t i = 0; i < view_.size(); ++i) {
    view_index_.at_or_grow(view_[i].id) = static_cast<std::int32_t>(i);
  }
  // New epoch: every cached rank column keyed off the old view is stale.
  ++view_epoch_;
  view_refreshed_ = now;
  view_valid_ = true;
}

bool ResourceBroker::meets_requirements(const JobSpec& spec,
                                        const SiteView& site) const {
  if (!spec.required_app.empty() && !site.has_app(spec.required_app)) {
    return false;
  }
  if (site.snapshot.get(mds::glue::kFreeCpus).has_value() &&
      site.free_cpus < spec.min_free_cpus) {
    return false;
  }
  const Time needed =
      Time::seconds(spec.runtime.to_seconds() * spec.walltime_slack);
  if (site.max_walltime < needed) return false;
  if (spec.need_outbound && !site.outbound) return false;
  return true;
}

std::vector<std::string> ResourceBroker::eligible(const JobSpec& spec,
                                                  Time now) {
  view(now);
  RankColumn* col =
      cfg_.incremental_rank ? resolve_column(spec_signature(spec)) : nullptr;
  std::vector<std::string> out;
  for (const SiteView& v : view_) {
    if (eligible_in(spec, v, col)) out.push_back(v.site);
  }
  return out;  // view_ is name-sorted
}

namespace {

/// How far ahead the broker credits a draining SE's tape-migration
/// throughput when the SE is full right now (matches the archive
/// drain cycles the placement ablation models).
constexpr double kDrainLookaheadHours = 4.0;

/// Storage-headroom rank factor for `need_gb` of local footprint: sites
/// whose disks barely cover it are downweighted, and sites that would
/// fail the allocation outright become a last resort.  Disk-full
/// thereby shifts from a submit-time failure to a rank penalty.
double storage_headroom_for(double need_gb, const SiteView& site) {
  if (need_gb <= 0.0 || site.se_free_gb <= 0.0) return 1.0;
  if (site.se_free_gb <= need_gb) {
    // Full right now.  A draining archive (tape migration emptying the
    // SE at a published GB/h) is a temporary wait, not a structural
    // dead end: credit the space the drain frees within the lookahead
    // window so such sites outrank the truly full ones instead of
    // tying with them at the floor.
    const double effective =
        site.se_free_gb + site.se_drain_gb_per_hour * kDrainLookaheadHours;
    if (effective > need_gb) {
      return std::min(0.25, 0.05 * effective / need_gb);
    }
    return 0.01;
  }
  return std::min(1.0, site.se_free_gb / (8.0 * need_gb));
}

double storage_headroom(const JobSpec& spec, const SiteView& site) {
  return storage_headroom_for((spec.stage_in + spec.scratch).to_gb(), site);
}

/// Spec-signature hash combiner (boost-style mix; any deterministic
/// 64-bit mix works, the signature never leaves the process).
std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

std::uint64_t mix_str(std::uint64_t h, const std::string& s) {
  return mix64(h, std::hash<std::string>{}(s));
}

std::uint64_t mix_double(std::uint64_t h, double d) {
  return mix64(h, std::bit_cast<std::uint64_t>(d));
}

/// Cache columns kept live at once; concurrently active spec classes
/// beyond this just recompute (correct, merely slower).
constexpr std::size_t kRankColumns = 8;

}  // namespace

std::uint64_t ResourceBroker::spec_signature(const JobSpec& spec) const {
  // Covers every spec field the cached terms read: the eligibility
  // gates (required_app, runtime/slack, min CPUs, outbound) and the
  // inputs a cacheable policy may consult (preferences, data inputs,
  // catalog, footprint).  The policy object itself is part of the key
  // so re-attaching a broker with a new policy cannot serve old scores.
  std::uint64_t h = 0x5ca1ab1e0ddba11ull;
  h = mix64(h, reinterpret_cast<std::uintptr_t>(policy_.get()));
  h = mix_str(h, spec.vo);
  h = mix_str(h, spec.app);
  h = mix_str(h, spec.required_app);
  h = mix64(h, static_cast<std::uint64_t>(spec.runtime.ticks()));
  h = mix_double(h, spec.walltime_slack);
  h = mix64(h, static_cast<std::uint64_t>(spec.min_free_cpus));
  h = mix64(h, spec.need_outbound ? 1 : 0);
  h = mix64(h, static_cast<std::uint64_t>(spec.stage_in.count()));
  h = mix64(h, static_cast<std::uint64_t>(spec.scratch.count()));
  for (const auto& [site, weight] : spec.site_preference) {
    h = mix_str(h, site);
    h = mix_double(h, weight);
  }
  h = mix64(h, spec.site_preference.size());
  for (const std::string& lfn : spec.data_inputs) h = mix_str(h, lfn);
  h = mix64(h, spec.data_inputs.size());
  h = mix64(h, reinterpret_cast<std::uintptr_t>(spec.rls));
  return h;
}

ResourceBroker::RankColumn* ResourceBroker::resolve_column(std::uint64_t sig) {
  if (rank_columns_.empty()) rank_columns_.resize(kRankColumns);
  for (RankColumn& c : rank_columns_) {
    if (c.valid && c.sig == sig && c.epoch == view_epoch_) return &c;
  }
  RankColumn& c = rank_columns_[next_column_];
  next_column_ = (next_column_ + 1) % rank_columns_.size();
  c.sig = sig;
  c.epoch = view_epoch_;
  c.valid = true;
  c.entries.clear();
  return &c;
}

bool ResourceBroker::eligible_in(const JobSpec& spec, const SiteView& v,
                                 RankColumn* col) {
  if (col == nullptr) return meets_requirements(spec, v);
  RankEntry& e = col->entries.at_or_grow(v.id);
  if (!e.has_elig) {
    e.eligible = meets_requirements(spec, v);
    e.has_elig = true;
  }
  return e.eligible;
}

double ResourceBroker::policy_term(const JobSpec& spec, const SiteView& site,
                                   Time now) const {
  // The view's free-CPU count is stale within the TTL: submissions this
  // broker already has in flight there have not been seen by the GIIS.
  // Score against the net free slots so a burst of siblings does not
  // all pile onto the site that looked emptiest five minutes ago.
  if (const int inf = inflight(site.id); inf > 0) {
    SiteView adjusted = site;
    adjusted.free_cpus = std::max(0, site.free_cpus - inf);
    return policy_->score(spec, adjusted, now);
  }
  return policy_->score(spec, site, now);
}

double ResourceBroker::cached_policy_term(const JobSpec& spec,
                                          const SiteView& site,
                                          RankColumn* col, bool cache,
                                          Time now) {
  RankEntry* e =
      (cache && col != nullptr) ? &col->entries.at_or_grow(site.id) : nullptr;
  const std::uint64_t dirt = rank_dirt_.get(site.id, 0);
  if (e != nullptr && e->has_score && e->clean == dirt) {
    ++rank_cache_hits_;
    return e->policy_score;
  }
  ++rank_evals_;
  const double score = policy_term(spec, site, now);
  if (e != nullptr) {
    e->policy_score = score;
    e->clean = dirt;
    e->has_score = true;
  }
  return score;
}

void ResourceBroker::mark_rank_dirty(core::SiteId site) {
  if (site.valid()) ++rank_dirt_.at_or_grow(site);
}

void ResourceBroker::mark_rank_dirty(const std::string& site) {
  mark_rank_dirty(ids_->sites.find(site));
}

ResourceBroker::RankPass ResourceBroker::begin_pass(const JobSpec& spec,
                                                    Time now) {
  view(now);
  ++match_cycles_;
  RankPass pass;
  // Placement-aware ranking only with a ledger attached, so the
  // ledger-free broker keeps its established match log byte-for-byte.
  // The chain factor is site-independent, so one evaluation serves the
  // whole candidate ordering.
  if (ledger_ != nullptr) pass.chain = chain_headroom(spec);
  if (!spec.source_site.empty()) {
    pass.source = ids_->sites.find(spec.source_site);
  }
  if (cfg_.incremental_rank) {
    pass.sig = spec_signature(spec);
    pass.col = resolve_column(pass.sig);
    pass.cache = policy_->cacheable();
  }
  return pass;
}

double ResourceBroker::effective_score(const JobSpec& spec,
                                       const SiteView& site, Time now,
                                       const RankPass& pass) {
  double score = cached_policy_term(spec, site, pass.col, pass.cache, now);
  // The archive chain's headroom is site-independent (it scores the
  // stage-out destination, not the execution site), so it scales every
  // candidate equally: argmax order and weighted-draw proportions are
  // untouched, but the logged score reflects how starved the job's
  // archive options are.
  if (ledger_ != nullptr) {
    score *= storage_headroom(spec, site) * pass.chain;
  }
  // Data affinity: the site already holding this job's input data
  // (typically a sibling's intermediate product) is boosted so the
  // consumer chases its data instead of pricing a WAN transfer.  The
  // hint stands on its own: a provisionally co-located consumer carries
  // no folded stage-in bytes, yet its data is just as immobile.
  if (site.id == pass.source) score *= cfg_.source_affinity;
  // Matching from a frozen stale view: a uniform penalty, so argmax
  // order and stochastic draw proportions are untouched (and the rank
  // cache stays bit-identical -- the factor is applied outside it), but
  // logged scores show the decision was made on degraded information.
  if (view_stale_) score *= cfg_.stale_rank_penalty;
  return score;
}

double ResourceBroker::chain_headroom(const JobSpec& spec) const {
  if (spec.stage_out_site.empty() || spec.stage_out == Bytes::zero()) {
    return 1.0;
  }
  const double need_gb = spec.stage_out.to_gb();
  double best = -1.0;
  auto consider = [&](const std::string& se) {
    if (health_ != nullptr && health_->quarantined(se)) return;
    const std::int32_t idx =
        view_index_.get(ids_->sites.find(se), std::int32_t{-1});
    if (idx < 0) return;
    best = std::max(best, storage_headroom_for(need_gb, view_[idx]));
  };
  consider(spec.stage_out_site);
  for (const std::string& se : spec.stage_out_fallbacks) consider(se);
  // No chain SE in the view (archive outside the GIIS): neutral.
  return best < 0.0 ? 1.0 : best;
}

const SiteView* ResourceBroker::rank_and_pick(
    const JobSpec& spec, const std::vector<const SiteView*>& sites, Time now,
    const RankPass& pass, double* chosen_score) {
  if (sites.empty()) return nullptr;
  std::vector<double> scores;
  scores.reserve(sites.size());
  for (const SiteView* s : sites) {
    scores.push_back(effective_score(spec, *s, now, pass));
  }
  std::size_t pick = 0;
  if (policy_->stochastic()) {
    std::vector<double> weights = scores;
    for (double& w : weights) w = std::max(w, 1e-9);
    pick = rng_.weighted_index(weights);
  } else {
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[pick]) pick = i;  // ties: first (name order)
    }
  }
  if (chosen_score != nullptr) *chosen_score = scores[pick];
  return sites[pick];
}

std::optional<std::string> ResourceBroker::choose(const JobSpec& spec,
                                                  Time now) {
  const RankPass pass = begin_pass(spec, now);
  const auto healthy = [this](const SiteView& v) {
    return health_ == nullptr || !health_->quarantined(v.site);
  };
  std::vector<const SiteView*> pool;
  if (spec.candidates.empty()) {
    for (const SiteView& v : view_) {
      if (eligible_in(spec, v, pass.col) && healthy(v)) pool.push_back(&v);
    }
  } else {
    // Candidate membership as a bitset test instead of a linear
    // std::find over the name list per view site.  find (not intern) is
    // enough: a name this registry has never seen cannot be in view_.
    scratch_bits_.clear();
    for (const std::string& c : spec.candidates) {
      if (const core::SiteId id = ids_->sites.find(c); id.valid()) {
        scratch_bits_.set(id);
      }
    }
    for (const SiteView& v : view_) {
      if (scratch_bits_.test(v.id) && healthy(v)) pool.push_back(&v);
    }
  }
  const SiteView* picked = rank_and_pick(spec, pool, now, pass, nullptr);
  if (picked == nullptr) return std::nullopt;
  return picked->site;
}

void ResourceBroker::submit(JobSpec spec, gram::GramJob job,
                            BrokeredCallback done) {
  ++submissions_;
  auto p = std::make_shared<Pending>();
  p->spec = std::move(spec);
  p->job = std::move(job);
  p->done = std::move(done);
  p->created = sim_.now();
  try_match(p);
}

int ResourceBroker::gang_capacity(const SiteView& site) const {
  const int inf = inflight(site.id);
  // Free slots the view advertises, net of what this broker already has
  // in flight there, bounded by the per-site throttle.
  int cap = std::min(site.free_cpus - inf, cfg_.max_inflight_per_site - inf);
  // Load-ceiling headroom in burst units: submitting n gang members in
  // the same minute adds n * burst_weight to the gatekeeper's section
  // 6.4 burst term, so the site can absorb at most headroom/burst_weight
  // members before the broker's own ceiling would be crossed.
  const gram::Gatekeeper* gk =
      site.gk != nullptr ? site.gk : gatekeepers_.gatekeeper(site.site);
  const double burst_weight =
      gk != nullptr ? gk->config().burst_weight : 0.0;
  if (burst_weight > 0.0) {
    const double headroom = cfg_.load_ceiling - predicted_load(site);
    if (headroom <= 0.0) return 0;
    cap = std::min(cap, static_cast<int>(headroom / burst_weight));
  }
  return std::max(cap, 0);
}

GangPlacement ResourceBroker::match_gang(const GangSpec& gang, Time now) {
  GangPlacement out;
  out.member_sites.assign(gang.members.size(), std::string{});
  if (gang.members.empty()) return out;
  view(now);
  ++match_cycles_;

  // The level's aggregate disk footprint at one site: every member's
  // stage-in + scratch plus the intermediates the level parks for its
  // consumers.  This is what the gang lease will reserve.
  double need_gb = gang.intermediates.to_gb();
  for (const JobSpec& m : gang.members) {
    need_gb += (m.stage_in + m.scratch).to_gb();
  }

  const JobSpec& representative = gang.members.front();
  // Uniform levels -- every member in the representative's spec class,
  // the common case for DAG levels of identical production tasks --
  // amortize one eligibility/score column across the whole gang (and
  // share it with the members' own try_match passes).  Mixed levels
  // keep the per-member eligibility loop.
  RankColumn* col = nullptr;
  bool cache = false;
  bool uniform = false;
  if (cfg_.incremental_rank) {
    const std::uint64_t rep_sig = spec_signature(representative);
    uniform = true;
    for (std::size_t i = 1; i < gang.members.size() && uniform; ++i) {
      uniform = spec_signature(gang.members[i]) == rep_sig;
    }
    if (uniform) {
      col = resolve_column(rep_sig);
      cache = policy_->cacheable();
    }
  }

  struct Candidate {
    const SiteView* site;
    double score;
    int capacity;
  };
  std::vector<Candidate> pool;
  for (const SiteView& v : view_) {
    if ((v.gk != nullptr ? v.gk : gatekeepers_.gatekeeper(v.site)) ==
        nullptr) {
      continue;
    }
    // Quarantine beats any rank score: a black hole's deceptively empty
    // queue must not win the whole level.
    if (health_ != nullptr && health_->quarantined(v.site)) continue;
    bool all_eligible = true;
    if (uniform) {
      all_eligible = eligible_in(representative, v, col);
    } else {
      for (const JobSpec& m : gang.members) {
        if (!meets_requirements(m, v)) {
          all_eligible = false;
          break;
        }
      }
    }
    if (!all_eligible) continue;
    const int cap = gang_capacity(v);
    if (cap <= 0) continue;
    // Rank sites, not jobs: the policy scores the representative member
    // against the view net of in-flight bindings, then the whole
    // level's footprint sets the storage headroom (ledger-gated like
    // per-job ranking, so the ledger-free broker stays byte-identical).
    double score = cached_policy_term(representative, v, col, cache, now);
    if (ledger_ != nullptr) score *= storage_headroom_for(need_gb, v);
    pool.push_back({&v, score, cap});
  }
  if (pool.empty()) return out;

  const int width = static_cast<int>(gang.members.size());

  // Whole fit: the best site whose capacity covers the gang width takes
  // every member.  Deterministic argmax; ties go to the first candidate
  // in name order (view_ is name-sorted), matching rank_and_pick.
  const Candidate* whole = nullptr;
  for (const Candidate& c : pool) {
    if (c.capacity < width) continue;
    if (whole == nullptr || c.score > whole->score) whole = &c;
  }
  if (whole != nullptr) {
    out.placed = true;
    out.primary = whole->site->site;
    out.primary_members = gang.members.size();
    for (auto& s : out.member_sites) s = out.primary;
    return out;
  }

  // Split fallback (policy documented on GangPlacement): order sites by
  // score (ties by name -- stable sort preserves the name order the
  // pool was built in), then assign members greedily in member order,
  // each site taking up to its capacity.
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.score > b.score;
                   });
  std::size_t next = 0;
  std::size_t best_count = 0;
  for (const Candidate& c : pool) {
    if (next >= gang.members.size()) break;
    const std::size_t take =
        std::min<std::size_t>(static_cast<std::size_t>(c.capacity),
                              gang.members.size() - next);
    if (take == 0) continue;
    for (std::size_t i = 0; i < take; ++i) {
      out.member_sites[next++] = c.site->site;
    }
    // Primary = most members; ties to the better-ranked (earlier) site.
    if (take > best_count) {
      best_count = take;
      out.primary = c.site->site;
      out.primary_members = take;
    }
  }
  out.placed = next > 0;
  out.split = out.placed;
  return out;
}

void ResourceBroker::submit_gang(GangSpec gang,
                                 std::vector<gram::GramJob> jobs,
                                 GangMemberCallback done) {
  const Time now = sim_.now();
  const GangPlacement placement = match_gang(gang, now);
  ++gang_matches_;
  publish_counter(metric::kGangMatches, gang_matches_);
  if (placement.split) {
    ++gang_splits_;
    publish_counter(metric::kGangSplits, gang_splits_);
  }
  if (accounting_ != nullptr && !gang.members.empty()) {
    accounting_->insert_gang({gang_matches_, now, gang.members.front().vo,
                              gang.gang_id, placement.primary,
                              gang.members.size(), placement.placed,
                              placement.split, gang.intermediates});
  }

  auto state = std::make_shared<GangState>();
  state->id = gang.gang_id;
  state->outstanding = static_cast<int>(gang.members.size());

  // Gang-scoped lease: reserve the level's intermediate products at the
  // primary before any member binds.  On a split only the primary's
  // pro-rated share is reserved -- off-primary intermediates cross the
  // WAN regardless, so holding primary disk for them would just starve
  // other gangs.  kNoStorage (unmanaged SE) and kDiskFull both degrade
  // to an unleased gang rather than blocking the level.
  if (placement.placed && ledger_ != nullptr && cfg_.placement_leases &&
      gang.intermediates > Bytes::zero()) {
    Bytes share = gang.intermediates;
    if (placement.split) {
      share = Bytes::of(gang.intermediates.count() *
                        static_cast<std::int64_t>(placement.primary_members) /
                        static_cast<std::int64_t>(gang.members.size()));
    }
    if (share > Bytes::zero()) {
      const auto res = ledger_->acquire(placement.primary, share,
                                        "gang:" + gang.gang_id, {}, now);
      if (res.leased()) {
        state->lease = res.lease;
        // Track the gang so a breaker trip at the primary can return the
        // reservation mid-flight.
        live_gangs_.emplace_back(placement.primary, state);
      }
    }
  }

  auto member_done = std::make_shared<GangMemberCallback>(std::move(done));
  for (std::size_t i = 0; i < gang.members.size(); ++i) {
    ++submissions_;
    auto p = std::make_shared<Pending>();
    p->spec = std::move(gang.members[i]);
    if (i < jobs.size()) p->job = std::move(jobs[i]);
    p->created = now;
    p->gang = state;
    p->gang_site = placement.member_sites[i];
    p->done = [member_done, i](const BrokeredResult& r) {
      (*member_done)(i, r);
    };
    // Each member is its own model-checker actor ("gm:<gang>:<i>"); the
    // assigned site is a shared resource key, so members co-located on
    // one site -- and anything else touching that site, like a breaker
    // trip -- stay mutually dependent while members on different sites
    // commute.
    const std::string& site = placement.member_sites[i];
    sim::Simulation::ScopedTag tag{
        sim_,
        "gm:" + gang.gang_id + ":" + std::to_string(i) + "|site:" +
            (site.empty() ? "unbound" : site),
        sim::Simulation::ScopedTag::kReplace};
    try_match(p);
  }
}

double ResourceBroker::predicted_load(const SiteView& site) const {
  // Weight in-flight submissions by their jobmanager staging factor, the
  // same 2-4x the gatekeeper's own load model applies: a job archiving
  // gigabytes through its jobmanager loads the gatekeeper harder than a
  // no-staging probe, and the view's MonALISA sample hasn't seen either.
  const double staged = inflight_staging_.get(site.id, 0.0);
  return site.gatekeeper_load + cfg_.inflight_load_weight * staged;
}

int ResourceBroker::inflight(const std::string& site) const {
  return inflight_.get(ids_->sites.find(site), 0);
}

std::vector<placement::LeaseId> ResourceBroker::live_gang_leases() const {
  std::vector<placement::LeaseId> out;
  for (const auto& [site, weak] : live_gangs_) {
    if (auto gang = weak.lock(); gang != nullptr && gang->lease != 0) {
      out.push_back(gang->lease);
    }
  }
  return out;
}

void ResourceBroker::build_candidate_bits(Pending& p) {
  // Intern (not find): a candidate the GIIS has not shown yet must still
  // get a bit, so it is recognised when a later refresh brings it into
  // the view.  Registration order stays deterministic -- the planner
  // emits candidate lists in the same order every run.
  for (const std::string& c : p.spec.candidates) {
    p.candidate_bits.set(ids_->sites.intern(c));
  }
  p.candidate_distinct = p.candidate_bits.count();
  for (const std::string& c : p.spec.deferred_candidates) {
    p.deferred_bits.set(ids_->sites.intern(c));
  }
  p.bits_built = true;
}

std::vector<const SiteView*> ResourceBroker::admissible(
    Pending& p, Time now, const RankPass& pass, bool* any_deferred) {
  view(now);
  // A GIIS outage past the staleness bound empties the pool, but the
  // sites are not gone -- the index is.  Defer so the job waits for the
  // index to recover instead of failing with kSubmitRejected.
  if (view_outage_) *any_deferred = true;
  std::vector<const SiteView*> out;
  auto consider = [&](const SiteView& v) {
    if (auto it = p.excluded_until.find(v.site);
        it != p.excluded_until.end() && now < it->second) {
      *any_deferred = true;
      return;
    }
    // Quarantined sites defer rather than disqualify: the breaker
    // re-admits them after probation, so the job waits for the grid to
    // heal instead of failing with "no eligible site".
    if (health_ != nullptr && health_->quarantined(v.site)) {
      *any_deferred = true;
      return;
    }
    if (inflight(v.id) >= cfg_.max_inflight_per_site ||
        predicted_load(v) >= cfg_.load_ceiling) {
      *any_deferred = true;
      return;
    }
    if ((v.gk != nullptr ? v.gk : gatekeepers_.gatekeeper(v.site)) ==
        nullptr) {
      return;
    }
    out.push_back(&v);
  };
  if (p.spec.candidates.empty()) {
    for (const SiteView& v : view_) {
      if (eligible_in(p.spec, v, pass.col)) consider(v);
    }
  } else {
    if (!p.bits_built) build_candidate_bits(p);
    std::size_t found = 0;
    for (const SiteView& v : view_) {
      if (p.candidate_bits.test(v.id)) {
        ++found;
        consider(v);
      } else if (p.deferred_bits.test(v.id)) {
        // The planner parked this site because it was quarantined at
        // plan time.  Re-admission is deterministic: the first match
        // attempt after the breaker closes sees it as a full candidate
        // again; until then it only keeps the job deferring.
        if (health_ != nullptr && health_->quarantined(v.site)) {
          *any_deferred = true;
        } else {
          consider(v);
        }
      }
    }
    // Candidates missing from the view (GRIS outage past TTL) may return;
    // treat them as deferred rather than gone.
    if (found < p.candidate_distinct) *any_deferred = true;
  }
  return out;
}

void ResourceBroker::record_match(const Pending& p, const SiteView& site,
                                  double score, std::size_t pool_size) {
  MatchDecision d;
  d.seq = static_cast<std::uint64_t>(log_.size()) + 1;
  d.at = sim_.now();
  d.vo = p.spec.vo;
  d.app = p.spec.app;
  d.policy = policy_->name();
  d.site = site.site;
  d.candidates = pool_size;
  d.rebind = p.rebinds;
  d.score = score;
  log_.push_back(d);
  publish_counter(metric::kMatches, log_.size());
  if (view_stale_) {
    ++stale_matches_;
    publish_counter(metric::kStaleMatches, stale_matches_);
  }
  if (accounting_ != nullptr) {
    accounting_->insert_match({d.seq, d.at, d.vo, d.app, d.policy, d.site,
                               d.candidates, d.rebind, d.score});
  }
}

void ResourceBroker::try_match(const std::shared_ptr<Pending>& p) {
  const Time now = sim_.now();
  const RankPass pass = begin_pass(p->spec, now);
  bool any_deferred = false;
  const auto pool = admissible(*p, now, pass, &any_deferred);

  if (pool.empty()) {
    if (any_deferred) {
      if (cfg_.hold.budget_exhausted(now - p->created)) {
        // Saturated too long: surface as an overload, the failure class
        // the broker exists to prevent (or as disk-full when the last
        // defer was a full destination SE).
        BrokeredResult r;
        // Storage-blocked jobs were matchable; the placement layer is
        // what refused them, so the failure attributes as a site
        // (storage) problem, not as "no eligible site".
        r.matched = p->storage_blocked || p->rebinds > 0;
        r.rebinds = p->rebinds;
        r.holds = p->holds;
        r.gram = p->last;
        r.gram.status = p->storage_blocked
                            ? gram::GramStatus::kDiskFull
                            : gram::GramStatus::kGatekeeperOverloaded;
        r.gram.submitted = p->created;
        r.gram.finished = now;
        finish(p, std::move(r));
        return;
      }
      hold(p);
      return;
    }
    // No eligible site at all: permanent, the kNoEligibleSite analogue.
    BrokeredResult r;
    r.matched = false;
    r.rebinds = p->rebinds;
    r.holds = p->holds;
    r.gram.status = gram::GramStatus::kSubmitRejected;
    r.gram.submitted = p->created;
    r.gram.finished = now;
    finish(p, std::move(r));
    return;
  }

  // Secure the stage-out destination before binding: a full destination
  // SE becomes a match-time wait here instead of a disk-full stage-out
  // failure after the compute cycles are spent.
  if (!ensure_lease(*p, now)) {
    ++storage_holds_;
    p->storage_blocked = true;
    if (cfg_.hold.budget_exhausted(now - p->created)) {
      BrokeredResult r;
      r.matched = true;  // matchable; storage refused it (see above)
      r.rebinds = p->rebinds;
      r.holds = p->holds;
      r.gram = p->last;
      r.gram.status = gram::GramStatus::kDiskFull;
      r.gram.submitted = p->created;
      r.gram.finished = now;
      finish(p, std::move(r));
      return;
    }
    hold(p);
    return;
  }
  p->storage_blocked = false;

  double score = 0.0;
  const SiteView* picked = nullptr;
  // Gang members pin their first match to the site the gang placement
  // assigned, provided it is still admissible (it can saturate between
  // match_gang and this submission).  The pin is one-shot: re-matches
  // after a transient failure rank freely, since the failure already
  // broke the co-location.
  if (!p->gang_site.empty()) {
    const core::SiteId pin = ids_->sites.find(p->gang_site);
    for (const SiteView* s : pool) {
      if (s->id == pin) {
        picked = s;
        score = effective_score(p->spec, *s, now, pass);
        break;
      }
    }
    p->gang_site.clear();
  }
  if (picked == nullptr) {
    picked = rank_and_pick(p->spec, pool, now, pass, &score);
  }
  record_match(*p, *picked, score, pool.size());

  p->bound_site = picked->site;
  p->bound_id = picked->id;
  ++inflight_.at_or_grow(picked->id);
  inflight_staging_.at_or_grow(picked->id) +=
      gram::staging_load_factor(p->spec.stage_in, p->spec.stage_out);
  // The binding changed the site's net free slots: cached policy scores
  // there are stale for every spec class.
  mark_rank_dirty(picked->id);
  gram::Gatekeeper* gk =
      picked->gk != nullptr ? picked->gk : gatekeepers_.gatekeeper(picked->site);
  auto self = p;
  condor_g_.submit_to(*gk, p->job, [this, self](const gram::GramResult& r) {
    on_result(self, r);
  });
}

void ResourceBroker::on_result(const std::shared_ptr<Pending>& p,
                               const gram::GramResult& r) {
  if (p->bound_id.valid()) {
    if (int& n = inflight_.at_or_grow(p->bound_id); n > 0) --n;
    double& s = inflight_staging_.at_or_grow(p->bound_id);
    s -= gram::staging_load_factor(p->spec.stage_in, p->spec.stage_out);
    if (s <= 1e-9) s = 0.0;  // clamp drift exactly as the erase did
    // The freed slot invalidates the site's cached policy scores.
    mark_rank_dirty(p->bound_id);
  }
  // A slot freed: give held jobs a prompt re-match.
  if (!waiting_.empty() && !kick_scheduled_) {
    kick_scheduled_ = true;
    // "rb" marks every broker timer as touching the shared broker state
    // (waiting_ queue, in-flight counters): the model checker may permute
    // a kick against another actor's retry, but never declare them
    // independent.
    sim::Simulation::ScopedTag tag{sim_, "rb",
                                   sim::Simulation::ScopedTag::kAppend};
    sim_.schedule_in(Time::seconds(1), [this] { kick_waiting(); });
  }

  // The submission resolved, so the lease's job is done: consume it
  // (output archived where the job really ran) or give the space back.
  // Re-matches acquire a fresh lease, so reserved space never leaks
  // across rebinds.
  drop_lease(*p, r.ok());

  report_health(*p, r);

  // Once the breaker has condemned the site, an environment kill or a
  // stage-out failure there is the site's fault, not the job's: treat it
  // as retryable even though the status is normally terminal.  Note the
  // ordering above -- report_health runs first, so the very failure that
  // trips the breaker already re-matches instead of dying.
  const bool site_fault_at_quarantined =
      health_ != nullptr && health_->quarantined(p->bound_site) &&
      (r.status == gram::GramStatus::kEnvironmentError ||
       r.status == gram::GramStatus::kStageOutFailed ||
       r.status == gram::GramStatus::kJobKilled);
  if (r.ok() ||
      (!gram::is_transient(r.status) && !site_fault_at_quarantined)) {
    BrokeredResult out;
    out.gram = r;
    out.site = p->bound_site;
    // Where the lease (and hence the archived output) actually landed:
    // RLS registration must follow this, not the spec's primary SE.
    if (r.ok()) out.archive_site = p->resolved_se;
    out.rebinds = p->rebinds;
    out.holds = p->holds;
    out.matched = true;
    finish(p, std::move(out));
    return;
  }

  // Transient: cool the site off for this job and re-match elsewhere.
  // Failing at a site the breaker has since quarantined is the grid's
  // fault, not the job's: the re-match is free, so a black hole cannot
  // drain a job's whole rebind budget before the breaker trips.
  const bool free_rebind =
      health_ != nullptr && health_->quarantined(p->bound_site);
  p->last = r;
  p->excluded_until[p->bound_site] = sim_.now() + cfg_.failed_site_cooloff;
  if (!free_rebind && !cfg_.rebind.allows(p->rebinds)) {
    BrokeredResult out;
    out.gram = r;
    out.site = p->bound_site;
    out.rebinds = p->rebinds;
    out.holds = p->holds;
    out.matched = true;
    finish(p, std::move(out));
    return;
  }
  if (!free_rebind) ++p->rebinds;
  ++rebinds_;
  publish_counter(metric::kRebinds, rebinds_);
  const double backoff = cfg_.rebind.delay_seconds(p->rebinds);
  auto self = p;
  sim::Simulation::ScopedTag tag{sim_, "rb",
                                 sim::Simulation::ScopedTag::kAppend};
  sim_.schedule_in(Time::seconds(backoff), [this, self] { try_match(self); });
}

void ResourceBroker::report_health(const Pending& p,
                                   const gram::GramResult& r) {
  if (health_ == nullptr) return;
  const Time now = sim_.now();
  const std::string& site = p.bound_site;
  const Time requested = p.job.request.requested_walltime;
  switch (r.status) {
    case gram::GramStatus::kCompleted:
      health_->report(site, health::Service::kSubmit, true, now);
      health_->report_batch(site, true, r.submitted, r.finished, requested,
                            now);
      break;
    case gram::GramStatus::kGatekeeperDown:
    case gram::GramStatus::kGatekeeperOverloaded:
      health_->report(site, health::Service::kSubmit, false, now);
      break;
    case gram::GramStatus::kStageInFailed:
    case gram::GramStatus::kStageOutFailed:
      health_->report(site, health::Service::kTransfer, false, now);
      break;
    case gram::GramStatus::kDiskFull:
      // The full disk is the archive SE's, not the execution site's:
      // attribute the failure to the SE the stage-out actually targeted
      // (the resolved chain SE, or the primary when unleased).
      health_->report(!p.resolved_se.empty() ? p.resolved_se
                      : !p.spec.stage_out_site.empty()
                          ? p.spec.stage_out_site
                          : site,
                      health::Service::kStorage, false, now);
      break;
    case gram::GramStatus::kEnvironmentError:
      // The black-hole signature: the site accepts the job, then the
      // environment kills it.  Unconditionally a batch-service failure
      // (the job may run its full slot before dying, so the fast-fail
      // test would miss it).
      health_->report(site, health::Service::kBatch, false, now);
      break;
    case gram::GramStatus::kJobKilled:
      health_->report_batch(site, false, r.submitted, r.finished, requested,
                            now);
      break;
    default:
      // Application bugs, auth/proxy problems, and submit-side rejections
      // say nothing about the site's health.
      break;
  }
}

void ResourceBroker::hold(const std::shared_ptr<Pending>& p) {
  ++p->holds;
  ++holds_;
  publish_counter(metric::kHolds, holds_);
  waiting_.push_back(p);
  // Per-job retry with deterministic jitter: a saturated grid holds many
  // jobs in the same tick, and a shared timer would re-release them as
  // one thundering herd against the first site to free a slot.
  const double delay = cfg_.hold.delay_seconds(1, ++hold_seq_ ^ cfg_.rng_seed);
  auto self = p;
  sim::Simulation::ScopedTag tag{sim_, "rb",
                                 sim::Simulation::ScopedTag::kAppend};
  sim_.schedule_in(Time::seconds(delay), [this, self] { retry_held(self); });
}

void ResourceBroker::retry_held(const std::shared_ptr<Pending>& p) {
  if (mc_seed_stale_hold_release_ && p->lease != 0 && ledger_ != nullptr) {
    // Seeded historical bug (see test_seed_stale_hold_release): "clean
    // up" the job's lease before re-matching.  Held jobs hold no lease,
    // so the canonical event order never trips this -- but when a
    // completion kick re-matched the job earlier in the same tick, this
    // releases the lease its in-flight submission depends on.
    ledger_->release(p->lease, sim_.now());
  }
  // A completion kick may have drained it already.
  auto it = std::find(waiting_.begin(), waiting_.end(), p);
  if (it == waiting_.end()) return;
  waiting_.erase(it);
  try_match(p);
}

void ResourceBroker::on_site_quarantined(const std::string& site) {
  // Health transitions invalidate the site's cached rank terms (the
  // breaker outcome may coincide with load/lease changes the cache has
  // not seen).
  mark_rank_dirty(site);
  // Held jobs were mostly deferred by saturation elsewhere; with a site
  // freshly removed the distribution changed, so re-match them promptly
  // (and jobs bound for the quarantined site re-rank elsewhere).
  if (!waiting_.empty() && !kick_scheduled_) {
    kick_scheduled_ = true;
    sim::Simulation::ScopedTag tag{sim_, "rb",
                                   sim::Simulation::ScopedTag::kAppend};
    sim_.schedule_in(Time::seconds(1), [this] { kick_waiting(); });
  }
  // Return gang-scoped intermediate reservations parked at the site: the
  // level's co-location is broken anyway, and holding quarantined disk
  // would starve the placement ledger for the whole outage.
  for (auto it = live_gangs_.begin(); it != live_gangs_.end();) {
    auto gang = it->second.lock();
    if (gang == nullptr) {
      it = live_gangs_.erase(it);
      continue;
    }
    if (it->first == site && gang->lease != 0) {
      const placement::LeaseId lease = gang->lease;
      gang->lease = 0;
      if (ledger_ != nullptr) ledger_->release(lease, sim_.now());
      it = live_gangs_.erase(it);
      continue;
    }
    ++it;
  }
}

void ResourceBroker::on_site_readmitted(const std::string& site) {
  // Re-admission only touches the cache: deferred jobs re-probe on
  // their own hold timers, so scheduling a kick here would perturb
  // established event streams for no admission-latency gain.
  mark_rank_dirty(site);
}

void ResourceBroker::kick_waiting() {
  kick_scheduled_ = false;
  std::deque<std::shared_ptr<Pending>> batch;
  batch.swap(waiting_);
  for (auto& p : batch) try_match(p);
}

void ResourceBroker::finish(const std::shared_ptr<Pending>& p,
                            BrokeredResult result) {
  drop_lease(*p, false);  // no-op unless a path left one behind
  leave_gang(*p);
  if (p->done) {
    auto done = std::move(p->done);
    p->done = nullptr;
    done(result);
  }
}

void ResourceBroker::leave_gang(Pending& p) {
  if (p.gang == nullptr) return;
  auto gang = std::move(p.gang);
  p.gang = nullptr;
  if (--gang->outstanding > 0) return;
  // Last member out: release the gang-scoped intermediates reservation.
  // Clearing `lease` first makes the release single-shot even if a
  // future path ever re-enters (success, failure, hold-expiry, and
  // rescue all drain through finish -> leave_gang).
  if (const placement::LeaseId lease = gang->lease; lease != 0) {
    gang->lease = 0;
    if (ledger_ != nullptr) ledger_->release(lease, sim_.now());
  }
}

bool ResourceBroker::ensure_lease(Pending& p, Time now) {
  p.job.stage_out_srm = nullptr;
  p.job.stage_out_reservation = 0;
  p.resolved_se.clear();
  if (ledger_ == nullptr || !cfg_.placement_leases) return true;
  if (p.spec.stage_out_site.empty() || p.spec.stage_out == Bytes::zero()) {
    return true;  // no placement intent
  }
  // The placement intent is a failover chain: primary SE first, then
  // the plan-time fallbacks in preference order.  The ledger resolves
  // it to the first SE with room.
  std::vector<std::string> chain;
  chain.reserve(1 + p.spec.stage_out_fallbacks.size());
  chain.push_back(p.spec.stage_out_site);
  for (const std::string& se : p.spec.stage_out_fallbacks) {
    chain.push_back(se);
  }
  const auto res =
      ledger_->acquire(chain, p.spec.stage_out, p.spec.app,
                       p.spec.output_lfns, now);
  // SRM refusals are the storage-service health signal -- attributed to
  // the SEs that actually refused, which on a fallthrough is not the SE
  // that ended up holding the lease.
  if (health_ != nullptr) {
    for (const std::string& se : res.refused_sites) {
      health_->report(se, health::Service::kStorage, false, now);
    }
  }
  switch (res.status) {
    case placement::AcquireStatus::kNoStorage:
      return true;  // unmanaged archive: proceed unleased (status quo)
    case placement::AcquireStatus::kDiskFull:
      return false;
    case placement::AcquireStatus::kLeased:
      if (health_ != nullptr) {
        health_->report(res.site, health::Service::kStorage, true, now);
      }
      break;
  }
  p.lease = res.lease;
  p.resolved_se = res.site;
  // The lease consumed SE headroom the cached rank terms may reflect.
  mark_rank_dirty(res.site);
  p.job.stage_out_srm = ledger_->srm_for(res.lease);
  if (const placement::StageOutLease* l = ledger_->find(res.lease)) {
    p.job.stage_out_reservation = l->reservation;
  }
  // Repoint the stage-out endpoints at the SE the chain resolved to:
  // the gatekeeper archives wherever the lease lives, so a fallthrough
  // needs no downstream special-casing.
  if (gridftp::GridFtpServer* ftp = ledger_->ftp_for(res.lease)) {
    p.job.stage_out_dest = ftp;
  }
  if (srm::DiskVolume* vol = ledger_->volume_for(res.lease)) {
    p.job.stage_out_volume = vol;
  }
  return true;
}

void ResourceBroker::drop_lease(Pending& p, bool consumed) {
  if (p.lease == 0) return;
  if (ledger_ != nullptr) {
    if (consumed) {
      ledger_->consume(p.lease, p.bound_site, sim_.now());
    } else {
      ledger_->release(p.lease, sim_.now());
    }
    // Returned (or consumed) SE space: invalidate the SE's cached terms.
    mark_rank_dirty(p.resolved_se);
  }
  p.lease = 0;
  p.job.stage_out_srm = nullptr;
  p.job.stage_out_reservation = 0;
}

void ResourceBroker::publish_counter(const char* name, std::uint64_t value) {
  if (bus_ == nullptr) return;
  bus_->publish(bus_label_, name, sim_.now(), static_cast<double>(value));
}

std::string ResourceBroker::serialize_match_log() const {
  std::string out;
  out.reserve(log_.size() * 96);
  char buf[64];
  for (const MatchDecision& d : log_) {
    out += std::to_string(d.seq);
    std::snprintf(buf, sizeof(buf), "|t=%.3f", d.at.to_seconds());
    out += buf;
    out += '|';
    out += d.vo;
    out += '|';
    out += d.app;
    out += '|';
    out += d.policy;
    out += '|';
    out += d.site;
    std::snprintf(buf, sizeof(buf), "|pool=%zu|rebind=%d|score=%.6f\n",
                  d.candidates, d.rebind, d.score);
    out += buf;
  }
  return out;
}

}  // namespace grid3::broker
