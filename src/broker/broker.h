// Grid-wide resource broker: the grid-level scheduler Grid2003 lacked.
//
// Sits between the Pegasus planner / Condor-G submitters and the GRAM
// gatekeepers (the role the EU DataGrid Resource Broker played for the
// CMS testbeds).  Three responsibilities:
//
//  1. View: a TTL-cached picture of every site, assembled from the MDS
//     GIIS (GLUE attributes: free CPUs, queue depth, walltime limits,
//     SE free space) joined with the MonALISA repository's gatekeeper
//     1-minute load gauge (the section 6.4 load model).
//  2. Matchmaking: rank eligible sites with a pluggable RankPolicy and
//     bind the job -- weighted draw for stochastic policies (the
//     favorite-sites status quo), deterministic argmax otherwise.
//     Every decision is appended to the match log and mirrored into the
//     ACDC accounting database for placement analysis.
//  3. Late binding: jobs are matched at dispatch time, re-matched onto a
//     different site when a submission fails transiently (exponential
//     backoff, per-job site cool-off), and throttled per gatekeeper so
//     brokered submissions cannot drive the section 6.4 load model past
//     its overload knee; jobs with no admissible site wait inside the
//     broker instead of piling onto a saturated gatekeeper.
//  4. Gang matching: the sibling jobs of one DAG level (CMS/ATLAS
//     production stages whose outputs feed a common merge) are matched
//     as a unit.  match_gang ranks *sites* by whether the whole gang
//     fits -- free slots against the gang width, storage headroom for
//     the level's aggregate intermediates, and the predicted gatekeeper
//     burst of submitting the whole level at once -- and binds every
//     member to one site so intermediate products stay on local shared
//     disk instead of crossing the WAN to wherever each sibling
//     scattered.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/rank_policy.h"
#include "core/ids.h"
#include "gram/condor_g.h"
#include "health/health.h"
#include "mds/giis.h"
#include "monitoring/acdc.h"
#include "monitoring/bus.h"
#include "monitoring/monalisa.h"
#include "placement/ledger.h"
#include "sim/simulation.h"
#include "util/retry.h"
#include "util/rng.h"

namespace grid3::broker {

/// Resolves site names to gatekeepers.  core::Grid3 implements this with
/// the same member that serves workflow::SiteServices.
class GatekeeperDirectory {
 public:
  virtual ~GatekeeperDirectory() = default;
  [[nodiscard]] virtual gram::Gatekeeper* gatekeeper(
      const std::string& site) = 0;
};

struct BrokerConfig {
  std::string name = "grid3-broker";
  /// Site-view refresh period (staleness the matchmaker tolerates).
  Time view_ttl = Time::minutes(5);
  /// Late binding: the re-match schedule after transient failures.
  /// `max_retries` rebinds per job, first delay `base`, growing by
  /// `factor` per further rebind.
  util::RetryPolicy rebind{.base = Time::minutes(2),
                           .factor = 2.0,
                           .max_retries = 4};
  /// How long a failed site stays excluded for the job that failed there.
  Time failed_site_cooloff = Time::minutes(15);
  /// Per-gatekeeper throttle: max broker submissions in flight per site.
  int max_inflight_per_site = 60;
  /// Predicted 1-minute load above which no further jobs are bound to a
  /// gatekeeper (kept below the ~400 overload knee).
  double load_ceiling = 320.0;
  /// Predicted load contribution per staging-factor unit of in-flight
  /// brokered submissions (each job contributes its own 1-4x
  /// gram::staging_load_factor, matching the gatekeeper's load model).
  double inflight_load_weight = 0.45;
  /// Held jobs re-attempt matching on this schedule (also kicked
  /// whenever an in-flight submission completes): period `base`,
  /// stretched per hold by up to `jitter` fraction with u in [0, 1)
  /// hashed from a monotone hold counter (no RNG draw, so
  /// stochastic-policy match logs are unperturbed -- simultaneous holds
  /// across a gang re-probe a freed SE staggered instead of in
  /// lockstep; jitter 0 disables).  A job held past `deadline` fails
  /// back to the submitter.
  util::RetryPolicy hold{.base = Time::minutes(5),
                         .jitter = 0.25,
                         .deadline = Time::hours(12)};
  /// Acquire a stage-out lease (SRM space at the destination SE) before
  /// binding jobs that carry a placement intent; false = the no-lease
  /// baseline (disk-full discovered at stage-out time).  Only effective
  /// when a PlacementLedger is attached.
  bool placement_leases = true;
  /// Rank boost for the site named by JobSpec::source_site (where the
  /// job's staged input physically sits): consumers chase their data.
  /// 1.0 disables the affinity.
  double source_affinity = 4.0;
  /// Incremental rank maintenance: cache each site's policy score and
  /// eligibility per spec class and invalidate by delta events (view
  /// refresh, in-flight binding changes, lease and health transitions)
  /// instead of re-scoring every candidate on every match.  Cached and
  /// fresh scores are bit-identical by construction, so match logs do
  /// not change; false forces the full per-match rescore (the
  /// equivalence baseline).
  bool incremental_rank = true;
  /// Graceful degradation under a GIIS outage: when the index answers
  /// nothing (down, or every snapshot aged out), keep matching against
  /// the last-known-good view for up to this long past its refresh
  /// instead of emptying the pool.  Matches made from the frozen view
  /// are counted as broker.stale_matches.  Once the view is older than
  /// this bound, the broker stops trusting it and *holds* new work
  /// (defer-not-fail) until the index recovers, rather than matching
  /// blind or failing jobs with kSubmitRejected.  Time::zero() disables
  /// the freeze entirely (legacy behaviour: empty view, rejected jobs).
  Time stale_view_max = Time::minutes(30);
  /// Rank multiplier applied to every site while matching from a frozen
  /// stale view (uniform, so argmax order and stochastic draw
  /// proportions are unchanged -- it only shows up in logged scores).
  double stale_rank_penalty = 0.5;
  std::uint64_t rng_seed = 0xb20ce5;
};

/// Counter metric names the broker publishes per VO (site key = the
/// label passed to set_metric_bus), plottable next to gatekeeper load.
namespace metric {
inline constexpr const char* kMatches = "broker.matches";
inline constexpr const char* kRebinds = "broker.rebinds";
inline constexpr const char* kHolds = "broker.holds";
inline constexpr const char* kGangMatches = "broker.gang_matches";
inline constexpr const char* kGangSplits = "broker.gang_splits";
inline constexpr const char* kStaleMatches = "broker.stale_matches";
}  // namespace metric

/// One DAG level submitted for co-located placement: the members'
/// specs plus the level's aggregate intermediate-product volume.
struct GangSpec {
  std::string gang_id;
  /// Bytes the level parks on the execution site's disk for its
  /// consumers (the merge's inputs) -- the gang lease is sized from it.
  Bytes intermediates;
  std::vector<JobSpec> members;
};

/// Where match_gang decided the gang goes.
///
/// Whole placement binds every member to `primary`.  When no site can
/// host the gang whole, the documented split-fallback policy applies:
/// admissible sites are ordered by rank score (ties broken by name),
/// and members are assigned greedily in member order, each site taking
/// as many members as its free capacity admits (free slots net of the
/// broker's own in-flight bindings, the per-site throttle, and the
/// load-ceiling headroom expressed in burst units).  `primary` is then
/// the site hosting the most members (ties: the better-ranked site),
/// and the gang lease shrinks to the primary's pro-rated share of the
/// intermediates, since off-primary products must cross the WAN anyway.
/// Members no site can take are left unassigned (empty string) and fall
/// back to ordinary per-job late binding.
struct GangPlacement {
  bool placed = false;  ///< at least one member has a site
  bool split = false;   ///< the gang did not fit whole
  std::string primary;  ///< site hosting the largest share
  std::vector<std::string> member_sites;  ///< per member; "" = unassigned
  /// Members assigned to `primary` (sizes the pro-rated gang lease).
  std::size_t primary_members = 0;
};

/// One append-only match-log entry (also mirrored into ACDC).
struct MatchDecision {
  std::uint64_t seq = 0;
  Time at;
  std::string vo;
  std::string app;
  std::string policy;
  std::string site;          ///< chosen execution site
  std::size_t candidates = 0;  ///< admissible sites at decision time
  int rebind = 0;            ///< 0 = initial match, n = nth re-match
  double score = 0.0;
};

struct BrokeredResult {
  gram::GramResult gram;
  std::string site;   ///< final execution site (empty when never matched)
  /// SE the stage-out lease resolved to (empty when the job ran
  /// unleased).  Differs from the spec's stage_out_site when the
  /// placement chain fell through -- RLS registration must follow this
  /// site, because that is where the bytes landed.
  std::string archive_site;
  int rebinds = 0;
  int holds = 0;
  bool matched = false;  ///< false = no eligible site existed
  [[nodiscard]] bool ok() const { return matched && gram.ok(); }
};

using BrokeredCallback = std::function<void(const BrokeredResult&)>;

/// Per-member completion callback for submit_gang: fires exactly once
/// per member with the member's index in the GangSpec.
using GangMemberCallback =
    std::function<void(std::size_t member, const BrokeredResult&)>;

class ResourceBroker {
 public:
  ResourceBroker(sim::Simulation& sim, BrokerConfig cfg,
                 std::unique_ptr<RankPolicy> policy, const mds::Giis& giis,
                 const monitoring::MonalisaRepository* monitor,
                 GatekeeperDirectory& gatekeepers, gram::CondorG& condor_g,
                 monitoring::JobDatabase* accounting);
  ResourceBroker(const ResourceBroker&) = delete;
  ResourceBroker& operator=(const ResourceBroker&) = delete;

  [[nodiscard]] const BrokerConfig& config() const { return cfg_; }
  [[nodiscard]] const RankPolicy& policy() const { return *policy_; }

  /// The cached site view, refreshed when older than the TTL.
  [[nodiscard]] const std::vector<SiteView>& view(Time now);

  /// Sites satisfying the spec's eligibility requirements (app installed,
  /// free CPUs, walltime limit, outbound), sorted by name.
  [[nodiscard]] std::vector<std::string> eligible(const JobSpec& spec,
                                                  Time now);

  /// Rank `candidates` (or the eligible set when empty) and pick a site
  /// without submitting or logging -- the planner's provisional-placement
  /// path.  Returns nullopt when nothing is eligible.
  [[nodiscard]] std::optional<std::string> choose(const JobSpec& spec,
                                                  Time now);

  /// Late-binding submission: match now, submit through Condor-G, re-match
  /// on transient failure.  `done` fires exactly once.
  void submit(JobSpec spec, gram::GramJob job, BrokeredCallback done);

  /// Rank sites for a whole DAG level (no side effects beyond a view
  /// refresh).  A site is admissible for the gang when every member's
  /// eligibility requirements hold there; it fits the gang *whole* when
  /// its free capacity covers the gang width.  Capacity counts free CPUs
  /// net of the broker's own in-flight bindings, the per-site throttle,
  /// and the load ceiling divided into predicted burst units (one
  /// gatekeeper burst_weight per member submitted in the same minute --
  /// the section 6.4 burst term the whole level triggers at once).
  /// Whole-fit sites are scored policy * aggregate storage headroom for
  /// stage-in + scratch + the level's intermediates, and the best one
  /// (deterministic argmax, ties to the name-sorted first) takes every
  /// member.  Otherwise the split fallback documented on GangPlacement
  /// applies.
  [[nodiscard]] GangPlacement match_gang(const GangSpec& gang, Time now);

  /// Submit one DAG level as a unit: match_gang picks the placement, a
  /// gang-scoped placement lease reserves the intermediates' bytes at
  /// the primary site (pro-rated on split; skipped when no ledger is
  /// attached or the site's storage is unmanaged), and every member is
  /// late-bound with its first match pinned to its assigned site.
  /// Members keep their individual re-match/backoff behaviour afterwards
  /// -- a transient failure already broke the gang, so survivors are not
  /// dragged along.  The gang lease is released exactly once, when the
  /// last member resolves (success, failure, hold-expiry, or rescue --
  /// every path drains through the same release).  `done` fires exactly
  /// once per member, with the member's index.
  void submit_gang(GangSpec gang, std::vector<gram::GramJob> jobs,
                   GangMemberCallback done);

  /// Attach the VO's placement ledger: specs carrying a stage-out intent
  /// get a lease acquired before binding (full destination = match-time
  /// hold), the lease's reservation is threaded into the GramJob, and
  /// the lease is consumed/released when the submission resolves.
  void set_placement(placement::PlacementLedger* ledger) {
    ledger_ = ledger;
  }
  [[nodiscard]] placement::PlacementLedger* placement() const {
    return ledger_;
  }

  /// Attach the grid's site-health monitor: quarantined sites drop out
  /// of match and gang candidate sets (quarantine beats any rank score),
  /// completion outcomes feed the per-site failure scores, and transient
  /// failures at a quarantined site do not consume the job's rebind
  /// budget (the trip is the grid's fault, not the job's).
  void set_health(health::SiteHealthMonitor* monitor) { health_ = monitor; }
  [[nodiscard]] health::SiteHealthMonitor* health() const { return health_; }

  /// A site just tripped into quarantine: held jobs get a prompt
  /// re-match away from it, and gang leases whose primary is the
  /// quarantined site are returned (their members re-match individually,
  /// so holding the level's disk reservation there would only starve
  /// healthy gangs).  Wired to the monitor's trip observer by
  /// core::Grid3::attach_health.
  void on_site_quarantined(const std::string& site);

  /// A quarantined site was re-admitted: invalidate its cached rank
  /// state so the next match re-scores it fresh.  Wired to the
  /// monitor's readmit observer by core::Grid3::attach_health.
  void on_site_readmitted(const std::string& site);

  /// Share an id registry (normally core::Grid3's, so every VO broker
  /// agrees on one site numbering).  Must be called before the first
  /// view refresh; by default the broker owns a private registry.
  void set_id_registry(std::shared_ptr<core::IdRegistry> ids);
  [[nodiscard]] const std::shared_ptr<core::IdRegistry>& id_registry() const {
    return ids_;
  }
  /// Interned id of a site name (invalid = never seen by this registry).
  [[nodiscard]] core::SiteId site_id(const std::string& site) const {
    return ids_->sites.find(site);
  }

  /// Publish match/hold/rebind counters on the bus under `label` (the VO
  /// name) so MDViewer can plot broker activity next to gatekeeper load.
  void set_metric_bus(monitoring::MetricBus* bus, std::string label) {
    bus_ = bus;
    bus_label_ = std::move(label);
  }

  // --- introspection / accounting ---
  [[nodiscard]] const std::vector<MatchDecision>& match_log() const {
    return log_;
  }
  /// Canonical one-line-per-decision rendering (determinism tests diff
  /// this byte-for-byte).
  [[nodiscard]] std::string serialize_match_log() const;
  [[nodiscard]] std::uint64_t matches() const { return log_.size(); }
  [[nodiscard]] std::uint64_t rebinds() const { return rebinds_; }
  [[nodiscard]] std::uint64_t holds() const { return holds_; }
  [[nodiscard]] std::uint64_t submissions() const { return submissions_; }
  /// Holds caused by a full destination SE (lease rejections) -- the
  /// disk-full class converted into match-time waits.
  [[nodiscard]] std::uint64_t storage_holds() const {
    return storage_holds_;
  }
  /// Gangs placed (whole or split) and the subset that had to split.
  [[nodiscard]] std::uint64_t gang_matches() const { return gang_matches_; }
  [[nodiscard]] std::uint64_t gang_splits() const { return gang_splits_; }
  /// Matches decided against a frozen last-known-good view while the
  /// GIIS was down (the degraded-mode output of stale_view_max).
  [[nodiscard]] std::uint64_t stale_matches() const { return stale_matches_; }
  /// True while matching runs against the frozen stale view.
  [[nodiscard]] bool view_stale() const { return view_stale_; }
  /// True while the GIIS outage has outlived the staleness bound: the
  /// broker is deferring (holding) rather than matching.
  [[nodiscard]] bool view_outage() const { return view_outage_; }
  /// Rank passes (one candidate-ordering each: per-job matches, choose
  /// calls, gang matches).
  [[nodiscard]] std::uint64_t match_cycles() const { return match_cycles_; }
  /// Fresh policy-score evaluations vs. rank-cache hits: the ratio is
  /// the incremental engine's work saved.
  [[nodiscard]] std::uint64_t rank_evals() const { return rank_evals_; }
  [[nodiscard]] std::uint64_t rank_cache_hits() const {
    return rank_cache_hits_;
  }
  [[nodiscard]] int inflight(const std::string& site) const;
  [[nodiscard]] int inflight(core::SiteId site) const {
    return inflight_.get(site, 0);
  }
  /// Gang-scoped lease ids still held (model-checker introspection: the
  /// gang invariant cross-checks these against the ledger's active set).
  [[nodiscard]] std::vector<placement::LeaseId> live_gang_leases() const;

  /// TEST-ONLY (mc seeded-bug scenario): re-introduce a historical bug
  /// where retry_held "cleans up" the job's stage-out lease before
  /// re-matching.  Harmless in the canonical event order -- a held job
  /// holds no lease -- but when a completion kick re-matches the job
  /// first within the same tick, the retry releases the lease the job's
  /// in-flight submission depends on.  The mc seeded-bug test proves the
  /// explorer finds this while a single-ordering run cannot.
  void test_seed_stale_hold_release() { mc_seed_stale_hold_release_ = true; }

 private:
  /// Shared state of one submitted gang.  Members hold a reference; the
  /// last member to resolve releases the gang lease (exactly once --
  /// release() clears `lease`, so failure, rescue, and success paths all
  /// drain through the same guard).
  struct GangState {
    std::string id;
    placement::LeaseId lease = 0;  ///< gang-scoped intermediates lease
    int outstanding = 0;           ///< members not yet resolved
  };

  struct Pending {
    JobSpec spec;
    gram::GramJob job;
    BrokeredCallback done;
    Time created;
    int rebinds = 0;
    int holds = 0;
    std::map<std::string, Time> excluded_until;  ///< per-job cool-off
    std::string bound_site;
    core::SiteId bound_id;  ///< interned bound_site (in-flight bookkeeping)
    gram::GramResult last;  ///< last transient failure, for exhaustion
    placement::LeaseId lease = 0;  ///< active stage-out lease (0 = none)
    /// SE the active lease resolved to (chain head unless the ledger
    /// fell through); empty when unleased.
    std::string resolved_se;
    /// The last defer was a full destination SE, not gatekeeper
    /// saturation: max-hold expiry then reports kDiskFull.
    bool storage_blocked = false;
    /// Gang membership (null = ordinary per-job submission).
    std::shared_ptr<GangState> gang;
    /// Site the gang placement assigned: the first match is pinned here
    /// when the site is still admissible; later re-matches rank freely.
    std::string gang_site;
    /// Interned membership sets for spec.candidates /
    /// spec.deferred_candidates, built on the first match attempt: the
    /// per-view-site `std::find` over the name lists becomes an O(1)
    /// bitset test.
    core::IdBitset candidate_bits;
    core::IdBitset deferred_bits;
    std::size_t candidate_distinct = 0;  ///< distinct candidate names
    bool bits_built = false;
  };

  /// One site's cached rank terms for one spec class.  `clean` stamps
  /// the site's dirt counter at compute time; a delta event bumps the
  /// counter and thereby invalidates only the affected site.
  struct RankEntry {
    std::uint64_t clean = 0;
    double policy_score = 0.0;
    bool has_score = false;
    bool eligible = false;
    bool has_elig = false;
  };

  /// Dense per-site cache column for one spec-class signature, valid
  /// for one view epoch.  A handful of columns cover the concurrently
  /// active spec classes (per-VO campaigns are homogeneous); misses
  /// recycle the oldest column.
  struct RankColumn {
    std::uint64_t sig = 0;
    std::uint64_t epoch = 0;
    bool valid = false;
    core::IdMap<core::SiteId, RankEntry> entries;
  };

  /// Per-pass context computed once per candidate ordering (one
  /// try_match / choose / match_gang call): the spec-class signature,
  /// the resolved cache column, whether score caching applies, the
  /// hoisted chain-headroom factor (site-independent, so identical for
  /// every candidate), and the interned source-affinity site.
  struct RankPass {
    std::uint64_t sig = 0;
    RankColumn* col = nullptr;  ///< null = eligibility/score caching off
    bool cache = false;         ///< policy-score caching applies
    double chain = 1.0;
    core::SiteId source;
  };

  void refresh_view(Time now);
  /// Admissible = eligible ∩ not cooled-off ∩ not throttled.
  [[nodiscard]] std::vector<const SiteView*> admissible(
      Pending& p, Time now, const RankPass& pass, bool* any_deferred);
  [[nodiscard]] const SiteView* rank_and_pick(
      const JobSpec& spec, const std::vector<const SiteView*>& sites,
      Time now, const RankPass& pass, double* chosen_score);
  /// Open a candidate ordering: refreshes the view, computes the spec
  /// signature, resolves the cache column, hoists chain_headroom, and
  /// counts a match cycle.
  [[nodiscard]] RankPass begin_pass(const JobSpec& spec, Time now);
  /// Deterministic hash of every spec field the cached terms read.
  [[nodiscard]] std::uint64_t spec_signature(const JobSpec& spec) const;
  /// Cache column for `sig` under the current view epoch, recycling the
  /// oldest on miss.  Pointers stay valid until the column is recycled.
  [[nodiscard]] RankColumn* resolve_column(std::uint64_t sig);
  /// meets_requirements through the eligibility cache (null column =
  /// uncached).
  [[nodiscard]] bool eligible_in(const JobSpec& spec, const SiteView& v,
                                 RankColumn* col);
  /// Policy score net of the broker's own in-flight bindings (the term
  /// the rank cache stores).
  [[nodiscard]] double policy_term(const JobSpec& spec, const SiteView& site,
                                   Time now) const;
  /// policy_term through the rank cache (bit-identical to a fresh
  /// evaluation; recomputes when the site's dirt counter moved).
  [[nodiscard]] double cached_policy_term(const JobSpec& spec,
                                          const SiteView& site,
                                          RankColumn* col, bool cache,
                                          Time now);
  /// Bump a site's dirt counter: cached scores there recompute on next
  /// use.  O(1); no fan-out over spec classes or other sites.
  void mark_rank_dirty(core::SiteId site);
  void mark_rank_dirty(const std::string& site);
  /// Build a Pending's candidate/deferred bitsets once.
  void build_candidate_bits(Pending& p);
  void try_match(const std::shared_ptr<Pending>& p);
  void on_result(const std::shared_ptr<Pending>& p,
                 const gram::GramResult& r);
  /// Classify a submission outcome into per-service health feedback.
  void report_health(const Pending& p, const gram::GramResult& r);
  void hold(const std::shared_ptr<Pending>& p);
  /// Per-hold jittered re-check: no-op when a kick already drained the
  /// job from the waiting queue.
  void retry_held(const std::shared_ptr<Pending>& p);
  void kick_waiting();
  void record_match(const Pending& p, const SiteView& site, double score,
                    std::size_t pool_size);
  void finish(const std::shared_ptr<Pending>& p, BrokeredResult result);
  /// Acquire (or re-acquire) the stage-out lease for a spec carrying a
  /// placement intent and thread it into the GramJob.  False = the
  /// destination SE is full; the caller must defer the match.
  [[nodiscard]] bool ensure_lease(Pending& p, Time now);
  void drop_lease(Pending& p, bool consumed);
  /// Member resolved: the last one out releases the gang lease.
  void leave_gang(Pending& p);
  void publish_counter(const char* name, std::uint64_t value);
  [[nodiscard]] double predicted_load(const SiteView& site) const;
  [[nodiscard]] bool meets_requirements(const JobSpec& spec,
                                        const SiteView& site) const;
  /// Policy score adjusted for the broker's own in-flight bindings
  /// (free CPUs the view has not seen consumed yet), the placement
  /// factors, and the source-site data affinity.  Served from the rank
  /// cache when the pass allows it; cached and fresh values are
  /// bit-identical.
  [[nodiscard]] double effective_score(const JobSpec& spec,
                                       const SiteView& site, Time now,
                                       const RankPass& pass);
  /// Stage-out headroom of the spec's archive failover chain: the best
  /// drain-credited score among admissible (non-quarantined) chain SEs
  /// present in the view.  Constant across execution-site candidates,
  /// so it scales the whole rank surface (a starved chain holds the
  /// job) without reordering sites.  1.0 when the spec archives
  /// nothing or no chain SE is in the view.
  [[nodiscard]] double chain_headroom(const JobSpec& spec) const;
  /// Members the site can take right now: free slots net of in-flight,
  /// throttle headroom, and load-ceiling headroom in burst units.
  [[nodiscard]] int gang_capacity(const SiteView& site) const;

  sim::Simulation& sim_;
  BrokerConfig cfg_;
  std::unique_ptr<RankPolicy> policy_;
  const mds::Giis& giis_;
  const monitoring::MonalisaRepository* monitor_;
  GatekeeperDirectory& gatekeepers_;
  gram::CondorG& condor_g_;
  monitoring::JobDatabase* accounting_;
  health::SiteHealthMonitor* health_ = nullptr;
  placement::PlacementLedger* ledger_ = nullptr;
  monitoring::MetricBus* bus_ = nullptr;
  std::string bus_label_;
  util::Rng rng_;

  /// Site interner (shared with core::Grid3 when attached there).
  std::shared_ptr<core::IdRegistry> ids_;

  std::vector<SiteView> view_;
  /// Interned id -> index into the name-sorted view_ (-1 = absent).
  core::IdMap<core::SiteId, std::int32_t> view_index_;
  /// Bumped per refresh; every cache column keyed off an older epoch is
  /// stale.
  std::uint64_t view_epoch_ = 0;
  Time view_refreshed_;
  bool view_valid_ = false;
  /// The current view_ is a frozen last-known-good copy served while
  /// the GIIS answers nothing (within stale_view_max of its refresh).
  bool view_stale_ = false;
  /// The GIIS outage outlived stale_view_max (or struck before any view
  /// existed): admissibility defers everything instead of rejecting.
  bool view_outage_ = false;

  core::IdMap<core::SiteId, int> inflight_;
  /// Per-site sum of in-flight staging factors (predicted-load input).
  core::IdMap<core::SiteId, double> inflight_staging_;
  /// Per-site dirt counters: bumped by delta events (binding changes,
  /// lease resolution, health transitions); cached rank terms stamp the
  /// value they were computed under.
  core::IdMap<core::SiteId, std::uint64_t> rank_dirt_;
  /// Spec-class score/eligibility cache columns (small ring).
  std::vector<RankColumn> rank_columns_;
  std::size_t next_column_ = 0;
  /// Scratch bitset for choose() candidate lists.
  core::IdBitset scratch_bits_;
  std::deque<std::shared_ptr<Pending>> waiting_;
  bool kick_scheduled_ = false;
  bool mc_seed_stale_hold_release_ = false;
  /// Monotone hold counter feeding the deterministic retry jitter.
  std::uint64_t hold_seq_ = 0;
  /// Live leased gangs by primary site, so a quarantine trip can return
  /// their leases (weak: resolved gangs just drop out).
  std::vector<std::pair<std::string, std::weak_ptr<GangState>>> live_gangs_;

  std::vector<MatchDecision> log_;
  std::uint64_t rebinds_ = 0;
  std::uint64_t holds_ = 0;
  std::uint64_t storage_holds_ = 0;
  std::uint64_t submissions_ = 0;
  std::uint64_t gang_matches_ = 0;
  std::uint64_t gang_splits_ = 0;
  std::uint64_t stale_matches_ = 0;
  std::uint64_t match_cycles_ = 0;
  std::uint64_t rank_evals_ = 0;
  std::uint64_t rank_cache_hits_ = 0;
};

}  // namespace grid3::broker
