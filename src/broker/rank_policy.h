// Pluggable site-ranking strategies for the resource broker.
//
// Each policy scores an eligible site for a job; the broker selects
// either by weighted draw (stochastic policies, reproducing the
// planner's favorite-site behaviour) or deterministic argmax.  The
// policies encode the ablation axes of the brokered-vs-favorite-sites
// experiment:
//   * FavoriteSitesPolicy  -- the paper's status quo: static VO weights;
//   * QueueDepthPolicy     -- prefer free CPUs, avoid deep LRMS queues;
//   * DataLocalityPolicy   -- queue-aware, boosted where replicas of the
//                             job's inputs already live (RLS lookup);
//   * LoadSheddingPolicy   -- queue-aware, sheds sites whose gatekeeper
//                             1-minute load nears the section 6.4 knee.
#pragma once

#include <memory>
#include <string>

#include "broker/job_spec.h"
#include "core/ids.h"
#include "mds/giis.h"
#include "util/units.h"

namespace grid3::gram {
class Gatekeeper;
}  // namespace grid3::gram

namespace grid3::broker {

/// The broker's cached picture of one site, assembled from the MDS GIIS
/// snapshot plus MonALISA/Ganglia load metrics.
struct SiteView {
  std::string site;
  /// Interned id in the broker's site registry (stable registration
  /// order across view refreshes; hot paths index by this, never by
  /// the name).
  core::SiteId id;
  /// Gatekeeper resolved at view-refresh time.  Null means the site had
  /// no gatekeeper when the view was built; the broker re-checks null
  /// entries live, so a gatekeeper arriving mid-TTL is still found.
  gram::Gatekeeper* gk = nullptr;
  bool fresh = false;        ///< GIIS snapshot within TTL
  int total_cpus = 0;
  int free_cpus = 0;
  int running_jobs = 0;
  int waiting_jobs = 0;      ///< LRMS queue depth
  Time max_walltime = Time::max();
  bool outbound = false;
  double se_free_gb = 0.0;   ///< storage-element headroom
  /// SE drain rate (GB freed per hour, e.g. tape migration emptying the
  /// archive) published by the site between monitor samples: lets the
  /// broker tell a temporarily-full archive from a structurally-full one.
  double se_drain_gb_per_hour = 0.0;
  double gatekeeper_load = 0.0;  ///< MonALISA 1-min gauge (0 = unknown)
  mds::SiteSnapshot snapshot;    ///< full GLUE attributes

  /// Installed-application check against the Grid3App-* markers.
  [[nodiscard]] bool has_app(const std::string& app_name) const;
};

class RankPolicy {
 public:
  virtual ~RankPolicy() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Score a candidate site for a job; higher is better.  Non-positive
  /// scores mark a site as last-resort (still usable when nothing else
  /// is).
  [[nodiscard]] virtual double score(const JobSpec& job, const SiteView& site,
                                     Time now) const = 0;
  /// Stochastic policies are sampled by score weight (the status-quo
  /// behaviour); deterministic policies take the argmax.
  [[nodiscard]] virtual bool stochastic() const { return false; }
  /// Cacheable scores are pure functions of (job spec, site view): the
  /// broker's incremental rank cache may reuse them until the view
  /// refreshes or a delta event (in-flight binding, lease, health
  /// transition) dirties the site.  Policies that consult state outside
  /// the view -- DataLocalityPolicy's time-sensitive RLS lookups --
  /// must return false and are re-scored every match.
  [[nodiscard]] virtual bool cacheable() const { return true; }
};

/// Status quo: static favorite-site weights, weighted-random draw.
class FavoriteSitesPolicy final : public RankPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "favorite-sites"; }
  [[nodiscard]] double score(const JobSpec& job, const SiteView& site,
                             Time now) const override;
  [[nodiscard]] bool stochastic() const override { return true; }
};

/// Load-aware: free CPUs up, queue depth down.
class QueueDepthPolicy final : public RankPolicy {
 public:
  [[nodiscard]] const char* name() const override { return "queue-depth"; }
  [[nodiscard]] double score(const JobSpec& job, const SiteView& site,
                             Time now) const override;
};

/// Queue-aware with a multiplicative boost per input LFN already
/// replicated at the site.
class DataLocalityPolicy final : public RankPolicy {
 public:
  explicit DataLocalityPolicy(double locality_weight = 2.0)
      : locality_weight_{locality_weight} {}
  [[nodiscard]] const char* name() const override { return "data-locality"; }
  [[nodiscard]] double score(const JobSpec& job, const SiteView& site,
                             Time now) const override;
  /// Replica sets evolve between view refreshes (registrations land on
  /// job completion), so a cached score could diverge from a fresh one.
  [[nodiscard]] bool cacheable() const override { return false; }

 private:
  double locality_weight_;
};

/// Queue-aware with headroom scaling that drops to zero as the
/// gatekeeper 1-minute load approaches the shed threshold (kept below
/// the gatekeeper's overload knee).
class LoadSheddingPolicy final : public RankPolicy {
 public:
  explicit LoadSheddingPolicy(double shed_threshold = 300.0)
      : shed_threshold_{shed_threshold} {}
  [[nodiscard]] const char* name() const override { return "load-shedding"; }
  [[nodiscard]] double score(const JobSpec& job, const SiteView& site,
                             Time now) const override;

 private:
  double shed_threshold_;
};

/// Policy selection for scenario/bench configuration.
enum class PolicyKind {
  kNone,  ///< no broker: the planner's static favorite-site path
  kFavoriteSites,
  kQueueDepth,
  kDataLocality,
  kLoadShedding,
};

[[nodiscard]] const char* to_string(PolicyKind k);
/// Factory; returns nullptr for kNone.
[[nodiscard]] std::unique_ptr<RankPolicy> make_policy(PolicyKind k);

}  // namespace grid3::broker
