#include "monitoring/ganglia.h"

namespace grid3::monitoring {

void GangliaGmond::sample(Time now) {
  if (!up_) return;
  ++samples_;
  const HostMetrics m = source_();
  bus_.publish(site_, gmetric::kCpuLoad, now, m.load_one);
  bus_.publish(site_, gmetric::kCpusTotal, now,
               static_cast<double>(m.cpus_total));
  bus_.publish(site_, gmetric::kCpusBusy, now,
               static_cast<double>(m.cpus_busy));
  bus_.publish(site_, gmetric::kDiskFreeGb, now, m.disk_free_gb);
  bus_.publish(site_, gmetric::kNetInMbps, now, m.net_in_mbps);
  bus_.publish(site_, gmetric::kNetOutMbps, now, m.net_out_mbps);
  bus_.publish(site_, gmetric::kHeartbeat, now, 1.0);
}

GangliaGmetad::GridSummary GangliaGmetad::summarize(Time now) const {
  GridSummary s;
  for (const std::string& site : bus_.sites_for(gmetric::kHeartbeat)) {
    const auto beat = bus_.latest(site, gmetric::kHeartbeat);
    if (!beat.has_value() || now - beat->t > stale_after_) {
      s.missing_sites.push_back(site);
      continue;
    }
    ++s.sites_reporting;
    if (auto v = bus_.latest(site, gmetric::kCpusTotal)) {
      s.cpus_total += static_cast<int>(v->value);
    }
    if (auto v = bus_.latest(site, gmetric::kCpusBusy)) {
      s.cpus_busy += static_cast<int>(v->value);
    }
    if (auto v = bus_.latest(site, gmetric::kCpuLoad)) {
      s.load_sum += v->value;
    }
    if (auto v = bus_.latest(site, gmetric::kDiskFreeGb)) {
      s.disk_free_gb += v->value;
    }
  }
  return s;
}

}  // namespace grid3::monitoring
