// MonALISA: agent-based monitoring (paper section 5.2).
//
// Site agents watch local sources (GRAM logs, job queues, Ganglia
// metrics) and stream VO-tagged activity to the central repository at
// the iGOC, which stores everything in a round-robin database and serves
// web queries.  The repository path is deliberately *redundant* with the
// Ganglia/ACDC paths -- "permitting crosschecks on the data collected".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "monitoring/bus.h"
#include "util/rrd.h"
#include "util/units.h"

namespace grid3::monitoring {

/// VO-activity metric names MonALISA agents derive at sites.
namespace mlmetric {
inline constexpr const char* kVoJobsRunning = "monalisa.vo_jobs_running";
inline constexpr const char* kVoJobsQueued = "monalisa.vo_jobs_queued";
inline constexpr const char* kGatekeeperLoad = "monalisa.gatekeeper_load";
inline constexpr const char* kIoMbps = "monalisa.io_mbps";
}  // namespace mlmetric

/// Compose a per-VO metric key name, e.g. "monalisa.vo_jobs_running.usatlas".
[[nodiscard]] std::string vo_metric(const char* base, const std::string& vo);

/// Site-resident agent: re-publishes selected local metrics onto the bus
/// under MonALISA names and forwards them to the central repository.
class MonalisaAgent {
 public:
  MonalisaAgent(std::string site, MetricBus& bus)
      : site_{std::move(site)}, bus_{bus} {}

  [[nodiscard]] const std::string& site() const { return site_; }

  /// Report one observation (called by the site model's sampling loop).
  void report(const std::string& metric, Time now, double value);

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }
  [[nodiscard]] std::uint64_t reports() const { return reports_; }

 private:
  std::string site_;
  MetricBus& bus_;
  bool up_ = true;
  std::uint64_t reports_ = 0;
};

/// Central repository: subscribes to MonALISA metrics on the bus and
/// persists them into bounded round-robin archives, one per key.
class MonalisaRepository {
 public:
  explicit MonalisaRepository(MetricBus& bus);
  ~MonalisaRepository();
  MonalisaRepository(const MonalisaRepository&) = delete;
  MonalisaRepository& operator=(const MonalisaRepository&) = delete;

  /// Consolidated value for (site, metric) covering time t, if retained.
  [[nodiscard]] std::optional<double> read(const std::string& site,
                                           const std::string& metric,
                                           Time t) const;

  /// Sum across sites of the consolidated values covering time t.
  [[nodiscard]] double grid_total(const std::string& metric, Time t) const;

  [[nodiscard]] std::size_t archived_keys() const { return archives_.size(); }
  [[nodiscard]] std::uint64_t updates() const { return updates_; }

  /// Collector outage: a down repository answers no reads and drops
  /// incoming updates (the gap stays in the archive -- history lost
  /// while down is not back-filled on recovery, just as a real
  /// collector's round-robin archives would show a hole).  Consumers
  /// already treat "no value" as a degraded default (the broker ranks
  /// load-blind via value_or(0)).
  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }
  /// Updates dropped while the collector was down.
  [[nodiscard]] std::uint64_t dropped_updates() const { return dropped_; }

 private:
  void ingest(const MetricKey& key, Time t, double value);
  [[nodiscard]] static util::RoundRobinArchive make_archive();

  MetricBus& bus_;
  bool up_ = true;
  std::vector<SubscriptionId> subs_;
  std::map<MetricKey, util::RoundRobinArchive> archives_;
  std::uint64_t updates_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace grid3::monitoring
