#include "monitoring/site_catalog.h"

namespace grid3::monitoring {

const char* to_string(SiteStatus s) {
  switch (s) {
    case SiteStatus::kUnknown: return "unknown";
    case SiteStatus::kPass: return "pass";
    case SiteStatus::kDegraded: return "degraded";
    case SiteStatus::kFail: return "fail";
  }
  return "?";
}

void SiteStatusCatalog::register_site(const std::string& name,
                                      const std::string& location,
                                      ProbeBattery battery) {
  Registered reg;
  reg.entry.name = name;
  reg.entry.location = location;
  reg.battery = std::move(battery);
  entries_.insert_or_assign(name, std::move(reg));
}

void SiteStatusCatalog::deregister_site(const std::string& name) {
  entries_.erase(name);
}

std::vector<std::string> SiteStatusCatalog::run_sweep(Time now) {
  std::vector<std::string> changed;
  for (auto& [name, reg] : entries_) {
    const auto results = reg.battery();
    std::size_t passed = 0;
    for (const ProbeResult& r : results) {
      if (r.pass) ++passed;
    }
    SiteStatus status = SiteStatus::kUnknown;
    if (!results.empty()) {
      if (passed == results.size()) {
        status = SiteStatus::kPass;
      } else if (passed > 0) {
        status = SiteStatus::kDegraded;
      } else {
        status = SiteStatus::kFail;
      }
    }
    if (status != reg.entry.status) changed.push_back(name);
    reg.entry.status = status;
    reg.entry.last_tested = now;
    reg.entry.last_results = results;
  }
  return changed;
}

SiteStatus SiteStatusCatalog::status(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? SiteStatus::kUnknown : it->second.entry.status;
}

const SiteEntry* SiteStatusCatalog::entry(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.entry;
}

std::vector<const SiteEntry*> SiteStatusCatalog::all() const {
  std::vector<const SiteEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [name, reg] : entries_) out.push_back(&reg.entry);
  return out;
}

std::size_t SiteStatusCatalog::count(SiteStatus s) const {
  std::size_t n = 0;
  for (const auto& [name, reg] : entries_) {
    if (reg.entry.status == s) ++n;
  }
  return n;
}

}  // namespace grid3::monitoring
