#include "monitoring/troubleshoot.h"

#include <algorithm>
#include <map>

namespace grid3::monitoring {

const JobRecord* Troubleshooter::find_by_submit_id(
    const std::string& submit_id) const {
  for (const JobRecord& r : db_.records()) {
    if (r.submit_id == submit_id) return &r;
  }
  return nullptr;
}

const JobRecord* Troubleshooter::find_by_gram_contact(
    const std::string& gram_contact) const {
  if (gram_contact.empty()) return nullptr;
  for (const JobRecord& r : db_.records()) {
    if (r.gram_contact == gram_contact) return &r;
  }
  return nullptr;
}

std::vector<const JobRecord*> Troubleshooter::failures_at(
    const std::string& site, Time from, Time to) const {
  std::vector<const JobRecord*> out;
  for (const JobRecord& r : db_.records()) {
    if (r.site == site && !r.success && r.finished >= from &&
        r.finished < to) {
      out.push_back(&r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const JobRecord* a, const JobRecord* b) {
              return a->finished > b->finished;
            });
  return out;
}

std::vector<FailureBurst> Troubleshooter::find_bursts(
    Time from, Time to, std::size_t min_failures, Time max_gap) const {
  // Group failures per site, sort by time, then split on gaps.
  std::map<std::string, std::vector<const JobRecord*>> by_site;
  for (const JobRecord& r : db_.records()) {
    if (!r.success && r.finished >= from && r.finished < to) {
      by_site[r.site].push_back(&r);
    }
  }
  std::vector<FailureBurst> bursts;
  for (auto& [site, failures] : by_site) {
    std::sort(failures.begin(), failures.end(),
              [](const JobRecord* a, const JobRecord* b) {
                return a->finished < b->finished;
              });
    std::size_t start = 0;
    for (std::size_t i = 1; i <= failures.size(); ++i) {
      const bool split =
          i == failures.size() ||
          failures[i]->finished - failures[i - 1]->finished > max_gap;
      if (!split) continue;
      const std::size_t count = i - start;
      if (count >= min_failures) {
        FailureBurst burst;
        burst.site = site;
        burst.from = failures[start]->finished;
        burst.to = failures[i - 1]->finished;
        burst.failures = count;
        std::map<std::string, std::size_t> classes;
        for (std::size_t k = start; k < i; ++k) {
          ++classes[failures[k]->failure];
        }
        std::size_t best = 0;
        for (const auto& [cls, n] : classes) {
          if (n > best) {
            best = n;
            burst.dominant_class = cls;
          }
        }
        bursts.push_back(std::move(burst));
      }
      start = i;
    }
  }
  std::sort(bursts.begin(), bursts.end(),
            [](const FailureBurst& a, const FailureBurst& b) {
              return a.failures > b.failures;
            });
  return bursts;
}

std::vector<FailureBurst> Troubleshooter::correlate(
    std::vector<FailureBurst> bursts,
    const std::vector<IncidentWindow>& incidents, Time slack) {
  for (FailureBurst& burst : bursts) {
    for (const IncidentWindow& inc : incidents) {
      if (inc.site != burst.site) continue;
      const Time inc_from = inc.opened - slack;
      const Time inc_to =
          (inc.closed == Time::max() ? burst.to : inc.closed) + slack;
      const bool overlaps = burst.from <= inc_to && burst.to >= inc_from;
      if (overlaps) {
        burst.ticket = inc.id;
        break;
      }
    }
  }
  return bursts;
}

std::vector<std::pair<std::string, std::size_t>>
Troubleshooter::top_failure_classes(Time from, Time to,
                                    std::size_t limit) const {
  std::map<std::string, std::size_t> classes;
  for (const JobRecord& r : db_.records()) {
    if (!r.success && r.finished >= from && r.finished < to) {
      ++classes[r.failure];
    }
  }
  std::vector<std::pair<std::string, std::size_t>> out{classes.begin(),
                                                       classes.end()};
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

}  // namespace grid3::monitoring
