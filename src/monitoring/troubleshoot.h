// Troubleshooting API (paper section 8, lessons learned):
//
//   "API for accessing troubleshooting and accounting information are
//    needed, particularly for the GRAM job submission and GridFTP file
//    transfer systems.  These APIs should provide direct information
//    without the necessity of parsing log files."
//   "Troubleshooting: ... the ability to link a job ID on the execution
//    side with a job ID at the submit (VO) side."
//
// This module is that API, built over the ACDC database: direct queries
// for job lookups by either identifier, failure-burst detection (the
// "all jobs submitted to a site would die" pattern of section 6.2), and
// correlation of bursts against the iGOC trouble-ticket ledger so an
// operator sees *which incident* explains a batch of dead jobs.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "monitoring/acdc.h"
#include "util/units.h"

namespace grid3::monitoring {

/// A cluster of failures at one site within a short span.
struct FailureBurst {
  std::string site;
  Time from;
  Time to;
  std::size_t failures = 0;
  std::string dominant_class;
  /// Filled by correlate(): the ticket id explaining the burst, if any.
  std::optional<std::uint64_t> ticket;
};

/// Minimal view of an operations ticket for correlation (mirrors
/// core::TroubleTicket without a dependency on core).
struct IncidentWindow {
  std::uint64_t id = 0;
  std::string site;
  std::string issue;
  Time opened;
  Time closed;  ///< == Time::max() while still open
};

class Troubleshooter {
 public:
  explicit Troubleshooter(const JobDatabase& db) : db_{db} {}

  /// Link submit-side <-> execution-side identifiers (section 8).
  [[nodiscard]] const JobRecord* find_by_submit_id(
      const std::string& submit_id) const;
  [[nodiscard]] const JobRecord* find_by_gram_contact(
      const std::string& gram_contact) const;

  /// All failed records at a site in a window, newest first.
  [[nodiscard]] std::vector<const JobRecord*> failures_at(
      const std::string& site, Time from, Time to) const;

  /// Detect failure bursts: >= `min_failures` failures at one site with
  /// gaps of at most `max_gap` between consecutive failures.
  [[nodiscard]] std::vector<FailureBurst> find_bursts(
      Time from, Time to, std::size_t min_failures = 5,
      Time max_gap = Time::hours(6)) const;

  /// Attribute bursts to incidents: a burst is explained by a ticket at
  /// the same site whose [opened, closed] window overlaps the burst
  /// (with `slack` tolerance on both ends).  Returns bursts with their
  /// `ticket` field filled where a match exists.
  [[nodiscard]] static std::vector<FailureBurst> correlate(
      std::vector<FailureBurst> bursts,
      const std::vector<IncidentWindow>& incidents,
      Time slack = Time::hours(2));

  /// Failure-class leaderboard over a window (the "direct information
  /// without parsing log files" query).
  [[nodiscard]] std::vector<std::pair<std::string, std::size_t>>
  top_failure_classes(Time from, Time to, std::size_t limit = 10) const;

 private:
  const JobDatabase& db_;
};

}  // namespace grid3::monitoring
