#include "monitoring/bus.h"

#include <algorithm>

namespace grid3::monitoring {
namespace {

bool name_matches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  }
  return pattern == name;
}

std::uint64_t composite(core::SiteId site, core::ServiceId name) {
  return (static_cast<std::uint64_t>(site.value()) << 32) | name.value();
}

}  // namespace

MetricBus::Entry& MetricBus::entry_for(const std::string& site,
                                       const std::string& name) {
  const auto key =
      composite(site_ids_.intern(site), name_ids_.intern(name));
  if (auto it = index_.find(key); it != index_.end()) {
    return entries_[it->second];
  }
  index_.emplace(key, static_cast<std::uint32_t>(entries_.size()));
  Entry& e = entries_.emplace_back();
  e.site = site;
  e.name = name;
  return e;
}

const MetricBus::Entry* MetricBus::find_entry(const std::string& site,
                                              const std::string& name) const {
  const core::SiteId s = site_ids_.find(site);
  const core::ServiceId n = name_ids_.find(name);
  if (!s.valid() || !n.valid()) return nullptr;
  auto it = index_.find(composite(s, n));
  return it == index_.end() ? nullptr : &entries_[it->second];
}

void MetricBus::rebuild_fanout(Entry& e) const {
  e.fanout.clear();
  for (const Subscriber& s : subscribers_) {
    if (s.cb && name_matches(s.name, e.name) &&
        (s.site == "*" || s.site == e.site)) {
      e.fanout.push_back(&s);
    }
  }
  e.sub_epoch = sub_epoch_;
}

void MetricBus::publish(const std::string& site, const std::string& name,
                        Time t, double value) {
  ++published_;
  Entry& e = entry_for(site, name);
  e.series.append(t, value);
  if (e.sub_epoch != sub_epoch_) rebuild_fanout(e);
  for (const Subscriber* s : e.fanout) {
    // A tombstoned subscriber may linger until the next rebuild.
    if (s->cb) s->cb({site, name}, t, value);
  }
}

SubscriptionId MetricBus::subscribe(const std::string& site,
                                    const std::string& name,
                                    MetricCallback cb) {
  const SubscriptionId id = next_sub_++;
  subscribers_.push_back({id, site, name, std::move(cb)});
  ++sub_epoch_;
  return id;
}

void MetricBus::unsubscribe(SubscriptionId id) {
  for (Subscriber& s : subscribers_) {
    if (s.id == id) s.cb = nullptr;
  }
  ++sub_epoch_;
}

std::optional<util::TimePoint> MetricBus::latest(
    const std::string& site, const std::string& name) const {
  const Entry* e = find_entry(site, name);
  if (e == nullptr || e->series.empty()) return std::nullopt;
  return e->series.points().back();
}

const util::TimeSeries& MetricBus::series(const std::string& site,
                                          const std::string& name) const {
  const Entry* e = find_entry(site, name);
  return e == nullptr ? empty_ : e->series;
}

std::vector<MetricKey> MetricBus::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<MetricKey> out;
  for (const Entry& e : entries_) {
    if (e.name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back({e.site, e.name});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> MetricBus::sites_for(const std::string& name) const {
  std::vector<std::string> out;
  for (const Entry& e : entries_) {
    if (e.name == name) out.push_back(e.site);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace grid3::monitoring
