#include "monitoring/bus.h"

#include <algorithm>

namespace grid3::monitoring {
namespace {

bool name_matches(const std::string& pattern, const std::string& name) {
  if (!pattern.empty() && pattern.back() == '*') {
    return name.compare(0, pattern.size() - 1, pattern, 0,
                        pattern.size() - 1) == 0;
  }
  return pattern == name;
}

}  // namespace

void MetricBus::publish(const std::string& site, const std::string& name,
                        Time t, double value) {
  ++published_;
  series_[{site, name}].append(t, value);
  for (const Subscriber& s : subscribers_) {
    if (name_matches(s.name, name) && (s.site == "*" || s.site == site)) {
      s.cb({site, name}, t, value);
    }
  }
}

SubscriptionId MetricBus::subscribe(const std::string& site,
                                    const std::string& name,
                                    MetricCallback cb) {
  const SubscriptionId id = next_sub_++;
  subscribers_.push_back({id, site, name, std::move(cb)});
  return id;
}

void MetricBus::unsubscribe(SubscriptionId id) {
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [&](const Subscriber& s) { return s.id == id; }),
      subscribers_.end());
}

std::optional<util::TimePoint> MetricBus::latest(
    const std::string& site, const std::string& name) const {
  auto it = series_.find({site, name});
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.points().back();
}

const util::TimeSeries& MetricBus::series(const std::string& site,
                                          const std::string& name) const {
  auto it = series_.find({site, name});
  return it == series_.end() ? empty_ : it->second;
}

std::vector<MetricKey> MetricBus::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<MetricKey> out;
  for (const auto& [key, ts] : series_) {
    if (key.name.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(key);
    }
  }
  return out;
}

std::vector<std::string> MetricBus::sites_for(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& [key, ts] : series_) {
    if (key.name == name) out.push_back(key.site);
  }
  return out;
}

}  // namespace grid3::monitoring
