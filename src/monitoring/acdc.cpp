#include "monitoring/acdc.h"

#include <algorithm>

namespace grid3::monitoring {

void JobDatabase::insert(JobRecord record) {
  records_.push_back(std::move(record));
}

void JobDatabase::insert_transfer(TransferEntry entry) {
  transfers_.push_back(std::move(entry));
}

void JobDatabase::insert_match(MatchRecord match) {
  matches_.push_back(std::move(match));
}

void JobDatabase::insert_lease(LeaseRecord lease) {
  leases_.push_back(std::move(lease));
}

std::map<std::string, std::size_t> JobDatabase::lease_events(
    Time from, Time to, const std::string& vo) const {
  std::map<std::string, std::size_t> out;
  for (const LeaseRecord& l : leases_) {
    if (l.at < from || l.at >= to) continue;
    if (!vo.empty() && l.vo != vo) continue;
    ++out[l.event];
  }
  return out;
}

std::size_t JobDatabase::lease_fallthrough_hops(Time from, Time to,
                                                const std::string& vo) const {
  std::size_t hops = 0;
  for (const LeaseRecord& l : leases_) {
    if (l.at < from || l.at >= to) continue;
    if (!vo.empty() && l.vo != vo) continue;
    if (l.event == "acquire") hops += static_cast<std::size_t>(l.hop);
  }
  return hops;
}

void JobDatabase::insert_gang(GangRecord gang) {
  gangs_.push_back(std::move(gang));
}

JobDatabase::GangSummary JobDatabase::gang_events(
    Time from, Time to, const std::string& vo) const {
  GangSummary out;
  for (const GangRecord& g : gangs_) {
    if (g.at < from || g.at >= to) continue;
    if (!vo.empty() && g.vo != vo) continue;
    ++out.gangs;
    out.members += g.width;
    if (!g.placed) {
      ++out.unplaced;
    } else if (g.split) {
      ++out.split;
    } else {
      ++out.whole;
    }
  }
  return out;
}

void JobDatabase::insert_breaker(BreakerRecord breaker) {
  breakers_.push_back(std::move(breaker));
}

std::map<std::string, std::size_t> JobDatabase::breaker_events(
    Time from, Time to, const std::string& site) const {
  std::map<std::string, std::size_t> out;
  for (const BreakerRecord& b : breakers_) {
    if (b.at < from || b.at >= to) continue;
    if (!site.empty() && b.site != site) continue;
    ++out[b.event];
  }
  return out;
}

std::map<std::string, std::size_t> JobDatabase::placements_by_site(
    Time from, Time to, const std::string& vo) const {
  std::map<std::string, std::size_t> out;
  for (const MatchRecord& m : matches_) {
    if (m.at < from || m.at >= to) continue;
    if (!vo.empty() && m.vo != vo) continue;
    ++out[m.site];
  }
  return out;
}

std::vector<const JobRecord*> JobDatabase::completed(const std::string& vo,
                                                     Time from,
                                                     Time to) const {
  std::vector<const JobRecord*> out;
  for (const JobRecord& r : records_) {
    if (r.vo == vo && r.success && r.finished >= from && r.finished < to) {
      out.push_back(&r);
    }
  }
  return out;
}

VoJobStats JobDatabase::stats_for(const std::string& vo, Time from,
                                  Time to) const {
  VoJobStats s;
  s.vo = vo;
  const auto jobs = completed(vo, from, to);
  s.jobs = jobs.size();
  if (jobs.empty()) return s;

  std::set<std::string> users;
  std::set<std::string> sites;
  double total_hours = 0.0;
  // month index -> (jobs, cpu_days, per-site jobs)
  std::map<int, std::size_t> month_jobs;
  std::map<int, double> month_cpu;
  std::map<int, std::map<std::string, std::size_t>> month_site_jobs;

  for (const JobRecord* r : jobs) {
    users.insert(r->user_dn);
    sites.insert(r->site);
    const double hours = r->runtime().to_hours();
    total_hours += hours;
    s.max_runtime_hours = std::max(s.max_runtime_hours, hours);
    const int mi = util::month_index_at(r->finished);
    ++month_jobs[mi];
    month_cpu[mi] += r->runtime().to_days();
    ++month_site_jobs[mi][r->site];
  }
  s.users = users.size();
  s.sites_used = sites.size();
  s.avg_runtime_hours = total_hours / static_cast<double>(jobs.size());
  s.total_cpu_days = total_hours / 24.0;

  // Peak production month by job count.
  int peak_month = month_jobs.begin()->first;
  for (const auto& [mi, n] : month_jobs) {
    if (n > month_jobs.at(peak_month)) peak_month = mi;
  }
  s.peak_rate_jobs_per_month = month_jobs.at(peak_month);
  s.peak_month = util::month_label_at(util::month_start(peak_month));
  s.peak_cpu_days = month_cpu.at(peak_month);
  const auto& site_jobs = month_site_jobs.at(peak_month);
  s.peak_resources = site_jobs.size();
  for (const auto& [site, n] : site_jobs) {
    s.max_single_resource_jobs = std::max(s.max_single_resource_jobs, n);
  }
  s.max_single_resource_percent =
      100.0 * static_cast<double>(s.max_single_resource_jobs) /
      static_cast<double>(s.peak_rate_jobs_per_month);
  return s;
}

std::vector<std::string> JobDatabase::vos() const {
  std::set<std::string> set;
  for (const JobRecord& r : records_) set.insert(r.vo);
  return {set.begin(), set.end()};
}

std::vector<std::size_t> JobDatabase::jobs_by_month(int months) const {
  std::vector<std::size_t> out(static_cast<std::size_t>(months), 0);
  for (const JobRecord& r : records_) {
    if (!r.success) continue;
    const int mi = util::month_index_at(r.finished);
    if (mi >= 0 && mi < months) ++out[static_cast<std::size_t>(mi)];
  }
  return out;
}

JobDatabase::FailureSummary JobDatabase::failures(const std::string& vo,
                                                  Time from, Time to) const {
  FailureSummary s;
  for (const JobRecord& r : records_) {
    if (!vo.empty() && r.vo != vo) continue;
    if (r.finished < from || r.finished >= to) continue;
    ++s.total;
    if (!r.success) {
      ++s.failed;
      if (r.site_problem) ++s.site_problem;
      ++s.by_class[r.failure];
    }
  }
  return s;
}

std::map<std::string, std::pair<Bytes, Bytes>>
JobDatabase::bytes_consumed_by_vo(Time from, Time to) const {
  std::map<std::string, std::pair<Bytes, Bytes>> out;
  for (const TransferEntry& t : transfers_) {
    if (t.finished < from || t.finished >= to) continue;
    auto& [total, demo] = out[t.vo];
    total += t.size;
    if (t.demo) demo += t.size;
  }
  return out;
}

std::map<std::string, Bytes> JobDatabase::bytes_consumed_by_site(
    Time from, Time to) const {
  std::map<std::string, Bytes> out;
  for (const TransferEntry& t : transfers_) {
    if (t.finished < from || t.finished >= to) continue;
    out[t.dst_site] += t.size;
  }
  return out;
}

}  // namespace grid3::monitoring
