#include "monitoring/mdviewer.h"

#include <algorithm>
#include <cmath>

#include "monitoring/ganglia.h"

namespace grid3::monitoring {
namespace {

/// Overlap of [a1, a2) with [b1, b2).
Time overlap(Time a1, Time a2, Time b1, Time b2) {
  const Time lo = std::max(a1, b1);
  const Time hi = std::min(a2, b2);
  return hi > lo ? hi - lo : Time::zero();
}

}  // namespace

std::vector<std::pair<std::string, double>>
MdViewer::integrated_cpu_days_by_vo(Time from, Time to) const {
  std::map<std::string, double> acc;
  for (const JobRecord& r : jobs_.records()) {
    if (!r.success && r.runtime() <= Time::zero()) continue;
    const Time used = overlap(r.started, r.finished, from, to);
    if (used > Time::zero()) acc[r.vo] += used.to_days();
  }
  std::vector<std::pair<std::string, double>> out{acc.begin(), acc.end()};
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

std::map<std::string, std::vector<double>> MdViewer::differential_cpu_by_vo(
    Time from, Time to, std::size_t bins) const {
  // Build a per-VO concurrency step series from job start/finish events,
  // then bin-average it (reproducing the paper's note that binned
  // averages under-report instantaneous peaks).
  std::map<std::string, std::vector<std::pair<Time, int>>> deltas;
  for (const JobRecord& r : jobs_.records()) {
    if (r.finished <= r.started) continue;
    deltas[r.vo].push_back({r.started, +1});
    deltas[r.vo].push_back({r.finished, -1});
  }
  std::map<std::string, std::vector<double>> out;
  for (auto& [vo, d] : deltas) {
    std::sort(d.begin(), d.end());
    util::TimeSeries series;
    int level = 0;
    for (const auto& [t, delta] : d) {
      level += delta;
      series.append(t, static_cast<double>(level));
    }
    out[vo] = series.binned_average(from, to, bins);
  }
  return out;
}

std::vector<std::pair<std::string, double>> MdViewer::cpu_days_by_site(
    const std::string& vo, Time from, Time to) const {
  std::map<std::string, double> acc;
  for (const JobRecord& r : jobs_.records()) {
    if (r.vo != vo) continue;
    const Time used = overlap(r.started, r.finished, from, to);
    if (used > Time::zero()) acc[r.site] += used.to_days();
  }
  std::vector<std::pair<std::string, double>> out{acc.begin(), acc.end()};
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  return out;
}

util::TimeSeries MdViewer::concurrency(Time from, Time to) const {
  std::vector<std::pair<Time, int>> deltas;
  for (const JobRecord& r : jobs_.records()) {
    if (r.finished <= r.started) continue;
    if (r.finished < from || r.started > to) continue;
    deltas.push_back({r.started, +1});
    deltas.push_back({r.finished, -1});
  }
  std::sort(deltas.begin(), deltas.end());
  util::TimeSeries series;
  int level = 0;
  for (const auto& [t, delta] : deltas) {
    level += delta;
    if (t >= from && t <= to) {
      series.append(t, static_cast<double>(level));
    }
  }
  return series;
}

double MdViewer::peak_concurrent_jobs(Time from, Time to) const {
  return concurrency(from, to).max_over(from, to);
}

double MdViewer::utilization_from_ganglia(Time from, Time to) const {
  double busy = 0.0;
  double total = 0.0;
  for (const std::string& site : bus_.sites_for(gmetric::kCpusTotal)) {
    busy += bus_.series(site, gmetric::kCpusBusy).time_average(from, to);
    total += bus_.series(site, gmetric::kCpusTotal).time_average(from, to);
  }
  return total > 0.0 ? busy / total : 0.0;
}

MdViewer::LatencyBreakdown MdViewer::latency_breakdown(const std::string& vo,
                                                       Time from,
                                                       Time to) const {
  LatencyBreakdown out;
  double wait = 0.0;
  double run = 0.0;
  for (const JobRecord& r : jobs_.records()) {
    if (!r.success || r.vo != vo) continue;
    if (r.finished < from || r.finished >= to) continue;
    ++out.jobs;
    wait += (r.started - r.submitted).to_hours();
    run += (r.finished - r.started).to_hours();
  }
  if (out.jobs > 0) {
    out.avg_wait_hours = wait / static_cast<double>(out.jobs);
    out.avg_run_hours = run / static_cast<double>(out.jobs);
  }
  return out;
}

std::vector<std::pair<std::string, double>> MdViewer::placement_shares(
    Time from, Time to, const std::string& vo) const {
  const auto counts = jobs_.placements_by_site(from, to, vo);
  double total = 0.0;
  for (const auto& [site, n] : counts) total += static_cast<double>(n);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counts.size());
  for (const auto& [site, n] : counts) {
    out.emplace_back(site, total > 0.0 ? static_cast<double>(n) / total : 0.0);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  return out;
}

double MdViewer::crosscheck_divergence(Time from, Time to) const {
  // MonALISA path: sum every per-site per-VO running-jobs gauge.
  double monalisa = 0.0;
  for (const auto& key :
       bus_.keys_with_prefix("monalisa.vo_jobs_running.")) {
    monalisa +=
        bus_.series(key.site, key.name).time_average(from, to);
  }
  const double acdc_avg = concurrency(from, to).time_average(from, to);
  const double denom = std::max(monalisa, acdc_avg);
  if (denom <= 0.0) return 0.0;
  return std::abs(monalisa - acdc_avg) / denom;
}

}  // namespace grid3::monitoring
