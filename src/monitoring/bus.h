// The producer/intermediary/consumer metric fabric of Figure 1.
//
// "Information producers collect information close to its source, a
// common intermediary defines a uniform representation and access
// methods, and information is centrally collected..."  The MetricBus is
// that common intermediary: producers publish (site, metric, t, value)
// tuples; consumers either subscribe for streams or poll for the latest
// value / full series.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/ids.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace grid3::monitoring {

struct MetricKey {
  std::string site;
  std::string name;
  auto operator<=>(const MetricKey&) const = default;
};

using MetricCallback =
    std::function<void(const MetricKey&, Time, double)>;
using SubscriptionId = std::uint64_t;

class MetricBus {
 public:
  /// Publish a sample.  Fans out to matching subscribers synchronously.
  void publish(const std::string& site, const std::string& name, Time t,
               double value);

  /// Subscribe to a metric name; `site` may be "*" for all sites, and a
  /// `name` ending in '*' matches by prefix (e.g. "monalisa.*").
  SubscriptionId subscribe(const std::string& site, const std::string& name,
                           MetricCallback cb);
  void unsubscribe(SubscriptionId id);

  /// Latest sample for a key.
  [[nodiscard]] std::optional<util::TimePoint> latest(
      const std::string& site, const std::string& name) const;

  /// Full retained series (empty series when unknown).
  [[nodiscard]] const util::TimeSeries& series(const std::string& site,
                                               const std::string& name) const;

  /// All sites that ever published a given metric name, sorted by name
  /// (the order the old sorted-map storage yielded for free).
  [[nodiscard]] std::vector<std::string> sites_for(
      const std::string& name) const;

  /// All (site, name) keys whose name starts with `prefix`, sorted by
  /// (site, name).
  [[nodiscard]] std::vector<MetricKey> keys_with_prefix(
      const std::string& prefix) const;

  [[nodiscard]] std::size_t key_count() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  struct Subscriber {
    SubscriptionId id;
    std::string site;  // "*" = wildcard
    std::string name;
    MetricCallback cb;  // null = unsubscribed tombstone
  };

  /// One (site, name) series plus its cached subscriber fan-out.  The
  /// fan-out list is rebuilt lazily when the subscription epoch moved,
  /// so steady-state publishes skip the per-publish pattern scan the
  /// old bus paid for every sample.
  struct Entry {
    std::string site;
    std::string name;
    util::TimeSeries series;
    std::uint64_t sub_epoch = 0;  ///< 0 = fan-out never built
    std::vector<const Subscriber*> fanout;
  };

  Entry& entry_for(const std::string& site, const std::string& name);
  [[nodiscard]] const Entry* find_entry(const std::string& site,
                                        const std::string& name) const;
  void rebuild_fanout(Entry& e) const;

  /// Private interners for bus keys (sites here include non-fabric
  /// labels like VO names, so the bus does not share the grid registry).
  core::Interner<core::SiteId> site_ids_;
  core::Interner<core::ServiceId> name_ids_;
  /// (site id << 32 | name id) -> index into entries_.
  std::unordered_map<std::uint64_t, std::uint32_t> index_;
  /// Entries in first-publish order; a deque so growth never
  /// invalidates references held across an append.
  std::deque<Entry> entries_;
  std::deque<Subscriber> subscribers_;  ///< stable; tombstoned, not erased
  SubscriptionId next_sub_ = 1;
  /// Bumped on subscribe/unsubscribe; entries with an older stamp
  /// rebuild their fan-out on next publish.
  std::uint64_t sub_epoch_ = 1;
  std::uint64_t published_ = 0;
  util::TimeSeries empty_;
};

}  // namespace grid3::monitoring
