// The producer/intermediary/consumer metric fabric of Figure 1.
//
// "Information producers collect information close to its source, a
// common intermediary defines a uniform representation and access
// methods, and information is centrally collected..."  The MetricBus is
// that common intermediary: producers publish (site, metric, t, value)
// tuples; consumers either subscribe for streams or poll for the latest
// value / full series.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/timeseries.h"
#include "util/units.h"

namespace grid3::monitoring {

struct MetricKey {
  std::string site;
  std::string name;
  auto operator<=>(const MetricKey&) const = default;
};

using MetricCallback =
    std::function<void(const MetricKey&, Time, double)>;
using SubscriptionId = std::uint64_t;

class MetricBus {
 public:
  /// Publish a sample.  Fans out to matching subscribers synchronously.
  void publish(const std::string& site, const std::string& name, Time t,
               double value);

  /// Subscribe to a metric name; `site` may be "*" for all sites, and a
  /// `name` ending in '*' matches by prefix (e.g. "monalisa.*").
  SubscriptionId subscribe(const std::string& site, const std::string& name,
                           MetricCallback cb);
  void unsubscribe(SubscriptionId id);

  /// Latest sample for a key.
  [[nodiscard]] std::optional<util::TimePoint> latest(
      const std::string& site, const std::string& name) const;

  /// Full retained series (empty series when unknown).
  [[nodiscard]] const util::TimeSeries& series(const std::string& site,
                                               const std::string& name) const;

  /// All sites that ever published a given metric name.
  [[nodiscard]] std::vector<std::string> sites_for(
      const std::string& name) const;

  /// All (site, name) keys whose name starts with `prefix`.
  [[nodiscard]] std::vector<MetricKey> keys_with_prefix(
      const std::string& prefix) const;

  [[nodiscard]] std::size_t key_count() const { return series_.size(); }
  [[nodiscard]] std::uint64_t published() const { return published_; }

 private:
  struct Subscriber {
    SubscriptionId id;
    std::string site;  // "*" = wildcard
    std::string name;
    MetricCallback cb;
  };

  std::map<MetricKey, util::TimeSeries> series_;
  std::vector<Subscriber> subscribers_;
  SubscriptionId next_sub_ = 1;
  std::uint64_t published_ = 0;
  util::TimeSeries empty_;
};

}  // namespace grid3::monitoring
