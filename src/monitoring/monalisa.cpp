#include "monitoring/monalisa.h"

namespace grid3::monitoring {

std::string vo_metric(const char* base, const std::string& vo) {
  return std::string{base} + "." + vo;
}

void MonalisaAgent::report(const std::string& metric, Time now,
                           double value) {
  if (!up_) return;
  ++reports_;
  bus_.publish(site_, metric, now, value);
}

util::RoundRobinArchive MonalisaRepository::make_archive() {
  // 5-minute primary slots for two days, hourly for two weeks, daily for
  // a year -- ample for the 7-month scenario while staying bounded.
  return util::RoundRobinArchive{
      {{Time::minutes(5), 576}, {Time::hours(1), 336}, {Time::days(1), 366}},
      util::Consolidation::kAverage};
}

MonalisaRepository::MonalisaRepository(MetricBus& bus) : bus_{bus} {
  // One prefix subscription covers the fixed names and every per-VO key
  // agents mint later.
  subs_.push_back(bus_.subscribe(
      "*", "monalisa.*", [this](const MetricKey& key, Time t, double value) {
        ingest(key, t, value);
      }));
}

MonalisaRepository::~MonalisaRepository() {
  for (SubscriptionId id : subs_) bus_.unsubscribe(id);
}

void MonalisaRepository::ingest(const MetricKey& key, Time t, double value) {
  if (!up_) {
    ++dropped_;
    return;
  }
  auto it = archives_.find(key);
  if (it == archives_.end()) {
    it = archives_.emplace(key, make_archive()).first;
  }
  it->second.update(t, value);
  ++updates_;
}

std::optional<double> MonalisaRepository::read(const std::string& site,
                                               const std::string& metric,
                                               Time t) const {
  if (!up_) return std::nullopt;
  auto it = archives_.find({site, metric});
  if (it == archives_.end()) return std::nullopt;
  return it->second.read(t);
}

double MonalisaRepository::grid_total(const std::string& metric,
                                      Time t) const {
  if (!up_) return 0.0;
  double total = 0.0;
  for (const auto& [key, archive] : archives_) {
    if (key.name == metric) {
      if (auto v = archive.read(t)) total += *v;
    }
  }
  return total;
}

}  // namespace grid3::monitoring
