// Ganglia-style cluster monitoring (paper section 5.2): a gmond daemon
// per site samples host-level metrics and publishes them; a gmetad
// aggregator at the iGOC serves grid-wide summary views with
// hierarchical grid views.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "monitoring/bus.h"
#include "util/units.h"

namespace grid3::monitoring {

/// Canonical Ganglia metric names used across the simulator.
namespace gmetric {
inline constexpr const char* kCpuLoad = "ganglia.load_one";
inline constexpr const char* kCpusTotal = "ganglia.cpu_num";
inline constexpr const char* kCpusBusy = "ganglia.cpu_busy";
inline constexpr const char* kDiskFreeGb = "ganglia.disk_free";
inline constexpr const char* kNetInMbps = "ganglia.bytes_in";
inline constexpr const char* kNetOutMbps = "ganglia.bytes_out";
inline constexpr const char* kHeartbeat = "ganglia.heartbeat";
}  // namespace gmetric

/// Snapshot a site feeds its gmond each sampling round; the glue between
/// the physical site model and the monitoring fabric.
struct HostMetrics {
  double load_one = 0.0;
  int cpus_total = 0;
  int cpus_busy = 0;
  double disk_free_gb = 0.0;
  double net_in_mbps = 0.0;
  double net_out_mbps = 0.0;
};

using MetricsSource = std::function<HostMetrics()>;

/// Per-site collector daemon.
class GangliaGmond {
 public:
  GangliaGmond(std::string site, MetricBus& bus, MetricsSource source)
      : site_{std::move(site)}, bus_{bus}, source_{std::move(source)} {}

  [[nodiscard]] const std::string& site() const { return site_; }

  /// One sampling round: read the source, publish all metrics.  Driven by
  /// a PeriodicProcess in the site model.  No-op while down.
  void sample(Time now);

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  std::string site_;
  MetricBus& bus_;
  MetricsSource source_;
  bool up_ = true;
  std::uint64_t samples_ = 0;
};

/// iGOC-side aggregator: grid-wide totals from the latest per-site data.
/// A site whose heartbeat is older than `stale_after` is excluded (and
/// reported missing), matching gmetad's behaviour when a gmond dies.
class GangliaGmetad {
 public:
  GangliaGmetad(const MetricBus& bus, Time stale_after = Time::minutes(10))
      : bus_{bus}, stale_after_{stale_after} {}

  struct GridSummary {
    int sites_reporting = 0;
    int cpus_total = 0;
    int cpus_busy = 0;
    double load_sum = 0.0;
    double disk_free_gb = 0.0;
    std::vector<std::string> missing_sites;
  };

  [[nodiscard]] GridSummary summarize(Time now) const;

 private:
  const MetricBus& bus_;
  Time stale_after_;
};

}  // namespace grid3::monitoring
