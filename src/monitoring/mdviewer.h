// MDViewer: the Metrics Data Viewer (paper section 5.2, ref [58]).
//
// "provides an API for manipulating, comparing and viewing information
// and a set of predefined plots, parametric in arbitrary time intervals,
// sites and VOs, tailored to Grid2003 needs."  Each predefined plot here
// is one of the paper's figures; the bench harnesses call these and
// print the series.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "monitoring/acdc.h"
#include "monitoring/bus.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace grid3::monitoring {

class MdViewer {
 public:
  MdViewer(const JobDatabase& jobs, const MetricBus& bus)
      : jobs_{jobs}, bus_{bus} {}

  /// Figure 2: integrated CPU usage (CPU-days) by VO over a window.  A
  /// job contributes the overlap of its run interval with the window.
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  integrated_cpu_days_by_vo(Time from, Time to) const;

  /// Figure 3: differential CPU usage (time-averaged CPUs in use) by VO,
  /// binned.  Returns vo -> per-bin averages.
  [[nodiscard]] std::map<std::string, std::vector<double>>
  differential_cpu_by_vo(Time from, Time to, std::size_t bins) const;

  /// Figure 4: CPU-days by site for one VO over a window (the CMS
  /// cumulative-usage-by-site distribution).
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  cpu_days_by_site(const std::string& vo, Time from, Time to) const;

  /// Figure 5: data consumed per VO over a window: (total, demo-only).
  [[nodiscard]] std::map<std::string, std::pair<Bytes, Bytes>>
  data_consumed_by_vo(Time from, Time to) const {
    return jobs_.bytes_consumed_by_vo(from, to);
  }

  /// Figure 6: completed jobs per month since the epoch.
  [[nodiscard]] std::vector<std::size_t> jobs_by_month(int months) const {
    return jobs_.jobs_by_month(months);
  }

  /// Concurrency series derived from job records: number of jobs running
  /// at each change point (peak-concurrent-jobs milestone).
  [[nodiscard]] util::TimeSeries concurrency(Time from, Time to) const;
  [[nodiscard]] double peak_concurrent_jobs(Time from, Time to) const;

  /// Resource utilization from the Ganglia path: time-averaged busy/total
  /// CPU fraction across sites over a window.
  [[nodiscard]] double utilization_from_ganglia(Time from, Time to) const;

  /// End-to-end latency analysis (section 8's efficiency lesson:
  /// "Understanding why will require increased analysis of end-to-end
  /// applications").  Splits each completed job into queue/staging wait
  /// (submitted -> started) and execution (started -> finished).
  struct LatencyBreakdown {
    std::size_t jobs = 0;
    double avg_wait_hours = 0.0;
    double avg_run_hours = 0.0;
    /// Fraction of end-to-end time spent computing.
    [[nodiscard]] double compute_efficiency() const {
      const double total = avg_wait_hours + avg_run_hours;
      return total > 0.0 ? avg_run_hours / total : 0.0;
    }
  };
  [[nodiscard]] LatencyBreakdown latency_breakdown(const std::string& vo,
                                                   Time from, Time to) const;

  /// Broker placement distribution: share of match decisions per chosen
  /// site over a window, descending (the brokered-vs-favorite-sites
  /// ablation plots this next to Figure 4's CPU-by-site view).
  [[nodiscard]] std::vector<std::pair<std::string, double>>
  placement_shares(Time from, Time to, const std::string& vo = {}) const;

  /// Broker / placement activity series: the counter samples a VO's
  /// broker (broker.matches/holds/rebinds) or placement ledger
  /// (placement.leases_*) published on the bus, plottable in the same
  /// frame as the gatekeeper load gauges.  Empty series when that VO
  /// never published the counter.
  [[nodiscard]] const util::TimeSeries& broker_counter(
      const std::string& vo, const std::string& counter) const {
    return bus_.series(vo, counter);
  }
  /// Lease lifecycle histogram from the ACDC mirror: event -> count over
  /// a window (events: acquire, consume, release, reject).
  [[nodiscard]] std::map<std::string, std::size_t> lease_events(
      Time from, Time to, const std::string& vo = {}) const {
    return jobs_.lease_events(from, to, vo);
  }
  /// Failover-chain hops summed over acquired leases in the window,
  /// from the ACDC mirror (see also the `placement.fallthroughs` bus
  /// counter via broker_counter).
  [[nodiscard]] std::size_t lease_fallthrough_hops(
      Time from, Time to, const std::string& vo = {}) const {
    return jobs_.lease_fallthrough_hops(from, to, vo);
  }
  /// Gang-matching balance from the ACDC mirror: levels placed whole,
  /// split, or left unplaced over a window.
  [[nodiscard]] JobDatabase::GangSummary gang_events(
      Time from, Time to, const std::string& vo = {}) const {
    return jobs_.gang_events(from, to, vo);
  }
  /// Site-health breaker activity from the ACDC mirror: event -> count
  /// over a window (trip, half-open, probe-ok, probe-fail, readmit).
  [[nodiscard]] std::map<std::string, std::size_t> breaker_events(
      Time from, Time to, const std::string& site = {}) const {
    return jobs_.breaker_events(from, to, site);
  }
  /// Per-site health counter series published on the bus
  /// (health.trips/probes/readmissions; the site name is the bus key).
  [[nodiscard]] const util::TimeSeries& health_counter(
      const std::string& site, const std::string& counter) const {
    return bus_.series(site, counter);
  }

  /// Redundant-path crosscheck (section 5.2): relative divergence between
  /// the ACDC-derived average grid-job concurrency and the MonALISA
  /// VO-activity path (sum of per-site per-VO running-job gauges).
  /// Values near 0 mean the paths agree; a broken collection path shows
  /// up as divergence.
  [[nodiscard]] double crosscheck_divergence(Time from, Time to) const;

 private:
  const JobDatabase& jobs_;
  const MetricBus& bus_;
};

}  // namespace grid3::monitoring
