// Site Status Catalog (paper section 5.2): "periodically tests all sites
// and stores some critical information centrally.  A web interface
// provides a list of all Grid3 sites, their location on a map, their
// status, and other important information."
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace grid3::monitoring {

enum class SiteStatus { kUnknown, kPass, kDegraded, kFail };

[[nodiscard]] const char* to_string(SiteStatus s);

/// One functional probe result.
struct ProbeResult {
  std::string probe;
  bool pass = false;
};

/// A site registers a battery of probes; the catalog runs them on its
/// verification sweep and derives a status: all pass -> kPass, some pass
/// -> kDegraded, none pass -> kFail.
using ProbeBattery = std::function<std::vector<ProbeResult>()>;

struct SiteEntry {
  std::string name;
  std::string location;  ///< institution, for the "map" view
  SiteStatus status = SiteStatus::kUnknown;
  Time last_tested;
  std::vector<ProbeResult> last_results;
};

class SiteStatusCatalog {
 public:
  void register_site(const std::string& name, const std::string& location,
                     ProbeBattery battery);
  void deregister_site(const std::string& name);

  /// Run every site's battery; returns sites whose status changed.
  std::vector<std::string> run_sweep(Time now);

  [[nodiscard]] SiteStatus status(const std::string& name) const;
  [[nodiscard]] const SiteEntry* entry(const std::string& name) const;
  [[nodiscard]] std::vector<const SiteEntry*> all() const;
  [[nodiscard]] std::size_t count(SiteStatus s) const;
  [[nodiscard]] std::size_t site_count() const { return entries_.size(); }

 private:
  struct Registered {
    SiteEntry entry;
    ProbeBattery battery;
  };
  std::map<std::string, Registered> entries_;
};

}  // namespace grid3::monitoring
