// ACDC Job Monitor: pull-based job accounting (paper section 5.2).
//
// "collects information from local job managers using a typical
// pull-based model.  Statistics and job metrics are collected and stored
// in a web-visible database, available for aggregated queries and
// browsing."  Table 1 is computed from exactly this database, so its
// query surface mirrors the table's columns.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/calendar.h"
#include "util/units.h"

namespace grid3::monitoring {

/// One completed (or failed) grid job as accounted by ACDC.
struct JobRecord {
  std::string vo;        ///< user classification (Table 1 columns)
  std::string user_dn;
  std::string site;      ///< execution resource
  std::string app;       ///< application demonstrator name
  Time submitted;
  Time started;
  Time finished;
  bool success = false;
  bool site_problem = false;  ///< failure attribution (section 6.1)
  std::string failure;        ///< failure class when !success
  /// Submit-side identifier (VO/app/sequence) and execution-side GRAM
  /// contact -- the ID linkage section 8's troubleshooting lesson asks
  /// for.
  std::string submit_id;
  std::string gram_contact;

  [[nodiscard]] Time runtime() const { return finished - started; }
};

/// One resource-broker match decision (which site a job was bound to,
/// under which ranking policy).  The broker mirrors its match log here so
/// placement distributions can be queried next to the job records.
struct MatchRecord {
  std::uint64_t seq = 0;
  Time at;
  std::string vo;
  std::string app;
  std::string policy;  ///< ranking policy that made the decision
  std::string site;    ///< chosen execution site
  std::size_t candidates = 0;  ///< admissible sites at decision time
  int rebind = 0;      ///< 0 = initial match, n = nth late-binding re-match
  double score = 0.0;  ///< the chosen site's policy score
};

/// One stage-out lease lifecycle event, mirrored from the placement
/// ledger: how often output space was secured at match time, archived,
/// given back on failure paths, or refused because the destination SE
/// was full (the disk-full failure that never reached a gatekeeper).
struct LeaseRecord {
  std::uint64_t lease = 0;
  Time at;
  std::string vo;
  std::string app;
  std::string dest_site;
  std::string event;  ///< "acquire" | "consume" | "release" | "reject"
  Bytes size;
  std::string completion_site;  ///< set on "consume"
  /// Failover-chain hops taken before `dest_site` accepted (0 = the
  /// primary SE took the lease; on "reject", hops burned before the
  /// whole chain refused).
  int hop = 0;
};

/// One gang-matching decision, mirrored from the broker: a whole DAG
/// level bound as a unit (or split across sites when nothing could host
/// it whole).  Lets placement analysis separate level-co-location from
/// per-job scatter.
struct GangRecord {
  std::uint64_t seq = 0;
  Time at;
  std::string vo;
  std::string gang_id;
  std::string primary;  ///< site hosting the largest member share
  std::size_t width = 0;  ///< gang member count
  bool placed = false;    ///< at least one member got a site
  bool split = false;     ///< the gang did not fit whole
  Bytes intermediates;    ///< level-aggregate intermediate bytes
};

/// One site-health circuit-breaker event, mirrored from the health
/// monitor: trips into quarantine, probation probes, and re-admissions.
/// Lets operations queries line breaker activity up against the job and
/// ticket records it reacted to.
struct BreakerRecord {
  std::uint64_t seq = 0;
  Time at;
  std::string site;
  std::string event;    ///< "trip" | "half-open" | "probe-ok" |
                        ///< "probe-fail" | "readmit"
  std::string service;  ///< service class that tripped it ("" otherwise)
  double score = 0.0;   ///< EWMA failure score at the event
};

/// Per-site transfer accounting feeding Figure 5.
struct TransferEntry {
  std::string src_site;
  std::string dst_site;
  std::string vo;  ///< VO responsible for the transfer
  Bytes size;
  Time finished;
  bool demo = false;  ///< true for the GridFTP demonstrator's traffic
};

/// Aggregated per-VO statistics: one Table 1 column.
struct VoJobStats {
  std::string vo;
  std::size_t users = 0;
  std::size_t sites_used = 0;
  std::size_t jobs = 0;
  double avg_runtime_hours = 0.0;
  double max_runtime_hours = 0.0;
  double total_cpu_days = 0.0;
  std::size_t peak_rate_jobs_per_month = 0;
  std::size_t peak_resources = 0;  ///< distinct sites in the peak month
  std::size_t max_single_resource_jobs = 0;
  double max_single_resource_percent = 0.0;
  std::string peak_month;  ///< "MM-YYYY"
  double peak_cpu_days = 0.0;
};

class JobDatabase {
 public:
  void insert(JobRecord record);
  void insert_transfer(TransferEntry entry);
  void insert_match(MatchRecord match);
  void insert_lease(LeaseRecord lease);
  void insert_gang(GangRecord gang);
  void insert_breaker(BreakerRecord breaker);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<JobRecord>& records() const {
    return records_;
  }
  [[nodiscard]] const std::vector<TransferEntry>& transfers() const {
    return transfers_;
  }
  [[nodiscard]] const std::vector<MatchRecord>& matches() const {
    return matches_;
  }
  [[nodiscard]] const std::vector<LeaseRecord>& leases() const {
    return leases_;
  }
  [[nodiscard]] const std::vector<GangRecord>& gangs() const {
    return gangs_;
  }
  [[nodiscard]] const std::vector<BreakerRecord>& breakers() const {
    return breakers_;
  }

  /// Lease lifecycle counts by event over a window (empty vo = all VOs):
  /// the placement layer's acquire/consume/release/reject balance.
  [[nodiscard]] std::map<std::string, std::size_t> lease_events(
      Time from, Time to, const std::string& vo = {}) const;

  /// Total failover-chain hops across "acquire" lease events in the
  /// window (empty vo = all VOs): how often placement had to route
  /// around a full/quarantined/unreachable SE to land a lease.
  [[nodiscard]] std::size_t lease_fallthrough_hops(
      Time from, Time to, const std::string& vo = {}) const;

  /// Gang-matching balance over a window (empty vo = all VOs): how many
  /// levels were placed whole, split, or left unplaced.
  struct GangSummary {
    std::size_t gangs = 0;
    std::size_t whole = 0;
    std::size_t split = 0;
    std::size_t unplaced = 0;
    std::size_t members = 0;  ///< total member jobs across gangs
  };
  [[nodiscard]] GangSummary gang_events(Time from, Time to,
                                        const std::string& vo = {}) const;

  /// Circuit-breaker activity over a window (empty site = all sites):
  /// event -> count (trip, half-open, probe-ok, probe-fail, readmit).
  [[nodiscard]] std::map<std::string, std::size_t> breaker_events(
      Time from, Time to, const std::string& site = {}) const;

  /// Broker placement distribution: match decisions per chosen site over
  /// a window (empty vo = all VOs).
  [[nodiscard]] std::map<std::string, std::size_t> placements_by_site(
      Time from, Time to, const std::string& vo = {}) const;

  /// Completed production jobs for one VO in [from, to): the Table 1
  /// population ("based on completed production jobs").
  [[nodiscard]] std::vector<const JobRecord*> completed(
      const std::string& vo, Time from, Time to) const;

  /// Table 1 column for one VO over a window.
  [[nodiscard]] VoJobStats stats_for(const std::string& vo, Time from,
                                     Time to) const;

  /// All VOs that appear in the records.
  [[nodiscard]] std::vector<std::string> vos() const;

  /// Jobs per month-index (Figure 6).  `months` entries from the epoch.
  [[nodiscard]] std::vector<std::size_t> jobs_by_month(int months) const;

  /// Failure analysis over a window: (total, failed, failed_site_problem).
  struct FailureSummary {
    std::size_t total = 0;
    std::size_t failed = 0;
    std::size_t site_problem = 0;
    std::map<std::string, std::size_t> by_class;
    [[nodiscard]] double failure_rate() const {
      return total > 0 ? static_cast<double>(failed) /
                             static_cast<double>(total)
                       : 0.0;
    }
    [[nodiscard]] double site_problem_share() const {
      return failed > 0 ? static_cast<double>(site_problem) /
                              static_cast<double>(failed)
                        : 0.0;
    }
  };
  [[nodiscard]] FailureSummary failures(const std::string& vo, Time from,
                                        Time to) const;

  /// Bytes consumed (received) per VO in a window (Figure 5), split into
  /// (total, demonstrator-only).
  [[nodiscard]] std::map<std::string, std::pair<Bytes, Bytes>>
  bytes_consumed_by_vo(Time from, Time to) const;

  /// Bytes consumed per destination site for one VO ("data consumed by
  /// Grid3 sites").
  [[nodiscard]] std::map<std::string, Bytes> bytes_consumed_by_site(
      Time from, Time to) const;

 private:
  std::vector<JobRecord> records_;
  std::vector<TransferEntry> transfers_;
  std::vector<MatchRecord> matches_;
  std::vector<LeaseRecord> leases_;
  std::vector<GangRecord> gangs_;
  std::vector<BreakerRecord> breakers_;
};

}  // namespace grid3::monitoring
