// GridFTP servers and a retrying url-copy client.
//
// Transfers ride the net::Network fair-share model.  Destination disk
// space is checked at transfer start but only *claimed* when the data
// lands -- the bare-GridFTP TOCTOU window that let concurrent transfers
// overfill a disk (the failure SRM reservations would have prevented,
// section 6.2).  Passing a pre-made SRM reservation closes the window.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "gridftp/netlogger.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "srm/disk.h"
#include "srm/srm.h"
#include "util/retry.h"
#include "util/units.h"

namespace grid3::gridftp {

enum class TransferStatus {
  kCompleted,
  kFailedNetwork,     ///< interruption persisted through all retries
  kFailedNoSpace,     ///< destination disk filled
  kFailedServerDown,  ///< src or dst GridFTP server unavailable
  kFailedNoRoute,     ///< firewall / connectivity refused
  kCancelled,
};

[[nodiscard]] const char* to_string(TransferStatus s);

/// Per-site GridFTP server state.
class GridFtpServer {
 public:
  GridFtpServer(std::string site, net::NodeId node)
      : site_{std::move(site)}, node_{node} {}

  [[nodiscard]] const std::string& site() const { return site_; }
  [[nodiscard]] net::NodeId node() const { return node_; }

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

  void count_transfer(Bytes b, bool inbound) {
    if (inbound) {
      bytes_in_ += b;
      ++transfers_in_;
    } else {
      bytes_out_ += b;
      ++transfers_out_;
    }
  }
  [[nodiscard]] Bytes bytes_in() const { return bytes_in_; }
  [[nodiscard]] Bytes bytes_out() const { return bytes_out_; }
  [[nodiscard]] std::uint64_t transfers_in() const { return transfers_in_; }
  [[nodiscard]] std::uint64_t transfers_out() const { return transfers_out_; }

 private:
  std::string site_;
  net::NodeId node_;
  bool up_ = true;
  Bytes bytes_in_;
  Bytes bytes_out_;
  std::uint64_t transfers_in_ = 0;
  std::uint64_t transfers_out_ = 0;
};

struct TransferRequest {
  GridFtpServer* src = nullptr;
  GridFtpServer* dst = nullptr;
  Bytes size;
  std::string lfn;  ///< logical file name, for logs and RLS registration
  /// Destination volume for space accounting; nullptr = unmanaged path
  /// (e.g. an external archive with effectively infinite tape).
  srm::DiskVolume* dest_volume = nullptr;
  /// Pre-reserved SRM space: when set, bytes land inside the reservation
  /// and the TOCTOU window is closed.
  srm::StorageResourceManager* dest_srm = nullptr;
  srm::ReservationId reservation = 0;
  /// Retry schedule for network-interrupted attempts (flat backoff).
  util::RetryPolicy retry{.base = Time::minutes(2), .max_retries = 2};
};

struct TransferRecord {
  TransferStatus status = TransferStatus::kCancelled;
  Bytes requested;
  Bytes transferred;
  Time started;
  Time finished;
  int attempts = 0;
  std::string lfn;
  [[nodiscard]] bool ok() const { return status == TransferStatus::kCompleted; }
  [[nodiscard]] Bandwidth throughput() const {
    const double secs = (finished - started).to_seconds();
    return secs > 0 ? Bandwidth::bytes_per_sec(
                          static_cast<double>(transferred.count()) / secs)
                    : Bandwidth{};
  }
};

using TransferCallback = std::function<void(const TransferRecord&)>;

/// globus-url-copy with retry.  One client instance can drive any number
/// of concurrent transfers.
class GridFtpClient {
 public:
  GridFtpClient(sim::Simulation& sim, net::Network& network,
                NetLogger* logger = nullptr)
      : sim_{sim}, net_{network}, logger_{logger} {}

  void transfer(TransferRequest req, TransferCallback done);

  [[nodiscard]] std::uint64_t started() const { return started_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }

 private:
  struct Attempt {
    TransferRequest req;
    TransferCallback done;
    Time first_started;
    int attempts = 0;
  };

  void begin_attempt(Attempt att);
  void finish(Attempt att, const net::FlowResult& flow);
  void report(const Attempt& att, TransferStatus status, Bytes moved,
              Time started);

  sim::Simulation& sim_;
  net::Network& net_;
  NetLogger* logger_;
  std::uint64_t started_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace grid3::gridftp
