#include "gridftp/netlogger.h"

namespace grid3::gridftp {

void NetLogger::log(Time t, std::string program, std::string event,
                    std::string detail, double value) {
  events_.push_back(
      {t, std::move(program), std::move(event), std::move(detail), value});
}

std::size_t NetLogger::count(const std::string& event) const {
  std::size_t n = 0;
  for (const auto& e : events_) {
    if (e.event == event) ++n;
  }
  return n;
}

std::map<std::string, std::size_t> NetLogger::counts_by_event() const {
  std::map<std::string, std::size_t> out;
  for (const auto& e : events_) ++out[e.event];
  return out;
}

}  // namespace grid3::gridftp
