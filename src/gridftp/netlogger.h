// NetLogger-style instrumentation (paper section 4.7): events are
// generated at program start, end, and on errors, and optionally for all
// significant I/O requests.  The data-transfer study benches read these
// events back to report reliability.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/units.h"

namespace grid3::gridftp {

struct NetLogEvent {
  Time t;
  std::string program;  ///< e.g. "gridftp-server", "url-copy"
  std::string event;    ///< e.g. "transfer.start", "transfer.error"
  std::string detail;
  double value = 0.0;  ///< bytes, rate, etc. depending on event
};

class NetLogger {
 public:
  /// When verbose, callers also log per-I/O events ("by request" in the
  /// paper); default logs start/end/error only.
  explicit NetLogger(bool verbose = false) : verbose_{verbose} {}

  void log(Time t, std::string program, std::string event,
           std::string detail = {}, double value = 0.0);

  [[nodiscard]] bool verbose() const { return verbose_; }
  [[nodiscard]] const std::vector<NetLogEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::size_t count(const std::string& event) const;
  [[nodiscard]] std::map<std::string, std::size_t> counts_by_event() const;

  void clear() { events_.clear(); }

 private:
  bool verbose_;
  std::vector<NetLogEvent> events_;
};

}  // namespace grid3::gridftp
