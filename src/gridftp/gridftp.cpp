#include "gridftp/gridftp.h"

#include <cassert>
#include <memory>
#include <utility>

namespace grid3::gridftp {

const char* to_string(TransferStatus s) {
  switch (s) {
    case TransferStatus::kCompleted: return "completed";
    case TransferStatus::kFailedNetwork: return "failed-network";
    case TransferStatus::kFailedNoSpace: return "failed-no-space";
    case TransferStatus::kFailedServerDown: return "failed-server-down";
    case TransferStatus::kFailedNoRoute: return "failed-no-route";
    case TransferStatus::kCancelled: return "cancelled";
  }
  return "?";
}

void GridFtpClient::transfer(TransferRequest req, TransferCallback done) {
  assert(req.src != nullptr && req.dst != nullptr);
  ++started_;
  Attempt att;
  att.first_started = sim_.now();
  att.req = std::move(req);
  att.done = std::move(done);
  if (logger_ != nullptr) {
    logger_->log(sim_.now(), "url-copy", "transfer.start", att.req.lfn,
                 static_cast<double>(att.req.size.count()));
  }
  begin_attempt(std::move(att));
}

void GridFtpClient::begin_attempt(Attempt att) {
  ++att.attempts;
  const TransferRequest& req = att.req;

  if (!req.src->available() || !req.dst->available()) {
    report(att, TransferStatus::kFailedServerDown, Bytes::zero(),
           att.first_started);
    return;
  }
  // Fast-fail when the destination is already visibly full (the naive
  // free-space probe every production script did).  With an SRM
  // reservation the space is guaranteed instead.
  if (req.dest_srm == nullptr && req.dest_volume != nullptr &&
      req.dest_volume->free() < req.size) {
    report(att, TransferStatus::kFailedNoSpace, Bytes::zero(),
           att.first_started);
    return;
  }

  // Move attempt state into the flow callback; `this` outlives all flows.
  auto shared = std::make_shared<Attempt>(std::move(att));
  net_.start_flow(
      shared->req.src->node(), shared->req.dst->node(), shared->req.size,
      [this, shared](const net::FlowResult& flow) {
        finish(std::move(*shared), flow);
      });
}

void GridFtpClient::finish(Attempt att, const net::FlowResult& flow) {
  const TransferRequest& req = att.req;
  switch (flow.status) {
    case net::FlowStatus::kCompleted: {
      // Land the bytes: claim destination space now (TOCTOU window for
      // the unmanaged path) or account into the SRM reservation.
      if (req.dest_srm != nullptr && req.reservation != 0) {
        const auto pin =
            req.dest_srm->put(req.reservation, req.lfn, req.size, sim_.now());
        if (!pin.has_value()) {
          report(att, TransferStatus::kFailedNoSpace, Bytes::zero(),
                 att.first_started);
          return;
        }
      } else if (req.dest_volume != nullptr) {
        if (!req.dest_volume->allocate(req.size)) {
          report(att, TransferStatus::kFailedNoSpace, Bytes::zero(),
                 att.first_started);
          return;
        }
      }
      req.src->count_transfer(req.size, /*inbound=*/false);
      req.dst->count_transfer(req.size, /*inbound=*/true);
      report(att, TransferStatus::kCompleted, req.size, att.first_started);
      return;
    }
    case net::FlowStatus::kFailedNetworkInterruption: {
      if (att.req.retry.allows(att.attempts - 1)) {
        if (logger_ != nullptr) {
          logger_->log(sim_.now(), "url-copy", "transfer.retry", req.lfn,
                       static_cast<double>(att.attempts));
        }
        const Time backoff = att.req.retry.delay(att.attempts);
        auto shared = std::make_shared<Attempt>(std::move(att));
        sim_.schedule_in(backoff, [this, shared] {
          begin_attempt(std::move(*shared));
        });
        return;
      }
      report(att, TransferStatus::kFailedNetwork, flow.transferred,
             att.first_started);
      return;
    }
    case net::FlowStatus::kFailedNoRoute:
      report(att, TransferStatus::kFailedNoRoute, Bytes::zero(),
             att.first_started);
      return;
    case net::FlowStatus::kCancelled:
      report(att, TransferStatus::kCancelled, flow.transferred,
             att.first_started);
      return;
  }
}

void GridFtpClient::report(const Attempt& att, TransferStatus status,
                           Bytes moved, Time started) {
  TransferRecord rec;
  rec.status = status;
  rec.requested = att.req.size;
  rec.transferred = moved;
  rec.started = started;
  rec.finished = sim_.now();
  rec.attempts = att.attempts;
  rec.lfn = att.req.lfn;
  if (status == TransferStatus::kCompleted) {
    ++completed_;
  } else {
    ++failed_;
  }
  if (logger_ != nullptr) {
    logger_->log(sim_.now(), "url-copy",
                 status == TransferStatus::kCompleted ? "transfer.end"
                                                      : "transfer.error",
                 att.req.lfn, static_cast<double>(moved.count()));
  }
  if (att.done) att.done(rec);
}

}  // namespace grid3::gridftp
