#include "gram/gatekeeper.h"

#include <algorithm>
#include <cassert>

namespace grid3::gram {

const char* to_string(GramStatus s) {
  switch (s) {
    case GramStatus::kCompleted: return "completed";
    case GramStatus::kAuthenticationFailed: return "authentication-failed";
    case GramStatus::kGatekeeperDown: return "gatekeeper-down";
    case GramStatus::kGatekeeperOverloaded: return "gatekeeper-overloaded";
    case GramStatus::kStageInFailed: return "stage-in-failed";
    case GramStatus::kSubmitRejected: return "submit-rejected";
    case GramStatus::kJobKilled: return "job-killed";
    case GramStatus::kStageOutFailed: return "stage-out-failed";
    case GramStatus::kProxyExpired: return "proxy-expired";
    case GramStatus::kDiskFull: return "disk-full";
    case GramStatus::kApplicationError: return "application-error";
    case GramStatus::kEnvironmentError: return "environment-error";
  }
  return "?";
}

bool is_site_problem(GramStatus s) {
  switch (s) {
    case GramStatus::kGatekeeperDown:
    case GramStatus::kGatekeeperOverloaded:
    case GramStatus::kStageInFailed:
    case GramStatus::kJobKilled:
    case GramStatus::kStageOutFailed:
    case GramStatus::kDiskFull:
    case GramStatus::kEnvironmentError:
      return true;
    case GramStatus::kCompleted:
    case GramStatus::kAuthenticationFailed:
    case GramStatus::kSubmitRejected:
    case GramStatus::kProxyExpired:
    case GramStatus::kApplicationError:
      return false;
  }
  return false;
}

double staging_load_factor(Bytes stage_in, Bytes stage_out) {
  const Bytes total = stage_in + stage_out;
  if (total == Bytes::zero()) return 1.0;
  if (total < Bytes::mb(500)) return 2.0;
  if (total < Bytes::gb(4)) return 3.0;
  return 4.0;
}

Gatekeeper::Gatekeeper(sim::Simulation& sim, GatekeeperConfig cfg,
                       batch::BatchScheduler& lrms,
                       const vo::GridMapFile& gridmap,
                       const vo::CertificateAuthority& ca,
                       gridftp::GridFtpClient& ftp_client,
                       gridftp::GridFtpServer& local_ftp,
                       srm::DiskVolume& scratch)
    : sim_{sim},
      cfg_{std::move(cfg)},
      lrms_{lrms},
      gridmap_{gridmap},
      ca_{ca},
      ftp_{ftp_client},
      local_ftp_{local_ftp},
      scratch_{scratch},
      rng_{cfg_.rng_seed} {}

void Gatekeeper::record_burst() {
  recent_submissions_.push_back(sim_.now());
}

std::size_t Gatekeeper::arrivals_last_minute() const {
  const Time cutoff = sim_.now() - Time::minutes(1);
  std::size_t n = 0;
  for (auto it = recent_submissions_.rbegin();
       it != recent_submissions_.rend() && *it >= cutoff; ++it) {
    ++n;
  }
  return n;
}

double Gatekeeper::burst_load() const {
  // Submissions within the last minute each add burst_weight.
  return cfg_.burst_weight * static_cast<double>(arrivals_last_minute());
}

double Gatekeeper::one_minute_load() const {
  double sustained = 0.0;
  for (const auto& [id, m] : managed_) {
    sustained += cfg_.per_job_load * m.staging_factor;
  }
  return sustained + burst_load();
}

std::string Gatekeeper::contact_for(std::uint64_t id) const {
  return cfg_.site + "/jobmanager/" + std::to_string(id);
}

void Gatekeeper::submit(GramJob job, GramCallback done) {
  ++submissions_;
  const Time now = sim_.now();

  auto reject = [&](GramStatus status) {
    ++failures_;
    GramResult r;
    r.status = status;
    r.submitted = r.finished = now;
    if (done) done(r);
  };

  if (!up_) {
    reject(GramStatus::kGatekeeperDown);
    return;
  }
  // Trim the burst window lazily, then check overload *including* this
  // submission attempt (connecting costs load even when refused).
  while (!recent_submissions_.empty() &&
         recent_submissions_.front() < now - Time::minutes(1)) {
    recent_submissions_.pop_front();
  }
  record_burst();
  peak_load_ = std::max(peak_load_, one_minute_load());
  peak_arrivals_ = std::max(peak_arrivals_, arrivals_last_minute());
  if (one_minute_load() > cfg_.overload_threshold) {
    ++overload_rejections_;
    reject(GramStatus::kGatekeeperOverloaded);
    return;
  }
  // Flaky jobmanagers bounce a fraction of submissions outright (the
  // transient GRAM errors every Grid3 operator chased).
  if (rng_.chance(cfg_.submission_flake_rate)) {
    reject(GramStatus::kGatekeeperDown);
    return;
  }
  // GSI: proxy validity, CA chain on the identity, grid-map entry.
  if (!job.proxy.valid(now) || !ca_.verify(job.proxy.identity, now)) {
    reject(GramStatus::kAuthenticationFailed);
    return;
  }
  const auto account = gridmap_.map(job.proxy.identity.subject_dn);
  if (!account.has_value() || account->vo != job.proxy.vo) {
    reject(GramStatus::kAuthenticationFailed);
    return;
  }

  const std::uint64_t id = next_id_++;
  Managed m;
  m.id = id;
  m.staging_factor = staging_load_factor(job.stage_in, job.stage_out);
  m.job = std::move(job);
  m.done = std::move(done);
  m.submitted = now;
  // Claim scratch space for the working directory + staged input.
  const Bytes footprint = m.job.scratch + m.job.stage_in;
  if (footprint > Bytes::zero()) {
    if (!scratch_.allocate(footprint)) {
      ++failures_;
      GramResult r;
      r.status = GramStatus::kDiskFull;
      r.gram_contact = contact_for(id);
      r.submitted = r.finished = now;
      if (m.done) m.done(r);
      return;
    }
    m.scratch_held = true;
  }
  managed_.emplace(id, std::move(m));
  stage_in(id);
}

void Gatekeeper::stage_in(std::uint64_t id) {
  Managed& m = managed_.at(id);
  if (m.job.stage_in == Bytes::zero() || m.job.stage_in_source == nullptr) {
    to_lrms(id);
    return;
  }
  gridftp::TransferRequest req;
  req.src = m.job.stage_in_source;
  req.dst = &local_ftp_;
  req.size = m.job.stage_in;
  req.lfn = "stage-in/" + contact_for(id);
  // Scratch was already claimed at submission, so no volume double-count.
  ftp_.transfer(std::move(req), [this, id](const gridftp::TransferRecord& t) {
    auto it = managed_.find(id);
    if (it == managed_.end()) return;
    if (!t.ok()) {
      fail(id, GramStatus::kStageInFailed, t.attempts);
      return;
    }
    to_lrms(id);
  });
}

void Gatekeeper::to_lrms(std::uint64_t id) {
  Managed& m = managed_.at(id);
  const auto res = lrms_.submit(
      m.job.request, [this, id](const batch::JobOutcome& outcome) {
        auto it = managed_.find(id);
        if (it == managed_.end()) return;
        switch (outcome.state) {
          case batch::JobState::kCompleted: {
            // The batch job ended, but production steps can still have
            // spoiled the output: broken site environments (latent
            // misconfigurations) and plain application crashes.
            if (rng_.chance(cfg_.environment_error_rate)) {
              fail(id, GramStatus::kEnvironmentError);
              return;
            }
            if (rng_.chance(cfg_.app_error_rate)) {
              fail(id, GramStatus::kApplicationError);
              return;
            }
            stage_out(id, outcome);
            return;
          }
          case batch::JobState::kRejected:
            fail(id, GramStatus::kSubmitRejected);
            return;
          default:
            killed(id, outcome);
            return;
        }
      });
  if (!res.accepted) {
    // The LRMS callback already fired with kRejected; nothing to do here.
    (void)res;
  }
}

void Gatekeeper::stage_out(std::uint64_t id, const batch::JobOutcome& outcome) {
  Managed& m = managed_.at(id);
  if (m.job.stage_out == Bytes::zero() || m.job.stage_out_dest == nullptr) {
    complete(id, outcome);
    return;
  }
  // Credential check: long jobs outlive default proxies.
  if (!m.job.proxy.valid(sim_.now())) {
    fail(id, GramStatus::kProxyExpired);
    return;
  }
  gridftp::TransferRequest req;
  req.src = &local_ftp_;
  req.dst = m.job.stage_out_dest;
  req.size = m.job.stage_out;
  req.lfn = "stage-out/" + contact_for(id);
  // Destination-SE accounting: a placement lease's SRM reservation when
  // one was acquired, else the raw volume (TOCTOU path).
  req.dest_volume = m.job.stage_out_volume;
  req.dest_srm = m.job.stage_out_srm;
  req.reservation = m.job.stage_out_reservation;
  ftp_.transfer(std::move(req),
                [this, id, outcome](const gridftp::TransferRecord& t) {
                  auto it = managed_.find(id);
                  if (it == managed_.end()) return;
                  if (!t.ok()) {
                    if (t.status ==
                        gridftp::TransferStatus::kFailedNoSpace) {
                      ++stage_out_no_space_;
                      fail(id, GramStatus::kDiskFull, t.attempts);
                      return;
                    }
                    fail(id, GramStatus::kStageOutFailed, t.attempts);
                    return;
                  }
                  complete(id, outcome);
                });
}

void Gatekeeper::release_scratch(Managed& m) {
  if (m.scratch_held) {
    scratch_.release(m.job.scratch + m.job.stage_in);
    m.scratch_held = false;
  }
}

void Gatekeeper::fail(std::uint64_t id, GramStatus status,
                      int stage_attempts) {
  auto it = managed_.find(id);
  assert(it != managed_.end());
  Managed m = std::move(it->second);
  managed_.erase(it);
  release_scratch(m);
  ++failures_;
  GramResult r;
  r.status = status;
  r.gram_contact = contact_for(id);
  r.submitted = m.submitted;
  r.finished = sim_.now();
  r.stage_attempts = stage_attempts;
  if (m.done) m.done(r);
}

void Gatekeeper::killed(std::uint64_t id, const batch::JobOutcome& outcome) {
  auto it = managed_.find(id);
  assert(it != managed_.end());
  Managed m = std::move(it->second);
  managed_.erase(it);
  release_scratch(m);
  ++failures_;
  GramResult r;
  r.status = GramStatus::kJobKilled;
  r.gram_contact = contact_for(id);
  r.outcome = outcome;
  r.submitted = m.submitted;
  r.finished = sim_.now();
  if (m.done) m.done(r);
}

void Gatekeeper::complete(std::uint64_t id, const batch::JobOutcome& outcome) {
  auto it = managed_.find(id);
  assert(it != managed_.end());
  Managed m = std::move(it->second);
  managed_.erase(it);
  release_scratch(m);
  ++completions_;
  GramResult r;
  r.status = GramStatus::kCompleted;
  r.gram_contact = contact_for(id);
  r.outcome = outcome;
  r.submitted = m.submitted;
  r.finished = sim_.now();
  if (m.done) m.done(r);
}

}  // namespace grid3::gram
