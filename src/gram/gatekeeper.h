// GRAM gatekeeper and jobmanager lifecycle.
//
// Every grid job passes through the site gatekeeper: GSI authentication
// against the grid-map file, stage-in over GridFTP, hand-off to the
// local batch scheduler, and stage-out of outputs.  The gatekeeper host
// load follows the paper's section 6.4 analysis:
//
//   "a typical gatekeeper using a queue manager will experience a
//    sustained one minute load of ~225 when managing ~1000 computational
//    jobs.  This load can sharply increase when the job submission
//    frequency is high ... For computational jobs that only require a
//    minimal amount of production node file staging, a factor of two can
//    be applied to the sustained load; on the other hand computational
//    jobs requiring a substantial amount of file staging the factor can
//    increase to three or four."
//
// i.e. load = 0.225 * sum_over_managed_jobs(staging_factor) + burst term,
// with staging_factor 1 (none), 2 (minimal), 3 (substantial), 4 (heavy).
// Above an overload threshold new submissions start timing out -- the
// "gatekeeper overloading" failures of section 6.1.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "batch/scheduler.h"
#include "gridftp/gridftp.h"
#include "net/network.h"
#include "srm/disk.h"
#include "srm/srm.h"
#include "util/rng.h"
#include "util/units.h"
#include "vo/gridmap.h"
#include "vo/voms.h"

namespace grid3::gram {

enum class GramStatus {
  kCompleted,
  kAuthenticationFailed,  ///< no grid-map entry / bad proxy
  kGatekeeperDown,
  kGatekeeperOverloaded,
  kStageInFailed,
  kSubmitRejected,   ///< LRMS refused (walltime, policy)
  kJobKilled,        ///< walltime or node failure at the LRMS
  kStageOutFailed,
  kProxyExpired,     ///< credential lapsed before stage-out
  kDiskFull,         ///< scratch allocation failed
  kApplicationError, ///< the job itself crashed (bad code/data; not site)
  kEnvironmentError, ///< broken site environment (latent misconfiguration)
};

[[nodiscard]] const char* to_string(GramStatus s);
/// Paper section 6.1 classifies ~90% of failures as site problems; this
/// mirrors that taxonomy (true = the site, not the application/user).
[[nodiscard]] bool is_site_problem(GramStatus s);

/// Staging intensity classes from section 6.4.
[[nodiscard]] double staging_load_factor(Bytes stage_in, Bytes stage_out);

struct GramJob {
  vo::VomsProxy proxy;
  batch::JobRequest request;
  Bytes stage_in;                 ///< input to pull before the job runs
  Bytes stage_out;                ///< output to push after success
  gridftp::GridFtpServer* stage_in_source = nullptr;   ///< null = no stage-in
  gridftp::GridFtpServer* stage_out_dest = nullptr;    ///< null = no stage-out
  /// Destination-SE space accounting for the stage-out (null = unmanaged
  /// archive).  When a placement lease pre-reserved SRM space, the bytes
  /// land inside `stage_out_reservation` and the TOCTOU window is closed;
  /// a full destination surfaces as kDiskFull (transient -> the broker
  /// re-matches) rather than a generic stage-out failure.
  srm::DiskVolume* stage_out_volume = nullptr;
  srm::StorageResourceManager* stage_out_srm = nullptr;
  srm::ReservationId stage_out_reservation = 0;
  Bytes scratch;                  ///< working-directory footprint
};

struct GramResult {
  GramStatus status = GramStatus::kGatekeeperDown;
  std::string gram_contact;  ///< "<site>/jobmanager/<id>"
  batch::JobOutcome outcome; ///< valid when the job reached the LRMS
  Time submitted;
  Time finished;
  int stage_attempts = 0;
  [[nodiscard]] bool ok() const { return status == GramStatus::kCompleted; }
};

using GramCallback = std::function<void(const GramResult&)>;

struct GatekeeperConfig {
  std::string site;
  /// Load above which new submissions start failing.
  double overload_threshold = 400.0;
  /// Load contribution of one submission burst unit (decays over a
  /// minute).
  double burst_weight = 0.4;
  /// Sustained per-job coefficient from the paper (225/1000).
  double per_job_load = 0.225;
  /// Probability a submission bounces off a flaky jobmanager (transient
  /// GRAM errors; a site problem, retried by DAGMan and visible in the
  /// accounting, as on the real grid).
  double submission_flake_rate = 0.05;
  /// Probability a completed job is spoiled by its own application
  /// (user error; not a site problem).
  double app_error_rate = 0.02;
  /// Probability a completed job dies to a broken site environment
  /// (latent install misconfigurations; a site problem).  Sites set this
  /// from their install reports.
  double environment_error_rate = 0.0;
  std::uint64_t rng_seed = 0x6a0b5;
};

/// The gatekeeper service at one site.
class Gatekeeper {
 public:
  Gatekeeper(sim::Simulation& sim, GatekeeperConfig cfg,
             batch::BatchScheduler& lrms, const vo::GridMapFile& gridmap,
             const vo::CertificateAuthority& ca,
             gridftp::GridFtpClient& ftp_client,
             gridftp::GridFtpServer& local_ftp, srm::DiskVolume& scratch);

  Gatekeeper(const Gatekeeper&) = delete;
  Gatekeeper& operator=(const Gatekeeper&) = delete;

  /// Submit a grid job.  The callback fires exactly once with the final
  /// disposition.
  void submit(GramJob job, GramCallback done);

  /// One-minute load average per the section 6.4 model.
  [[nodiscard]] double one_minute_load() const;

  /// Highest one-minute load observed at any submission, over the
  /// gatekeeper's lifetime (the overload-ablation headline number).
  [[nodiscard]] double peak_one_minute_load() const { return peak_load_; }

  /// Burst arrival accounting: submissions that landed within the last
  /// minute (each contributes `burst_weight` to the section 6.4 load),
  /// and the lifetime peak of that count.  Gang matching predicts its
  /// burst impact from exactly this term: submitting a whole DAG level
  /// at once adds width * burst_weight in one minute, which the broker
  /// caps against its load ceiling before binding the gang.
  [[nodiscard]] std::size_t arrivals_last_minute() const;
  [[nodiscard]] std::size_t peak_one_minute_arrivals() const {
    return peak_arrivals_;
  }

  [[nodiscard]] std::size_t managed_jobs() const { return managed_.size(); }
  [[nodiscard]] const std::string& site() const { return cfg_.site; }
  [[nodiscard]] const GatekeeperConfig& config() const { return cfg_; }

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

  /// Install quality wiring: latent misconfigurations raise the chance
  /// that otherwise-successful jobs die to the site environment and make
  /// the jobmanager itself flakier.
  void set_environment_error_rate(double rate) {
    cfg_.environment_error_rate = rate;
  }
  void set_submission_flake_rate(double rate) {
    cfg_.submission_flake_rate = rate;
  }

  // Accounting.
  [[nodiscard]] std::uint64_t submissions() const { return submissions_; }
  [[nodiscard]] std::uint64_t completions() const { return completions_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] std::uint64_t overload_rejections() const {
    return overload_rejections_;
  }
  /// Stage-out attempts that died to a full destination SE -- the
  /// failure class placement leases convert into match-time rejections.
  [[nodiscard]] std::uint64_t stage_out_no_space() const {
    return stage_out_no_space_;
  }

 private:
  struct Managed {
    std::uint64_t id;
    GramJob job;
    GramCallback done;
    Time submitted;
    double staging_factor = 1.0;
    bool scratch_held = false;
  };

  void record_burst();
  [[nodiscard]] double burst_load() const;
  void fail(std::uint64_t id, GramStatus status, int stage_attempts = 0);
  void complete(std::uint64_t id, const batch::JobOutcome& outcome);
  void killed(std::uint64_t id, const batch::JobOutcome& outcome);
  void stage_in(std::uint64_t id);
  void to_lrms(std::uint64_t id);
  void stage_out(std::uint64_t id, const batch::JobOutcome& outcome);
  void release_scratch(Managed& m);
  [[nodiscard]] std::string contact_for(std::uint64_t id) const;

  sim::Simulation& sim_;
  GatekeeperConfig cfg_;
  batch::BatchScheduler& lrms_;
  const vo::GridMapFile& gridmap_;
  const vo::CertificateAuthority& ca_;
  gridftp::GridFtpClient& ftp_;
  gridftp::GridFtpServer& local_ftp_;
  srm::DiskVolume& scratch_;
  bool up_ = true;
  util::Rng rng_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Managed> managed_;
  std::deque<Time> recent_submissions_;  ///< for the burst term
  std::uint64_t submissions_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t overload_rejections_ = 0;
  std::uint64_t stage_out_no_space_ = 0;
  double peak_load_ = 0.0;
  std::size_t peak_arrivals_ = 0;  ///< max submissions in any one minute
};

}  // namespace grid3::gram
