// Condor-G: the client-side computation-management agent (paper ref
// [41]).  Grid3 experiments submitted through Condor-G, which persists a
// job until the remote gatekeeper accepts it, retrying transient refusals
// (overload, downtime) with backoff.  Permanent failures (authentication,
// policy rejection) pass straight through to the caller -- DAGMan decides
// what to do with those.
#pragma once

#include <cstdint>
#include <memory>

#include "gram/gatekeeper.h"
#include "sim/simulation.h"
#include "util/retry.h"

namespace grid3::gram {

struct CondorGConfig {
  /// Transient-refusal retry schedule (flat backoff).
  util::RetryPolicy retry{.base = Time::minutes(5), .max_retries = 3};
};

[[nodiscard]] bool is_transient(GramStatus s);

class CondorG {
 public:
  CondorG(sim::Simulation& sim, CondorGConfig cfg = {})
      : sim_{sim}, cfg_{cfg} {}
  CondorG(const CondorG&) = delete;
  CondorG& operator=(const CondorG&) = delete;

  /// Submit `job` to `gk`, retrying transient failures.  The callback
  /// fires exactly once with the final result (last attempt's result on
  /// exhaustion).
  void submit_to(Gatekeeper& gk, GramJob job, GramCallback done);

  [[nodiscard]] std::uint64_t submissions() const { return submissions_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

 private:
  void attempt(Gatekeeper& gk, GramJob job, GramCallback done,
               int tries_left);

  sim::Simulation& sim_;
  CondorGConfig cfg_;
  std::uint64_t submissions_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace grid3::gram
