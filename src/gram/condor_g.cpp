#include "gram/condor_g.h"

namespace grid3::gram {

bool is_transient(GramStatus s) {
  switch (s) {
    case GramStatus::kGatekeeperOverloaded:
    case GramStatus::kGatekeeperDown:
    case GramStatus::kStageInFailed:
    case GramStatus::kDiskFull:
      return true;
    default:
      return false;
  }
}

void CondorG::submit_to(Gatekeeper& gk, GramJob job, GramCallback done) {
  ++submissions_;
  attempt(gk, std::move(job), std::move(done), cfg_.retry.max_retries);
}

void CondorG::attempt(Gatekeeper& gk, GramJob job, GramCallback done,
                      int tries_left) {
  // The job is copied into the gatekeeper; keep our own copy for retry.
  auto retry_job = std::make_shared<GramJob>(job);
  auto cb = std::make_shared<GramCallback>(std::move(done));
  gk.submit(std::move(job), [this, &gk, retry_job, cb,
                             tries_left](const GramResult& r) {
    if (!r.ok() && is_transient(r.status) && tries_left > 0) {
      ++retries_;
      sim_.schedule_in(cfg_.retry.delay(1), [this, &gk, retry_job, cb,
                                             tries_left] {
        attempt(gk, *retry_job, std::move(*cb), tries_left - 1);
      });
      return;
    }
    if (*cb) (*cb)(r);
  });
}

}  // namespace grid3::gram
