#include "batch/scheduler.h"

namespace grid3::batch {

std::optional<std::size_t> PbsScheduler::pick_next() {
  // Strict FIFO within descending priority class.  Backfill (< 0) waits
  // for an otherwise empty queue like every other low-priority job.
  const auto& q = queue();
  if (q.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < q.size(); ++i) {
    if (q[i].req.priority > q[best].req.priority) best = i;
  }
  return best;
}

}  // namespace grid3::batch
