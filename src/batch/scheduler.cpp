#include "batch/scheduler.h"

#include <algorithm>
#include <cassert>

namespace grid3::batch {

const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kCompleted: return "completed";
    case JobState::kKilledWalltime: return "killed-walltime";
    case JobState::kKilledNodeFailure: return "killed-node-failure";
    case JobState::kKilledAdmin: return "killed-admin";
    case JobState::kRejected: return "rejected";
  }
  return "?";
}

BatchScheduler::BatchScheduler(sim::Simulation& sim, SchedulerConfig cfg)
    : sim_{sim}, cfg_{std::move(cfg)} {
  assert(cfg_.slots > 0);
}

BatchScheduler::~BatchScheduler() {
  for (auto& [id, job] : running_) {
    if (job.completion != 0) sim_.cancel(job.completion);
  }
}

SubmitResult BatchScheduler::submit(const JobRequest& req, CompletionFn done) {
  // Policy gate 1: queue walltime limit (section 6.4, requirement 3 --
  // "queue managed Grid3 resources required every computational job to
  // specify the runtime requested").
  if (enforces_walltime() && req.requested_walltime > cfg_.max_walltime) {
    if (done) {
      JobOutcome out;
      out.state = JobState::kRejected;
      out.vo = req.vo;
      out.submitted = sim_.now();
      done(out);
    }
    return {false, 0, "requested walltime exceeds queue limit"};
  }
  // Policy gate 2: closed share lists refuse foreign VOs.
  if (cfg_.closed_shares && !cfg_.vo_shares.contains(req.vo)) {
    if (done) {
      JobOutcome out;
      out.state = JobState::kRejected;
      out.vo = req.vo;
      out.submitted = sim_.now();
      done(out);
    }
    return {false, 0, "VO not authorized on this resource"};
  }

  const LocalJobId id = next_id_++;
  queue_.push_back({id, req, sim_.now()});
  queued_callbacks_.emplace(id, std::move(done));
  dispatch();
  notify_observer();
  return {true, id, {}};
}

bool BatchScheduler::cancel(LocalJobId id) {
  // Queued?
  auto qit = std::find_if(queue_.begin(), queue_.end(),
                          [&](const QueuedJob& j) { return j.id == id; });
  if (qit != queue_.end()) {
    JobOutcome out;
    out.id = id;
    out.state = JobState::kKilledAdmin;
    out.vo = qit->req.vo;
    out.submitted = qit->submitted;
    out.started = out.finished = sim_.now();
    auto cb = std::move(queued_callbacks_[id]);
    queued_callbacks_.erase(id);
    queue_.erase(qit);
    if (cb) cb(out);
    notify_observer();
    return true;
  }
  if (running_.contains(id)) {
    finish(id, JobState::kKilledAdmin);
    return true;
  }
  return false;
}

std::size_t BatchScheduler::kill_running(double fraction, util::Rng& rng,
                                         JobState reason) {
  std::vector<LocalJobId> victims;
  for (const auto& [id, job] : running_) {
    if (rng.chance(fraction)) victims.push_back(id);
  }
  std::sort(victims.begin(), victims.end());  // deterministic order
  for (LocalJobId id : victims) finish(id, reason);
  return victims.size();
}

void BatchScheduler::resize(int new_slots, util::Rng& rng) {
  assert(new_slots >= 0);
  const int removed = cfg_.slots - new_slots;
  cfg_.slots = new_slots;
  if (removed > 0 && busy_slots() > new_slots) {
    // Kill enough randomly chosen running jobs to fit.
    std::vector<LocalJobId> ids;
    ids.reserve(running_.size());
    for (const auto& [id, job] : running_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    rng.shuffle(ids);
    const int excess = busy_slots() - new_slots;
    for (int i = 0; i < excess; ++i) {
      finish(ids[static_cast<std::size_t>(i)], JobState::kKilledNodeFailure);
    }
  }
  dispatch();
  notify_observer();
}

void BatchScheduler::resume() {
  draining_ = false;
  dispatch();
}

int BatchScheduler::running_for_vo(const std::string& vo) const {
  int n = 0;
  for (const auto& [id, job] : running_) {
    if (job.req.vo == vo) ++n;
  }
  return n;
}

std::size_t BatchScheduler::queued_for_vo(const std::string& vo) const {
  std::size_t n = 0;
  for (const auto& j : queue_) {
    if (j.req.vo == vo) ++n;
  }
  return n;
}

Time BatchScheduler::vo_usage(const std::string& vo) const {
  auto it = usage_.find(vo);
  return it == usage_.end() ? Time::zero() : it->second;
}

double BatchScheduler::fair_share_rank(const std::string& vo) const {
  double share = 1.0;
  if (auto it = cfg_.vo_shares.find(vo); it != cfg_.vo_shares.end()) {
    share = std::max(it->second, 1e-9);
  }
  // Include currently-running occupancy so a burst from one VO does not
  // monopolize the next free slots.
  const double used =
      vo_usage(vo).to_hours() + static_cast<double>(running_for_vo(vo));
  return used / share;
}

int BatchScheduler::count_running(
    const std::function<bool(const JobRequest&)>& pred) const {
  int n = 0;
  for (const auto& [id, job] : running_) {
    if (pred(job.req)) ++n;
  }
  return n;
}

void BatchScheduler::dispatch() {
  if (dispatching_ || draining_) return;
  dispatching_ = true;
  while (free_slots() > 0 && !queue_.empty()) {
    auto idx = pick_next();
    if (!idx.has_value()) break;
    assert(*idx < queue_.size());
    QueuedJob qj = queue_[*idx];
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*idx));

    RunningJob run;
    run.id = qj.id;
    run.req = qj.req;
    run.submitted = qj.submitted;
    run.started = sim_.now();
    run.done = std::move(queued_callbacks_[qj.id]);
    queued_callbacks_.erase(qj.id);

    // Completion: either natural end or the walltime killer, whichever is
    // sooner on an enforcing LRMS.
    Time end_after = run.req.actual_runtime;
    JobState end_state = JobState::kCompleted;
    if (enforces_walltime() && run.req.actual_runtime > run.req.requested_walltime) {
      end_after = run.req.requested_walltime;
      end_state = JobState::kKilledWalltime;
    }
    const LocalJobId id = qj.id;
    run.completion = sim_.schedule_in(
        end_after, [this, id, end_state] { finish(id, end_state); });
    running_.emplace(id, std::move(run));
  }
  dispatching_ = false;
  notify_observer();
}

void BatchScheduler::finish(LocalJobId id, JobState state) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  RunningJob job = std::move(it->second);
  running_.erase(it);
  if (job.completion != 0) sim_.cancel(job.completion);

  JobOutcome out;
  out.id = id;
  out.state = state;
  out.vo = job.req.vo;
  out.submitted = job.submitted;
  out.started = job.started;
  out.finished = sim_.now();
  charge_usage(job.req.vo, out.cpu_used());
  if (job.done) job.done(out);
  dispatch();
  notify_observer();
}

void BatchScheduler::notify_observer() {
  if (observer_) observer_(busy_slots(), static_cast<int>(queue_.size()));
}

void BatchScheduler::charge_usage(const std::string& vo, Time cpu) {
  usage_[vo] += cpu;
}

}  // namespace grid3::batch
