#include "batch/scheduler.h"

namespace grid3::batch {

std::optional<std::size_t> CondorScheduler::pick_next() {
  // Matchmaking pass: among positive-priority jobs pick the one whose VO
  // has the best (lowest) fair-share rank, FIFO within a VO.  Negative
  // priority marks backfill (the exerciser): it matches only when nothing
  // else is idle in the queue.
  const auto& q = queue();
  std::optional<std::size_t> best;
  double best_rank = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].req.priority < 0) continue;
    const double rank = fair_share_rank(q[i].req.vo);
    if (!best.has_value() || rank < best_rank) {
      best = i;
      best_rank = rank;
    }
  }
  if (best.has_value()) return best;
  // Backfill: oldest negative-priority job.
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].req.priority < 0) return i;
  }
  return std::nullopt;
}

}  // namespace grid3::batch
