// Local batch schedulers.
//
// Grid3 sites ran OpenPBS, Condor, or LSF (paper section 5), each with
// VO-level policies implemented via Unix group accounts.  This module
// provides the shared slot engine plus the three policy implementations;
// policy differences (fair share vs FIFO vs multi-queue, walltime
// enforcement) are the behavioural knobs the scheduler ablation bench
// sweeps.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/simulation.h"
#include "util/rng.h"
#include "util/units.h"

namespace grid3::batch {

using LocalJobId = std::uint64_t;

enum class JobState {
  kQueued,
  kRunning,
  kCompleted,
  kKilledWalltime,    ///< exceeded its requested walltime on an enforcing LRMS
  kKilledNodeFailure, ///< worker died (rollover, hardware)
  kKilledAdmin,       ///< drained / cancelled
  kRejected,          ///< refused at submission (policy)
};

[[nodiscard]] const char* to_string(JobState s);
[[nodiscard]] inline bool is_terminal(JobState s) {
  return s != JobState::kQueued && s != JobState::kRunning;
}

struct JobRequest {
  std::string vo;            ///< group account the job maps to
  std::string user_dn;
  Time requested_walltime;   ///< queue-managed sites require this (§6.4)
  Time actual_runtime;       ///< true demand, unknown to the scheduler
  int priority = 0;          ///< < 0 marks backfill (the Condor exerciser)
};

struct JobOutcome {
  LocalJobId id = 0;
  JobState state = JobState::kRejected;
  std::string vo;
  Time submitted;
  Time started;
  Time finished;
  /// CPU actually consumed (runtime until completion or kill).
  [[nodiscard]] Time cpu_used() const {
    return state == JobState::kQueued || state == JobState::kRejected
               ? Time::zero()
               : finished - started;
  }
};

using CompletionFn = std::function<void(const JobOutcome&)>;

struct SubmitResult {
  bool accepted = false;
  LocalJobId id = 0;
  std::string reason;  ///< set when rejected
};

struct SchedulerConfig {
  std::string site_name;
  int slots = 64;                       ///< worker CPUs
  Time max_walltime = Time::hours(72);  ///< published queue limit
  /// Relative fair-share weight per VO; VOs absent from the map may still
  /// run (weight 1) unless `closed_shares` is set.
  std::map<std::string, double> vo_shares;
  bool closed_shares = false;
};

/// Shared engine; subclasses supply the dispatch-order policy.
class BatchScheduler {
 public:
  BatchScheduler(sim::Simulation& sim, SchedulerConfig cfg);
  virtual ~BatchScheduler();
  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// LRMS type string as published in GLUE ("condor", "pbs", "lsf").
  [[nodiscard]] virtual std::string lrms_type() const = 0;
  /// Whether jobs past their requested walltime are killed.
  [[nodiscard]] virtual bool enforces_walltime() const = 0;

  SubmitResult submit(const JobRequest& req, CompletionFn done);
  bool cancel(LocalJobId id);

  /// Kill each running job independently with probability `fraction`
  /// (ACDC's nightly worker rollover, section 6.1).
  std::size_t kill_running(double fraction, util::Rng& rng,
                           JobState reason = JobState::kKilledNodeFailure);

  /// Remove `n` slots (node withdrawal); running jobs on removed slots are
  /// killed.  Adding slots triggers a dispatch round.
  void resize(int new_slots, util::Rng& rng);

  /// Drain: stop dispatching; running jobs finish.  resume() re-opens.
  void drain() { draining_ = true; }
  void resume();

  [[nodiscard]] int total_slots() const { return cfg_.slots; }
  [[nodiscard]] int busy_slots() const { return static_cast<int>(running_.size()); }
  [[nodiscard]] int free_slots() const { return cfg_.slots - busy_slots(); }
  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }
  [[nodiscard]] int running_for_vo(const std::string& vo) const;
  [[nodiscard]] std::size_t queued_for_vo(const std::string& vo) const;
  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }
  [[nodiscard]] Time max_walltime() const { return cfg_.max_walltime; }
  void set_max_walltime(Time t) { cfg_.max_walltime = t; }

  /// Cumulative CPU time charged per VO (fair-share input + accounting).
  [[nodiscard]] Time vo_usage(const std::string& vo) const;

  /// Observer invoked on every running-count change (monitoring hook).
  void set_load_observer(std::function<void(int running, int queued)> fn) {
    observer_ = std::move(fn);
  }

 protected:
  struct QueuedJob {
    LocalJobId id;
    JobRequest req;
    Time submitted;
  };

  /// Policy hook: index into `queue_` of the next job to start, or nullopt
  /// to leave remaining slots idle this round.
  [[nodiscard]] virtual std::optional<std::size_t> pick_next() = 0;

  [[nodiscard]] const std::deque<QueuedJob>& queue() const { return queue_; }
  [[nodiscard]] sim::Simulation& sim() { return sim_; }

  /// Decayed usage ratio used by fair-share policies:
  /// usage / share_weight, lower runs first.
  [[nodiscard]] double fair_share_rank(const std::string& vo) const;

  /// Number of running jobs whose request satisfies `pred` (policy
  /// bookkeeping, e.g. LSF's long-queue cap).
  [[nodiscard]] int count_running(
      const std::function<bool(const JobRequest&)>& pred) const;

 private:
  struct RunningJob {
    LocalJobId id;
    JobRequest req;
    Time submitted;
    Time started;
    sim::EventId completion = 0;
    CompletionFn done;
  };

  void dispatch();
  void finish(LocalJobId id, JobState state);
  void notify_observer();
  void charge_usage(const std::string& vo, Time cpu);

  sim::Simulation& sim_;
  SchedulerConfig cfg_;
  bool draining_ = false;
  bool dispatching_ = false;
  LocalJobId next_id_ = 1;
  std::deque<QueuedJob> queue_;
  std::unordered_map<LocalJobId, RunningJob> running_;
  std::unordered_map<LocalJobId, CompletionFn> queued_callbacks_;
  std::unordered_map<std::string, Time> usage_;
  std::function<void(int, int)> observer_;
};

/// Condor: fair-share matchmaking, negative-priority backfill only runs
/// when nothing else is waiting, no walltime enforcement (vanilla-universe
/// behaviour of the era).
class CondorScheduler final : public BatchScheduler {
 public:
  using BatchScheduler::BatchScheduler;
  [[nodiscard]] std::string lrms_type() const override { return "condor"; }
  [[nodiscard]] bool enforces_walltime() const override { return false; }

 protected:
  [[nodiscard]] std::optional<std::size_t> pick_next() override;
};

/// OpenPBS: strict FIFO within priority class, walltime enforced, rejects
/// requests beyond the queue limit at submission.
class PbsScheduler final : public BatchScheduler {
 public:
  using BatchScheduler::BatchScheduler;
  [[nodiscard]] std::string lrms_type() const override { return "pbs"; }
  [[nodiscard]] bool enforces_walltime() const override { return true; }

 protected:
  [[nodiscard]] std::optional<std::size_t> pick_next() override;
};

/// LSF: two queues split at a threshold walltime; the long queue is capped
/// to a fraction of the slots so short jobs cannot be starved; walltime
/// enforced.
class LsfScheduler final : public BatchScheduler {
 public:
  LsfScheduler(sim::Simulation& sim, SchedulerConfig cfg,
               Time long_queue_threshold = Time::hours(12),
               double long_queue_cap = 0.6);
  [[nodiscard]] std::string lrms_type() const override { return "lsf"; }
  [[nodiscard]] bool enforces_walltime() const override { return true; }

 protected:
  [[nodiscard]] std::optional<std::size_t> pick_next() override;

 private:
  Time long_threshold_;
  double long_cap_;
};

}  // namespace grid3::batch
