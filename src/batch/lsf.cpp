#include "batch/scheduler.h"

#include <cmath>

namespace grid3::batch {

LsfScheduler::LsfScheduler(sim::Simulation& sim, SchedulerConfig cfg,
                           Time long_queue_threshold, double long_queue_cap)
    : BatchScheduler(sim, std::move(cfg)),
      long_threshold_{long_queue_threshold},
      long_cap_{long_queue_cap} {}

std::optional<std::size_t> LsfScheduler::pick_next() {
  // Two queues split at long_threshold_.  The long queue may hold at most
  // long_cap_ * slots running jobs so short work is never starved; within
  // each queue dispatch is FIFO with priority classes, and the short
  // queue is preferred when both have candidates and the long queue is at
  // its cap.
  const auto& q = queue();
  // At least one slot can always take long work (real LSF queues never
  // starve a class outright).
  const int long_cap = std::max(
      1, static_cast<int>(
             std::floor(long_cap_ * static_cast<double>(total_slots()))));
  const int long_now = count_running([this](const JobRequest& r) {
    return r.requested_walltime > long_threshold_;
  });
  const bool long_allowed = long_now < long_cap;

  std::optional<std::size_t> best;
  auto better = [&](std::size_t i) {
    if (!best.has_value()) return true;
    const auto& a = q[i];
    const auto& b = q[*best];
    if (a.req.priority != b.req.priority) {
      return a.req.priority > b.req.priority;
    }
    return false;  // FIFO otherwise (queue order == submission order)
  };
  // Pass 1: short-queue candidates.
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].req.priority < 0) continue;
    if (q[i].req.requested_walltime > long_threshold_) continue;
    if (better(i)) best = i;
  }
  if (best.has_value()) return best;
  // Pass 2: long-queue candidates, capacity permitting.
  if (long_allowed) {
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i].req.priority < 0) continue;
      if (q[i].req.requested_walltime <= long_threshold_) continue;
      if (better(i)) best = i;
    }
    if (best.has_value()) return best;
  }
  // Pass 3: backfill.
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].req.priority < 0) return i;
  }
  return std::nullopt;
}

}  // namespace grid3::batch
