#include "placement/ledger.h"

#include "monitoring/acdc.h"
#include "monitoring/bus.h"

namespace grid3::placement {

PlacementLedger::PlacementLedger(std::string vo, StorageDirectory& storage,
                                 monitoring::MetricBus* bus,
                                 monitoring::JobDatabase* accounting)
    : vo_{std::move(vo)}, storage_{storage}, bus_{bus},
      accounting_{accounting} {}

void PlacementLedger::record(const StageOutLease& lease, const char* event,
                             Time now, const char* counter,
                             std::uint64_t value) {
  if (bus_ != nullptr) {
    bus_->publish(vo_, counter, now, static_cast<double>(value));
  }
  if (accounting_ != nullptr) {
    accounting_->insert_lease({lease.id, now, vo_, lease.app,
                               lease.dest_site, event, lease.size,
                               lease.completion_site, lease.hops});
  }
}

AcquireResult PlacementLedger::acquire(const std::string& dest_site,
                                       Bytes size, const std::string& app,
                                       const std::vector<std::string>& lfns,
                                       Time now) {
  return acquire(std::vector<std::string>{dest_site}, size, app, lfns, now);
}

AcquireResult PlacementLedger::acquire(const std::vector<std::string>& chain,
                                       Bytes size, const std::string& app,
                                       const std::vector<std::string>& lfns,
                                       Time now) {
  // One verdict per chain entry: lease it, or classify the refusal.  A
  // "fallthrough hop" is the act of moving past a rejected entry to try
  // its successor, so a single-SE chain can never hop -- its semantics
  // are exactly the pre-chain contract.
  int hops = 0;
  bool any_refusal = false;  // full or quarantined (vs merely unknown)
  std::vector<std::string> refused;  // SEs that were actually full
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const std::string& dest_site = chain[i];
    const bool has_next = i + 1 < chain.size();

    StageOutLease lease;
    lease.vo = vo_;
    lease.app = app;
    lease.dest_site = dest_site;
    lease.primary_site = chain.front();
    lease.hops = hops;
    lease.size = size;
    lease.lfns = lfns;
    lease.acquired = now;

    bool refused_here = false;
    bool known = true;
    if (admissible_ != nullptr && !admissible_(dest_site)) {
      // Quarantined (or otherwise vetoed): an active refusal, same as a
      // full SE -- the next chain entry gets its chance.
      refused_here = true;
    } else if (srm::StorageResourceManager* srm = storage_.storage(dest_site);
               srm != nullptr) {
      // Durable: cleanup sweeps must not reclaim the space while the
      // job is still computing toward its stage-out.
      const auto rid = srm->reserve(vo_, size, srm::SpaceType::kDurable, now);
      if (rid.has_value()) {
        lease.reservation = *rid;
      } else {
        refused_here = true;
        refused.push_back(dest_site);
      }
    } else if (srm::DiskVolume* vol = storage_.volume(dest_site);
               vol != nullptr) {
      // Probe mode: no SRM to hold the space, but a destination that is
      // already too full to take the output is rejected now, not after
      // the job has burned its compute cycles.
      if (vol->free() < size) {
        refused_here = true;
        refused.push_back(dest_site);
      }
    } else {
      known = false;  // unreachable/unknown SE: fall through, no refusal
    }

    if (known && !refused_here) {
      lease.id = next_id_++;
      ++acquired_;
      record(lease, "acquire", now, metric::kLeasesAcquired, acquired_);
      const LeaseId id = lease.id;
      leases_.emplace(id, std::move(lease));
      if (audit_ != nullptr) audit_(id, "acquire");
      return {AcquireStatus::kLeased, id, dest_site, hops,
              std::move(refused)};
    }
    any_refusal = any_refusal || refused_here;
    if (has_next) {
      ++hops;
      ++fallthroughs_;
      if (bus_ != nullptr) {
        bus_->publish(vo_, metric::kLeaseFallthroughs, now,
                      static_cast<double>(fallthroughs_));
      }
    }
  }

  if (any_refusal) {
    // The whole chain actively refused: surface kDiskFull so the match
    // becomes a hold, not a doomed binding.
    StageOutLease lease;
    lease.vo = vo_;
    lease.app = app;
    lease.dest_site = chain.empty() ? std::string{} : chain.front();
    lease.primary_site = lease.dest_site;
    lease.hops = hops;
    lease.size = size;
    lease.acquired = now;
    ++rejected_;
    record(lease, "reject", now, metric::kLeasesRejected, rejected_);
    if (audit_ != nullptr) audit_(0, "reject");
    return {AcquireStatus::kDiskFull, 0, {}, hops, std::move(refused)};
  }
  // Every entry was unknown to the directory: no managed storage
  // anywhere on the chain, proceed unleased.
  return {AcquireStatus::kNoStorage, 0, {}, hops, std::move(refused)};
}

bool PlacementLedger::release(LeaseId id, Time now) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    if (audit_ != nullptr) audit_(id, "release-stale");
    return false;
  }
  StageOutLease lease = std::move(it->second);
  leases_.erase(it);
  if (lease.reservation != 0) {
    if (srm::StorageResourceManager* srm = storage_.storage(lease.dest_site)) {
      srm->release(lease.reservation);
    }
  }
  lease.state = LeaseState::kReleased;
  ++released_;
  record(lease, "release", now, metric::kLeasesReleased, released_);
  if (audit_ != nullptr) audit_(id, "release");
  return true;
}

bool PlacementLedger::consume(LeaseId id, const std::string& completion_site,
                              Time now) {
  auto it = leases_.find(id);
  if (it == leases_.end()) {
    if (audit_ != nullptr) audit_(id, "consume-stale");
    return false;
  }
  StageOutLease lease = std::move(it->second);
  leases_.erase(it);
  lease.completion_site = completion_site;
  if (lease.reservation != 0) {
    // The archived file outlives the reservation: convert the reserved
    // space into a plain volume allocation, then drop the reservation.
    // Net volume usage is unchanged; reserved_total() drains.
    if (srm::StorageResourceManager* srm = storage_.storage(lease.dest_site)) {
      srm->release(lease.reservation);
      if (srm::DiskVolume* vol = storage_.volume(lease.dest_site)) {
        (void)vol->allocate(lease.size);  // release just freed >= size
      }
    }
  }
  lease.state = LeaseState::kConsumed;
  ++consumed_;
  record(lease, "consume", now, metric::kLeasesConsumed, consumed_);
  if (audit_ != nullptr) audit_(id, "consume");
  return true;
}

const StageOutLease* PlacementLedger::find(LeaseId id) const {
  auto it = leases_.find(id);
  return it == leases_.end() ? nullptr : &it->second;
}

srm::StorageResourceManager* PlacementLedger::srm_for(LeaseId id) {
  const StageOutLease* lease = find(id);
  if (lease == nullptr || lease->reservation == 0) return nullptr;
  return storage_.storage(lease->dest_site);
}

gridftp::GridFtpServer* PlacementLedger::ftp_for(LeaseId id) {
  const StageOutLease* lease = find(id);
  return lease == nullptr ? nullptr : storage_.ftp(lease->dest_site);
}

srm::DiskVolume* PlacementLedger::volume_for(LeaseId id) {
  const StageOutLease* lease = find(id);
  return lease == nullptr ? nullptr : storage_.volume(lease->dest_site);
}

std::size_t PlacementLedger::active() const { return leases_.size(); }

Bytes PlacementLedger::leased_bytes() const {
  Bytes total;
  for (const auto& [id, lease] : leases_) total += lease.size;
  return total;
}

}  // namespace grid3::placement
