// Unified data-placement layer: stage-out leases.
//
// Grid2003 attributed a large share of job failures to storage
// exhaustion discovered only at stage-out time (section 6.2: "more
// frequently a disk would fill up ... and all jobs submitted to a site
// would die"; "storage reservation (e.g., as provided by SRM) would
// have prevented various storage-related service failures").  Before
// this layer existed, placement knowledge was scattered: the planner
// hard-coded stage-out destinations, the broker matched without asking
// whether the destination SE had room, and the gatekeeper discovered
// full disks after the compute cycles were already spent.
//
// A StageOutLease is one job's claim on its data destiny: the resolved
// destination SE, an SRM space reservation covering the output volume
// (when the SE runs an SRM), and the RLS registration intent.  The
// per-VO PlacementLedger owns every lease:
//
//   * the broker ACQUIRES a lease at match time -- a full destination
//     becomes a match-time rejection (the job waits in the broker)
//     instead of a stage-out failure after hours of computing;
//   * the gatekeeper's stage-out lands inside the lease's reservation,
//     closing the bare-GridFTP TOCTOU window;
//   * on success the lease is CONSUMED: the reservation converts into a
//     durable file allocation and the actual completion site is
//     recorded for downstream transfer pricing;
//   * on every failure, hold, and rescue path the lease is RELEASED so
//     reserved space never leaks (reserved_total() drains to zero once
//     a scenario is fully drained).
//
// Every lifecycle event is published on the monitoring MetricBus and
// mirrored into the ACDC job database.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "srm/disk.h"
#include "srm/srm.h"
#include "util/units.h"

namespace grid3::gridftp {
class GridFtpServer;
}  // namespace grid3::gridftp

namespace grid3::monitoring {
class MetricBus;
class JobDatabase;
}  // namespace grid3::monitoring

namespace grid3::placement {

/// Resolves site names to their storage services.  core::Grid3
/// implements this alongside workflow::SiteServices; `volume` is the
/// same member that serves that interface.
class StorageDirectory {
 public:
  virtual ~StorageDirectory() = default;
  /// The site's SRM head node, or null when the SE is unmanaged.
  [[nodiscard]] virtual srm::StorageResourceManager* storage(
      const std::string& site) = 0;
  /// The site's disk volume, or null when the site is unknown.
  [[nodiscard]] virtual srm::DiskVolume* volume(const std::string& site) = 0;
  /// The site's GridFTP endpoint, or null when the site is unknown.
  /// Lets the broker repoint a job's stage-out at whichever SE of a
  /// failover chain the lease actually resolved to.  core::Grid3 serves
  /// this with the same override as workflow::SiteServices::ftp.
  [[nodiscard]] virtual gridftp::GridFtpServer* ftp(
      const std::string& site) = 0;
};

using LeaseId = std::uint64_t;

enum class LeaseState { kActive, kConsumed, kReleased };

/// One job's stage-out claim: destination SE + SRM reservation + RLS
/// registration intent.
///
/// Two acquirers exist.  Per-job: the broker leases a spec's stage-out
/// intent before binding, and the lease is consumed (archive succeeded)
/// or released when that one submission resolves.  Gang-scoped: for a
/// co-located DAG level, ResourceBroker::submit_gang acquires ONE lease
/// covering the level's aggregate intermediate-product bytes at the
/// gang's primary site (pro-rated to the primary's member share when
/// the gang had to split; app label "gang:<gang_id>", no LFNs).  A gang
/// lease is never consumed -- the members' own stage-outs account the
/// durable bytes -- it is released exactly once, when the last member
/// resolves, on every path: success, failure, hold-expiry, and rescue.
struct StageOutLease {
  LeaseId id = 0;
  std::string vo;
  std::string app;
  /// SE the lease actually resolved to (the chain's first admissible SE
  /// with room).  All space accounting -- consume, release, srm_for --
  /// follows this site, never the primary.
  std::string dest_site;
  /// Head of the preference chain the acquire was asked for.  Equal to
  /// `dest_site` unless the acquisition fell through.
  std::string primary_site;
  /// Fallthrough hops taken before `dest_site` accepted: 0 = the primary
  /// took it, n = n chain entries were full, quarantined, or unreachable.
  int hops = 0;
  Bytes size;
  /// SRM reservation backing the lease; 0 = probe mode (the destination
  /// has no SRM, so the ledger could only verify free space at acquire
  /// time -- the TOCTOU window stays open but hopeless matches are
  /// still rejected up front).
  srm::ReservationId reservation = 0;
  std::vector<std::string> lfns;  ///< outputs to register on consume
  Time acquired;
  LeaseState state = LeaseState::kActive;
  std::string completion_site;  ///< where the job really ran (on consume)
};

enum class AcquireStatus {
  kLeased,     ///< space secured (reserved or probed)
  kNoStorage,  ///< destination has no managed storage; proceed unleased
  kDiskFull,   ///< destination cannot hold the output: reject the match
};

struct AcquireResult {
  AcquireStatus status = AcquireStatus::kNoStorage;
  LeaseId lease = 0;
  /// SE the lease resolved to (empty unless kLeased).  Differs from the
  /// chain head when the acquisition fell through.
  std::string site;
  /// Chain entries rejected (full, quarantined, or unreachable) before
  /// one accepted -- or before the chain ran dry.
  int hops = 0;
  /// Chain SEs that *actively* refused the space (SRM denied or probe
  /// found the volume full) -- the caller's storage-health signal.
  /// Quarantine-vetoed and unknown entries are not listed: the former
  /// are already condemned, the latter said nothing about storage.
  std::vector<std::string> refused_sites;
  [[nodiscard]] bool leased() const {
    return status == AcquireStatus::kLeased;
  }
};

/// Metric names the ledger publishes per VO (site key = VO name), so
/// MDViewer can plot lease churn alongside gatekeeper load.
namespace metric {
inline constexpr const char* kLeasesAcquired = "placement.leases_acquired";
inline constexpr const char* kLeasesConsumed = "placement.leases_consumed";
inline constexpr const char* kLeasesReleased = "placement.leases_released";
inline constexpr const char* kLeasesRejected = "placement.leases_rejected";
/// Chain entries skipped during acquisition (full/quarantined/unknown).
inline constexpr const char* kLeaseFallthroughs = "placement.fallthroughs";
}  // namespace metric

class PlacementLedger {
 public:
  /// `bus` and `accounting` may be null (no monitoring mirror).
  PlacementLedger(std::string vo, StorageDirectory& storage,
                  monitoring::MetricBus* bus = nullptr,
                  monitoring::JobDatabase* accounting = nullptr);
  PlacementLedger(const PlacementLedger&) = delete;
  PlacementLedger& operator=(const PlacementLedger&) = delete;

  /// Secure stage-out space at `dest_site` for `size` bytes.  Durable
  /// SRM reservation when the SE runs one (sweeps cannot reclaim it
  /// mid-job); free-space probe otherwise.
  [[nodiscard]] AcquireResult acquire(const std::string& dest_site,
                                      Bytes size, const std::string& app,
                                      const std::vector<std::string>& lfns,
                                      Time now);

  /// Failover-chain acquire: walk `chain` in preference order and lease
  /// the first SE that is admissible (not filtered out) and has room.
  /// Every rejected entry -- reservation denied, probe found the volume
  /// full, site quarantined by the admissibility filter, or site
  /// unknown to the directory -- is one fallthrough hop, published as
  /// `placement.fallthroughs` and recorded in the lease.  When the
  /// whole chain rejects: kDiskFull if at least one SE actively refused
  /// (full or quarantined), kNoStorage when every entry was unknown to
  /// the directory (matching the single-SE contract: no managed storage
  /// anywhere means proceed unleased).
  [[nodiscard]] AcquireResult acquire(const std::vector<std::string>& chain,
                                      Bytes size, const std::string& app,
                                      const std::vector<std::string>& lfns,
                                      Time now);

  /// Admissibility veto consulted per chain entry during acquisition.
  /// core::Grid3 wires this to `!SiteHealthMonitor::quarantined(site)`
  /// so quarantined SEs are skipped (one hop) without the placement
  /// layer depending on grid3::health.  Null = everything admissible.
  using SiteFilter = std::function<bool(const std::string&)>;
  void set_admissibility(SiteFilter filter) {
    admissible_ = std::move(filter);
  }

  /// The resolved SE's GridFTP endpoint / disk volume for an active
  /// lease (null when the lease is unknown).  The broker uses these to
  /// repoint a job's stage-out when the lease fell through.
  [[nodiscard]] gridftp::GridFtpServer* ftp_for(LeaseId id);
  [[nodiscard]] srm::DiskVolume* volume_for(LeaseId id);

  /// Give the space back (job failed, was held too long, or entered a
  /// rescue DAG).  Idempotent; false when the lease is unknown.
  bool release(LeaseId id, Time now);

  /// The job archived its output: convert the reservation into a
  /// durable file allocation on the destination volume (the SE keeps
  /// the bytes; the reservation itself drains) and record where the job
  /// actually ran.
  bool consume(LeaseId id, const std::string& completion_site, Time now);

  [[nodiscard]] const StageOutLease* find(LeaseId id) const;
  /// SRM backing an active lease's reservation (null in probe mode).
  [[nodiscard]] srm::StorageResourceManager* srm_for(LeaseId id);

  /// Model-checker audit tap: fired on every lifecycle transition with
  /// the lease id and the event name -- "acquire", "consume", "release",
  /// "reject" (id 0), plus "consume-stale"/"release-stale" when the id
  /// is not an active lease.  A stale event is the signature of a
  /// double-release or use-after-release: exactly what the mc lease
  /// invariant hunts across interleavings.
  using AuditFn = std::function<void(LeaseId, const char* event)>;
  void set_audit(AuditFn audit) { audit_ = std::move(audit); }

  /// Active leases keyed by id (model-checker introspection).
  [[nodiscard]] const std::map<LeaseId, StageOutLease>& active_leases() const {
    return leases_;
  }

  [[nodiscard]] const std::string& vo() const { return vo_; }
  [[nodiscard]] std::size_t active() const;
  /// Bytes currently secured by active leases.
  [[nodiscard]] Bytes leased_bytes() const;

  // Lifetime counters (monotonic; also published on the bus).
  [[nodiscard]] std::uint64_t acquired() const { return acquired_; }
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }
  [[nodiscard]] std::uint64_t released() const { return released_; }
  /// Match-time rejections: the disk-full failures that never happened.
  [[nodiscard]] std::uint64_t rejected() const { return rejected_; }
  /// Chain entries skipped on the way to a resolved (or rejected) SE.
  [[nodiscard]] std::uint64_t fallthroughs() const { return fallthroughs_; }

 private:
  void record(const StageOutLease& lease, const char* event, Time now,
              const char* counter, std::uint64_t value);

  std::string vo_;
  StorageDirectory& storage_;
  monitoring::MetricBus* bus_;
  monitoring::JobDatabase* accounting_;
  SiteFilter admissible_;
  AuditFn audit_;
  LeaseId next_id_ = 1;
  std::map<LeaseId, StageOutLease> leases_;  ///< active only
  std::uint64_t acquired_ = 0;
  std::uint64_t consumed_ = 0;
  std::uint64_t released_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t fallthroughs_ = 0;
};

}  // namespace grid3::placement
