// grid3_mc_check: exhaustively explore the reduced scenarios and report
// explored/pruned state counts.  CI runs it twice:
//
//   grid3_mc_check                  all reduced scenarios; exit 0 iff every
//                                   interleaving satisfies every invariant
//                                   AND the exploration completed within
//                                   budget.  Each scenario is explored a
//                                   second time with sleep sets off to
//                                   cross-check the independence relation
//                                   via the Foata determinism digests.
//   grid3_mc_check --seeded-bug     the stale-hold-release scenario; exit 0
//                                   iff the canonical single ordering is
//                                   CLEAN and the explorer FINDS the bug --
//                                   i.e. the checker demonstrably sees past
//                                   one-ordering test coverage.
//
// Options: --scenario NAME (filter), --max-transitions N (budget).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "mc/explorer.h"
#include "mc/scenarios.h"

namespace {

void print_stats(const char* phase, const grid3::mc::ExploreStats& st) {
  std::printf(
      "  [%s] runs=%llu transitions=%llu decision_points=%llu "
      "branches=%llu sleep_pruned=%llu terminals=%llu foata_classes=%llu%s\n",
      phase, static_cast<unsigned long long>(st.runs),
      static_cast<unsigned long long>(st.transitions),
      static_cast<unsigned long long>(st.decision_points),
      static_cast<unsigned long long>(st.branches),
      static_cast<unsigned long long>(st.sleep_pruned),
      static_cast<unsigned long long>(st.terminals),
      static_cast<unsigned long long>(st.foata_classes),
      st.budget_exhausted ? " BUDGET-EXHAUSTED" : "");
}

void print_violations(const std::vector<grid3::mc::Violation>& vs) {
  for (const auto& v : vs) {
    std::printf("  VIOLATION [%s] %s\n    trace: %s\n", v.invariant.c_str(),
                v.detail.c_str(),
                v.rendered_trace.empty() ? "(empty)"
                                         : v.rendered_trace.c_str());
  }
}

int run_seeded(std::uint64_t max_transitions) {
  grid3::mc::NamedScenario s = grid3::mc::seeded_lease_bug_scenario();
  s.config.max_transitions = max_transitions;
  std::printf("scenario %s: %s\n", s.name.c_str(), s.description.c_str());

  grid3::mc::Explorer canonical{s.factory, s.config};
  const auto canon = canonical.check_canonical();
  if (!canon.empty()) {
    std::printf("  unexpected: the canonical ordering already trips:\n");
    print_violations(canon);
    return 1;
  }
  std::printf("  canonical single ordering: clean (the bug is invisible)\n");

  grid3::mc::Explorer explorer{s.factory, s.config};
  const auto& found = explorer.explore();
  print_stats("explore", explorer.stats());
  print_violations(found);
  bool lease_bug = false;
  for (const auto& v : found) {
    if (v.invariant == "lease-audit") lease_bug = true;
  }
  if (!lease_bug) {
    std::printf("  FAILED: explorer did not find the seeded lease bug\n");
    return 1;
  }
  std::printf("  OK: explorer found the seeded bug the canonical run missed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool seeded = false;
  std::string only;
  std::uint64_t max_transitions = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeded-bug") == 0) {
      seeded = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else if (std::strcmp(argv[i], "--max-transitions") == 0 && i + 1 < argc) {
      max_transitions = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeded-bug] [--scenario NAME] "
                   "[--max-transitions N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (seeded) return run_seeded(max_transitions);

  int failures = 0;
  for (auto& s : grid3::mc::reduced_scenarios()) {
    if (!only.empty() && s.name != only) continue;
    std::printf("scenario %s: %s\n", s.name.c_str(), s.description.c_str());
    s.config.max_transitions = max_transitions;

    grid3::mc::Explorer explorer{s.factory, s.config};
    const auto& found = explorer.explore();
    print_stats("explore", explorer.stats());
    print_violations(found);
    if (!found.empty() || !explorer.stats().complete()) ++failures;

    // Independence-validation pass: sleep sets off, so every
    // interleaving runs and every Foata class is digest-cross-checked.
    grid3::mc::McConfig validate = s.config;
    validate.use_sleep_sets = false;
    grid3::mc::Explorer full{s.factory, validate};
    const auto& vfound = full.explore();
    print_stats("validate", full.stats());
    print_violations(vfound);
    if (!vfound.empty() || !full.stats().complete()) ++failures;
  }
  if (failures != 0) {
    std::printf("mc-check: %d scenario pass(es) FAILED\n", failures);
    return 1;
  }
  std::printf("mc-check: all scenarios exhaustively explored, "
              "all invariants hold\n");
  return 0;
}
