#include "mc/invariants.h"

#include <string_view>

#include "broker/broker.h"
#include "health/health.h"
#include "placement/ledger.h"
#include "rls/rls.h"

namespace grid3::mc {

LeaseAuditInvariant::LeaseAuditInvariant(placement::PlacementLedger& ledger)
    : ledger_{ledger} {
  ledger_.set_audit([this](placement::LeaseId id, const char* event) {
    const bool stale = std::string_view{event}.find("stale") !=
                       std::string_view::npos;
    if (stale && stale_.empty()) {
      stale_ = std::string{event} + " on lease " + std::to_string(id);
    }
  });
}

std::optional<std::string> LeaseAuditInvariant::check(bool quiescent) {
  if (!stale_.empty()) {
    return "lease lifecycle violated: " + stale_ +
           " (a release/consume hit an id that is no longer active -- "
           "double release or use-after-release)";
  }
  if (quiescent && ledger_.active() != 0) {
    return "leaked leases at quiescence: " +
           std::to_string(ledger_.active()) + " still active holding " +
           std::to_string(ledger_.leased_bytes().to_gb()) + " GB";
  }
  return std::nullopt;
}

GangLeaseInvariant::GangLeaseInvariant(broker::ResourceBroker& broker,
                                       placement::PlacementLedger& ledger)
    : broker_{broker}, ledger_{ledger} {}

std::optional<std::string> GangLeaseInvariant::check(bool quiescent) {
  for (const placement::LeaseId id : broker_.live_gang_leases()) {
    if (ledger_.find(id) == nullptr) {
      return "gang points at lease " + std::to_string(id) +
             " that is no longer active in the ledger";
    }
  }
  if (quiescent) {
    if (!broker_.live_gang_leases().empty()) {
      return "gang lease stranded at quiescence (no member resolution or "
             "quarantine trip released it)";
    }
    for (const auto& [id, lease] : ledger_.active_leases()) {
      if (lease.app.rfind("gang:", 0) == 0) {
        return "gang lease " + std::to_string(id) + " (" + lease.app +
               ") still active at quiescence";
      }
    }
  }
  return std::nullopt;
}

BreakerInvariant::BreakerInvariant(health::SiteHealthMonitor& health)
    : health_{health} {}

std::optional<std::string> BreakerInvariant::check(bool quiescent) {
  for (const std::string& site : health_.sites()) {
    const health::BreakerState state = health_.state(site);
    const bool excluded = health_.quarantined(site);
    if (state == health::BreakerState::kOpen && !excluded) {
      return "site " + site + " breaker open but matchable";
    }
    if (state == health::BreakerState::kClosed && excluded) {
      return "site " + site + " breaker closed but still excluded";
    }
    if (state == health::BreakerState::kHalfOpen &&
        health_.has_probe_submitter() && !excluded) {
      return "site " + site +
             " half-open under probe re-certification but matchable";
    }
    if (quiescent && excluded) {
      return "site " + site +
             " still quarantined at quiescence: the breaker lost it (no "
             "half-open probe or readmission ever fired)";
    }
  }
  return std::nullopt;
}

JournalInvariant::JournalInvariant(rls::ReplicaLocationService& rls)
    : rls_{rls} {
  rls_.journal().set_audit(
      [this](const rls::JournalEntry& e, const char* event) {
        const std::string_view ev{event};
        if (ev != "apply" && ev != "replay") return;
        if (++applies_[e.id] > 1 && double_apply_.empty()) {
          double_apply_ = "entry " + std::to_string(e.id) + " (" + e.site +
                          "/" + e.lfn + ") applied again via \"" +
                          std::string{ev} + "\"";
        }
      });
}

std::optional<std::string> JournalInvariant::check(bool quiescent) {
  if (!double_apply_.empty()) {
    return "journal exactly-once violated: " + double_apply_;
  }
  if (!quiescent || !rls_.available()) return std::nullopt;
  for (const rls::JournalEntry& e : rls_.journal().entries()) {
    const rls::LocalReplicaCatalog* lrc = rls_.find_lrc(e.site);
    if (!e.applied && lrc != nullptr && lrc->available()) {
      return "journal entry " + std::to_string(e.id) + " (" + e.site + "/" +
             e.lfn + ") still pending at quiescence with endpoint and "
             "LRC reachable (no replay ever drained it)";
    }
    if (e.applied && (lrc == nullptr || !lrc->has(e.lfn))) {
      return "registration lost: journaled " + e.site + "/" + e.lfn +
             " marked applied but absent from its authoritative LRC";
    }
  }
  return std::nullopt;
}

MatchQuarantineInvariant::MatchQuarantineInvariant(
    broker::ResourceBroker& broker, health::SiteHealthMonitor& health)
    : broker_{broker}, health_{health} {}

std::optional<std::string> MatchQuarantineInvariant::check(bool quiescent) {
  (void)quiescent;
  const auto& log = broker_.match_log();
  for (; seen_ < log.size(); ++seen_) {
    // The decision was made during the transition just executed, so the
    // breaker state it was made under is the state we see now.
    if (health_.quarantined(log[seen_].site)) {
      return "match #" + std::to_string(log[seen_].seq) + " bound " +
             log[seen_].vo + "/" + log[seen_].app + " to " + log[seen_].site +
             " while the site is quarantined";
    }
  }
  return std::nullopt;
}

}  // namespace grid3::mc
