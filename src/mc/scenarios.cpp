#include "mc/scenarios.h"

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "broker/broker.h"
#include "broker/job_spec.h"
#include "core/grid3.h"
#include "core/site.h"
#include "health/health.h"
#include "mc/invariants.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "rls/rls.h"
#include "srm/disk.h"

namespace grid3::mc {
namespace {

// ---------------------------------------------------------------------
// breaker: two independent sites tripped at the same instant.
// ---------------------------------------------------------------------

class BreakerRun final : public ScenarioRun {
 public:
  BreakerRun() {
    health::HealthConfig cfg;
    cfg.ewma_alpha = 0.6;
    cfg.trip_threshold = 0.5;
    cfg.min_samples = 2;
    cfg.quarantine_base = Time::seconds(60);
    cfg.quarantine_escalation = 2.0;
    cfg.probes_required = 2;
    cfg.probe_interval = Time::seconds(30);
    monitor_ = std::make_unique<health::SiteHealthMonitor>(sim_, cfg);
    monitor_->set_probe_submitter(
        [this](const std::string& site, std::function<void(bool)> done) {
          // SIGMA's first probe fails, escalating its quarantine once;
          // everything else passes.  The verdict arrives 5 s later on
          // the site's own causal chain (tag inherited from the trip).
          const bool ok = !(site == "SIGMA" && probe_count_[site] == 0);
          ++probe_count_[site];
          sim_.schedule_in(Time::seconds(5),
                          [done = std::move(done), ok] { done(ok); });
        });
    invariant_ = std::make_unique<BreakerInvariant>(*monitor_);

    // Two submitter streams per site, all landing at t=10s.  Same-site
    // streams conflict (shared "hs:<site>" key); cross-site pairs are
    // independent -- the sleep sets collapse their interleavings and
    // the Foata digest check proves the two breaker chains commute.
    for (const char* site : {"SIGMA", "TAU"}) {
      for (const char* sub : {"a", "b"}) {
        sim::Simulation::ScopedTag tag{
            sim_, std::string{"sub:"} + sub + ":" + site + "|hs:" + site};
        sim_.schedule_at(Time::seconds(10), [this, site] {
          monitor_->report(site, health::Service::kSubmit, false, sim_.now());
        });
      }
    }
  }

  sim::Simulation& sim() override { return sim_; }
  std::vector<Invariant*> invariants() override { return {invariant_.get()}; }

  std::string digest() override {
    // Per-site event streams, NOT serialize_events(): the global log
    // interleaves the two sites' independent chains in arrival order,
    // which commuting them legitimately permutes.  Within one site the
    // order is causal and must be byte-stable.
    std::ostringstream out;
    for (const std::string& site : monitor_->sites()) {
      out << site << "=" << static_cast<int>(monitor_->state(site))
          << (monitor_->quarantined(site) ? "/q" : "/m") << ":";
      for (const health::BreakerEvent& e : monitor_->events()) {
        if (e.site != site) continue;
        out << e.event << "@" << e.at.ticks() << "(" << e.service << ","
            << e.score << ");";
      }
      out << "|";
    }
    out << "trips=" << monitor_->trips() << " probes=" << monitor_->probes()
        << " readmissions=" << monitor_->readmissions();
    return out.str();
  }

 private:
  sim::Simulation sim_;
  std::unique_ptr<health::SiteHealthMonitor> monitor_;
  std::unique_ptr<BreakerInvariant> invariant_;
  std::map<std::string, int> probe_count_;
};

// ---------------------------------------------------------------------
// rls-journal: registrations ride out an RLS outage in the write-ahead
// journal; recovery replay races the periodic refresh's own replay.
// ---------------------------------------------------------------------

class RlsOutageRun final : public ScenarioRun {
 public:
  RlsOutageRun() : rls_{"usatlas"} {
    rls_.lrc_for("ALPHA");  // the target catalog exists before the storm
    invariant_ = std::make_unique<JournalInvariant>(rls_);

    {  // the collective outage: endpoint and RLI down together
      sim::Simulation::ScopedTag tag{sim_, "outage|rls"};
      sim_.schedule_at(Time::seconds(10), [this] {
        rls_.set_available(false);
        rls_.rli().set_available(false);
      });
    }
    // Two independent registration streams land at the same instant mid
    // outage.  Their journal ids permute across orders, so the digest
    // below serializes entries by (site, lfn), not log order.
    for (const char* job : {"a", "b"}) {
      sim::Simulation::ScopedTag tag{sim_, std::string{"job:"} + job};
      sim_.schedule_at(Time::seconds(20), [this, job] {
        rls::Replica r;
        r.pfn = std::string{"gsiftp://ALPHA/out-"} + job;
        r.size = Bytes::mb(100);
        r.registered = sim_.now();
        rls_.register_replica("ALPHA", std::string{"out-"} + job,
                              std::move(r), sim_.now());
      });
    }
    {  // repair: endpoint back up, then the recovery replay
      sim::Simulation::ScopedTag tag{sim_, "repair|rls"};
      sim_.schedule_at(Time::seconds(60), [this] {
        rls_.set_available(true);
        rls_.rli().set_available(true);
        rls_.replay(sim_.now());
      });
    }
    {  // the 20-min ops refresh (also a replay trigger) hits the same
      // tick as the repair; both orders must drain the journal exactly
      // once -- refresh-first is a no-op against the down endpoint.
      sim::Simulation::ScopedTag tag{sim_, "ops-refresh|rls"};
      sim_.schedule_at(Time::seconds(60),
                       [this] { rls_.refresh_all(sim_.now()); });
    }
  }

  sim::Simulation& sim() override { return sim_; }
  std::vector<Invariant*> invariants() override { return {invariant_.get()}; }

  std::string digest() override {
    std::ostringstream out;
    out << "size=" << rls_.journal().size()
        << " pending=" << rls_.journal().pending()
        << " replayed=" << rls_.journal().replayed()
        << " lost=" << rls_.lost_registrations() << " up=" << rls_.available()
        << "/" << rls_.rli().available();
    // Sorted by (site, lfn): the two registration streams are
    // independent, so their log order legitimately permutes.
    std::vector<std::string> facts;
    for (const rls::JournalEntry& e : rls_.journal().entries()) {
      facts.push_back(e.site + "/" + e.lfn + (e.applied ? "+" : "-"));
    }
    std::sort(facts.begin(), facts.end());
    for (const std::string& f : facts) out << " " << f;
    for (const char* lfn : {"out-a", "out-b"}) {
      out << " " << lfn << "@";
      for (const auto& [site, rep] : rls_.locate(lfn, sim_.now())) {
        out << site << ";";
      }
    }
    return out.str();
  }

 private:
  sim::Simulation sim_;
  rls::ReplicaLocationService rls_;
  std::unique_ptr<JournalInvariant> invariant_;
};

// ---------------------------------------------------------------------
// placement / gang: reduced Grid3 fabrics.
// ---------------------------------------------------------------------

/// Owns a reduced Grid3 and the invariants wired into it.  The concrete
/// scenario is defined by what the constructor-caller schedules.
class GridRun final : public ScenarioRun {
 public:
  GridRun() : grid_{std::make_unique<core::Grid3>(sim_, 77)} {}

  /// One-site-plus-archive fabric (the PlacementFixture recipe, shrunk).
  void build(bool with_archive, broker::BrokerConfig cfg) {
    grid_->add_vo("usatlas");
    broker_ = &grid_->attach_broker("usatlas", broker::PolicyKind::kQueueDepth,
                                    cfg);
    ledger_ = grid_->placement("usatlas");
    pacman::add_application_package(grid_->igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    core::SiteConfig a;
    a.name = "ALPHA";
    a.owner_vo = "usatlas";
    a.cpus = 16;
    a.disk = Bytes::gb(20);
    a.policy.max_walltime = Time::hours(48);
    a.policy.dedicated = true;
    grid_->add_site(a, /*reliability=*/1000.0);
    std::vector<std::string> sites{"ALPHA"};
    if (with_archive) {
      core::SiteConfig se = a;
      se.name = "ARCHIVE";
      se.cpus = 2;
      se.disk = Bytes::gb(3);
      se.deploy_srm = true;
      grid_->add_site(se, /*reliability=*/1000.0);
      sites.push_back("ARCHIVE");
    }
    grid_->site("ALPHA")->install_application(grid_->igoc().pacman_cache(),
                                              "app");
    const vo::Certificate cert =
        grid_->add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy_ = *grid_->make_proxy(cert, "usatlas", Time::hours(200));
    const std::vector<const vo::VomsServer*> servers{grid_->voms("usatlas")};
    for (const std::string& site : sites) {
      grid_->site(site)->refresh_gridmap(servers);
      grid_->site(site)->gatekeeper().set_submission_flake_rate(0.0);
      grid_->site(site)->gatekeeper().set_environment_error_rate(0.0);
    }
    lease_audit_ = std::make_unique<LeaseAuditInvariant>(*ledger_);
    gang_lease_ = std::make_unique<GangLeaseInvariant>(*broker_, *ledger_);
    grid_->start_operations();
    sim_.run_until(Time::minutes(1));  // let monitoring publish
  }

  [[nodiscard]] broker::JobSpec job_spec() const {
    broker::JobSpec spec;
    spec.vo = "usatlas";
    spec.app = "tf";
    spec.required_app = "app";
    spec.runtime = Time::minutes(10);
    return spec;
  }

  [[nodiscard]] gram::GramJob gram_job() const {
    gram::GramJob job;
    job.proxy = proxy_;
    job.request.vo = proxy_.vo;
    job.request.user_dn = proxy_.identity.subject_dn;
    job.request.requested_walltime = Time::minutes(15);
    job.request.actual_runtime = Time::minutes(10);
    return job;
  }

  sim::Simulation& sim() override { return sim_; }
  std::vector<Invariant*> invariants() override {
    return {lease_audit_.get(), gang_lease_.get()};
  }

  std::string digest() override {
    std::ostringstream out;
    out << "acq=" << ledger_->acquired() << " con=" << ledger_->consumed()
        << " rel=" << ledger_->released() << " rej=" << ledger_->rejected()
        << " active=" << ledger_->active()
        << " gb=" << ledger_->leased_bytes().to_gb()
        << " matches=" << broker_->matches() << " holds=" << broker_->holds()
        << " sholds=" << broker_->storage_holds()
        << " rebinds=" << broker_->rebinds()
        << " ganglive=" << broker_->live_gang_leases().size();
    for (const std::string& site : {std::string{"ALPHA"}}) {
      out << " " << site << ".used=" << grid_->site(site)->disk().used().count();
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      out << " r" << i << "=";
      if (!results[i].has_value()) {
        out << "pending";
      } else {
        out << static_cast<int>(results[i]->gram.status) << "@"
            << results[i]->site << ">" << results[i]->archive_site;
      }
    }
    return out.str();
  }

  sim::Simulation sim_;
  std::unique_ptr<core::Grid3> grid_;
  broker::ResourceBroker* broker_ = nullptr;
  placement::PlacementLedger* ledger_ = nullptr;
  vo::VomsProxy proxy_;
  std::unique_ptr<LeaseAuditInvariant> lease_audit_;
  std::unique_ptr<GangLeaseInvariant> gang_lease_;
  std::vector<std::optional<broker::BrokeredResult>> results;
};

/// The storage-hold collision: a job held by a full ARCHIVE, an operator
/// sweep that frees the space and forces a requeue kick into the same
/// tick as the job's own hold-retry timer.  With `seed_bug` the broker's
/// historical stale-hold-release is re-armed.
std::unique_ptr<GridRun> make_placement_run(bool seed_bug) {
  auto run = std::make_unique<GridRun>();
  broker::BrokerConfig cfg;
  cfg.hold.jitter = 0.0;  // retry lands exactly at hold + 5 min
  run->build(/*with_archive=*/true, cfg);
  if (seed_bug) run->broker_->test_seed_stale_hold_release();
  run->results.resize(1);

  // Fill the 3 GB archive so the 1 GB lease is refused at match time.
  run->grid_->site("ARCHIVE")->disk().consume_unmanaged(Bytes::mb(2500));

  GridRun* r = run.get();
  {
    sim::Simulation::ScopedTag tag{run->sim_, "job:J"};
    run->sim_.schedule_at(Time::seconds(61.5), [r] {
      broker::JobSpec spec = r->job_spec();
      spec.stage_out_site = "ARCHIVE";
      spec.stage_out = Bytes::gb(1);
      spec.output_lfns = {"outJ"};
      r->broker_->submit(spec, r->gram_job(), [r](const auto& res) {
        r->results[0] = res;
      });
    });
  }
  {
    // Operator sweep at t=360.5s: free the archive and force a requeue
    // kick.  The kick fires at 361.5s -- the same instant as the held
    // job's retry timer (hold at 61.5s + 5 min) -- and shares the "rb"
    // broker key with it, so the explorer tries both orders.
    sim::Simulation::ScopedTag tag{run->sim_, "ops"};
    run->sim_.schedule_at(Time::seconds(360.5), [r] {
      r->grid_->site("ARCHIVE")->disk().cleanup(Bytes::mb(2500));
      // The public requeue entry point (the site argument only matters
      // for gang leases parked there, and none exist here).
      r->broker_->on_site_quarantined("ops-sweep");
    });
  }
  return run;
}

/// Two-member gang at ALPHA whose completions collide with a quarantine
/// trip at the primary: three dependent actors, six orders, and the
/// gang lease must drain exactly once in every one of them.
std::unique_ptr<GridRun> make_gang_run(std::optional<Time> trip_at) {
  auto run = std::make_unique<GridRun>();
  run->build(/*with_archive=*/false, {});
  run->results.resize(2);

  GridRun* r = run.get();
  {
    sim::Simulation::ScopedTag tag{run->sim_, "gang-submit"};
    run->sim_.schedule_at(Time::seconds(61.5), [r] {
      broker::GangSpec gang;
      gang.gang_id = "g1";
      gang.intermediates = Bytes::gb(1);
      for (int i = 0; i < 2; ++i) {
        broker::JobSpec spec = r->job_spec();
        spec.gang_id = "g1";
        spec.gang_width = 2;
        spec.gang_intermediates = gang.intermediates;
        gang.members.push_back(spec);
      }
      r->broker_->submit_gang(std::move(gang), {r->gram_job(), r->gram_job()},
                              [r](std::size_t member, const auto& res) {
                                r->results[member] = res;
                              });
    });
  }
  if (trip_at.has_value()) {
    sim::Simulation::ScopedTag tag{run->sim_, "ops|site:ALPHA|rb"};
    run->sim_.schedule_at(*trip_at, [r] {
      r->broker_->on_site_quarantined("ALPHA");
    });
  }
  return run;
}

/// When both gang members resolve (they are identical, so they finish in
/// the same tick).  Run once, cached: the trip event is then scheduled
/// to collide with it exactly.
Time gang_completion_time() {
  static const Time cached = [] {
    auto run = make_gang_run(std::nullopt);
    run->sim_.run_until(Time::hours(2));
    Time last = Time::zero();
    // Both results carry gram.finished = the completion event's time.
    for (const auto& res : run->results) {
      if (res.has_value() && res->gram.finished > last) {
        last = res->gram.finished;
      }
    }
    return last;
  }();
  return cached;
}

}  // namespace

std::vector<NamedScenario> reduced_scenarios() {
  std::vector<NamedScenario> out;

  {
    NamedScenario s;
    s.name = "breaker";
    s.description =
        "two sites tripped by simultaneous failure streams; escalating "
        "quarantine, probe re-certification, re-admission";
    s.factory = [] { return std::make_unique<BreakerRun>(); };
    s.config.horizon = Time::seconds(600);
    out.push_back(std::move(s));
  }
  {
    NamedScenario s;
    s.name = "placement";
    s.description =
        "storage-held job: operator requeue kick races the hold-retry "
        "timer over the freed archive SE";
    s.factory = [] { return make_placement_run(/*seed_bug=*/false); };
    s.config.horizon = Time::hours(2);
    out.push_back(std::move(s));
  }
  {
    NamedScenario s;
    s.name = "gang";
    s.description =
        "gang member completions race a quarantine trip at the primary "
        "site; the gang lease must drain exactly once on every order";
    s.factory = [] { return make_gang_run(gang_completion_time()); };
    s.config.horizon = Time::hours(2);
    out.push_back(std::move(s));
  }
  {
    NamedScenario s;
    s.name = "rls-journal";
    s.description =
        "registrations land mid RLS outage; the recovery replay races "
        "the periodic refresh's replay and every entry must apply "
        "exactly once with nothing lost";
    s.factory = [] { return std::make_unique<RlsOutageRun>(); };
    s.config.horizon = Time::seconds(300);
    out.push_back(std::move(s));
  }
  return out;
}

NamedScenario seeded_lease_bug_scenario() {
  NamedScenario s;
  s.name = "placement-seeded-bug";
  s.description =
      "the placement scenario with the historical stale-hold-release "
      "re-seeded: the kick-before-retry order releases an in-flight lease";
  s.factory = [] { return make_placement_run(/*seed_bug=*/true); };
  s.config.horizon = Time::hours(2);
  return s;
}

}  // namespace grid3::mc
