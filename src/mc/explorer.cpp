#include "mc/explorer.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

namespace grid3::mc {
namespace {

std::vector<std::string> split_tag(const std::string& tag) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const auto pos = tag.find('|', start);
    if (pos == std::string::npos) {
      parts.push_back(tag.substr(start));
      return parts;
    }
    parts.push_back(tag.substr(start, pos - start));
    start = pos + 1;
  }
}

std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U);
  return h;
}

/// Foata-normal-form hash of an executed tag sequence: partition into
/// maximal blocks of pairwise-independent events (each event joins the
/// block just above the deepest one it conflicts with), sort each block
/// canonically, hash blocks in order.  Two interleavings of the same
/// Mazurkiewicz trace produce the same hash, so colliding runs MUST end
/// in identical states -- unless the declared independence was wrong.
/// EventIds are deliberately excluded: ids are assigned in scheduling
/// order, which commuting two independent events perturbs.  Identical
/// tags are always dependent (they share every component), so blocks
/// never hold duplicates and sorting by tag is canonical.
std::uint64_t foata_hash(const std::vector<std::string>& tags) {
  std::vector<std::vector<const std::string*>> blocks;
  for (const std::string& tag : tags) {
    std::size_t level = 0;
    for (std::size_t i = blocks.size(); i > 0; --i) {
      const auto& block = blocks[i - 1];
      const bool conflict =
          std::any_of(block.begin(), block.end(), [&](const std::string* other) {
            return Explorer::dependent(tag, *other);
          });
      if (conflict) {
        level = i;
        break;
      }
    }
    if (level == blocks.size()) blocks.emplace_back();
    blocks[level].push_back(&tag);
  }
  std::uint64_t h = 1469598103934665603ULL;
  for (auto& block : blocks) {
    std::sort(block.begin(), block.end(),
              [](const std::string* a, const std::string* b) { return *a < *b; });
    h = hash_mix(h, 0xB10Cull);
    for (const std::string* tag : block) {
      h = hash_mix(h, std::hash<std::string>{}(*tag));
    }
  }
  return h;
}

}  // namespace

std::string Explorer::actor_of(const std::string& tag) {
  const auto pos = tag.find('|');
  return pos == std::string::npos ? tag : tag.substr(0, pos);
}

bool Explorer::dependent(const std::string& a, const std::string& b) {
  if (a.empty() || b.empty()) return true;  // untagged conflicts with all
  const auto pa = split_tag(a);
  const auto pb = split_tag(b);
  for (const auto& x : pa) {
    for (const auto& y : pb) {
      if (x == y) return true;
    }
  }
  return false;
}

Explorer::Explorer(ScenarioFactory factory, McConfig cfg)
    : factory_{std::move(factory)}, cfg_{cfg} {}

std::vector<Explorer::Choice> Explorer::actor_heads(
    const std::vector<sim::ReadyEvent>& ready) {
  // One branch candidate per actor: the lowest-id event (program order --
  // same-actor events are never permuted).  `ready` arrives id-sorted.
  std::vector<Choice> heads;
  std::set<std::string> seen;
  for (const auto& e : ready) {
    if (!seen.insert(actor_of(e.tag)).second) continue;
    heads.push_back({e.id, e.t, e.tag});
  }
  return heads;
}

bool Explorer::in_sleep(const std::vector<Choice>& sleep, sim::EventId id) {
  return std::any_of(sleep.begin(), sleep.end(),
                     [id](const Choice& c) { return c.id == id; });
}

std::size_t Explorer::first_open(const Node& n) {
  for (std::size_t i = 0; i < n.done.size(); ++i) {
    if (!n.done[i]) return i;
  }
  return kNone;
}

std::string Explorer::render_trace() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < stack_.size(); ++i) {
    const Node& node = stack_[i];
    if (node.chosen == kNone) continue;
    const Choice& c = node.choices[node.chosen];
    if (i != 0) out << " > ";
    out << "d" << i << "@" << c.t.to_seconds() << "s["
        << (c.tag.empty() ? "<untagged>" : c.tag) << "]";
  }
  return out.str();
}

void Explorer::record_violation(const char* invariant, std::string detail) {
  if (!seen_violations_.emplace(invariant, detail).second) return;
  Violation v;
  v.invariant = invariant;
  v.detail = std::move(detail);
  for (const Node& node : stack_) v.trace.push_back(node.chosen);
  v.rendered_trace = render_trace();
  violations_.push_back(std::move(v));
}

Explorer::RunEnd Explorer::run_once() {
  auto run = factory_();
  sim::Simulation& sim = run->sim();
  const std::vector<Invariant*> invariants = run->invariants();
  ++stats_.runs;

  std::size_t depth = 0;  // next stack node to replay or create
  std::uint64_t steps = 0;
  std::vector<Choice> sleep;       // current sleep set along this path
  std::vector<std::string> trace;  // executed tags, for the Foata class

  // Sleep set handed to the child of `node` via its chosen branch:
  // (arrival sleep ∪ siblings explored before it) minus everything that
  // conflicts with the choice (Godefroid).
  const auto descend_sleep = [](const Node& node) {
    const Choice& c = node.choices[node.chosen];
    std::vector<Choice> next;
    const auto consider = [&](const Choice& x) {
      if (x.id == c.id || dependent(x.tag, c.tag)) return;
      if (std::any_of(next.begin(), next.end(),
                      [&](const Choice& y) { return y.id == x.id; })) {
        return;
      }
      next.push_back(x);
    };
    for (const Choice& x : node.sleep_now) consider(x);
    for (std::size_t i = 0; i < node.choices.size(); ++i) {
      if (node.done[i] && i != node.chosen) consider(node.choices[i]);
    }
    return next;
  };

  for (;;) {
    if (stats_.transitions >= cfg_.max_transitions ||
        steps >= cfg_.max_steps_per_run) {
      return RunEnd::kBudget;
    }
    const auto front = sim.next_time();
    if (!front.has_value() || *front > cfg_.horizon) break;  // quiescent

    const std::vector<Choice> heads = actor_heads(sim.enumerate_ready());
    assert(!heads.empty());
    Choice pick;

    if (heads.size() == 1) {
      pick = heads.front();
      if (cfg_.use_sleep_sets && in_sleep(sleep, pick.id)) {
        // The only enabled event is asleep: this whole continuation was
        // already covered under a sibling ordering.
        ++stats_.sleep_pruned;
        return RunEnd::kPruned;
      }
      sleep.erase(std::remove_if(sleep.begin(), sleep.end(),
                                 [&](const Choice& x) {
                                   return dependent(x.tag, pick.tag);
                                 }),
                  sleep.end());
    } else if (depth < stack_.size()) {
      // Replaying the recorded prefix.  The scenario must regenerate the
      // exact same decision point, or replay-from-seed is unsound.
      Node& node = stack_[depth];
      const bool same =
          node.choices.size() == heads.size() &&
          std::equal(node.choices.begin(), node.choices.end(), heads.begin(),
                     [](const Choice& a, const Choice& b) {
                       return a.id == b.id && a.tag == b.tag;
                     });
      if (!same) {
        record_violation(
            "replay-divergence",
            "scenario is not deterministic: decision point d" +
                std::to_string(depth) +
                " changed between replays (check the factory for unseeded "
                "randomness or wall-clock input)");
        return RunEnd::kViolation;
      }
      pick = node.choices[node.chosen];
      sleep = descend_sleep(node);
      ++depth;
    } else {
      // Frontier: a decision point this path has not branched at before.
      Node node;
      node.choices = heads;
      node.done.assign(heads.size(), 0);
      node.sleep_now = sleep;
      if (cfg_.use_sleep_sets) {
        for (std::size_t i = 0; i < heads.size(); ++i) {
          if (in_sleep(sleep, heads[i].id)) {
            node.done[i] = 1;
            ++stats_.sleep_pruned;
          }
        }
      }
      node.chosen = first_open(node);
      ++stats_.decision_points;
      if (node.chosen == kNone) {
        stack_.push_back(std::move(node));  // backtrack() pops it
        return RunEnd::kPruned;
      }
      ++stats_.branches;
      stack_.push_back(std::move(node));
      pick = stack_.back().choices[stack_.back().chosen];
      sleep = descend_sleep(stack_.back());
      ++depth;
    }

    if (!sim.step_event(pick.id)) {
      record_violation("replay-divergence",
                       "step_event refused recorded choice id " +
                           std::to_string(pick.id));
      return RunEnd::kViolation;
    }
    ++stats_.transitions;
    ++steps;
    trace.push_back(pick.tag);

    for (Invariant* inv : invariants) {
      if (auto bad = inv->check(/*quiescent=*/false)) {
        record_violation(inv->name(), std::move(*bad));
        return RunEnd::kViolation;
      }
    }
  }

  for (Invariant* inv : invariants) {
    if (auto bad = inv->check(/*quiescent=*/true)) {
      record_violation(inv->name(), std::move(*bad));
      return RunEnd::kViolation;
    }
  }

  ++stats_.terminals;
  if (cfg_.check_determinism) {
    const std::uint64_t cls = foata_hash(trace);
    const std::string digest = run->digest();
    auto [it, inserted] = classes_.try_emplace(cls, digest, render_trace());
    if (!inserted && it->second.first != digest) {
      record_violation(
          "determinism",
          "two interleavings of commuting events reached different end "
          "states -- the independence relation over-approximates: first "
          "path {" +
              it->second.second + "} vs this path {" + render_trace() + "}");
    }
  }
  return RunEnd::kTerminal;
}

bool Explorer::backtrack() {
  while (!stack_.empty()) {
    Node& node = stack_.back();
    if (node.chosen != kNone) node.done[node.chosen] = 1;
    const std::size_t next = first_open(node);
    if (next != kNone) {
      node.chosen = next;
      ++stats_.branches;
      return true;
    }
    stack_.pop_back();
  }
  return false;
}

const std::vector<Violation>& Explorer::explore() {
  stack_.clear();
  for (;;) {
    const RunEnd end = run_once();
    if (end == RunEnd::kBudget) {
      stats_.budget_exhausted = true;
      break;
    }
    if (violations_.size() >= cfg_.max_violations) break;
    if (!backtrack()) break;
  }
  stats_.foata_classes = classes_.size();
  return violations_;
}

std::vector<Violation> Explorer::check_canonical() {
  auto run = factory_();
  sim::Simulation& sim = run->sim();
  const std::vector<Invariant*> invariants = run->invariants();
  std::vector<Violation> found;
  const auto note = [&](const char* name, std::string detail) {
    Violation v;
    v.invariant = name;
    v.detail = std::move(detail);
    v.rendered_trace = "canonical";
    found.push_back(std::move(v));
  };

  std::uint64_t steps = 0;
  for (;;) {
    const auto front = sim.next_time();
    if (!front.has_value() || *front > cfg_.horizon ||
        steps >= cfg_.max_steps_per_run) {
      break;
    }
    // Canonical = lowest id among all ready events, exactly what a plain
    // sim.step() would pop.
    const auto ready = sim.enumerate_ready();
    const bool ok = sim.step_event(ready.front().id);
    assert(ok);
    (void)ok;
    ++steps;
    for (Invariant* inv : invariants) {
      if (auto bad = inv->check(/*quiescent=*/false)) {
        note(inv->name(), std::move(*bad));
        return found;
      }
    }
  }
  for (Invariant* inv : invariants) {
    if (auto bad = inv->check(/*quiescent=*/true)) {
      note(inv->name(), std::move(*bad));
    }
  }
  return found;
}

}  // namespace grid3::mc
