// The four shipped protocol invariants, each wired to real subsystem
// state (no shadow models):
//
//   1. LeaseAuditInvariant   -- every PlacementLedger lease is released
//      or consumed exactly once across fallthrough/hold/rescue/failure
//      paths.  Taps the ledger's audit hook: a "release-stale" or
//      "consume-stale" event IS a double-release/use-after-release, and
//      at quiescence no lease may still be active (reserved space would
//      have leaked -- the section 6.2 disk-exhaustion class).
//   2. GangLeaseInvariant    -- gang-scoped leases are never stranded:
//      every lease a live gang still points at must be active in the
//      ledger, and at quiescence no gang lease survives (members split,
//      site trips, and plain completion all drain it).
//   3. BreakerInvariant      -- the health breaker never loses a
//      quarantined site: breaker state and the broker-facing
//      quarantined() predicate stay consistent after every transition
//      (open => excluded, closed => matchable), and by quiescence every
//      tripped site has been re-admitted (open => eventually half-open
//      probe => readmission; nothing stays dark forever).
//   4. Determinism is checked by the Explorer itself (Foata-class digest
//      comparison); MatchQuarantineInvariant rounds out the breaker
//      story on the broker side: no match decision ever lands on a site
//      the breaker currently excludes.
//   5. JournalInvariant       -- the RLS write-ahead journal applies
//      every registration exactly once: taps the journal's audit hook
//      (a second "apply"/"replay" for one entry id IS a double-apply),
//      and at quiescence with the endpoint up no entry may still be
//      pending against a reachable LRC, and every journaled (site, lfn)
//      must actually be present in its authoritative catalog -- the
//      no-lost-registration guarantee across outage/recovery orders.
//
// Adding an invariant: subclass mc::Invariant, read the real service
// state (add a const accessor to the service if one is missing -- never
// duplicate its bookkeeping), return a message on violation, and hand a
// pointer to it from your ScenarioRun::invariants().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "mc/explorer.h"

namespace grid3::broker {
class ResourceBroker;
}
namespace grid3::health {
class SiteHealthMonitor;
}
namespace grid3::placement {
class PlacementLedger;
}
namespace grid3::rls {
class ReplicaLocationService;
}

namespace grid3::mc {

class LeaseAuditInvariant : public Invariant {
 public:
  /// Installs itself as the ledger's audit tap.
  explicit LeaseAuditInvariant(placement::PlacementLedger& ledger);
  [[nodiscard]] const char* name() const override { return "lease-audit"; }
  std::optional<std::string> check(bool quiescent) override;

 private:
  placement::PlacementLedger& ledger_;
  std::string stale_;  ///< first stale lifecycle event seen
};

class GangLeaseInvariant : public Invariant {
 public:
  GangLeaseInvariant(broker::ResourceBroker& broker,
                     placement::PlacementLedger& ledger);
  [[nodiscard]] const char* name() const override { return "gang-lease"; }
  std::optional<std::string> check(bool quiescent) override;

 private:
  broker::ResourceBroker& broker_;
  placement::PlacementLedger& ledger_;
};

class BreakerInvariant : public Invariant {
 public:
  explicit BreakerInvariant(health::SiteHealthMonitor& health);
  [[nodiscard]] const char* name() const override { return "breaker"; }
  std::optional<std::string> check(bool quiescent) override;

 private:
  health::SiteHealthMonitor& health_;
};

class JournalInvariant : public Invariant {
 public:
  /// Installs itself as the registration journal's audit tap.
  explicit JournalInvariant(rls::ReplicaLocationService& rls);
  [[nodiscard]] const char* name() const override { return "rls-journal"; }
  std::optional<std::string> check(bool quiescent) override;

 private:
  rls::ReplicaLocationService& rls_;
  std::map<std::uint64_t, int> applies_;  ///< entry id -> apply events seen
  std::string double_apply_;              ///< first exactly-once breach seen
};

class MatchQuarantineInvariant : public Invariant {
 public:
  MatchQuarantineInvariant(broker::ResourceBroker& broker,
                           health::SiteHealthMonitor& health);
  [[nodiscard]] const char* name() const override {
    return "match-quarantine";
  }
  std::optional<std::string> check(bool quiescent) override;

 private:
  broker::ResourceBroker& broker_;
  health::SiteHealthMonitor& health_;
  std::size_t seen_ = 0;  ///< match-log entries already vetted
};

}  // namespace grid3::mc
