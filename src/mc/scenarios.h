// Reduced scenarios for exhaustive interleaving checks.
//
// Each is a small, deterministic slice of the Grid3 stack built so that
// the interesting race -- the pair of same-timestamp events whose order
// the single-ordering test suite never varies -- actually occurs:
//
//   * "breaker":   two submitter streams fail two sites at the same
//     instant; trips, escalating quarantine, probe re-certification and
//     re-admission all run under permutation.  Exercises the breaker
//     and determinism invariants (the two sites' chains are independent
//     and must commute byte-for-byte).
//   * "placement": a job storage-held by a full archive SE; an operator
//     sweep frees the space and forces a requeue kick that collides
//     with the job's own hold-retry timer.  Exercises the lease-audit
//     invariant across the hold/retry/kick paths.
//   * "gang":      a co-located two-member gang whose completions
//     collide with a quarantine trip at the gang's primary site -- the
//     three orders in which the gang lease can be drained.  Exercises
//     the gang-lease and lease-audit invariants.
//   * "rls-journal": replica registrations land while the RLS endpoint
//     and RLI are down; the repair-time replay collides with the
//     periodic refresh's own replay trigger.  Exercises the rls-journal
//     invariant: exactly-once apply and no registration lost on any
//     outage/recovery order.
//
// seeded_lease_bug_scenario() is "placement" with the historical
// stale-hold-release bug re-seeded via
// ResourceBroker::test_seed_stale_hold_release(): the acceptance test
// proves Explorer::explore() finds it while check_canonical() -- the
// ordering every plain test run uses -- cannot.
#pragma once

#include <string>
#include <vector>

#include "mc/explorer.h"

namespace grid3::mc {

struct NamedScenario {
  std::string name;
  std::string description;
  ScenarioFactory factory;
  McConfig config;  ///< horizon/budget tuned to the scenario's size
};

/// The reduced broker/placement/health scenarios grid3_mc_check explores
/// exhaustively in CI.  All invariants must hold on every interleaving.
std::vector<NamedScenario> reduced_scenarios();

/// "placement" with the stale-hold-release bug seeded.  The explorer
/// must find a lease-audit violation; the canonical ordering must not.
NamedScenario seeded_lease_bug_scenario();

}  // namespace grid3::mc
