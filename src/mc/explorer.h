// Exhaustive-interleaving checker: a DFS state-space explorer over the
// simulation kernel's event queue.
//
// Grid2003's hard-won lessons are protocol edge cases -- leases leaked
// on rescue paths, black-holed sites re-admitted wrongly, stage-out
// racing failure handling (sections 6, 7).  The test suite spot-checks
// them on ONE event ordering: the kernel fires same-timestamp events in
// scheduling order.  In the real grid those events are unordered -- a
// hold-retry timer and a completion kick landing in the same second can
// fire either way round -- so the checker treats the simulator as a
// transition system and explores every ordering of *commutative
// same-timestamp events*, checking a set of protocol invariants after
// each transition (the role DFSExplorer/UnfoldingChecker play in
// SimGrid's mc/ layer).
//
// Mechanics: replay-from-seed.  A scenario is a factory that builds a
// fresh, deterministic simulation; the explorer steps it with
// Simulation::enumerate_ready()/step_event(), and at each decision point
// (two or more distinct actors ready at the front timestamp) picks one
// head per actor to fire.  Backtracking re-runs the factory and replays
// the recorded choice prefix -- no state snapshots.  Sleep-set pruning
// (Godefroid) skips orderings that only commute independent events, and
// a Foata-class digest check verifies the declared independence: two
// explored interleavings in the same commutation class must reach
// byte-identical end states.
//
// The independence relation comes from event tags ("actor|res1|res2",
// see sim::Simulation): two events conflict when they share any tag
// component or either is untagged; heads of the SAME actor are never
// permuted (program order).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "util/units.h"

namespace grid3::mc {

/// One protocol invariant, checked after every explored transition and
/// once more at quiescence (queue drained or horizon reached).  A
/// ScenarioRun owns its invariants; they hold references into the run's
/// live services.
class Invariant {
 public:
  virtual ~Invariant() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  /// Return a violation message, or nullopt when the invariant holds.
  /// `quiescent` is true for the final end-of-run check.
  virtual std::optional<std::string> check(bool quiescent) = 0;
};

/// One fresh instance of the scenario under test.  The factory must be
/// deterministic: building twice and firing the same event ids must
/// reproduce the same behaviour, or replay diverges (the explorer
/// reports this as a "replay-divergence" violation).
class ScenarioRun {
 public:
  virtual ~ScenarioRun() = default;
  [[nodiscard]] virtual sim::Simulation& sim() = 0;
  /// Invariants to check; pointers remain owned by the run.
  [[nodiscard]] virtual std::vector<Invariant*> invariants() = 0;
  /// Canonical end-state rendering.  Must be *order-normalized*: state
  /// that records global arrival order of independent actors (append-only
  /// logs with global sequence numbers) must be re-keyed per actor, or
  /// the determinism check will flag log accidents instead of real
  /// non-commutativity.
  [[nodiscard]] virtual std::string digest() = 0;
};

using ScenarioFactory = std::function<std::unique_ptr<ScenarioRun>()>;

struct McConfig {
  /// Stop exploring a run past this simulated time (open-ended scenarios
  /// with periodic monitoring never drain their queues).
  Time horizon = Time::max();
  /// Total transition budget across all replays; exceeding it marks the
  /// exploration incomplete instead of running forever.
  std::uint64_t max_transitions = 2'000'000;
  /// Hard cap on steps within one run (runaway-event-loop backstop).
  std::uint64_t max_steps_per_run = 500'000;
  /// Stop after this many distinct violations.
  std::size_t max_violations = 8;
  /// Compare end-state digests of interleavings in the same commutation
  /// (Foata) class -- invariant 4, byte-identical determinism.
  bool check_determinism = true;
  /// Sleep-set pruning.  Turn OFF to validate the independence relation
  /// itself: with pruning on, redundant linearizations of a commutation
  /// class are exactly the runs that get skipped, so the determinism
  /// check rarely sees two members of one class.  Off = every
  /// interleaving explored, every class cross-checked.
  bool use_sleep_sets = true;
};

struct Violation {
  std::string invariant;
  std::string detail;
  /// Choice index taken at each decision point on the violating path.
  std::vector<std::size_t> trace;
  /// Human rendering of the decision path ("d0@t=361.500 [ops|rb]...").
  std::string rendered_trace;
};

struct ExploreStats {
  std::uint64_t runs = 0;          ///< scenario replays executed
  std::uint64_t transitions = 0;   ///< events stepped, across all replays
  std::uint64_t decision_points = 0;  ///< distinct branch nodes discovered
  std::uint64_t branches = 0;      ///< branches actually explored
  std::uint64_t sleep_pruned = 0;  ///< branches skipped by sleep sets
  std::uint64_t terminals = 0;     ///< complete interleavings reached
  std::uint64_t foata_classes = 0; ///< distinct commutation classes seen
  bool budget_exhausted = false;
  /// True when the state space was fully explored within budget.
  [[nodiscard]] bool complete() const { return !budget_exhausted; }
};

class Explorer {
 public:
  explicit Explorer(ScenarioFactory factory, McConfig cfg = {});

  /// Exhaustive DFS over commutative same-timestamp orderings.  Returns
  /// the violations found (empty = every explored interleaving satisfies
  /// every invariant).
  const std::vector<Violation>& explore();

  /// Single run following the kernel's canonical scheduling order (the
  /// ordering a plain sim.run() would execute), with the same invariant
  /// checks.  This is what "one ordering" CI coverage amounts to -- the
  /// seeded-bug test proves explore() finds races this misses.
  std::vector<Violation> check_canonical();

  [[nodiscard]] const ExploreStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  // --- independence relation (exposed for tests) -----------------------
  /// First '|'-separated component ("" for untagged events).
  [[nodiscard]] static std::string actor_of(const std::string& tag);
  /// Conflict: share any tag component, or either event is untagged.
  [[nodiscard]] static bool dependent(const std::string& a,
                                      const std::string& b);

 private:
  struct Choice {
    sim::EventId id = 0;
    Time t;
    std::string tag;
  };
  /// One decision point on the current DFS path.
  struct Node {
    std::vector<Choice> choices;      ///< actor heads, sorted by id
    std::vector<char> done;           ///< explored or sleep-pruned
    /// Arrival sleep set plus siblings already fully explored here; the
    /// child of branch c inherits the subset independent of c.
    std::vector<Choice> sleep_now;
    std::size_t chosen = kNone;
  };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  enum class RunEnd { kTerminal, kPruned, kViolation, kBudget };

  RunEnd run_once();
  /// Advance the deepest node with an unexplored branch; false when the
  /// whole space is exhausted.
  bool backtrack();
  void record_violation(const char* invariant, std::string detail);
  [[nodiscard]] std::string render_trace() const;
  [[nodiscard]] static std::vector<Choice> actor_heads(
      const std::vector<sim::ReadyEvent>& ready);
  [[nodiscard]] static bool in_sleep(const std::vector<Choice>& sleep,
                                     sim::EventId id);
  [[nodiscard]] static std::size_t first_open(const Node& n);

  ScenarioFactory factory_;
  McConfig cfg_;
  std::vector<Node> stack_;
  ExploreStats stats_;
  std::vector<Violation> violations_;
  std::set<std::pair<std::string, std::string>> seen_violations_;
  /// Foata commutation class -> (digest, rendered trace of first member).
  std::map<std::uint64_t, std::pair<std::string, std::string>> classes_;
};

}  // namespace grid3::mc
