// Pacman-style packaging (paper section 5.1).
//
// "A Pacman package encoded the basic VDT-based Grid3 installation" --
// packages declare dependencies, an install cost, services they provide,
// and post-install validation checks.  The iGOC hosts the package cache
// sites pull from.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace grid3::pacman {

/// A named functional check run after installation ("post-installation
/// testing and certification", section 5.1).
struct ValidationCheck {
  std::string name;
  /// Probability that the check catches a misconfiguration when one is
  /// present (checks are imperfect; latent defects slip through).
  double detection_power = 0.9;
};

struct Package {
  std::string name;
  std::string version;
  std::vector<std::string> dependencies;
  /// Wall-clock cost of installing this package at a site.
  Time install_cost = Time::minutes(10);
  /// Grid services this package provides (e.g. "gram", "gridftp").
  std::vector<std::string> provides;
  std::vector<ValidationCheck> checks;
  /// Probability an installation of this package is silently
  /// misconfigured before validation runs.
  double misconfig_probability = 0.05;
};

/// The iGOC-hosted package cache.
class PackageCache {
 public:
  /// Add or replace a package definition.
  void add(Package pkg);

  [[nodiscard]] const Package* find(const std::string& name) const;
  [[nodiscard]] std::size_t size() const { return packages_.size(); }

  /// Dependency closure of `root` in install order (dependencies first).
  /// Returns nullopt on unknown package or dependency cycle.
  [[nodiscard]] std::optional<std::vector<const Package*>> resolve(
      const std::string& root) const;

 private:
  std::vector<Package> packages_;
};

}  // namespace grid3::pacman
