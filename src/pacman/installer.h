// Site installation, validation, and certification pipeline.
//
// An install transaction resolves the dependency closure, "installs" each
// package (accumulating wall-clock cost), randomly introduces latent
// misconfigurations, and runs the packages' validation checks.  Checks
// that fire force a reinstall of the offending package; defects that slip
// past validation remain latent and surface later as the site-problem job
// failures sections 6.1/6.2 describe.
#pragma once

#include <string>
#include <vector>

#include "mds/gris.h"
#include "pacman/package.h"
#include "util/rng.h"

namespace grid3::pacman {

struct InstallOptions {
  /// Multiplier on every package's misconfig probability (a careful admin
  /// reduces it; a rushed install raises it).
  double misconfig_scale = 1.0;
  /// How many validation-triggered reinstall attempts before giving up.
  int max_reinstalls = 2;
};

struct InstallReport {
  bool success = false;
  std::vector<std::string> installed;       ///< in install order
  std::vector<std::string> latent_defects;  ///< misconfigured, undetected
  std::vector<std::string> caught_defects;  ///< misconfigured, fixed
  std::string failed_package;               ///< set when success == false
  Time elapsed;
  int reinstalls = 0;
};

class SiteInstaller {
 public:
  explicit SiteInstaller(const PackageCache& cache) : cache_{cache} {}

  /// Run a full install transaction for `root` (typically "grid3-vdt").
  [[nodiscard]] InstallReport install(const std::string& root,
                                      util::Rng& rng,
                                      const InstallOptions& opts = {}) const;

  /// Publish the install result into a site GRIS: VDT version/location
  /// plus one Grid3App-<name> attribute per installed top-level app.
  static void publish(const InstallReport& report, const std::string& version,
                      mds::Gris& gris, Time now);

 private:
  const PackageCache& cache_;
};

/// Certification: the documented post-install procedure (section 5.1).
/// Runs a fixed battery of functional probes; a site is certified when
/// all pass.
struct CertificationResult {
  bool certified = false;
  std::vector<std::string> passed;
  std::vector<std::string> failed;
};

[[nodiscard]] CertificationResult certify_site(const InstallReport& install,
                                               util::Rng& rng);

}  // namespace grid3::pacman
