#include "pacman/installer.h"

#include <algorithm>

namespace grid3::pacman {

InstallReport SiteInstaller::install(const std::string& root, util::Rng& rng,
                                     const InstallOptions& opts) const {
  InstallReport report;
  auto order = cache_.resolve(root);
  if (!order.has_value()) {
    report.failed_package = root;
    return report;
  }

  for (const Package* pkg : *order) {
    int attempts = 0;
    bool settled = false;
    while (!settled) {
      report.elapsed += pkg->install_cost;
      const bool misconfigured =
          rng.chance(std::min(1.0, pkg->misconfig_probability *
                                       opts.misconfig_scale));
      if (!misconfigured) {
        settled = true;
        break;
      }
      // Run the package's validation checks; any hit reveals the defect.
      bool detected = false;
      for (const ValidationCheck& check : pkg->checks) {
        if (rng.chance(check.detection_power)) {
          detected = true;
          break;
        }
      }
      if (!detected) {
        report.latent_defects.push_back(pkg->name);
        settled = true;
        break;
      }
      report.caught_defects.push_back(pkg->name);
      if (++attempts > opts.max_reinstalls) {
        report.failed_package = pkg->name;
        return report;
      }
      ++report.reinstalls;  // reinstall loop continues
    }
    report.installed.push_back(pkg->name);
  }
  report.success = true;
  return report;
}

void SiteInstaller::publish(const InstallReport& report,
                            const std::string& version, mds::Gris& gris,
                            Time now) {
  if (!report.success) return;
  gris.publish(mds::grid3ext::kVdtVersion, version, now);
  gris.publish(mds::grid3ext::kVdtLocation, std::string{"/opt/vdt"}, now);
  for (const std::string& pkg : report.installed) {
    // Application packages use the Grid3App-<name> convention; middleware
    // packages publish their provided service names elsewhere.
    if (pkg.starts_with("app-")) {
      gris.publish(mds::app_attribute(pkg.substr(4)), version, now);
    }
  }
}

CertificationResult certify_site(const InstallReport& install,
                                 util::Rng& rng) {
  CertificationResult result;
  if (!install.success) {
    result.failed.push_back("install-incomplete");
    return result;
  }
  // The documented battery: authentication, job submission round-trip,
  // file transfer, information publication, monitoring visibility.
  static constexpr const char* kProbes[] = {
      "gsi-authentication", "gram-job-roundtrip", "gridftp-loopback",
      "mds-publication", "monitoring-heartbeat"};
  for (const char* probe : kProbes) {
    // A latent defect trips the relevant functional probe with moderate
    // probability; otherwise probes pass.
    bool tripped = false;
    for (const std::string& defect : install.latent_defects) {
      (void)defect;
      if (rng.chance(0.25)) {
        tripped = true;
        break;
      }
    }
    if (tripped) {
      result.failed.emplace_back(probe);
    } else {
      result.passed.emplace_back(probe);
    }
  }
  result.certified = result.failed.empty();
  return result;
}

}  // namespace grid3::pacman
