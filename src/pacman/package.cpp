#include "pacman/package.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace grid3::pacman {

void PackageCache::add(Package pkg) {
  auto it = std::find_if(packages_.begin(), packages_.end(),
                         [&](const Package& p) { return p.name == pkg.name; });
  if (it != packages_.end()) {
    *it = std::move(pkg);
  } else {
    packages_.push_back(std::move(pkg));
  }
}

const Package* PackageCache::find(const std::string& name) const {
  auto it = std::find_if(packages_.begin(), packages_.end(),
                         [&](const Package& p) { return p.name == name; });
  return it == packages_.end() ? nullptr : &*it;
}

std::optional<std::vector<const Package*>> PackageCache::resolve(
    const std::string& root) const {
  std::vector<const Package*> order;
  std::unordered_set<std::string> done;
  std::unordered_set<std::string> visiting;

  // Iterative DFS with an explicit stack to avoid recursion limits on
  // pathological dependency graphs.
  struct Frame {
    const Package* pkg;
    std::size_t next_dep = 0;
  };
  const Package* start = find(root);
  if (start == nullptr) return std::nullopt;

  std::vector<Frame> stack{{start, 0}};
  visiting.insert(start->name);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_dep < f.pkg->dependencies.size()) {
      const std::string& dep_name = f.pkg->dependencies[f.next_dep++];
      if (done.contains(dep_name)) continue;
      if (visiting.contains(dep_name)) return std::nullopt;  // cycle
      const Package* dep = find(dep_name);
      if (dep == nullptr) return std::nullopt;  // missing dependency
      visiting.insert(dep_name);
      stack.push_back({dep, 0});
    } else {
      order.push_back(f.pkg);
      done.insert(f.pkg->name);
      visiting.erase(f.pkg->name);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace grid3::pacman
