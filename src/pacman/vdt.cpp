#include "pacman/vdt.h"

namespace grid3::pacman {

std::string load_vdt_bundle(PackageCache& cache) {
  cache.add({.name = "globus-gsi",
             .version = "2.4",
             .dependencies = {},
             .install_cost = Time::minutes(8),
             .provides = {"gsi"},
             .checks = {{"ca-certificates-present", 0.95},
                        {"gridmap-readable", 0.9}},
             .misconfig_probability = 0.06});
  cache.add({.name = "globus-gram",
             .version = "2.4",
             .dependencies = {"globus-gsi"},
             .install_cost = Time::minutes(12),
             .provides = {"gram"},
             .checks = {{"gatekeeper-listens", 0.95},
                        {"jobmanager-fork-roundtrip", 0.85}},
             .misconfig_probability = 0.08});
  cache.add({.name = "globus-gridftp",
             .version = "2.4",
             .dependencies = {"globus-gsi"},
             .install_cost = Time::minutes(6),
             .provides = {"gridftp"},
             .checks = {{"gridftp-listens", 0.95},
                        {"firewall-port-range-open", 0.6}},
             .misconfig_probability = 0.1});
  cache.add({.name = "globus-mds",
             .version = "2.4",
             .dependencies = {"globus-gsi"},
             .install_cost = Time::minutes(5),
             .provides = {"gris"},
             .checks = {{"gris-answers-query", 0.9},
                        {"giis-registration-visible", 0.7}},
             .misconfig_probability = 0.07});
  cache.add({.name = "ganglia",
             .version = "2.5.6",
             .dependencies = {},
             .install_cost = Time::minutes(4),
             .provides = {"ganglia"},
             .checks = {{"gmond-multicast-seen", 0.85}},
             .misconfig_probability = 0.05});
  cache.add({.name = "monalisa",
             .version = "0.94",
             .dependencies = {},
             .install_cost = Time::minutes(5),
             .provides = {"monalisa"},
             .checks = {{"agent-reports-to-repository", 0.85}},
             .misconfig_probability = 0.05});
  cache.add({.name = "grid3-info-providers",
             .version = "1.0",
             .dependencies = {"globus-mds"},
             .install_cost = Time::minutes(3),
             .provides = {"grid3-schema"},
             .checks = {{"grid3-attributes-published", 0.9}},
             .misconfig_probability = 0.04});
  cache.add({.name = "grid3-vdt",
             .version = kVdtVersion,
             .dependencies = {"globus-gram", "globus-gridftp", "globus-mds",
                              "ganglia", "monalisa", "grid3-info-providers"},
             .install_cost = Time::minutes(2),
             .provides = {},
             .checks = {{"site-verify-script", 0.8}},
             .misconfig_probability = 0.02});
  return "grid3-vdt";
}

void add_application_package(PackageCache& cache, const std::string& app_name,
                             Time install_cost) {
  cache.add({.name = "app-" + app_name,
             .version = "1.0",
             .dependencies = {"grid3-vdt"},
             .install_cost = install_cost,
             .provides = {"app:" + app_name},
             .checks = {{"app-smoke-test", 0.8}},
             .misconfig_probability = 0.05});
}

}  // namespace grid3::pacman
