// The Virtual Data Toolkit bundle as deployed on Grid3 (section 5.1):
// Globus GSI + GRAM + GridFTP, MDS with Grid3 registration scripts,
// Ganglia, and the MonALISA agent, all rooted at the "grid3-vdt"
// meta-package the Pacman cache serves.
#pragma once

#include <string>

#include "pacman/package.h"

namespace grid3::pacman {

/// The VDT version string Grid3 deployed during SC2003.
inline constexpr const char* kVdtVersion = "1.1.12";

/// Populate `cache` with the Grid3 VDT package graph.  Returns the name
/// of the root meta-package ("grid3-vdt").
std::string load_vdt_bundle(PackageCache& cache);

/// Add a grid-enabled application package (e.g. "app-gce-atlas") that
/// depends on the VDT root, as the experiments' Pacman-based application
/// installs did (section 6.1).
void add_application_package(PackageCache& cache, const std::string& app_name,
                             Time install_cost);

}  // namespace grid3::pacman
