#include "srm/dcache.h"

#include <algorithm>

namespace grid3::srm {

std::size_t DcachePoolManager::add_pool(const std::string& pool_name,
                                        Bytes capacity) {
  pools_.push_back({pool_name,
                    std::make_unique<DiskVolume>(name_ + "/" + pool_name,
                                                 capacity),
                    true});
  return pools_.size() - 1;
}

std::optional<std::size_t> DcachePoolManager::best_pool(
    Bytes size, const std::vector<std::size_t>& exclude) const {
  std::optional<std::size_t> best;
  Bytes best_free;
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (!pools_[i].enabled) continue;
    if (std::find(exclude.begin(), exclude.end(), i) != exclude.end()) {
      continue;
    }
    const Bytes free = pools_[i].volume->free();
    if (free < size) continue;
    if (!best.has_value() || free > best_free) {
      best = i;
      best_free = free;
    }
  }
  return best;
}

std::optional<std::size_t> DcachePoolManager::write(
    const std::string& pnfsid, Bytes size) {
  if (files_.contains(pnfsid)) return std::nullopt;  // immutable store
  const auto pool = best_pool(size, {});
  if (!pool.has_value()) return std::nullopt;
  if (!pools_[*pool].volume->allocate(size)) return std::nullopt;
  files_.emplace(pnfsid, Entry{size, {*pool}, 0});
  return pool;
}

std::optional<std::size_t> DcachePoolManager::read(
    const std::string& pnfsid) {
  auto it = files_.find(pnfsid);
  if (it == files_.end()) return std::nullopt;
  ++it->second.reads;
  // Serve from the replica on the pool with the most free space (a crude
  // least-loaded proxy, matching dCache's cost module in spirit).
  std::size_t chosen = it->second.pools.front();
  for (std::size_t p : it->second.pools) {
    if (pools_[p].volume->free() > pools_[chosen].volume->free()) {
      chosen = p;
    }
  }
  return chosen;
}

std::size_t DcachePoolManager::replicate_hot(std::uint64_t threshold) {
  std::size_t made = 0;
  for (auto& [pnfsid, entry] : files_) {
    if (entry.reads < threshold) continue;
    const auto target = best_pool(entry.size, entry.pools);
    if (!target.has_value()) continue;
    if (!pools_[*target].volume->allocate(entry.size)) continue;
    entry.pools.push_back(*target);
    entry.reads = 0;
    ++made;
  }
  return made;
}

bool DcachePoolManager::remove(const std::string& pnfsid) {
  auto it = files_.find(pnfsid);
  if (it == files_.end()) return false;
  for (std::size_t p : it->second.pools) {
    pools_[p].volume->release(it->second.size);
  }
  files_.erase(it);
  return true;
}

std::size_t DcachePoolManager::drain_pool(std::size_t index) {
  if (index >= pools_.size()) return 0;
  pools_[index].enabled = false;
  std::size_t migrated = 0;
  for (auto& [pnfsid, entry] : files_) {
    auto pos = std::find(entry.pools.begin(), entry.pools.end(), index);
    if (pos == entry.pools.end()) continue;
    if (entry.pools.size() > 1) {
      // Another replica exists: just drop this one.
      pools_[index].volume->release(entry.size);
      entry.pools.erase(pos);
      ++migrated;
      continue;
    }
    const auto target = best_pool(entry.size, {index});
    if (!target.has_value()) continue;  // nowhere to go; file stays
    if (!pools_[*target].volume->allocate(entry.size)) continue;
    pools_[index].volume->release(entry.size);
    *pos = *target;
    ++migrated;
  }
  return migrated;
}

void DcachePoolManager::enable_pool(std::size_t index) {
  if (index < pools_.size()) pools_[index].enabled = true;
}

bool DcachePoolManager::has(const std::string& pnfsid) const {
  return files_.contains(pnfsid);
}

std::size_t DcachePoolManager::replica_count(
    const std::string& pnfsid) const {
  auto it = files_.find(pnfsid);
  return it == files_.end() ? 0 : it->second.pools.size();
}

Bytes DcachePoolManager::total_free() const {
  Bytes total;
  for (const Pool& p : pools_) {
    if (p.enabled) total += p.volume->free();
  }
  return total;
}

std::uint64_t DcachePoolManager::reads_of(const std::string& pnfsid) const {
  auto it = files_.find(pnfsid);
  return it == files_.end() ? 0 : it->second.reads;
}

}  // namespace grid3::srm
