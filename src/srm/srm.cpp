#include "srm/srm.h"

#include <algorithm>

namespace grid3::srm {

std::optional<ReservationId> StorageResourceManager::reserve(
    const std::string& vo, Bytes size, SpaceType type, Time now,
    Time lifetime) {
  if (!up_) return std::nullopt;
  // The whole reservation is claimed from the volume up front; that is
  // the SRM guarantee (space is there when the transfer lands).
  if (!volume_.allocate(size)) return std::nullopt;
  const ReservationId id = next_reservation_++;
  reservations_.emplace(
      id, Reservation{id, vo, size, type, now, lifetime, Bytes::zero()});
  return id;
}

bool StorageResourceManager::release(ReservationId id) {
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return false;
  volume_.release(it->second.size);
  // Drop pins living inside this reservation.
  for (auto pit = pins_.begin(); pit != pins_.end();) {
    if (pit->second.reservation == id) {
      pit = pins_.erase(pit);
    } else {
      ++pit;
    }
  }
  reservations_.erase(it);
  return true;
}

std::optional<PinId> StorageResourceManager::put(ReservationId id,
                                                 const std::string& lfn,
                                                 Bytes size, Time now,
                                                 Time pin_lifetime) {
  if (!up_) return std::nullopt;
  auto it = reservations_.find(id);
  if (it == reservations_.end()) return std::nullopt;
  Reservation& r = it->second;
  if (r.used + size > r.size) return std::nullopt;  // reservation overflow
  r.used += size;
  const PinId pid = next_pin_++;
  pins_.emplace(pid, PinnedFile{pid, lfn, size, now + pin_lifetime, id});
  return pid;
}

bool StorageResourceManager::extend_pin(PinId id, Time until) {
  auto it = pins_.find(id);
  if (it == pins_.end()) return false;
  it->second.pinned_until = std::max(it->second.pinned_until, until);
  return true;
}

bool StorageResourceManager::unpin(PinId id) { return pins_.erase(id) > 0; }

Bytes StorageResourceManager::sweep(Time now) {
  Bytes reclaimed;
  // Expired pins free their bytes back into the reservation.
  for (auto it = pins_.begin(); it != pins_.end();) {
    if (it->second.pinned_until <= now) {
      auto rit = reservations_.find(it->second.reservation);
      if (rit != reservations_.end()) {
        rit->second.used =
            std::max(Bytes::zero(), rit->second.used - it->second.size);
      }
      it = pins_.erase(it);
    } else {
      ++it;
    }
  }
  // Expired volatile reservations return space to the volume (durable
  // and permanent reservations survive sweeps).
  for (auto it = reservations_.begin(); it != reservations_.end();) {
    const Reservation& r = it->second;
    const bool expired = r.type == SpaceType::kVolatile &&
                         now - r.created >= r.lifetime;
    bool has_pins = false;
    if (expired) {
      for (const auto& [pid, pin] : pins_) {
        if (pin.reservation == r.id && pin.pinned_until > now) {
          has_pins = true;
          break;
        }
      }
    }
    if (expired && !has_pins) {
      volume_.release(r.size);
      reclaimed += r.size;
      it = reservations_.erase(it);
    } else {
      ++it;
    }
  }
  return reclaimed;
}

Bytes StorageResourceManager::reserved_total() const {
  Bytes total;
  for (const auto& [id, r] : reservations_) total += r.size;
  return total;
}

}  // namespace grid3::srm
