// dCache-style disk pool manager (paper section 2: "Additional services
// such as ... dCache can be provided by individual VOs if desired").
//
// A storage element head node in front of multiple disk pools: writes
// are placed by a cost function (most free space wins), reads are served
// from any pool holding the file, hot files are replicated onto
// additional pools so read load spreads, and pools can be drained for
// maintenance with their files migrated away.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "srm/disk.h"
#include "util/units.h"

namespace grid3::srm {

class DcachePoolManager {
 public:
  explicit DcachePoolManager(std::string name) : name_{std::move(name)} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Add a pool; returns its index.
  std::size_t add_pool(const std::string& pool_name, Bytes capacity);
  [[nodiscard]] std::size_t pool_count() const { return pools_.size(); }
  [[nodiscard]] const DiskVolume& pool(std::size_t i) const {
    return *pools_[i].volume;
  }

  /// Write placement: the enabled pool with the most free space that fits
  /// the file.  Returns the pool index, or nullopt when nothing fits.
  std::optional<std::size_t> write(const std::string& pnfsid, Bytes size);

  /// Read: records a hit on the least-loaded replica's pool; nullopt when
  /// the file is unknown.  `reads` drive the hot-file replication below.
  std::optional<std::size_t> read(const std::string& pnfsid);

  /// Replicate files read more than `threshold` times since their last
  /// replication onto one additional pool each (p2p copy).  Returns the
  /// number of new replicas made.
  std::size_t replicate_hot(std::uint64_t threshold);

  /// Remove a file entirely (all replicas).
  bool remove(const std::string& pnfsid);

  /// Drain a pool: stop placing new files there and migrate its files to
  /// other pools.  Files that fit nowhere else stay (drain is best
  /// effort, as in dCache).  Returns files migrated.
  std::size_t drain_pool(std::size_t index);
  void enable_pool(std::size_t index);

  [[nodiscard]] bool has(const std::string& pnfsid) const;
  [[nodiscard]] std::size_t replica_count(const std::string& pnfsid) const;
  [[nodiscard]] Bytes total_free() const;
  [[nodiscard]] std::uint64_t reads_of(const std::string& pnfsid) const;

 private:
  struct Pool {
    std::string name;
    std::unique_ptr<DiskVolume> volume;
    bool enabled = true;
  };
  struct Entry {
    Bytes size;
    std::vector<std::size_t> pools;  ///< replica locations
    std::uint64_t reads = 0;         ///< since last replication
  };

  [[nodiscard]] std::optional<std::size_t> best_pool(
      Bytes size, const std::vector<std::size_t>& exclude) const;

  std::string name_;
  std::vector<Pool> pools_;
  std::map<std::string, Entry> files_;
};

}  // namespace grid3::srm
