// Site disk volumes.
//
// "more frequently a disk would fill up ... and all jobs submitted to a
// site would die" (section 6.2).  Disk exhaustion is the single biggest
// site-problem failure class in the paper, so space accounting is
// explicit: every stage-in, working directory, and output allocation
// draws from a finite volume.
#pragma once

#include <cstdint>
#include <string>

#include "util/units.h"

namespace grid3::srm {

class DiskVolume {
 public:
  DiskVolume(std::string name, Bytes capacity)
      : name_{std::move(name)}, capacity_{capacity} {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes free() const { return capacity_ - used_; }
  [[nodiscard]] double fill_fraction() const {
    return capacity_.count() > 0
               ? static_cast<double>(used_.count()) /
                     static_cast<double>(capacity_.count())
               : 1.0;
  }

  /// Try to allocate; returns false (no change) when space is short.
  [[nodiscard]] bool allocate(Bytes size);
  /// Release previously allocated space (clamped at zero).
  void release(Bytes size);

  /// Fill the volume with unmanaged data (failure injection: a local user
  /// or runaway log eats the disk).
  void consume_unmanaged(Bytes size);
  /// Free unmanaged data (admin cleanup).
  void cleanup(Bytes size) { release(size); }

  /// Lifetime allocation counters for accounting.
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  /// Cumulative bytes released over the volume's lifetime; the site
  /// monitor differentiates this into the published drain rate.
  [[nodiscard]] Bytes released_total() const { return released_total_; }

 private:
  std::string name_;
  Bytes capacity_;
  Bytes used_;
  Bytes released_total_;
  std::uint64_t allocations_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace grid3::srm
