// Storage Resource Manager.
//
// The paper (section 6.2): "storage reservation (e.g., as provided by
// SRM) would have prevented various storage-related service failures."
// Grid3's base data model was bare GridFTP + RLS; SRM was an optional
// per-VO addition.  This module implements the reservation/pinning
// subset relevant to that claim so the ablation bench can compare a
// grid with and without managed storage.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "srm/disk.h"
#include "util/units.h"

namespace grid3::srm {

using ReservationId = std::uint64_t;
using PinId = std::uint64_t;

enum class SpaceType { kVolatile, kDurable, kPermanent };

struct Reservation {
  ReservationId id = 0;
  std::string owner_vo;
  Bytes size;
  SpaceType type = SpaceType::kVolatile;
  Time created;
  Time lifetime;  ///< volatile space expires after this
  Bytes used;     ///< files written into the reservation
};

struct PinnedFile {
  PinId id = 0;
  std::string lfn;
  Bytes size;
  Time pinned_until;
  ReservationId reservation = 0;
};

/// SRM instance managing one disk volume (a dCache-style SE head node).
class StorageResourceManager {
 public:
  StorageResourceManager(std::string name, DiskVolume& volume)
      : name_{std::move(name)}, volume_{volume} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Reserve space ahead of transfers.  Fails when the volume cannot
  /// cover the sum of all live reservations -- this is precisely the
  /// guard bare GridFTP lacked.
  [[nodiscard]] std::optional<ReservationId> reserve(
      const std::string& vo, Bytes size, SpaceType type, Time now,
      Time lifetime = Time::days(7));

  /// Release a reservation and its unpinned contents.
  bool release(ReservationId id);

  /// Write a file into a reservation; fails when the reservation would
  /// overflow.  Returns a pin that protects the file from cleanup.
  [[nodiscard]] std::optional<PinId> put(ReservationId id,
                                         const std::string& lfn, Bytes size,
                                         Time now,
                                         Time pin_lifetime = Time::days(2));

  /// Extend a pin (a consumer still reading).
  bool extend_pin(PinId id, Time until);
  bool unpin(PinId id);

  /// Drop expired volatile reservations and expired pins, reclaiming
  /// space.  Returns bytes reclaimed.  Drive this periodically.
  Bytes sweep(Time now);

  [[nodiscard]] Bytes reserved_total() const;
  [[nodiscard]] std::size_t live_reservations() const {
    return reservations_.size();
  }
  [[nodiscard]] std::size_t pinned_files() const { return pins_.size(); }
  [[nodiscard]] const DiskVolume& volume() const { return volume_; }

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

 private:
  std::string name_;
  DiskVolume& volume_;
  bool up_ = true;
  ReservationId next_reservation_ = 1;
  PinId next_pin_ = 1;
  std::map<ReservationId, Reservation> reservations_;
  std::map<PinId, PinnedFile> pins_;
};

}  // namespace grid3::srm
