#include "srm/disk.h"

#include <algorithm>

namespace grid3::srm {

bool DiskVolume::allocate(Bytes size) {
  if (size > free()) {
    ++failures_;
    return false;
  }
  used_ += size;
  ++allocations_;
  return true;
}

void DiskVolume::release(Bytes size) {
  const Bytes freed = std::min(used_, size);
  released_total_ += freed;
  used_ = std::max(Bytes::zero(), used_ - size);
}

void DiskVolume::consume_unmanaged(Bytes size) {
  used_ = std::min(capacity_, used_ + size);
}

}  // namespace grid3::srm
