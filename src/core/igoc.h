// The iVDGL Grid Operations Center (paper sections 5, 5.4).
//
// "The iGOC hosted centralized services, including the Pacman cache, the
// top-level MDS index server, the Site Status Catalog, the MonALISA
// central repositories, and web services for Ganglia.  A simple trouble
// ticket system was used intermittently during the project."
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mds/giis.h"
#include "monitoring/acdc.h"
#include "monitoring/bus.h"
#include "monitoring/ganglia.h"
#include "monitoring/monalisa.h"
#include "monitoring/site_catalog.h"
#include "pacman/package.h"
#include "util/units.h"

namespace grid3::core {

/// Trouble tickets: opened on operational incidents, closed on repair.
struct TroubleTicket {
  std::uint64_t id = 0;
  std::string site;
  std::string issue;
  Time opened;
  std::optional<Time> closed;
  [[nodiscard]] bool open() const { return !closed.has_value(); }
};

class TroubleTicketSystem {
 public:
  /// Returns the ticket id, or 0 while the queue is down (the incident
  /// goes unrecorded; close(0) is a safe no-op, so callers can hold the
  /// returned id blindly).
  std::uint64_t open(const std::string& site, const std::string& issue,
                     Time now);
  bool close(std::uint64_t id, Time now);

  /// "Used intermittently during the project": the queue itself goes
  /// down.  While down, open() drops the ticket (counted) -- operators
  /// flew blind, which is exactly the degradation the paper reports.
  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }
  /// Tickets dropped while the queue was down.
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] std::size_t total() const { return tickets_.size(); }
  [[nodiscard]] const std::vector<TroubleTicket>& tickets() const {
    return tickets_;
  }
  /// Mean time to resolution over closed tickets.
  [[nodiscard]] Time mean_resolution() const;

 private:
  std::vector<TroubleTicket> tickets_;
  std::uint64_t next_id_ = 1;
  bool up_ = true;
  std::size_t dropped_ = 0;
};

/// Central services bundle.  Owned by the Grid3 fabric; sites and VO
/// services register into it.
class Igoc {
 public:
  Igoc()
      : top_giis_{"igoc-top-giis", Time::minutes(10)},
        gmetad_{bus_},
        ml_repository_{bus_} {}

  [[nodiscard]] monitoring::MetricBus& bus() { return bus_; }
  [[nodiscard]] const monitoring::MetricBus& bus() const { return bus_; }
  [[nodiscard]] mds::Giis& top_giis() { return top_giis_; }
  [[nodiscard]] const mds::Giis& top_giis() const { return top_giis_; }
  [[nodiscard]] pacman::PackageCache& pacman_cache() { return pacman_cache_; }
  [[nodiscard]] const pacman::PackageCache& pacman_cache() const {
    return pacman_cache_;
  }
  [[nodiscard]] monitoring::SiteStatusCatalog& site_catalog() {
    return site_catalog_;
  }
  [[nodiscard]] monitoring::GangliaGmetad& gmetad() { return gmetad_; }
  [[nodiscard]] monitoring::MonalisaRepository& ml_repository() {
    return ml_repository_;
  }
  [[nodiscard]] monitoring::JobDatabase& job_db() { return job_db_; }
  [[nodiscard]] const monitoring::JobDatabase& job_db() const {
    return job_db_;
  }
  [[nodiscard]] TroubleTicketSystem& tickets() { return tickets_; }
  [[nodiscard]] const TroubleTicketSystem& tickets() const {
    return tickets_;
  }

 private:
  monitoring::MetricBus bus_;
  mds::Giis top_giis_;
  pacman::PackageCache pacman_cache_;
  monitoring::SiteStatusCatalog site_catalog_;
  monitoring::GangliaGmetad gmetad_;
  monitoring::MonalisaRepository ml_repository_;
  monitoring::JobDatabase job_db_;
  TroubleTicketSystem tickets_;
};

}  // namespace grid3::core
