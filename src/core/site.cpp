#include "core/site.h"

#include <algorithm>

#include "mds/schema.h"
#include "pacman/vdt.h"

namespace grid3::core {

const char* to_string(LrmsType t) {
  switch (t) {
    case LrmsType::kCondor: return "condor";
    case LrmsType::kPbs: return "pbs";
    case LrmsType::kLsf: return "lsf";
  }
  return "?";
}

namespace {

std::unique_ptr<batch::BatchScheduler> make_scheduler(sim::Simulation& sim,
                                                      const SiteConfig& cfg) {
  batch::SchedulerConfig sc;
  sc.site_name = cfg.name;
  sc.slots = cfg.cpus;
  sc.max_walltime = cfg.policy.max_walltime;
  sc.vo_shares = cfg.policy.vo_shares;
  sc.closed_shares = cfg.policy.closed_shares;
  switch (cfg.lrms) {
    case LrmsType::kCondor:
      return std::make_unique<batch::CondorScheduler>(sim, sc);
    case LrmsType::kPbs:
      return std::make_unique<batch::PbsScheduler>(sim, sc);
    case LrmsType::kLsf:
      return std::make_unique<batch::LsfScheduler>(sim, sc);
  }
  return nullptr;
}

}  // namespace

Site::Site(sim::Simulation& sim, net::Network& network,
           monitoring::MetricBus& bus, const vo::CertificateAuthority& ca,
           gridftp::GridFtpClient& ftp_client, SiteConfig cfg, util::Rng rng)
    : sim_{sim},
      net_{network},
      bus_{bus},
      cfg_{std::move(cfg)},
      rng_{rng},
      node_{network.add_node({cfg_.name, cfg_.wan, cfg_.wan,
                              cfg_.policy.outbound})},
      disk_{cfg_.name + ":/data", cfg_.disk},
      ftp_server_{cfg_.name, node_},
      scheduler_{make_scheduler(sim, cfg_)},
      gris_{cfg_.name},
      gmond_{cfg_.name, bus,
             [this] {
               monitoring::HostMetrics m;
               m.cpus_total = scheduler_->total_slots();
               m.cpus_busy = scheduler_->busy_slots();
               m.load_one =
                   gatekeeper_ ? gatekeeper_->one_minute_load() : 0.0;
               m.disk_free_gb = disk_.free().to_gb();
               m.net_in_mbps = net_.rate_in(node_).to_mbps();
               m.net_out_mbps = net_.rate_out(node_).to_mbps();
               return m;
             }},
      ml_agent_{cfg_.name, bus} {
  gram::GatekeeperConfig gkc;
  gkc.site = cfg_.name;
  gatekeeper_ = std::make_unique<gram::Gatekeeper>(
      sim_, gkc, *scheduler_, gridmap_, ca, ftp_client, ftp_server_, disk_);
  if (cfg_.deploy_srm) {
    srm_ = std::make_unique<srm::StorageResourceManager>(cfg_.name + "-se",
                                                         disk_);
  }
}

Site::~Site() { stop_services(); }

pacman::CertificationResult Site::install(const pacman::PackageCache& cache,
                                          const std::string& root_package) {
  pacman::SiteInstaller installer{cache};
  // Admin care varies: some installs are meticulous, others rushed.
  pacman::InstallOptions opts;
  opts.misconfig_scale = rng_.uniform(0.5, 3.0);
  install_report_ = installer.install(root_package, rng_, opts);
  auto cert = pacman::certify_site(install_report_, rng_);
  if (install_report_.success && cert.certified) {
    installed_ = true;
    publish_static();
    // Latent (undetected) misconfigurations degrade job survival at this
    // site until an admin eventually notices and reinstalls.
    const auto defects =
        static_cast<double>(install_report_.latent_defects.size());
    gatekeeper_->set_environment_error_rate(0.08 * defects);
    gatekeeper_->set_submission_flake_rate(0.08 + 0.05 * defects);
  }
  return cert;
}

bool Site::install_application(const pacman::PackageCache& cache,
                               const std::string& app_name) {
  const pacman::Package* pkg = cache.find("app-" + app_name);
  if (pkg == nullptr || !installed_) return false;
  pacman::SiteInstaller installer{cache};
  // Application admins re-run failed installs (the automated user-level
  // installation of section 6.1 retried until the smoke test passed).
  for (int attempt = 0; attempt < 4; ++attempt) {
    if (installer.install(pkg->name, rng_).success) {
      gris_.publish(mds::app_attribute(app_name), pkg->version, sim_.now());
      return true;
    }
  }
  return false;
}

void Site::support_vo(const std::string& vo_name) {
  // Group-account naming convention (section 5.3): e.g. "usatlas1".
  gridmap_.support_vo(vo_name, {vo_name + "1", vo_name});
}

void Site::refresh_gridmap(
    const std::vector<const vo::VomsServer*>& servers) {
  gridmap_.regenerate(servers, sim_.now());
}

void Site::publish_static() {
  const Time now = sim_.now();
  gris_.publish(mds::glue::kSiteName, cfg_.name, now);
  gris_.publish(mds::glue::kTotalCpus,
                static_cast<std::int64_t>(cfg_.cpus), now);
  gris_.publish(mds::glue::kLrmsType, std::string{to_string(cfg_.lrms)}, now);
  gris_.publish(mds::glue::kMaxWallClockMinutes,
                static_cast<std::int64_t>(cfg_.policy.max_walltime.to_minutes()),
                now);
  gris_.publish(mds::grid3ext::kAppDir, std::string{"/grid3/app"}, now);
  gris_.publish(mds::grid3ext::kTmpDir, std::string{"/grid3/tmp"}, now);
  gris_.publish(mds::grid3ext::kDataDir, std::string{"/grid3/data"}, now);
  gris_.publish(mds::grid3ext::kSiteOwnerVo, cfg_.owner_vo, now);
  gris_.publish(mds::grid3ext::kOutboundConnectivity, cfg_.policy.outbound,
                now);
  pacman::SiteInstaller::publish(install_report_, pacman::kVdtVersion, gris_,
                                 now);
  publish_dynamic();
}

void Site::publish_dynamic() {
  const Time now = sim_.now();
  gris_.publish(mds::glue::kTotalCpus,
                static_cast<std::int64_t>(scheduler_->total_slots()), now);
  gris_.publish(mds::glue::kFreeCpus,
                static_cast<std::int64_t>(scheduler_->free_slots()), now);
  gris_.publish(mds::glue::kRunningJobs,
                static_cast<std::int64_t>(scheduler_->busy_slots()), now);
  gris_.publish(mds::glue::kWaitingJobs,
                static_cast<std::int64_t>(scheduler_->queued_count()), now);
  gris_.publish(mds::glue::kSeAvailableGb, disk_.free().to_gb(), now);
  gris_.publish(mds::glue::kSeTotalGb, disk_.capacity().to_gb(), now);
  // SE drain rate: GB released (tape migration, cleanup) per hour since
  // the last sample.  First sample publishes 0 (no baseline interval).
  double drain_gb_per_hour = 0.0;
  if (drain_sampled_) {
    const double dt_hours = (now - last_drain_sample_).to_hours();
    if (dt_hours > 0.0) {
      drain_gb_per_hour =
          (disk_.released_total() - last_released_).to_gb() / dt_hours;
    }
  }
  gris_.publish(mds::grid3ext::kSeDrainGbPerHour, drain_gb_per_hour, now);
  last_released_ = disk_.released_total();
  last_drain_sample_ = now;
  drain_sampled_ = true;
}

void Site::start_services(Time monitor_period) {
  if (monitor_loop_) return;
  monitor_loop_ = std::make_unique<sim::PeriodicProcess>(
      sim_, monitor_period, [this] {
        gmond_.sample(sim_.now());
        publish_dynamic();
        // MonALISA VO-activity agents (section 5.2: "custom agents ...
        // collect VO-specific activity at sites such as jobs run, compute
        // element usage, and I/O").
        for (const std::string& vo_name : gridmap_.supported_vos()) {
          ml_agent_.report(
              monitoring::vo_metric(monitoring::mlmetric::kVoJobsRunning,
                                    vo_name),
              sim_.now(),
              static_cast<double>(scheduler_->running_for_vo(vo_name)));
          ml_agent_.report(
              monitoring::vo_metric(monitoring::mlmetric::kVoJobsQueued,
                                    vo_name),
              sim_.now(),
              static_cast<double>(scheduler_->queued_for_vo(vo_name)));
        }
        ml_agent_.report(monitoring::mlmetric::kGatekeeperLoad, sim_.now(),
                         gatekeeper_->one_minute_load());
        ml_agent_.report(
            monitoring::mlmetric::kIoMbps, sim_.now(),
            net_.rate_in(node_).to_mbps() + net_.rate_out(node_).to_mbps());
        return true;
      });
  monitor_loop_->start(Time::seconds(rng_.uniform(0.0, 60.0)));

  if (!cfg_.policy.dedicated && cfg_.policy.local_load > 0.0) {
    local_load_loop_ = std::make_unique<sim::PeriodicProcess>(
        sim_, Time::minutes(30), [this] {
          sample_local_load();
          return true;
        });
    local_load_loop_->start(Time::minutes(rng_.uniform(0.0, 30.0)));
  }
}

void Site::stop_services() {
  if (monitor_loop_) monitor_loop_->stop();
  if (local_load_loop_) local_load_loop_->stop();
}

void Site::sample_local_load() {
  // Keep roughly local_load * cpus slots busy with local (non-grid) work:
  // top up with short local jobs when below target.
  const int target = static_cast<int>(
      cfg_.policy.local_load *
      static_cast<double>(scheduler_->total_slots()));
  const int deficit = target - local_jobs_running_;
  for (int i = 0; i < deficit; ++i) {
    batch::JobRequest req;
    req.vo = "local";
    req.user_dn = "/O=local/CN=user";
    const Time runtime = Time::hours(rng_.exponential(2.0));
    req.requested_walltime = runtime + Time::hours(1);
    req.actual_runtime = runtime;
    req.priority = 1;  // local users outrank grid jobs on shared nodes
    ++local_jobs_running_;
    // The completion callback fires exactly once, on a terminal state.
    scheduler_->submit(req, [this](const batch::JobOutcome&) {
      --local_jobs_running_;
    });
  }
}

std::vector<monitoring::ProbeResult> Site::run_probes() const {
  // The Site Status Catalog's functional battery (section 5.2).
  std::vector<monitoring::ProbeResult> out;
  out.push_back({"installed", installed_});
  out.push_back({"gatekeeper", gatekeeper_->available()});
  out.push_back({"gridftp", ftp_server_.available()});
  out.push_back({"gris", gris_.available()});
  out.push_back({"disk-headroom", disk_.fill_fraction() < 0.98});
  return out;
}

int Site::grid_jobs_running() const {
  return scheduler_->busy_slots() - local_jobs_running_ < 0
             ? 0
             : scheduler_->busy_slots() - local_jobs_running_;
}

}  // namespace grid3::core
