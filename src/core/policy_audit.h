// Policy auditing (paper section 8, lessons learned):
//
//   "Job Execution Policies: Tools should be deployed and analyses done
//    to check that the current Grid3 job policies are being properly
//    enforced."
//   "Job Resource Requirements: Sites should publish more information
//    about job execution and resource usage policies, such as maximum
//    CPU time allowed."
//
// The auditor checks, per site: (a) that the published GLUE walltime
// limit matches the scheduler's enforced limit; (b) that closed-share
// sites only ran authorized VOs; (c) that the fair-share outcome is
// within tolerance of the configured weights; and (d) that every policy
// attribute applications rely on is actually published.
#pragma once

#include <string>
#include <vector>

#include "core/grid3.h"
#include "monitoring/acdc.h"

namespace grid3::core {

enum class AuditSeverity { kInfo, kWarning, kViolation };

[[nodiscard]] const char* to_string(AuditSeverity s);

struct AuditFinding {
  AuditSeverity severity = AuditSeverity::kInfo;
  std::string site;
  std::string check;
  std::string detail;
};

struct AuditReport {
  std::vector<AuditFinding> findings;
  std::size_t sites_audited = 0;

  [[nodiscard]] std::size_t count(AuditSeverity s) const;
  [[nodiscard]] bool clean() const {
    return count(AuditSeverity::kViolation) == 0;
  }
};

class PolicyAuditor {
 public:
  explicit PolicyAuditor(Grid3& grid) : grid_{grid} {}

  /// Run every check over all online sites; usage checks consider jobs
  /// finished in [from, to).
  [[nodiscard]] AuditReport audit(Time from, Time to) const;

  // Individual checks, exposed for targeted use and tests.
  [[nodiscard]] std::vector<AuditFinding> check_published_walltime() const;
  [[nodiscard]] std::vector<AuditFinding> check_closed_shares(
      Time from, Time to) const;
  [[nodiscard]] std::vector<AuditFinding> check_fair_share(
      Time from, Time to, double tolerance = 3.0) const;
  [[nodiscard]] std::vector<AuditFinding> check_required_attributes() const;

 private:
  Grid3& grid_;
};

}  // namespace grid3::core
