// Failure injection: the operational failure modes of sections 6.1/6.2.
//
// "Approximately 90% of failures were due to site problems: disk filling
// errors, gatekeeper overloading, or network interruptions."  "...more
// frequently a disk would fill up or a service would fail and all jobs
// submitted to a site would die."  Plus ACDC's nightly roll over of
// worker nodes killing running jobs.
//
// Each attached site gets independent Poisson processes per failure
// class; every incident opens an iGOC trouble ticket and repairs close
// it after a repair-time distribution.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/igoc.h"
#include "core/site.h"
#include "sim/simulation.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace grid3::core {

struct FailureRates {
  /// Mean time between unmanaged disk-consumption incidents.
  Time disk_fill_mtbf = Time::days(35);
  /// Fraction of the disk an incident eats.
  double disk_fill_fraction = 0.5;
  Time disk_cleanup_after = Time::hours(8);

  Time gatekeeper_crash_mtbf = Time::days(50);
  Time gatekeeper_repair_mean = Time::hours(4);

  Time network_cut_mtbf = Time::days(75);
  Time network_repair_mean = Time::hours(2);

  /// GridFTP / GRIS / SE service crash.
  Time service_crash_mtbf = Time::days(45);
  Time service_repair_mean = Time::hours(6);

  /// ACDC-style nightly worker rollover.
  bool nightly_rollover = false;
  double rollover_kill_fraction = 0.9;

  /// Scale every MTBF (1.0 = nominal; < 1 = flakier site).
  [[nodiscard]] FailureRates scaled(double reliability) const;
};

/// Kinds of incidents, for accounting.
enum class Incident {
  kDiskFill,
  kGatekeeperCrash,
  kNetworkCut,
  kServiceCrash,
  kRollover,
};

[[nodiscard]] const char* to_string(Incident i);

class FailureInjector {
 public:
  FailureInjector(sim::Simulation& sim, net::Network& network, Igoc& igoc,
                  util::Rng rng)
      : sim_{sim}, net_{network}, igoc_{igoc}, rng_{rng} {}
  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  /// Attach a site; failures start flowing immediately.
  void attach(Site& site, FailureRates rates);
  /// Stop injecting for a site (e.g. it stabilized / was withdrawn).
  void detach(const std::string& site_name);

  [[nodiscard]] std::size_t incidents(Incident kind) const;
  [[nodiscard]] std::size_t total_incidents() const;

 private:
  struct Attached {
    Site* site;
    FailureRates rates;
    std::vector<std::unique_ptr<sim::PeriodicProcess>> loops;
    bool active = true;
  };

  void arm_poisson(Attached& a, Time mtbf,
                   const std::function<void(Attached&)>& fire);
  void record(Incident kind) { ++counts_[kind]; }

  sim::Simulation& sim_;
  net::Network& net_;
  Igoc& igoc_;
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<Attached>> attached_;
  std::map<Incident, std::size_t> counts_;
};

}  // namespace grid3::core
