// Failure injection: the operational failure modes of sections 6.1/6.2.
//
// "Approximately 90% of failures were due to site problems: disk filling
// errors, gatekeeper overloading, or network interruptions."  "...more
// frequently a disk would fill up or a service would fail and all jobs
// submitted to a site would die."  Plus ACDC's nightly roll over of
// worker nodes killing running jobs.
//
// Each attached site gets independent Poisson processes per failure
// class; every incident opens an iGOC trouble ticket and repairs close
// it after a repair-time distribution.
//
// Collective services fail too (section 5/6: the index, the replica
// catalog, the monitoring collectors, even the ticket queue): attach
// them via attach_collective and per-class Poisson outage processes
// take the whole service down grid-wide.  Every collective MTBF
// defaults to Time::zero() = disabled, so existing seeds draw nothing
// extra and stay byte-identical until a scenario opts in.
//
// Scheduled downtime (the INFN-GRID-style maintenance calendar) rides
// alongside the random processes: schedule_downtime() takes absolute
// (target, start, duration) windows, consumes no RNG, and opens a
// "scheduled-maintenance" ticket per window.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/igoc.h"
#include "core/site.h"
#include "rls/rls.h"
#include "sim/simulation.h"
#include "util/distributions.h"
#include "util/rng.h"

namespace grid3::core {

struct FailureRates {
  /// Mean time between unmanaged disk-consumption incidents.
  Time disk_fill_mtbf = Time::days(35);
  /// Fraction of the disk an incident eats.
  double disk_fill_fraction = 0.5;
  Time disk_cleanup_after = Time::hours(8);

  Time gatekeeper_crash_mtbf = Time::days(50);
  Time gatekeeper_repair_mean = Time::hours(4);

  Time network_cut_mtbf = Time::days(75);
  Time network_repair_mean = Time::hours(2);

  /// GridFTP / GRIS / SE service crash.
  Time service_crash_mtbf = Time::days(45);
  Time service_repair_mean = Time::hours(6);

  /// ACDC-style nightly worker rollover.
  bool nightly_rollover = false;
  double rollover_kill_fraction = 0.9;

  /// Scale every MTBF (1.0 = nominal; < 1 = flakier site).
  [[nodiscard]] FailureRates scaled(double reliability) const;
};

/// Outage rates for one attached collective-service bundle.  A
/// Time::zero() MTBF disables that class -- no Poisson draw is made, so
/// arming a bundle with all-zero rates never perturbs existing seeds.
struct CollectiveFailureRates {
  Time giis_outage_mtbf = Time::zero();
  Time giis_repair_mean = Time::hours(2);

  Time rls_outage_mtbf = Time::zero();
  Time rls_repair_mean = Time::hours(3);

  Time monitor_outage_mtbf = Time::zero();
  Time monitor_repair_mean = Time::hours(1);

  Time ticket_queue_mtbf = Time::zero();
  Time ticket_queue_repair_mean = Time::hours(4);
};

/// The services one attach_collective call covers (null = not part of
/// this bundle; its class never fires even with a non-zero MTBF).
struct CollectiveTargets {
  mds::Giis* giis = nullptr;
  rls::ReplicaLocationService* rls = nullptr;
  monitoring::MonalisaRepository* monitor = nullptr;
  TroubleTicketSystem* tickets = nullptr;
};

/// One ops-calendar maintenance window.  `target` names an attached
/// site (gatekeeper + GRIS go down for the window) or an attached
/// collective bundle (its services go down); `start` is absolute sim
/// time.  Resolution happens at fire time, so windows may be scheduled
/// before the target is attached.  A `wan` window models WAN weather
/// instead: the site's network node drops for the window (transfers
/// fail, the gatekeeper stays reachable for accounting purposes), the
/// way announced backbone maintenance did.
struct DowntimeWindow {
  std::string target;
  Time start;
  Time duration;
  bool wan = false;
};

/// Kinds of incidents, for accounting.
enum class Incident {
  kDiskFill,
  kGatekeeperCrash,
  kNetworkCut,
  kServiceCrash,
  kRollover,
  kGiisOutage,         ///< VO GIIS / top index down grid-wide
  kRlsOutage,          ///< replica catalog endpoint + RLI down
  kMonitorOutage,      ///< MonALISA collector down
  kTicketQueueOutage,  ///< the iGOC ticket queue itself down
  kScheduledDowntime,  ///< ops-calendar maintenance window
  kWanWeather,         ///< ops-calendar WAN degradation window
};

[[nodiscard]] const char* to_string(Incident i);

class FailureInjector {
 public:
  FailureInjector(sim::Simulation& sim, net::Network& network, Igoc& igoc,
                  util::Rng rng)
      : sim_{sim}, net_{network}, igoc_{igoc}, rng_{rng} {}
  FailureInjector(const FailureInjector&) = delete;
  FailureInjector& operator=(const FailureInjector&) = delete;

  /// Attach a site; failures start flowing immediately.
  void attach(Site& site, FailureRates rates);
  /// Stop injecting for a site (e.g. it stabilized / was withdrawn).
  void detach(const std::string& site_name);

  /// Attach a collective-service bundle under `name`; outage classes
  /// with a non-zero MTBF start their Poisson processes immediately.
  /// An RLS repair also replays its registration journal.
  void attach_collective(const std::string& name, CollectiveTargets targets,
                         CollectiveFailureRates rates);
  /// Stop injecting for a collective bundle.
  void detach_collective(const std::string& name);

  /// Queue an ops-calendar maintenance window (no RNG involved).  The
  /// restore at window end is unconditional: a window overlapping a
  /// random incident's repair may bring the service back early -- real
  /// maintenance does that too.
  void schedule_downtime(DowntimeWindow w);

  [[nodiscard]] std::size_t incidents(Incident kind) const;
  [[nodiscard]] std::size_t total_incidents() const;

 private:
  struct Attached {
    Site* site;
    FailureRates rates;
    std::vector<std::unique_ptr<sim::PeriodicProcess>> loops;
    bool active = true;
  };

  struct AttachedCollective {
    CollectiveTargets targets;
    CollectiveFailureRates rates;
    bool active = true;
  };

  /// Take a downtime target (site or collective bundle) down or up.
  /// Returns false when the name resolves to nothing attached.
  bool set_target_up(const std::string& target, bool up);
  /// Take an attached site's network node down or up (WAN weather).
  bool set_site_wan_up(const std::string& target, bool up);

  void arm_poisson(Attached& a, Time mtbf,
                   const std::function<void(Attached&)>& fire);
  void record(Incident kind) { ++counts_[kind]; }

  sim::Simulation& sim_;
  net::Network& net_;
  Igoc& igoc_;
  util::Rng rng_;
  std::map<std::string, std::unique_ptr<Attached>> attached_;
  std::map<std::string, std::unique_ptr<AttachedCollective>> collectives_;
  std::map<Incident, std::size_t> counts_;
};

}  // namespace grid3::core
