#include "core/policy_audit.h"

#include <algorithm>
#include <map>

#include "mds/schema.h"
#include "util/table.h"

namespace grid3::core {

const char* to_string(AuditSeverity s) {
  switch (s) {
    case AuditSeverity::kInfo: return "info";
    case AuditSeverity::kWarning: return "warning";
    case AuditSeverity::kViolation: return "VIOLATION";
  }
  return "?";
}

std::size_t AuditReport::count(AuditSeverity s) const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const AuditFinding& f) { return f.severity == s; }));
}

AuditReport PolicyAuditor::audit(Time from, Time to) const {
  AuditReport report;
  report.sites_audited = grid_.site_count();
  for (auto&& chunk :
       {check_published_walltime(), check_required_attributes(),
        check_closed_shares(from, to), check_fair_share(from, to)}) {
    report.findings.insert(report.findings.end(), chunk.begin(),
                           chunk.end());
  }
  return report;
}

std::vector<AuditFinding> PolicyAuditor::check_published_walltime() const {
  std::vector<AuditFinding> out;
  for (const auto& site : grid_.sites()) {
    const auto published =
        site->gris().query(mds::glue::kMaxWallClockMinutes);
    if (!published.has_value()) {
      out.push_back({AuditSeverity::kWarning, site->name(),
                     "walltime-published",
                     "site does not publish GlueCEPolicyMaxWallClockTime"});
      continue;
    }
    const auto minutes = std::get<std::int64_t>(published->value);
    const auto enforced =
        static_cast<std::int64_t>(site->scheduler().max_walltime().to_minutes());
    if (minutes != enforced) {
      out.push_back(
          {AuditSeverity::kViolation, site->name(), "walltime-consistent",
           "published " + std::to_string(minutes) + " min but the " +
               site->scheduler().lrms_type() + " queue enforces " +
               std::to_string(enforced) + " min"});
    }
  }
  return out;
}

std::vector<AuditFinding> PolicyAuditor::check_closed_shares(
    Time from, Time to) const {
  std::vector<AuditFinding> out;
  const auto& db = grid_.igoc().job_db();
  for (const auto& site : grid_.sites()) {
    const auto& cfg = site->scheduler().config();
    if (!cfg.closed_shares) continue;
    std::map<std::string, std::size_t> foreign;
    for (const auto& r : db.records()) {
      if (r.site != site->name() || !r.success) continue;
      if (r.finished < from || r.finished >= to) continue;
      if (r.vo == "exerciser") continue;  // runs under iVDGL credentials
      if (!cfg.vo_shares.contains(r.vo)) ++foreign[r.vo];
    }
    for (const auto& [vo, n] : foreign) {
      out.push_back({AuditSeverity::kViolation, site->name(),
                     "closed-shares",
                     std::to_string(n) + " jobs from unauthorized VO " + vo});
    }
  }
  return out;
}

std::vector<AuditFinding> PolicyAuditor::check_fair_share(
    Time from, Time to, double tolerance) const {
  std::vector<AuditFinding> out;
  const auto& db = grid_.igoc().job_db();
  for (const auto& site : grid_.sites()) {
    const auto& shares = site->scheduler().config().vo_shares;
    if (shares.size() < 2) continue;  // nothing to compare
    // Achieved CPU-days per configured VO over the window.
    std::map<std::string, double> achieved;
    for (const auto& r : db.records()) {
      if (r.site != site->name() || !r.success) continue;
      if (r.finished < from || r.finished >= to) continue;
      if (shares.contains(r.vo)) achieved[r.vo] += r.runtime().to_days();
    }
    // Compare achieved ratios against configured ratios pairwise.
    for (auto a = shares.begin(); a != shares.end(); ++a) {
      for (auto b = std::next(a); b != shares.end(); ++b) {
        const double used_a = achieved[a->first];
        const double used_b = achieved[b->first];
        if (used_a < 1.0 || used_b < 1.0) continue;  // too little signal
        const double achieved_ratio = used_a / used_b;
        const double configured_ratio = a->second / b->second;
        const double skew = achieved_ratio / configured_ratio;
        if (skew > tolerance || skew < 1.0 / tolerance) {
          out.push_back(
              {AuditSeverity::kWarning, site->name(), "fair-share",
               a->first + ":" + b->first + " achieved " +
                   util::AsciiTable::num(achieved_ratio, 2) +
                   " vs configured " +
                   util::AsciiTable::num(configured_ratio, 2)});
        }
      }
    }
  }
  return out;
}

std::vector<AuditFinding> PolicyAuditor::check_required_attributes() const {
  // The attributes the planner and application installers rely on
  // (sections 5.1 / 6.4): missing ones silently shrink a site's workload.
  static constexpr std::string_view kRequired[] = {
      mds::glue::kTotalCpus,          mds::glue::kFreeCpus,
      mds::glue::kMaxWallClockMinutes, mds::grid3ext::kAppDir,
      mds::grid3ext::kTmpDir,          mds::grid3ext::kOutboundConnectivity,
  };
  std::vector<AuditFinding> out;
  for (const auto& site : grid_.sites()) {
    for (const auto key : kRequired) {
      if (!site->gris().query(key).has_value()) {
        out.push_back({AuditSeverity::kWarning, site->name(),
                       "attribute-published",
                       "missing " + std::string{key}});
      }
    }
  }
  return out;
}

}  // namespace grid3::core
