#include "core/igoc.h"

namespace grid3::core {

std::uint64_t TroubleTicketSystem::open(const std::string& site,
                                        const std::string& issue, Time now) {
  if (!up_) {
    ++dropped_;
    return 0;
  }
  TroubleTicket t;
  t.id = next_id_++;
  t.site = site;
  t.issue = issue;
  t.opened = now;
  tickets_.push_back(std::move(t));
  return tickets_.back().id;
}

bool TroubleTicketSystem::close(std::uint64_t id, Time now) {
  for (TroubleTicket& t : tickets_) {
    if (t.id == id && t.open()) {
      t.closed = now;
      return true;
    }
  }
  return false;
}

std::size_t TroubleTicketSystem::open_count() const {
  std::size_t n = 0;
  for (const TroubleTicket& t : tickets_) {
    if (t.open()) ++n;
  }
  return n;
}

Time TroubleTicketSystem::mean_resolution() const {
  Time total;
  std::size_t n = 0;
  for (const TroubleTicket& t : tickets_) {
    if (!t.open()) {
      total += *t.closed - t.opened;
      ++n;
    }
  }
  return n > 0 ? Time::micros(total.ticks() / static_cast<std::int64_t>(n))
               : Time::zero();
}

}  // namespace grid3::core
