// The Grid3 fabric: the paper's primary contribution assembled.
//
// Two-tier architecture (section 5): per-site grid services with
// VO-specific configuration, registered into VO-level services (VOMS,
// VO GIIS, per-VO RLS), which combine into top-level services at the
// iGOC.  The fabric also implements workflow::SiteServices so planners
// and DAGMan can resolve site names to live endpoints.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "core/failure.h"
#include "core/ids.h"
#include "core/igoc.h"
#include "core/site.h"
#include "gram/condor_g.h"
#include "gridftp/gridftp.h"
#include "gridftp/netlogger.h"
#include "health/health.h"
#include "net/network.h"
#include "rls/rls.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "vo/voms.h"
#include "workflow/dagman.h"

namespace grid3::core {

/// The six Grid3 VOs (section 5) in canonical order.
[[nodiscard]] const std::vector<std::string>& canonical_vos();

/// External (non-Grid3) data endpoints: archive/tape hosts at labs.
struct ExternalHost {
  std::string name;
  net::NodeId node;
  std::unique_ptr<gridftp::GridFtpServer> ftp;
  std::unique_ptr<srm::DiskVolume> disk;  ///< effectively unbounded tape
};

class Grid3 final : public workflow::SiteServices,
                    public broker::GatekeeperDirectory,
                    public placement::StorageDirectory {
 public:
  explicit Grid3(sim::Simulation& sim, std::uint64_t seed = 20031025);
  ~Grid3() override;

  // --- VO layer -------------------------------------------------------
  /// Create a VO: VOMS server, VO GIIS (registered with the iGOC top
  /// index), and a per-VO RLS.
  vo::VomsServer& add_vo(const std::string& name);

  /// Register a user: issues an identity certificate from the grid CA
  /// and adds the DN to the VO's VOMS server.
  vo::Certificate add_user(const std::string& vo_name,
                           const std::string& common_name,
                           vo::Role role = vo::Role::kUser);

  /// Short-lived VOMS proxy for a registered user.
  [[nodiscard]] std::optional<vo::VomsProxy> make_proxy(
      const vo::Certificate& cert, const std::string& vo_name,
      Time lifetime = Time::hours(48)) const;

  [[nodiscard]] vo::VomsServer* voms(const std::string& vo_name);
  [[nodiscard]] rls::ReplicaLocationService* rls(const std::string& vo_name);
  [[nodiscard]] mds::Giis* vo_giis(const std::string& vo_name);

  // --- site layer -----------------------------------------------------
  /// Bring a site online: construct it, run the Pacman install +
  /// certification, support every VO, generate its grid-map, register
  /// its GRIS with the owner VO's GIIS, hook it into the Site Status
  /// Catalog, start its monitoring loops, and attach failure injection.
  /// `reliability` scales failure MTBFs (higher = more stable).
  Site& add_site(SiteConfig cfg, double reliability = 1.0,
                 bool nightly_rollover = false);

  [[nodiscard]] Site* site(const std::string& name);
  [[nodiscard]] const std::vector<std::unique_ptr<Site>>& sites() const {
    return sites_;
  }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// The fabric-wide id registry: every broker and the health monitor
  /// attached here share it, so interned site ids are comparable across
  /// subsystems.
  [[nodiscard]] const std::shared_ptr<IdRegistry>& id_registry() const {
    return ids_;
  }

  /// External archive endpoint (CERN, LIGO observatories...).
  ExternalHost& add_external_host(const std::string& name,
                                  Bandwidth bw = Bandwidth::gbps(1));

  // --- central operations ---------------------------------------------
  /// Start grid-wide periodic processes: grid-map regeneration, RLS
  /// soft-state refresh, site-catalog verification sweeps.
  void start_operations(Time gridmap_period = Time::hours(6),
                        Time rls_period = Time::minutes(20),
                        Time catalog_period = Time::minutes(30));

  // --- shared services --------------------------------------------------
  [[nodiscard]] sim::Simulation& sim() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }
  [[nodiscard]] const vo::CertificateAuthority& ca() const { return ca_; }
  [[nodiscard]] Igoc& igoc() { return igoc_; }
  [[nodiscard]] const Igoc& igoc() const { return igoc_; }
  [[nodiscard]] gridftp::NetLogger& netlogger() { return netlogger_; }
  [[nodiscard]] gridftp::GridFtpClient& ftp_client() { return ftp_client_; }
  [[nodiscard]] gram::CondorG& condor_g() { return condor_g_; }
  [[nodiscard]] FailureInjector& failures() { return failures_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Arm collective-outage injection for a VO's services (its GIIS and
  /// RLS) under the bundle name "<vo>-collective".  Classes with a zero
  /// MTBF stay disabled; the default rates are all zero, so arming is
  /// inert until a scenario sets rates.
  void arm_vo_collective_failures(const std::string& vo_name,
                                  CollectiveFailureRates rates);
  /// Arm collective-outage injection for the iGOC's central services
  /// (top GIIS, MonALISA repository, ticket queue) under the bundle
  /// name "igoc-collective".
  void arm_igoc_collective_failures(CollectiveFailureRates rates);

  /// Per-VO DAGMan (bound to that VO's RLS).
  [[nodiscard]] workflow::DagMan& dagman(const std::string& vo_name);

  /// Attach a resource broker to a VO: view fed by the iGOC top GIIS and
  /// MonALISA repository, match decisions mirrored into the iGOC job
  /// database, and the VO's DAGMan switched to late binding.  `kind`
  /// must not be PolicyKind::kNone; re-attaching replaces the policy.
  broker::ResourceBroker& attach_broker(const std::string& vo_name,
                                        broker::PolicyKind kind,
                                        broker::BrokerConfig cfg = {});
  /// The VO's broker, or null when none is attached.
  [[nodiscard]] broker::ResourceBroker* broker(const std::string& vo_name);
  /// The VO's placement ledger (created by attach_broker when the config
  /// enables leases), or null.
  [[nodiscard]] placement::PlacementLedger* placement(
      const std::string& vo_name);

  /// Attach the grid-wide site-health monitor: breaker events publish on
  /// the iGOC bus and mirror into ACDC, trips open iGOC trouble tickets
  /// (re-admissions close them), probation probes run as backfill
  /// site-verify jobs under the ivdgl operations VO, and every attached
  /// broker (existing and future) excludes quarantined sites, kicks its
  /// held jobs, and returns quarantined gang leases on a trip.
  /// Idempotent: a second call returns the existing monitor.
  health::SiteHealthMonitor& attach_health(health::HealthConfig cfg = {});
  /// The grid's health monitor, or null before attach_health.
  [[nodiscard]] health::SiteHealthMonitor* health() { return health_.get(); }

  // --- workflow::SiteServices + broker::GatekeeperDirectory -------------
  /// One override serves both bases (identical signatures).
  [[nodiscard]] gram::Gatekeeper* gatekeeper(const std::string& site) override;
  /// Serves both workflow::SiteServices and placement::StorageDirectory
  /// (the ledger resolves failover-chain SEs to stage-out endpoints).
  [[nodiscard]] gridftp::GridFtpServer* ftp(const std::string& site) override;
  /// Serves both workflow::SiteServices and placement::StorageDirectory.
  [[nodiscard]] srm::DiskVolume* volume(const std::string& site) override;
  /// placement::StorageDirectory: the site's SRM head node (null for
  /// sites without a deployed SRM and for external archive hosts).
  [[nodiscard]] srm::StorageResourceManager* storage(
      const std::string& site) override;

  /// Total CPUs across online sites (milestone metric).
  [[nodiscard]] int total_cpus() const;
  /// Authorized users across all VOMS servers (milestone metric).
  [[nodiscard]] std::size_t total_users() const;

 private:
  struct VoServices {
    std::unique_ptr<vo::VomsServer> voms;
    std::unique_ptr<mds::Giis> giis;
    std::unique_ptr<rls::ReplicaLocationService> rls;
    std::unique_ptr<workflow::DagMan> dagman;
    std::unique_ptr<placement::PlacementLedger> placement;
    std::unique_ptr<broker::ResourceBroker> broker;
  };

  sim::Simulation& sim_;
  std::uint64_t seed_;
  util::Rng rng_;
  net::Network net_;
  vo::CertificateAuthority ca_;
  Igoc igoc_;
  gridftp::NetLogger netlogger_;
  gridftp::GridFtpClient ftp_client_;
  gram::CondorG condor_g_;
  FailureInjector failures_;
  std::unique_ptr<health::SiteHealthMonitor> health_;
  std::optional<vo::Certificate> probe_cert_;  ///< site-verify identity
  std::map<std::string, VoServices> vos_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::vector<std::unique_ptr<ExternalHost>> externals_;
  /// Fabric-wide interners shared with brokers and health.
  std::shared_ptr<IdRegistry> ids_ = std::make_shared<IdRegistry>();
  /// Interned site id -> Site (replaces the linear scan every
  /// gatekeeper/ftp/volume resolution used to pay).
  IdMap<SiteId, Site*> site_index_;
  /// External archive hosts, interned into the same site namespace
  /// (ftp/volume resolve either kind by name).
  IdMap<SiteId, ExternalHost*> external_index_;
  std::vector<std::unique_ptr<sim::PeriodicProcess>> operations_;
  std::uint64_t user_serial_ = 0;
};

}  // namespace grid3::core
