#include "core/metrics.h"

#include <algorithm>
#include <set>

#include "monitoring/ganglia.h"
#include "util/table.h"

namespace grid3::core {

Milestones compute_milestones(Grid3& grid, Time from, Time to) {
  Milestones m;
  const auto& db = grid.igoc().job_db();
  monitoring::MdViewer viewer{db, grid.igoc().bus()};

  m.cpus_now = grid.total_cpus();
  // Peak CPU count over the window from the Ganglia path: sites
  // introduce and withdraw nodes, so sample the grid-wide total daily
  // and take the maximum (the paper's "peak of over 2800 processors").
  {
    const auto& bus = grid.igoc().bus();
    const auto sites = bus.sites_for(monitoring::gmetric::kCpusTotal);
    double peak = static_cast<double>(m.cpus_now);
    for (Time t = from; t <= to; t += Time::days(1)) {
      double total = 0.0;
      for (const auto& site : sites) {
        total += bus.series(site, monitoring::gmetric::kCpusTotal).at(t);
      }
      peak = std::max(peak, total);
    }
    m.cpus_peak = peak;
  }
  m.users = grid.total_users();

  std::set<std::string> apps;
  std::map<std::string, std::set<std::string>> site_vos;
  for (const auto& r : db.records()) {
    if (r.finished < from || r.finished >= to) continue;
    if (!r.app.empty()) apps.insert(r.app);
    if (r.success) site_vos[r.site].insert(r.vo);
  }
  m.applications = apps.size();
  for (const auto& [site, vos] : site_vos) {
    if (vos.size() >= 2) ++m.multi_vo_sites;
  }

  // Data per day across all transfers in the window.
  Bytes moved;
  for (const auto& t : db.transfers()) {
    if (t.finished >= from && t.finished < to) moved += t.size;
  }
  const double days = (to - from).to_days();
  m.data_tb_per_day = days > 0 ? moved.to_tb() / days : 0.0;

  m.utilization = viewer.utilization_from_ganglia(from, to);
  m.peak_concurrent_jobs = viewer.peak_concurrent_jobs(from, to);

  for (const std::string& vo : db.vos()) {
    const auto f = db.failures(vo, from, to);
    if (f.total > 0) {
      m.efficiency_by_vo[vo] = 1.0 - f.failure_rate();
    }
  }

  // Operations support load: a base operator share plus time spent on
  // tickets (assume 2 staff-hours per resolved ticket, 40 h/FTE-week).
  const auto& tickets = grid.igoc().tickets().tickets();
  std::size_t window_tickets = 0;
  for (const auto& t : tickets) {
    if (t.opened >= from && t.opened < to) ++window_tickets;
  }
  const double weeks = std::max(1e-9, (to - from).to_days() / 7.0);
  m.ops_ftes = 0.5 + (static_cast<double>(window_tickets) * 2.0) /
                         (40.0 * weeks);
  return m;
}

std::vector<MilestoneTarget> Milestones::scorecard() const {
  using util::AsciiTable;
  std::vector<MilestoneTarget> out;
  out.push_back({"Number of CPUs", "400", "2163 (peak 2800+)",
                 AsciiTable::integer(cpus_now) + " (peak " +
                     AsciiTable::integer(
                         static_cast<std::int64_t>(cpus_peak)) +
                     ")",
                 cpus_now >= 400});
  out.push_back({"Number of users", "10", "102",
                 AsciiTable::integer(static_cast<std::int64_t>(users)),
                 users >= 10});
  out.push_back({"Number of applications", ">4", "10",
                 AsciiTable::integer(static_cast<std::int64_t>(applications)),
                 applications > 4});
  out.push_back({"Sites running concurrent applications", ">10", "17",
                 AsciiTable::integer(
                     static_cast<std::int64_t>(multi_vo_sites)),
                 multi_vo_sites > 10});
  out.push_back({"Data transfer per day (TB)", "2-3", "4",
                 AsciiTable::num(data_tb_per_day), data_tb_per_day >= 2.0});
  out.push_back({"Percentage of resources used", "90%", "40-70%",
                 AsciiTable::percent(utilization),
                 utilization >= 0.4});  // met at the paper's achieved band
  out.push_back({"Peak number of concurrent jobs", "1000", "1300",
                 AsciiTable::integer(
                     static_cast<std::int64_t>(peak_concurrent_jobs)),
                 peak_concurrent_jobs >= 1000});
  double eff_min = 1.0;
  double eff_max = 0.0;
  for (const auto& [vo, eff] : efficiency_by_vo) {
    eff_min = std::min(eff_min, eff);
    eff_max = std::max(eff_max, eff);
  }
  out.push_back({"Efficiency of job completion", "75%", "varies (~70-90%)",
                 efficiency_by_vo.empty()
                     ? std::string{"n/a"}
                     : AsciiTable::percent(eff_min) + " - " +
                           AsciiTable::percent(eff_max),
                 eff_max >= 0.70});
  out.push_back({"Operations support load (FTEs)", "<2", "<2 sustained",
                 AsciiTable::num(ops_ftes), ops_ftes < 2.0});
  return out;
}

}  // namespace grid3::core
