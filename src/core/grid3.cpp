#include "core/grid3.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "pacman/vdt.h"

namespace grid3::core {

const std::vector<std::string>& canonical_vos() {
  static const std::vector<std::string> kVos = {
      "usatlas", "uscms", "sdss", "ligo", "btev", "ivdgl"};
  return kVos;
}

Grid3::Grid3(sim::Simulation& sim, std::uint64_t seed)
    : sim_{sim},
      seed_{seed},
      rng_{seed},
      net_{sim},
      ca_{"DOEGrids CA"},
      netlogger_{},
      ftp_client_{sim, net_, &netlogger_},
      // Fail fast at the Condor-G layer: DAGMan owns retries, so every
      // failed jobmanager attempt is visible to ACDC accounting, as on
      // the real grid.
      condor_g_{sim, {.retry = {.base = Time::minutes(5), .max_retries = 0}}},
      failures_{sim, net_, igoc_, util::Rng{seed ^ 0xfa11u}} {
  pacman::load_vdt_bundle(igoc_.pacman_cache());
}

Grid3::~Grid3() {
  for (auto& op : operations_) op->stop();
}

vo::VomsServer& Grid3::add_vo(const std::string& name) {
  auto it = vos_.find(name);
  if (it != vos_.end()) return *it->second.voms;
  VoServices svc;
  svc.voms = std::make_unique<vo::VomsServer>(name);
  svc.giis = std::make_unique<mds::Giis>(name + "-giis", Time::minutes(10));
  svc.rls = std::make_unique<rls::ReplicaLocationService>(name);
  svc.dagman = std::make_unique<workflow::DagMan>(
      sim_, condor_g_, ftp_client_, svc.rls.get(), *this);
  if (health_) svc.dagman->set_health(health_.get());
  igoc_.top_giis().register_child(svc.giis.get());
  return *vos_.emplace(name, std::move(svc)).first->second.voms;
}

vo::Certificate Grid3::add_user(const std::string& vo_name,
                                const std::string& common_name,
                                vo::Role role) {
  vo::VomsServer& server = add_vo(vo_name);
  const std::string dn =
      "/DC=org/DC=doegrids/OU=People/CN=" + common_name + " " +
      std::to_string(++user_serial_);
  auto cert = ca_.issue(dn, sim_.now(), Time::days(365));
  server.add_member(dn, role);
  return cert;
}

std::optional<vo::VomsProxy> Grid3::make_proxy(const vo::Certificate& cert,
                                               const std::string& vo_name,
                                               Time lifetime) const {
  auto it = vos_.find(vo_name);
  if (it == vos_.end()) return std::nullopt;
  return vo::issue_proxy(*it->second.voms, cert, sim_.now(), lifetime);
}

vo::VomsServer* Grid3::voms(const std::string& vo_name) {
  auto it = vos_.find(vo_name);
  return it == vos_.end() ? nullptr : it->second.voms.get();
}

rls::ReplicaLocationService* Grid3::rls(const std::string& vo_name) {
  auto it = vos_.find(vo_name);
  return it == vos_.end() ? nullptr : it->second.rls.get();
}

mds::Giis* Grid3::vo_giis(const std::string& vo_name) {
  auto it = vos_.find(vo_name);
  return it == vos_.end() ? nullptr : it->second.giis.get();
}

workflow::DagMan& Grid3::dagman(const std::string& vo_name) {
  add_vo(vo_name);
  return *vos_.at(vo_name).dagman;
}

void Grid3::arm_vo_collective_failures(const std::string& vo_name,
                                       CollectiveFailureRates rates) {
  add_vo(vo_name);
  VoServices& svc = vos_.at(vo_name);
  CollectiveTargets targets;
  targets.giis = svc.giis.get();
  targets.rls = svc.rls.get();
  failures_.attach_collective(vo_name + "-collective", targets, rates);
}

void Grid3::arm_igoc_collective_failures(CollectiveFailureRates rates) {
  CollectiveTargets targets;
  targets.giis = &igoc_.top_giis();
  targets.monitor = &igoc_.ml_repository();
  targets.tickets = &igoc_.tickets();
  failures_.attach_collective("igoc-collective", targets, rates);
}

broker::ResourceBroker& Grid3::attach_broker(const std::string& vo_name,
                                             broker::PolicyKind kind,
                                             broker::BrokerConfig cfg) {
  add_vo(vo_name);
  VoServices& svc = vos_.at(vo_name);
  auto policy = broker::make_policy(kind);
  assert(policy != nullptr && "attach_broker needs a real policy");
  // Mix the fabric seed and the VO name in so two VOs' brokers draw
  // independent streams, yet a fixed fabric seed reproduces the same
  // match log byte-for-byte.
  cfg.rng_seed ^= seed_ * 0x9e3779b97f4a7c15ull;
  cfg.rng_seed ^= std::hash<std::string>{}(vo_name);
  svc.broker = std::make_unique<broker::ResourceBroker>(
      sim_, cfg, std::move(policy), igoc_.top_giis(), &igoc_.ml_repository(),
      *this, condor_g_, &igoc_.job_db());
  // Every VO broker shares the fabric's interners, so site ids agree
  // across brokers, health, and the fabric's own site index.
  svc.broker->set_id_registry(ids_);
  svc.broker->set_metric_bus(&igoc_.bus(), vo_name);
  if (cfg.placement_leases) {
    svc.placement = std::make_unique<placement::PlacementLedger>(
        vo_name, *this, &igoc_.bus(), &igoc_.job_db());
    // Chain acquires skip quarantined SEs (one fallthrough hop each).
    // The filter dereferences the monitor at call time, so it is safe
    // to wire before attach_health and picks the monitor up when it
    // arrives.
    svc.placement->set_admissibility([this](const std::string& site) {
      return health_ == nullptr || !health_->quarantined(site);
    });
    svc.broker->set_placement(svc.placement.get());
  } else {
    svc.placement.reset();
  }
  svc.dagman->set_broker(svc.broker.get());
  if (health_) svc.broker->set_health(health_.get());
  return *svc.broker;
}

health::SiteHealthMonitor& Grid3::attach_health(health::HealthConfig cfg) {
  if (health_) return *health_;
  health_ = std::make_unique<health::SiteHealthMonitor>(sim_, cfg);
  health_->set_id_registry(ids_);
  health_->set_metric_bus(&igoc_.bus());
  health_->set_accounting(&igoc_.job_db());
  health_->set_tickets(
      [this](const std::string& site, const std::string& issue, Time now) {
        return igoc_.tickets().open(site, issue, now);
      },
      [this](std::uint64_t id, Time now) { igoc_.tickets().close(id, now); });

  // Probation probes run as site-verify jobs under the iGOC's operations
  // identity (ivdgl VO), submitted straight to the gatekeeper so they
  // bypass the very quarantine they are re-certifying.  Backfill
  // priority: probes never displace production work.
  probe_cert_ = add_user("ivdgl", "igoc-site-verify");
  std::vector<const vo::VomsServer*> servers;
  for (const auto& [name, svc] : vos_) servers.push_back(svc.voms.get());
  for (auto& s : sites_) {
    s->support_vo("ivdgl");
    s->refresh_gridmap(servers);
  }
  health_->set_probe_submitter(
      [this](const std::string& site, std::function<void(bool)> done) {
        gram::Gatekeeper* gk = gatekeeper(site);
        auto proxy = make_proxy(*probe_cert_, "ivdgl", Time::hours(2));
        if (gk == nullptr || !proxy.has_value()) {
          done(false);
          return;
        }
        gram::GramJob job;
        job.proxy = *proxy;
        job.request.vo = "ivdgl";
        job.request.user_dn = probe_cert_->subject_dn;
        job.request.requested_walltime = Time::hours(1);
        job.request.actual_runtime = Time::minutes(15);
        job.request.priority = -10;
        condor_g_.submit_to(
            *gk, std::move(job),
            [done = std::move(done)](const gram::GramResult& r) {
              done(r.ok());
            });
      });

  // A trip fans out to every VO broker: drop the site from candidate
  // sets, re-match held jobs, return gang leases parked there.
  health_->on_trip([this](const std::string& site) {
    for (auto& [name, svc] : vos_) {
      if (svc.broker) svc.broker->on_site_quarantined(site);
    }
  });
  // Re-admission fans out too: the returned site's cached rank terms
  // recompute on the next match instead of serving pre-trip scores.
  health_->on_readmit([this](const std::string& site) {
    for (auto& [name, svc] : vos_) {
      if (svc.broker) svc.broker->on_site_readmitted(site);
    }
  });

  for (auto& [name, svc] : vos_) {
    if (svc.broker) svc.broker->set_health(health_.get());
    svc.dagman->set_health(health_.get());
  }
  return *health_;
}

broker::ResourceBroker* Grid3::broker(const std::string& vo_name) {
  auto it = vos_.find(vo_name);
  return it == vos_.end() ? nullptr : it->second.broker.get();
}

placement::PlacementLedger* Grid3::placement(const std::string& vo_name) {
  auto it = vos_.find(vo_name);
  return it == vos_.end() ? nullptr : it->second.placement.get();
}

Site& Grid3::add_site(SiteConfig cfg, double reliability,
                      bool nightly_rollover) {
  auto site = std::make_unique<Site>(sim_, net_, igoc_.bus(), ca_,
                                     ftp_client_, cfg, rng_.fork());
  Site* sp = site.get();
  sites_.push_back(std::move(site));
  site_index_.at_or_grow(ids_->sites.intern(sp->name())) = sp;

  // Installation + certification via the iGOC Pacman cache.  A failed
  // certification means the admin reinstalls, as the documented Grid3
  // procedure required, until the site passes.
  for (int attempt = 0; attempt < 8 && !sp->installed(); ++attempt) {
    sp->install(igoc_.pacman_cache(), "grid3-vdt");
  }

  // Support every configured VO and generate the initial grid-map.
  std::vector<const vo::VomsServer*> servers;
  for (const auto& [name, svc] : vos_) {
    sp->support_vo(name);
    servers.push_back(svc.voms.get());
  }
  sp->refresh_gridmap(servers);

  // Register the GRIS with the owner VO's index (or the iGOC index when
  // the owner VO is unknown).
  if (mds::Giis* giis = vo_giis(cfg.owner_vo)) {
    giis->register_gris(&sp->gris());
  } else {
    igoc_.top_giis().register_gris(&sp->gris());
  }

  // Site Status Catalog registration.
  igoc_.site_catalog().register_site(
      sp->name(), cfg.location,
      [sp] { return sp->run_probes(); });

  sp->start_services();

  FailureRates rates;
  rates.nightly_rollover = nightly_rollover;
  failures_.attach(*sp, rates.scaled(reliability));
  return *sp;
}

Site* Grid3::site(const std::string& name) {
  return site_index_.get(ids_->sites.find(name), nullptr);
}

ExternalHost& Grid3::add_external_host(const std::string& name,
                                       Bandwidth bw) {
  auto host = std::make_unique<ExternalHost>();
  host->name = name;
  host->node = net_.add_node({name, bw, bw, true});
  host->ftp = std::make_unique<gridftp::GridFtpServer>(name, host->node);
  host->disk =
      std::make_unique<srm::DiskVolume>(name + ":/tape", Bytes::tb(100000));
  externals_.push_back(std::move(host));
  external_index_.at_or_grow(ids_->sites.intern(name)) =
      externals_.back().get();
  return *externals_.back();
}

void Grid3::start_operations(Time gridmap_period, Time rls_period,
                             Time catalog_period) {
  // Grid-map regeneration at every site (edg-mkgridmap cron).
  auto gridmap_loop = std::make_unique<sim::PeriodicProcess>(
      sim_, gridmap_period, [this] {
        std::vector<const vo::VomsServer*> servers;
        for (const auto& [name, svc] : vos_) servers.push_back(svc.voms.get());
        for (auto& s : sites_) s->refresh_gridmap(servers);
        return true;
      });
  gridmap_loop->start(Time::minutes(1));
  operations_.push_back(std::move(gridmap_loop));

  // RLS soft-state refresh.
  auto rls_loop =
      std::make_unique<sim::PeriodicProcess>(sim_, rls_period, [this] {
        for (auto& [name, svc] : vos_) svc.rls->refresh_all(sim_.now());
        return true;
      });
  rls_loop->start(Time::minutes(2));
  operations_.push_back(std::move(rls_loop));

  // Site Status Catalog verification sweep.
  auto catalog_loop = std::make_unique<sim::PeriodicProcess>(
      sim_, catalog_period, [this] {
        igoc_.site_catalog().run_sweep(sim_.now());
        return true;
      });
  catalog_loop->start(Time::minutes(3));
  operations_.push_back(std::move(catalog_loop));
}

gram::Gatekeeper* Grid3::gatekeeper(const std::string& site_name) {
  Site* s = site(site_name);
  return s == nullptr ? nullptr : &s->gatekeeper();
}

gridftp::GridFtpServer* Grid3::ftp(const std::string& site_name) {
  const SiteId id = ids_->sites.find(site_name);
  if (Site* s = site_index_.get(id, nullptr)) return &s->ftp();
  if (ExternalHost* host = external_index_.get(id, nullptr)) {
    return host->ftp.get();
  }
  return nullptr;
}

srm::StorageResourceManager* Grid3::storage(const std::string& site_name) {
  Site* s = site(site_name);
  return s == nullptr ? nullptr : s->storage_element();
}

srm::DiskVolume* Grid3::volume(const std::string& site_name) {
  const SiteId id = ids_->sites.find(site_name);
  if (Site* s = site_index_.get(id, nullptr)) return &s->disk();
  if (ExternalHost* host = external_index_.get(id, nullptr)) {
    return host->disk.get();
  }
  return nullptr;
}

int Grid3::total_cpus() const {
  int n = 0;
  for (const auto& s : sites_) n += s->cpus();
  return n;
}

std::size_t Grid3::total_users() const {
  std::size_t n = 0;
  for (const auto& [name, svc] : vos_) n += svc.voms->member_count();
  return n;
}

}  // namespace grid3::core
