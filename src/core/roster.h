// The Grid3 site roster and fabric bootstrap.
//
// 27 sites shaped after the deployment the paper describes: two Tier1
// centers (BNL for ATLAS, FNAL for CMS), a band of university Tier2s,
// and many small shared clusters.  More than 60% of CPUs come from
// non-dedicated facilities (section 7), scheduler types span Condor,
// OpenPBS and LSF (section 5), and walltime limits vary so that the long
// OSCAR jobs of section 6.2 cannot run everywhere.
#pragma once

#include <string>
#include <vector>

#include "core/grid3.h"
#include "core/site.h"

namespace grid3::core {

/// The full 27-site roster.  `cpu_scale` scales every site's CPU count
/// (and disk) for fast tests; 1.0 reproduces the ~2600-CPU deployment.
[[nodiscard]] std::vector<SiteConfig> grid3_roster(double cpu_scale = 1.0);

/// Application package names for the ten Grid3 applications.
namespace app {
inline constexpr const char* kAtlasGce = "gce-atlas";
inline constexpr const char* kCmsMop = "mop-cms";
inline constexpr const char* kSdssCoadd = "sdss-coadd";
inline constexpr const char* kLigoPulsar = "ligo-pulsar";
inline constexpr const char* kBtevSim = "btev-mc";
inline constexpr const char* kSnb = "snb";
inline constexpr const char* kGadu = "gadu";
inline constexpr const char* kExerciser = "exerciser";
inline constexpr const char* kEntrada = "entrada";
inline constexpr const char* kNetloggerFtp = "netlogger-gridftp";
}  // namespace app

struct AssembleOptions {
  double cpu_scale = 1.0;
  /// Fabric replication factor: 1 = the historical 27-site roster;
  /// N > 1 appends N-1 renamed copies of every roster template
  /// ("<name>_R1", "<name>_R2", ...) -- the "Grid30" 10x-scale fabric
  /// (270 sites, ~29k CPUs at cpu_scale 1).  Application install
  /// counts scale with the replica count so per-VO site pools keep
  /// their Table 1 proportions.
  int roster_replicas = 1;
  /// Sites flakier than nominal by this reliability factor band.
  double min_reliability = 0.7;
  double max_reliability = 2.0;
  /// Register the Table 1 user population (102 authorized users).
  bool add_users = true;
  /// Install application packages on site subsets sized per Table 1.
  bool install_applications = true;
};

/// User credentials grouped by VO, as returned from assembly.
struct VoUsers {
  std::string vo;
  std::vector<vo::Certificate> users;       ///< ordinary members
  std::vector<vo::Certificate> app_admins;  ///< perform most submissions
};

struct Assembled {
  std::vector<VoUsers> users;  ///< one entry per canonical VO
  ExternalHost* cern = nullptr;
  ExternalHost* ligo_hanford = nullptr;
};

/// Build the production fabric: six VOs, external archives, the full
/// roster (installed + certified + monitored + failure-injected), user
/// population, application installs, and central operations loops.
Assembled assemble_grid3(Grid3& grid, const AssembleOptions& opts = {});

/// Sites (by roster position) hosting a given application, sized to the
/// per-VO "Grid3 Sites Used" counts of Table 1 (times `replicas` on a
/// replicated fabric, so install density tracks the fabric scale).
[[nodiscard]] std::vector<std::string> application_sites(
    const std::string& app_name,
    const std::vector<SiteConfig>& roster, std::size_t replicas = 1);

/// `base` plus `replicas - 1` renamed copies of every template.
[[nodiscard]] std::vector<SiteConfig> replicate_roster(
    std::vector<SiteConfig> base, int replicas);

}  // namespace grid3::core
