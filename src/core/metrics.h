// Milestones and metrics evaluation (paper section 7).
//
// Computes the quantitative targets Grid2003 tracked, from the same
// redundant sources the project used: the ACDC job database, the Ganglia
// path on the metric bus, the VOMS membership rolls, and the trouble
// ticket ledger.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/grid3.h"
#include "monitoring/mdviewer.h"
#include "util/units.h"

namespace grid3::core {

struct MilestoneTarget {
  std::string name;
  std::string target;    ///< the paper's target, verbatim-ish
  std::string paper;     ///< what the paper reports achieving
  std::string measured;  ///< what this run measured
  bool met = false;
};

struct Milestones {
  int cpus_now = 0;
  double cpus_peak = 0.0;
  std::size_t users = 0;
  std::size_t applications = 0;
  std::size_t multi_vo_sites = 0;     ///< sites running >= 2 VOs' jobs
  double data_tb_per_day = 0.0;
  double utilization = 0.0;           ///< 0..1 from the Ganglia path
  double peak_concurrent_jobs = 0.0;  ///< from the ACDC path
  std::map<std::string, double> efficiency_by_vo;  ///< success fraction
  double ops_ftes = 0.0;

  [[nodiscard]] std::vector<MilestoneTarget> scorecard() const;
};

/// Evaluate milestones over [from, to).  `grid` supplies fabric state
/// (CPUs, users); the job database and bus supply the history.
[[nodiscard]] Milestones compute_milestones(Grid3& grid, Time from, Time to);

}  // namespace grid3::core
