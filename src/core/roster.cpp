#include "core/roster.h"

#include <algorithm>
#include <cmath>

#include "pacman/vdt.h"

namespace grid3::core {
namespace {

SiteConfig make_site(std::string name, std::string location,
                     std::string owner, int cpus, LrmsType lrms,
                     double disk_tb, double wan_mbps, double max_wall_hours,
                     bool dedicated, double local_load) {
  SiteConfig cfg;
  cfg.name = std::move(name);
  cfg.location = std::move(location);
  cfg.owner_vo = std::move(owner);
  cfg.cpus = cpus;
  cfg.lrms = lrms;
  cfg.disk = Bytes::tb(disk_tb);
  cfg.wan = Bandwidth::mbps(wan_mbps);
  cfg.policy.max_walltime = Time::hours(max_wall_hours);
  cfg.policy.dedicated = dedicated;
  cfg.policy.local_load = dedicated ? 0.0 : local_load;
  cfg.policy.outbound = true;
  return cfg;
}

}  // namespace

std::vector<SiteConfig> grid3_roster(double cpu_scale) {
  using L = LrmsType;
  std::vector<SiteConfig> roster;
  // --- Tier1 centers (dedicated, big disk, fat pipes, SRM-backed SEs) ---
  roster.push_back(make_site("BNL_ATLAS", "Brookhaven Natl. Lab", "usatlas",
                             360, L::kCondor, 60, 622, 120, true, 0.0));
  roster.back().deploy_srm = true;
  roster.push_back(make_site("FNAL_CMS", "Fermi Natl. Accelerator Lab",
                             "uscms", 400, L::kPbs, 80, 622, 1300, true,
                             0.0));
  roster.back().deploy_srm = true;
  // --- ATLAS university sites ---
  roster.push_back(make_site("UC_ATLAS", "U. Chicago", "usatlas", 128,
                             L::kCondor, 8, 155, 72, false, 0.55));
  roster.push_back(make_site("BU_ATLAS", "Boston U.", "usatlas", 96,
                             L::kPbs, 6, 155, 48, false, 0.60));
  roster.push_back(make_site("IU_ATLAS", "Indiana U.", "usatlas", 64,
                             L::kPbs, 4, 155, 48, false, 0.55));
  roster.push_back(make_site("UTA_DPCC", "U. Texas Arlington", "usatlas",
                             96, L::kLsf, 10, 155, 96, false, 0.50));
  roster.push_back(make_site("UM_ATLAS", "U. Michigan", "usatlas", 48,
                             L::kCondor, 3, 100, 48, false, 0.65));
  roster.push_back(make_site("OU_OSCER", "U. Oklahoma", "usatlas", 128,
                             L::kPbs, 8, 100, 24, false, 0.70));
  roster.push_back(make_site("UNM_HPC", "U. New Mexico", "usatlas", 128,
                             L::kPbs, 8, 100, 24, false, 0.65));
  roster.push_back(make_site("ANL_HEP", "Argonne Natl. Lab", "usatlas", 32,
                             L::kCondor, 2, 155, 48, true, 0.0));
  roster.push_back(make_site("HU_HEP", "Hampton U.", "usatlas", 24,
                             L::kPbs, 1.5, 45, 24, false, 0.55));
  // --- CMS sites ---
  roster.push_back(make_site("CIT_PG", "Caltech", "uscms", 128, L::kCondor,
                             10, 622, 1300, true, 0.0));
  roster.push_back(make_site("UCSD_PG", "U.C. San Diego", "uscms", 96,
                             L::kCondor, 8, 155, 96, false, 0.55));
  roster.push_back(make_site("UFL_PG", "U. Florida", "uscms", 144, L::kPbs,
                             12, 155, 1300, false, 0.45));
  roster.push_back(make_site("UFL_HPC", "U. Florida HPC", "uscms", 80,
                             L::kPbs, 6, 155, 36, false, 0.65));
  roster.push_back(make_site("KNU_CMS", "Kyungpook Natl. U.", "uscms", 32,
                             L::kPbs, 2, 45, 48, false, 0.55));
  // --- SDSS ---
  roster.push_back(make_site("JHU_SDSS", "Johns Hopkins U.", "sdss", 64,
                             L::kCondor, 4, 155, 24, false, 0.60));
  roster.push_back(make_site("FNAL_SDSS", "Fermilab SDSS", "sdss", 64,
                             L::kCondor, 6, 622, 48, true, 0.0));
  // --- LIGO ---
  roster.push_back(make_site("UWM_LIGO", "U. Wisconsin-Milwaukee", "ligo",
                             128, L::kCondor, 10, 155, 48, true, 0.0));
  roster.push_back(make_site("PSU_LIGO", "Penn State", "ligo", 64,
                             L::kCondor, 4, 100, 24, false, 0.60));
  // --- BTeV ---
  roster.push_back(make_site("VU_BTEV", "Vanderbilt U.", "btev", 48,
                             L::kPbs, 3, 100, 24, false, 0.55));
  // --- iVDGL / shared computer-science resources ---
  roster.push_back(make_site("UWMAD_CS", "U. Wisconsin-Madison", "ivdgl",
                             200, L::kCondor, 10, 155, 48, false, 0.70));
  roster.push_back(make_site("UB_CCR", "U. Buffalo (ACDC)", "ivdgl", 96,
                             L::kPbs, 6, 155, 24, false, 0.65));
  roster.push_back(make_site("LBNL_PDSF", "Lawrence Berkeley Natl. Lab",
                             "ivdgl", 128, L::kLsf, 16, 622, 48, false,
                             0.35));
  roster.push_back(make_site("USC_ISI", "U. Southern California", "ivdgl",
                             32, L::kCondor, 2, 155, 24, false, 0.55));
  roster.push_back(make_site("IU_IUPUI", "Indiana U. (iGOC)", "ivdgl", 64,
                             L::kCondor, 4, 155, 48, false, 0.55));
  roster.push_back(make_site("CIT_GRID3", "Caltech shared", "ivdgl", 64,
                             L::kCondor, 4, 622, 24, false, 0.65));

  if (cpu_scale != 1.0) {
    for (SiteConfig& cfg : roster) {
      cfg.cpus = std::max(
          2, static_cast<int>(std::lround(cfg.cpus * cpu_scale)));
      cfg.disk = cfg.disk * cpu_scale;
    }
  }
  return roster;
}

std::vector<SiteConfig> replicate_roster(std::vector<SiteConfig> base,
                                         int replicas) {
  if (replicas <= 1) return base;
  const std::size_t templates = base.size();
  base.reserve(templates * static_cast<std::size_t>(replicas));
  for (int r = 1; r < replicas; ++r) {
    for (std::size_t i = 0; i < templates; ++i) {
      SiteConfig cfg = base[i];
      cfg.name += "_R" + std::to_string(r);
      base.push_back(std::move(cfg));
    }
  }
  return base;
}

std::vector<std::string> application_sites(
    const std::string& app_name, const std::vector<SiteConfig>& roster,
    std::size_t replicas) {
  // Per-VO "Grid3 Sites Used" (Table 1): owner-VO sites first, then fill
  // with other sites in roster order up to the target count.
  struct Plan {
    const char* app;
    const char* vo;
    std::size_t count;
  };
  static constexpr Plan kPlans[] = {
      {app::kAtlasGce, "usatlas", 18}, {app::kCmsMop, "uscms", 18},
      {app::kSdssCoadd, "sdss", 13},   {app::kLigoPulsar, "ligo", 1},
      {app::kBtevSim, "btev", 8},      {app::kSnb, "ivdgl", 19},
      {app::kGadu, "ivdgl", 19},       {app::kExerciser, "ivdgl", 14},
      {app::kEntrada, "ivdgl", 27},    {app::kNetloggerFtp, "ivdgl", 27},
  };
  const Plan* plan = nullptr;
  for (const Plan& p : kPlans) {
    if (app_name == p.app) {
      plan = &p;
      break;
    }
  }
  std::vector<std::string> out;
  if (plan == nullptr) return out;
  const std::size_t count = plan->count * std::max<std::size_t>(1, replicas);
  for (const SiteConfig& cfg : roster) {
    if (cfg.owner_vo == plan->vo && out.size() < count) {
      out.push_back(cfg.name);
    }
  }
  for (const SiteConfig& cfg : roster) {
    if (out.size() >= count) break;
    if (std::find(out.begin(), out.end(), cfg.name) == out.end()) {
      out.push_back(cfg.name);
    }
  }
  return out;
}

Assembled assemble_grid3(Grid3& grid, const AssembleOptions& opts) {
  Assembled result;

  for (const std::string& vo_name : canonical_vos()) {
    grid.add_vo(vo_name);
  }
  result.cern = &grid.add_external_host("CERN", Bandwidth::mbps(622));
  result.ligo_hanford =
      &grid.add_external_host("LIGO_Hanford", Bandwidth::mbps(155));

  // Table 1 user population: (users, of which app-admins).
  if (opts.add_users) {
    struct Pop {
      const char* vo;
      int users;
      int admins;
    };
    // 102 authorized users total; ~10% are application administrators.
    static constexpr Pop kPop[] = {
        {"usatlas", 25, 3}, {"uscms", 26, 3}, {"sdss", 9, 1},
        {"ligo", 7, 1},     {"btev", 1, 1},   {"ivdgl", 34, 2},
    };
    for (const Pop& p : kPop) {
      VoUsers vu;
      vu.vo = p.vo;
      for (int i = 0; i < p.admins; ++i) {
        vu.app_admins.push_back(grid.add_user(
            p.vo, std::string{p.vo} + " admin", vo::Role::kAppAdmin));
      }
      for (int i = 0; i < p.users - p.admins; ++i) {
        vu.users.push_back(
            grid.add_user(p.vo, std::string{p.vo} + " user"));
      }
      result.users.push_back(std::move(vu));
    }
  }

  // Application packages in the iGOC Pacman cache.
  for (const char* app_name :
       {app::kAtlasGce, app::kCmsMop, app::kSdssCoadd, app::kLigoPulsar,
        app::kBtevSim, app::kSnb, app::kGadu, app::kExerciser, app::kEntrada,
        app::kNetloggerFtp}) {
    pacman::add_application_package(grid.igoc().pacman_cache(), app_name,
                                    Time::minutes(20));
  }

  const auto roster =
      replicate_roster(grid3_roster(opts.cpu_scale), opts.roster_replicas);
  for (const SiteConfig& cfg : roster) {
    const double reliability = grid.rng().uniform(opts.min_reliability,
                                                  opts.max_reliability);
    const bool rollover = cfg.name == "UB_CCR";  // ACDC's nightly cycle
    grid.add_site(cfg, reliability, rollover);
  }

  if (opts.install_applications) {
    const auto replicas =
        static_cast<std::size_t>(std::max(1, opts.roster_replicas));
    for (const char* app_name :
         {app::kAtlasGce, app::kCmsMop, app::kSdssCoadd, app::kLigoPulsar,
          app::kBtevSim, app::kSnb, app::kGadu, app::kExerciser,
          app::kEntrada, app::kNetloggerFtp}) {
      for (const std::string& site_name :
           application_sites(app_name, roster, replicas)) {
        if (Site* s = grid.site(site_name)) {
          s->install_application(grid.igoc().pacman_cache(), app_name);
        }
      }
    }
  }

  grid.start_operations();
  return result;
}

}  // namespace grid3::core
