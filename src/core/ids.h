// Interned identities for the simulation's hot paths.
//
// Site, storage-element, VO, and service names are strings at the
// boundaries (GIIS snapshots, ACDC records, match logs, ops tickets)
// but inner loops -- matchmaking, health lookups, metric fan-out --
// used to hash or compare those strings once per candidate per event.
// An Interner maps each distinct name to a small dense id in *stable
// registration order*: the first time a name is seen it gets the next
// index, and the mapping never changes afterwards.  Registration order
// is itself deterministic (driven by the simulation's deterministic
// event order), so converting a container from string keys to interned
// ids cannot reorder any iteration that previously ran in insertion
// order, and code that needs name order keeps sorting explicitly --
// byte-identical logs stay byte-identical.
//
// The typed wrappers (SiteId/SeId/VoId/ServiceId) make it a compile
// error to index a site table with a VO id.  Ids from different
// Interner instances are not comparable in any meaningful way; the
// shared IdRegistry exists so that the subsystems wired together by
// core::Grid3 agree on one numbering.
//
// Header-only and dependency-free on purpose: low layers (health,
// monitoring) include it without gaining a link dependency.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace grid3::core {

/// Strongly-typed dense id.  `Tag` only disambiguates the type; the
/// value is an index into the owning Interner's registration order.
template <class Tag>
class InternedId {
 public:
  static constexpr std::uint32_t kInvalidValue = 0xffffffffu;

  constexpr InternedId() = default;
  constexpr explicit InternedId(std::uint32_t value) : value_{value} {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const {
    return value_ != kInvalidValue;
  }
  [[nodiscard]] static constexpr InternedId invalid() { return {}; }

  friend constexpr bool operator==(InternedId a, InternedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(InternedId a, InternedId b) {
    return a.value_ != b.value_;
  }
  /// Orders by registration order (useful for deterministic id-sorted
  /// sweeps; name order still requires an explicit sort by name()).
  friend constexpr bool operator<(InternedId a, InternedId b) {
    return a.value_ < b.value_;
  }

 private:
  std::uint32_t value_ = kInvalidValue;
};

struct SiteTag {};
struct SeTag {};
struct VoTag {};
struct ServiceTag {};

using SiteId = InternedId<SiteTag>;     ///< execution site / gatekeeper host
using SeId = InternedId<SeTag>;         ///< storage element
using VoId = InternedId<VoTag>;         ///< virtual organisation
using ServiceId = InternedId<ServiceTag>;  ///< named service / metric label

/// String -> dense id mapping in stable first-seen order.  Names are
/// never removed; `name(id)` stays valid for the interner's lifetime.
template <class Id>
class Interner {
 public:
  /// Id for `name`, registering it at the next index if unseen.
  Id intern(std::string_view name) {
    if (auto it = index_.find(name); it != index_.end()) {
      return Id{it->second};
    }
    const auto value = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), value);
    return Id{value};
  }

  /// Id for `name` if already registered; invalid otherwise.
  [[nodiscard]] Id find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? Id::invalid() : Id{it->second};
  }

  [[nodiscard]] bool contains(std::string_view name) const {
    return index_.find(name) != index_.end();
  }

  [[nodiscard]] const std::string& name(Id id) const {
    assert(id.valid() && id.value() < names_.size());
    return names_[id.value()];
  }

  /// Registered names in registration (id) order.
  [[nodiscard]] const std::vector<std::string>& names() const {
    return names_;
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>>
      index_;
};

/// Dense id-indexed map that grows on write.  Reads of ids never
/// written (or the invalid id) return a default value, so callers need
/// no presence checks on the hot path.
template <class Id, class V>
class IdMap {
 public:
  /// Mutable slot for `id`, growing the table as needed.
  V& at_or_grow(Id id) {
    assert(id.valid());
    if (id.value() >= values_.size()) values_.resize(id.value() + 1);
    return values_[id.value()];
  }

  /// Value for `id`, or `fallback` when unset / invalid.
  [[nodiscard]] V get(Id id, V fallback = V{}) const {
    if (!id.valid() || id.value() >= values_.size()) return fallback;
    return values_[id.value()];
  }

  [[nodiscard]] const V* find(Id id) const {
    if (!id.valid() || id.value() >= values_.size()) return nullptr;
    return &values_[id.value()];
  }

  void assign(std::size_t n, const V& v) { values_.assign(n, v); }
  void clear() { values_.clear(); }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::vector<V> values_;
};

/// Dynamic bitset over interned-id values: O(1) membership instead of
/// a linear `std::find` over a name list.
class IdBitset {
 public:
  void set(std::uint32_t value) {
    const std::size_t word = value >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    words_[word] |= std::uint64_t{1} << (value & 63);
  }
  template <class Tag>
  void set(InternedId<Tag> id) {
    assert(id.valid());
    set(id.value());
  }

  [[nodiscard]] bool test(std::uint32_t value) const {
    const std::size_t word = value >> 6;
    if (word >= words_.size()) return false;
    return (words_[word] >> (value & 63)) & 1;
  }
  template <class Tag>
  [[nodiscard]] bool test(InternedId<Tag> id) const {
    return id.valid() && test(id.value());
  }

  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) {
      n += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return n;
  }

  [[nodiscard]] bool empty() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  void clear() { words_.clear(); }

 private:
  std::vector<std::uint64_t> words_;
};

/// The four interners the grid's subsystems share.  core::Grid3 owns
/// one and hands it to every broker it attaches, so VO brokers agree
/// on site numbering; standalone subsystems (unit tests, ad-hoc
/// benches) default to a private registry and lose nothing but
/// cross-subsystem id equality.
struct IdRegistry {
  Interner<SiteId> sites;
  Interner<SeId> storage;
  Interner<VoId> vos;
  Interner<ServiceId> services;
};

}  // namespace grid3::core
