// A Grid3 site: the per-site service stack of section 5.1.
//
// Each site owns its worker cluster (batch scheduler), shared disk,
// GridFTP server, GRAM gatekeeper, grid-map file, GRIS, Ganglia gmond
// and MonALISA agent, wired to the site's WAN access link.  Sites are
// autonomous: local policy (walltime limits, VO shares, shared local
// load) lives here, not at the grid level.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "batch/scheduler.h"
#include "gram/gatekeeper.h"
#include "gridftp/gridftp.h"
#include "mds/gris.h"
#include "monitoring/bus.h"
#include "monitoring/ganglia.h"
#include "monitoring/monalisa.h"
#include "monitoring/site_catalog.h"
#include "net/network.h"
#include "pacman/installer.h"
#include "sim/simulation.h"
#include "srm/disk.h"
#include "srm/srm.h"
#include "util/rng.h"
#include "vo/gridmap.h"

namespace grid3::core {

enum class LrmsType { kCondor, kPbs, kLsf };

[[nodiscard]] const char* to_string(LrmsType t);

struct SitePolicy {
  Time max_walltime = Time::hours(72);
  /// Worker nodes can open outbound connections (section 6.4 req. 1).
  bool outbound = true;
  /// Dedicated to Grid3 vs shared with local users (section 7: ">60% of
  /// CPU resources are drawn from non-dedicated facilities").
  bool dedicated = false;
  /// Fraction of slots local users occupy on average at a shared site.
  double local_load = 0.2;
  std::map<std::string, double> vo_shares;
  bool closed_shares = false;
};

struct SiteConfig {
  std::string name;
  std::string location;   ///< institution label for the status catalog
  std::string owner_vo;   ///< VO that contributed the site
  int cpus = 64;
  LrmsType lrms = LrmsType::kCondor;
  Bytes disk = Bytes::tb(2);
  Bandwidth wan = Bandwidth::mbps(155);  ///< access link (both directions)
  SitePolicy policy;
  bool deploy_srm = false;  ///< optional per-VO storage element
};

class Site {
 public:
  Site(sim::Simulation& sim, net::Network& network,
       monitoring::MetricBus& bus, const vo::CertificateAuthority& ca,
       gridftp::GridFtpClient& ftp_client, SiteConfig cfg, util::Rng rng);
  ~Site();
  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  [[nodiscard]] const std::string& name() const { return cfg_.name; }
  [[nodiscard]] const SiteConfig& config() const { return cfg_; }

  /// Run the Pacman install + certification pipeline; publishes static
  /// attributes on success.  A site must install before it can serve.
  pacman::CertificationResult install(const pacman::PackageCache& cache,
                                      const std::string& root_package);
  [[nodiscard]] bool installed() const { return installed_; }
  [[nodiscard]] const pacman::InstallReport& install_report() const {
    return install_report_;
  }

  /// Install a grid-enabled application package and publish its MDS
  /// attribute (the automated user-level installs of section 6.1).
  bool install_application(const pacman::PackageCache& cache,
                           const std::string& app_name);

  /// Declare VO support + group account and refresh the grid-map file.
  void support_vo(const std::string& vo_name);
  void refresh_gridmap(const std::vector<const vo::VomsServer*>& servers);

  /// Begin the periodic monitoring/publication loop (gmond samples, GRIS
  /// dynamic attributes, MonALISA VO activity) and local-user background
  /// load at shared sites.
  void start_services(Time monitor_period = Time::minutes(5));
  void stop_services();

  /// Functional probes for the Site Status Catalog.
  [[nodiscard]] std::vector<monitoring::ProbeResult> run_probes() const;

  // --- service accessors ---
  [[nodiscard]] batch::BatchScheduler& scheduler() { return *scheduler_; }
  [[nodiscard]] const batch::BatchScheduler& scheduler() const {
    return *scheduler_;
  }
  [[nodiscard]] gram::Gatekeeper& gatekeeper() { return *gatekeeper_; }
  [[nodiscard]] gridftp::GridFtpServer& ftp() { return ftp_server_; }
  [[nodiscard]] srm::DiskVolume& disk() { return disk_; }
  [[nodiscard]] mds::Gris& gris() { return gris_; }
  [[nodiscard]] const vo::GridMapFile& gridmap() const { return gridmap_; }
  [[nodiscard]] srm::StorageResourceManager* storage_element() {
    return srm_ ? srm_.get() : nullptr;
  }
  [[nodiscard]] net::NodeId node() const { return node_; }
  [[nodiscard]] util::Rng& rng() { return rng_; }

  /// Grid jobs currently running / live CPU count (sites introduce and
  /// withdraw nodes, so this tracks the scheduler, not the config).
  [[nodiscard]] int grid_jobs_running() const;
  [[nodiscard]] int cpus() const { return scheduler_->total_slots(); }

 private:
  void publish_static();
  void publish_dynamic();
  void sample_local_load();

  sim::Simulation& sim_;
  net::Network& net_;
  monitoring::MetricBus& bus_;
  SiteConfig cfg_;
  util::Rng rng_;
  net::NodeId node_;
  srm::DiskVolume disk_;
  gridftp::GridFtpServer ftp_server_;
  std::unique_ptr<batch::BatchScheduler> scheduler_;
  vo::GridMapFile gridmap_;
  std::unique_ptr<gram::Gatekeeper> gatekeeper_;
  mds::Gris gris_;
  monitoring::GangliaGmond gmond_;
  monitoring::MonalisaAgent ml_agent_;
  std::unique_ptr<srm::StorageResourceManager> srm_;
  std::unique_ptr<sim::PeriodicProcess> monitor_loop_;
  std::unique_ptr<sim::PeriodicProcess> local_load_loop_;
  pacman::InstallReport install_report_;
  bool installed_ = false;
  int local_jobs_running_ = 0;
  // Drain-rate differentiation baseline (see publish_dynamic).
  Bytes last_released_;
  Time last_drain_sample_;
  bool drain_sampled_ = false;
};

}  // namespace grid3::core
