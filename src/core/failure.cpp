#include "core/failure.h"

#include <cassert>

namespace grid3::core {

const char* to_string(Incident i) {
  switch (i) {
    case Incident::kDiskFill: return "disk-fill";
    case Incident::kGatekeeperCrash: return "gatekeeper-crash";
    case Incident::kNetworkCut: return "network-cut";
    case Incident::kServiceCrash: return "service-crash";
    case Incident::kRollover: return "worker-rollover";
  }
  return "?";
}

FailureRates FailureRates::scaled(double reliability) const {
  assert(reliability > 0.0);
  FailureRates r = *this;
  r.disk_fill_mtbf = r.disk_fill_mtbf * reliability;
  r.gatekeeper_crash_mtbf = r.gatekeeper_crash_mtbf * reliability;
  r.network_cut_mtbf = r.network_cut_mtbf * reliability;
  r.service_crash_mtbf = r.service_crash_mtbf * reliability;
  return r;
}

void FailureInjector::attach(Site& site, FailureRates rates) {
  auto a = std::make_unique<Attached>();
  a->site = &site;
  a->rates = rates;
  Attached* ap = a.get();
  attached_[site.name()] = std::move(a);

  const std::string name = site.name();
  auto alive = [this, name]() -> Attached* {
    auto it = attached_.find(name);
    return it != attached_.end() && it->second->active ? it->second.get()
                                                       : nullptr;
  };

  // Disk-fill incidents.
  auto schedule_disk = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap = Time::hours(
        rng_.exponential(a->rates.disk_fill_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kDiskFill);
      const Bytes eaten =
          a->site->disk().capacity() * a->rates.disk_fill_fraction;
      a->site->disk().consume_unmanaged(eaten);
      const auto ticket =
          igoc_.tickets().open(a->site->name(), "disk-fill", sim_.now());
      const std::string site_name = a->site->name();
      sim_.schedule_in(a->rates.disk_cleanup_after,
                       [this, alive, ticket, eaten] {
                         if (Attached* a2 = alive()) {
                           a2->site->disk().cleanup(eaten);
                         }
                         igoc_.tickets().close(ticket, sim_.now());
                       });
      (void)site_name;
      self(self);
    });
  };
  schedule_disk(schedule_disk);

  // Gatekeeper crashes.
  auto schedule_gk = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap = Time::hours(
        rng_.exponential(a->rates.gatekeeper_crash_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kGatekeeperCrash);
      a->site->gatekeeper().set_available(false);
      const auto ticket = igoc_.tickets().open(a->site->name(),
                                               "gatekeeper-crash", sim_.now());
      const Time repair = Time::hours(
          rng_.exponential(a->rates.gatekeeper_repair_mean.to_hours()));
      sim_.schedule_in(repair, [this, alive, ticket] {
        if (Attached* a2 = alive()) {
          a2->site->gatekeeper().set_available(true);
        }
        igoc_.tickets().close(ticket, sim_.now());
      });
      self(self);
    });
  };
  schedule_gk(schedule_gk);

  // Network interruptions.
  auto schedule_net = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap =
        Time::hours(rng_.exponential(a->rates.network_cut_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kNetworkCut);
      net_.set_node_up(a->site->node(), false);
      const auto ticket =
          igoc_.tickets().open(a->site->name(), "network-cut", sim_.now());
      const Time repair = Time::hours(
          rng_.exponential(a->rates.network_repair_mean.to_hours()));
      sim_.schedule_in(repair, [this, alive, ticket] {
        if (Attached* a2 = alive()) {
          net_.set_node_up(a2->site->node(), true);
        }
        igoc_.tickets().close(ticket, sim_.now());
      });
      self(self);
    });
  };
  schedule_net(schedule_net);

  // Service crashes (GridFTP or GRIS, alternating randomly).
  auto schedule_svc = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap = Time::hours(
        rng_.exponential(a->rates.service_crash_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kServiceCrash);
      const bool ftp = rng_.chance(0.6);
      if (ftp) {
        a->site->ftp().set_available(false);
      } else {
        a->site->gris().set_available(false);
      }
      const auto ticket = igoc_.tickets().open(
          a->site->name(), ftp ? "gridftp-crash" : "gris-crash", sim_.now());
      const Time repair = Time::hours(
          rng_.exponential(a->rates.service_repair_mean.to_hours()));
      sim_.schedule_in(repair, [this, alive, ticket, ftp] {
        if (Attached* a2 = alive()) {
          if (ftp) {
            a2->site->ftp().set_available(true);
          } else {
            a2->site->gris().set_available(true);
          }
        }
        igoc_.tickets().close(ticket, sim_.now());
      });
      self(self);
    });
  };
  schedule_svc(schedule_svc);

  // Nightly worker rollover.
  if (rates.nightly_rollover) {
    auto loop = std::make_unique<sim::PeriodicProcess>(
        sim_, Time::days(1), [this, alive] {
          Attached* a = alive();
          if (a == nullptr) return false;
          record(Incident::kRollover);
          a->site->scheduler().kill_running(a->rates.rollover_kill_fraction,
                                            rng_);
          return true;
        });
    // First rollover at the next "midnight" (whole day boundary).
    const double day_frac =
        sim_.now().to_days() - static_cast<double>(static_cast<std::int64_t>(
                                   sim_.now().to_days()));
    loop->start(Time::days(1.0 - day_frac));
    ap->loops.push_back(std::move(loop));
  }
}

void FailureInjector::detach(const std::string& site_name) {
  auto it = attached_.find(site_name);
  if (it == attached_.end()) return;
  it->second->active = false;
  for (auto& loop : it->second->loops) loop->stop();
  // Keep the entry (inactive) so in-flight lambdas resolve to nullptr.
}

std::size_t FailureInjector::incidents(Incident kind) const {
  auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

std::size_t FailureInjector::total_incidents() const {
  std::size_t n = 0;
  for (const auto& [kind, count] : counts_) n += count;
  return n;
}

}  // namespace grid3::core
