#include "core/failure.h"

#include <cassert>

namespace grid3::core {

const char* to_string(Incident i) {
  switch (i) {
    case Incident::kDiskFill: return "disk-fill";
    case Incident::kGatekeeperCrash: return "gatekeeper-crash";
    case Incident::kNetworkCut: return "network-cut";
    case Incident::kServiceCrash: return "service-crash";
    case Incident::kRollover: return "worker-rollover";
    case Incident::kGiisOutage: return "giis-outage";
    case Incident::kRlsOutage: return "rls-outage";
    case Incident::kMonitorOutage: return "monalisa-outage";
    case Incident::kTicketQueueOutage: return "ticket-queue-outage";
    case Incident::kScheduledDowntime: return "scheduled-downtime";
    case Incident::kWanWeather: return "wan-weather";
  }
  return "?";
}

FailureRates FailureRates::scaled(double reliability) const {
  assert(reliability > 0.0);
  FailureRates r = *this;
  r.disk_fill_mtbf = r.disk_fill_mtbf * reliability;
  r.gatekeeper_crash_mtbf = r.gatekeeper_crash_mtbf * reliability;
  r.network_cut_mtbf = r.network_cut_mtbf * reliability;
  r.service_crash_mtbf = r.service_crash_mtbf * reliability;
  return r;
}

void FailureInjector::attach(Site& site, FailureRates rates) {
  auto a = std::make_unique<Attached>();
  a->site = &site;
  a->rates = rates;
  Attached* ap = a.get();
  attached_[site.name()] = std::move(a);

  const std::string name = site.name();
  auto alive = [this, name]() -> Attached* {
    auto it = attached_.find(name);
    return it != attached_.end() && it->second->active ? it->second.get()
                                                       : nullptr;
  };

  // Disk-fill incidents.
  auto schedule_disk = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap = Time::hours(
        rng_.exponential(a->rates.disk_fill_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kDiskFill);
      const Bytes eaten =
          a->site->disk().capacity() * a->rates.disk_fill_fraction;
      a->site->disk().consume_unmanaged(eaten);
      const auto ticket =
          igoc_.tickets().open(a->site->name(), "disk-fill", sim_.now());
      const std::string site_name = a->site->name();
      sim_.schedule_in(a->rates.disk_cleanup_after,
                       [this, alive, ticket, eaten] {
                         if (Attached* a2 = alive()) {
                           a2->site->disk().cleanup(eaten);
                         }
                         igoc_.tickets().close(ticket, sim_.now());
                       });
      (void)site_name;
      self(self);
    });
  };
  schedule_disk(schedule_disk);

  // Gatekeeper crashes.
  auto schedule_gk = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap = Time::hours(
        rng_.exponential(a->rates.gatekeeper_crash_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kGatekeeperCrash);
      a->site->gatekeeper().set_available(false);
      const auto ticket = igoc_.tickets().open(a->site->name(),
                                               "gatekeeper-crash", sim_.now());
      const Time repair = Time::hours(
          rng_.exponential(a->rates.gatekeeper_repair_mean.to_hours()));
      sim_.schedule_in(repair, [this, alive, ticket] {
        if (Attached* a2 = alive()) {
          a2->site->gatekeeper().set_available(true);
        }
        igoc_.tickets().close(ticket, sim_.now());
      });
      self(self);
    });
  };
  schedule_gk(schedule_gk);

  // Network interruptions.
  auto schedule_net = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap =
        Time::hours(rng_.exponential(a->rates.network_cut_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kNetworkCut);
      net_.set_node_up(a->site->node(), false);
      const auto ticket =
          igoc_.tickets().open(a->site->name(), "network-cut", sim_.now());
      const Time repair = Time::hours(
          rng_.exponential(a->rates.network_repair_mean.to_hours()));
      sim_.schedule_in(repair, [this, alive, ticket] {
        if (Attached* a2 = alive()) {
          net_.set_node_up(a2->site->node(), true);
        }
        igoc_.tickets().close(ticket, sim_.now());
      });
      self(self);
    });
  };
  schedule_net(schedule_net);

  // Service crashes (GridFTP or GRIS, alternating randomly).
  auto schedule_svc = [this, alive](auto&& self) -> void {
    Attached* a = alive();
    if (a == nullptr) return;
    const Time gap = Time::hours(
        rng_.exponential(a->rates.service_crash_mtbf.to_hours()));
    sim_.schedule_in(gap, [this, alive, self] {
      Attached* a = alive();
      if (a == nullptr) return;
      record(Incident::kServiceCrash);
      const bool ftp = rng_.chance(0.6);
      if (ftp) {
        a->site->ftp().set_available(false);
      } else {
        a->site->gris().set_available(false);
      }
      const auto ticket = igoc_.tickets().open(
          a->site->name(), ftp ? "gridftp-crash" : "gris-crash", sim_.now());
      const Time repair = Time::hours(
          rng_.exponential(a->rates.service_repair_mean.to_hours()));
      sim_.schedule_in(repair, [this, alive, ticket, ftp] {
        if (Attached* a2 = alive()) {
          if (ftp) {
            a2->site->ftp().set_available(true);
          } else {
            a2->site->gris().set_available(true);
          }
        }
        igoc_.tickets().close(ticket, sim_.now());
      });
      self(self);
    });
  };
  schedule_svc(schedule_svc);

  // Nightly worker rollover.
  if (rates.nightly_rollover) {
    auto loop = std::make_unique<sim::PeriodicProcess>(
        sim_, Time::days(1), [this, alive] {
          Attached* a = alive();
          if (a == nullptr) return false;
          record(Incident::kRollover);
          a->site->scheduler().kill_running(a->rates.rollover_kill_fraction,
                                            rng_);
          return true;
        });
    // First rollover at the next "midnight" (whole day boundary).
    const double day_frac =
        sim_.now().to_days() - static_cast<double>(static_cast<std::int64_t>(
                                   sim_.now().to_days()));
    loop->start(Time::days(1.0 - day_frac));
    ap->loops.push_back(std::move(loop));
  }
}

void FailureInjector::detach(const std::string& site_name) {
  auto it = attached_.find(site_name);
  if (it == attached_.end()) return;
  it->second->active = false;
  for (auto& loop : it->second->loops) loop->stop();
  // Keep the entry (inactive) so in-flight lambdas resolve to nullptr.
}

void FailureInjector::attach_collective(const std::string& name,
                                        CollectiveTargets targets,
                                        CollectiveFailureRates rates) {
  auto c = std::make_unique<AttachedCollective>();
  c->targets = targets;
  c->rates = rates;
  collectives_[name] = std::move(c);

  auto alive = [this, name]() -> AttachedCollective* {
    auto it = collectives_.find(name);
    return it != collectives_.end() && it->second->active ? it->second.get()
                                                          : nullptr;
  };

  // One generic Poisson outage loop per service class.  `select` pulls
  // the class's target out of the bundle (null = class not armed here);
  // `down`/`up` flip its availability.  Classes whose MTBF is zero are
  // never armed, so they consume no RNG draws at all.
  auto arm = [this, alive](Incident kind, const char* issue, Time mtbf,
                                 Time repair_mean, auto select, auto down,
                                 auto up) {
    AttachedCollective* c0 = alive();
    if (c0 == nullptr || mtbf <= Time::zero() || select(*c0) == nullptr) {
      return;
    }
    auto schedule = [this, alive, kind, issue, mtbf, repair_mean, select,
                     down, up](auto&& self) -> void {
      AttachedCollective* c = alive();
      if (c == nullptr) return;
      const Time gap = Time::hours(rng_.exponential(mtbf.to_hours()));
      sim_.schedule_in(gap, [this, alive, kind, issue, repair_mean, select,
                             down, up, self] {
        AttachedCollective* c = alive();
        if (c == nullptr || select(*c) == nullptr) return;
        record(kind);
        down(*select(*c));
        // The ticket goes against the service name; when the down
        // service IS the ticket queue, open() drops it (id 0) -- the
        // operators' view goes dark, exactly the modeled failure.
        const auto ticket = igoc_.tickets().open(issue, issue, sim_.now());
        const Time repair =
            Time::hours(rng_.exponential(repair_mean.to_hours()));
        sim_.schedule_in(repair, [this, alive, ticket, select, up] {
          if (AttachedCollective* c2 = alive()) {
            if (auto* t = select(*c2)) up(*t);
          }
          igoc_.tickets().close(ticket, sim_.now());
        });
        self(self);
      });
    };
    schedule(schedule);
  };

  arm(
      Incident::kGiisOutage, "giis-outage", rates.giis_outage_mtbf,
      rates.giis_repair_mean,
      [](AttachedCollective& c) { return c.targets.giis; },
      [](mds::Giis& g) { g.set_available(false); },
      [](mds::Giis& g) { g.set_available(true); });
  arm(
      Incident::kRlsOutage, "rls-outage", rates.rls_outage_mtbf,
      rates.rls_repair_mean,
      [](AttachedCollective& c) { return c.targets.rls; },
      [](rls::ReplicaLocationService& r) {
        r.set_available(false);
        r.rli().set_available(false);
      },
      [this](rls::ReplicaLocationService& r) {
        r.set_available(true);
        r.rli().set_available(true);
        r.replay(sim_.now());  // drain the write-ahead journal
      });
  arm(
      Incident::kMonitorOutage, "monalisa-outage", rates.monitor_outage_mtbf,
      rates.monitor_repair_mean,
      [](AttachedCollective& c) { return c.targets.monitor; },
      [](monitoring::MonalisaRepository& m) { m.set_available(false); },
      [](monitoring::MonalisaRepository& m) { m.set_available(true); });
  arm(
      Incident::kTicketQueueOutage, "ticket-queue-outage",
      rates.ticket_queue_mtbf, rates.ticket_queue_repair_mean,
      [](AttachedCollective& c) { return c.targets.tickets; },
      [](TroubleTicketSystem& t) { t.set_available(false); },
      [](TroubleTicketSystem& t) { t.set_available(true); });
}

void FailureInjector::detach_collective(const std::string& name) {
  auto it = collectives_.find(name);
  if (it == collectives_.end()) return;
  it->second->active = false;
  // Keep the entry (inactive) so in-flight lambdas resolve to nullptr.
}

bool FailureInjector::set_target_up(const std::string& target, bool up) {
  if (auto it = attached_.find(target);
      it != attached_.end() && it->second->active) {
    Site& site = *it->second->site;
    site.gatekeeper().set_available(up);
    site.gris().set_available(up);
    return true;
  }
  if (auto it = collectives_.find(target);
      it != collectives_.end() && it->second->active) {
    CollectiveTargets& t = it->second->targets;
    if (t.giis != nullptr) t.giis->set_available(up);
    if (t.rls != nullptr) {
      t.rls->set_available(up);
      t.rls->rli().set_available(up);
      if (up) t.rls->replay(sim_.now());
    }
    if (t.monitor != nullptr) t.monitor->set_available(up);
    if (t.tickets != nullptr) t.tickets->set_available(up);
    return true;
  }
  return false;
}

bool FailureInjector::set_site_wan_up(const std::string& target, bool up) {
  auto it = attached_.find(target);
  if (it == attached_.end() || !it->second->active) return false;
  net_.set_node_up(it->second->site->node(), up);
  return true;
}

void FailureInjector::schedule_downtime(DowntimeWindow w) {
  // Resolution is deferred to the window start, so an ops calendar can
  // be loaded before the sites/services it names are attached.  No RNG
  // is consumed on either path: windows perturb nothing but the target.
  sim_.schedule_at(w.start, [this, w] {
    if (w.wan) {
      if (!set_site_wan_up(w.target, false)) return;  // nothing attached
      record(Incident::kWanWeather);
      const auto ticket =
          igoc_.tickets().open(w.target, "wan-weather", sim_.now());
      sim_.schedule_in(w.duration, [this, w, ticket] {
        set_site_wan_up(w.target, true);
        igoc_.tickets().close(ticket, sim_.now());
      });
      return;
    }
    if (!set_target_up(w.target, false)) return;  // nothing attached
    record(Incident::kScheduledDowntime);
    const auto ticket =
        igoc_.tickets().open(w.target, "scheduled-maintenance", sim_.now());
    sim_.schedule_in(w.duration, [this, w, ticket] {
      set_target_up(w.target, true);
      igoc_.tickets().close(ticket, sim_.now());
    });
  });
}

std::size_t FailureInjector::incidents(Incident kind) const {
  auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

std::size_t FailureInjector::total_incidents() const {
  std::size_t n = 0;
  for (const auto& [kind, count] : counts_) n += count;
  return n;
}

}  // namespace grid3::core
