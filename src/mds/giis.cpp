#include "mds/giis.h"

#include <algorithm>

namespace grid3::mds {

std::optional<AttrValue> SiteSnapshot::get(std::string_view key) const {
  auto it = attrs.find(key);
  if (it == attrs.end()) return std::nullopt;
  return it->second.value;
}

std::optional<std::int64_t> SiteSnapshot::get_int(std::string_view key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  if (const auto* p = std::get_if<std::int64_t>(&*v)) return *p;
  if (const auto* d = std::get_if<double>(&*v)) {
    return static_cast<std::int64_t>(*d);
  }
  return std::nullopt;
}

std::optional<std::string> SiteSnapshot::get_string(
    std::string_view key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  if (const auto* p = std::get_if<std::string>(&*v)) return *p;
  return to_string(*v);
}

std::optional<bool> SiteSnapshot::get_bool(std::string_view key) const {
  auto v = get(key);
  if (!v) return std::nullopt;
  if (const auto* p = std::get_if<bool>(&*v)) return *p;
  return std::nullopt;
}

void Giis::register_gris(const Gris* gris) {
  if (gris == nullptr) return;
  direct_.push_back(gris);
}

void Giis::register_child(const Giis* child) {
  if (child == nullptr || child == this) return;
  children_.push_back(child);
}

void Giis::deregister_gris(const std::string& site_name) {
  direct_.erase(std::remove_if(direct_.begin(), direct_.end(),
                               [&](const Gris* g) {
                                 return g->site() == site_name;
                               }),
                direct_.end());
  cache_.erase(site_name);
}

std::vector<std::string> Giis::sites() const {
  std::vector<std::string> out;
  for (const Gris* g : direct_) out.push_back(g->site());
  for (const Giis* c : children_) {
    for (auto& s : c->sites()) out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<SiteSnapshot> Giis::fetch(const Gris& gris, Time now) const {
  auto cached = cache_.find(gris.site());
  const bool have_cache = cached != cache_.end();
  if (have_cache && now - cached->second.fetched < ttl_) {
    return cached->second;
  }
  if (gris.available()) {
    SiteSnapshot snap;
    snap.site = gris.site();
    snap.fetched = now;
    snap.fresh = true;
    for (auto& [k, a] : gris.dump()) snap.attrs.emplace(k, a);
    cache_[snap.site] = snap;
    return snap;
  }
  // GRIS down: serve the stale snapshot within a grace period of one
  // additional TTL (MDS kept cached entries briefly), then drop the site.
  if (have_cache && now - cached->second.fetched < ttl_ + ttl_) {
    SiteSnapshot stale = cached->second;
    stale.fresh = false;
    return stale;
  }
  return std::nullopt;
}

std::optional<SiteSnapshot> Giis::lookup(const std::string& site,
                                         Time now) const {
  if (!up_) return std::nullopt;
  for (const Gris* g : direct_) {
    if (g->site() == site) return fetch(*g, now);
  }
  for (const Giis* c : children_) {
    if (auto snap = c->lookup(site, now)) return snap;
  }
  return std::nullopt;
}

std::vector<SiteSnapshot> Giis::find(
    const std::function<bool(const SiteSnapshot&)>& pred, Time now) const {
  std::vector<SiteSnapshot> out;
  if (!up_) return out;
  for (const std::string& site : sites()) {
    auto snap = lookup(site, now);
    if (snap && pred(*snap)) out.push_back(std::move(*snap));
  }
  return out;
}

}  // namespace grid3::mds
