#include "mds/schema.h"

#include <sstream>

namespace grid3::mds {

std::string to_string(const AttrValue& v) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& x) {
        if constexpr (std::is_same_v<std::decay_t<decltype(x)>, bool>) {
          os << (x ? "true" : "false");
        } else {
          os << x;
        }
      },
      v);
  return os.str();
}

std::string app_attribute(std::string_view app_name) {
  return std::string{grid3ext::kAppPrefix} + std::string{app_name};
}

}  // namespace grid3::mds
