// GIIS: hierarchical Grid Index Information Service.
//
// Two-tier registration as deployed on Grid3 (section 5): each site GRIS
// registers with its VO's GIIS, and VO GIISes register with the top-level
// iGOC index.  Queries read through a per-site cache refreshed lazily when
// older than the TTL; if a GRIS is down the cached snapshot is served
// until it expires, after which the site drops out of query results.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mds/gris.h"

namespace grid3::mds {

/// A cached snapshot of one site's GRIS contents.
struct SiteSnapshot {
  std::string site;
  Time fetched;
  bool fresh = false;  ///< false when served past-TTL or never fetched
  std::map<std::string, Attribute, std::less<>> attrs;

  [[nodiscard]] std::optional<AttrValue> get(std::string_view key) const;
  [[nodiscard]] std::optional<std::int64_t> get_int(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> get_string(std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool(std::string_view key) const;
};

class Giis {
 public:
  Giis(std::string name, Time cache_ttl)
      : name_{std::move(name)}, ttl_{cache_ttl} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Register a site GRIS with this index (non-owning; the Site owns it).
  void register_gris(const Gris* gris);
  /// Register a child index (VO GIIS -> top-level GIIS).
  void register_child(const Giis* child);

  void deregister_gris(const std::string& site_name);

  /// All site names reachable through this index (direct + children).
  [[nodiscard]] std::vector<std::string> sites() const;

  /// Snapshot of a site, refreshing the cache if stale.  Returns nullopt
  /// when the site is unknown or its cache expired with the GRIS down.
  [[nodiscard]] std::optional<SiteSnapshot> lookup(const std::string& site,
                                                   Time now) const;

  /// All sites whose snapshot satisfies `pred` (discovery queries, e.g.
  /// "sites with app X installed and >= N free CPUs").
  [[nodiscard]] std::vector<SiteSnapshot> find(
      const std::function<bool(const SiteSnapshot&)>& pred, Time now) const;

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

  [[nodiscard]] Time ttl() const { return ttl_; }

 private:
  [[nodiscard]] std::optional<SiteSnapshot> fetch(const Gris& gris,
                                                  Time now) const;

  std::string name_;
  Time ttl_;
  bool up_ = true;
  std::vector<const Gris*> direct_;
  std::vector<const Giis*> children_;
  // Cache is conceptually server state mutated by reads.
  mutable std::map<std::string, SiteSnapshot> cache_;
};

}  // namespace grid3::mds
