// GLUE-style information schema with the Grid3 extensions.
//
// The paper (section 5.1): "information providers were developed for site
// configuration parameters such as application installation areas,
// temporary working directories, storage element locations, and VDT
// software installation locations.  Only a few extensions to the GLUE MDS
// schema were required."  Those extensions are first-class here because
// the application-installation workflow (section 6.1) reads them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>

namespace grid3::mds {

using AttrValue = std::variant<std::string, std::int64_t, double, bool>;

/// Render an attribute value for display / LDIF-style dumps.
[[nodiscard]] std::string to_string(const AttrValue& v);

/// Canonical GLUE keys used across the simulator.
namespace glue {
inline constexpr std::string_view kSiteName = "GlueSiteName";
inline constexpr std::string_view kTotalCpus = "GlueCEInfoTotalCPUs";
inline constexpr std::string_view kFreeCpus = "GlueCEStateFreeCPUs";
inline constexpr std::string_view kRunningJobs = "GlueCEStateRunningJobs";
inline constexpr std::string_view kWaitingJobs = "GlueCEStateWaitingJobs";
inline constexpr std::string_view kMaxWallClockMinutes =
    "GlueCEPolicyMaxWallClockTime";
inline constexpr std::string_view kLrmsType = "GlueCEInfoLRMSType";
inline constexpr std::string_view kSeAvailableGb = "GlueSAStateAvailableSpace";
inline constexpr std::string_view kSeTotalGb = "GlueSATotalSpace";
}  // namespace glue

/// Grid3 schema extensions (site configuration conventions, section 5.1).
namespace grid3ext {
inline constexpr std::string_view kAppDir = "Grid3AppDir";
inline constexpr std::string_view kTmpDir = "Grid3TmpDir";
inline constexpr std::string_view kDataDir = "Grid3DataDir";
inline constexpr std::string_view kVdtLocation = "Grid3VdtLocation";
inline constexpr std::string_view kVdtVersion = "Grid3VdtVersion";
inline constexpr std::string_view kSiteOwnerVo = "Grid3SiteOwnerVO";
inline constexpr std::string_view kOutboundConnectivity =
    "Grid3OutboundConnectivity";
/// SE drain rate (GB freed per hour between monitor samples, e.g. tape
/// migration emptying the archive): lets the broker tell a temporarily
/// full archive from a structurally full one.
inline constexpr std::string_view kSeDrainGbPerHour = "Grid3SeDrainGbPerHour";
/// Installed-application marker prefix: an app publishes
/// "Grid3App-<name>" = version once its Pacman install validated.
inline constexpr std::string_view kAppPrefix = "Grid3App-";
}  // namespace grid3ext

/// Key for an installed application marker.
[[nodiscard]] std::string app_attribute(std::string_view app_name);

}  // namespace grid3::mds
