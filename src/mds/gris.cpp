#include "mds/gris.h"

namespace grid3::mds {

void Gris::publish(std::string_view key, AttrValue value, Time now) {
  attrs_.insert_or_assign(std::string{key}, Attribute{std::move(value), now});
}

bool Gris::retract(std::string_view key) {
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return false;
  attrs_.erase(it);
  return true;
}

std::optional<Attribute> Gris::query(std::string_view key) const {
  if (!up_) return std::nullopt;
  auto it = attrs_.find(key);
  if (it == attrs_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::pair<std::string, Attribute>> Gris::dump() const {
  std::vector<std::pair<std::string, Attribute>> out;
  out.reserve(attrs_.size());
  for (const auto& [k, v] : attrs_) out.emplace_back(k, v);
  return out;
}

}  // namespace grid3::mds
