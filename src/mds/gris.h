// GRIS: the per-site Grid Resource Information Service.
//
// Information providers (batch scheduler, Ganglia, Pacman) publish
// attributes into the site GRIS; GIIS index servers pull snapshots with a
// cache TTL, so consumers may observe bounded staleness -- faithfully
// reproducing MDS2 semantics, where a dead GRIS keeps serving cached data
// until the TTL lapses.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mds/schema.h"
#include "util/units.h"

namespace grid3::mds {

struct Attribute {
  AttrValue value;
  Time updated;
};

class Gris {
 public:
  explicit Gris(std::string site_name) : site_{std::move(site_name)} {}

  [[nodiscard]] const std::string& site() const { return site_; }

  /// Publish/update an attribute (providers call this on their cadence).
  void publish(std::string_view key, AttrValue value, Time now);

  /// Remove an attribute (e.g. an application de-published).
  bool retract(std::string_view key);

  /// Direct query against the live server; nullopt when the attribute is
  /// missing or the server is down.
  [[nodiscard]] std::optional<Attribute> query(std::string_view key) const;

  /// All attributes, sorted by key (LDIF-style dump / GIIS pull).
  [[nodiscard]] std::vector<std::pair<std::string, Attribute>> dump() const;

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

  [[nodiscard]] std::size_t attribute_count() const { return attrs_.size(); }

 private:
  std::string site_;
  bool up_ = true;
  std::map<std::string, Attribute, std::less<>> attrs_;
};

}  // namespace grid3::mds
