// Site-health circuit breakers: automated black-hole quarantine.
//
// The paper attributes ~90% of Grid3 failures to site problems -- "more
// frequently a disk would fill up or a service would fail and all jobs
// submitted to a site would die" (section 6.1).  The classic black-hole
// site fast-fails everything thrown at it, so queue-depth ranking sees
// an empty queue and funnels the whole workload in.  Grid3 broke that
// loop by hand: an operator noticed the burst, opened an iGOC ticket,
// told VOs to steer around the site, and re-certified it with
// site-verify probes before re-admission.  This module automates the
// loop.
//
// SiteHealthMonitor consumes per-site, per-service completion feedback
// (gatekeeper submit outcomes, GridFTP transfer failures, SRM/lease
// rejections, batch fast-fails) into EWMA failure-rate scores and
// drives a per-site circuit breaker:
//
//   closed     healthy; feedback updates the scores.
//   open       quarantined: the broker excludes the site from match and
//              gang candidate sets, held jobs re-match elsewhere,
//              pending gang leases are returned, and an iGOC trouble
//              ticket is opened.  Quarantine length escalates on
//              repeated trips (exponential, capped).
//   half-open  probation: a trickle of probe/exerciser jobs re-certify
//              the site (Grid3's site-verify practice).  Enough
//              consecutive probe successes re-admit it and close the
//              ticket; one failure re-opens with a longer quarantine.
//              Without a probe submitter attached, regular trial
//              traffic plays the probe role.
//
// The module sits below broker/core in the layering: feedback arrives
// through a neutral report() API and side effects leave through
// callbacks (ticket open/close, probe submission, trip observers), so
// health depends only on sim/monitoring/util.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "monitoring/acdc.h"
#include "monitoring/bus.h"
#include "monitoring/troubleshoot.h"
#include "sim/simulation.h"
#include "util/units.h"

namespace grid3::health {

/// The per-site service classes scored independently: a full SE must not
/// shadow a healthy gatekeeper, and vice versa.
enum class Service {
  kSubmit,    ///< gatekeeper accept/auth path (GRAM submit outcomes)
  kBatch,     ///< jobs die under the LRMS / site environment (fast-fails)
  kTransfer,  ///< GridFTP stage-in/out and data-node transfers
  kStorage,   ///< SRM reservations / placement-lease rejections
};
inline constexpr int kServiceCount = 4;

[[nodiscard]] const char* to_string(Service s);

enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(BreakerState s);

struct HealthConfig {
  /// Per-event EWMA weight of the failure indicator.
  double ewma_alpha = 0.25;
  /// Score at or above which a closed breaker trips.
  double trip_threshold = 0.6;
  /// Events a (site, service) score needs before it may trip (a single
  /// unlucky submission must not quarantine a site).
  int min_samples = 6;
  /// A failed job that died within this fraction of its requested
  /// walltime counts as a batch fast-fail -- the black-hole signature.
  double fast_fail_fraction = 0.25;
  /// First quarantine length; escalates per consecutive trip.
  Time quarantine_base = Time::minutes(30);
  double quarantine_escalation = 2.0;
  Time quarantine_cap = Time::hours(8);
  /// Consecutive probe successes required to re-admit a site.
  int probes_required = 3;
  /// Spacing between probation probes (the exerciser's cadence).
  Time probe_interval = Time::minutes(15);
};

/// One breaker state-machine event, append-only (the determinism tests
/// diff serialize_events() byte-for-byte).
struct BreakerEvent {
  std::uint64_t seq = 0;
  Time at;
  std::string site;
  std::string event;    ///< trip | half-open | probe-ok | probe-fail | readmit
  std::string service;  ///< service that tripped it ("" otherwise)
  double score = 0.0;   ///< EWMA at the event
};

/// Counter metric names published per site on the MetricBus.
namespace metric {
inline constexpr const char* kTrips = "health.trips";
inline constexpr const char* kProbes = "health.probes";
inline constexpr const char* kReadmissions = "health.readmissions";
}  // namespace metric

class SiteHealthMonitor {
 public:
  /// Submits one probe job at `site`; `done(ok)` must fire exactly once.
  using ProbeSubmitter = std::function<void(
      const std::string& site, std::function<void(bool ok)> done)>;
  using TicketOpenFn = std::function<std::uint64_t(
      const std::string& site, const std::string& issue, Time now)>;
  using TicketCloseFn = std::function<void(std::uint64_t id, Time now)>;
  using SiteObserver = std::function<void(const std::string& site)>;

  explicit SiteHealthMonitor(sim::Simulation& sim, HealthConfig cfg = {})
      : sim_{sim}, cfg_{cfg} {}
  SiteHealthMonitor(const SiteHealthMonitor&) = delete;
  SiteHealthMonitor& operator=(const SiteHealthMonitor&) = delete;

  [[nodiscard]] const HealthConfig& config() const { return cfg_; }

  // --- wiring ---------------------------------------------------------
  /// Publish per-site trip/probe/readmission counters (site name is the
  /// bus key, so they plot next to that site's gatekeeper load).
  void set_metric_bus(monitoring::MetricBus* bus) { bus_ = bus; }
  /// Mirror breaker events into the ACDC database.
  void set_accounting(monitoring::JobDatabase* db) { accounting_ = db; }
  /// iGOC trouble-ticket hooks: a trip opens a ticket, re-admission
  /// closes it.
  void set_tickets(TicketOpenFn open, TicketCloseFn close) {
    ticket_open_ = std::move(open);
    ticket_close_ = std::move(close);
  }
  /// Probation probes (site-verify jobs).  Without one, half-open admits
  /// regular trial traffic and its outcomes decide re-admission.
  void set_probe_submitter(ProbeSubmitter submit) {
    probe_submitter_ = std::move(submit);
  }
  /// Observers fire on every trip / re-admission (the broker kicks its
  /// held jobs and returns quarantined gang leases from here).
  void on_trip(SiteObserver f) { trip_observers_.push_back(std::move(f)); }
  void on_readmit(SiteObserver f) {
    readmit_observers_.push_back(std::move(f));
  }
  /// Share an id registry (normally core::Grid3's, so health and the
  /// brokers agree on one site numbering).  Must be called before the
  /// first report; by default the monitor owns a private registry.
  void set_id_registry(std::shared_ptr<core::IdRegistry> ids) {
    assert(ids != nullptr);
    assert(breakers_.empty() &&
           "share the registry before breakers exist");
    ids_ = std::move(ids);
  }
  [[nodiscard]] const std::shared_ptr<core::IdRegistry>& id_registry() const {
    return ids_;
  }

  // --- feedback -------------------------------------------------------
  /// One service outcome at a site.  Failures push the (site, service)
  /// EWMA toward 1, successes decay it; a closed breaker trips when the
  /// score crosses the threshold with enough samples behind it.
  void report(const std::string& site, Service service, bool ok, Time now);

  /// Batch-layer feedback with fast-fail classification: a failed job
  /// that died within fast_fail_fraction of its requested walltime is
  /// the black-hole signature and scores as a kBatch failure; successes
  /// decay the score; slow failures (e.g. a genuine walltime kill) are
  /// not a batch-health signal.
  void report_batch(const std::string& site, bool ok, Time submitted,
                    Time finished, Time requested_walltime, Time now);

  // --- queries --------------------------------------------------------
  [[nodiscard]] BreakerState state(const std::string& site) const;
  [[nodiscard]] BreakerState state(core::SiteId site) const;
  /// True when the broker must exclude the site: open, or half-open
  /// while a probe submitter owns re-certification.
  [[nodiscard]] bool quarantined(const std::string& site) const;
  [[nodiscard]] bool quarantined(core::SiteId site) const;
  [[nodiscard]] double score(const std::string& site, Service service) const;
  [[nodiscard]] double score(core::SiteId site, Service service) const;

  [[nodiscard]] std::uint64_t trips() const { return trips_; }
  [[nodiscard]] std::uint64_t probes() const { return probes_; }
  [[nodiscard]] std::uint64_t readmissions() const { return readmissions_; }

  /// Every site a breaker exists for, sorted by name (model-checker
  /// introspection: the breaker invariant sweeps these for
  /// lost-quarantine states; the explicit sort preserves the order the
  /// old name-keyed map yielded for free).
  [[nodiscard]] std::vector<std::string> sites() const;
  [[nodiscard]] bool has_probe_submitter() const {
    return probe_submitter_ != nullptr;
  }

  [[nodiscard]] const std::vector<BreakerEvent>& events() const {
    return events_;
  }
  /// Canonical one-line-per-event rendering (byte-identical across runs
  /// with the same seed -- the determinism test diffs this).
  [[nodiscard]] std::string serialize_events() const;

  /// Quarantine intervals as Troubleshooter incident windows (closed ==
  /// Time::max() while still quarantined), so failure bursts correlate
  /// against breaker trips exactly like iGOC tickets.
  [[nodiscard]] std::vector<monitoring::IncidentWindow> quarantine_windows()
      const {
    return windows_;
  }

 private:
  struct ServiceScore {
    double ewma = 0.0;
    std::uint64_t samples = 0;
  };
  static constexpr std::size_t kNoWindow = static_cast<std::size_t>(-1);
  struct Breaker {
    BreakerState state = BreakerState::kClosed;
    std::array<ServiceScore, kServiceCount> scores;
    int streak = 0;  ///< consecutive trips without a re-admission
    int probe_successes = 0;
    /// Bumped on every transition; stale probe callbacks and half-open
    /// timers carry the epoch they were armed under and no-op on
    /// mismatch.
    std::uint64_t epoch = 0;
    std::uint64_t ticket = 0;             ///< open iGOC ticket (0 = none)
    std::size_t window = kNoWindow;       ///< open quarantine interval
    std::uint64_t trips = 0, probes = 0, readmissions = 0;
    bool live = false;  ///< a report has touched this site
  };

  /// Breaker slot for `site`, interning and growing the dense table.
  Breaker& breaker_for(const std::string& site);
  /// Existing breaker or null (no interning, no growth).
  [[nodiscard]] Breaker* find_breaker(const std::string& site);
  [[nodiscard]] const Breaker* find_breaker(core::SiteId site) const;

  void trip(const std::string& site, Breaker& b, const std::string& service,
            double score, Time now);
  void enter_half_open(const std::string& site, std::uint64_t epoch);
  void launch_probe(const std::string& site, std::uint64_t epoch);
  void on_probe(const std::string& site, std::uint64_t epoch, bool ok);
  void readmit(const std::string& site, Breaker& b, Time now);
  void record(const std::string& site, const std::string& event,
              const std::string& service, double score, Time now);
  void publish(const std::string& site, const char* name,
               std::uint64_t value, Time now);

  sim::Simulation& sim_;
  HealthConfig cfg_;
  monitoring::MetricBus* bus_ = nullptr;
  monitoring::JobDatabase* accounting_ = nullptr;
  TicketOpenFn ticket_open_;
  TicketCloseFn ticket_close_;
  ProbeSubmitter probe_submitter_;
  std::vector<SiteObserver> trip_observers_;
  std::vector<SiteObserver> readmit_observers_;

  /// Site interner (shared with core::Grid3 when attached there).
  std::shared_ptr<core::IdRegistry> ids_ =
      std::make_shared<core::IdRegistry>();
  /// Dense breaker table indexed by interned site id.  A deque so
  /// growth (a first report for a new site, possibly from inside an
  /// observer callback) never invalidates the Breaker& a caller holds.
  std::deque<Breaker> breakers_;
  std::vector<BreakerEvent> events_;
  std::vector<monitoring::IncidentWindow> windows_;
  std::uint64_t trips_ = 0;
  std::uint64_t probes_ = 0;
  std::uint64_t readmissions_ = 0;
};

}  // namespace grid3::health
