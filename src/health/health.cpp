#include "health/health.h"

#include <algorithm>
#include <cstdio>

namespace grid3::health {

const char* to_string(Service s) {
  switch (s) {
    case Service::kSubmit: return "submit";
    case Service::kBatch: return "batch";
    case Service::kTransfer: return "transfer";
    case Service::kStorage: return "storage";
  }
  return "?";
}

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

SiteHealthMonitor::Breaker& SiteHealthMonitor::breaker_for(
    const std::string& site) {
  const core::SiteId id = ids_->sites.intern(site);
  if (id.value() >= breakers_.size()) breakers_.resize(id.value() + 1);
  Breaker& b = breakers_[id.value()];
  b.live = true;
  return b;
}

SiteHealthMonitor::Breaker* SiteHealthMonitor::find_breaker(
    const std::string& site) {
  const core::SiteId id = ids_->sites.find(site);
  if (!id.valid() || id.value() >= breakers_.size()) return nullptr;
  Breaker& b = breakers_[id.value()];
  return b.live ? &b : nullptr;
}

const SiteHealthMonitor::Breaker* SiteHealthMonitor::find_breaker(
    core::SiteId site) const {
  if (!site.valid() || site.value() >= breakers_.size()) return nullptr;
  const Breaker& b = breakers_[site.value()];
  return b.live ? &b : nullptr;
}

void SiteHealthMonitor::report(const std::string& site, Service service,
                               bool ok, Time now) {
  Breaker& b = breaker_for(site);
  ServiceScore& s = b.scores[static_cast<std::size_t>(service)];
  s.ewma = (1.0 - cfg_.ewma_alpha) * s.ewma + cfg_.ewma_alpha * (ok ? 0.0 : 1.0);
  ++s.samples;
  switch (b.state) {
    case BreakerState::kClosed:
      if (!ok && s.samples >= static_cast<std::uint64_t>(cfg_.min_samples) &&
          s.ewma >= cfg_.trip_threshold) {
        trip(site, b, to_string(service), s.ewma, now);
      }
      break;
    case BreakerState::kHalfOpen:
      // With a probe submitter, probes own re-certification; stray
      // in-flight results from before the trip only update the scores.
      if (probe_submitter_) break;
      if (!ok) {
        trip(site, b, to_string(service), s.ewma, now);
      } else if (++b.probe_successes >= cfg_.probes_required) {
        readmit(site, b, now);
      }
      break;
    case BreakerState::kOpen:
      break;  // stragglers bound before the trip; nothing to decide
  }
}

void SiteHealthMonitor::report_batch(const std::string& site, bool ok,
                                     Time submitted, Time finished,
                                     Time requested_walltime, Time now) {
  if (ok) {
    report(site, Service::kBatch, true, now);
    return;
  }
  const double lived = (finished - submitted).to_seconds();
  const double requested = requested_walltime.to_seconds();
  if (requested <= 0.0 || lived < cfg_.fast_fail_fraction * requested) {
    report(site, Service::kBatch, false, now);
  }
}

void SiteHealthMonitor::trip(const std::string& site, Breaker& b,
                             const std::string& service, double score,
                             Time now) {
  b.state = BreakerState::kOpen;
  ++b.epoch;
  ++b.streak;
  ++b.trips;
  ++trips_;
  b.probe_successes = 0;
  record(site, "trip", service, score, now);
  publish(site, metric::kTrips, b.trips, now);
  if (b.ticket == 0 && ticket_open_) {
    b.ticket = ticket_open_(site, "quarantined: " + service +
                                      " failure rate tripped breaker",
                            now);
  }
  if (b.window == kNoWindow) {
    b.window = windows_.size();
    windows_.push_back({b.ticket != 0 ? b.ticket : trips_, site,
                        "site-quarantined", now, Time::max()});
  }
  // Escalating quarantine: base * escalation^(streak-1), capped.
  double q = cfg_.quarantine_base.to_seconds();
  for (int i = 1; i < b.streak; ++i) q *= cfg_.quarantine_escalation;
  q = std::min(q, cfg_.quarantine_cap.to_seconds());
  const std::uint64_t epoch = b.epoch;
  sim_.schedule_in(Time::seconds(q),
                   [this, site, epoch] { enter_half_open(site, epoch); });
  for (const auto& f : trip_observers_) f(site);
}

void SiteHealthMonitor::enter_half_open(const std::string& site,
                                        std::uint64_t epoch) {
  Breaker* found = find_breaker(site);
  if (found == nullptr) return;
  Breaker& b = *found;
  if (b.state != BreakerState::kOpen || b.epoch != epoch) return;
  b.state = BreakerState::kHalfOpen;
  b.probe_successes = 0;
  record(site, "half-open", "", 0.0, sim_.now());
  if (probe_submitter_) launch_probe(site, b.epoch);
}

void SiteHealthMonitor::launch_probe(const std::string& site,
                                     std::uint64_t epoch) {
  probe_submitter_(site, [this, site, epoch](bool ok) {
    on_probe(site, epoch, ok);
  });
}

void SiteHealthMonitor::on_probe(const std::string& site, std::uint64_t epoch,
                                 bool ok) {
  Breaker* found = find_breaker(site);
  if (found == nullptr) return;
  Breaker& b = *found;
  if (b.state != BreakerState::kHalfOpen || b.epoch != epoch) return;
  const Time now = sim_.now();
  ++b.probes;
  ++probes_;
  publish(site, metric::kProbes, b.probes, now);
  record(site, ok ? "probe-ok" : "probe-fail", "", 0.0, now);
  if (!ok) {
    // Probation failed: back to quarantine, escalated.
    trip(site, b, "probe", 1.0, now);
    return;
  }
  if (++b.probe_successes >= cfg_.probes_required) {
    readmit(site, b, now);
    return;
  }
  sim_.schedule_in(cfg_.probe_interval, [this, site, epoch] {
    const Breaker* again = find_breaker(site);
    if (again == nullptr || again->state != BreakerState::kHalfOpen ||
        again->epoch != epoch) {
      return;
    }
    launch_probe(site, epoch);
  });
}

void SiteHealthMonitor::readmit(const std::string& site, Breaker& b,
                                Time now) {
  b.state = BreakerState::kClosed;
  ++b.epoch;
  b.streak = 0;
  b.probe_successes = 0;
  // Fresh start: the repaired site must not re-trip on pre-repair
  // history the EWMA still remembers.
  for (ServiceScore& s : b.scores) s = {};
  ++b.readmissions;
  ++readmissions_;
  record(site, "readmit", "", 0.0, now);
  publish(site, metric::kReadmissions, b.readmissions, now);
  if (b.ticket != 0 && ticket_close_) {
    ticket_close_(b.ticket, now);
  }
  b.ticket = 0;
  if (b.window != kNoWindow) {
    windows_[b.window].closed = now;
    b.window = kNoWindow;
  }
  for (const auto& f : readmit_observers_) f(site);
}

BreakerState SiteHealthMonitor::state(const std::string& site) const {
  return state(ids_->sites.find(site));
}

BreakerState SiteHealthMonitor::state(core::SiteId site) const {
  const Breaker* b = find_breaker(site);
  return b == nullptr ? BreakerState::kClosed : b->state;
}

bool SiteHealthMonitor::quarantined(const std::string& site) const {
  return quarantined(ids_->sites.find(site));
}

bool SiteHealthMonitor::quarantined(core::SiteId site) const {
  const Breaker* b = find_breaker(site);
  if (b == nullptr) return false;
  switch (b->state) {
    case BreakerState::kOpen:
      return true;
    case BreakerState::kHalfOpen:
      // With a probe submitter the probes re-certify and production
      // traffic stays out; without one, trial traffic is the probe.
      return probe_submitter_ != nullptr;
    case BreakerState::kClosed:
      return false;
  }
  return false;
}

double SiteHealthMonitor::score(const std::string& site,
                                Service service) const {
  return score(ids_->sites.find(site), service);
}

double SiteHealthMonitor::score(core::SiteId site, Service service) const {
  const Breaker* b = find_breaker(site);
  if (b == nullptr) return 0.0;
  return b->scores[static_cast<std::size_t>(service)].ewma;
}

std::vector<std::string> SiteHealthMonitor::sites() const {
  std::vector<std::string> out;
  out.reserve(breakers_.size());
  for (std::size_t i = 0; i < breakers_.size(); ++i) {
    if (breakers_[i].live) {
      out.push_back(ids_->sites.name(core::SiteId{
          static_cast<std::uint32_t>(i)}));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void SiteHealthMonitor::record(const std::string& site,
                               const std::string& event,
                               const std::string& service, double score,
                               Time now) {
  BreakerEvent e;
  e.seq = static_cast<std::uint64_t>(events_.size()) + 1;
  e.at = now;
  e.site = site;
  e.event = event;
  e.service = service;
  e.score = score;
  if (accounting_ != nullptr) {
    accounting_->insert_breaker(
        {e.seq, e.at, e.site, e.event, e.service, e.score});
  }
  events_.push_back(std::move(e));
}

void SiteHealthMonitor::publish(const std::string& site, const char* name,
                                std::uint64_t value, Time now) {
  if (bus_ == nullptr) return;
  bus_->publish(site, name, now, static_cast<double>(value));
}

std::string SiteHealthMonitor::serialize_events() const {
  std::string out;
  out.reserve(events_.size() * 64);
  char buf[64];
  for (const BreakerEvent& e : events_) {
    out += std::to_string(e.seq);
    std::snprintf(buf, sizeof(buf), "|t=%.3f", e.at.to_seconds());
    out += buf;
    out += '|';
    out += e.site;
    out += '|';
    out += e.event;
    out += '|';
    out += e.service;
    std::snprintf(buf, sizeof(buf), "|score=%.6f\n", e.score);
    out += buf;
  }
  return out;
}

}  // namespace grid3::health
