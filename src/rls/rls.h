// Replica Location Service, after the Giggle framework (paper ref [18]).
//
// Two tiers: per-site Local Replica Catalogs (LRC) map logical file
// names to physical locations; Replica Location Indices (RLI) answer
// "which LRCs know this LFN".  LRCs push soft-state digests to their
// RLIs on a period, so the index can lag the catalogs -- consumers must
// tolerate a bounded staleness window, and the tests pin that behaviour.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace grid3::rls {

struct Replica {
  std::string pfn;  ///< physical file name: "gsiftp://<site>/<path>"
  Bytes size;
  Time registered;
};

/// Local Replica Catalog: authoritative per-site LFN -> PFN mappings.
class LocalReplicaCatalog {
 public:
  explicit LocalReplicaCatalog(std::string site) : site_{std::move(site)} {}

  [[nodiscard]] const std::string& site() const { return site_; }

  void add(const std::string& lfn, Replica replica);
  bool remove(const std::string& lfn, const std::string& pfn);
  /// Remove every mapping for an LFN; returns replicas removed.
  std::size_t remove_lfn(const std::string& lfn);

  [[nodiscard]] std::vector<Replica> lookup(const std::string& lfn) const;
  [[nodiscard]] bool has(const std::string& lfn) const;
  [[nodiscard]] std::size_t lfn_count() const { return map_.size(); }
  [[nodiscard]] std::size_t replica_count() const;

  /// All LFNs (digest payload for RLI soft-state updates).
  [[nodiscard]] std::vector<std::string> lfns() const;

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

 private:
  std::string site_;
  bool up_ = true;
  std::map<std::string, std::vector<Replica>> map_;
};

/// Replica Location Index: LFN -> set of LRC sites, fed by soft-state.
class ReplicaLocationIndex {
 public:
  explicit ReplicaLocationIndex(std::string name) : name_{std::move(name)} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Accept a full-state digest from one LRC (replaces that site's
  /// previous contribution).  Entries expire after `ttl` without refresh.
  void update_from(const LocalReplicaCatalog& lrc, Time now);

  /// Sites whose LRC advertised the LFN at last refresh and whose entry
  /// has not expired.
  [[nodiscard]] std::vector<std::string> sites_with(const std::string& lfn,
                                                    Time now) const;

  /// O(1)-ish membership: did `site` advertise `lfn` and is the entry
  /// still fresh?  The allocation-free form of sites_with for callers
  /// that test one site (rank policies probing data locality).
  [[nodiscard]] bool knows(const std::string& lfn, const std::string& site,
                           Time now) const;

  [[nodiscard]] Time ttl() const { return ttl_; }
  void set_ttl(Time ttl) { ttl_ = ttl; }

  [[nodiscard]] std::size_t indexed_lfns() const { return index_.size(); }

 private:
  std::string name_;
  Time ttl_ = Time::minutes(30);
  // lfn -> site -> last refresh time.  The outer index is unordered
  // (hot lookups hash once); the inner site map stays ordered so
  // sites_with keeps returning name-sorted sites.
  std::unordered_map<std::string, std::map<std::string, Time>> index_;
};

/// Convenience façade binding LRCs and an RLI into one service endpoint,
/// as the VOs deployed it (one RLS per VO).
class ReplicaLocationService {
 public:
  explicit ReplicaLocationService(std::string vo)
      : vo_{std::move(vo)}, rli_{vo_ + "-rli"} {}

  [[nodiscard]] const std::string& vo() const { return vo_; }

  LocalReplicaCatalog& lrc_for(const std::string& site);
  [[nodiscard]] const LocalReplicaCatalog* find_lrc(
      const std::string& site) const;

  /// Register a replica and immediately refresh that LRC's digest (Grid3
  /// registration scripts did both in one step).
  void register_replica(const std::string& site, const std::string& lfn,
                        Replica replica, Time now);

  /// Query: all replicas of an LFN across sites the RLI knows about.
  [[nodiscard]] std::vector<std::pair<std::string, Replica>> locate(
      const std::string& lfn, Time now) const;

  /// True iff locate(lfn, now) would list `site` -- the RLI entry is
  /// fresh AND the site's LRC still holds the mapping -- without
  /// materialising the replica list.
  [[nodiscard]] bool has_replica_at(const std::string& lfn,
                                    const std::string& site, Time now) const;

  /// Periodic soft-state refresh of every LRC digest.
  void refresh_all(Time now);

  [[nodiscard]] ReplicaLocationIndex& rli() { return rli_; }
  [[nodiscard]] const ReplicaLocationIndex& rli() const { return rli_; }
  [[nodiscard]] std::size_t lrc_count() const { return lrcs_.size(); }

 private:
  std::string vo_;
  std::map<std::string, LocalReplicaCatalog> lrcs_;
  ReplicaLocationIndex rli_;
};

}  // namespace grid3::rls
