// Replica Location Service, after the Giggle framework (paper ref [18]).
//
// Two tiers: per-site Local Replica Catalogs (LRC) map logical file
// names to physical locations; Replica Location Indices (RLI) answer
// "which LRCs know this LFN".  LRCs push soft-state digests to their
// RLIs on a period, so the index can lag the catalogs -- consumers must
// tolerate a bounded staleness window, and the tests pin that behaviour.
//
// Outage degradation: the service endpoint and the RLI each carry an
// availability flag.  Registrations attempted while the endpoint (or
// the target LRC) is down land in a per-VO write-ahead journal -- the
// intent is logged before the catalog write is attempted -- and are
// replayed exactly once on recovery; LRC::add upserts by PFN, so
// re-registration is idempotent.  Lookups during an RLI outage fall
// back to a direct scan of the authoritative LRCs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.h"

namespace grid3::rls {

struct Replica {
  std::string pfn;  ///< physical file name: "gsiftp://<site>/<path>"
  Bytes size;
  Time registered;
};

/// Local Replica Catalog: authoritative per-site LFN -> PFN mappings.
class LocalReplicaCatalog {
 public:
  explicit LocalReplicaCatalog(std::string site) : site_{std::move(site)} {}

  [[nodiscard]] const std::string& site() const { return site_; }

  void add(const std::string& lfn, Replica replica);
  bool remove(const std::string& lfn, const std::string& pfn);
  /// Remove every mapping for an LFN; returns replicas removed.
  std::size_t remove_lfn(const std::string& lfn);

  [[nodiscard]] std::vector<Replica> lookup(const std::string& lfn) const;
  [[nodiscard]] bool has(const std::string& lfn) const;
  [[nodiscard]] std::size_t lfn_count() const { return map_.size(); }
  [[nodiscard]] std::size_t replica_count() const;

  /// All LFNs (digest payload for RLI soft-state updates).
  [[nodiscard]] std::vector<std::string> lfns() const;

  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

 private:
  std::string site_;
  bool up_ = true;
  std::map<std::string, std::vector<Replica>> map_;
};

/// Replica Location Index: LFN -> set of LRC sites, fed by soft-state.
class ReplicaLocationIndex {
 public:
  explicit ReplicaLocationIndex(std::string name) : name_{std::move(name)} {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Accept a full-state digest from one LRC (replaces that site's
  /// previous contribution).  Entries expire after `ttl` without refresh.
  void update_from(const LocalReplicaCatalog& lrc, Time now);

  /// Sites whose LRC advertised the LFN at last refresh and whose entry
  /// has not expired.
  [[nodiscard]] std::vector<std::string> sites_with(const std::string& lfn,
                                                    Time now) const;

  /// O(1)-ish membership: did `site` advertise `lfn` and is the entry
  /// still fresh?  The allocation-free form of sites_with for callers
  /// that test one site (rank policies probing data locality).
  [[nodiscard]] bool knows(const std::string& lfn, const std::string& site,
                           Time now) const;

  [[nodiscard]] Time ttl() const { return ttl_; }
  void set_ttl(Time ttl) { ttl_ = ttl; }

  /// A down index answers nothing and drops incoming digests (soft
  /// state heals itself: the next refresh after recovery re-pushes the
  /// full catalog).
  void set_available(bool up) { up_ = up; }
  [[nodiscard]] bool available() const { return up_; }

  [[nodiscard]] std::size_t indexed_lfns() const { return index_.size(); }

 private:
  std::string name_;
  bool up_ = true;
  Time ttl_ = Time::minutes(30);
  // lfn -> site -> last refresh time.  The outer index is unordered
  // (hot lookups hash once); the inner site map stays ordered so
  // sites_with keeps returning name-sorted sites.
  std::unordered_map<std::string, std::map<std::string, Time>> index_;
};

/// One logged registration intent.  Write-ahead: the entry exists
/// before the catalog write is attempted, so a crash/outage between the
/// two loses nothing.
struct JournalEntry {
  std::uint64_t id = 0;  ///< monotone log order
  std::string site;
  std::string lfn;
  Replica replica;
  Time logged;
  bool applied = false;  ///< reached the authoritative LRC
};

/// Per-VO write-ahead journal for replica registrations.  Append-only;
/// an entry is applied exactly once (immediately when the service is
/// up, or by replay on recovery).  The audit tap exposes every
/// transition to the model checker's journal invariant.
class RegistrationJournal {
 public:
  /// Fires per transition with event "log", "apply" (immediate path)
  /// or "replay" (recovery path).
  using AuditFn = std::function<void(const JournalEntry&, const char* event)>;
  void set_audit(AuditFn fn) { audit_ = std::move(fn); }

  JournalEntry& log(std::string site, std::string lfn, Replica replica,
                    Time now);
  /// Flip an entry to applied (must not already be; the invariant's
  /// exactly-once guarantee rests here).
  void mark_applied(JournalEntry& e, const char* event);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  /// Entries logged but not yet applied (a down target is holding them).
  [[nodiscard]] std::size_t pending() const {
    return entries_.size() - applied_count_;
  }
  /// Entries applied via the recovery path.
  [[nodiscard]] std::size_t replayed() const { return replayed_; }
  [[nodiscard]] const std::vector<JournalEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::vector<JournalEntry>& entries() { return entries_; }

 private:
  std::vector<JournalEntry> entries_;
  std::uint64_t next_id_ = 0;
  std::size_t applied_count_ = 0;
  std::size_t replayed_ = 0;
  AuditFn audit_;
};

/// Convenience façade binding LRCs and an RLI into one service endpoint,
/// as the VOs deployed it (one RLS per VO).
class ReplicaLocationService {
 public:
  explicit ReplicaLocationService(std::string vo)
      : vo_{std::move(vo)}, rli_{vo_ + "-rli"} {}

  [[nodiscard]] const std::string& vo() const { return vo_; }

  LocalReplicaCatalog& lrc_for(const std::string& site);
  [[nodiscard]] const LocalReplicaCatalog* find_lrc(
      const std::string& site) const;

  /// Register a replica and immediately refresh that LRC's digest (Grid3
  /// registration scripts did both in one step).  The intent is journaled
  /// first; when the endpoint or the target LRC is down the entry stays
  /// pending and replay() applies it on recovery.  With the journal
  /// disabled (the naive baseline) such registrations are simply lost
  /// and counted.
  void register_replica(const std::string& site, const std::string& lfn,
                        Replica replica, Time now);

  /// Query: all replicas of an LFN across sites the RLI knows about.
  /// During an RLI outage, degrades to a direct scan of the
  /// authoritative LRCs (slower in real life; never wrong).
  [[nodiscard]] std::vector<std::pair<std::string, Replica>> locate(
      const std::string& lfn, Time now) const;

  /// True iff locate(lfn, now) would list `site` -- the RLI entry is
  /// fresh AND the site's LRC still holds the mapping -- without
  /// materialising the replica list.
  [[nodiscard]] bool has_replica_at(const std::string& lfn,
                                    const std::string& site, Time now) const;

  /// Periodic soft-state refresh of every LRC digest.  Also drains the
  /// journal first, so the standard ops loop doubles as the recovery
  /// replay trigger.
  void refresh_all(Time now);

  /// Apply every pending journal entry whose target LRC is reachable.
  /// Exactly-once: applied entries are skipped; idempotent because
  /// LRC::add upserts by PFN.  Returns entries applied.
  std::size_t replay(Time now);

  /// Registration-endpoint availability (the write path; queries keep
  /// answering from the RLI/LRCs).  Down -> registrations journal.
  void set_available(bool up) { available_ = up; }
  [[nodiscard]] bool available() const { return available_; }

  /// False = the naive pre-journal baseline: registrations against a
  /// down endpoint/LRC are dropped and counted in lost_registrations().
  void set_journal_enabled(bool on) { journal_enabled_ = on; }
  [[nodiscard]] bool journal_enabled() const { return journal_enabled_; }
  [[nodiscard]] std::size_t lost_registrations() const {
    return lost_registrations_;
  }

  [[nodiscard]] RegistrationJournal& journal() { return journal_; }
  [[nodiscard]] const RegistrationJournal& journal() const { return journal_; }

  [[nodiscard]] ReplicaLocationIndex& rli() { return rli_; }
  [[nodiscard]] const ReplicaLocationIndex& rli() const { return rli_; }
  [[nodiscard]] std::size_t lrc_count() const { return lrcs_.size(); }

 private:
  void apply(JournalEntry& e, Time now, const char* event);

  std::string vo_;
  bool available_ = true;
  bool journal_enabled_ = true;
  std::size_t lost_registrations_ = 0;
  std::map<std::string, LocalReplicaCatalog> lrcs_;
  ReplicaLocationIndex rli_;
  RegistrationJournal journal_;
};

}  // namespace grid3::rls
