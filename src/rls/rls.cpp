#include "rls/rls.h"

#include <algorithm>

namespace grid3::rls {

void LocalReplicaCatalog::add(const std::string& lfn, Replica replica) {
  auto& replicas = map_[lfn];
  auto it = std::find_if(replicas.begin(), replicas.end(),
                         [&](const Replica& r) { return r.pfn == replica.pfn; });
  if (it != replicas.end()) {
    *it = std::move(replica);
  } else {
    replicas.push_back(std::move(replica));
  }
}

bool LocalReplicaCatalog::remove(const std::string& lfn,
                                 const std::string& pfn) {
  auto it = map_.find(lfn);
  if (it == map_.end()) return false;
  auto& replicas = it->second;
  const auto before = replicas.size();
  replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                [&](const Replica& r) { return r.pfn == pfn; }),
                 replicas.end());
  const bool removed = replicas.size() != before;
  if (replicas.empty()) map_.erase(it);
  return removed;
}

std::size_t LocalReplicaCatalog::remove_lfn(const std::string& lfn) {
  auto it = map_.find(lfn);
  if (it == map_.end()) return 0;
  const std::size_t n = it->second.size();
  map_.erase(it);
  return n;
}

std::vector<Replica> LocalReplicaCatalog::lookup(const std::string& lfn) const {
  if (!up_) return {};
  auto it = map_.find(lfn);
  return it == map_.end() ? std::vector<Replica>{} : it->second;
}

bool LocalReplicaCatalog::has(const std::string& lfn) const {
  return up_ && map_.contains(lfn);
}

std::size_t LocalReplicaCatalog::replica_count() const {
  std::size_t n = 0;
  for (const auto& [lfn, replicas] : map_) n += replicas.size();
  return n;
}

std::vector<std::string> LocalReplicaCatalog::lfns() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [lfn, replicas] : map_) out.push_back(lfn);
  return out;
}

void ReplicaLocationIndex::update_from(const LocalReplicaCatalog& lrc,
                                       Time now) {
  // Full-state digest: wipe the site's old contribution, then re-add.
  for (auto it = index_.begin(); it != index_.end();) {
    it->second.erase(lrc.site());
    if (it->second.empty()) {
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  for (const std::string& lfn : lrc.lfns()) {
    index_[lfn][lrc.site()] = now;
  }
}

std::vector<std::string> ReplicaLocationIndex::sites_with(
    const std::string& lfn, Time now) const {
  std::vector<std::string> out;
  auto it = index_.find(lfn);
  if (it == index_.end()) return out;
  for (const auto& [site, refreshed] : it->second) {
    if (now - refreshed <= ttl_) out.push_back(site);
  }
  return out;
}

bool ReplicaLocationIndex::knows(const std::string& lfn,
                                 const std::string& site, Time now) const {
  auto it = index_.find(lfn);
  if (it == index_.end()) return false;
  auto jt = it->second.find(site);
  return jt != it->second.end() && now - jt->second <= ttl_;
}

LocalReplicaCatalog& ReplicaLocationService::lrc_for(const std::string& site) {
  auto it = lrcs_.find(site);
  if (it == lrcs_.end()) {
    it = lrcs_.emplace(site, LocalReplicaCatalog{site}).first;
  }
  return it->second;
}

const LocalReplicaCatalog* ReplicaLocationService::find_lrc(
    const std::string& site) const {
  auto it = lrcs_.find(site);
  return it == lrcs_.end() ? nullptr : &it->second;
}

void ReplicaLocationService::register_replica(const std::string& site,
                                              const std::string& lfn,
                                              Replica replica, Time now) {
  LocalReplicaCatalog& lrc = lrc_for(site);
  lrc.add(lfn, std::move(replica));
  rli_.update_from(lrc, now);
}

std::vector<std::pair<std::string, Replica>> ReplicaLocationService::locate(
    const std::string& lfn, Time now) const {
  std::vector<std::pair<std::string, Replica>> out;
  for (const std::string& site : rli_.sites_with(lfn, now)) {
    auto it = lrcs_.find(site);
    if (it == lrcs_.end()) continue;
    for (const Replica& r : it->second.lookup(lfn)) {
      out.emplace_back(site, r);
    }
  }
  return out;
}

bool ReplicaLocationService::has_replica_at(const std::string& lfn,
                                            const std::string& site,
                                            Time now) const {
  if (!rli_.knows(lfn, site, now)) return false;
  // Mirror locate()'s LRC check: a stale index entry whose catalog
  // dropped the mapping (or whose LRC is down) yields no replicas.
  const LocalReplicaCatalog* lrc = find_lrc(site);
  return lrc != nullptr && lrc->has(lfn);
}

void ReplicaLocationService::refresh_all(Time now) {
  for (auto& [site, lrc] : lrcs_) {
    if (lrc.available()) rli_.update_from(lrc, now);
  }
}

}  // namespace grid3::rls
