#include "rls/rls.h"

#include <algorithm>
#include <cassert>

namespace grid3::rls {

void LocalReplicaCatalog::add(const std::string& lfn, Replica replica) {
  auto& replicas = map_[lfn];
  auto it = std::find_if(replicas.begin(), replicas.end(),
                         [&](const Replica& r) { return r.pfn == replica.pfn; });
  if (it != replicas.end()) {
    *it = std::move(replica);
  } else {
    replicas.push_back(std::move(replica));
  }
}

bool LocalReplicaCatalog::remove(const std::string& lfn,
                                 const std::string& pfn) {
  auto it = map_.find(lfn);
  if (it == map_.end()) return false;
  auto& replicas = it->second;
  const auto before = replicas.size();
  replicas.erase(std::remove_if(replicas.begin(), replicas.end(),
                                [&](const Replica& r) { return r.pfn == pfn; }),
                 replicas.end());
  const bool removed = replicas.size() != before;
  if (replicas.empty()) map_.erase(it);
  return removed;
}

std::size_t LocalReplicaCatalog::remove_lfn(const std::string& lfn) {
  auto it = map_.find(lfn);
  if (it == map_.end()) return 0;
  const std::size_t n = it->second.size();
  map_.erase(it);
  return n;
}

std::vector<Replica> LocalReplicaCatalog::lookup(const std::string& lfn) const {
  if (!up_) return {};
  auto it = map_.find(lfn);
  return it == map_.end() ? std::vector<Replica>{} : it->second;
}

bool LocalReplicaCatalog::has(const std::string& lfn) const {
  return up_ && map_.contains(lfn);
}

std::size_t LocalReplicaCatalog::replica_count() const {
  std::size_t n = 0;
  for (const auto& [lfn, replicas] : map_) n += replicas.size();
  return n;
}

std::vector<std::string> LocalReplicaCatalog::lfns() const {
  std::vector<std::string> out;
  out.reserve(map_.size());
  for (const auto& [lfn, replicas] : map_) out.push_back(lfn);
  return out;
}

void ReplicaLocationIndex::update_from(const LocalReplicaCatalog& lrc,
                                       Time now) {
  if (!up_) return;  // a down index drops digests; soft state re-heals
  // Full-state digest: wipe the site's old contribution, then re-add.
  for (auto it = index_.begin(); it != index_.end();) {
    it->second.erase(lrc.site());
    if (it->second.empty()) {
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  for (const std::string& lfn : lrc.lfns()) {
    index_[lfn][lrc.site()] = now;
  }
}

std::vector<std::string> ReplicaLocationIndex::sites_with(
    const std::string& lfn, Time now) const {
  std::vector<std::string> out;
  if (!up_) return out;
  auto it = index_.find(lfn);
  if (it == index_.end()) return out;
  for (const auto& [site, refreshed] : it->second) {
    if (now - refreshed <= ttl_) out.push_back(site);
  }
  return out;
}

bool ReplicaLocationIndex::knows(const std::string& lfn,
                                 const std::string& site, Time now) const {
  if (!up_) return false;
  auto it = index_.find(lfn);
  if (it == index_.end()) return false;
  auto jt = it->second.find(site);
  return jt != it->second.end() && now - jt->second <= ttl_;
}

LocalReplicaCatalog& ReplicaLocationService::lrc_for(const std::string& site) {
  auto it = lrcs_.find(site);
  if (it == lrcs_.end()) {
    it = lrcs_.emplace(site, LocalReplicaCatalog{site}).first;
  }
  return it->second;
}

const LocalReplicaCatalog* ReplicaLocationService::find_lrc(
    const std::string& site) const {
  auto it = lrcs_.find(site);
  return it == lrcs_.end() ? nullptr : &it->second;
}

JournalEntry& RegistrationJournal::log(std::string site, std::string lfn,
                                       Replica replica, Time now) {
  JournalEntry e;
  e.id = ++next_id_;
  e.site = std::move(site);
  e.lfn = std::move(lfn);
  e.replica = std::move(replica);
  e.logged = now;
  entries_.push_back(std::move(e));
  JournalEntry& ref = entries_.back();
  if (audit_) audit_(ref, "log");
  return ref;
}

void RegistrationJournal::mark_applied(JournalEntry& e, const char* event) {
  assert(!e.applied && "journal entries are applied exactly once");
  e.applied = true;
  ++applied_count_;
  if (event != nullptr && event[0] == 'r') ++replayed_;
  if (audit_) audit_(e, event);
}

void ReplicaLocationService::apply(JournalEntry& e, Time now,
                                   const char* event) {
  LocalReplicaCatalog& lrc = lrc_for(e.site);
  lrc.add(e.lfn, e.replica);  // idempotent: upserts by PFN
  rli_.update_from(lrc, now);  // dropped while the RLI is down; the
                               // next refresh_all re-advertises it
  journal_.mark_applied(e, event);
}

void ReplicaLocationService::register_replica(const std::string& site,
                                              const std::string& lfn,
                                              Replica replica, Time now) {
  const bool reachable = available_ && lrc_for(site).available();
  if (journal_enabled_) {
    // Write-ahead: log the intent first, then attempt the write.  A
    // down endpoint or LRC leaves the entry pending for replay().
    JournalEntry& e = journal_.log(site, lfn, std::move(replica), now);
    if (reachable) apply(e, now, "apply");
    return;
  }
  // Naive baseline: the registration script fails against the down
  // service and the mapping is gone.
  if (!reachable) {
    ++lost_registrations_;
    return;
  }
  LocalReplicaCatalog& lrc = lrc_for(site);
  lrc.add(lfn, std::move(replica));
  rli_.update_from(lrc, now);
}

std::size_t ReplicaLocationService::replay(Time now) {
  if (!journal_enabled_ || !available_ || journal_.pending() == 0) return 0;
  std::size_t applied = 0;
  for (JournalEntry& e : journal_.entries()) {
    if (e.applied) continue;
    if (!lrc_for(e.site).available()) continue;  // still down: keep pending
    apply(e, now, "replay");
    ++applied;
  }
  return applied;
}

std::vector<std::pair<std::string, Replica>> ReplicaLocationService::locate(
    const std::string& lfn, Time now) const {
  std::vector<std::pair<std::string, Replica>> out;
  if (!rli_.available()) {
    // RLI outage: fall back to a direct scan of the authoritative LRCs
    // (the map is name-ordered, so results stay deterministic).
    for (const auto& [site, lrc] : lrcs_) {
      for (const Replica& r : lrc.lookup(lfn)) out.emplace_back(site, r);
    }
    return out;
  }
  for (const std::string& site : rli_.sites_with(lfn, now)) {
    auto it = lrcs_.find(site);
    if (it == lrcs_.end()) continue;
    for (const Replica& r : it->second.lookup(lfn)) {
      out.emplace_back(site, r);
    }
  }
  return out;
}

bool ReplicaLocationService::has_replica_at(const std::string& lfn,
                                            const std::string& site,
                                            Time now) const {
  if (!rli_.available()) {
    const LocalReplicaCatalog* lrc = find_lrc(site);
    return lrc != nullptr && lrc->has(lfn);
  }
  if (!rli_.knows(lfn, site, now)) return false;
  // Mirror locate()'s LRC check: a stale index entry whose catalog
  // dropped the mapping (or whose LRC is down) yields no replicas.
  const LocalReplicaCatalog* lrc = find_lrc(site);
  return lrc != nullptr && lrc->has(lfn);
}

void ReplicaLocationService::refresh_all(Time now) {
  // The ops loop doubles as the recovery replay trigger: pending
  // journal entries drain as soon as their targets are reachable again.
  replay(now);
  for (auto& [site, lrc] : lrcs_) {
    if (lrc.available()) rli_.update_from(lrc, now);
  }
}

}  // namespace grid3::rls
