// Unit tests for GridFTP: transfers, retries, disk-space races,
// NetLogger instrumentation.
#include <gtest/gtest.h>

#include <optional>

#include "gridftp/gridftp.h"
#include "gridftp/netlogger.h"
#include "net/network.h"
#include "sim/simulation.h"

namespace grid3::gridftp {
namespace {

class GridFtpTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  net::Network net{sim};
  NetLogger logger;
  GridFtpClient client{sim, net, &logger};

  net::NodeId node_a = net.add_node({"a", Bandwidth::mbps(100),
                                     Bandwidth::mbps(100), true});
  net::NodeId node_b = net.add_node({"b", Bandwidth::mbps(100),
                                     Bandwidth::mbps(100), true});
  GridFtpServer ftp_a{"a", node_a};
  GridFtpServer ftp_b{"b", node_b};
};

TEST_F(GridFtpTest, SuccessfulTransferAccountsBytes) {
  std::optional<TransferRecord> rec;
  TransferRequest req;
  req.src = &ftp_a;
  req.dst = &ftp_b;
  req.size = Bytes::mb(100);
  req.lfn = "test/file";
  client.transfer(std::move(req),
                  [&](const TransferRecord& r) { rec = r; });
  sim.run();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->ok());
  EXPECT_EQ(rec->transferred, Bytes::mb(100));
  EXPECT_EQ(ftp_a.bytes_out(), Bytes::mb(100));
  EXPECT_EQ(ftp_b.bytes_in(), Bytes::mb(100));
  EXPECT_EQ(ftp_b.transfers_in(), 1u);
  EXPECT_GT(rec->throughput().bps(), 0.0);
  EXPECT_EQ(client.completed(), 1u);
}

TEST_F(GridFtpTest, ServerDownFailsFast) {
  ftp_b.set_available(false);
  std::optional<TransferRecord> rec;
  TransferRequest req;
  req.src = &ftp_a;
  req.dst = &ftp_b;
  req.size = Bytes::mb(1);
  client.transfer(std::move(req),
                  [&](const TransferRecord& r) { rec = r; });
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, TransferStatus::kFailedServerDown);
  EXPECT_EQ(client.failed(), 1u);
}

TEST_F(GridFtpTest, RetriesThroughTransientOutage) {
  // Node goes down mid-transfer, comes back before retries exhaust.
  std::optional<TransferRecord> rec;
  TransferRequest req;
  req.src = &ftp_a;
  req.dst = &ftp_b;
  req.size = Bytes::gb(1);
  req.retry = {.base = Time::minutes(1), .max_retries = 3};
  client.transfer(std::move(req),
                  [&](const TransferRecord& r) { rec = r; });
  sim.schedule_at(Time::seconds(10), [&] { net.set_node_up(node_b, false); });
  sim.schedule_at(Time::seconds(30), [&] { net.set_node_up(node_b, true); });
  sim.run();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->ok());
  EXPECT_GT(rec->attempts, 1);
  EXPECT_GT(logger.count("transfer.retry"), 0u);
}

TEST_F(GridFtpTest, PermanentOutageExhaustsRetries) {
  std::optional<TransferRecord> rec;
  TransferRequest req;
  req.src = &ftp_a;
  req.dst = &ftp_b;
  req.size = Bytes::gb(1);
  req.retry = {.base = Time::minutes(1), .max_retries = 2};
  client.transfer(std::move(req),
                  [&](const TransferRecord& r) { rec = r; });
  sim.schedule_at(Time::seconds(5), [&] { net.set_node_up(node_b, false); });
  sim.run();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, TransferStatus::kFailedNetwork);
  EXPECT_EQ(rec->attempts, 3);  // 1 original + 2 retries
}

TEST_F(GridFtpTest, FullDestinationFailsFast) {
  srm::DiskVolume disk{"b:/data", Bytes::mb(10)};
  ASSERT_TRUE(disk.allocate(Bytes::mb(10)));
  std::optional<TransferRecord> rec;
  TransferRequest req;
  req.src = &ftp_a;
  req.dst = &ftp_b;
  req.size = Bytes::mb(5);
  req.dest_volume = &disk;
  client.transfer(std::move(req),
                  [&](const TransferRecord& r) { rec = r; });
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->status, TransferStatus::kFailedNoSpace);
}

TEST_F(GridFtpTest, ToctouRaceOverfillsWithoutSrm) {
  // Two concurrent transfers each pass the start-time free-space check;
  // only one can land -- the bare-GridFTP failure SRM prevents.
  srm::DiskVolume disk{"b:/data", Bytes::mb(120)};
  int ok = 0, no_space = 0;
  for (int i = 0; i < 2; ++i) {
    TransferRequest req;
    req.src = &ftp_a;
    req.dst = &ftp_b;
    req.size = Bytes::mb(100);
    req.dest_volume = &disk;
    client.transfer(std::move(req), [&](const TransferRecord& r) {
      if (r.ok()) {
        ++ok;
      } else if (r.status == TransferStatus::kFailedNoSpace) {
        ++no_space;
      }
    });
  }
  sim.run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(no_space, 1);
}

TEST_F(GridFtpTest, SrmReservationClosesTheRace) {
  srm::DiskVolume disk{"b:/data", Bytes::mb(250)};
  srm::StorageResourceManager se{"b-se", disk};
  int ok = 0;
  for (int i = 0; i < 2; ++i) {
    const auto res = se.reserve("uscms", Bytes::mb(100),
                                srm::SpaceType::kVolatile, sim.now());
    ASSERT_TRUE(res.has_value());
    TransferRequest req;
    req.src = &ftp_a;
    req.dst = &ftp_b;
    req.size = Bytes::mb(100);
    req.lfn = "file-" + std::to_string(i);
    req.dest_srm = &se;
    req.reservation = *res;
    client.transfer(std::move(req), [&](const TransferRecord& r) {
      if (r.ok()) ++ok;
    });
  }
  sim.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(se.pinned_files(), 2u);
}

TEST_F(GridFtpTest, NetLoggerRecordsStartEndError) {
  TransferRequest req;
  req.src = &ftp_a;
  req.dst = &ftp_b;
  req.size = Bytes::mb(10);
  client.transfer(std::move(req), {});
  sim.run();
  EXPECT_EQ(logger.count("transfer.start"), 1u);
  EXPECT_EQ(logger.count("transfer.end"), 1u);
  EXPECT_EQ(logger.count("transfer.error"), 0u);

  ftp_b.set_available(false);
  TransferRequest bad;
  bad.src = &ftp_a;
  bad.dst = &ftp_b;
  bad.size = Bytes::mb(10);
  client.transfer(std::move(bad), {});
  sim.run();
  EXPECT_EQ(logger.count("transfer.error"), 1u);
  const auto counts = logger.counts_by_event();
  EXPECT_EQ(counts.at("transfer.start"), 2u);
}

}  // namespace
}  // namespace grid3::gridftp
