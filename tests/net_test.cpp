// Unit tests for the WAN model: fair sharing, outages, routing policy.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/simulation.h"

namespace grid3::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Network net{sim};

  NodeId add(const std::string& name, double mbps,
             bool outbound = true) {
    return net.add_node(
        {name, Bandwidth::mbps(mbps), Bandwidth::mbps(mbps), outbound});
  }
};

TEST_F(NetTest, SingleFlowUsesBottleneck) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 50);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::mb(50), [&](const FlowResult& r) {
    result = r;
  });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  // 50 MB at 50 Mbps (6.25 MB/s) = 8 s.
  EXPECT_NEAR((result->finished - result->started).to_seconds(), 8.0, 0.1);
}

TEST_F(NetTest, TwoFlowsShareFairly) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const NodeId c = add("c", 100);
  // Two flows into b: each should get half of b's downlink.
  int done = 0;
  Time t1, t2;
  net.start_flow(a, b, Bytes::mb(25), [&](const FlowResult& r) {
    ++done;
    t1 = r.finished;
  });
  net.start_flow(c, b, Bytes::mb(25), [&](const FlowResult& r) {
    ++done;
    t2 = r.finished;
  });
  sim.run();
  EXPECT_EQ(done, 2);
  // 25 MB at 6.25 MB/s (half of 12.5) = 4 s.
  EXPECT_NEAR(t1.to_seconds(), 4.0, 0.2);
  EXPECT_NEAR(t2.to_seconds(), 4.0, 0.2);
}

TEST_F(NetTest, UnevenFlowsRedistribute) {
  // One small and one large flow into the same sink: after the small one
  // finishes, the large flow speeds up.
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const NodeId c = add("c", 100);
  Time small_done, large_done;
  net.start_flow(a, b, Bytes::mb(12.5),
                 [&](const FlowResult& r) { small_done = r.finished; });
  net.start_flow(c, b, Bytes::mb(37.5),
                 [&](const FlowResult& r) { large_done = r.finished; });
  sim.run();
  // Small: 12.5 MB at 6.25 MB/s = 2 s.  Large: 12.5 MB in the first 2 s,
  // then 25 MB at full 12.5 MB/s = 2 more seconds -> 4 s total.
  EXPECT_NEAR(small_done.to_seconds(), 2.0, 0.1);
  EXPECT_NEAR(large_done.to_seconds(), 4.0, 0.2);
}

TEST_F(NetTest, NodeOutageFailsFlows) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::gb(10), [&](const FlowResult& r) {
    result = r;
  });
  sim.schedule_at(Time::seconds(5), [&] { net.set_node_up(b, false); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, FlowStatus::kFailedNetworkInterruption);
  EXPECT_GT(result->transferred.count(), 0);
  EXPECT_LT(result->transferred, Bytes::gb(10));
}

TEST_F(NetTest, FlowToDownNodeFailsImmediately) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  net.set_node_up(b, false);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::mb(1), [&](const FlowResult& r) {
    result = r;
  });
  ASSERT_TRUE(result.has_value());  // synchronous failure
  EXPECT_EQ(result->status, FlowStatus::kFailedNetworkInterruption);
}

TEST_F(NetTest, BlockedRouteRefused) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  net.block_route(a, b);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::mb(1), [&](const FlowResult& r) {
    result = r;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, FlowStatus::kFailedNoRoute);
  net.unblock_route(a, b);
  EXPECT_TRUE(net.route_open(a, b));
}

TEST_F(NetTest, PrivateNodesCannotOpenOutbound) {
  const NodeId a = add("a", 100, /*outbound=*/false);
  const NodeId b = add("b", 100);
  EXPECT_FALSE(net.route_open(a, b));
  EXPECT_TRUE(net.route_open(b, a));  // inbound still fine
}

TEST_F(NetTest, ByteAccountingMatchesTransfers) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  net.start_flow(a, b, Bytes::mb(30), [](const FlowResult&) {});
  sim.run();
  EXPECT_NEAR(net.bytes_sent(a).to_mb(), 30.0, 0.5);
  EXPECT_NEAR(net.bytes_received(b).to_mb(), 30.0, 0.5);
  EXPECT_EQ(net.bytes_received(a), Bytes::zero());
}

TEST_F(NetTest, CancelFlowReportsCancelled) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  std::optional<FlowResult> result;
  const FlowId id = net.start_flow(a, b, Bytes::gb(100),
                                   [&](const FlowResult& r) { result = r; });
  sim.schedule_at(Time::seconds(1), [&] { net.cancel_flow(id); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, FlowStatus::kCancelled);
}

TEST_F(NetTest, RateQueriesReflectActiveFlows) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const FlowId id = net.start_flow(a, b, Bytes::gb(1), [](const FlowResult&) {});
  EXPECT_GT(net.flow_rate(id).bps(), 0.0);
  EXPECT_GT(net.rate_out(a).bps(), 0.0);
  EXPECT_GT(net.rate_in(b).bps(), 0.0);
  EXPECT_EQ(net.active_flows(), 1u);
  sim.run();
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(NetTest, ManyFlowsAllComplete) {
  const NodeId hub = add("hub", 1000);
  std::vector<NodeId> leaves;
  for (int i = 0; i < 10; ++i) {
    leaves.push_back(add("leaf" + std::to_string(i), 100));
  }
  int completed = 0;
  for (NodeId leaf : leaves) {
    net.start_flow(leaf, hub, Bytes::mb(10), [&](const FlowResult& r) {
      if (r.ok()) ++completed;
    });
  }
  sim.run();
  EXPECT_EQ(completed, 10);
}

// --- partial vs. full fair-share re-solve -----------------------------

/// Drives one deterministic churn scenario -- chained transfers in two
/// disjoint clusters plus a cross-cluster flow, mid-run cancels, and a
/// node outage -- and serialises every FlowResult byte-for-byte.
/// The partial (component-scoped) re-solve must reproduce the full
/// solver's log exactly: same rates, same completion ticks, same
/// failure classifications.
std::string churn_log(bool partial) {
  sim::Simulation sim;
  Network net{sim, {partial}};
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(net.add_node({"n" + std::to_string(i),
                                  Bandwidth::mbps(50 + 10 * i),
                                  Bandwidth::mbps(100), true}));
  }
  std::string log;
  const auto record = [&log](const FlowResult& r) {
    log += std::to_string(r.id) + ":" + to_string(r.status) + ":" +
           std::to_string(r.transferred.count()) + ":" +
           std::to_string(r.started.ticks()) + ":" +
           std::to_string(r.finished.ticks()) + "\n";
  };
  // Cluster A: chained transfers among nodes 0..3 (each completion
  // launches the next, so every completion triggers a re-solve).
  struct Chain {
    Network* net;
    const std::vector<NodeId>* nodes;
    const std::function<void(const FlowResult&)>* record;
    int next = 0;
    void launch() {
      if (next >= 6) return;
      const NodeId a = (*nodes)[static_cast<std::size_t>(next % 4)];
      const NodeId b = (*nodes)[static_cast<std::size_t>((next + 1) % 4)];
      ++next;
      net->start_flow(a, b, Bytes::mb(20), [this](const FlowResult& r) {
        (*record)(r);
        launch();
      });
    }
  };
  const std::function<void(const FlowResult&)> rec = record;
  Chain chain{&net, &nodes, &rec};
  chain.launch();
  // Cluster B: parallel transfers among nodes 4..7.
  for (int i = 0; i < 4; ++i) {
    net.start_flow(nodes[static_cast<std::size_t>(4 + i)],
                   nodes[static_cast<std::size_t>(4 + (i + 1) % 4)],
                   Bytes::mb(30), record);
  }
  // A cross-cluster flow merges the two components for a while.
  const FlowId cross =
      net.start_flow(nodes[1], nodes[5], Bytes::gb(1), record);
  // Mid-run churn: cancel the cross flow, then take a node down.
  sim.schedule_at(Time::seconds(3), [&] { net.cancel_flow(cross); });
  sim.schedule_at(Time::seconds(5), [&] { net.set_node_up(nodes[6], false); });
  sim.run();
  log += "rescheduled=" + std::to_string(net.completions_rescheduled()) +
         "\nsent=" + std::to_string(net.bytes_sent(nodes[1]).count()) +
         "\nreceived=" + std::to_string(net.bytes_received(nodes[5]).count()) +
         "\n";
  return log;
}

TEST(NetEquivalence, PartialResolveMatchesFullByteForByte) {
  const std::string full = churn_log(false);
  const std::string partial = churn_log(true);
  EXPECT_FALSE(full.empty());
  EXPECT_EQ(full, partial);
}

TEST_F(NetTest, PartialResolveScopesToComponent) {
  // Two disjoint pairs: a->b and c->d.  Starting a flow in one pair
  // must re-solve only that pair's two links under the partial solver.
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const NodeId c = add("c", 100);
  const NodeId d = add("d", 100);
  net.start_flow(a, b, Bytes::gb(1), [](const FlowResult&) {});
  const auto before = net.links_solved();
  net.start_flow(c, d, Bytes::gb(1), [](const FlowResult&) {});
  // The c->d start touches only c's uplink and d's downlink; a->b's
  // component is untouched.
  EXPECT_EQ(net.links_solved() - before, 2u);

  // The full solver re-solves every link with active flows (4 here).
  net.set_partial_reallocate(false);
  const auto before_full = net.links_solved();
  net.start_flow(a, d, Bytes::mb(1), [](const FlowResult&) {});
  EXPECT_GE(net.links_solved() - before_full, 4u);
}

}  // namespace
}  // namespace grid3::net
