// Unit tests for the WAN model: fair sharing, outages, routing policy.
#include <gtest/gtest.h>

#include <optional>

#include "net/network.h"
#include "sim/simulation.h"

namespace grid3::net {
namespace {

class NetTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  Network net{sim};

  NodeId add(const std::string& name, double mbps,
             bool outbound = true) {
    return net.add_node(
        {name, Bandwidth::mbps(mbps), Bandwidth::mbps(mbps), outbound});
  }
};

TEST_F(NetTest, SingleFlowUsesBottleneck) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 50);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::mb(50), [&](const FlowResult& r) {
    result = r;
  });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  // 50 MB at 50 Mbps (6.25 MB/s) = 8 s.
  EXPECT_NEAR((result->finished - result->started).to_seconds(), 8.0, 0.1);
}

TEST_F(NetTest, TwoFlowsShareFairly) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const NodeId c = add("c", 100);
  // Two flows into b: each should get half of b's downlink.
  int done = 0;
  Time t1, t2;
  net.start_flow(a, b, Bytes::mb(25), [&](const FlowResult& r) {
    ++done;
    t1 = r.finished;
  });
  net.start_flow(c, b, Bytes::mb(25), [&](const FlowResult& r) {
    ++done;
    t2 = r.finished;
  });
  sim.run();
  EXPECT_EQ(done, 2);
  // 25 MB at 6.25 MB/s (half of 12.5) = 4 s.
  EXPECT_NEAR(t1.to_seconds(), 4.0, 0.2);
  EXPECT_NEAR(t2.to_seconds(), 4.0, 0.2);
}

TEST_F(NetTest, UnevenFlowsRedistribute) {
  // One small and one large flow into the same sink: after the small one
  // finishes, the large flow speeds up.
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const NodeId c = add("c", 100);
  Time small_done, large_done;
  net.start_flow(a, b, Bytes::mb(12.5),
                 [&](const FlowResult& r) { small_done = r.finished; });
  net.start_flow(c, b, Bytes::mb(37.5),
                 [&](const FlowResult& r) { large_done = r.finished; });
  sim.run();
  // Small: 12.5 MB at 6.25 MB/s = 2 s.  Large: 12.5 MB in the first 2 s,
  // then 25 MB at full 12.5 MB/s = 2 more seconds -> 4 s total.
  EXPECT_NEAR(small_done.to_seconds(), 2.0, 0.1);
  EXPECT_NEAR(large_done.to_seconds(), 4.0, 0.2);
}

TEST_F(NetTest, NodeOutageFailsFlows) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::gb(10), [&](const FlowResult& r) {
    result = r;
  });
  sim.schedule_at(Time::seconds(5), [&] { net.set_node_up(b, false); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, FlowStatus::kFailedNetworkInterruption);
  EXPECT_GT(result->transferred.count(), 0);
  EXPECT_LT(result->transferred, Bytes::gb(10));
}

TEST_F(NetTest, FlowToDownNodeFailsImmediately) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  net.set_node_up(b, false);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::mb(1), [&](const FlowResult& r) {
    result = r;
  });
  ASSERT_TRUE(result.has_value());  // synchronous failure
  EXPECT_EQ(result->status, FlowStatus::kFailedNetworkInterruption);
}

TEST_F(NetTest, BlockedRouteRefused) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  net.block_route(a, b);
  std::optional<FlowResult> result;
  net.start_flow(a, b, Bytes::mb(1), [&](const FlowResult& r) {
    result = r;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, FlowStatus::kFailedNoRoute);
  net.unblock_route(a, b);
  EXPECT_TRUE(net.route_open(a, b));
}

TEST_F(NetTest, PrivateNodesCannotOpenOutbound) {
  const NodeId a = add("a", 100, /*outbound=*/false);
  const NodeId b = add("b", 100);
  EXPECT_FALSE(net.route_open(a, b));
  EXPECT_TRUE(net.route_open(b, a));  // inbound still fine
}

TEST_F(NetTest, ByteAccountingMatchesTransfers) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  net.start_flow(a, b, Bytes::mb(30), [](const FlowResult&) {});
  sim.run();
  EXPECT_NEAR(net.bytes_sent(a).to_mb(), 30.0, 0.5);
  EXPECT_NEAR(net.bytes_received(b).to_mb(), 30.0, 0.5);
  EXPECT_EQ(net.bytes_received(a), Bytes::zero());
}

TEST_F(NetTest, CancelFlowReportsCancelled) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  std::optional<FlowResult> result;
  const FlowId id = net.start_flow(a, b, Bytes::gb(100),
                                   [&](const FlowResult& r) { result = r; });
  sim.schedule_at(Time::seconds(1), [&] { net.cancel_flow(id); });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, FlowStatus::kCancelled);
}

TEST_F(NetTest, RateQueriesReflectActiveFlows) {
  const NodeId a = add("a", 100);
  const NodeId b = add("b", 100);
  const FlowId id = net.start_flow(a, b, Bytes::gb(1), [](const FlowResult&) {});
  EXPECT_GT(net.flow_rate(id).bps(), 0.0);
  EXPECT_GT(net.rate_out(a).bps(), 0.0);
  EXPECT_GT(net.rate_in(b).bps(), 0.0);
  EXPECT_EQ(net.active_flows(), 1u);
  sim.run();
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(NetTest, ManyFlowsAllComplete) {
  const NodeId hub = add("hub", 1000);
  std::vector<NodeId> leaves;
  for (int i = 0; i < 10; ++i) {
    leaves.push_back(add("leaf" + std::to_string(i), 100));
  }
  int completed = 0;
  for (NodeId leaf : leaves) {
    net.start_flow(leaf, hub, Bytes::mb(10), [&](const FlowResult& r) {
      if (r.ok()) ++completed;
    });
  }
  sim.run();
  EXPECT_EQ(completed, 10);
}

}  // namespace
}  // namespace grid3::net
