// Unit tests for the monitoring framework: metric bus, Ganglia,
// MonALISA repository, ACDC job DB / Table 1 queries, site catalog,
// MDViewer figures.
#include <gtest/gtest.h>

#include "monitoring/acdc.h"
#include "monitoring/bus.h"
#include "monitoring/ganglia.h"
#include "monitoring/mdviewer.h"
#include "monitoring/monalisa.h"
#include "monitoring/site_catalog.h"

namespace grid3::monitoring {
namespace {

TEST(MetricBus, PublishLatestSeries) {
  MetricBus bus;
  bus.publish("BNL", "m", Time::seconds(1), 10.0);
  bus.publish("BNL", "m", Time::seconds(2), 20.0);
  const auto latest = bus.latest("BNL", "m");
  ASSERT_TRUE(latest.has_value());
  EXPECT_DOUBLE_EQ(latest->value, 20.0);
  EXPECT_EQ(bus.series("BNL", "m").size(), 2u);
  EXPECT_TRUE(bus.series("BNL", "other").empty());
  EXPECT_EQ(bus.published(), 2u);
}

TEST(MetricBus, SubscriptionExactAndWildcards) {
  MetricBus bus;
  int exact = 0, any_site = 0, prefix = 0;
  bus.subscribe("BNL", "m.x",
                [&](const MetricKey&, Time, double) { ++exact; });
  bus.subscribe("*", "m.x",
                [&](const MetricKey&, Time, double) { ++any_site; });
  bus.subscribe("*", "m.*",
                [&](const MetricKey&, Time, double) { ++prefix; });
  bus.publish("BNL", "m.x", Time::zero(), 1.0);
  bus.publish("FNAL", "m.x", Time::zero(), 1.0);
  bus.publish("BNL", "m.y", Time::zero(), 1.0);
  EXPECT_EQ(exact, 1);
  EXPECT_EQ(any_site, 2);
  EXPECT_EQ(prefix, 3);
}

TEST(MetricBus, UnsubscribeStopsDelivery) {
  MetricBus bus;
  int calls = 0;
  const auto id =
      bus.subscribe("*", "m", [&](const MetricKey&, Time, double) { ++calls; });
  bus.publish("a", "m", Time::zero(), 1.0);
  bus.unsubscribe(id);
  bus.publish("a", "m", Time::zero(), 1.0);
  EXPECT_EQ(calls, 1);
}

TEST(Ganglia, GmondPublishesAllMetrics) {
  MetricBus bus;
  GangliaGmond gmond{"BNL", bus, [] {
                       HostMetrics m;
                       m.cpus_total = 360;
                       m.cpus_busy = 100;
                       m.load_one = 3.2;
                       m.disk_free_gb = 500.0;
                       return m;
                     }};
  gmond.sample(Time::minutes(5));
  EXPECT_EQ(bus.latest("BNL", gmetric::kCpusTotal)->value, 360.0);
  EXPECT_EQ(bus.latest("BNL", gmetric::kCpusBusy)->value, 100.0);
  EXPECT_TRUE(bus.latest("BNL", gmetric::kHeartbeat).has_value());
  gmond.set_available(false);
  gmond.sample(Time::minutes(10));
  EXPECT_EQ(gmond.samples(), 1u);  // down daemon samples nothing
}

TEST(Ganglia, GmetadAggregatesAndFlagsStaleSites) {
  MetricBus bus;
  GangliaGmond a{"A", bus, [] {
                   HostMetrics m;
                   m.cpus_total = 100;
                   m.cpus_busy = 40;
                   return m;
                 }};
  GangliaGmond b{"B", bus, [] {
                   HostMetrics m;
                   m.cpus_total = 50;
                   m.cpus_busy = 10;
                   return m;
                 }};
  a.sample(Time::minutes(0));
  b.sample(Time::minutes(0));
  GangliaGmetad gmetad{bus, Time::minutes(10)};
  auto s = gmetad.summarize(Time::minutes(5));
  EXPECT_EQ(s.sites_reporting, 2);
  EXPECT_EQ(s.cpus_total, 150);
  EXPECT_EQ(s.cpus_busy, 50);
  // Only A keeps reporting; B goes stale.
  a.sample(Time::minutes(20));
  s = gmetad.summarize(Time::minutes(25));
  EXPECT_EQ(s.sites_reporting, 1);
  ASSERT_EQ(s.missing_sites.size(), 1u);
  EXPECT_EQ(s.missing_sites[0], "B");
}

TEST(Monalisa, RepositoryArchivesPrefixMetrics) {
  MetricBus bus;
  MonalisaRepository repo{bus};
  MonalisaAgent agent{"BNL", bus};
  agent.report(vo_metric(mlmetric::kVoJobsRunning, "usatlas"),
               Time::minutes(1), 42.0);
  agent.report(mlmetric::kGatekeeperLoad, Time::minutes(1), 200.0);
  bus.publish("BNL", "ganglia.load_one", Time::minutes(1), 1.0);  // ignored
  EXPECT_EQ(repo.archived_keys(), 2u);
  const auto v = repo.read(
      "BNL", vo_metric(mlmetric::kVoJobsRunning, "usatlas"), Time::minutes(2));
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 42.0);
}

TEST(Monalisa, GridTotalSumsSites) {
  MetricBus bus;
  MonalisaRepository repo{bus};
  MonalisaAgent a{"A", bus};
  MonalisaAgent b{"B", bus};
  a.report(mlmetric::kGatekeeperLoad, Time::minutes(1), 100.0);
  b.report(mlmetric::kGatekeeperLoad, Time::minutes(2), 50.0);
  EXPECT_DOUBLE_EQ(repo.grid_total(mlmetric::kGatekeeperLoad,
                                   Time::minutes(3)),
                   150.0);
}

TEST(Monalisa, DownAgentReportsNothing) {
  MetricBus bus;
  MonalisaAgent agent{"BNL", bus};
  agent.set_available(false);
  agent.report(mlmetric::kIoMbps, Time::zero(), 5.0);
  EXPECT_EQ(agent.reports(), 0u);
  EXPECT_EQ(bus.published(), 0u);
}

JobRecord make_job(const std::string& vo, const std::string& site,
                   const std::string& user, double start_day,
                   double runtime_h, bool success = true) {
  JobRecord r;
  r.vo = vo;
  r.site = site;
  r.user_dn = user;
  r.app = "app";
  r.submitted = Time::days(start_day);
  r.started = Time::days(start_day);
  r.finished = Time::days(start_day) + Time::hours(runtime_h);
  r.success = success;
  return r;
}

TEST(JobDatabase, Table1StatsColumns) {
  JobDatabase db;
  // Two jobs in Nov 2003 (days 31..60) at site X, one in Dec at Y.
  db.insert(make_job("usatlas", "X", "/CN=a", 35, 10.0));
  db.insert(make_job("usatlas", "X", "/CN=b", 40, 6.0));
  db.insert(make_job("usatlas", "Y", "/CN=a", 70, 2.0));
  db.insert(make_job("uscms", "Z", "/CN=c", 40, 40.0));  // other VO
  const auto s = db.stats_for("usatlas", Time::zero(), Time::days(365));
  EXPECT_EQ(s.jobs, 3u);
  EXPECT_EQ(s.users, 2u);
  EXPECT_EQ(s.sites_used, 2u);
  EXPECT_NEAR(s.avg_runtime_hours, 6.0, 1e-9);
  EXPECT_NEAR(s.max_runtime_hours, 10.0, 1e-9);
  EXPECT_NEAR(s.total_cpu_days, 18.0 / 24.0, 1e-9);
  EXPECT_EQ(s.peak_rate_jobs_per_month, 2u);
  EXPECT_EQ(s.peak_month, "11-2003");
  EXPECT_EQ(s.peak_resources, 1u);
  EXPECT_EQ(s.max_single_resource_jobs, 2u);
  EXPECT_NEAR(s.max_single_resource_percent, 100.0, 1e-9);
}

TEST(JobDatabase, FailedJobsExcludedFromStats) {
  JobDatabase db;
  db.insert(make_job("ligo", "X", "/CN=a", 5, 1.0, false));
  const auto s = db.stats_for("ligo", Time::zero(), Time::days(365));
  EXPECT_EQ(s.jobs, 0u);
}

TEST(JobDatabase, FailureSummaryAttribution) {
  JobDatabase db;
  db.insert(make_job("usatlas", "X", "/CN=a", 5, 1.0, true));
  auto bad = make_job("usatlas", "X", "/CN=a", 6, 1.0, false);
  bad.site_problem = true;
  bad.failure = "disk-full";
  db.insert(bad);
  auto bad2 = make_job("usatlas", "X", "/CN=a", 7, 1.0, false);
  bad2.site_problem = false;
  bad2.failure = "authentication-failed";
  db.insert(bad2);
  const auto f = db.failures("usatlas", Time::zero(), Time::days(30));
  EXPECT_EQ(f.total, 3u);
  EXPECT_EQ(f.failed, 2u);
  EXPECT_EQ(f.site_problem, 1u);
  EXPECT_NEAR(f.failure_rate(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.site_problem_share(), 0.5, 1e-9);
  EXPECT_EQ(f.by_class.at("disk-full"), 1u);
}

TEST(JobDatabase, JobsByMonthHistogram) {
  JobDatabase db;
  db.insert(make_job("a", "X", "/CN=a", 5, 1.0));    // Oct 2003
  db.insert(make_job("a", "X", "/CN=a", 40, 1.0));   // Nov
  db.insert(make_job("a", "X", "/CN=a", 45, 1.0));   // Nov
  db.insert(make_job("a", "X", "/CN=a", 100, 1.0));  // Jan 2004
  const auto hist = db.jobs_by_month(7);
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 0u);
  EXPECT_EQ(hist[3], 1u);
}

TEST(JobDatabase, TransferAccountingByVoAndSite) {
  JobDatabase db;
  db.insert_transfer({"A", "B", "ivdgl", Bytes::tb(1), Time::days(1), true});
  db.insert_transfer({"A", "C", "uscms", Bytes::gb(500), Time::days(2),
                      false});
  const auto by_vo = db.bytes_consumed_by_vo(Time::zero(), Time::days(10));
  EXPECT_EQ(by_vo.at("ivdgl").first, Bytes::tb(1));
  EXPECT_EQ(by_vo.at("ivdgl").second, Bytes::tb(1));  // demo traffic
  EXPECT_EQ(by_vo.at("uscms").second, Bytes::zero());
  const auto by_site = db.bytes_consumed_by_site(Time::zero(), Time::days(10));
  EXPECT_EQ(by_site.at("B"), Bytes::tb(1));
  EXPECT_EQ(by_site.at("C"), Bytes::gb(500));
}

TEST(SiteCatalog, StatusDerivation) {
  SiteStatusCatalog catalog;
  bool gatekeeper_ok = true;
  catalog.register_site("X", "Somewhere U.", [&] {
    return std::vector<ProbeResult>{{"gk", gatekeeper_ok}, {"ftp", true}};
  });
  catalog.run_sweep(Time::minutes(30));
  EXPECT_EQ(catalog.status("X"), SiteStatus::kPass);
  gatekeeper_ok = false;
  const auto changed = catalog.run_sweep(Time::minutes(60));
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(catalog.status("X"), SiteStatus::kDegraded);
  EXPECT_EQ(catalog.count(SiteStatus::kDegraded), 1u);
  const SiteEntry* entry = catalog.entry("X");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->last_tested, Time::minutes(60));
  EXPECT_EQ(entry->location, "Somewhere U.");
}

TEST(SiteCatalog, AllFailingProbesMeanFail) {
  SiteStatusCatalog catalog;
  catalog.register_site("Y", "loc", [] {
    return std::vector<ProbeResult>{{"a", false}, {"b", false}};
  });
  catalog.run_sweep(Time::zero());
  EXPECT_EQ(catalog.status("Y"), SiteStatus::kFail);
  catalog.deregister_site("Y");
  EXPECT_EQ(catalog.status("Y"), SiteStatus::kUnknown);
}

TEST(MdViewer, IntegratedCpuDaysByVo) {
  JobDatabase db;
  db.insert(make_job("uscms", "X", "/CN=a", 1, 48.0));   // 2 CPU-days
  db.insert(make_job("usatlas", "Y", "/CN=b", 2, 24.0)); // 1 CPU-day
  MetricBus bus;
  MdViewer viewer{db, bus};
  const auto fig2 =
      viewer.integrated_cpu_days_by_vo(Time::zero(), Time::days(30));
  ASSERT_EQ(fig2.size(), 2u);
  EXPECT_EQ(fig2[0].first, "uscms");  // sorted descending
  EXPECT_NEAR(fig2[0].second, 2.0, 1e-9);
  EXPECT_NEAR(fig2[1].second, 1.0, 1e-9);
}

TEST(MdViewer, WindowClipsPartialOverlap) {
  JobDatabase db;
  // Runs days 1..3; window covers only day 2 -> 1 CPU-day counted.
  db.insert(make_job("sdss", "X", "/CN=a", 1, 48.0));
  MetricBus bus;
  MdViewer viewer{db, bus};
  const auto fig2 =
      viewer.integrated_cpu_days_by_vo(Time::days(2), Time::days(3));
  ASSERT_EQ(fig2.size(), 1u);
  EXPECT_NEAR(fig2[0].second, 1.0, 1e-9);
}

TEST(MdViewer, ConcurrencyAndPeak) {
  JobDatabase db;
  db.insert(make_job("a", "X", "/CN=a", 1.0, 24.0));
  db.insert(make_job("a", "X", "/CN=a", 1.5, 24.0));
  db.insert(make_job("a", "X", "/CN=a", 1.7, 4.8));
  MetricBus bus;
  MdViewer viewer{db, bus};
  EXPECT_DOUBLE_EQ(viewer.peak_concurrent_jobs(Time::zero(), Time::days(5)),
                   3.0);
}

TEST(MdViewer, CrosscheckDivergenceNearZeroWhenPathsAgree) {
  JobDatabase db;
  // One job busy the whole window.
  db.insert(make_job("a", "X", "/CN=a", 0.0, 240.0));
  MetricBus bus;
  // The MonALISA VO-activity path reports 1 running job too.
  bus.publish("X", "monalisa.vo_jobs_running.a", Time::zero(), 1.0);
  bus.publish("X", gmetric::kCpusBusy, Time::zero(), 1.0);
  bus.publish("X", gmetric::kCpusTotal, Time::zero(), 10.0);
  MdViewer viewer{db, bus};
  EXPECT_LT(viewer.crosscheck_divergence(Time::zero(), Time::days(10)), 0.05);
  EXPECT_NEAR(viewer.utilization_from_ganglia(Time::zero(), Time::days(10)),
              0.1, 1e-9);
}

TEST(MdViewer, CrosscheckDetectsLostPath) {
  JobDatabase db;
  db.insert(make_job("a", "X", "/CN=a", 0.0, 240.0));
  MetricBus bus;
  // The MonALISA agent wedged: reports zero running jobs.
  bus.publish("X", "monalisa.vo_jobs_running.a", Time::zero(), 0.0);
  MdViewer viewer{db, bus};
  EXPECT_GT(viewer.crosscheck_divergence(Time::zero(), Time::days(10)), 0.9);
}

}  // namespace
}  // namespace grid3::monitoring
