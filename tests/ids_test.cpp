// Unit tests for the interned-id layer (core/ids.h): stable
// registration-order numbering, typed-id safety, dense id maps, and
// bitset membership -- the invariants every converted hot path relies
// on for byte-identical determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ids.h"

namespace grid3::core {
namespace {

TEST(Interner, AssignsDenseIdsInFirstSeenOrder) {
  Interner<SiteId> sites;
  const SiteId bnl = sites.intern("BNL_ATLAS");
  const SiteId fnal = sites.intern("FNAL_CMS");
  const SiteId uc = sites.intern("UC_ATLAS");
  EXPECT_EQ(bnl.value(), 0u);
  EXPECT_EQ(fnal.value(), 1u);
  EXPECT_EQ(uc.value(), 2u);
  // Registration order, not name order.
  EXPECT_EQ(sites.names(),
            (std::vector<std::string>{"BNL_ATLAS", "FNAL_CMS", "UC_ATLAS"}));
}

TEST(Interner, ReinterningIsIdempotent) {
  Interner<SiteId> sites;
  const SiteId first = sites.intern("BNL_ATLAS");
  (void)sites.intern("FNAL_CMS");
  // Interning again -- e.g. a rescue-DAG refresh re-walking its
  // candidate lists -- must return the original id, never renumber.
  EXPECT_EQ(sites.intern("BNL_ATLAS"), first);
  EXPECT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites.name(first), "BNL_ATLAS");
}

TEST(Interner, FindDoesNotRegister) {
  Interner<SiteId> sites;
  EXPECT_FALSE(sites.find("UNSEEN").valid());
  EXPECT_FALSE(sites.contains("UNSEEN"));
  EXPECT_EQ(sites.size(), 0u);
  const SiteId id = sites.intern("SEEN");
  EXPECT_EQ(sites.find("SEEN"), id);
  EXPECT_TRUE(sites.contains("SEEN"));
}

TEST(Interner, IdsStableAcrossUnrelatedGrowth) {
  // The health monitor and broker hold ids across view refreshes that
  // intern new sites; earlier ids and names must not move.
  Interner<SiteId> sites;
  std::vector<SiteId> first;
  for (int i = 0; i < 8; ++i) {
    first.push_back(sites.intern("site-" + std::to_string(i)));
  }
  for (int i = 100; i < 200; ++i) {
    (void)sites.intern("late-" + std::to_string(i));
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(sites.find("site-" + std::to_string(i)), first[i]);
    EXPECT_EQ(sites.name(first[i]), "site-" + std::to_string(i));
  }
}

TEST(InternedId, DefaultIsInvalid) {
  SiteId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SiteId::invalid());
  EXPECT_TRUE(SiteId{0}.valid());
  EXPECT_LT(SiteId{0}, SiteId{1});
}

TEST(IdMap, GrowsOnWriteAndDefaultsOnMiss) {
  Interner<SiteId> sites;
  IdMap<SiteId, int> inflight;
  const SiteId a = sites.intern("A");
  const SiteId b = sites.intern("B");
  EXPECT_EQ(inflight.get(a, 0), 0);      // never written
  EXPECT_EQ(inflight.get(SiteId{}, 7), 7);  // invalid id -> fallback
  ++inflight.at_or_grow(b);
  EXPECT_EQ(inflight.get(b, 0), 1);
  EXPECT_EQ(inflight.get(a, 0), 0);  // untouched neighbour stays default
  ASSERT_NE(inflight.find(b), nullptr);
  EXPECT_EQ(*inflight.find(b), 1);
  // Ids beyond the grown range are absent, not materialized.
  const SiteId c = sites.intern("C");
  EXPECT_EQ(inflight.find(c), nullptr);
  EXPECT_EQ(inflight.get(c, 9), 9);
}

TEST(IdBitset, MembershipMatchesSetHistory) {
  Interner<SiteId> sites;
  IdBitset bits;
  EXPECT_TRUE(bits.empty());
  const SiteId a = sites.intern("A");
  const SiteId far = sites.intern("FAR");
  bits.set(a);
  bits.set(200u);  // beyond the first word
  EXPECT_TRUE(bits.test(a));
  EXPECT_FALSE(bits.test(far));
  EXPECT_TRUE(bits.test(200u));
  EXPECT_FALSE(bits.test(SiteId{}));  // invalid id is never a member
  EXPECT_EQ(bits.count(), 2u);
  EXPECT_FALSE(bits.empty());
  bits.clear();
  EXPECT_TRUE(bits.empty());
  EXPECT_FALSE(bits.test(a));
}

TEST(IdRegistry, TypedInternersAreIndependent) {
  IdRegistry reg;
  const SiteId site = reg.sites.intern("BNL_ATLAS");
  const VoId vo = reg.vos.intern("usatlas");
  const ServiceId svc = reg.services.intern("gram");
  // Same numeric values, distinct namespaces.
  EXPECT_EQ(site.value(), 0u);
  EXPECT_EQ(vo.value(), 0u);
  EXPECT_EQ(svc.value(), 0u);
  EXPECT_EQ(reg.sites.size(), 1u);
  EXPECT_FALSE(reg.storage.contains("BNL_ATLAS"));
}

}  // namespace
}  // namespace grid3::core
