// Unit tests for VO management: CA, VOMS, proxies, grid-map files.
#include <gtest/gtest.h>

#include "vo/gridmap.h"
#include "vo/voms.h"

namespace grid3::vo {
namespace {

TEST(CertificateAuthority, IssueAndVerify) {
  CertificateAuthority ca{"TestCA"};
  const auto cert = ca.issue("/CN=alice", Time::zero(), Time::days(365));
  EXPECT_TRUE(ca.verify(cert, Time::days(100)));
  EXPECT_FALSE(ca.verify(cert, Time::days(400)));  // expired
  EXPECT_EQ(cert.issuer, "TestCA");
  EXPECT_EQ(ca.issued_count(), 1u);
}

TEST(CertificateAuthority, RevocationHonored) {
  CertificateAuthority ca{"TestCA"};
  const auto cert = ca.issue("/CN=mallory", Time::zero(), Time::days(365));
  EXPECT_TRUE(ca.verify(cert, Time::days(1)));
  ca.revoke(cert);
  EXPECT_TRUE(ca.revoked(cert));
  EXPECT_FALSE(ca.verify(cert, Time::days(1)));
}

TEST(CertificateAuthority, ForeignIssuerRejected) {
  CertificateAuthority ca{"TestCA"};
  CertificateAuthority other{"OtherCA"};
  const auto cert = other.issue("/CN=bob", Time::zero(), Time::days(365));
  EXPECT_FALSE(ca.verify(cert, Time::days(1)));
}

TEST(VomsServer, MembershipLifecycle) {
  VomsServer voms{"usatlas"};
  voms.add_member("/CN=alice", Role::kUser);
  voms.add_member("/CN=bob", Role::kAppAdmin);
  EXPECT_TRUE(voms.is_member("/CN=alice"));
  EXPECT_EQ(voms.member_count(), 2u);
  EXPECT_EQ(voms.role_of("/CN=bob"), Role::kAppAdmin);
  EXPECT_EQ(voms.count_role(Role::kAppAdmin), 1u);
  EXPECT_TRUE(voms.remove_member("/CN=alice"));
  EXPECT_FALSE(voms.is_member("/CN=alice"));
  EXPECT_FALSE(voms.remove_member("/CN=alice"));
}

TEST(VomsServer, MembersDeterministicOrder) {
  VomsServer voms{"sdss"};
  voms.add_member("/CN=c", Role::kUser);
  voms.add_member("/CN=a", Role::kUser);
  voms.add_member("/CN=b", Role::kUser);
  const auto members = voms.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].dn, "/CN=c");  // insertion order
  EXPECT_EQ(members[1].dn, "/CN=a");
}

TEST(Proxy, IssueRequiresMembershipAndAvailability) {
  CertificateAuthority ca{"TestCA"};
  VomsServer voms{"ligo"};
  const auto alice = ca.issue("/CN=alice", Time::zero(), Time::days(365));
  EXPECT_FALSE(issue_proxy(voms, alice, Time::zero()).has_value());
  voms.add_member("/CN=alice", Role::kUser);
  const auto proxy = issue_proxy(voms, alice, Time::zero());
  ASSERT_TRUE(proxy.has_value());
  EXPECT_EQ(proxy->vo, "ligo");
  EXPECT_TRUE(proxy->valid(Time::hours(1)));
  EXPECT_FALSE(proxy->valid(Time::hours(13)));  // 12 h default lifetime
  voms.set_available(false);
  EXPECT_FALSE(issue_proxy(voms, alice, Time::zero()).has_value());
}

TEST(GridMap, RegenerationMapsMembersToGroupAccounts) {
  VomsServer atlas{"usatlas"};
  atlas.add_member("/CN=alice", Role::kUser);
  VomsServer cms{"uscms"};
  cms.add_member("/CN=bob", Role::kUser);

  GridMapFile map;
  map.support_vo("usatlas", {"usatlas1", "usatlas"});
  map.support_vo("uscms", {"uscms1", "uscms"});
  EXPECT_EQ(map.regenerate({&atlas, &cms}, Time::zero()), 2u);

  const auto acct = map.map("/CN=alice");
  ASSERT_TRUE(acct.has_value());
  EXPECT_EQ(acct->unix_name, "usatlas1");
  EXPECT_EQ(acct->vo, "usatlas");
  EXPECT_FALSE(map.map("/CN=mallory").has_value());
}

TEST(GridMap, UnsupportedVoIgnored) {
  VomsServer btev{"btev"};
  btev.add_member("/CN=carol", Role::kUser);
  GridMapFile map;
  map.support_vo("usatlas", {"usatlas1", "usatlas"});
  map.regenerate({&btev}, Time::zero());
  EXPECT_FALSE(map.map("/CN=carol").has_value());
  EXPECT_FALSE(map.supports_vo("btev"));
}

TEST(GridMap, StaleSnapshotMissesNewMembers) {
  // The operational failure mode: users added after the last refresh are
  // rejected until the site regenerates.
  VomsServer voms{"sdss"};
  voms.add_member("/CN=old", Role::kUser);
  GridMapFile map;
  map.support_vo("sdss", {"sdss1", "sdss"});
  map.regenerate({&voms}, Time::zero());
  voms.add_member("/CN=new", Role::kUser);
  EXPECT_TRUE(map.map("/CN=old").has_value());
  EXPECT_FALSE(map.map("/CN=new").has_value());
  map.regenerate({&voms}, Time::hours(6));
  EXPECT_TRUE(map.map("/CN=new").has_value());
}

TEST(GridMap, DownVomsKeepsPreviousEntries) {
  VomsServer voms{"ivdgl"};
  voms.add_member("/CN=dave", Role::kUser);
  GridMapFile map;
  map.support_vo("ivdgl", {"ivdgl1", "ivdgl"});
  map.regenerate({&voms}, Time::zero());
  voms.set_available(false);
  voms.add_member("/CN=erin", Role::kUser);
  map.regenerate({&voms}, Time::hours(6));
  // Old entry survives; new member not picked up while the server is down.
  EXPECT_TRUE(map.map("/CN=dave").has_value());
  EXPECT_FALSE(map.map("/CN=erin").has_value());
}

TEST(GridMap, RemovedMemberDroppedOnRefresh) {
  VomsServer voms{"uscms"};
  voms.add_member("/CN=frank", Role::kUser);
  GridMapFile map;
  map.support_vo("uscms", {"uscms1", "uscms"});
  map.regenerate({&voms}, Time::zero());
  voms.remove_member("/CN=frank");
  map.regenerate({&voms}, Time::hours(1));
  EXPECT_FALSE(map.map("/CN=frank").has_value());
}

}  // namespace
}  // namespace grid3::vo
