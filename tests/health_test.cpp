// Site-health circuit breakers: EWMA trip mechanics, ticket lifecycle,
// quarantine exclusion from broker matching, gang-lease return on trip,
// probed re-admission after repair, rebind-budget exemption, monitoring
// visibility (bus / ACDC / MDViewer / Troubleshooter), and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "gram/gatekeeper.h"
#include "health/health.h"
#include "monitoring/acdc.h"
#include "monitoring/mdviewer.h"
#include "monitoring/troubleshoot.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "workflow/dag.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::health {
namespace {

using broker::JobSpec;

// --- unit: the breaker state machine --------------------------------------

TEST(Monitor, TripsAfterEwmaThresholdWithTicket) {
  sim::Simulation sim;
  SiteHealthMonitor mon{sim};
  std::vector<std::string> opened;
  mon.set_tickets(
      [&](const std::string& site, const std::string& issue, Time) {
        opened.push_back(site + ": " + issue);
        return std::uint64_t{7};
      },
      [](std::uint64_t, Time) {});

  for (int i = 0; i < 6; ++i) {
    mon.report("bh", Service::kSubmit, false, sim.now());
  }
  EXPECT_EQ(mon.state("bh"), BreakerState::kOpen);
  EXPECT_TRUE(mon.quarantined("bh"));
  EXPECT_EQ(mon.trips(), 1u);
  ASSERT_EQ(opened.size(), 1u);
  EXPECT_NE(opened[0].find("bh"), std::string::npos);
  EXPECT_NE(opened[0].find("submit"), std::string::npos);

  // The quarantine interval is queryable and still open.
  const auto windows = mon.quarantine_windows();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].site, "bh");
  EXPECT_EQ(windows[0].closed, Time::max());
}

TEST(Monitor, MinSamplesGateBlocksEarlyTrip) {
  sim::Simulation sim;
  SiteHealthMonitor mon{sim};
  // EWMA crosses the threshold after 4 failures, but the sample gate
  // (6) holds the breaker closed: one unlucky burst must not quarantine.
  for (int i = 0; i < 5; ++i) {
    mon.report("s", Service::kSubmit, false, sim.now());
  }
  EXPECT_EQ(mon.state("s"), BreakerState::kClosed);
  EXPECT_FALSE(mon.quarantined("s"));
  EXPECT_EQ(mon.trips(), 0u);
}

TEST(Monitor, ServicesScoreIndependently) {
  sim::Simulation sim;
  SiteHealthMonitor mon{sim};
  for (int i = 0; i < 10; ++i) {
    mon.report("s", Service::kStorage, false, sim.now());
    mon.report("s", Service::kSubmit, true, sim.now());
  }
  EXPECT_GT(mon.score("s", Service::kStorage), 0.9);
  EXPECT_LT(mon.score("s", Service::kSubmit), 0.01);
}

TEST(Monitor, TrialTrafficReadmitsWithoutProbeSubmitter) {
  sim::Simulation sim;
  SiteHealthMonitor mon{sim};
  std::vector<std::uint64_t> closed;
  mon.set_tickets(
      [](const std::string&, const std::string&, Time) {
        return std::uint64_t{42};
      },
      [&](std::uint64_t id, Time) { closed.push_back(id); });

  for (int i = 0; i < 6; ++i) {
    mon.report("s", Service::kBatch, false, sim.now());
  }
  ASSERT_EQ(mon.state("s"), BreakerState::kOpen);

  // Past the base quarantine the breaker half-opens; with no probe
  // submitter it admits trial traffic, so quarantined() is false.
  sim.run_until(mon.config().quarantine_base + Time::minutes(1));
  EXPECT_EQ(mon.state("s"), BreakerState::kHalfOpen);
  EXPECT_FALSE(mon.quarantined("s"));

  for (int i = 0; i < mon.config().probes_required; ++i) {
    mon.report("s", Service::kBatch, true, sim.now());
  }
  EXPECT_EQ(mon.state("s"), BreakerState::kClosed);
  EXPECT_EQ(mon.readmissions(), 1u);
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0], 42u);
  // Re-admission resets the score: pre-repair history is forgotten.
  EXPECT_EQ(mon.score("s", Service::kBatch), 0.0);
  ASSERT_EQ(mon.quarantine_windows().size(), 1u);
  EXPECT_NE(mon.quarantine_windows()[0].closed, Time::max());
}

TEST(Monitor, ProbeFailureReopensWithEscalatedQuarantine) {
  sim::Simulation sim;
  HealthConfig cfg;
  int outcome_index = 0;
  std::vector<bool> outcomes = {false, true, true, true};  // first probe dies
  SiteHealthMonitor mon{sim, cfg};
  mon.set_probe_submitter(
      [&](const std::string&, std::function<void(bool)> done) {
        done(outcomes[static_cast<std::size_t>(outcome_index++) %
                      outcomes.size()]);
      });
  for (int i = 0; i < 6; ++i) {
    mon.report("s", Service::kSubmit, false, sim.now());
  }
  // Half-open at +30min; the probe fails instantly -> second trip with
  // an escalated (60min) quarantine.
  sim.run_until(cfg.quarantine_base + Time::minutes(1));
  EXPECT_EQ(mon.state("s"), BreakerState::kOpen);
  EXPECT_EQ(mon.trips(), 2u);

  // Still open at +30min into the second quarantine (escalation doubled
  // it), then half-open after the full 60min and re-admitted by the
  // remaining probes.
  sim.run_until(cfg.quarantine_base + Time::minutes(1) +
                cfg.quarantine_base);
  EXPECT_EQ(mon.state("s"), BreakerState::kOpen);
  sim.run_until(Time::hours(8));
  EXPECT_EQ(mon.state("s"), BreakerState::kClosed);
  EXPECT_EQ(mon.readmissions(), 1u);
  EXPECT_GE(mon.probes(), 3u);
}

TEST(Monitor, HalfOpenWithProbeSubmitterStillQuarantinesProduction) {
  sim::Simulation sim;
  SiteHealthMonitor mon{sim};
  bool probe_asked = false;
  mon.set_probe_submitter(
      [&](const std::string&, std::function<void(bool)>) {
        probe_asked = true;  // never completes: probation stays pending
      });
  for (int i = 0; i < 6; ++i) {
    mon.report("s", Service::kTransfer, false, sim.now());
  }
  sim.run_until(mon.config().quarantine_base + Time::minutes(1));
  EXPECT_EQ(mon.state("s"), BreakerState::kHalfOpen);
  EXPECT_TRUE(probe_asked);
  // Probes own re-certification: production must keep steering around.
  EXPECT_TRUE(mon.quarantined("s"));
}

TEST(Monitor, ReportBatchClassifiesFastFails) {
  sim::Simulation sim;
  SiteHealthMonitor mon{sim};
  const Time requested = Time::hours(10);
  // Dies at 2% of its requested walltime: the black-hole signature.
  mon.report_batch("s", false, Time::zero(), Time::minutes(12), requested,
                   sim.now());
  EXPECT_GT(mon.score("s", Service::kBatch), 0.0);
  const double after_fast = mon.score("s", Service::kBatch);
  // A genuine walltime kill at 90% of the request is not a health
  // signal: score unchanged.
  mon.report_batch("s", false, Time::zero(), Time::hours(9), requested,
                   sim.now());
  EXPECT_EQ(mon.score("s", Service::kBatch), after_fast);
  // Success decays the score.
  mon.report_batch("s", true, Time::zero(), Time::hours(9), requested,
                   sim.now());
  EXPECT_LT(mon.score("s", Service::kBatch), after_fast);
}

// --- integration: the brokered fabric --------------------------------------

/// Two-plus-site fabric with a health monitor attached; `bh_cpus` sizes
/// the would-be black hole so queue-depth ranking prefers it.
struct HealthFabric {
  sim::Simulation sim;
  core::Grid3 grid{sim, 4242};
  vo::VomsProxy proxy;

  explicit HealthFabric(int bh_cpus = 64, int good_sites = 2,
                        bool attach_health = true) {
    grid.add_vo("usatlas");
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(5));
    auto add = [&](const std::string& name, int cpus) {
      core::SiteConfig c;
      c.name = name;
      c.owner_vo = "usatlas";
      c.cpus = cpus;
      c.policy.max_walltime = Time::hours(48);
      c.policy.dedicated = true;
      grid.add_site(c, /*reliability=*/1000.0);
      grid.site(name)->install_application(grid.igoc().pacman_cache(),
                                           "app");
      grid.site(name)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(name)->gatekeeper().set_environment_error_rate(0.0);
    };
    add("blackhole", bh_cpus);
    for (int i = 0; i < good_sites; ++i) add("good" + std::to_string(i), 16);
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(800));
    refresh_gridmaps();
    grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth);
    if (attach_health) grid.attach_health();
    grid.start_operations();
    sim.run_until(Time::minutes(6));  // first dynamic GRIS publication
  }

  void refresh_gridmaps() {
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    for (const auto& s : grid.sites()) s->refresh_gridmap(servers);
  }

  [[nodiscard]] JobSpec spec(Time runtime = Time::minutes(10)) const {
    JobSpec s;
    s.vo = "usatlas";
    s.app = "app";
    s.required_app = "app";
    s.runtime = runtime;
    return s;
  }

  [[nodiscard]] gram::GramJob job(Time runtime = Time::minutes(10)) const {
    gram::GramJob j;
    j.proxy = proxy;
    j.request.vo = "usatlas";
    j.request.user_dn = proxy.identity.subject_dn;
    j.request.requested_walltime = runtime + Time::hours(1);
    j.request.actual_runtime = runtime;
    return j;
  }
};

TEST(HealthIntegration, QuarantinedSiteExcludedFromMatching) {
  HealthFabric f;
  // Trip the black hole by hand: six submit failures.
  for (int i = 0; i < 6; ++i) {
    f.grid.health()->report("blackhole", Service::kSubmit, false,
                            f.sim.now());
  }
  ASSERT_TRUE(f.grid.health()->quarantined("blackhole"));

  std::vector<std::string> sites;
  auto* b = f.grid.broker("usatlas");
  for (int i = 0; i < 8; ++i) {
    b->submit(f.spec(), f.job(),
              [&](const broker::BrokeredResult& r) { sites.push_back(r.site); });
  }
  f.sim.run_until(f.sim.now() + Time::hours(2));
  ASSERT_EQ(sites.size(), 8u);
  for (const std::string& s : sites) {
    EXPECT_TRUE(s == "good0" || s == "good1") << "matched " << s;
  }
}

TEST(HealthIntegration, BlackHoleTripsAndWorkCompletesElsewhere) {
  HealthFabric f;
  f.grid.site("blackhole")->gatekeeper().set_environment_error_rate(1.0);

  int ok = 0, failed = 0;
  auto* b = f.grid.broker("usatlas");
  for (int i = 0; i < 40; ++i) {
    b->submit(f.spec(), f.job(), [&](const broker::BrokeredResult& r) {
      (r.ok() ? ok : failed) += 1;
    });
  }
  f.sim.run_until(f.sim.now() + Time::hours(24));

  EXPECT_GE(f.grid.health()->trips(), 1u);
  EXPECT_EQ(f.grid.health()->state("blackhole"), BreakerState::kOpen);
  // The detection cost is bounded by the min-sample gate: at most five
  // jobs die feeding the EWMA.  From the tripping failure onwards the
  // site's kills are re-matched (for free) and exclusion keeps the rest
  // away, so everything else completes on a good site.
  EXPECT_EQ(ok + failed, 40);
  EXPECT_LE(failed, 5);
  EXPECT_GE(ok, 35);

  // Trip visible on the bus, in ACDC, and through MDViewer.
  const auto& series = f.grid.igoc().bus().series(
      "blackhole", health::metric::kTrips);
  EXPECT_FALSE(series.empty());
  const auto acdc =
      f.grid.igoc().job_db().breaker_events(Time::zero(), Time::max());
  EXPECT_GE(acdc.at("trip"), 1u);
  monitoring::MdViewer viewer{f.grid.igoc().job_db(), f.grid.igoc().bus()};
  EXPECT_GE(viewer.breaker_events(Time::zero(), Time::max(),
                                  "blackhole")["trip"],
            1u);
  EXPECT_FALSE(viewer.health_counter("blackhole", health::metric::kTrips)
                   .empty());
  // An iGOC ticket is open for the quarantine.
  EXPECT_GE(f.grid.igoc().tickets().open_count(), 1u);
}

TEST(HealthIntegration, ProbedReadmissionAfterRepairClosesTicket) {
  HealthFabric f;
  f.grid.site("blackhole")->gatekeeper().set_environment_error_rate(1.0);

  auto* b = f.grid.broker("usatlas");
  int ok = 0;
  for (int i = 0; i < 20; ++i) {
    // Record each outcome in ACDC the way the application layer does, so
    // the Troubleshooter has job records to build failure bursts from.
    b->submit(f.spec(), f.job(), [&, i](const broker::BrokeredResult& r) {
      ok += r.ok();
      monitoring::JobRecord rec;
      rec.vo = "usatlas";
      rec.site = r.site;
      rec.app = "app";
      rec.submitted = r.gram.submitted;
      rec.finished = r.gram.finished;
      rec.success = r.ok();
      rec.site_problem = !r.ok();
      rec.failure = r.ok() ? "" : gram::to_string(r.gram.status);
      rec.submit_id = "usatlas/app/" + std::to_string(i);
      f.grid.igoc().job_db().insert(std::move(rec));
    });
  }
  f.sim.run_until(f.sim.now() + Time::hours(6));
  ASSERT_GE(f.grid.health()->trips(), 1u);

  // Repair the site; the next probation round re-certifies it.
  f.grid.site("blackhole")->gatekeeper().set_environment_error_rate(0.0);
  f.sim.run_until(f.sim.now() + Time::hours(30));

  EXPECT_GE(f.grid.health()->readmissions(), 1u);
  EXPECT_EQ(f.grid.health()->state("blackhole"), BreakerState::kClosed);
  EXPECT_FALSE(f.grid.health()->quarantined("blackhole"));
  EXPECT_GE(f.grid.health()->probes(), 3u);
  EXPECT_EQ(f.grid.igoc().tickets().open_count(), 0u);
  EXPECT_GE(ok, 15);  // at most the EWMA-feeding five are lost

  // The quarantine interval closed and is Troubleshooter-correlatable:
  // the failure burst at the black hole matches the breaker's window.
  const auto windows = f.grid.health()->quarantine_windows();
  ASSERT_GE(windows.size(), 1u);
  EXPECT_NE(windows[0].closed, Time::max());
  monitoring::Troubleshooter shooter{f.grid.igoc().job_db()};
  auto bursts = monitoring::Troubleshooter::correlate(
      shooter.find_bursts(Time::zero(), f.sim.now(), 3), windows);
  bool attributed = false;
  for (const auto& burst : bursts) {
    if (burst.site == "blackhole" && burst.ticket.has_value()) {
      attributed = true;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST(HealthIntegration, TripReturnsGangLeaseAtQuarantinedPrimary) {
  HealthFabric f;
  auto* b = f.grid.broker("usatlas");
  auto* ledger = f.grid.placement("usatlas");
  ASSERT_NE(ledger, nullptr);

  broker::GangSpec gang;
  gang.gang_id = "level-1";
  gang.intermediates = Bytes::gb(10);
  for (int i = 0; i < 2; ++i) {
    JobSpec m = f.spec(Time::hours(4));
    m.gang_id = "level-1";
    m.gang_width = 2;
    m.gang_intermediates = gang.intermediates;
    gang.members.push_back(m);
  }
  std::vector<gram::GramJob> jobs{f.job(Time::hours(4)),
                                  f.job(Time::hours(4))};
  b->submit_gang(std::move(gang), std::move(jobs),
                 [](std::size_t, const broker::BrokeredResult&) {});
  f.sim.run_until(f.sim.now() + Time::minutes(10));
  ASSERT_EQ(ledger->active(), 1u);  // gang lease held while members run

  // Trip the gang's primary (the large site wins the whole-fit) while
  // the members are still executing: the lease must come back.
  for (int i = 0; i < 6; ++i) {
    f.grid.health()->report("blackhole", Service::kSubmit, false,
                            f.sim.now());
  }
  EXPECT_EQ(ledger->active(), 0u);
  EXPECT_GE(ledger->released(), 1u);
}

// --- integration: health-aware planning -------------------------------------

/// Three-job workflow planned against the fabric's GIIS + broker, with
/// the planner consulting the health monitor.
std::optional<workflow::ConcreteDag> plan_workflow(HealthFabric& f) {
  workflow::VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  std::vector<std::string> targets;
  for (int i = 0; i < 3; ++i) {
    workflow::Derivation d;
    d.id = "job" + std::to_string(i);
    d.transformation = "tf";
    d.outputs = {"out" + std::to_string(i)};
    d.runtime = Time::hours(1);
    vdc.add_derivation(d);
    targets.push_back(d.outputs[0]);
  }
  const auto dag = vdc.request(targets);
  workflow::PegasusPlanner planner{f.grid.igoc().top_giis(),
                                   *f.grid.rls("usatlas")};
  planner.set_broker(f.grid.broker("usatlas"));
  planner.set_health(f.grid.health());
  workflow::PlannerConfig cfg;
  cfg.vo = "usatlas";
  util::Rng rng{123};
  return planner.plan(*dag, cfg, rng, f.sim.now());
}

/// Canonical byte dump of everything placement-relevant in a plan.
std::string dump_plan(const workflow::ConcreteDag& dag) {
  std::string out;
  for (const auto& n : dag.nodes) {
    out += n.name + "|" + n.site;
    if (n.broker_spec.has_value()) {
      out += "|c:";
      for (const auto& c : n.broker_spec->candidates) out += c + ",";
      out += "|d:";
      for (const auto& c : n.broker_spec->deferred_candidates) out += c + ",";
      out += "|se:" + n.broker_spec->stage_out_site;
      for (const auto& c : n.broker_spec->stage_out_fallbacks) {
        out += "," + c;
      }
    }
    out += "\n";
  }
  for (const auto& [a, b] : dag.edges) {
    out += std::to_string(a) + ">" + std::to_string(b) + "\n";
  }
  return out;
}

TEST(HealthIntegration, PlannerCandidatesExcludeQuarantinedSites) {
  HealthFabric f;
  for (int i = 0; i < 6; ++i) {
    f.grid.health()->report("blackhole", Service::kSubmit, false,
                            f.sim.now());
  }
  ASSERT_TRUE(f.grid.health()->quarantined("blackhole"));

  const auto plan = plan_workflow(f);
  ASSERT_TRUE(plan.has_value());
  std::size_t computes = 0;
  for (const auto& n : plan->nodes) {
    if (n.type != workflow::NodeType::kCompute) continue;
    ++computes;
    // The quarantined site is out of the plan: never the provisional
    // placement, never a live candidate -- parked as deferred so the
    // broker can re-admit it if the quarantine lifts before launch.
    EXPECT_NE(n.site, "blackhole");
    ASSERT_TRUE(n.broker_spec.has_value());
    const auto& c = n.broker_spec->candidates;
    EXPECT_EQ(std::count(c.begin(), c.end(), "blackhole"), 0);
    EXPECT_FALSE(c.empty());
    const auto& d = n.broker_spec->deferred_candidates;
    EXPECT_EQ(std::count(d.begin(), d.end(), "blackhole"), 1);
  }
  EXPECT_EQ(computes, 3u);
}

TEST(HealthIntegration, HealthAwarePlanIsByteIdentical) {
  HealthFabric f;
  for (int i = 0; i < 6; ++i) {
    f.grid.health()->report("blackhole", Service::kSubmit, false,
                            f.sim.now());
  }
  const auto a = plan_workflow(f);
  const auto b = plan_workflow(f);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  const std::string dump_a = dump_plan(*a);
  EXPECT_FALSE(dump_a.empty());
  EXPECT_EQ(dump_a, dump_plan(*b));
}

TEST(HealthIntegration, DeferredCandidateReadmittedWhenQuarantineLifts) {
  HealthFabric f;
  for (int i = 0; i < 6; ++i) {
    f.grid.health()->report("blackhole", Service::kSubmit, false,
                            f.sim.now());
  }
  ASSERT_TRUE(f.grid.health()->quarantined("blackhole"));

  // A job whose only viable site is the deferred one: "offline" is not
  // on the grid, so the match must wait for blackhole's re-admission.
  JobSpec s = f.spec();
  s.candidates = {"offline"};
  s.deferred_candidates = {"blackhole"};
  std::vector<std::string> sites;
  f.grid.broker("usatlas")->submit(
      s, f.job(),
      [&](const broker::BrokeredResult& r) { sites.push_back(r.site); });
  f.sim.run_until(f.sim.now() + Time::minutes(30));
  EXPECT_TRUE(sites.empty());  // held while the quarantine stands

  // The site is actually healthy, so probation probes re-certify it
  // once the base quarantine elapses; the held job then lands there.
  f.sim.run_until(f.sim.now() + Time::hours(48));
  EXPECT_EQ(f.grid.health()->state("blackhole"), BreakerState::kClosed);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "blackhole");
}

TEST(HealthIntegration, BreakerEventsAndMatchLogDeterministic) {
  auto run = [](std::string* events, std::string* matches) {
    HealthFabric f;
    f.grid.site("blackhole")->gatekeeper().set_environment_error_rate(1.0);
    auto* b = f.grid.broker("usatlas");
    for (int i = 0; i < 30; ++i) {
      b->submit(f.spec(), f.job(), [](const broker::BrokeredResult&) {});
    }
    f.sim.run_until(Time::hours(12));
    f.grid.site("blackhole")->gatekeeper().set_environment_error_rate(0.0);
    f.sim.run_until(Time::hours(40));
    *events = f.grid.health()->serialize_events();
    *matches = b->serialize_match_log();
  };
  std::string events_a, matches_a, events_b, matches_b;
  run(&events_a, &matches_a);
  run(&events_b, &matches_b);
  EXPECT_FALSE(events_a.empty());
  EXPECT_EQ(events_a, events_b);
  EXPECT_EQ(matches_a, matches_b);
}

}  // namespace
}  // namespace grid3::health
