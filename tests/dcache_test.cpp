// Unit tests for the dCache-style pool manager.
#include <gtest/gtest.h>

#include "srm/dcache.h"

namespace grid3::srm {
namespace {

class DcacheTest : public ::testing::Test {
 protected:
  DcachePoolManager se{"fnal-dcache"};

  void SetUp() override {
    se.add_pool("pool-a", Bytes::gb(100));
    se.add_pool("pool-b", Bytes::gb(100));
    se.add_pool("pool-c", Bytes::gb(50));
  }
};

TEST_F(DcacheTest, WritePlacementPrefersMostFreePool) {
  // First write can land anywhere with equal free space; fill pool-a so
  // the next write must avoid it.
  ASSERT_TRUE(se.write("f1", Bytes::gb(90)).has_value());
  const auto second = se.write("f2", Bytes::gb(60));
  ASSERT_TRUE(second.has_value());
  // 60 GB only fits the remaining 100 GB pool.
  EXPECT_EQ(se.pool(*second).capacity(), Bytes::gb(100));
  EXPECT_TRUE(se.has("f1"));
  EXPECT_TRUE(se.has("f2"));
}

TEST_F(DcacheTest, WriteFailsWhenNothingFits) {
  EXPECT_FALSE(se.write("huge", Bytes::gb(150)).has_value());
  EXPECT_FALSE(se.has("huge"));
}

TEST_F(DcacheTest, DuplicateWriteRefused) {
  ASSERT_TRUE(se.write("f", Bytes::gb(1)).has_value());
  EXPECT_FALSE(se.write("f", Bytes::gb(1)).has_value());
}

TEST_F(DcacheTest, ReadsCountAndServeExistingReplica) {
  ASSERT_TRUE(se.write("f", Bytes::gb(10)).has_value());
  EXPECT_TRUE(se.read("f").has_value());
  EXPECT_TRUE(se.read("f").has_value());
  EXPECT_EQ(se.reads_of("f"), 2u);
  EXPECT_FALSE(se.read("ghost").has_value());
}

TEST_F(DcacheTest, HotFileReplication) {
  ASSERT_TRUE(se.write("hot", Bytes::gb(10)).has_value());
  ASSERT_TRUE(se.write("cold", Bytes::gb(10)).has_value());
  for (int i = 0; i < 10; ++i) se.read("hot");
  se.read("cold");
  EXPECT_EQ(se.replicate_hot(/*threshold=*/5), 1u);
  EXPECT_EQ(se.replica_count("hot"), 2u);
  EXPECT_EQ(se.replica_count("cold"), 1u);
  // The read counter resets after replication.
  EXPECT_EQ(se.reads_of("hot"), 0u);
}

TEST_F(DcacheTest, RemoveFreesAllReplicas) {
  ASSERT_TRUE(se.write("f", Bytes::gb(10)).has_value());
  for (int i = 0; i < 10; ++i) se.read("f");
  se.replicate_hot(5);
  const Bytes before = se.total_free();
  EXPECT_TRUE(se.remove("f"));
  EXPECT_EQ(se.total_free(), before + Bytes::gb(20));
  EXPECT_FALSE(se.remove("f"));
}

TEST_F(DcacheTest, DrainMigratesFilesAway) {
  const auto pool = se.write("f", Bytes::gb(10));
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(se.drain_pool(*pool), 1u);
  EXPECT_TRUE(se.has("f"));
  EXPECT_EQ(se.replica_count("f"), 1u);
  // The drained pool no longer receives writes.
  const auto p2 = se.write("g", Bytes::gb(1));
  ASSERT_TRUE(p2.has_value());
  EXPECT_NE(*p2, *pool);
  se.enable_pool(*pool);
}

TEST_F(DcacheTest, DrainDropsRedundantReplicaCheaply) {
  ASSERT_TRUE(se.write("f", Bytes::gb(10)).has_value());
  for (int i = 0; i < 10; ++i) se.read("f");
  se.replicate_hot(5);
  ASSERT_EQ(se.replica_count("f"), 2u);
  // Draining a pool holding one of two replicas just drops that copy.
  const auto serving = se.read("f");
  ASSERT_TRUE(serving.has_value());
  se.drain_pool(*serving);
  EXPECT_EQ(se.replica_count("f"), 1u);
  EXPECT_TRUE(se.has("f"));
}

}  // namespace
}  // namespace grid3::srm
