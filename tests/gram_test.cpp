// Unit tests for the GRAM gatekeeper: authentication, staging, the
// section 6.4 load model, overload behaviour, and Condor-G retries.
#include <gtest/gtest.h>

#include <optional>

#include "batch/scheduler.h"
#include "gram/condor_g.h"
#include "gram/gatekeeper.h"
#include "gridftp/gridftp.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "srm/disk.h"
#include "vo/gridmap.h"
#include "vo/voms.h"

namespace grid3::gram {
namespace {

class GramTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
  net::Network net{sim};
  gridftp::GridFtpClient ftp_client{sim, net};
  vo::CertificateAuthority ca{"TestCA"};
  vo::VomsServer voms{"usatlas"};
  vo::GridMapFile gridmap;
  srm::DiskVolume scratch{"site:/scratch", Bytes::tb(1)};

  net::NodeId site_node = net.add_node({"SITE", Bandwidth::mbps(155),
                                        Bandwidth::mbps(155), true});
  net::NodeId data_node = net.add_node({"DATA", Bandwidth::mbps(622),
                                        Bandwidth::mbps(622), true});
  gridftp::GridFtpServer site_ftp{"SITE", site_node};
  gridftp::GridFtpServer data_ftp{"DATA", data_node};

  batch::SchedulerConfig sched_cfg{.site_name = "SITE", .slots = 8,
                                   .max_walltime = Time::hours(48)};
  batch::PbsScheduler lrms{sim, sched_cfg};
  // Deterministic unit tests: disable the stochastic flake/error rates
  // (they are exercised by their own tests and the integration suite).
  GatekeeperConfig gk_cfg{.site = "SITE",
                          .submission_flake_rate = 0.0,
                          .app_error_rate = 0.0};
  Gatekeeper gk{sim, gk_cfg, lrms, gridmap, ca,
                ftp_client, site_ftp, scratch};

  vo::Certificate alice_cert;
  vo::VomsProxy alice;

  void SetUp() override {
    alice_cert = ca.issue("/CN=alice", sim.now(), Time::days(365));
    voms.add_member("/CN=alice", vo::Role::kAppAdmin);
    gridmap.support_vo("usatlas", {"usatlas1", "usatlas"});
    gridmap.regenerate({&voms}, sim.now());
    alice = *vo::issue_proxy(voms, alice_cert, sim.now(), Time::hours(96));
  }

  GramJob simple_job(double runtime_h, double walltime_h = 0.0) {
    GramJob job;
    job.proxy = alice;
    job.request.vo = "usatlas";
    job.request.user_dn = "/CN=alice";
    job.request.actual_runtime = Time::hours(runtime_h);
    job.request.requested_walltime =
        Time::hours(walltime_h > 0 ? walltime_h : runtime_h + 1);
    return job;
  }
};

TEST_F(GramTest, AuthorizedJobCompletes) {
  std::optional<GramResult> result;
  gk.submit(simple_job(2.0), [&](const GramResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(result->outcome.state, batch::JobState::kCompleted);
  EXPECT_EQ(gk.completions(), 1u);
}

TEST_F(GramTest, UnknownDnRejected) {
  GramJob job = simple_job(1.0);
  job.proxy.identity.subject_dn = "/CN=mallory";
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kAuthenticationFailed);
  EXPECT_FALSE(is_site_problem(result->status));
}

TEST_F(GramTest, ExpiredProxyRejected) {
  GramJob job = simple_job(1.0);
  job.proxy.expires = Time::zero();
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kAuthenticationFailed);
}

TEST_F(GramTest, VoMismatchRejected) {
  GramJob job = simple_job(1.0);
  job.proxy.vo = "uscms";  // proxy VO does not match the mapped account
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kAuthenticationFailed);
}

TEST_F(GramTest, DownGatekeeperRefuses) {
  gk.set_available(false);
  std::optional<GramResult> result;
  gk.submit(simple_job(1.0), [&](const GramResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kGatekeeperDown);
  EXPECT_TRUE(is_site_problem(result->status));
}

TEST_F(GramTest, StageInRunsBeforeJob) {
  GramJob job = simple_job(1.0);
  job.stage_in = Bytes::gb(4);
  job.stage_in_source = &data_ftp;
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  // 4 GB at 155 Mbps ~= 206 s; the batch start reflects the staging wait.
  EXPECT_GT(result->outcome.started.to_seconds(), 150.0);
  EXPECT_EQ(site_ftp.bytes_in(), Bytes::gb(4));
}

TEST_F(GramTest, StageOutAfterCompletion) {
  GramJob job = simple_job(1.0);
  job.stage_out = Bytes::gb(2);
  job.stage_out_dest = &data_ftp;
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_EQ(data_ftp.bytes_in(), Bytes::gb(2));
}

TEST_F(GramTest, ProxyExpiryBeforeStageOutFails) {
  GramJob job = simple_job(1.0);
  job.proxy = *vo::issue_proxy(voms, alice_cert, sim.now(),
                               Time::minutes(30));  // outlived by the job
  job.stage_out = Bytes::gb(1);
  job.stage_out_dest = &data_ftp;
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kProxyExpired);
}

TEST_F(GramTest, ScratchExhaustionReportsDiskFull) {
  scratch.consume_unmanaged(Bytes::tb(1));
  GramJob job = simple_job(1.0);
  job.scratch = Bytes::gb(5);
  std::optional<GramResult> result;
  gk.submit(std::move(job), [&](const GramResult& r) { result = r; });
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kDiskFull);
  EXPECT_TRUE(is_site_problem(result->status));
}

TEST_F(GramTest, ScratchReleasedAfterCompletion) {
  GramJob job = simple_job(1.0);
  job.scratch = Bytes::gb(10);
  gk.submit(std::move(job), {});
  EXPECT_EQ(scratch.used(), Bytes::gb(10));
  sim.run();
  EXPECT_EQ(scratch.used(), Bytes::zero());
}

TEST_F(GramTest, WalltimeKillSurfacesAsJobKilled) {
  std::optional<GramResult> result;
  gk.submit(simple_job(10.0, 2.0), [&](const GramResult& r) { result = r; });
  sim.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, GramStatus::kJobKilled);
  EXPECT_EQ(result->outcome.state, batch::JobState::kKilledWalltime);
}

TEST_F(GramTest, LoadModelMatchesPaperCoefficient) {
  // ~1000 managed no-staging jobs -> sustained 1-minute load ~225.
  // Spread the submissions over half an hour so the burst term stays
  // below the overload threshold (as production submission did).
  for (int i = 0; i < 1000; ++i) {
    // 30 h jobs fit the 48 h queue limit, so all jobs stay managed.
    sim.schedule_at(Time::seconds(i * 1.8),
                    [this] { gk.submit(simple_job(30.0), {}); });
  }
  // Let the burst term decay: advance past the last submission.
  sim.run_until(Time::minutes(32));
  EXPECT_EQ(gk.managed_jobs(), 1000u);
  EXPECT_NEAR(gk.one_minute_load(), 225.0, 5.0);
}

TEST_F(GramTest, StagingFactorsFromSection64) {
  EXPECT_DOUBLE_EQ(staging_load_factor(Bytes::zero(), Bytes::zero()), 1.0);
  EXPECT_DOUBLE_EQ(staging_load_factor(Bytes::mb(100), Bytes::zero()), 2.0);
  EXPECT_DOUBLE_EQ(staging_load_factor(Bytes::gb(1), Bytes::gb(1)), 3.0);
  EXPECT_DOUBLE_EQ(staging_load_factor(Bytes::gb(4), Bytes::gb(1)), 4.0);
}

TEST_F(GramTest, OverloadSheddsNewSubmissions) {
  GatekeeperConfig tight{.site = "SITE", .overload_threshold = 50.0,
                         .submission_flake_rate = 0.0, .app_error_rate = 0.0};
  Gatekeeper small_gk{sim, tight, lrms, gridmap, ca,
                      ftp_client, site_ftp, scratch};
  int overloaded = 0;
  for (int i = 0; i < 400; ++i) {
    small_gk.submit(simple_job(100.0), [&](const GramResult& r) {
      if (r.status == GramStatus::kGatekeeperOverloaded) ++overloaded;
    });
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_GT(small_gk.overload_rejections(), 0u);
  EXPECT_LT(small_gk.managed_jobs(), 400u);
}

TEST_F(GramTest, CondorGRetriesTransientOverload) {
  GatekeeperConfig tight{.site = "SITE", .overload_threshold = 12.0,
                         .submission_flake_rate = 0.0, .app_error_rate = 0.0};
  Gatekeeper small_gk{sim, tight, lrms, gridmap, ca,
                      ftp_client, site_ftp, scratch};
  CondorG condor_g{
      sim, {.retry = {.base = Time::minutes(2), .max_retries = 5}}};
  // A burst of 40 short jobs overloads the gatekeeper; Condor-G retries
  // shed load across backoff windows and eventually land everything.
  int completed = 0;
  for (int i = 0; i < 40; ++i) {
    condor_g.submit_to(small_gk, simple_job(0.1), [&](const GramResult& r) {
      if (r.ok()) ++completed;
    });
  }
  sim.run();
  EXPECT_GT(condor_g.retries(), 0u);
  EXPECT_EQ(completed, 40);
}

TEST_F(GramTest, TransientClassification) {
  EXPECT_TRUE(is_transient(GramStatus::kGatekeeperOverloaded));
  EXPECT_TRUE(is_transient(GramStatus::kGatekeeperDown));
  EXPECT_TRUE(is_transient(GramStatus::kDiskFull));
  EXPECT_FALSE(is_transient(GramStatus::kAuthenticationFailed));
  EXPECT_FALSE(is_transient(GramStatus::kSubmitRejected));
}

}  // namespace
}  // namespace grid3::gram
