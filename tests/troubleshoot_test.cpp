// Unit tests for the section 8 troubleshooting API: ID linking, burst
// detection, incident correlation.
#include <gtest/gtest.h>

#include "monitoring/troubleshoot.h"

namespace grid3::monitoring {
namespace {

JobRecord record(const std::string& site, double finished_h, bool success,
                 const std::string& failure = {}) {
  JobRecord r;
  r.vo = "usatlas";
  r.site = site;
  r.user_dn = "/CN=x";
  r.submitted = Time::hours(finished_h - 1.0);
  r.started = Time::hours(finished_h - 1.0);
  r.finished = Time::hours(finished_h);
  r.success = success;
  r.failure = failure;
  r.site_problem = !success;
  return r;
}

TEST(Troubleshooter, LinksSubmitAndExecutionIds) {
  JobDatabase db;
  JobRecord r = record("BNL", 5.0, true);
  r.submit_id = "usatlas/gce-atlas/17";
  r.gram_contact = "BNL/jobmanager/42";
  db.insert(r);
  Troubleshooter ts{db};
  const JobRecord* by_submit = ts.find_by_submit_id("usatlas/gce-atlas/17");
  ASSERT_NE(by_submit, nullptr);
  EXPECT_EQ(by_submit->gram_contact, "BNL/jobmanager/42");
  const JobRecord* by_gram = ts.find_by_gram_contact("BNL/jobmanager/42");
  ASSERT_NE(by_gram, nullptr);
  EXPECT_EQ(by_gram->submit_id, "usatlas/gce-atlas/17");
  EXPECT_EQ(ts.find_by_submit_id("nope"), nullptr);
  EXPECT_EQ(ts.find_by_gram_contact(""), nullptr);
}

TEST(Troubleshooter, FailuresAtSiteNewestFirst) {
  JobDatabase db;
  db.insert(record("X", 1.0, false, "disk-full"));
  db.insert(record("X", 3.0, false, "disk-full"));
  db.insert(record("X", 2.0, true));
  db.insert(record("Y", 2.5, false, "network"));
  Troubleshooter ts{db};
  const auto failures = ts.failures_at("X", Time::zero(), Time::days(1));
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_GT(failures[0]->finished, failures[1]->finished);
}

TEST(Troubleshooter, DetectsBurstAndDominantClass) {
  JobDatabase db;
  // Six failures within two hours at X (a burst), plus scattered noise.
  for (int i = 0; i < 6; ++i) {
    db.insert(record("X", 10.0 + 0.3 * i, false,
                     i < 4 ? "disk-full" : "stage-out-failed"));
  }
  db.insert(record("X", 40.0, false, "application-error"));  // isolated
  db.insert(record("Y", 11.0, false, "network"));            // other site
  Troubleshooter ts{db};
  const auto bursts = ts.find_bursts(Time::zero(), Time::days(5),
                                     /*min_failures=*/5,
                                     /*max_gap=*/Time::hours(6));
  ASSERT_EQ(bursts.size(), 1u);
  EXPECT_EQ(bursts[0].site, "X");
  // The isolated failure at t=40h is more than 6h after the burst, but
  // within max_gap of nothing -- excluded.
  EXPECT_EQ(bursts[0].failures, 6u);
  EXPECT_EQ(bursts[0].dominant_class, "disk-full");
}

TEST(Troubleshooter, GapSplitsBursts) {
  JobDatabase db;
  for (int i = 0; i < 5; ++i) db.insert(record("X", 1.0 + 0.1 * i, false));
  for (int i = 0; i < 5; ++i) db.insert(record("X", 30.0 + 0.1 * i, false));
  Troubleshooter ts{db};
  const auto bursts =
      ts.find_bursts(Time::zero(), Time::days(5), 5, Time::hours(6));
  EXPECT_EQ(bursts.size(), 2u);
}

TEST(Troubleshooter, CorrelatesBurstWithIncident) {
  FailureBurst burst;
  burst.site = "X";
  burst.from = Time::hours(10);
  burst.to = Time::hours(12);
  burst.failures = 8;

  IncidentWindow match{1, "X", "disk-fill", Time::hours(9), Time::hours(13)};
  IncidentWindow other_site{2, "Y", "disk-fill", Time::hours(9),
                            Time::hours(13)};
  IncidentWindow too_early{3, "X", "network-cut", Time::hours(1),
                           Time::hours(3)};

  auto correlated = Troubleshooter::correlate(
      {burst}, {other_site, too_early, match});
  ASSERT_EQ(correlated.size(), 1u);
  ASSERT_TRUE(correlated[0].ticket.has_value());
  EXPECT_EQ(*correlated[0].ticket, 1u);
}

TEST(Troubleshooter, OpenIncidentStillCorrelates) {
  FailureBurst burst;
  burst.site = "X";
  burst.from = Time::hours(10);
  burst.to = Time::hours(20);
  IncidentWindow open_ticket{7, "X", "gatekeeper-crash", Time::hours(9),
                             Time::max()};
  auto correlated = Troubleshooter::correlate({burst}, {open_ticket});
  ASSERT_TRUE(correlated[0].ticket.has_value());
}

TEST(Troubleshooter, UnexplainedBurstStaysUnattributed) {
  FailureBurst burst;
  burst.site = "X";
  burst.from = Time::hours(10);
  burst.to = Time::hours(12);
  auto correlated = Troubleshooter::correlate({burst}, {});
  EXPECT_FALSE(correlated[0].ticket.has_value());
}

TEST(Troubleshooter, TopFailureClassesSortedAndLimited) {
  JobDatabase db;
  for (int i = 0; i < 5; ++i) db.insert(record("X", 1.0 + i, false, "a"));
  for (int i = 0; i < 3; ++i) db.insert(record("X", 10.0 + i, false, "b"));
  db.insert(record("X", 20.0, false, "c"));
  Troubleshooter ts{db};
  const auto top = ts.top_failure_classes(Time::zero(), Time::days(5), 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, "a");
  EXPECT_EQ(top[0].second, 5u);
  EXPECT_EQ(top[1].first, "b");
}

}  // namespace
}  // namespace grid3::monitoring
