// Unit tests for the workload layer: campaign generators (thinning
// sampler, DAG shape families), the ops calendar, and the scenario
// catalog's (name, seed) determinism contract.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "apps/scenario.h"
#include "util/calendar.h"
#include "workload/campaign.h"
#include "workload/catalog.h"
#include "workload/ops_calendar.h"

namespace grid3::workload {
namespace {

CampaignSpec small_campaign() {
  CampaignSpec c;
  c.vo = "usatlas";
  c.app = "test-mc";
  c.required_app = core::app::kAtlasGce;
  c.lfn_prefix = "/test/mc";
  c.arrivals.monthly = {40, 60};
  c.arrivals.diurnal_amplitude = 0.3;
  c.arrivals.bursts_per_month = 2.0;
  c.arrivals.burst_multiplier = 3.0;
  c.shape.shape = DagShape::kAssignmentChain;
  c.shape.width_min = 3;
  c.shape.width_max = 6;
  c.shape.runtime_hours = util::Distribution::lognormal_mean_cv(2.0, 0.4);
  c.shape.output_gb = util::Distribution::constant(1.0);
  c.archive_site = "BNL_ATLAS";
  return c;
}

/// Drain a generator into its canonical text stream.
std::string drain(CampaignGenerator& gen) {
  std::ostringstream os;
  while (const auto wf = gen.next()) {
    os << CampaignGenerator::serialize(*wf);
  }
  return os.str();
}

TEST(CampaignGenerator, SameSpecAndSeedYieldByteIdenticalStreams) {
  CampaignGenerator a{small_campaign(), 42};
  CampaignGenerator b{small_campaign(), 42};
  const std::string sa = drain(a);
  EXPECT_FALSE(sa.empty());
  EXPECT_EQ(sa, drain(b));
}

TEST(CampaignGenerator, DifferentSeedsDiverge) {
  CampaignGenerator a{small_campaign(), 42};
  CampaignGenerator b{small_campaign(), 43};
  EXPECT_NE(drain(a), drain(b));
}

TEST(CampaignGenerator, AssignmentChainShape) {
  CampaignGenerator gen{small_campaign(), 7};
  const auto wf = gen.next();
  ASSERT_TRUE(wf.has_value());
  // width prod jobs + validate + merge.
  const auto width = static_cast<int>(wf->jobs.size()) - 2;
  EXPECT_GE(width, 3);
  EXPECT_LE(width, 6);
  const JobBlueprint& validate = wf->jobs[wf->jobs.size() - 2];
  const JobBlueprint& merge = wf->jobs.back();
  EXPECT_EQ(validate.transformation, "test-mc-validate");
  EXPECT_EQ(merge.transformation, "test-mc-merge");
  // The validate step consumes every production part; the merge step
  // consumes the parts plus the validation blessing and is the target.
  EXPECT_EQ(validate.inputs.size(), static_cast<std::size_t>(width));
  EXPECT_EQ(merge.inputs.size(), static_cast<std::size_t>(width) + 1);
  ASSERT_EQ(wf->targets.size(), 1u);
  EXPECT_EQ(wf->targets.front(), merge.outputs.front());
}

TEST(CampaignGenerator, BackfillIsSingleJob) {
  CampaignSpec c = small_campaign();
  c.shape.shape = DagShape::kBackfill;
  CampaignGenerator gen{c, 7};
  const auto wf = gen.next();
  ASSERT_TRUE(wf.has_value());
  EXPECT_EQ(wf->jobs.size(), 1u);
}

TEST(ThinningSampler, TracksTargetVolumeAndDiurnalShape) {
  ArrivalSpec spec;
  spec.monthly = {3000};
  spec.diurnal_amplitude = 0.4;
  spec.diurnal_peak_hour = 14.0;
  ThinningSampler sampler{spec, util::Rng{99}};

  std::size_t total = 0;
  std::map<int, std::size_t> by_hour;
  Time t = Time::zero();
  while (const auto at = sampler.next(t)) {
    t = *at;
    ++total;
    ++by_hour[static_cast<int>(t.to_hours()) % 24];
  }
  // Thinning preserves the target monthly volume (Poisson noise on 3000
  // arrivals has sd ~55; 10% is a generous band).
  EXPECT_NEAR(static_cast<double>(total), 3000.0, 300.0);
  // And the diurnal modulation shows: early-afternoon arrivals clearly
  // outnumber the small-hours trough.
  const double peak = static_cast<double>(by_hour[13] + by_hour[14] +
                                          by_hour[15]);
  const double trough = static_cast<double>(by_hour[1] + by_hour[2] +
                                            by_hour[3]);
  EXPECT_GT(peak, 1.5 * trough);
}

TEST(ThinningSampler, RateNeverExceedsEnvelope) {
  ArrivalSpec spec;
  spec.monthly = {500, 1500};
  spec.diurnal_amplitude = 0.5;
  spec.bursts_per_month = 3.0;
  spec.burst_multiplier = 4.0;
  ThinningSampler sampler{spec, util::Rng{5}};
  for (Time t = Time::zero(); t < util::month_start(2);
       t += Time::hours(3)) {
    EXPECT_LE(sampler.rate_per_day(t), sampler.envelope_per_day() + 1e-9);
  }
}

TEST(OpsCalendar, SerializeIsInsertionOrderIndependent) {
  OpsCalendar a;
  a.add({CalendarEvent::Kind::kSiteMaintenance, "B", Time::days(2),
         Time::hours(4)});
  a.add({CalendarEvent::Kind::kSiteMaintenance, "A", Time::days(1),
         Time::hours(4)});
  OpsCalendar b;
  b.add({CalendarEvent::Kind::kSiteMaintenance, "A", Time::days(1),
         Time::hours(4)});
  b.add({CalendarEvent::Kind::kSiteMaintenance, "B", Time::days(2),
         Time::hours(4)});
  EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(OpsCalendar, WanWeatherTraceIsSeedDeterministic) {
  const std::vector<std::string> sites{"A", "B", "C"};
  const auto dist = util::Distribution::lognormal_mean_cv(4.0, 0.5);
  OpsCalendar a, b, c;
  a.add_wan_weather(sites, Time::days(1), Time::days(30), dist, 10, 1);
  b.add_wan_weather(sites, Time::days(1), Time::days(30), dist, 10, 1);
  c.add_wan_weather(sites, Time::days(1), Time::days(30), dist, 10, 2);
  EXPECT_EQ(a.serialize(), b.serialize());
  EXPECT_NE(a.serialize(), c.serialize());
  EXPECT_EQ(a.size(), 10u);
}

/// A bare fabric (no demonstrator apps, no campaigns) for injector
/// tests.
apps::ScenarioOptions bare_fabric(std::uint64_t seed) {
  apps::ScenarioOptions opts;
  opts.months = 1;
  opts.seed = seed;
  opts.standard_apps = false;
  return opts;
}

TEST(OpsCalendar, CompiledWindowsFireAsScheduledDowntime) {
  sim::Simulation sim;
  apps::Scenario scenario{sim, bare_fabric(11)};
  OpsCalendar cal;
  cal.add({CalendarEvent::Kind::kSiteMaintenance, "BNL_ATLAS",
           Time::days(2), Time::hours(4)});
  cal.add({CalendarEvent::Kind::kWanWeather, "FNAL_CMS", Time::days(3),
           Time::hours(6)});
  cal.compile(scenario.grid());
  scenario.run_until(Time::days(5));
  const auto& failures = scenario.grid().failures();
  EXPECT_EQ(failures.incidents(core::Incident::kScheduledDowntime), 1u);
  EXPECT_EQ(failures.incidents(core::Incident::kWanWeather), 1u);
}

TEST(OpsCalendar, CompilationConsumesNoRandomness) {
  // Two identical seeded fabrics, one with a compiled calendar: the
  // random failure processes must draw identically, so their incident
  // counts match exactly -- scheduled windows ride alongside without
  // perturbing any stream.
  const auto count_random = [](const core::FailureInjector& f) {
    return f.incidents(core::Incident::kDiskFill) +
           f.incidents(core::Incident::kGatekeeperCrash) +
           f.incidents(core::Incident::kNetworkCut) +
           f.incidents(core::Incident::kServiceCrash);
  };
  sim::Simulation sim_a;
  apps::Scenario plain{sim_a, bare_fabric(17)};
  plain.run_until(Time::days(20));

  sim::Simulation sim_b;
  apps::Scenario calendared{sim_b, bare_fabric(17)};
  OpsCalendar cal;
  cal.add_site_rotation({"UC_ATLAS", "UFL_PG", "JHU_SDSS"}, Time::days(2),
                        Time::days(3), Time::hours(8), 5);
  cal.compile(calendared.grid());
  calendared.run_until(Time::days(20));

  EXPECT_EQ(count_random(plain.grid().failures()),
            count_random(calendared.grid().failures()));
  EXPECT_EQ(calendared.grid().failures().incidents(
                core::Incident::kScheduledDowntime),
            5u);
}

TEST(ScenarioCatalog, NamesResolveAndUnknownThrows) {
  EXPECT_GE(ScenarioCatalog::names().size(), 8u);
  for (const std::string& name : ScenarioCatalog::names()) {
    const ScenarioSpec spec = ScenarioCatalog::get(name, 1);
    EXPECT_EQ(spec.name, name);
    EXPECT_GE(spec.version, 1);
    EXPECT_FALSE(spec.summary.empty());
  }
  EXPECT_THROW((void)ScenarioCatalog::get("no-such-scenario", 1),
               std::out_of_range);
}

TEST(ScenarioCatalog, SpecsAreSeedDeterministic) {
  for (const std::string& name : ScenarioCatalog::names()) {
    EXPECT_EQ(ScenarioCatalog::get(name, 7).serialize(),
              ScenarioCatalog::get(name, 7).serialize());
  }
  // A seeded trace generator (WAN weather) makes the spec itself vary
  // with the seed; every spec records the seed in its options.
  EXPECT_NE(ScenarioCatalog::get("outage-storm", 7).serialize(),
            ScenarioCatalog::get("outage-storm", 8).serialize());
}

TEST(ScenarioCatalog, QuickOptionsShrinkTheRun) {
  const ScenarioSpec spec = ScenarioCatalog::get("cms-dc04", 1);
  const apps::ScenarioOptions full = spec.options(false);
  const apps::ScenarioOptions quick = spec.options(true);
  EXPECT_LE(quick.months, full.months);
  EXPECT_LE(quick.job_scale, full.job_scale);
}

TEST(CatalogRun, CampaignScenarioLaunchesAndDigestsDeterministically) {
  const ScenarioSpec spec = ScenarioCatalog::get("calib-month", 3);
  const RunResult a = run_scenario(spec, /*quick=*/true, modern_stack());
  EXPECT_GT(a.jobs, 0u);
  EXPECT_GT(a.workflows, 0u);
  EXPECT_EQ(a.digest.size(), 16u);
  const RunResult b = run_scenario(spec, /*quick=*/true, modern_stack());
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.match_log, b.match_log);
  EXPECT_EQ(a.jobs, b.jobs);
}

}  // namespace
}  // namespace grid3::workload
