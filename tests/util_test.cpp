// Unit tests for the util substrate: RNG determinism, distributions,
// statistics, time series, round-robin archive, calendar, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/calendar.h"
#include "util/distributions.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/rrd.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace grid3::util {
namespace {

TEST(Units, TimeArithmeticAndConversions) {
  const Time t = Time::hours(2) + Time::minutes(30);
  EXPECT_DOUBLE_EQ(t.to_hours(), 2.5);
  EXPECT_DOUBLE_EQ(t.to_minutes(), 150.0);
  EXPECT_EQ(Time::days(1).ticks(), 86400LL * 1000000LL);
  EXPECT_LT(Time::seconds(1), Time::minutes(1));
  EXPECT_DOUBLE_EQ(Time::days(2) / Time::days(1), 2.0);
  EXPECT_DOUBLE_EQ((Time::hours(4) * 0.5).to_hours(), 2.0);
}

TEST(Units, BytesScalesAndBandwidth) {
  EXPECT_EQ(Bytes::gb(2).count(), 2'000'000'000LL);
  EXPECT_DOUBLE_EQ(Bytes::tb(1.5).to_tb(), 1.5);
  const Bandwidth bw = Bandwidth::mbps(100);
  EXPECT_DOUBLE_EQ(bw.bps(), 100e6 / 8.0);
  // 1 GB at 100 Mb/s = 80 seconds.
  EXPECT_NEAR(bw.transfer_time(Bytes::gb(1)).to_seconds(), 80.0, 1e-6);
  EXPECT_EQ(Bandwidth{}.transfer_time(Bytes::gb(1)), Time::max());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a{7};
  Rng child = a.fork();
  // The fork advanced the parent; child and parent should not mirror.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng{11};
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) acc += rng.exponential(4.0);
  EXPECT_NEAR(acc / kN, 4.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng{13};
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng{17};
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 2);
}

TEST(Distributions, ConstantAndClamp) {
  Rng rng{5};
  const auto c = Distribution::constant(7.0);
  EXPECT_DOUBLE_EQ(c.sample(rng), 7.0);
  EXPECT_DOUBLE_EQ(c.mean(), 7.0);
  const auto clamped =
      Distribution::clamped(Distribution::constant(100.0), 0.0, 10.0);
  EXPECT_DOUBLE_EQ(clamped.sample(rng), 10.0);
}

TEST(Distributions, LognormalMeanCv) {
  Rng rng{19};
  const auto d = Distribution::lognormal_mean_cv(8.81, 1.0);
  EXPECT_DOUBLE_EQ(d.mean(), 8.81);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(d.sample(rng));
  EXPECT_NEAR(stats.mean(), 8.81, 0.35);
  // cv should be near 1.
  EXPECT_NEAR(stats.stddev() / stats.mean(), 1.0, 0.1);
}

TEST(Distributions, MixtureMean) {
  Rng rng{23};
  auto mix = Distribution::mixture(
      {Distribution::constant(1.0), Distribution::constant(3.0)},
      {1.0, 1.0});
  EXPECT_DOUBLE_EQ(mix.mean(), 2.0);
  OnlineStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(mix.sample(rng));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(Distributions, TruncatedNormalFloor) {
  Rng rng{29};
  const auto d = Distribution::truncated_normal(1.0, 5.0, 0.5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(d.sample(rng), 0.5);
  }
}

TEST(OnlineStats, WelfordMatchesDirect) {
  OnlineStats s;
  const std::vector<double> xs = {1, 2, 3, 4, 100};
  double sum = 0;
  for (double x : xs) {
    s.add(x);
    sum += x;
  }
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_DOUBLE_EQ(s.sum(), sum);
  EXPECT_DOUBLE_EQ(s.mean(), sum / 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng{31};
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, BinningAndQuantiles) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 100; ++i) h.add(0.5 + (i % 10));
  EXPECT_DOUBLE_EQ(h.total(), 100.0);
  EXPECT_DOUBLE_EQ(h.count(0), 10.0);
  h.add(-1);
  h.add(42);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
}

TEST(TimeSeries, StepSemanticsAndIntegration) {
  TimeSeries ts;
  ts.append(Time::seconds(0), 2.0);
  ts.append(Time::seconds(10), 4.0);
  EXPECT_DOUBLE_EQ(ts.at(Time::seconds(5)), 2.0);
  EXPECT_DOUBLE_EQ(ts.at(Time::seconds(10)), 4.0);
  EXPECT_DOUBLE_EQ(ts.at(Time::seconds(50)), 4.0);
  // Integral over [0, 20): 2*10 + 4*10 = 60.
  EXPECT_DOUBLE_EQ(ts.integrate(Time::seconds(0), Time::seconds(20)), 60.0);
  EXPECT_DOUBLE_EQ(ts.time_average(Time::seconds(0), Time::seconds(20)), 3.0);
}

TEST(TimeSeries, BinnedAverageUnderReportsPeaks) {
  // The paper notes binned averages can report less than the peak; a
  // short spike inside a wide bin averages down.
  TimeSeries ts;
  ts.append(Time::seconds(0), 0.0);
  ts.append(Time::seconds(450), 100.0);
  ts.append(Time::seconds(550), 0.0);
  const auto bins = ts.binned_average(Time::zero(), Time::seconds(1000), 2);
  EXPECT_LT(bins[0], 100.0);
  EXPECT_DOUBLE_EQ(ts.max_over(Time::zero(), Time::seconds(1000)), 100.0);
}

TEST(EventSeries, TotalsAndCumulative) {
  EventSeries es;
  es.record(Time::seconds(1), 2.0);
  es.record(Time::seconds(5), 3.0);
  es.record(Time::seconds(9), 1.0);
  EXPECT_DOUBLE_EQ(es.total(), 6.0);
  EXPECT_DOUBLE_EQ(es.total(Time::seconds(2), Time::seconds(8)), 3.0);
  // Bin edges at t=5: the event AT t=5 falls into the second bin.
  const auto cum = es.cumulative(Time::zero(), Time::seconds(10), 2);
  EXPECT_DOUBLE_EQ(cum[0], 2.0);
  EXPECT_DOUBLE_EQ(cum[1], 6.0);
}

TEST(Rrd, PrimarySlotConsolidation) {
  RoundRobinArchive rra{{{Time::minutes(5), 12}, {Time::hours(1), 24}},
                        Consolidation::kAverage};
  rra.update(Time::minutes(1), 10.0);
  rra.update(Time::minutes(2), 20.0);
  const auto v = rra.read(Time::minutes(3));
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(*v, 15.0);
}

TEST(Rrd, OldDataConsolidatesUpward) {
  RoundRobinArchive rra{{{Time::minutes(5), 4}, {Time::hours(1), 4}},
                        Consolidation::kAverage};
  // Fill far past the primary ring so early slots are evicted upward.
  for (int i = 0; i < 40; ++i) {
    rra.update(Time::minutes(5.0 * i + 1), static_cast<double>(i));
  }
  // The earliest samples are gone from level 0 but covered by level 1.
  const auto v = rra.read(Time::minutes(2));
  ASSERT_TRUE(v.has_value());
  // Ancient data beyond all retention reads as nullopt.
  RoundRobinArchive tiny{{{Time::minutes(5), 2}}, Consolidation::kLast};
  for (int i = 0; i < 10; ++i) tiny.update(Time::minutes(5.0 * i + 1), 1.0);
  EXPECT_FALSE(tiny.read(Time::minutes(1)).has_value());
}

TEST(Rrd, MaxConsolidationKeepsPeaks) {
  RoundRobinArchive rra{{{Time::minutes(5), 8}}, Consolidation::kMax};
  rra.update(Time::minutes(1), 5.0);
  rra.update(Time::minutes(2), 50.0);
  rra.update(Time::minutes(3), 7.0);
  EXPECT_DOUBLE_EQ(*rra.read(Time::minutes(1)), 50.0);
}

TEST(Calendar, EpochAndMonthLabels) {
  EXPECT_EQ(month_label_at(Time::zero()), "10-2003");
  EXPECT_EQ(month_label_at(Time::days(31)), "11-2003");
  EXPECT_EQ(month_label_at(Time::days(31 + 30)), "12-2003");
  EXPECT_EQ(month_label_at(Time::days(31 + 30 + 31)), "01-2004");
  EXPECT_EQ(month_index_at(Time::days(31)), 1);
  EXPECT_EQ(month_start(1), Time::days(31));
}

TEST(Calendar, LeapYear2004) {
  EXPECT_EQ(days_in_month(2004, 2), 29);
  EXPECT_EQ(days_in_month(2003, 2), 28);
  // Feb 29, 2004 exists on the timeline.
  const Time t = time_of({2004, 2, 29});
  const CalendarDate d = date_at(t);
  EXPECT_EQ(d.year, 2004);
  EXPECT_EQ(d.month, 2);
  EXPECT_EQ(d.day, 29);
}

TEST(Calendar, RoundTrip) {
  for (int m = 0; m < 12; ++m) {
    const Time t = month_start(m);
    EXPECT_EQ(month_index_at(t), m);
    const CalendarDate d = date_at(t);
    EXPECT_EQ(time_of(d), t);
  }
}

TEST(Table, AlignmentAndCsv) {
  AsciiTable t{{"vo", "jobs"}};
  t.add_row({"usatlas", "7455"});
  t.add_row({"uscms", "19354"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("usatlas"), std::string::npos);
  EXPECT_NE(s.find("| jobs"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("usatlas,7455"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::percent(0.305), "30.5%");
  EXPECT_EQ(AsciiTable::integer(42), "42");
}

TEST(Table, BarChartScales) {
  const std::string chart =
      bar_chart({{"a", 10.0}, {"b", 5.0}}, 10, "units");
  EXPECT_NE(chart.find("##########"), std::string::npos);
  EXPECT_NE(chart.find("#####"), std::string::npos);
}

TEST(RetryPolicy, FlatScheduleReturnsTheBaseBitIdentically) {
  // factor == 1.0 must hand back the stored Time, never a
  // seconds-roundtrip that could truncate odd tick counts.
  RetryPolicy p;
  p.base = Time::micros(1'000'001);  // not a whole number of seconds
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_EQ(p.delay(attempt), p.base);
  }
}

TEST(RetryPolicy, GeometricBackoffMatchesTheLegacyLoop) {
  RetryPolicy p;
  p.base = Time::minutes(2);
  p.factor = 2.0;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    // The pre-policy call sites computed backoff by repeated
    // multiplication; the policy must reproduce that sequence exactly.
    double legacy = p.base.to_seconds();
    for (int i = 1; i < attempt; ++i) legacy *= p.factor;
    EXPECT_DOUBLE_EQ(p.delay_seconds(attempt), legacy);
  }
  EXPECT_DOUBLE_EQ(p.delay_seconds(1), 120.0);
  EXPECT_DOUBLE_EQ(p.delay_seconds(3), 480.0);
}

TEST(RetryPolicy, JitterIsDeterministicAndBounded) {
  RetryPolicy p;
  p.base = Time::minutes(5);
  p.jitter = 0.25;
  const double flat = p.base.to_seconds();
  std::set<double> seen;
  for (std::uint64_t key = 1; key <= 32; ++key) {
    const double d = p.delay_seconds(1, key);
    EXPECT_GE(d, flat);
    EXPECT_LT(d, flat * 1.25);
    EXPECT_DOUBLE_EQ(d, p.delay_seconds(1, key));  // pure in the key
    seen.insert(d);
  }
  EXPECT_GT(seen.size(), 16u);  // the hash actually spreads
  // Zero jitter ignores the key entirely.
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.delay_seconds(1, 12345), flat);
}

TEST(RetryPolicy, RetryCountAndDeadlineBudgets) {
  RetryPolicy p;
  p.max_retries = 2;
  EXPECT_TRUE(p.allows(0));
  EXPECT_TRUE(p.allows(1));
  EXPECT_FALSE(p.allows(2));
  EXPECT_FALSE(p.budget_exhausted(Time::hours(1)));  // default: no deadline
  p.deadline = Time::hours(12);
  EXPECT_FALSE(p.budget_exhausted(Time::hours(12)));  // at the line is fine
  EXPECT_TRUE(p.budget_exhausted(Time::hours(12) + Time::micros(1)));
}

TEST(Jitter01, SplitmixHashIsUniformishAndPure) {
  std::set<double> seen;
  for (std::uint64_t x = 0; x < 64; ++x) {
    const double u = jitter01(x);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, jitter01(x));
    seen.insert(u);
  }
  EXPECT_EQ(seen.size(), 64u);
}

}  // namespace
}  // namespace grid3::util
