// Unit tests for the exhaustive-interleaving checker: the independence
// relation, sleep-set pruning, Foata-class determinism checking,
// invariant plumbing -- and the acceptance case, the seeded
// stale-hold-release bug the explorer finds but a single-ordering run
// of the very same scenario cannot.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mc/explorer.h"
#include "mc/scenarios.h"
#include "sim/simulation.h"

namespace grid3::mc {
namespace {

TEST(Independence, ActorIsFirstTagComponent) {
  EXPECT_EQ(Explorer::actor_of("job:J|rb"), "job:J");
  EXPECT_EQ(Explorer::actor_of("ops"), "ops");
  EXPECT_EQ(Explorer::actor_of(""), "");
}

TEST(Independence, SharedComponentOrUntaggedConflicts) {
  EXPECT_TRUE(Explorer::dependent("a|x", "b|x"));   // shared resource
  EXPECT_TRUE(Explorer::dependent("a", "a|x"));     // shared actor
  EXPECT_FALSE(Explorer::dependent("a|x", "b|y"));  // disjoint
  EXPECT_TRUE(Explorer::dependent("", "b|y"));      // untagged hits all
  EXPECT_TRUE(Explorer::dependent("", ""));
}

/// Minimal transition system for explorer unit tests: the setup lambda
/// schedules tagged events against the bare kernel; `state` is what they
/// mutate; the digest renders it.
class ToyRun final : public ScenarioRun {
 public:
  using Setup = std::function<void(ToyRun&)>;
  explicit ToyRun(const Setup& setup) { setup(*this); }

  sim::Simulation& sim() override { return sim_; }
  std::vector<Invariant*> invariants() override {
    std::vector<Invariant*> out;
    for (auto& inv : invariants_) out.push_back(inv.get());
    return out;
  }
  std::string digest() override {
    std::string out;
    for (const auto& [k, v] : counters) {
      out += k + "=" + std::to_string(v) + ";";
    }
    out += "log:";
    for (const auto& e : log) out += e + ",";
    return out;
  }

  sim::Simulation sim_;
  std::map<std::string, int> counters;  ///< per-actor state (commutes)
  std::vector<std::string> log;         ///< shared state (does not)
  std::vector<std::unique_ptr<Invariant>> invariants_;
};

ScenarioFactory toy(ToyRun::Setup setup) {
  return [setup = std::move(setup)] {
    return std::make_unique<ToyRun>(setup);
  };
}

TEST(Explorer, SingleActorNeverBranches) {
  Explorer ex{toy([](ToyRun& r) {
    for (int i = 0; i < 3; ++i) {
      sim::Simulation::ScopedTag tag{r.sim_, "a"};
      r.sim_.schedule_at(Time::seconds(1), [&r] { ++r.counters["a"]; });
    }
  })};
  EXPECT_TRUE(ex.explore().empty());
  EXPECT_EQ(ex.stats().runs, 1u);
  EXPECT_EQ(ex.stats().decision_points, 0u);
  EXPECT_EQ(ex.stats().terminals, 1u);
  EXPECT_EQ(ex.stats().transitions, 3u);
}

TEST(Explorer, SleepSetsCollapseIndependentPermutations) {
  // Three independent actors at one instant: 3! = 6 interleavings, one
  // Mazurkiewicz trace.  Sleep sets must explore far fewer than 6 full
  // paths and the Foata check must see exactly one class.
  const auto setup = [](ToyRun& r) {
    for (const char* a : {"a", "b", "c"}) {
      sim::Simulation::ScopedTag tag{r.sim_, a};
      r.sim_.schedule_at(Time::seconds(1), [&r, a] { ++r.counters[a]; });
    }
  };
  Explorer pruned{toy(setup)};
  EXPECT_TRUE(pruned.explore().empty());
  EXPECT_EQ(pruned.stats().terminals, 1u);  // one trace survives
  EXPECT_GT(pruned.stats().sleep_pruned, 0u);
  EXPECT_EQ(pruned.stats().foata_classes, 1u);

  McConfig all;
  all.use_sleep_sets = false;
  Explorer full{toy(setup), all};
  EXPECT_TRUE(full.explore().empty());
  EXPECT_EQ(full.stats().terminals, 6u);  // every linearization
  EXPECT_EQ(full.stats().sleep_pruned, 0u);
  EXPECT_EQ(full.stats().foata_classes, 1u);  // all digests agree
  EXPECT_LT(pruned.stats().runs, full.stats().runs);
}

TEST(Explorer, DependentActorsExploreBothOrders) {
  // Shared resource key: both orders are distinct traces and both must
  // be executed (different final logs, different Foata classes).
  const auto setup = [](ToyRun& r) {
    for (const char* a : {"a", "b"}) {
      sim::Simulation::ScopedTag tag{r.sim_, std::string{a} + "|shared"};
      r.sim_.schedule_at(Time::seconds(1), [&r, a] { r.log.push_back(a); });
    }
  };
  Explorer ex{toy(setup)};
  EXPECT_TRUE(ex.explore().empty());
  EXPECT_EQ(ex.stats().terminals, 2u);
  EXPECT_EQ(ex.stats().sleep_pruned, 0u);
  EXPECT_EQ(ex.stats().foata_classes, 2u);
}

TEST(Explorer, SteeringWorksAcrossCalendarAndHeapStores) {
  // The same dependent pair as above, but the two conflicting events sit
  // in a calendar bucket (1 s is inside the default window) while a
  // third event sits on the heap (an hour is far outside it).  The
  // explorer steers via enumerate_ready()/step_event(), which must be
  // blind to where an entry is stored: both orders of the shared-
  // resource pair are explored, and the far heap event runs in every
  // interleaving.
  const auto setup = [](ToyRun& r) {
    ASSERT_TRUE(r.sim_.queue_config().calendar);
    for (const char* a : {"a", "b"}) {
      sim::Simulation::ScopedTag tag{r.sim_, std::string{a} + "|shared"};
      r.sim_.schedule_at(Time::seconds(1), [&r, a] { r.log.push_back(a); });
    }
    {
      sim::Simulation::ScopedTag tag{r.sim_, "late"};
      r.sim_.schedule_at(Time::hours(1), [&r] { r.log.push_back("late"); });
    }
    ASSERT_EQ(r.sim_.calendar_scheduled(), 2u);
    ASSERT_EQ(r.sim_.heap_scheduled(), 1u);
  };
  Explorer ex{toy(setup)};
  EXPECT_TRUE(ex.explore().empty());
  EXPECT_EQ(ex.stats().terminals, 2u);     // ab-late and ba-late
  EXPECT_EQ(ex.stats().foata_classes, 2u);
}

TEST(Explorer, FoataCheckCatchesOverDeclaredIndependence) {
  // Two events with disjoint tags -- declared independent -- that do NOT
  // commute (both append to the shared log).  With sleep sets off every
  // interleaving runs, the two orders land in the same Foata class with
  // different digests, and the determinism invariant must fire.
  McConfig cfg;
  cfg.use_sleep_sets = false;
  Explorer ex{toy([](ToyRun& r) {
                for (const char* a : {"a", "b"}) {
                  sim::Simulation::ScopedTag tag{r.sim_, a};
                  r.sim_.schedule_at(Time::seconds(1),
                                     [&r, a] { r.log.push_back(a); });
                }
              }),
              cfg};
  const auto& violations = ex.explore();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "determinism");
}

/// Trips when the shared log's length crosses a threshold.
class LogLimitInvariant final : public Invariant {
 public:
  LogLimitInvariant(const ToyRun& run, std::size_t limit)
      : run_{run}, limit_{limit} {}
  const char* name() const override { return "log-limit"; }
  std::optional<std::string> check(bool) override {
    if (run_.log.size() > limit_) return "log grew past " +
                                         std::to_string(limit_);
    return std::nullopt;
  }

 private:
  const ToyRun& run_;
  std::size_t limit_;
};

TEST(Explorer, InvariantViolationAbortsPathAndRecordsTrace) {
  const auto setup = [](ToyRun& r) {
    for (const char* a : {"a", "b"}) {
      sim::Simulation::ScopedTag tag{r.sim_, std::string{a} + "|shared"};
      r.sim_.schedule_at(Time::seconds(1), [&r, a] { r.log.push_back(a); });
    }
    r.invariants_.push_back(
        std::make_unique<LogLimitInvariant>(r, 1));
  };
  Explorer ex{toy(setup)};
  const auto& violations = ex.explore();
  // Both orders violate once the second event lands, but identical
  // (invariant, detail) pairs dedup to one report.
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].invariant, "log-limit");
  EXPECT_EQ(violations[0].trace.size(), 1u);  // one decision point
  EXPECT_FALSE(violations[0].rendered_trace.empty());
  // No path reached quiescence cleanly.
  EXPECT_EQ(ex.stats().terminals, 0u);
}

TEST(Explorer, HorizonBoundsOpenEndedScenarios) {
  McConfig cfg;
  cfg.horizon = Time::seconds(5);
  Explorer ex{toy([](ToyRun& r) {
                sim::Simulation::ScopedTag tag{r.sim_, "t"};
                r.sim_.schedule_at(Time::seconds(1), [&r] {
                  ++r.counters["t"];
                  // A long tail past the horizon: one second apart.
                  for (int i = 1; i <= 10; ++i) {
                    r.sim_.schedule_in(Time::seconds(i),
                                       [&r] { ++r.counters["t"]; });
                  }
                });
              }),
              cfg};
  EXPECT_TRUE(ex.explore().empty());
  EXPECT_EQ(ex.stats().terminals, 1u);
  // Events at t=1..5 ran (root + 4 follow-ups); t=6.. were cut off.
  EXPECT_EQ(ex.stats().transitions, 5u);
}

TEST(Explorer, TransitionBudgetMarksIncomplete) {
  McConfig cfg;
  cfg.max_transitions = 4;
  Explorer ex{toy([](ToyRun& r) {
                for (const char* a : {"a", "b", "c"}) {
                  sim::Simulation::ScopedTag tag{r.sim_, a};
                  r.sim_.schedule_at(Time::seconds(1),
                                     [&r, a] { ++r.counters[a]; });
                }
              }),
              cfg};
  ex.explore();
  EXPECT_TRUE(ex.stats().budget_exhausted);
  EXPECT_FALSE(ex.stats().complete());
  EXPECT_LE(ex.stats().transitions, 4u);
}

TEST(Explorer, RepeatedExplorationIsDeterministic) {
  const auto setup = [](ToyRun& r) {
    for (const char* a : {"a|x", "b|x", "c", "d"}) {
      sim::Simulation::ScopedTag tag{r.sim_, a};
      r.sim_.schedule_at(Time::seconds(1), [&r, a] { ++r.counters[a]; });
    }
  };
  Explorer first{toy(setup)};
  Explorer second{toy(setup)};
  EXPECT_TRUE(first.explore().empty());
  EXPECT_TRUE(second.explore().empty());
  EXPECT_EQ(first.stats().runs, second.stats().runs);
  EXPECT_EQ(first.stats().transitions, second.stats().transitions);
  EXPECT_EQ(first.stats().terminals, second.stats().terminals);
  EXPECT_EQ(first.stats().sleep_pruned, second.stats().sleep_pruned);
  EXPECT_EQ(first.stats().foata_classes, second.stats().foata_classes);
}

// --- the real reduced scenarios --------------------------------------

TEST(ReducedScenarios, AllInvariantsHoldOnEveryInterleaving) {
  for (auto& s : reduced_scenarios()) {
    SCOPED_TRACE(s.name);
    Explorer ex{s.factory, s.config};
    EXPECT_TRUE(ex.explore().empty());
    EXPECT_TRUE(ex.stats().complete());
    EXPECT_GT(ex.stats().terminals, 0u);
  }
}

TEST(ReducedScenarios, BreakerScenarioPrunesAndCommutes) {
  auto scenarios = reduced_scenarios();
  const auto& breaker = scenarios.front();
  ASSERT_EQ(breaker.name, "breaker");

  Explorer pruned{breaker.factory, breaker.config};
  EXPECT_TRUE(pruned.explore().empty());
  EXPECT_GT(pruned.stats().sleep_pruned, 0u);

  McConfig full_cfg = breaker.config;
  full_cfg.use_sleep_sets = false;
  Explorer full{breaker.factory, full_cfg};
  EXPECT_TRUE(full.explore().empty());
  // Same commutation classes either way; far fewer runs with pruning.
  EXPECT_EQ(pruned.stats().foata_classes, full.stats().foata_classes);
  EXPECT_LT(pruned.stats().runs, full.stats().runs);
}

TEST(SeededBug, ExplorerFindsWhatTheCanonicalOrderingCannot) {
  NamedScenario s = seeded_lease_bug_scenario();

  // The single-ordering run -- what every plain test in this repo
  // executes -- is clean: the stale release only happens when the kick
  // overtakes the retry, and the canonical order fires the retry first.
  Explorer canonical{s.factory, s.config};
  EXPECT_TRUE(canonical.check_canonical().empty());

  // The explorer permutes the two and finds the double release, within
  // a tiny state budget.
  McConfig bounded = s.config;
  bounded.max_transitions = 10'000;
  Explorer ex{s.factory, bounded};
  const auto& violations = ex.explore();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations[0].invariant, "lease-audit");
  EXPECT_NE(violations[0].detail.find("stale"), std::string::npos);
  EXPECT_FALSE(violations[0].rendered_trace.empty());
  EXPECT_TRUE(ex.stats().complete());

  // And the clean twin of the same scenario has no violation: the bug
  // is in the seeded hook, not the checker.
  auto clean = reduced_scenarios();
  ASSERT_EQ(clean[1].name, "placement");
  Explorer control{clean[1].factory, clean[1].config};
  EXPECT_TRUE(control.explore().empty());
}

}  // namespace
}  // namespace grid3::mc
