// Behavioural tests for policy corners not covered by the per-module
// suites: fair-share proportionality under saturation, planner
// eligibility filters, site probe degradation, operations loops, and
// distribution/archive edge cases.
#include <gtest/gtest.h>

#include "core/grid3.h"
#include "core/site.h"
#include "gram/condor_g.h"
#include "mds/schema.h"
#include "pacman/vdt.h"
#include "util/distributions.h"
#include "util/rrd.h"
#include "util/stats.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3 {
namespace {

// ---------------------------------------------------------------------
// Condor fair share: under saturation, long-run CPU tracks the
// configured weights.
// ---------------------------------------------------------------------
TEST(FairShare, SaturatedPoolDividesCpuByConfiguredWeights) {
  sim::Simulation sim;
  batch::SchedulerConfig cfg;
  cfg.site_name = "S";
  cfg.slots = 16;
  cfg.vo_shares = {{"big", 3.0}, {"small", 1.0}};
  batch::CondorScheduler sched{sim, cfg};

  // Keep both VOs permanently backlogged with 2-hour jobs for 60 days.
  util::Rng rng{5};
  auto feed = [&](const std::string& vo, int n) {
    for (int i = 0; i < n; ++i) {
      batch::JobRequest req;
      req.vo = vo;
      req.actual_runtime = Time::hours(2);
      req.requested_walltime = Time::hours(3);
      sched.submit(req, {});
    }
  };
  feed("big", 800);
  feed("small", 800);
  // Measure while the backlog still saturates the pool (the queues hold
  // ~100 hours of work per slot; at day 3 both are still deep).
  sim.run_until(Time::hours(72));
  ASSERT_GT(sched.queued_count(), 0u);
  const double big = sched.vo_usage("big").to_hours();
  const double small = sched.vo_usage("small").to_hours();
  ASSERT_GT(small, 0.0);
  // 3:1 configured; allow slack for the start-up transient.
  EXPECT_NEAR(big / small, 3.0, 0.8);
}

// ---------------------------------------------------------------------
// Planner eligibility filters beyond app/walltime.
// ---------------------------------------------------------------------
class PlannerFilters : public ::testing::Test {
 protected:
  sim::Simulation sim;
  core::Grid3 grid{sim, 5150};

  core::Site& add(const std::string& name, bool outbound, int cpus) {
    grid.add_vo("vo");
    core::SiteConfig cfg;
    cfg.name = name;
    cfg.owner_vo = "vo";
    cfg.cpus = cpus;
    cfg.policy.outbound = outbound;
    cfg.policy.dedicated = true;
    core::Site& s = grid.add_site(cfg, 1000.0);
    pacman::add_application_package(grid.igoc().pacman_cache(), "app",
                                    Time::minutes(1));
    s.install_application(grid.igoc().pacman_cache(), "app");
    return s;
  }
};

TEST_F(PlannerFilters, OutboundRequirementExcludesPrivateSites) {
  add("OPEN", /*outbound=*/true, 8);
  add("PRIVATE", /*outbound=*/false, 8);
  sim.run_until(Time::minutes(6));  // publish
  workflow::PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("vo")};
  workflow::PlannerConfig cfg;
  cfg.vo = "vo";
  auto sites = planner.eligible_sites("app", Time::hours(1), cfg, sim.now());
  EXPECT_EQ(sites.size(), 2u);
  cfg.need_outbound = true;  // section 6.4 requirement 1
  sites = planner.eligible_sites("app", Time::hours(1), cfg, sim.now());
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "OPEN");
}

TEST_F(PlannerFilters, MinFreeCpusExcludesSaturatedSites) {
  core::Site& busy = add("BUSY", true, 4);
  add("IDLE", true, 8);
  // Saturate BUSY with local jobs.
  for (int i = 0; i < 4; ++i) {
    batch::JobRequest req;
    req.vo = "local";
    req.actual_runtime = Time::days(10);
    req.requested_walltime = Time::days(11);
    busy.scheduler().submit(req, {});
  }
  sim.run_until(Time::minutes(12));  // dynamic attributes republished
  workflow::PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("vo")};
  workflow::PlannerConfig cfg;
  cfg.vo = "vo";
  cfg.min_free_cpus = 2;
  const auto sites =
      planner.eligible_sites("app", Time::hours(1), cfg, sim.now());
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0], "IDLE");
}

// ---------------------------------------------------------------------
// Site probes degrade and recover with service state.
// ---------------------------------------------------------------------
TEST(SiteProbes, DiskPressureDegradesCatalogStatus) {
  sim::Simulation sim;
  core::Grid3 grid{sim, 616};
  grid.add_vo("vo");
  core::SiteConfig cfg;
  cfg.name = "S";
  cfg.owner_vo = "vo";
  cfg.cpus = 4;
  cfg.disk = Bytes::gb(100);
  core::Site& site = grid.add_site(cfg, 1000.0);
  grid.start_operations();
  sim.run_until(Time::hours(1));
  EXPECT_EQ(grid.igoc().site_catalog().status("S"),
            monitoring::SiteStatus::kPass);
  // Fill the disk past the headroom probe's 98% threshold.
  site.disk().consume_unmanaged(Bytes::gb(99));
  sim.run_until(Time::hours(2));
  EXPECT_EQ(grid.igoc().site_catalog().status("S"),
            monitoring::SiteStatus::kDegraded);
  site.disk().cleanup(Bytes::gb(99));
  sim.run_until(Time::hours(3));
  EXPECT_EQ(grid.igoc().site_catalog().status("S"),
            monitoring::SiteStatus::kPass);
}

// ---------------------------------------------------------------------
// Central operations: grid-map refresh picks up new users on the cron.
// ---------------------------------------------------------------------
TEST(Operations, GridmapCronPicksUpLateUsers) {
  sim::Simulation sim;
  core::Grid3 grid{sim, 99};
  grid.add_vo("vo");
  core::SiteConfig cfg;
  cfg.name = "S";
  cfg.owner_vo = "vo";
  cfg.cpus = 4;
  core::Site& site = grid.add_site(cfg, 1000.0);
  grid.start_operations(/*gridmap_period=*/Time::hours(1));
  sim.run_until(Time::hours(2));
  // A user joins after the site came online...
  const auto cert = grid.add_user("vo", "latecomer");
  EXPECT_FALSE(site.gridmap().map(cert.subject_dn).has_value());
  // ...and appears after the next cron tick.
  sim.run_until(Time::hours(4));
  EXPECT_TRUE(site.gridmap().map(cert.subject_dn).has_value());
}

// ---------------------------------------------------------------------
// Condor-G: permanent failures pass through without retry.
// ---------------------------------------------------------------------
TEST(CondorG, NoRetryOnPermanentFailure) {
  sim::Simulation sim;
  net::Network net{sim};
  gridftp::GridFtpClient ftp_client{sim, net};
  vo::CertificateAuthority ca{"CA"};
  vo::GridMapFile gridmap;  // empty: everyone is unauthorized
  srm::DiskVolume scratch{"s", Bytes::tb(1)};
  const auto node = net.add_node({"S", Bandwidth::mbps(100),
                                  Bandwidth::mbps(100), true});
  gridftp::GridFtpServer ftp{"S", node};
  batch::SchedulerConfig scfg{.site_name = "S", .slots = 4};
  batch::CondorScheduler lrms{sim, scfg};
  gram::GatekeeperConfig gkc{.site = "S", .submission_flake_rate = 0.0};
  gram::Gatekeeper gk{sim, gkc, lrms, gridmap, ca, ftp_client, ftp,
                      scratch};
  gram::CondorG condor_g{
      sim, {.retry = {.base = Time::minutes(5), .max_retries = 5}}};

  gram::GramJob job;
  job.proxy.identity = ca.issue("/CN=x", sim.now(), Time::days(1));
  job.proxy.vo = "vo";
  job.proxy.expires = sim.now() + Time::hours(12);
  job.request.vo = "vo";
  job.request.actual_runtime = Time::hours(1);
  job.request.requested_walltime = Time::hours(2);
  int calls = 0;
  gram::GramStatus status{};
  condor_g.submit_to(gk, std::move(job), [&](const gram::GramResult& r) {
    ++calls;
    status = r.status;
  });
  sim.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(status, gram::GramStatus::kAuthenticationFailed);
  EXPECT_EQ(condor_g.retries(), 0u);
}

// ---------------------------------------------------------------------
// Distribution families: analytic means match sampling.
// ---------------------------------------------------------------------
struct DistCase {
  const char* name;
  util::Distribution dist;
  double tolerance;
};

class DistributionMeans : public ::testing::TestWithParam<int> {};

TEST_P(DistributionMeans, SampleMeanMatchesAnalyticMean) {
  const DistCase cases[] = {
      {"weibull", util::Distribution::weibull(1.5, 10.0), 0.3},
      {"pareto", util::Distribution::pareto(2.0, 3.0), 0.2},
      {"exponential", util::Distribution::exponential(7.0), 0.25},
      {"uniform", util::Distribution::uniform(2.0, 8.0), 0.1},
  };
  const auto& c = cases[static_cast<std::size_t>(GetParam())];
  util::Rng rng{static_cast<std::uint64_t>(GetParam()) + 101};
  util::OnlineStats stats;
  for (int i = 0; i < 40000; ++i) stats.add(c.dist.sample(rng));
  EXPECT_NEAR(stats.mean(), c.dist.mean(), c.tolerance) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Families, DistributionMeans,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------
// Round-robin archive: kSum and kLast consolidation semantics.
// ---------------------------------------------------------------------
TEST(RrdConsolidation, SumAccumulatesWithinSlot) {
  util::RoundRobinArchive rra{{{Time::minutes(10), 16}},
                              util::Consolidation::kSum};
  rra.update(Time::minutes(1), 5.0);
  rra.update(Time::minutes(4), 7.0);
  rra.update(Time::minutes(12), 1.0);  // flush previous slot
  EXPECT_DOUBLE_EQ(*rra.read(Time::minutes(3)), 12.0);
}

TEST(RrdConsolidation, LastKeepsMostRecentSample) {
  util::RoundRobinArchive rra{{{Time::minutes(10), 16}},
                              util::Consolidation::kLast};
  rra.update(Time::minutes(1), 5.0);
  rra.update(Time::minutes(4), 7.0);
  EXPECT_DOUBLE_EQ(*rra.read(Time::minutes(5)), 7.0);
}

// ---------------------------------------------------------------------
// Exerciser backfill never displaces production on a saturated pool.
// ---------------------------------------------------------------------
TEST(Backfill, ProbesConsumeOnlyIdleSlots) {
  sim::Simulation sim;
  batch::SchedulerConfig cfg;
  cfg.site_name = "S";
  cfg.slots = 4;
  batch::CondorScheduler sched{sim, cfg};
  // Saturate with production, then submit probes and more production.
  int production_done = 0;
  int probes_done = 0;
  for (int i = 0; i < 12; ++i) {
    batch::JobRequest req;
    req.vo = "prod";
    req.actual_runtime = Time::hours(1);
    req.requested_walltime = Time::hours(2);
    sched.submit(req, [&](const batch::JobOutcome& o) {
      if (o.state == batch::JobState::kCompleted) ++production_done;
    });
  }
  for (int i = 0; i < 4; ++i) {
    batch::JobRequest probe;
    probe.vo = "probe";
    probe.priority = -1;
    probe.actual_runtime = Time::minutes(5);
    probe.requested_walltime = Time::hours(1);
    sched.submit(probe, [&](const batch::JobOutcome& o) {
      if (o.state == batch::JobState::kCompleted) ++probes_done;
      // When a probe completes, all production must already be done.
      EXPECT_EQ(production_done, 12);
    });
  }
  sim.run();
  EXPECT_EQ(production_done, 12);
  EXPECT_EQ(probes_done, 4);
}

// ---------------------------------------------------------------------
// VDC request with multiple targets shares common ancestors.
// ---------------------------------------------------------------------
TEST(Vdc, MultiTargetRequestSharesAncestors) {
  workflow::VirtualDataCatalog vdc;
  workflow::Derivation gen;
  gen.id = "gen";
  gen.transformation = "tf";
  gen.outputs = {"raw"};
  gen.runtime = Time::hours(1);
  vdc.add_derivation(gen);
  for (const char* leaf : {"a", "b"}) {
    workflow::Derivation d;
    d.id = leaf;
    d.transformation = "tf";
    d.inputs = {"raw"};
    d.outputs = {leaf};
    d.runtime = Time::hours(1);
    vdc.add_derivation(d);
  }
  const auto dag = vdc.request({"a", "b"});
  ASSERT_TRUE(dag.has_value());
  EXPECT_EQ(dag->jobs.size(), 3u);  // gen appears once, not twice
  EXPECT_EQ(dag->edges.size(), 2u);
  EXPECT_EQ(dag->roots().size(), 1u);
}

}  // namespace
}  // namespace grid3
