// Gang matching: planner level-tagging, whole-gang co-location, the
// documented split fallback (with actual-site feedback into children),
// gang lease lifecycle on failure/rescue paths, and determinism.
#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/rank_policy.h"
#include "core/grid3.h"
#include "core/site.h"
#include "pacman/vdt.h"
#include "placement/ledger.h"
#include "sim/simulation.h"
#include "workflow/dagman.h"
#include "workflow/planner.h"
#include "workflow/vdc.h"

namespace grid3::workflow {
namespace {

Derivation make_derivation(const std::string& id, const std::string& tf,
                           std::vector<std::string> inputs,
                           std::vector<std::string> outputs) {
  Derivation d;
  d.id = id;
  d.transformation = tf;
  d.inputs = std::move(inputs);
  d.outputs = std::move(outputs);
  d.runtime = Time::hours(1);
  d.output_size = Bytes::gb(1);
  d.scratch = Bytes::gb(1);
  return d;
}

std::size_t index_of(const ConcreteDag& dag, const std::string& id) {
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    if (dag.nodes[i].derivation_id == id) return i;
  }
  ADD_FAILURE() << "node not found: " << id;
  return 0;
}

/// Self-contained brokered fabric (constructible twice per test body for
/// determinism comparisons).  Each entry in `sites` is {name, cpus,
/// apps-installed-there}; every site also gets the base app "app".
struct GangFabric {
  struct SiteSpec {
    std::string name;
    int cpus;
    std::vector<std::string> extra_apps;
  };

  sim::Simulation sim;
  core::Grid3 grid{sim, 77};
  vo::VomsProxy proxy;

  explicit GangFabric(const std::vector<SiteSpec>& sites) {
    grid.add_vo("usatlas");
    std::set<std::string> apps{"app"};
    for (const SiteSpec& s : sites) {
      apps.insert(s.extra_apps.begin(), s.extra_apps.end());
    }
    for (const std::string& app : apps) {
      pacman::add_application_package(grid.igoc().pacman_cache(), app,
                                      Time::minutes(5));
    }
    for (const SiteSpec& s : sites) {
      core::SiteConfig c;
      c.name = s.name;
      c.owner_vo = "usatlas";
      c.cpus = s.cpus;
      c.policy.max_walltime = Time::hours(48);
      c.policy.dedicated = true;
      grid.add_site(c, /*reliability=*/1000.0);
      grid.site(s.name)->install_application(grid.igoc().pacman_cache(),
                                             "app");
      for (const std::string& app : s.extra_apps) {
        grid.site(s.name)->install_application(grid.igoc().pacman_cache(),
                                               app);
      }
    }
    const vo::Certificate cert =
        grid.add_user("usatlas", "tester", vo::Role::kAppAdmin);
    proxy = *grid.make_proxy(cert, "usatlas", Time::hours(400));
    const std::vector<const vo::VomsServer*> servers{grid.voms("usatlas")};
    for (const SiteSpec& s : sites) {
      grid.site(s.name)->refresh_gridmap(servers);
      grid.site(s.name)->gatekeeper().set_submission_flake_rate(0.0);
      grid.site(s.name)->gatekeeper().set_environment_error_rate(0.0);
    }
    grid.attach_broker("usatlas", broker::PolicyKind::kQueueDepth);
    grid.start_operations();
    sim.run_until(Time::minutes(1));
  }

  [[nodiscard]] std::optional<ConcreteDag> plan(const AbstractDag& dag,
                                                PlannerConfig cfg,
                                                std::uint64_t rng_seed) {
    PegasusPlanner planner{grid.igoc().top_giis(), *grid.rls("usatlas")};
    planner.set_broker(grid.broker("usatlas"));
    cfg.vo = "usatlas";
    util::Rng rng{rng_seed};
    return planner.plan(dag, cfg, rng, sim.now());
  }
};

/// N parallel simulations feeding one merge -- the CMS/ATLAS production
/// level shape gang matching exists for.  `extra` optionally appends a
/// private child of the last sim (for split-feedback coverage).
AbstractDag level_dag(int width, bool with_private_child = false,
                      const std::string& child_tf = "tf") {
  VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  if (child_tf != "tf") {
    vdc.add_transformation({child_tf, "1", "app" + child_tf});
  }
  std::vector<std::string> mids;
  for (int i = 0; i < width; ++i) {
    const std::string mid = "mid" + std::to_string(i);
    vdc.add_derivation(
        make_derivation("sim" + std::to_string(i), "tf", {}, {mid}));
    mids.push_back(mid);
  }
  vdc.add_derivation(make_derivation("merge", "tf", mids, {"summary"}));
  std::vector<std::string> targets{"summary"};
  if (with_private_child) {
    Derivation priv = make_derivation(
        "analysis", child_tf, {mids.back()}, {"analysis.out"});
    vdc.add_derivation(priv);
    targets.push_back("analysis.out");
  }
  auto dag = vdc.request(targets);
  EXPECT_TRUE(dag.has_value());
  return *dag;
}

TEST(PlannerGangTagging, LevelSiblingsShareGangIdAndIntermediates) {
  GangFabric f{{{"ALPHA", 16, {}}, {"BETA", 8, {}}}};
  auto plan = f.plan(level_dag(3), {}, 5);
  ASSERT_TRUE(plan.has_value());
  std::string gang_id;
  for (int i = 0; i < 3; ++i) {
    const auto& spec =
        plan->nodes[index_of(*plan, "sim" + std::to_string(i))].broker_spec;
    ASSERT_TRUE(spec.has_value());
    EXPECT_FALSE(spec->gang_id.empty());
    if (gang_id.empty()) gang_id = spec->gang_id;
    EXPECT_EQ(spec->gang_id, gang_id);
    EXPECT_EQ(spec->gang_width, 3);
    // Every sim's 1 GB output is consumed by the merge: the level parks
    // 3 GB of intermediates wherever it lands.
    EXPECT_EQ(spec->gang_intermediates, Bytes::gb(3));
  }
  // The merge is a single-member level: no gang.
  const auto& merge = plan->nodes[index_of(*plan, "merge")].broker_spec;
  ASSERT_TRUE(merge.has_value());
  EXPECT_TRUE(merge->gang_id.empty());
}

TEST(PlannerGangTagging, ChainsAndOptOutStayUntagged) {
  GangFabric f{{{"ALPHA", 16, {}}, {"BETA", 8, {}}}};
  // A linear chain has width-1 levels: nothing to gang.
  VirtualDataCatalog vdc;
  vdc.add_transformation({"tf", "1", "app"});
  vdc.add_derivation(make_derivation("s1", "tf", {}, {"mid"}));
  vdc.add_derivation(make_derivation("s2", "tf", {"mid"}, {"out"}));
  auto chain = f.plan(*vdc.request({"out"}), {}, 5);
  ASSERT_TRUE(chain.has_value());
  for (const auto& n : chain->nodes) {
    ASSERT_TRUE(n.broker_spec.has_value());
    EXPECT_TRUE(n.broker_spec->gang_id.empty());
  }
  // gang_matching=false leaves even a wide level untagged.
  PlannerConfig cfg;
  cfg.gang_matching = false;
  auto flat = f.plan(level_dag(3), cfg, 5);
  ASSERT_TRUE(flat.has_value());
  for (const auto& n : flat->nodes) {
    EXPECT_TRUE(n.broker_spec->gang_id.empty());
  }
}

TEST(GangMatch, WholeLevelBindsToOneSiteAndReleasesLease) {
  GangFabric f{{{"ALPHA", 16, {}}, {"BETA", 8, {}}}};
  auto plan = f.plan(level_dag(4), {}, 5);
  ASSERT_TRUE(plan.has_value());
  const ConcreteDag original = *plan;

  std::optional<DagRunStats> stats;
  f.grid.dagman("usatlas").run(std::move(*plan), f.proxy,
                               [&](const DagRunStats& s) { stats = s; });
  f.sim.run_until(Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);

  broker::ResourceBroker& b = *f.grid.broker("usatlas");
  EXPECT_EQ(b.gang_matches(), 1u);
  EXPECT_EQ(b.gang_splits(), 0u);
  // Every member ran at the same site (free 16 >= width 4 -> whole fit).
  std::set<std::string> member_sites;
  for (int i = 0; i < 4; ++i) {
    member_sites.insert(
        stats->node_results[index_of(original, "sim" + std::to_string(i))]
            .site);
  }
  EXPECT_EQ(member_sites.size(), 1u);

  // The gang-scoped lease came and went exactly once; nothing leaks.
  placement::PlacementLedger* ledger = f.grid.placement("usatlas");
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->acquired(), 1u);
  EXPECT_EQ(ledger->released(), 1u);
  EXPECT_EQ(ledger->active(), 0u);

  // The decision reached the accounting mirror and the metric bus.
  const auto summary =
      f.grid.igoc().job_db().gang_events(Time::zero(), f.sim.now());
  EXPECT_EQ(summary.gangs, 1u);
  EXPECT_EQ(summary.whole, 1u);
  EXPECT_EQ(summary.split, 0u);
  EXPECT_EQ(summary.members, 4u);
  EXPECT_FALSE(f.grid.igoc()
                   .bus()
                   .series("usatlas", broker::metric::kGangMatches)
                   .empty());
}

TEST(GangMatch, SplitFallbackPropagatesActualMemberSites) {
  // Two 2-CPU sites cannot host a width-3 gang whole: the documented
  // split policy gives the better-ranked site (ALPHA, tie on name) two
  // members and BETA the third.  The third sim's private child must see
  // the member's *actual* site (BETA), not the gang's primary (ALPHA).
  GangFabric f{{{"ALPHA", 2, {}}, {"BETA", 2, {"apptfb"}}}};
  // Pin the *provisional* placement of the free-to-roam sims to ALPHA
  // (choose_site is preference-weighted) so the planner provably folds a
  // cross-site staging edge for the BETA-only child.
  PlannerConfig cfg;
  cfg.site_preference["ALPHA"] = 1e9;
  auto plan = f.plan(level_dag(3, /*with_private_child=*/true, "tfb"), cfg, 5);
  ASSERT_TRUE(plan.has_value());
  const std::size_t last_sim = index_of(*plan, "sim2");
  const std::size_t child = index_of(*plan, "analysis");
  // Provisionally the sims sit at ALPHA and the child (BETA-only app) at
  // BETA, so the planner folded the cross-site staging edge.
  ASSERT_EQ(plan->nodes[child].source_parent, last_sim);
  ASSERT_EQ(plan->nodes[child].source_site, "ALPHA");
  const ConcreteDag original = *plan;

  std::optional<DagRunStats> stats;
  f.grid.dagman("usatlas").run(std::move(*plan), f.proxy,
                               [&](const DagRunStats& s) { stats = s; });
  f.sim.run_until(Time::days(2));
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success);

  broker::ResourceBroker& b = *f.grid.broker("usatlas");
  EXPECT_EQ(b.gang_matches(), 1u);
  EXPECT_EQ(b.gang_splits(), 1u);
  EXPECT_EQ(stats->node_results[index_of(original, "sim0")].site, "ALPHA");
  EXPECT_EQ(stats->node_results[index_of(original, "sim1")].site, "ALPHA");
  EXPECT_EQ(stats->node_results[last_sim].site, "BETA");
  // Regression: the feedback carried sim2's own completion site, not the
  // primary ALPHA hosts the larger share on.
  EXPECT_EQ(stats->node_results[child].source_site, "BETA");

  const auto summary =
      f.grid.igoc().job_db().gang_events(Time::zero(), f.sim.now());
  EXPECT_EQ(summary.split, 1u);
  EXPECT_FALSE(f.grid.igoc()
                   .bus()
                   .series("usatlas", broker::metric::kGangSplits)
                   .empty());
}

/// Half-finished-gang scenario: a two-member gang whose only common site
/// (BETA -- one member's app exists nowhere else) is down.  The flexible
/// member rebinds to ALPHA and succeeds; the pinned one exhausts its
/// rebinds and fails, the merge is skipped, and the run needs a rescue.
struct GangRescueRun {
  GangFabric fabric{{{"ALPHA", 16, {}}, {"BETA", 16, {"appB"}}}};
  DagRunStats stats;
  ConcreteDag original;
  ConcreteDag rescue;

  GangRescueRun() {
    VirtualDataCatalog vdc;
    vdc.add_transformation({"tf", "1", "app"});
    vdc.add_transformation({"tfB", "1", "appB"});
    vdc.add_derivation(make_derivation("simA", "tf", {}, {"midA"}));
    vdc.add_derivation(make_derivation("simB", "tfB", {}, {"midB"}));
    vdc.add_derivation(
        make_derivation("merge", "tf", {"midA", "midB"}, {"out"}));
    auto plan = fabric.plan(*vdc.request({"out"}), {}, 5);
    EXPECT_TRUE(plan.has_value());
    original = *plan;

    fabric.grid.site("BETA")->gatekeeper().set_available(false);
    std::optional<DagRunStats> s;
    fabric.grid.dagman("usatlas").run(std::move(*plan), fabric.proxy,
                                      [&](const DagRunStats& r) { s = r; });
    fabric.sim.run_until(Time::days(4));
    EXPECT_TRUE(s.has_value());
    stats = *s;

    fabric.grid.site("BETA")->gatekeeper().set_available(true);
    fabric.sim.run_until(fabric.sim.now() + Time::minutes(6));
    rescue = fabric.grid.dagman("usatlas").rescue_dag_refreshed(
        original, stats, fabric.sim.now());
  }
};

TEST(GangRescue, LeaseReleasedExactlyOnceAndCandidatesRederived) {
  GangRescueRun run;
  ASSERT_FALSE(run.stats.success);
  // simA escaped to ALPHA via late binding; simB had nowhere else to go.
  EXPECT_TRUE(run.stats.node_results[index_of(run.original, "simA")].ok);
  EXPECT_FALSE(run.stats.node_results[index_of(run.original, "simB")].ok);

  // The gang-scoped lease (app label "gang:<id>") was acquired once and
  // released exactly once -- when simB, the last member, resolved.
  std::size_t gang_acquires = 0;
  std::size_t gang_releases = 0;
  for (const auto& l : run.fabric.grid.igoc().job_db().leases()) {
    if (l.app.rfind("gang:", 0) != 0) continue;
    if (l.event == "acquire") ++gang_acquires;
    if (l.event == "release") ++gang_releases;
  }
  EXPECT_EQ(gang_acquires, 1u);
  EXPECT_EQ(gang_releases, 1u);
  placement::PlacementLedger* ledger = run.fabric.grid.placement("usatlas");
  ASSERT_NE(ledger, nullptr);
  EXPECT_EQ(ledger->active(), 0u);
  EXPECT_EQ(ledger->leased_bytes(), Bytes::zero());

  // The refreshed rescue re-derived candidates from the live view.
  ASSERT_EQ(run.rescue.nodes.size(), 2u);  // simB + merge
  for (const auto& n : run.rescue.nodes) {
    ASSERT_TRUE(n.broker_spec.has_value());
    if (n.derivation_id == "simB") {
      EXPECT_EQ(n.broker_spec->candidates,
                (std::vector<std::string>{"BETA"}));
    } else {
      EXPECT_EQ(n.broker_spec->candidates,
                (std::vector<std::string>{"ALPHA", "BETA"}));
    }
  }
}

TEST(GangRescue, ByteIdenticalAcrossRuns) {
  GangRescueRun r1;
  GangRescueRun r2;
  const std::string log1 =
      r1.fabric.grid.broker("usatlas")->serialize_match_log();
  ASSERT_FALSE(log1.empty());
  EXPECT_EQ(log1, r2.fabric.grid.broker("usatlas")->serialize_match_log());
  EXPECT_EQ(r1.fabric.grid.broker("usatlas")->gang_matches(),
            r2.fabric.grid.broker("usatlas")->gang_matches());
  ASSERT_EQ(r1.rescue.nodes.size(), r2.rescue.nodes.size());
  for (std::size_t i = 0; i < r1.rescue.nodes.size(); ++i) {
    EXPECT_EQ(r1.rescue.nodes[i].derivation_id,
              r2.rescue.nodes[i].derivation_id);
    EXPECT_EQ(r1.rescue.nodes[i].broker_spec->candidates,
              r2.rescue.nodes[i].broker_spec->candidates);
  }
}

}  // namespace
}  // namespace grid3::workflow
